#!/usr/bin/env python3
"""Merge Google Benchmark JSON outputs and gate on perf regressions.

Usage:
  bench_gate.py merge -o MERGED.json RAW.json [RAW.json ...]
  bench_gate.py compare BASELINE.json CURRENT.json [--threshold 0.15]
                [--gate-time]

`merge` combines one or more `--benchmark_format=json` outputs into a
single file: the first input's `context` plus the concatenated
`benchmarks` arrays (suites stay distinguishable through their benchmark
names). This is what CI uploads as BENCH_e2e.json / BENCH_micro.json.

`compare` fails (exit 1) when any benchmark present in both files
regresses by more than --threshold on a *gated metric*. Gated metrics are
the user counters (e.g. the simulator's deterministic `cycles` /
`est_cycles` counters), which are machine-independent, so a 15% gate is
stable on shared CI runners. Wall-clock metrics (real_time / cpu_time)
are noisy across runners and are only reported as warnings unless
--gate-time is passed, or the benchmark's name matches
--gate-time-filter. The filter exists for benchmarks whose wall time IS
the product property (the analytic engine's sweep throughput): those are
gated with the separate, more generous --time-threshold so runner noise
does not flap the build while order-of-magnitude regressions still fail.

A benchmark that *errors out* in the current run (SkipWithError sets
error_occurred, and the counters vanish) fails the gate, as does a gated
metric that is present in the baseline but missing from the current run —
silently losing a metric must not read as green. Benchmarks that exist on
only one side are reported but never fail the gate, so adding or retiring
a whole benchmark does not require touching the baseline in the same
commit.

No third-party dependencies; stdlib json/argparse only.
"""

import argparse
import json
import re
import sys

# Keys of a google-benchmark entry that are not user counters.
STANDARD_KEYS = {
    "name", "family_index", "per_family_instance_index", "run_name",
    "run_type", "repetitions", "repetition_index", "threads", "iterations",
    "real_time", "cpu_time", "time_unit", "aggregate_name", "label",
    "error_occurred", "error_message",
}

TIME_KEYS = ("real_time", "cpu_time")


def load(path):
    with open(path) as f:
        return json.load(f)


def benchmarks(doc):
    return {
        b["name"]: b
        for b in doc.get("benchmarks", [])
        if b.get("run_type", "iteration") == "iteration"
    }


def counters(entry):
    return {
        k: v
        for k, v in entry.items()
        if k not in STANDARD_KEYS and isinstance(v, (int, float))
    }


def merge(args):
    docs = [load(p) for p in args.inputs]
    merged = {"context": docs[0].get("context", {}), "benchmarks": []}
    for doc in docs:
        merged["benchmarks"].extend(doc.get("benchmarks", []))
    with open(args.output, "w") as f:
        json.dump(merged, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"merged {len(args.inputs)} file(s), "
          f"{len(merged['benchmarks'])} benchmark(s) -> {args.output}")
    return 0


def compare(args):
    base = benchmarks(load(args.baseline))
    cur = benchmarks(load(args.current))
    failures = []
    warnings = []

    for name in sorted(set(base) | set(cur)):
        if name not in base:
            warnings.append(f"NEW       {name} (not in baseline; not gated)")
            continue
        if name not in cur:
            warnings.append(f"RETIRED   {name} (baseline only; not gated)")
            continue
        if cur[name].get("error_occurred"):
            failures.append(f"ERRORED   {name}: "
                            f"{cur[name].get('error_message', 'unknown')}")
            continue
        time_gated = args.gate_time or (
            args.gate_time_filter
            and re.search(args.gate_time_filter, name))
        gated = dict(counters(base[name]))
        thresholds = {key: args.threshold for key in gated}
        if time_gated:
            for key in TIME_KEYS:
                if key in base[name]:
                    gated[key] = base[name][key]
                    # --gate-time keeps the counter threshold (historic
                    # behaviour); the filter uses the wall threshold.
                    thresholds[key] = (args.time_threshold
                                       if not args.gate_time
                                       else args.threshold)
        for key, was in sorted(gated.items()):
            now = cur[name].get(key)
            if now is None:
                failures.append(
                    f"DROPPED   {name}:{key} (gated metric present in the "
                    "baseline but missing from the current run)")
                continue
            if was <= 0:
                # A zero baseline has no ratio, but a deterministic
                # counter growing from 0 is still a regression — do not
                # let it slip through ungated.
                if now > 0:
                    failures.append(f"REGRESSED {name}:{key} "
                                    f"{was:g} -> {now:g}")
                continue
            ratio = now / was
            threshold = thresholds.get(key, args.threshold)
            line = (f"{name}:{key} {was:g} -> {now:g} "
                    f"({100.0 * (ratio - 1.0):+.1f}%)")
            if ratio > 1.0 + threshold:
                failures.append("REGRESSED " + line)
            elif ratio < 1.0 - threshold:
                warnings.append(f"IMPROVED  {line} "
                                "(consider refreshing the baseline)")
        # Wall-clock drift is informational unless gated above.
        if not time_gated:
            for key in TIME_KEYS:
                was, now = base[name].get(key), cur[name].get(key)
                if not was or not now or was <= 0:
                    continue
                ratio = now / was
                if abs(ratio - 1.0) > args.threshold:
                    warnings.append(
                        f"TIME      {name}:{key} {was:.0f} -> {now:.0f} "
                        f"({100.0 * (ratio - 1.0):+.1f}%; not gated)")

    for line in warnings:
        print(line)
    for line in failures:
        print(line, file=sys.stderr)
    gated_total = sum(len(counters(b)) for b in base.values())
    print(f"compared {len(set(base) & set(cur))} benchmark(s), "
          f"{gated_total} gated metric(s), threshold "
          f"{100.0 * args.threshold:.0f}%: "
          f"{len(failures)} regression(s)")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_merge = sub.add_parser("merge", help="merge benchmark JSON outputs")
    p_merge.add_argument("-o", "--output", required=True)
    p_merge.add_argument("inputs", nargs="+")
    p_merge.set_defaults(func=merge)

    p_cmp = sub.add_parser("compare", help="gate current against baseline")
    p_cmp.add_argument("baseline")
    p_cmp.add_argument("current")
    p_cmp.add_argument("--threshold", type=float, default=0.15,
                       help="allowed relative regression (default 0.15)")
    p_cmp.add_argument("--gate-time", action="store_true",
                       help="also gate real_time/cpu_time (noisy on "
                            "shared runners; off by default)")
    p_cmp.add_argument("--gate-time-filter", default=None,
                       help="regex of benchmark names whose wall time is "
                            "gated at --time-threshold (for benches where "
                            "wall time is the product property)")
    p_cmp.add_argument("--time-threshold", type=float, default=0.5,
                       help="allowed relative wall-time regression for "
                            "--gate-time-filter matches (default 0.5)")
    p_cmp.set_defaults(func=compare)

    args = parser.parse_args()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
