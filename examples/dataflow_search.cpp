/**
 * @file
 * Layoutloop driver: co-search (dataflow, layout) for a layer you describe
 * on the command line and print the top choices by EDP, plus what the same
 * layer costs on the fixed-dataflow baselines — then cross-check the
 * dataflow families on the cycle-accurate simulator via the serve batch
 * engine: each (dataflow x array-size) point is one engine job, executed
 * concurrently with shared plan caching and verified bit-exactly against
 * the reference operators.
 *
 *   $ ./dataflow_search [C H W M R stride pad]
 *   $ ./dataflow_search 256 14 14 256 3 1 1
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "baselines/arch_zoo.hpp"
#include "common/table.hpp"
#include "layoutloop/mapper.hpp"
#include "serve/engine.hpp"
#include "sim/driver.hpp"

using namespace feather;

namespace {

/**
 * The CLI layer, capped to a size the cycle simulator sweeps in seconds
 * (the analytic mapper above handles the full-size layer; the sim sweep
 * is a bit-exact cross-check of the dataflow families, not a re-search).
 */
LayerSpec
simSizedLayer(const LayerSpec &layer)
{
    const ConvShape &c = layer.conv;
    return sim::convLayer2d("sim_check", std::min<int64_t>(c.c, 32),
                            std::min<int64_t>(c.h, 14),
                            std::min<int64_t>(c.w, 14),
                            std::min<int64_t>(c.m, 32), c.r, c.s, c.stride,
                            c.pad);
}

} // namespace

int
main(int argc, char **argv)
{
    LayerSpec layer = sim::convLayer("cli_layer", 256, 14, 256, 3, 1, 1);
    if (argc == 8) {
        layer = sim::convLayer2d("cli_layer", std::atoll(argv[1]),
                                 std::atoll(argv[2]), std::atoll(argv[3]),
                                 std::atoll(argv[4]), std::atoll(argv[5]),
                                 std::atoll(argv[5]), std::atoll(argv[6]),
                                 std::atoll(argv[7]));
    } else if (argc != 1) {
        std::fprintf(stderr, "usage: %s [C H W M R stride pad]\n", argv[0]);
        return 2;
    }
    std::printf("layer: %s\n\n", layer.conv.toString().c_str());

    // FEATHER: full (dataflow, layout) co-search; show the per-layout best
    // to expose the interaction the paper motivates.
    const ArchSpec arch = featherArch(WorkloadKind::Conv);
    const Mapper mapper(arch);
    std::printf("FEATHER 16x16 (dataflow, layout) co-search, best per "
                "layout:\n");
    Table t({"layout", "mapping", "util", "slowdown", "cycles", "EDP rank"});
    struct Entry
    {
        Layout layout;
        EvalResult r;
    };
    std::vector<Entry> entries;
    for (const Layout &layout : arch.layouts) {
        ArchSpec one = arch;
        one.layouts = {layout};
        entries.push_back({layout, Mapper(one).searchLayer(layer)});
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.r.edp() < b.r.edp();
              });
    int rank = 0;
    for (const Entry &e : entries) {
        ++rank;
        t.addRow({e.layout.toString(), e.r.mapping.toString(),
                  fmtPercent(e.r.practical_utilization),
                  fmtDouble(e.r.slowdown, 2),
                  std::to_string(e.r.total_cycles), std::to_string(rank)});
    }
    std::printf("%s\n", t.toString().c_str());

    // Baselines on the same layer.
    Table b({"design", "util", "slowdown", "cycles", "vs FEATHER"});
    const EvalResult best = mapper.searchLayer(layer);
    for (const ArchSpec &a :
         {nvdlaLike(WorkloadKind::Conv), eyerissLike(WorkloadKind::Conv),
          sigmaLikeFixed(WorkloadKind::Conv, "HWC_C32"),
          featherArch(WorkloadKind::Conv)}) {
        const EvalResult r = Mapper(a).searchLayer(layer);
        b.addRow({a.name, fmtPercent(r.practical_utilization),
                  fmtDouble(r.slowdown, 2), std::to_string(r.total_cycles),
                  fmtRatio(double(r.total_cycles) /
                           double(best.total_cycles))});
    }
    std::printf("%s\n", b.toString().c_str());

    // Cycle-sim cross-check: sweep the dataflow families over two array
    // sizes as one multi-threaded engine batch (every job bit-exact
    // against the reference operators).
    sim::Scenario scenario;
    scenario.name = "sim_check";
    scenario.summary = "dataflow_search cycle-sim cross-check";
    scenario.layers = {{simSizedLayer(layer), sim::DataflowKind::Canonical,
                        0.02f}};
    scenario.default_aw = 8;
    scenario.default_ah = 8;

    serve::SweepSpec sweep;
    sweep.inline_scenario = scenario;
    sweep.dataflows = {"ws", "cp", "wp"};
    sweep.arrays = {{8, 8}, {16, 16}};

    serve::BatchOptions bopts;
    bopts.num_threads = 4;
    serve::BatchEngine engine(bopts);
    std::vector<std::string> skipped;
    std::string error;
    const std::optional<serve::BatchReport> report =
        engine.sweep(sweep, &skipped, &error);
    if (!report) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
    }
    std::printf("cycle-sim cross-check of %s on the serve engine "
                "(%zu jobs, %llu plan-cache hits):\n",
                scenario.layers.front().layer.conv.toString().c_str(),
                report->jobs.size(),
                (unsigned long long)report->cache.hits);
    for (const std::string &why : skipped) {
        std::printf("skipped %s\n", why.c_str());
    }
    std::printf("%s", report->summaryTable().c_str());
    return report->allOk() ? 0 : 1;
}
