/**
 * @file
 * BIRRD playground: build an 8-input BIRRD, request a reduction/reordering
 * pattern, print the per-stage Egg configuration the router generates, and
 * push values through the network to show the sums arriving at their
 * re-targeted banks.
 *
 *   $ ./birrd_playground
 */

#include <cstdio>

#include "noc/router.hpp"

using namespace feather;

namespace {

void
showPattern(const char *title, BirrdRouter &router, const BirrdTopology &topo,
            const RouteRequest &req)
{
    std::printf("\n--- %s ---\n", title);
    std::printf("inputs : ");
    for (int g : req.group_of_input) {
        if (g < 0) {
            std::printf("  . ");
        } else {
            std::printf(" g%d ", g);
        }
    }
    std::printf("\ndests  : ");
    for (size_t g = 0; g < req.dests_of_group.size(); ++g) {
        std::printf("g%zu->{", g);
        for (size_t d = 0; d < req.dests_of_group[g].size(); ++d) {
            std::printf("%s%d", d ? "," : "", req.dests_of_group[g][d]);
        }
        std::printf("} ");
    }
    std::printf("\n");

    const auto cfg = router.route(req);
    if (!cfg) {
        std::printf("routing failed!\n");
        return;
    }
    for (size_t s = 0; s < cfg->size(); ++s) {
        std::printf("stage %zu: ", s);
        for (const EggConfig &e : (*cfg)[s]) {
            std::printf("%-3s ", toString(e).c_str());
        }
        std::printf("\n");
    }

    // Push the values 1, 2, 4, ..., through and show the outputs.
    BirrdNetwork net(topo.numInputs());
    std::vector<PortValue> in(size_t(topo.numInputs()));
    for (int i = 0; i < topo.numInputs(); ++i) {
        if (req.group_of_input[size_t(i)] >= 0) in[size_t(i)] = 1 << i;
    }
    const auto out = net.evaluate(*cfg, in);
    std::printf("outputs: ");
    for (int i = 0; i < topo.numInputs(); ++i) {
        if (out[size_t(i)]) {
            std::printf("[%d]=%lld ", i, (long long)*out[size_t(i)]);
        }
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    const BirrdTopology topo(8);
    BirrdRouter router(topo);
    std::printf("8-input BIRRD: %d stages x %d switches, %d config bits "
                "per cycle\n",
                topo.numStages(), topo.switchesPerStage(),
                topo.configBits());

    // 1. Pure reordering: reverse the banks (a layout transpose).
    showPattern("pure reorder: reverse all 8 lanes", router, topo,
                RouteRequest::permutation({7, 6, 5, 4, 3, 2, 1, 0}));

    // 2. Fig. 9-style 8:4 reduction with interleaved groups.
    showPattern("4 interleaved 2:1 reductions", router, topo,
                RouteRequest::reduction({0, 1, 0, 1, 2, 3, 2, 3},
                                        {0, 1, 2, 3}));

    // 3. The same reduction re-targeted to different banks: RIR's layout
    //    switch is literally a different dest vector.
    showPattern("same reduction, banks rotated (RIR re-target)", router,
                topo,
                RouteRequest::reduction({0, 1, 0, 1, 2, 3, 2, 3},
                                        {5, 6, 7, 4}));

    // 4. Uneven groups (Fig. 10 workload C): 3:1 + 5:1.
    showPattern("uneven groups 3:1 and 5:1", router, topo,
                RouteRequest::reduction({0, 0, 0, 1, 1, 1, 1, 1}, {6, 1}));

    // 5. Broadcast extension: one full reduction duplicated to two banks.
    RouteRequest bc;
    bc.group_of_input = {0, 0, 0, 0, 0, 0, 0, 0};
    bc.dests_of_group = {{1, 5}};
    bc.allow_broadcast = true;
    showPattern("8:1 reduction broadcast to banks 1 and 5", router, topo,
                bc);

    std::printf("\nrouter stats: %lld requests, %lld cache hits, %lld via "
                "path search, %lld via fallback\n",
                (long long)router.stats().requests,
                (long long)router.stats().cache_hits,
                (long long)router.stats().solved_path_search,
                (long long)router.stats().solved_fallback);
    return 0;
}
