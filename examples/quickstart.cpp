/**
 * @file
 * Quickstart: run one int8 convolution on a 4x4 FEATHER instance, switch
 * the activation layout from channel-last to row-major *during* the
 * reduction (RIR), and check the result against a reference convolution.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "common/rng.hpp"
#include "feather/accelerator.hpp"
#include "tensor/reference_ops.hpp"

using namespace feather;

int
main()
{
    // 1. Describe the layer: 8 input channels, 8x8 feature map, 8 kernels
    //    of 3x3, stride 1, pad 1.
    LayerSpec layer;
    layer.name = "quickstart_conv";
    layer.type = OpType::Conv;
    layer.conv = ConvShape{1, 8, 8, 8, 8, 3, 3, 1, 1, false};

    // 2. Random int8 activations and weights.
    Rng rng(2024);
    Int8Tensor iacts({1, 8, 8, 8});
    Int8Tensor weights({8, 8, 3, 3});
    iacts.randomize(rng, -60, 60);
    weights.randomize(rng, -60, 60);

    // 3. Build a 4x4 FEATHER and load the activations channel-last.
    FeatherConfig cfg;
    cfg.aw = 4; // PE columns == BIRRD inputs == StaB banks
    cfg.ah = 4; // PE rows
    FeatherAccelerator acc(cfg);
    acc.loadIacts(iacts, Layout::parse("HWC_C4"));

    // 4. Pick a mapping (the canonical weight-stationary one) and run.
    //    The out layout is the *next* layer's concordant layout — this is
    //    the zero-cost dataflow/layout co-switch.
    const NestMapping mapping = NestMapping::canonical(layer, cfg.aw, cfg.ah);
    LayerQuant quant;
    quant.multiplier = 0.03f; // s_x * s_w / s_out
    const LayerStats stats = acc.run(layer, weights, mapping,
                                     Layout::parse("CHW_W4"), quant);

    // 5. Read back and verify bit-exactly against the reference op.
    const Int8Tensor got = acc.readActivations();
    const Int8Tensor ref = requantizeTensor(conv2d(iacts, weights, 1, 1, 0, 0),
                                            quant.multiplier, 0);
    int64_t mismatches = 0;
    for (int64_t i = 0; i < ref.numel(); ++i) {
        if (got[size_t(i)] != ref[size_t(i)]) ++mismatches;
    }

    std::printf("FEATHER quickstart\n");
    std::printf("  layer:        %s\n", layer.toString().c_str());
    std::printf("  mapping:      %s\n", mapping.toString().c_str());
    std::printf("  cycles:       %lld (stalls: read %lld, write %lld)\n",
                (long long)stats.cycles, (long long)stats.read_stall_cycles,
                (long long)stats.write_stall_cycles);
    std::printf("  utilization:  %.1f%%\n",
                100.0 * stats.utilization(cfg.aw * cfg.ah));
    std::printf("  layout:       HWC_C4 in -> CHW_W4 out (switched in "
                "reduction)\n");
    std::printf("  bit-exact:    %s\n", mismatches ? "NO" : "yes");
    return mismatches ? 1 : 0;
}
