/**
 * @file
 * Quickstart: run one int8 convolution on a 4x4 FEATHER instance, switch
 * the activation layout from channel-last to row-major *during* the
 * reduction (RIR), and check the result against a reference convolution.
 *
 * All the mechanics (random inputs, accelerator setup, reference check)
 * come from the shared sim driver; this file only picks the shapes.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "sim/driver.hpp"

using namespace feather;

int
main()
{
    // 1. Describe the layer: 8 input channels, 8x8 feature map, 8 kernels
    //    of 3x3, stride 1, pad 1.
    const LayerSpec layer = sim::convLayer("quickstart_conv", 8, 8, 8, 3, 1,
                                           1);

    // 2. Build a 4x4 FEATHER, load the activations channel-last, run the
    //    canonical weight-stationary mapping, and write the oActs in the
    //    *next* layer's concordant layout (row-major) — the zero-cost
    //    dataflow/layout co-switch.
    sim::RunOptions opts;
    opts.aw = 4; // PE columns == BIRRD inputs == StaB banks
    opts.ah = 4; // PE rows
    opts.seed = 2024;
    opts.in_layout = Layout::parse("HWC_C4");
    opts.out_layout = Layout::parse("CHW_W4");
    opts.quant.multiplier = 0.03f; // s_x * s_w / s_out
    const sim::RunResult r = sim::runLayer(layer, opts);

    // 3. The driver already diffed the read-back against the reference
    //    conv2d + requantize; report the verdict.
    std::printf("FEATHER quickstart\n");
    std::printf("  layer: %s\n", layer.conv.toString().c_str());
    std::printf("  mapping: %s\n", r.mapping.toString().c_str());
    std::printf("  cycles: %lld (%.1f%% PE utilization)\n",
                (long long)r.stats.cycles,
                100.0 * r.utilization(opts.aw, opts.ah));
    std::printf("  iActs read as %s, oActs written as %s via RIR\n",
                r.in_layout.toString().c_str(),
                r.out_layout.toString().c_str());
    std::printf("  bit-exact vs reference conv: %s\n",
                r.bitExact() ? "yes" : "NO");
    return r.bitExact() ? 0 : 1;
}
