/**
 * @file
 * Schedule a ResNet-50 bottleneck block (1x1 -> 3x3 -> 1x1) end-to-end
 * with the per-layer dataflow/layout scheduler: every layer's dataflow
 * candidates are simulated, switching costs (BIRRD reorder cycles between
 * discordant layouts) price the edges, and a dynamic-programming shortest
 * path picks the per-layer schedule — which is then executed as one chain
 * through the StaB ping-pong and verified bit-exactly against the
 * reference operators.
 *
 * The block is the `resnet_block` entry of the built-in model registry
 * (also runnable as `feather_cli --model resnet_block`).
 *
 *   $ ./resnet_block_demo
 */

#include <cstdio>

#include "model/scheduler.hpp"

using namespace feather;

int
main()
{
    const model::ModelGraph *graph = model::findModel("resnet_block");
    if (!graph) {
        std::fprintf(stderr, "resnet_block missing from model registry\n");
        return 2;
    }

    model::SchedulerOptions opts;
    opts.num_threads = 4;
    model::Scheduler scheduler(opts);
    std::string error;
    const auto cmp = scheduler.compare(
        *graph, model::SchedulePolicy{model::ScheduleKind::PerLayer,
                                      sim::DataflowKind::Canonical, {}},
        &error);
    if (!cmp) {
        std::fprintf(stderr, "scheduling failed: %s\n", error.c_str());
        return 2;
    }

    const model::ScheduleResult &best = cmp->primary();
    std::printf("ResNet bottleneck on %dx%d FEATHER, per-layer "
                "(dataflow, layout) schedule:\n",
                best.aw, best.ah);
    const int num_pes = best.aw * best.ah;
    for (const model::LayerChoice &l : best.layers) {
        std::printf("  %-11s %-15s %8lld cycles  util %5.1f%%  "
                    "reorder-in %4lld  oActs -> %s\n",
                    l.layer.c_str(), sim::toString(l.dataflow).c_str(),
                    (long long)l.cycles,
                    l.cycles > 0
                        ? 100.0 * double(l.macs) /
                              (double(l.cycles) * num_pes)
                        : 0.0,
                    (long long)l.reorder_cycles,
                    l.plan.out_layout.toString().c_str());
    }

    std::printf("  schedules measured:");
    for (const model::ScheduleResult &r : cmp->schedules) {
        std::printf(" %s=%lld", r.schedule.c_str(), (long long)r.cycles);
    }
    std::printf("\n");

    const int best_fixed = cmp->bestFixed();
    if (best_fixed >= 0) {
        std::printf("  vs best fixed dataflow (%s): %.2fx\n",
                    cmp->schedules[size_t(best_fixed)].schedule.c_str(),
                    cmp->speedupVsBestFixed());
    }
    std::printf("  final activations bit-exact: %s\n",
                best.bitExact() ? "yes" : "NO");
    return best.bitExact() ? 0 : 1;
}
