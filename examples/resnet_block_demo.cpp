/**
 * @file
 * Run a ResNet-50 bottleneck block (1x1 -> 3x3 -> 1x1) end-to-end on the
 * FEATHER cycle simulator at 8x8, chaining layers through the StaB
 * ping-pong with a *different* activation layout per layer — the paper's
 * layer-granularity (dataflow, layout) co-switching — and verify the final
 * activations bit-exactly against the reference operators.
 *
 * The block is the `resnet_block` entry of the shared scenario registry
 * (also runnable as `feather_cli --workload resnet_block`).
 *
 *   $ ./resnet_block_demo
 */

#include <cstdio>

#include "sim/scenario.hpp"

using namespace feather;

int
main()
{
    const sim::Scenario *scenario = sim::findScenario("resnet_block");
    if (!scenario) {
        std::fprintf(stderr, "resnet_block scenario missing from registry\n");
        return 2;
    }

    std::string error;
    const auto run = sim::runScenario(*scenario, {}, &error);
    if (!run) {
        std::fprintf(stderr, "run failed: %s\n", error.c_str());
        return 2;
    }

    std::printf("ResNet bottleneck on %dx%d FEATHER (dataflow+layout "
                "co-switched per layer):\n",
                run->aw, run->ah);
    const int num_pes = run->aw * run->ah;
    for (size_t i = 0; i < run->chain.layers.size(); ++i) {
        const sim::RunResult &r = run->chain.layers[i];
        std::printf("  %-11s %8lld cycles  util %5.1f%%  cols %s, oActs -> "
                    "%s\n",
                    scenario->layers[i].layer.name.c_str(),
                    (long long)r.stats.cycles,
                    100.0 * r.stats.utilization(num_pes),
                    r.mapping.cols.front().dim == Dim::Q ? "Q-parallel"
                                                         : "C-parallel",
                    r.out_layout.toString().c_str());
    }

    std::printf("  total bank-conflict stalls: %lld (concordant layouts "
                "throughout)\n",
                (long long)run->chain.totalReadStalls());
    std::printf("  final activations bit-exact: %s\n",
                run->chain.bitExact() ? "yes" : "NO");
    return run->chain.bitExact() ? 0 : 1;
}
