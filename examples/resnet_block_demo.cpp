/**
 * @file
 * Run a ResNet-50 bottleneck block (1x1 -> 3x3 -> 1x1) end-to-end on the
 * FEATHER cycle simulator at 8x8, chaining layers through the StaB
 * ping-pong with a *different* activation layout per layer — the paper's
 * layer-granularity (dataflow, layout) co-switching — and verify the final
 * activations bit-exactly against the reference operators.
 *
 *   $ ./resnet_block_demo
 */

#include <cstdio>

#include "common/rng.hpp"
#include "feather/accelerator.hpp"
#include "tensor/reference_ops.hpp"

using namespace feather;

namespace {

LayerSpec
conv(const char *name, int64_t c, int64_t hw, int64_t m, int64_t rs,
     int64_t pad)
{
    LayerSpec l;
    l.name = name;
    l.type = OpType::Conv;
    l.conv = ConvShape{1, c, hw, hw, m, rs, rs, 1, pad, false};
    return l;
}

} // namespace

int
main()
{
    // A scaled bottleneck: 32 -> 8 -> 8(3x3) -> 32 channels on 14x14 maps
    // (full-width ResNet works the same; scaled keeps the demo fast).
    const LayerSpec l1 = conv("reduce_1x1", 32, 14, 8, 1, 0);
    const LayerSpec l2 = conv("conv_3x3", 8, 14, 8, 3, 1);
    const LayerSpec l3 = conv("expand_1x1", 8, 14, 32, 1, 0);

    Rng rng(7);
    Int8Tensor x({1, 32, 14, 14});
    Int8Tensor w1({8, 32, 1, 1}), w2({8, 8, 3, 3}), w3({32, 8, 1, 1});
    x.randomize(rng, -40, 40);
    w1.randomize(rng, -40, 40);
    w2.randomize(rng, -40, 40);
    w3.randomize(rng, -40, 40);

    FeatherConfig cfg;
    cfg.aw = 8;
    cfg.ah = 8;
    FeatherAccelerator acc(cfg);

    // Per-layer (dataflow, layout) schedule — the paper's co-switching:
    // 1x1 layers run window-parallel columns with a local C-tile, whose
    // concordant layout is row-major (a window is one line); the 3x3
    // layer runs channel-parallel columns, concordant with channel-last.
    // Each layer's RIR writes the *next* layer's layout.
    NestMapping window_parallel; // for the 1x1 layers
    window_parallel.cols = {{Dim::Q, 8}};
    window_parallel.rows = {{Dim::M, 8}};
    window_parallel.local = {{Dim::C, 8}};
    NestMapping channel_parallel; // for the 3x3 layer
    channel_parallel.cols = {{Dim::C, 8}};
    channel_parallel.rows = {{Dim::M, 8}};
    channel_parallel.local = {{Dim::R, 3}, {Dim::S, 3}};

    acc.loadIacts(x, Layout::parse("CHW_W8")); // row-major for layer 1

    LayerQuant q1, q2, q3;
    q1.multiplier = 0.02f;
    q2.multiplier = 0.03f;
    q3.multiplier = 0.02f;

    std::printf("ResNet bottleneck on 8x8 FEATHER (dataflow+layout "
                "co-switched per layer):\n");
    const LayerStats s1 = acc.run(l1, w1, window_parallel,
                                  Layout::parse("HWC_C8"), q1);
    std::printf("  %-11s %8lld cycles  util %5.1f%%  Q-parallel, oActs -> "
                "HWC_C8\n",
                l1.name.c_str(), (long long)s1.cycles,
                100.0 * s1.utilization(64));
    const LayerStats s2 = acc.run(l2, w2, channel_parallel,
                                  Layout::parse("CHW_W8"), q2);
    std::printf("  %-11s %8lld cycles  util %5.1f%%  C-parallel, oActs -> "
                "CHW_W8\n",
                l2.name.c_str(), (long long)s2.cycles,
                100.0 * s2.utilization(64));
    const LayerStats s3 = acc.run(l3, w3, window_parallel,
                                  Layout::parse("HWC_C8"), q3);
    std::printf("  %-11s %8lld cycles  util %5.1f%%  Q-parallel, oActs -> "
                "HWC_C8\n",
                l3.name.c_str(), (long long)s3.cycles,
                100.0 * s3.utilization(64));

    // Reference chain.
    const Int8Tensor r1 =
        requantizeTensor(conv2d(x, w1, 1, 0, 0, 0), q1.multiplier, 0);
    const Int8Tensor r2 =
        requantizeTensor(conv2d(r1, w2, 1, 1, 0, 0), q2.multiplier, 0);
    const Int8Tensor r3 =
        requantizeTensor(conv2d(r2, w3, 1, 0, 0, 0), q3.multiplier, 0);

    const Int8Tensor got = acc.readActivations();
    int64_t bad = 0;
    for (int64_t i = 0; i < r3.numel(); ++i) {
        if (got[size_t(i)] != r3[size_t(i)]) ++bad;
    }
    const int64_t total_stalls = s1.read_stall_cycles +
                                 s2.read_stall_cycles + s3.read_stall_cycles;
    std::printf("  total bank-conflict stalls: %lld (concordant layouts "
                "throughout)\n",
                (long long)total_stalls);
    std::printf("  final activations bit-exact: %s\n", bad ? "NO" : "yes");
    return bad ? 1 : 0;
}
