/**
 * @file
 * Fig. 10: per-layer flexible dataflows in FEATHER vs the fixed-dataflow
 * weight-stationary systolic array, on four irregular GEMM workloads, plus
 * the "change oAct layout" variant that retargets the same reduction to
 * different StaB banks purely by reconfiguring BIRRD.
 *
 * The cycle-sim sweep runs as one serve::BatchEngine batch: each workload
 * (and each oAct-layout retarget) is a JobSpec, executed concurrently on
 * the engine's thread pool with the per-(layer, aw, ah) planning artifacts
 * shared through its PlanCache.
 *
 * Expected shape (paper): the SA's utilization collapses on skewed shapes
 * (50% / 75% / 25%) while FEATHER's flexible reduction keeps near-full
 * utilization, and the layout re-target costs zero extra cycles (same
 * route count, different bank assignment).
 */

#include <cstdio>

#include "baselines/arch_zoo.hpp"
#include "baselines/systolic_array.hpp"
#include "common/table.hpp"
#include "layoutloop/mapper.hpp"
#include "serve/engine.hpp"
#include "sim/driver.hpp"

using namespace feather;

namespace {

/**
 * One Fig. 10 GEMM as an inline scenario for the batch engine. The M
 * (streaming) dimension is scaled up so the measurement reflects the
 * steady state, as the paper's Fig. 10 utilizations do — the raw workloads
 * are so small that warmup/fill would dominate any device.
 */
serve::JobSpec
gemmJob(const char *name, GemmShape g, const std::string &out_layout)
{
    sim::Scenario s;
    s.name = name;
    s.summary = "fig10 irregular GEMM";
    s.layers = {{sim::gemmLayer(name, g.m * 32, g.n, g.k),
                 sim::DataflowKind::Canonical, 0.01f}};
    s.default_aw = 4;
    s.default_ah = 4;

    serve::JobSpec job;
    job.name = name;
    job.inline_scenario = std::move(s);
    job.opts.out_layout = out_layout;
    job.explicit_seed = 7;
    return job;
}

} // namespace

int
main()
{
    std::printf("=== Fig. 10: FEATHER vs 4x4 systolic array on irregular "
                "GEMMs ===\n");

    struct Work
    {
        const char *name;
        GemmShape shape;
    };
    const std::vector<Work> works = {
        {"A (M8 K8 N4)", {8, 4, 8}},
        {"B (M6 K2 N8)", {6, 8, 2}},
        {"C (M8 K12 N3)", {8, 3, 12}},
        {"D (M4 K16 N1)", {4, 1, 16}},
    };

    // All six cycle sims (four workloads + two oAct retargets of workload
    // A) as one engine batch.
    std::vector<serve::JobSpec> jobs;
    for (const Work &w : works) {
        jobs.push_back(gemmJob(w.name, w.shape, "concordant"));
    }
    jobs.push_back(gemmJob("A oActs MK_K4", {8, 4, 8}, "MK_K4"));
    jobs.push_back(gemmJob("A oActs MK_M4", {8, 4, 8}, "MK_M4"));

    serve::BatchOptions bopts;
    bopts.num_threads = 4;
    serve::BatchEngine engine(bopts);
    const serve::BatchReport report = engine.run(jobs);
    if (!report.allOk()) {
        std::fprintf(stderr, "numeric mismatch or failed job:\n%s",
                     report.summaryTable().c_str());
        return 1;
    }

    const Mapper feather_mapper(featherArch(WorkloadKind::Gemm, 4, 4));
    Table t({"workload", "SA util", "FEATHER util (analytic)",
             "FEATHER util (cycle sim)"});
    for (size_t i = 0; i < works.size(); ++i) {
        const Work &w = works[i];
        LayerSpec layer;
        layer.type = OpType::Gemm;
        layer.gemm = w.shape;
        const double sa = saGemmUtilization(w.shape, 4, 4);
        const EvalResult best = feather_mapper.searchLayer(layer);
        t.addRow({w.name, fmtPercent(sa),
                  fmtPercent(best.practical_utilization),
                  fmtPercent(report.jobs[i].utilization)});
    }
    std::printf("%s", t.toString().c_str());

    // Workload A with a re-targeted oAct layout: the reduction pattern is
    // identical, only the BIRRD destinations (StaB banks) change.
    std::printf("\n--- Workload A: change oAct layout via RIR ---\n");
    const serve::JobResult &k4 = report.jobs[works.size()];
    const serve::JobResult &m4 = report.jobs[works.size() + 1];
    std::printf("oActs as MK_K4: util %s | oActs as MK_M4: util %s -> "
                "identical cost, different banks (paper: zero-cost "
                "re-target)\n",
                fmtPercent(k4.utilization).c_str(),
                fmtPercent(m4.utilization).c_str());

    std::printf("\nplan cache: %llu hits, %llu misses over %zu jobs\n",
                (unsigned long long)report.cache.hits,
                (unsigned long long)report.cache.misses,
                report.jobs.size());
    std::printf("\nExpected shape: SA 100%%/50%%/75%%/25%% vs FEATHER "
                "near-full on all four (paper Fig. 10).\n");
    return 0;
}
