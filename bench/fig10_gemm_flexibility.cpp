/**
 * @file
 * Fig. 10: per-layer flexible dataflows in FEATHER vs the fixed-dataflow
 * weight-stationary systolic array, on four irregular GEMM workloads, plus
 * the "change oAct layout" variant that retargets the same reduction to
 * different StaB banks purely by reconfiguring BIRRD.
 *
 * Expected shape (paper): the SA's utilization collapses on skewed shapes
 * (50% / 75% / 25%) while FEATHER's flexible reduction keeps near-full
 * utilization, and the layout re-target costs zero extra cycles (same
 * route count, different bank assignment).
 */

#include <cstdio>

#include "baselines/arch_zoo.hpp"
#include "baselines/systolic_array.hpp"
#include "common/table.hpp"
#include "layoutloop/mapper.hpp"
#include "sim/driver.hpp"

using namespace feather;

namespace {

/**
 * Run one GEMM on the 4x4 FEATHER cycle simulator and report utilization.
 * The M (streaming) dimension is scaled up so the measurement reflects the
 * steady state, as the paper's Fig. 10 utilizations do — the raw workloads
 * are so small that warmup/fill would dominate any device.
 */
double
featherCycleUtil(GemmShape g, const Layout &out_layout)
{
    g.m *= 32;
    sim::RunOptions opts;
    opts.aw = 4;
    opts.ah = 4;
    opts.seed = 7;
    opts.in_layout = Layout::parse("MK_K4");
    opts.out_layout = out_layout;
    opts.quant.multiplier = 0.01f;
    const sim::RunResult r =
        sim::runLayer(sim::gemmLayer("fig10", g.m, g.n, g.k), opts);
    if (!r.bitExact()) { // validate numerics while we are here
        std::fprintf(stderr, "numeric mismatch on %s\n",
                     g.toString().c_str());
        std::exit(1);
    }
    return r.utilization(opts.aw, opts.ah);
}

} // namespace

int
main()
{
    std::printf("=== Fig. 10: FEATHER vs 4x4 systolic array on irregular "
                "GEMMs ===\n");

    struct Work
    {
        const char *name;
        GemmShape shape;
    };
    const Work works[] = {
        {"A (M8 K8 N4)", {8, 4, 8}},
        {"B (M6 K2 N8)", {6, 8, 2}},
        {"C (M8 K12 N3)", {8, 3, 12}},
        {"D (M4 K16 N1)", {4, 1, 16}},
    };

    const Mapper feather_mapper(featherArch(WorkloadKind::Gemm, 4, 4));
    Table t({"workload", "SA util", "FEATHER util (analytic)",
             "FEATHER util (cycle sim)"});
    for (const Work &w : works) {
        LayerSpec layer;
        layer.type = OpType::Gemm;
        layer.gemm = w.shape;
        const double sa = saGemmUtilization(w.shape, 4, 4);
        const EvalResult best = feather_mapper.searchLayer(layer);
        const double sim = featherCycleUtil(w.shape, Layout::parse("MK_K4"));
        t.addRow({w.name, fmtPercent(sa),
                  fmtPercent(best.practical_utilization), fmtPercent(sim)});
    }
    std::printf("%s", t.toString().c_str());

    // Workload A with a re-targeted oAct layout: the reduction pattern is
    // identical, only the BIRRD destinations (StaB banks) change.
    std::printf("\n--- Workload A: change oAct layout via RIR ---\n");
    const double u1 = featherCycleUtil({8, 4, 8}, Layout::parse("MK_K4"));
    const double u2 = featherCycleUtil({8, 4, 8}, Layout::parse("MK_M4"));
    std::printf("oActs as MK_K4: util %s | oActs as MK_M4: util %s -> "
                "identical cost, different banks (paper: zero-cost "
                "re-target)\n",
                fmtPercent(u1).c_str(), fmtPercent(u2).c_str());

    std::printf("\nExpected shape: SA 100%%/50%%/75%%/25%% vs FEATHER "
                "near-full on all four (paper Fig. 10).\n");
    return 0;
}
