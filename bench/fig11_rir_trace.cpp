/**
 * @file
 * Fig. 11: the RIR walkthrough — FEATHER switching a channel-last
 * (HWC_C4) iAct layout to a row-major (CHW_W4) oAct layout *during*
 * reduction, with the StaB read/write traces the figure tabulates.
 *
 * Expected shape: reads hit (line, banks 0:3) one line per cycle — no
 * bank conflicts; writes land in per-bank addresses that materialise the
 * row-major layout; zero read/write stalls; numerics bit-exact.
 */

#include <cstdio>

#include "common/rng.hpp"
#include "common/log.hpp"
#include "common/table.hpp"
#include "feather/accelerator.hpp"
#include "tensor/reference_ops.hpp"

using namespace feather;

int
main()
{
    // Fig. 11 workload: 4-channel iActs, M=4 kernels, 3x3 weights
    // (R0:1S0:1 in the figure; we use the full 2x2 for the same effect).
    LayerSpec layer;
    layer.name = "fig11";
    layer.type = OpType::Conv;
    layer.conv = ConvShape{1, 4, 6, 6, 4, 2, 2, 1, 0, false};

    NestMapping m;
    m.cols = {{Dim::C, 4}};   // C-parallel columns: 4:1 BIRRD reduction
    m.rows = {{Dim::M, 4}};   // kernels across rows
    m.local = {{Dim::R, 2}, {Dim::S, 2}};

    Rng rng(5);
    Int8Tensor iacts({1, 4, 6, 6});
    Int8Tensor weights({4, 4, 2, 2});
    iacts.randomize(rng, -25, 25);
    weights.randomize(rng, -25, 25);

    FeatherConfig cfg;
    cfg.aw = 4;
    cfg.ah = 4;
    FeatherAccelerator acc(cfg);
    acc.enableTrace(24);
    acc.loadIacts(iacts, Layout::parse("HWC_C4"));
    LayerQuant quant;
    quant.multiplier = 0.02f;
    const LayerStats stats =
        acc.run(layer, weights, m, Layout::parse("CHW_W4"), quant);

    std::printf("=== Fig. 11: RIR switches channel-last -> row-major during "
                "reduction ===\n");
    Table t({"event", "step", "bank", "line"});
    for (const auto &ev : acc.trace()) {
        t.addRow({ev.kind == TraceEvent::Kind::StabRead ? "StaB-Ping read"
                                                        : "StaB-Pong write",
                  std::to_string(ev.step), std::to_string(ev.bank),
                  std::to_string(ev.addr)});
    }
    std::printf("%s", t.toString().c_str());

    const Int8Tensor got = acc.readActivations();
    const Int8Tensor ref = requantizeTensor(conv2d(iacts, weights, 1, 0, 0, 0),
                                            quant.multiplier, 0);
    int64_t mismatches = 0;
    for (int64_t i = 0; i < ref.numel(); ++i) {
        if (got[size_t(i)] != ref[size_t(i)]) ++mismatches;
    }

    std::printf("\nread stalls: %lld (paper: zero — reads are one line x 4 "
                "banks per cycle)\n",
                (long long)stats.read_stall_cycles);
    std::printf("write stalls: %lld (paper: zero — 4 iActs reduce to 1 oAct "
                "per bank)\n",
                (long long)stats.write_stall_cycles);
    std::printf("oActs bit-exact vs reference: %s\n",
                mismatches == 0 ? "yes" : "NO");
    std::printf("oActs now stored row-major (CHW_W4): the next layer "
                "consumes them as its concordant iAct layout.\n");
    return mismatches == 0 ? 0 : 1;
}
