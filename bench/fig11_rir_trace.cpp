/**
 * @file
 * Fig. 11: the RIR walkthrough — FEATHER switching a channel-last
 * (HWC_C4) iAct layout to a row-major (CHW_W4) oAct layout *during*
 * reduction, with the StaB read/write traces the figure tabulates.
 *
 * Expected shape: reads hit (line, banks 0:3) one line per cycle — no
 * bank conflicts; writes land in per-bank addresses that materialise the
 * row-major layout; zero read/write stalls; numerics bit-exact.
 */

#include <cstdio>

#include "common/table.hpp"
#include "sim/driver.hpp"

using namespace feather;

int
main()
{
    // Fig. 11 workload: 4-channel iActs, M=4 kernels, 3x3 weights
    // (R0:1S0:1 in the figure; we use the full 2x2 for the same effect).
    const LayerSpec layer = sim::convLayer("fig11", 4, 6, 4, 2, 1, 0);
    NestMapping m;
    m.cols = {{Dim::C, 4}};   // C-parallel columns: 4:1 BIRRD reduction
    m.rows = {{Dim::M, 4}};   // kernels across rows
    m.local = {{Dim::R, 2}, {Dim::S, 2}};

    sim::RunOptions opts;
    opts.aw = 4;
    opts.ah = 4;
    opts.seed = 5;
    opts.mapping = m;
    opts.in_layout = Layout::parse("HWC_C4");
    opts.out_layout = Layout::parse("CHW_W4");
    opts.trace_events = 24;
    const sim::RunResult r = sim::runLayer(layer, opts);

    std::printf("=== Fig. 11: RIR switches channel-last -> row-major during "
                "reduction ===\n");
    Table t({"event", "step", "bank", "line"});
    for (const auto &ev : r.trace) {
        t.addRow({ev.kind == TraceEvent::Kind::StabRead ? "StaB-Ping read"
                                                        : "StaB-Pong write",
                  std::to_string(ev.step), std::to_string(ev.bank),
                  std::to_string(ev.addr)});
    }
    std::printf("%s", t.toString().c_str());

    std::printf("\nread stalls: %lld (paper: zero — reads are one line x 4 "
                "banks per cycle)\n",
                (long long)r.stats.read_stall_cycles);
    std::printf("write stalls: %lld (paper: zero — 4 iActs reduce to 1 oAct "
                "per bank)\n",
                (long long)r.stats.write_stall_cycles);
    std::printf("oActs bit-exact vs reference: %s\n",
                r.bitExact() ? "yes" : "NO");
    std::printf("oActs now stored row-major (CHW_W4): the next layer "
                "consumes them as its concordant iAct layout.\n");
    return r.bitExact() ? 0 : 1;
}
