/**
 * @file
 * Fig. 13: Layoutloop-based latency and energy comparison across nine
 * design points on BERT, ResNet-50 and MobileNet-V3.
 *
 * For each design the mapper co-searches (dataflow, layout) within the
 * design's flexibility; the table reports normalized latency (FEATHER =
 * 1.00x, split into dataflow / bank-conflict-stall / off-chip-reorder
 * shares), normalized pJ/MAC, and MAC-weighted steady-state utilization.
 *
 * Expected shape (paper): FEATHER 1.00x with ~100%/100%/98%+ utilization
 * and zero conflict stalls; NVDLA ~2x latency from fixed parallelism;
 * Eyeriss between; SIGMA-fixed close in latency but worse energy;
 * off-chip reordering visible on MobileNet-V3 (low arithmetic intensity);
 * line-rotation/transpose/transpose+row in between, with transpose+row no
 * better than transpose alone.
 */

#include <cstdio>

#include "baselines/arch_zoo.hpp"
#include "common/table.hpp"
#include "layoutloop/mapper.hpp"
#include "workload/model_zoo.hpp"

using namespace feather;

namespace {

void
runWorkload(const char *name, WorkloadKind kind,
            const std::vector<LayerSpec> &model)
{
    std::printf("\n=== Fig. 13: %s ===\n", name);
    const auto designs = fig13DesignPoints(kind);

    struct Row
    {
        std::string design;
        ModelEval eval;
    };
    std::vector<Row> rows;
    for (const ArchSpec &arch : designs) {
        rows.push_back({arch.name, Mapper(arch).searchModel(model)});
    }
    const Row &feather = rows.back();
    const double f_cycles = double(feather.eval.totalCycles());
    const double f_pj_mac = feather.eval.totalEnergyPj() /
                            double(feather.eval.totalMacs());

    Table t({"design", "norm. latency", "stall share", "reorder share",
             "norm. pJ/MAC", "avg util"});
    for (const Row &row : rows) {
        const double cycles = double(row.eval.totalCycles());
        const double pj_mac = row.eval.totalEnergyPj() /
                              double(row.eval.totalMacs());
        t.addRow({row.design, fmtRatio(cycles / f_cycles),
                  fmtPercent(double(row.eval.totalStallCycles()) / cycles),
                  fmtPercent(double(row.eval.totalReorderCycles()) / cycles),
                  fmtRatio(pj_mac / f_pj_mac),
                  fmtPercent(row.eval.avgPracticalUtilization())});
    }
    std::printf("%s", t.toString().c_str());
}

} // namespace

int
main()
{
    runWorkload("BERT-base (seq 512)", WorkloadKind::Gemm, bertBase(512));
    runWorkload("ResNet-50", WorkloadKind::Conv, resnet50());
    runWorkload("MobileNet-V3-Large", WorkloadKind::Conv,
                mobilenetV3Large());

    std::printf("\nPaper reference points: FEATHER 1.00x with 100%%/100%%/"
                "98.3%% utilization; NVDLA 2.00x/2.00x/2.89x latency and up "
                "to 6.43x pJ/MAC;\nEyeriss 1.43x/1.27x/1.87x; SIGMA-fixed "
                "within ~1.2x latency but 1.3-1.5x energy; transpose+row == "
                "transpose.\n");
    return 0;
}
