/**
 * @file
 * Ablation / microbenchmark: whole-graph pipeline scheduling over the
 * heterogeneous fleet (google-benchmark).
 *
 * Runs the (layer, device, candidate) DP for each built-in model over
 * the canonical three-device CI fleet (feather:16x16, feather:32x32,
 * tpu-like), analytic candidate tier. Wall time per schedule is the
 * reported figure; the deterministic DP counters are the CI contract:
 *
 * Gated deterministic counters (per model):
 *   - est_total      DP objective (estimated cycles incl. hand-offs)
 *   - search_nodes   (layer, device, candidate) states the DP relaxed
 *   - handoffs       cross-device edges in the chosen schedule
 *   - handoff_cycles summed handoffCost of those edges
 *
 * A drop in search_nodes means the DP stopped exploring part of the
 * placement space; a change in handoffs/est_total means the chosen
 * pipeline split moved. Either must be a deliberate decision, not an
 * accident.
 */

#include <benchmark/benchmark.h>

#include "model/fleet.hpp"
#include "model/graph.hpp"
#include "model/scheduler.hpp"

using namespace feather;

namespace {

constexpr const char *kFleet = "feather:16x16,feather:32x32,tpu-like";

/** One DP solve of @p model_name over the CI fleet per iteration. */
void
BM_GraphPipeline(benchmark::State &state, const char *model_name)
{
    const model::ModelGraph *graph = model::findModel(model_name);
    if (graph == nullptr) {
        state.SkipWithError("unknown built-in model");
        return;
    }
    std::string error;
    model::SchedulerOptions opts;
    opts.engine = sim::EngineMode::Analytic;
    if (!model::parseFleetSpec(kFleet, &opts.fleet, &error)) {
        state.SkipWithError(error.c_str());
        return;
    }
    const std::optional<model::SchedulePolicy> policy =
        model::parseSchedule("per-layer", &error);
    if (!policy) {
        state.SkipWithError(error.c_str());
        return;
    }

    model::ScheduleResult result;
    for (auto _ : state) {
        model::Scheduler scheduler(opts); // fresh plan cache: full search
        const std::optional<model::Evaluation> eval =
            scheduler.evaluate(*graph, &error);
        if (!eval) {
            state.SkipWithError(error.c_str());
            return;
        }
        const std::optional<model::ScheduleResult> r =
            scheduler.schedule(*graph, *eval, *policy, &error);
        if (!r) {
            state.SkipWithError(error.c_str());
            return;
        }
        result = *r;
        benchmark::DoNotOptimize(result.est_total);
    }
    state.counters["est_total"] = double(result.est_total);
    state.counters["search_nodes"] = double(result.search_nodes);
    state.counters["handoffs"] = double(result.handoffs);
    state.counters["handoff_cycles"] = double(result.handoff_cycles);
}

BENCHMARK_CAPTURE(BM_GraphPipeline, resnet_block, "resnet_block")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_GraphPipeline, mobilenet_slice, "mobilenet_slice")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_GraphPipeline, bert_mlp, "bert_mlp")
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
