/**
 * @file
 * Fig. 5f: size of the *concordant dataflow space* under each reordering
 * pattern — how many (parallelism, shape) choices run without bank
 * conflicts on a fixed stored layout.
 *
 * Method: enumerate the TOPS mapping candidates of a 16x16 array for a
 * representative layer, then count how many are conflict-free when the
 * design's reorder capability is applied to a fixed HWC_C32 layout (for
 * RIR: to the best of the whole layout space — arbitrary reorder makes
 * every layout reachable).
 *
 * Expected shape (paper): Fixed < LineRotation < Transpose <= Row-Reorder
 * < ArbitraryReorder, with arbitrary reorder making the entire space
 * concordant.
 */

#include <cstdio>

#include "baselines/arch_zoo.hpp"
#include "common/table.hpp"
#include "layoutloop/mapper.hpp"
#include "sim/driver.hpp"

using namespace feather;

namespace {

int
countConcordant(const ArchSpec &arch_in, const LayerSpec &layer)
{
    // Use a coarsely banked buffer (few big banks) so concurrent strided
    // lines actually collide — the regime the paper's Fig. 5 illustrates
    // ("practical designs like the 128x128 TPU further amplify the need").
    ArchSpec arch = arch_in;
    arch.iact_buffer.lines_per_bank = 64;

    const Mapper mapper(featherArch(WorkloadKind::Conv)); // full TOPS space
    int concordant = 0;
    for (const Mapping &m : mapper.candidateMappings(layer)) {
        bool ok = false;
        for (const Layout &l : Mapper(arch).candidateLayouts(layer)) {
            const EvalResult r = evaluateMapping(arch, layer, m, l);
            if (r.valid && r.slowdown <= 1.0 + 1e-9) {
                ok = true;
                break;
            }
        }
        if (ok) ++concordant;
    }
    return concordant;
}

} // namespace

int
main()
{
    const LayerSpec layer =
        sim::convLayer("ResNet-50 conv (C=256, 14x14, 3x3)", 256, 14, 256, 3,
                       1, 1);

    const Mapper tops(featherArch(WorkloadKind::Conv));
    const int total = int(tops.candidateMappings(layer).size());

    struct Row
    {
        const char *pattern;
        ArchSpec arch;
    };
    std::vector<Row> rows;
    rows.push_back({"fixed layout",
                    sigmaLikeFixed(WorkloadKind::Conv, "HWC_C32")});
    rows.push_back({"line rotation (Medusa)", medusaLike(WorkloadKind::Conv)});
    rows.push_back({"transpose (MTIA)", mtiaLike(WorkloadKind::Conv)});
    {
        ArchSpec trr = tpuLike(WorkloadKind::Conv);
        // Count over the full TOPS space for comparability.
        trr.flex = featherArch(WorkloadKind::Conv).flex;
        rows.push_back({"transpose+row-reorder (TPU)", trr});
    }
    rows.push_back({"arbitrary reorder (FEATHER RIR)",
                    featherArch(WorkloadKind::Conv)});

    std::printf("=== Fig. 5f: concordant dataflow space per reorder "
                "pattern ===\n");
    std::printf("layer: %s; TOPS candidate mappings: %d\n\n",
                layer.name.c_str(), total);
    Table t({"reorder pattern", "concordant mappings", "share of space"});
    for (const auto &row : rows) {
        const int n = countConcordant(row.arch, layer);
        t.addRow({row.pattern, std::to_string(n),
                  fmtPercent(double(n) / double(total))});
    }
    std::printf("%s", t.toString().c_str());
    std::printf("\nExpected ordering: fixed <= rotation <= transpose <= "
                "transpose+row <= arbitrary (=100%%).\n");
    return 0;
}
