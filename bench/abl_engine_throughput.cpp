/**
 * @file
 * Ablation / microbenchmark: sweep throughput of the two engine tiers
 * (google-benchmark).
 *
 * Runs the same fixed (dataflow x array) sweep through serve::BatchEngine
 * under both EngineModes and reports jobs per wall second. The analytic
 * tier exists to make mapping-space sweeps cheap, so its *wall time* is a
 * product property here, not noise: CI gates BM_SweepAnalytic's time with
 * a generous threshold (see .github/workflows/perf.yml) on top of the
 * usual deterministic-counter gate.
 *
 * Gated deterministic counters:
 *   - jobs          sweep grid points that actually ran
 *   - total_cycles  summed simulated cycles over the report (bit-stable
 *                   in cycle mode, deterministic closed-form in analytic)
 * The speedup of analytic over cycle mode is visible in CI artifacts as
 * the ratio of the two suites' real_time.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "serve/engine.hpp"

using namespace feather;

namespace {

/** The fixed sweep both tiers run: every dataflow family over three
 *  array sizes of a three-layer residual block. */
serve::SweepSpec
fixedSweep()
{
    serve::SweepSpec sweep;
    sweep.scenario = "resnet_block";
    sweep.dataflows = {"", "ws", "cp", "wp"};
    sweep.arrays = {{4, 4}, {8, 8}, {16, 16}};
    return sweep;
}

void
runSweepBench(benchmark::State &state, sim::EngineMode mode)
{
    serve::BatchOptions opts;
    opts.num_threads = 1; // single-threaded: measure the engine, not the pool
    opts.engine = mode;

    size_t jobs = 0;
    int64_t total_cycles = 0;
    for (auto _ : state) {
        serve::BatchEngine engine(opts); // fresh plan cache every iteration
        std::string error;
        const auto report = engine.sweep(fixedSweep(), nullptr, &error);
        if (!report || !report->allOk()) {
            state.SkipWithError(("sweep failed: " + error).c_str());
            return;
        }
        jobs = report->jobs.size();
        total_cycles = report->totalCycles();
        benchmark::DoNotOptimize(total_cycles);
    }
    // Deterministic counters for the CI perf gate; wall time is reported
    // by the framework (and gated for the analytic suite only).
    state.counters["jobs"] = double(jobs);
    state.counters["total_cycles"] = double(total_cycles);
}

void
BM_SweepCycle(benchmark::State &state)
{
    runSweepBench(state, sim::EngineMode::Cycle);
}

void
BM_SweepAnalytic(benchmark::State &state)
{
    runSweepBench(state, sim::EngineMode::Analytic);
}

BENCHMARK(BM_SweepCycle)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SweepAnalytic)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
