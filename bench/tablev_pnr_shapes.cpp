/**
 * @file
 * Tab. V: post-PnR FEATHER area/power at seven shapes (4x4 ... 64x128),
 * comparing the analytical die model against the paper's published
 * numbers.
 *
 * Expected shape: the model tracks the published areas within ~10% at
 * every shape; the AW term (wider arrays pay for column buses, StaB banks
 * and the BIRRD slice) is visible in 16x32 vs 32x32.
 */

#include <cstdio>

#include "area/area_model.hpp"
#include "common/log.hpp"
#include "common/table.hpp"

using namespace feather;

int
main()
{
    std::printf("=== Tab. V: post-PnR area/power across shapes ===\n");
    Table t({"shape", "paper um2", "model um2", "err", "paper mW",
             "model mW", "freq GHz"});
    for (const TableVRow &row : tableVPaperRows()) {
        const AreaPower m = featherDieModel(row.aw, row.ah);
        const double err =
            100.0 * (m.area_um2 - row.paper_area_um2) / row.paper_area_um2;
        t.addRow({strCat(row.aw, "x", row.ah),
                  fmtDouble(row.paper_area_um2, 0),
                  fmtDouble(m.area_um2, 0), fmtDouble(err, 1) + "%",
                  fmtDouble(row.paper_power_mw, 1),
                  fmtDouble(m.power_mw, 1),
                  fmtDouble(row.paper_freq_ghz, 1)});
    }
    std::printf("%s", t.toString().c_str());
    std::printf(
        "\nNote: the paper's published per-PE power is non-monotonic\n"
        "(0.94 mW/PE at 32x32 vs 3.22 mW/PE at 64x64); the model fits the\n"
        "relative trend and matches area much more tightly than power.\n");
    return 0;
}
