/**
 * @file
 * Fig. 14b: die-area breakdown of Eyeriss-like-256, SIGMA-256 and
 * FEATHER-256.
 *
 * Expected shape (paper): FEATHER is 0.44x the SIGMA die (SIGMA = 2.93x,
 * dominated by its Benes distribution + per-row FAN reduction), 1.06x the
 * fixed-dataflow Eyeriss-like die, and BIRRD is only ~4% of the FEATHER
 * die (3.3% of power).
 */

#include <cstdio>

#include "area/area_model.hpp"
#include "common/table.hpp"

using namespace feather;

int
main()
{
    std::printf("=== Fig. 14b: area breakdown (mm^2, 256 PEs) ===\n");
    const DieBreakdown designs[] = {eyerissLike256Breakdown(),
                                    sigma256Breakdown(),
                                    feather256Breakdown()};

    Table t({"component", designs[0].design, designs[1].design,
             designs[2].design});
    for (const auto &comp : designs[0].components) {
        std::vector<std::string> row = {comp.name};
        for (const auto &d : designs) {
            double v = 0.0;
            for (const auto &c : d.components) {
                if (c.name == comp.name) v = c.area_mm2;
            }
            row.push_back(fmtDouble(v, 4));
        }
        t.addRow(row);
    }
    t.addRow({"TOTAL", fmtDouble(designs[0].totalMm2(), 3),
              fmtDouble(designs[1].totalMm2(), 3),
              fmtDouble(designs[2].totalMm2(), 3)});
    std::printf("%s", t.toString().c_str());

    const double feather = designs[2].totalMm2();
    std::printf("\nFEATHER vs SIGMA:   %.2fx area (paper: 0.44x / SIGMA "
                "2.43-2.93x larger)\n",
                feather / designs[1].totalMm2());
    std::printf("FEATHER vs Eyeriss: %.2fx area (paper: 1.06x)\n",
                feather / designs[0].totalMm2());
    std::printf("BIRRD share of FEATHER die: %.1f%% (paper: ~4%%)\n",
                100.0 * designs[2].share("Redn. NoC"));
    return 0;
}
