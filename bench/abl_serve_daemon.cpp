/**
 * @file
 * Ablation / microbenchmark: serving-daemon throughput under continuous
 * batching (google-benchmark).
 *
 * Replays the deterministic load generator's pinned-arrival stream
 * through a fresh daemon per iteration and reports wall time per run at
 * two pool sizes. The determinism contract makes the counters the
 * interesting part for CI: every virtual-time figure (accepted count,
 * latency percentiles, total cycles) must be identical across the two
 * pool sizes and across runs, so the perf gate can pin them exactly
 * while wall time is left to the artifacts.
 *
 * Gated deterministic counters:
 *   - requests      stream length that was served
 *   - accepted      requests the virtual system admitted
 *   - rejected      admission-control rejections (load-shedding suite)
 *   - p99_vus       virtual 99th-percentile latency
 *   - total_cycles  summed simulated cycles over accepted requests
 */

#include <benchmark/benchmark.h>

#include "daemon/daemon.hpp"
#include "daemon/load_gen.hpp"

using namespace feather;

namespace {

/** The fixed request stream both suites replay. */
std::vector<daemon::Request>
fixedLoad()
{
    daemon::LoadGenConfig cfg;
    cfg.qps = 1000;
    cfg.requests = 48;
    cfg.seed = 2024;
    return daemon::generateLoad(cfg);
}

void
runDaemonBench(benchmark::State &state, daemon::DaemonOptions opts)
{
    const std::vector<daemon::Request> requests = fixedLoad();
    daemon::DaemonReport report;
    for (auto _ : state) {
        daemon::Daemon d(opts); // fresh plan cache every iteration
        for (const daemon::Request &req : requests) {
            d.enqueue(req, daemon::ResponseSink());
        }
        d.closeIntake();
        report = d.run();
        if (report.errors != 0) {
            state.SkipWithError("daemon run reported errors");
            return;
        }
        benchmark::DoNotOptimize(report.total_cycles);
    }
    state.counters["requests"] = double(report.requests);
    state.counters["accepted"] = double(report.accepted);
    state.counters["rejected"] = double(report.rejected);
    state.counters["p99_vus"] = double(report.p99_vus);
    state.counters["total_cycles"] = double(report.total_cycles);
}

/** Open-loop serve at --jobs N; counters must not depend on N. */
void
BM_DaemonServe(benchmark::State &state)
{
    daemon::DaemonOptions opts;
    opts.num_threads = int(state.range(0));
    opts.virt.vworkers = 2;
    runDaemonBench(state, opts);
}

/** A starved virtual system shedding most of the stream: admission
 *  control in the hot path, execution still speculative. */
void
BM_DaemonAdmission(benchmark::State &state)
{
    daemon::DaemonOptions opts;
    opts.num_threads = 4;
    opts.clock_mhz = 1; // 1 MHz virtual clock: service dwarfs arrivals
    opts.virt.max_queue = 2;
    runDaemonBench(state, opts);
}

BENCHMARK(BM_DaemonServe)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DaemonAdmission)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
