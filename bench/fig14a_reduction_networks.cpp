/**
 * @file
 * Fig. 14a: area and power of BIRRD vs SIGMA's FAN vs MAERI's ART at
 * 16..256 reduction inputs (post-layout model, TSMC 28nm-class).
 *
 * Expected shape (paper §VI-D1): BIRRD costs ~1.43x FAN / ~2.21x ART area
 * and ~1.17x / ~2.07x power — the price of 2*log2(N) stages — but a single
 * AW-input BIRRD serves the whole 2D array where FAN/ART need an
 * (AW*AH)-input instance, netting a 94% reduction-NoC saving in FEATHER.
 */

#include <cstdio>

#include "area/area_model.hpp"
#include "common/table.hpp"

using namespace feather;

int
main()
{
    std::printf("=== Fig. 14a: reduction network area/power vs inputs ===\n");
    Table t({"inputs", "ART um2", "FAN um2", "BIRRD um2", "BIRRD/FAN",
             "BIRRD/ART", "ART mW", "FAN mW", "BIRRD mW"});
    for (int n : {16, 32, 64, 128, 256}) {
        const AreaPower art = artAreaPower(n);
        const AreaPower fan = fanAreaPower(n);
        const AreaPower birrd = birrdAreaPower(n);
        t.addRow({std::to_string(n), fmtDouble(art.area_um2, 0),
                  fmtDouble(fan.area_um2, 0), fmtDouble(birrd.area_um2, 0),
                  fmtRatio(birrd.area_um2 / fan.area_um2),
                  fmtRatio(birrd.area_um2 / art.area_um2),
                  fmtDouble(art.power_mw, 1), fmtDouble(fan.power_mw, 1),
                  fmtDouble(birrd.power_mw, 1)});
    }
    std::printf("%s", t.toString().c_str());

    std::printf(
        "\nSystem-level consequence: one %d-input BIRRD serves a 16x16 NEST\n"
        "(time-multiplexed rows); SIGMA's FAN must span all 256 PEs:\n",
        16);
    const double birrd16 = birrdAreaPower(16).area_um2;
    const double fan256 = fanAreaPower(256).area_um2;
    std::printf("  BIRRD-16 %.0f um2 vs FAN-256 %.0f um2 -> %.0f%% saving "
                "(paper: 94%%)\n",
                birrd16, fan256, 100.0 * (1.0 - birrd16 / fan256));
    return 0;
}
