/**
 * @file
 * Ablation: ping-pong weight registers (and StaB ping-pong) on/off, on the
 * cycle-level simulator.
 *
 * With ping-pong local registers the next weight tile loads into the
 * shadow bank while the current tile computes, so only the first AH*t1
 * preload is exposed (Fig. 9 "weight loading latency hidden in steady
 * phase"). Without them, every reload stalls the array.
 *
 * Expected shape: layers with many weight tiles (large C*M relative to
 * P*Q) suffer most without ping-pong.
 */

#include <cstdio>

#include "common/log.hpp"
#include "common/table.hpp"
#include "sim/driver.hpp"

using namespace feather;

namespace {

LayerStats
runShape(const ConvShape &shape, uint64_t seed)
{
    sim::RunOptions opts;
    opts.aw = 8;
    opts.ah = 8;
    opts.seed = seed;
    opts.in_layout = Layout::parse("HWC_C8");
    opts.out_layout = Layout::parse("HWC_C8");
    opts.quant.multiplier = 0.01f;
    const sim::RunResult r =
        sim::runLayer(sim::convLayer2d("abl", shape.c, shape.h, shape.w,
                                       shape.m, shape.r, shape.s,
                                       shape.stride, shape.pad),
                      opts);
    // The ablation table is meaningless if the simulation went wrong; the
    // driver already paid for the reference check, so honour its verdict.
    FEATHER_CHECK(r.bitExact(), "abl_pingpong: ", r.mismatches,
                  " mismatching oActs on ", shape.toString());
    return r.stats;
}

} // namespace

int
main()
{
    std::printf("=== Ablation: ping-pong weight registers (8x8 FEATHER, "
                "cycle sim) ===\n");
    Table t({"layer", "cycles (ping-pong)", "exposed wload",
             "cycles (no ping-pong)", "slowdown"});

    const ConvShape shapes[] = {
        {1, 16, 28, 28, 32, 3, 3, 1, 1, false},  // PQ-heavy: loads hide
        {1, 64, 7, 7, 64, 3, 3, 1, 1, false},    // tile-heavy
        {1, 128, 7, 7, 128, 1, 1, 1, 0, false},  // 1x1, many reloads
    };
    uint64_t seed = 1;
    for (const ConvShape &s : shapes) {
        const LayerStats st = runShape(s, seed++);
        // Without ping-pong every reload is fully exposed.
        const int64_t all_loads =
            st.weight_reload_events * st.weight_load_cycles_each;
        const int64_t no_pp = st.cycles - st.weight_load_cycles + all_loads;
        t.addRow({strCat("C", s.c, " HW", s.h, " M", s.m, " K", s.r),
                  std::to_string(st.cycles),
                  strCat(st.weight_load_cycles, " of ", all_loads),
                  std::to_string(no_pp),
                  fmtRatio(double(no_pp) / double(st.cycles))});
    }
    std::printf("%s", t.toString().c_str());
    std::printf("\nPing-pong registers hide all but the first preload "
                "(paper Fig. 9 takeaway (ii)).\n");
    return 0;
}
