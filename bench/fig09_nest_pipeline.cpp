/**
 * @file
 * Fig. 9: the NEST walkthrough — a 4x4 NEST running a 2x2-kernel
 * convolution with C=2, M=16 on a 4x4 iAct, weight-stationary, with the
 * cycle accounting the figure narrates: AH^2-cycle weight preload hidden
 * by ping-pong registers, Phase-1 local temporal reduction, Phase-2 rows
 * time-multiplexing the 4-input BIRRD (4:2 spatial reduction per row).
 *
 * Expected shape: all PEs busy in steady state (one row emission per
 * cycle, no output-bus conflicts), end-to-end numerics bit-exact vs the
 * reference convolution.
 */

#include <cstdio>

#include "common/rng.hpp"
#include "common/log.hpp"
#include "common/table.hpp"
#include "feather/accelerator.hpp"
#include "tensor/reference_ops.hpp"

using namespace feather;

int
main()
{
    // The Fig. 9 workload: 4x4 iActs, C=2, 2x2 weights, M=16 kernels.
    LayerSpec layer;
    layer.name = "fig9";
    layer.type = OpType::Conv;
    layer.conv = ConvShape{1, 2, 4, 4, 16, 2, 2, 1, 0, false};

    // Fig. 9 mapping: columns = C2 x M2, rows = M4, local = R2 x S2.
    NestMapping m;
    m.cols = {{Dim::C, 2}, {Dim::M, 2}};
    m.rows = {{Dim::M, 4}};
    m.local = {{Dim::R, 2}, {Dim::S, 2}};

    Rng rng(99);
    Int8Tensor iacts({1, 2, 4, 4});
    Int8Tensor weights({16, 2, 2, 2});
    iacts.randomize(rng, -20, 20);
    weights.randomize(rng, -20, 20);

    FeatherConfig cfg;
    cfg.aw = 4;
    cfg.ah = 4;
    FeatherAccelerator acc(cfg);
    acc.loadIacts(iacts, Layout::parse("HWC_C2"));
    LayerQuant quant;
    quant.multiplier = 0.02f;
    const LayerStats stats =
        acc.run(layer, weights, m, Layout::parse("HWC_C4"), quant);

    const Int8Tensor got = acc.readActivations();
    const Int8Tensor ref = requantizeTensor(conv2d(iacts, weights, 1, 0, 0, 0),
                                            quant.multiplier, 0);
    int64_t mismatches = 0;
    for (int64_t i = 0; i < ref.numel(); ++i) {
        if (got[size_t(i)] != ref[size_t(i)]) ++mismatches;
    }

    std::printf("=== Fig. 9: NEST pipeline walkthrough (4x4, C2M2 cols, M4 "
                "rows, 2x2 local) ===\n");
    Table t({"quantity", "value", "note"});
    t.addRow({"t1 (Phase-1 local reduction)", std::to_string(m.t1()),
              "R2 x S2 = 4 MACs per PE per emission"});
    t.addRow({"weight preload", "16 cycles",
              "AH^2 = 16; later tiles hidden by ping-pong regs"});
    t.addRow({"BIRRD reduction", "4:2 per row emission",
              "C2 groups merge; M2 outputs per row"});
    t.addRow({"total cycles", std::to_string(stats.cycles),
              stats.toString()});
    t.addRow({"PE utilization",
              fmtPercent(stats.utilization(cfg.aw * cfg.ah)),
              "steady state: all PEs in Phase 1 or Phase 2"});
    t.addRow({"read stalls", std::to_string(stats.read_stall_cycles),
              "channel-last layout is concordant"});
    t.addRow({"output-bus conflicts", std::to_string(stats.write_stall_cycles),
              "one row per cycle on the shared buses"});
    t.addRow({"bit-exact vs reference", mismatches == 0 ? "yes" : "NO",
              strCat(mismatches, " mismatching oActs")});
    std::printf("%s", t.toString().c_str());
    return mismatches == 0 ? 0 : 1;
}
