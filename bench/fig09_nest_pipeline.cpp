/**
 * @file
 * Fig. 9: the NEST walkthrough — a 4x4 NEST running a 2x2-kernel
 * convolution with C=2, M=16 on a 4x4 iAct, weight-stationary, with the
 * cycle accounting the figure narrates: AH^2-cycle weight preload hidden
 * by ping-pong registers, Phase-1 local temporal reduction, Phase-2 rows
 * time-multiplexing the 4-input BIRRD (4:2 spatial reduction per row).
 *
 * Expected shape: all PEs busy in steady state (one row emission per
 * cycle, no output-bus conflicts), end-to-end numerics bit-exact vs the
 * reference convolution.
 */

#include <cstdio>

#include "common/log.hpp"
#include "common/table.hpp"
#include "sim/driver.hpp"

using namespace feather;

int
main()
{
    // The Fig. 9 workload: 4x4 iActs, C=2, 2x2 weights, M=16 kernels,
    // under the figure's mapping: columns = C2 x M2, rows = M4, local =
    // R2 x S2.
    const LayerSpec layer = sim::convLayer("fig9", 2, 4, 16, 2, 1, 0);
    NestMapping m;
    m.cols = {{Dim::C, 2}, {Dim::M, 2}};
    m.rows = {{Dim::M, 4}};
    m.local = {{Dim::R, 2}, {Dim::S, 2}};

    sim::RunOptions opts;
    opts.aw = 4;
    opts.ah = 4;
    opts.seed = 99;
    opts.mapping = m;
    opts.in_layout = Layout::parse("HWC_C2");
    opts.out_layout = Layout::parse("HWC_C4");
    const sim::RunResult r = sim::runLayer(layer, opts);

    std::printf("=== Fig. 9: NEST pipeline walkthrough (4x4, C2M2 cols, M4 "
                "rows, 2x2 local) ===\n");
    Table t({"quantity", "value", "note"});
    t.addRow({"t1 (Phase-1 local reduction)", std::to_string(m.t1()),
              "R2 x S2 = 4 MACs per PE per emission"});
    t.addRow({"weight preload", "16 cycles",
              "AH^2 = 16; later tiles hidden by ping-pong regs"});
    t.addRow({"BIRRD reduction", "4:2 per row emission",
              "C2 groups merge; M2 outputs per row"});
    t.addRow({"total cycles", std::to_string(r.stats.cycles),
              r.stats.toString()});
    t.addRow({"PE utilization",
              fmtPercent(r.utilization(opts.aw, opts.ah)),
              "steady state: all PEs in Phase 1 or Phase 2"});
    t.addRow({"read stalls", std::to_string(r.stats.read_stall_cycles),
              "channel-last layout is concordant"});
    t.addRow({"output-bus conflicts",
              std::to_string(r.stats.write_stall_cycles),
              "one row per cycle on the shared buses"});
    t.addRow({"bit-exact vs reference", r.bitExact() ? "yes" : "NO",
              strCat(r.mismatches, " mismatching oActs")});
    std::printf("%s", t.toString().c_str());
    return r.bitExact() ? 0 : 1;
}
