/**
 * @file
 * Ablation: Reorder-in-Reduction (RIR) vs Reorder-after-Reduction (RAR).
 *
 * Both execute the same per-layer (dataflow, layout) schedule chosen by
 * FEATHER's mapper; RAR additionally pays the Fig. 6b critical path — the
 * oActs are written, read back through a reorder unit, and rewritten —
 * while RIR folds the reorder into the reduction (zero extra cycles).
 *
 * Expected shape: RAR adds latency proportional to oAct volume / on-chip
 * bandwidth; the penalty is largest on shallow models (MobileNet-V3) whose
 * layers have low arithmetic intensity — mirroring why the paper hides
 * reordering inside reduction.
 */

#include <cstdio>

#include "baselines/arch_zoo.hpp"
#include "common/bits.hpp"
#include "common/table.hpp"
#include "layoutloop/mapper.hpp"
#include "workload/model_zoo.hpp"

using namespace feather;

namespace {

void
runModel(const char *name, const std::vector<LayerSpec> &model)
{
    const Mapper mapper(featherArch(WorkloadKind::Conv));
    int64_t rir_cycles = 0;
    int64_t rar_cycles = 0;
    double rir_pj = 0.0;
    double rar_pj = 0.0;
    const EnergyTable energy;

    const ModelEval eval = mapper.searchModel(model);
    for (const auto &dec : eval.layers) {
        const LayerSpec &layer = *dec.layer;
        const int64_t oacts = layer.type == OpType::Gemm
                                  ? layer.gemm.m * layer.gemm.n
                                  : layer.conv.oactElems();
        const int64_t line = dec.best.layout.lineSize();
        // RAR: read + write every oAct through the reorder unit, on the
        // critical path (one line per cycle each way).
        const int64_t rar_extra = 2 * ceilDiv(oacts, line);
        rir_cycles += dec.best.total_cycles * dec.repeat;
        rar_cycles += (dec.best.total_cycles + rar_extra) * dec.repeat;
        rir_pj += dec.best.energy_pj * dec.repeat;
        rar_pj += (dec.best.energy_pj +
                   2.0 * energy.sram_word * double(oacts)) *
                  dec.repeat;
    }

    std::printf("%-22s RIR %12lld cyc | RAR %12lld cyc | RAR/RIR %.3fx | "
                "energy overhead %.1f%%\n",
                name, (long long)rir_cycles, (long long)rar_cycles,
                double(rar_cycles) / double(rir_cycles),
                100.0 * (rar_pj - rir_pj) / rir_pj);
}

} // namespace

int
main()
{
    std::printf("=== Ablation: RIR vs RAR (same schedules, explicit "
                "post-reduction reorder) ===\n");
    runModel("ResNet-50", resnet50());
    runModel("MobileNet-V3-Large", mobilenetV3Large());
    std::printf("\nRIR hides all reorder latency behind the reduction "
                "(paper §II-E2/Fig. 6c);\nRAR's exposure grows as "
                "arithmetic intensity falls.\n");
    return 0;
}
