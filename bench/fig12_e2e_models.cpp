/**
 * @file
 * Fig. 12-style end-to-end comparison (google-benchmark): whole model
 * graphs scheduled with per-layer dataflow/layout switching versus every
 * fixed dataflow, on the cycle-level simulator.
 *
 * Each benchmark runs the full scheduler pipeline (candidate enumeration
 * and evaluation, DP/greedy/fixed selection, measured chain run) for one
 * (model, schedule) pair and reports two deterministic counters next to
 * the wall time:
 *
 *   cycles      measured chain cycles of the chosen schedule
 *   est_cycles  the scheduler's objective (node estimates + reorder costs)
 *
 * The counters are machine-independent, which is what the CI perf gate
 * (ci/bench_gate.py) compares against the checked-in baseline — wall
 * times are uploaded for trajectory but not gated.
 */

#include <benchmark/benchmark.h>

#include <string>

#include "model/scheduler.hpp"

using namespace feather;

namespace {

void
runSchedule(benchmark::State &state, const std::string &model_name,
            const std::string &schedule_name)
{
    const model::ModelGraph *graph = model::findModel(model_name);
    if (!graph) {
        state.SkipWithError(("unknown model " + model_name).c_str());
        return;
    }
    const auto policy = model::parseSchedule(schedule_name);
    if (!policy) {
        state.SkipWithError(("unknown schedule " + schedule_name).c_str());
        return;
    }

    model::SchedulerOptions opts;
    opts.num_threads = 4;
    int64_t cycles = 0;
    int64_t est_cycles = 0;
    for (auto _ : state) {
        model::Scheduler scheduler(opts);
        std::string error;
        const auto eval = scheduler.evaluate(*graph, &error);
        if (!eval) {
            state.SkipWithError(error.c_str());
            return;
        }
        const auto result =
            scheduler.schedule(*graph, *eval, *policy, &error);
        if (!result) {
            state.SkipWithError(error.c_str());
            return;
        }
        if (!result->bitExact()) {
            state.SkipWithError("schedule failed bit-exact verification");
            return;
        }
        cycles = result->cycles;
        est_cycles = result->est_total;
        benchmark::DoNotOptimize(result);
    }
    state.counters["cycles"] = double(cycles);
    state.counters["est_cycles"] = double(est_cycles);
}

void
registerAll()
{
    static const char *schedules[] = {"per-layer", "greedy", "fixed:ws",
                                      "fixed:cp", "fixed:wp"};
    for (const model::ModelGraph &g : model::builtinModels()) {
        for (const char *schedule : schedules) {
            benchmark::RegisterBenchmark(
                ("E2E/" + g.name + "/" + schedule).c_str(),
                [name = g.name, schedule](benchmark::State &state) {
                    runSchedule(state, name, schedule);
                })
                ->Unit(benchmark::kMillisecond);
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
