/**
 * @file
 * Fig. 12: FEATHER vs real devices on per-layer ResNet-50 throughput.
 *
 * The paper runs FEATHER and the Xilinx DPU on a ZCU104 FPGA, Gemmini on
 * FireSim and the Edge TPU on a Coral stick, normalizing throughput by PE
 * count and clock. This reproduction substitutes per-layer analytical
 * models of each device's *fixed* dataflow (the normalization makes
 * utilization the governing quantity): Gemmini 16x16 weight-stationary
 * (C16 x M16), Xilinx DPU (M12 x C12 x HW8), Edge TPU (C64 x M16 — 1024
 * PEs).
 *
 * Expected shape (paper): FEATHER geomean speedups ~3.91x over Gemmini,
 * ~2.65x over the DPU, ~4.56x over the Edge TPU; deep layers (C, M large
 * and divisible) close the gap, shallow/odd-shaped layers widen it.
 */

#include <cstdio>

#include "baselines/arch_zoo.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "layoutloop/mapper.hpp"
#include "workload/model_zoo.hpp"

using namespace feather;

int
main()
{
    const auto conv_layers = macLayers(resnet50());

    const Mapper feather_m(featherArch(WorkloadKind::Conv));
    const Mapper gemmini_m(gemminiLike());
    const Mapper dpu_m(xilinxDpuLike());
    const Mapper edgetpu_m(edgeTpuLike());

    std::printf("=== Fig. 12: normalized throughput/PE on ResNet-50 "
                "layers ===\n");
    Table t({"layer", "FEATHER util", "Gemmini util", "DPU util",
             "EdgeTPU util", "vs Gemmini", "vs DPU", "vs EdgeTPU"});

    std::vector<double> sp_gemmini, sp_dpu, sp_edgetpu;
    int id = 0;
    for (const LayerSpec &layer : conv_layers) {
        if (layer.type == OpType::Gemm) continue; // conv layers only
        ++id;
        // Normalized throughput per PE per cycle == practical utilization.
        const double f =
            feather_m.searchLayer(layer).practical_utilization;
        const double g =
            gemmini_m.searchLayer(layer).practical_utilization;
        const double d = dpu_m.searchLayer(layer).practical_utilization;
        const double e =
            edgetpu_m.searchLayer(layer).practical_utilization;
        sp_gemmini.push_back(f / g);
        sp_dpu.push_back(f / d);
        sp_edgetpu.push_back(f / e);
        if (id <= 4 || id % 10 == 0 || id == int(conv_layers.size())) {
            t.addRow({strCat("conv", id), fmtPercent(f), fmtPercent(g),
                      fmtPercent(d), fmtPercent(e), fmtRatio(f / g),
                      fmtRatio(f / d), fmtRatio(f / e)});
        }
    }
    std::printf("%s", t.toString().c_str());
    std::printf("(table shows a subset of the %d conv layers; geomeans "
                "cover all)\n\n",
                id);
    std::printf("GeoMean speedup vs Gemmini-like:  %s (paper: 3.91x)\n",
                fmtRatio(geomean(sp_gemmini)).c_str());
    std::printf("GeoMean speedup vs Xilinx-DPU-like: %s (paper: 2.65x)\n",
                fmtRatio(geomean(sp_dpu)).c_str());
    std::printf("GeoMean speedup vs EdgeTPU-like:  %s (paper: 4.56x)\n",
                fmtRatio(geomean(sp_edgetpu)).c_str());
    return 0;
}
