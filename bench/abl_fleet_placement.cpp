/**
 * @file
 * Ablation / microbenchmark: placement policies over a heterogeneous
 * fleet (google-benchmark).
 *
 * Replays one deterministic pinned-arrival stream through a fresh
 * fleet-mode daemon per iteration — three devices (feather:16x16,
 * feather:32x32, tpu-like) at a 10 MHz virtual clock so queues actually
 * form — once per placement policy. Wall time per run is the reported
 * figure; the deterministic virtual counters are the CI contract:
 *
 * Gated deterministic counters (per policy):
 *   - accepted        requests the virtual system admitted
 *   - p95_vus         virtual 95th-percentile latency; the policies must
 *                     disagree here or the ablation measures nothing
 *   - dev<i>_requests completions placed on fleet device i
 *   - handoffs        placements that moved a client across devices
 */

#include <benchmark/benchmark.h>

#include "daemon/daemon.hpp"
#include "daemon/fleet.hpp"
#include "daemon/load_gen.hpp"

using namespace feather;

namespace {

/** The fixed request stream every policy replays. */
std::vector<daemon::Request>
fixedLoad()
{
    daemon::LoadGenConfig cfg;
    cfg.qps = 20000;
    cfg.requests = 64;
    cfg.seed = 2024;
    return daemon::generateLoad(cfg);
}

/** Fleet serve with one policy; counters must not depend on --jobs. */
void
BM_FleetPlacement(benchmark::State &state, daemon::PlacementPolicy place)
{
    daemon::DaemonOptions opts;
    opts.num_threads = 4;
    opts.clock_mhz = 10; // slow virtual clock: placement under pressure
    std::string error;
    if (!daemon::parseFleetSpec("feather:16x16,feather:32x32,tpu-like",
                                &opts.fleet, &error)) {
        state.SkipWithError(error.c_str());
        return;
    }
    opts.fleet.place = place;

    const std::vector<daemon::Request> requests = fixedLoad();
    daemon::DaemonReport report;
    for (auto _ : state) {
        daemon::Daemon d(opts); // fresh plan cache every iteration
        for (const daemon::Request &req : requests) {
            d.enqueue(req, daemon::ResponseSink());
        }
        d.closeIntake();
        report = d.run();
        if (report.errors != 0) {
            state.SkipWithError("daemon run reported errors");
            return;
        }
        benchmark::DoNotOptimize(report.total_cycles);
    }
    state.counters["accepted"] = double(report.accepted);
    state.counters["p95_vus"] = double(report.p95_vus);
    uint64_t handoffs = 0;
    for (size_t i = 0; i < report.devices.size(); ++i) {
        state.counters["dev" + std::to_string(i) + "_requests"] =
            double(report.devices[i].requests);
        handoffs += report.devices[i].handoffs;
    }
    state.counters["handoffs"] = double(handoffs);
}

BENCHMARK_CAPTURE(BM_FleetPlacement, affinity,
                  daemon::PlacementPolicy::Affinity)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FleetPlacement, least_loaded,
                  daemon::PlacementPolicy::LeastLoaded)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FleetPlacement, capability,
                  daemon::PlacementPolicy::Capability)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
