/**
 * @file
 * Ablation / microbenchmark: BIRRD routing cost (google-benchmark).
 *
 * Measures the offline config-generation latency of the path-search router
 * for the pattern classes FEATHER emits, the cache-hit fast path (the
 * Instruction Buffer analogue), and the brute-force fallback on small
 * networks. Prints router statistics (path-search vs fallback solve
 * counts) at the end.
 */

#include <benchmark/benchmark.h>

#include <numeric>

#include "common/rng.hpp"
#include "noc/router.hpp"

using namespace feather;

namespace {

void
BM_RouteUniformReduction(benchmark::State &state)
{
    const int n = int(state.range(0));
    const int g = int(state.range(1));
    const BirrdTopology topo(n);
    BirrdRouter router(topo, 42);

    std::vector<int> groups(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) groups[size_t(i)] = i / g;
    const int num_groups = n / g;
    int rot = 0;
    for (auto _ : state) {
        // Rotate destinations each iteration to defeat the config cache.
        std::vector<int> dests(static_cast<size_t>(num_groups));
        for (int j = 0; j < num_groups; ++j) {
            dests[size_t(j)] = (j + rot) % num_groups;
        }
        rot = (rot + 1) % num_groups;
        auto cfg = router.route(RouteRequest::reduction(groups, dests));
        benchmark::DoNotOptimize(cfg);
    }

    // Deterministic search-effort counter for the CI perf gate: nodes a
    // fresh router explores on the canonical (rot=0) request. Machine- and
    // iteration-count-independent, unlike the wall time above.
    BirrdRouter probe(topo, 42);
    std::vector<int> dests(static_cast<size_t>(num_groups));
    std::iota(dests.begin(), dests.end(), 0);
    auto cfg = probe.route(RouteRequest::reduction(groups, dests));
    benchmark::DoNotOptimize(cfg);
    state.counters["search_nodes"] = double(probe.stats().nodes_explored);
}

void
BM_RouteCacheHit(benchmark::State &state)
{
    const int n = int(state.range(0));
    const BirrdTopology topo(n);
    BirrdRouter router(topo, 42);
    std::vector<int> dest(static_cast<size_t>(n));
    std::iota(dest.begin(), dest.end(), 0);
    const auto req = RouteRequest::permutation(dest);
    (void)router.route(req); // warm the cache
    for (auto _ : state) {
        auto cfg = router.route(req);
        benchmark::DoNotOptimize(cfg);
    }
}

void
BM_RouteFallbackDfs(benchmark::State &state)
{
    // Path search disabled: exercise the brute-force fallback (paper's
    // "brute force all possible configurations") on a small network.
    const BirrdTopology topo(8);
    BirrdRouter router(topo, 42);
    router.setUsePathSearch(false);
    std::vector<int> groups = {0, 0, 1, 1, 2, 2, 3, 3};
    int rot = 0;
    for (auto _ : state) {
        std::vector<int> dests = {(0 + rot) % 8, (2 + rot) % 8,
                                  (4 + rot) % 8, (6 + rot) % 8};
        rot = (rot + 1) % 8;
        auto cfg = router.route(RouteRequest::reduction(groups, dests));
        benchmark::DoNotOptimize(cfg);
    }

    // Deterministic fallback-effort counter (see BM_RouteUniformReduction).
    BirrdRouter probe(topo, 42);
    probe.setUsePathSearch(false);
    auto cfg = probe.route(RouteRequest::reduction(groups, {0, 2, 4, 6}));
    benchmark::DoNotOptimize(cfg);
    state.counters["search_nodes"] = double(probe.stats().nodes_explored);
}

void
BM_BirrdEvaluate(benchmark::State &state)
{
    // Per-cycle functional evaluation cost (the simulator's hot loop).
    const int n = int(state.range(0));
    BirrdNetwork net(n);
    const auto cfg = passThroughConfig(net.topology());
    std::vector<PortValue> in(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) in[size_t(i)] = i * 3 + 1;
    for (auto _ : state) {
        auto out = net.evaluate(cfg, in);
        benchmark::DoNotOptimize(out);
    }
}

BENCHMARK(BM_RouteUniformReduction)
    ->Args({16, 4})
    ->Args({16, 16})
    ->Args({32, 4})
    ->Args({64, 8});
BENCHMARK(BM_RouteCacheHit)->Arg(16)->Arg(32);
BENCHMARK(BM_RouteFallbackDfs);
BENCHMARK(BM_BirrdEvaluate)->Arg(16)->Arg(32);

} // namespace

BENCHMARK_MAIN();
