/**
 * @file
 * Fig. 4: memory efficiency and compute utilization of (workload,
 * dataflow, layout) combinations on a 4x4 weight-stationary systolic
 * array — the M1..M8 walkthrough tables.
 *
 * Workloads: ResNet-50 layer 1 (C=3, 224x224, 7x7/2) and the deep layer of
 * Fig. 4 (C=2048, 7x7, 3x3/1). Dataflows: D1 = input-channel-parallel,
 * D2 = sliding-window-parallel. Layouts: channel-last vs row-major.
 *
 * Expected shape (paper takeaway): dataflow matters (M1 vs M4) and layout
 * matters (M2 vs M4); the concordant picks (M4 for layer 1 + D2, M5 for
 * layer 47 + D1) reach 100% practical utilization while the discordant
 * combinations halve it.
 */

#include <cstdio>

#include "baselines/systolic_array.hpp"
#include "common/table.hpp"
#include "sim/driver.hpp"

using namespace feather;

namespace {

LayerSpec
layer1()
{
    return sim::convLayer("ResNet-50 layer 1", 3, 224, 64, 7, 2, 3);
}

LayerSpec
layer47()
{
    return sim::convLayer("ResNet-50 layer 47", 2048, 7, 512, 3, 1, 1);
}

Mapping
d1ChannelParallel()
{
    Mapping m;
    m.cols = {{Dim::C, 4}};
    m.rows = {{Dim::M, 4}};
    return m;
}

Mapping
d2SlidingWindowParallel()
{
    Mapping m;
    m.cols = {{Dim::Q, 4}};
    m.rows = {{Dim::M, 4}};
    return m;
}

void
runCase(const char *id, const LayerSpec &layer, const char *dataflow_name,
        const Mapping &mapping, const char *layout_name)
{
    const BoundLayout bl(Layout::parse(layout_name), iactExtents(layer));
    BufferSpec buf;
    buf.num_lines = bl.numLines();
    buf.line_size = bl.lineSize();
    buf.lines_per_bank = bl.numLines(); // conservatively one bank
    buf.read_ports = 2;                 // TSMC dual-port (Fig. 4 setup)

    const SaAnalysis a = analyzeSaMapping(layer, mapping, bl, buf, 6);

    std::printf("\n--- (%s) %s | %s | layout %s ---\n", id,
                layer.name.c_str(), dataflow_name, layout_name);
    Table t({"cycle", "iActs required", "lines", "access cyc",
             "theo util", "practical util"});
    for (const auto &row : a.rows) {
        t.addRow({std::to_string(row.cycle), row.iacts, row.lines,
                  std::to_string(row.access_cycles),
                  fmtPercent(row.theoretical_util),
                  fmtPercent(row.practical_util)});
    }
    std::printf("%s", t.toString().c_str());
    std::printf("memory efficiency: %.2f lines/cycle; avg practical "
                "utilization %s\n",
                a.lines_per_cycle, fmtPercent(a.practical_util).c_str());
}

} // namespace

int
main()
{
    std::printf("=== Fig. 4: dataflow-layout interaction on a 4x4 "
                "weight-stationary SA ===\n");

    // Layer 1 (C=3): channel-last (L1) vs row-major (L2).
    runCase("M1", layer1(), "D1 channel-parallel", d1ChannelParallel(),
            "HWC_W2C3");
    runCase("M2", layer1(), "D2 window-parallel", d2SlidingWindowParallel(),
            "HWC_W2C3");
    runCase("M3", layer1(), "D1 channel-parallel", d1ChannelParallel(),
            "HCW_W8");
    runCase("M4", layer1(), "D2 window-parallel", d2SlidingWindowParallel(),
            "HCW_W8");

    // Layer 47 (C=2048): channel-last (L3) vs row-major (L4).
    runCase("M5", layer47(), "D1 channel-parallel", d1ChannelParallel(),
            "HWC_C8");
    runCase("M6", layer47(), "D2 window-parallel", d2SlidingWindowParallel(),
            "HWC_C8");
    runCase("M7", layer47(), "D1 channel-parallel", d1ChannelParallel(),
            "HCW_W8");
    runCase("M8", layer47(), "D2 window-parallel", d2SlidingWindowParallel(),
            "HCW_W8");

    std::printf("\nTakeaway (matches paper): co-switching (dataflow, layout)"
                " is crucial —\nM5 and M8 are concordant (1 line/cycle, "
                "full practical utilization),\nM6 and M7 pay the 0.5 "
                "bank-conflict slowdown.\n");
    return 0;
}
