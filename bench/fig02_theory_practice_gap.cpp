/**
 * @file
 * Fig. 2: the theory-practice gap. For anchor layers of ResNet-50 /
 * MobileNet-V3 and for the full models, compares:
 *
 *  (1) fixed output-stationary dataflow + fixed layout, with an "error
 *      bar" = the same dataflow under every layout of the space;
 *  (2) the best dataflow searched *ignoring* layout (theoretical best);
 *  (3) that theoretical dataflow evaluated under the actual layouts
 *      (practice) — min..max across the layout space;
 *  (4) FEATHER co-switching (dataflow, layout) per layer.
 *
 * Expected shape (paper): (2) beats (1) substantially, but in practice (3)
 * can be 1-2 orders of magnitude worse than theory under a discordant
 * layout (up to 128x on single layers); FEATHER (4) matches theory.
 */

#include <cstdio>

#include "baselines/arch_zoo.hpp"
#include "common/table.hpp"
#include "layoutloop/mapper.hpp"
#include "workload/model_zoo.hpp"

using namespace feather;

namespace {

struct Fig2Row
{
    int64_t fixed_min = 0, fixed_max = 0;
    int64_t theory = 0;
    int64_t practice_min = 0, practice_max = 0;
    int64_t feather = 0;
};

/** Minimum ideal-cycles mapping over the TOPS space (layout-blind). */
Mapping
theoreticalBest(const Mapper &tops, const LayerSpec &layer, int64_t *cycles)
{
    const ArchSpec &arch = tops.arch();
    Mapping best;
    int64_t best_cycles = -1;
    for (const Mapping &m : tops.candidateMappings(layer)) {
        // Layout-blind: evaluate under a fictitious conflict-free buffer.
        ArchSpec ideal = arch;
        ideal.reorder = ReorderCapability::Rir;
        const EvalResult r = evaluateMapping(ideal, layer, m,
                                             arch.layouts.front());
        if (!r.valid) continue;
        if (best_cycles < 0 || r.compute_cycles < best_cycles) {
            best_cycles = r.compute_cycles;
            best = m;
        }
    }
    *cycles = best_cycles;
    return best;
}

Fig2Row
analyzeLayer(const LayerSpec &layer)
{
    Fig2Row row;
    const ArchSpec fixed_arch = sigmaLikeFixed(WorkloadKind::Conv,
                                               "HWC_C32");
    const Mapper tops(featherArch(WorkloadKind::Conv));

    // (1) fixed output-stationary dataflow across layouts.
    Mapping os;
    os.cols = {{Dim::Q, 16}};
    os.rows = {{Dim::P, 16}};
    if (layer.conv.depthwise) {
        os.cols = {{Dim::Q, 16}};
        os.rows = {{Dim::P, 16}};
    }
    for (const Layout &l : convLayoutSpace()) {
        const EvalResult r = evaluateMapping(fixed_arch, layer, os, l);
        if (!r.valid) continue;
        const int64_t c = r.compute_cycles + r.stall_cycles;
        if (row.fixed_min == 0 || c < row.fixed_min) row.fixed_min = c;
        if (c > row.fixed_max) row.fixed_max = c;
    }

    // (2) theoretical best dataflow, layout-blind.
    Mapping theory = theoreticalBest(tops, layer, &row.theory);

    // (3) that dataflow under real layouts (no reordering support).
    for (const Layout &l : convLayoutSpace()) {
        ArchSpec practical = fixed_arch;
        practical.layouts = {l};
        const EvalResult r = evaluateMapping(practical, layer, theory, l);
        if (!r.valid) continue;
        const int64_t c = r.compute_cycles + r.stall_cycles;
        if (row.practice_min == 0 || c < row.practice_min) {
            row.practice_min = c;
        }
        if (c > row.practice_max) row.practice_max = c;
    }

    // (4) FEATHER: co-switched (dataflow, layout).
    row.feather = Mapper(featherArch(WorkloadKind::Conv))
                      .searchLayer(layer)
                      .total_cycles;
    return row;
}

void
runModel(const char *name, const std::vector<LayerSpec> &model,
         const std::vector<int> &anchor_indices)
{
    std::printf("\n=== Fig. 2: %s ===\n", name);
    Table t({"layer", "fixed DF+layout", "theory best", "practice range",
             "FEATHER", "theory-practice gap"});

    const auto mac_layers = macLayers(model);
    Fig2Row total;
    for (size_t i = 0; i < mac_layers.size(); ++i) {
        const Fig2Row r = analyzeLayer(mac_layers[i]);
        total.fixed_max += r.fixed_max;
        total.fixed_min += r.fixed_min;
        total.theory += r.theory;
        total.practice_min += r.practice_min;
        total.practice_max += r.practice_max;
        total.feather += r.feather;
        for (int anchor : anchor_indices) {
            if (int(i) + 1 == anchor) {
                t.addRow({strCat("layer ", anchor),
                          strCat(r.fixed_min, "..", r.fixed_max),
                          std::to_string(r.theory),
                          strCat(r.practice_min, "..", r.practice_max),
                          std::to_string(r.feather),
                          fmtRatio(double(r.practice_max) /
                                   double(std::max<int64_t>(r.theory, 1)))});
            }
        }
    }
    t.addRow({"full model", strCat(total.fixed_min, "..", total.fixed_max),
              std::to_string(total.theory),
              strCat(total.practice_min, "..", total.practice_max),
              std::to_string(total.feather),
              fmtRatio(double(total.practice_max) /
                       double(std::max<int64_t>(total.theory, 1)))});
    std::printf("%s", t.toString().c_str());
    std::printf("FEATHER vs theory: %.2fx (1.0x = gap fully closed)\n",
                double(total.feather) / double(total.theory));
}

} // namespace

int
main()
{
    runModel("ResNet-50 (16x16 PE array)", resnet50(), {1, 14, 41});
    runModel("MobileNet-V3-Large (16x16 PE array)", mobilenetV3Large(),
             {7, 25, 40});
    std::printf("\nExpected shape (paper): ignoring layout inflates the "
                "theoretical best by up to\ntwo orders of magnitude on "
                "single layers (2~128x) and 2-23x on full models;\n"
                "FEATHER eliminates the gap by co-switching "
                "(dataflow, layout).\n");
    return 0;
}
