/**
 * @file
 * Integration tests for the FEATHER accelerator: bit-exact numerics against
 * the reference operators, RIR layout switching, stall accounting, and the
 * Fig. 9 / Fig. 11 walkthroughs.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "feather/accelerator.hpp"
#include "tensor/reference_ops.hpp"

namespace feather {
namespace {

FeatherConfig
smallConfig(int aw, int ah)
{
    FeatherConfig cfg;
    cfg.aw = aw;
    cfg.ah = ah;
    cfg.stab_depth = 65536;
    return cfg;
}

LayerSpec
convLayer(int64_t c, int64_t hw, int64_t m, int64_t rs, int64_t stride,
          int64_t pad)
{
    LayerSpec l;
    l.name = "conv";
    l.type = OpType::Conv;
    l.conv = ConvShape{1, c, hw, hw, m, rs, rs, stride, pad, false};
    return l;
}

/** Run a conv on FEATHER and compare against conv2d + requantize. */
void
checkConv(const LayerSpec &layer, const NestMapping &mapping,
          const char *in_layout, const char *out_layout, uint64_t seed)
{
    Rng rng(seed);
    const ConvShape &cs = layer.conv;
    Int8Tensor iacts({1, cs.c, cs.h, cs.w});
    Int8Tensor weights({cs.m, cs.c, cs.r, cs.s});
    iacts.randomize(rng, -50, 50);
    weights.randomize(rng, -50, 50);

    LayerQuant quant;
    quant.iact_zp = 3;
    quant.weight_zp = -2;
    quant.oact_zp = 1;
    quant.multiplier = 0.05f;

    FeatherAccelerator acc(smallConfig(4, 4));
    acc.loadIacts(iacts, Layout::parse(in_layout));
    const LayerStats stats = acc.run(layer, weights, mapping,
                                     Layout::parse(out_layout), quant);
    const Int8Tensor got = acc.readActivations();

    const Int32Tensor ref_acc =
        conv2d(iacts, weights, cs.stride, cs.pad, quant.iact_zp,
               quant.weight_zp);
    const Int8Tensor ref =
        requantizeTensor(ref_acc, quant.multiplier, quant.oact_zp);

    ASSERT_EQ(got.shape(), ref.shape());
    for (int64_t i = 0; i < ref.numel(); ++i) {
        ASSERT_EQ(got[size_t(i)], ref[size_t(i)])
            << "mismatch at flat index " << i << " (" << in_layout << " -> "
            << out_layout << ")";
    }
    EXPECT_GT(stats.macs, 0);
    EXPECT_GT(stats.cycles, 0);
}

TEST(Feather, ConvBitExactCanonicalMapping)
{
    const LayerSpec layer = convLayer(4, 6, 8, 3, 1, 1);
    checkConv(layer, NestMapping::canonical(layer, 4, 4), "HWC_C4",
              "HWC_C4", 11);
}

TEST(Feather, ConvBitExactFig9Mapping)
{
    // Fig. 9: C2 x M2 across columns, M4 across rows, 2x2 weights local.
    const LayerSpec layer = convLayer(2, 5, 8, 2, 1, 0);
    NestMapping m;
    m.cols = {{Dim::C, 2}, {Dim::M, 2}};
    m.rows = {{Dim::M, 4}};
    m.local = {{Dim::R, 2}, {Dim::S, 2}};
    checkConv(layer, m, "HWC_C2", "HWC_C4", 12);
}

TEST(Feather, ConvLayoutSwitchRIR)
{
    // Channel-last in, row-major out (the Fig. 11 switch), and the reverse.
    const LayerSpec layer = convLayer(4, 6, 8, 3, 1, 1);
    const NestMapping m = NestMapping::canonical(layer, 4, 4);
    checkConv(layer, m, "HWC_C4", "CHW_W4", 13);
    checkConv(layer, m, "CHW_W4", "HWC_C4", 14);
    checkConv(layer, m, "HCW_W8", "HWC_C2W2", 15);
}

TEST(Feather, ConvStride2WithPadding)
{
    const LayerSpec layer = convLayer(3, 9, 8, 3, 2, 1);
    checkConv(layer, NestMapping::canonical(layer, 4, 4), "HWC_C4",
              "HWC_C4", 16);
}

TEST(Feather, Conv1x1)
{
    const LayerSpec layer = convLayer(8, 5, 16, 1, 1, 0);
    checkConv(layer, NestMapping::canonical(layer, 4, 4), "HWC_C4",
              "HWC_C4", 17);
}

TEST(Feather, ConvNonDivisibleEdges)
{
    // C=3 and M=5 leave idle columns/rows on edge tiles.
    const LayerSpec layer = convLayer(3, 7, 5, 3, 1, 1);
    checkConv(layer, NestMapping::canonical(layer, 4, 4), "HWC_C4",
              "HWC_C4", 18);
}

TEST(Feather, GemmBitExact)
{
    LayerSpec layer;
    layer.type = OpType::Gemm;
    layer.gemm = GemmShape{8, 6, 32};

    Rng rng(21);
    Int8Tensor a({8, 32});
    Int8Tensor b({32, 6});
    a.randomize(rng, -40, 40);
    b.randomize(rng, -40, 40);

    LayerQuant quant;
    quant.iact_zp = -1;
    quant.weight_zp = 2;
    quant.oact_zp = 0;
    quant.multiplier = 0.02f;

    FeatherAccelerator acc(smallConfig(4, 4));
    acc.loadIacts(a, Layout::parse("MK_K4"));
    const NestMapping m = NestMapping::canonical(layer, 4, 4);
    acc.run(layer, b, m, Layout::parse("MK_K4"), quant);
    const Int8Tensor got = acc.readActivations();

    const Int8Tensor ref = requantizeTensor(
        gemm(a, b, quant.iact_zp, quant.weight_zp), quant.multiplier,
        quant.oact_zp);
    ASSERT_EQ(got.shape(), ref.shape());
    for (int64_t i = 0; i < ref.numel(); ++i) {
        ASSERT_EQ(got[size_t(i)], ref[size_t(i)]) << "flat " << i;
    }
}

TEST(Feather, GemmReductionAcrossRows)
{
    // Fig. 10 workload D: K spans the whole array; rows accumulate in OB.
    LayerSpec layer;
    layer.type = OpType::Gemm;
    layer.gemm = GemmShape{4, 3, 64};

    Rng rng(22);
    Int8Tensor a({4, 64});
    Int8Tensor b({64, 3});
    a.randomize(rng, -30, 30);
    b.randomize(rng, -30, 30);

    NestMapping m;
    m.local = {{Dim::K, 4}};
    m.cols = {{Dim::K, 4}};
    m.rows = {{Dim::K, 4}}; // further K split across rows -> OB reduce
    LayerQuant quant;
    quant.multiplier = 0.01f;

    FeatherAccelerator acc(smallConfig(4, 4));
    acc.loadIacts(a, Layout::parse("MK_K4"));
    acc.run(layer, b, m, Layout::parse("MK_K4"), quant);
    const Int8Tensor got = acc.readActivations();

    const Int8Tensor ref =
        requantizeTensor(gemm(a, b, 0, 0), quant.multiplier, 0);
    for (int64_t i = 0; i < ref.numel(); ++i) {
        ASSERT_EQ(got[size_t(i)], ref[size_t(i)]) << "flat " << i;
    }
}

TEST(Feather, DepthwiseBitExact)
{
    LayerSpec layer;
    layer.type = OpType::DepthwiseConv;
    layer.conv = ConvShape{1, 8, 6, 6, 8, 3, 3, 1, 1, true};

    Rng rng(23);
    Int8Tensor iacts({1, 8, 6, 6});
    Int8Tensor weights({8, 1, 3, 3});
    iacts.randomize(rng, -50, 50);
    weights.randomize(rng, -50, 50);

    LayerQuant quant;
    quant.iact_zp = 5;
    quant.multiplier = 0.1f;

    FeatherAccelerator acc(smallConfig(4, 4));
    acc.loadIacts(iacts, Layout::parse("HWC_C4"));
    const NestMapping m = NestMapping::canonical(layer, 4, 4);
    acc.run(layer, weights, m, Layout::parse("HWC_C4"), quant);
    const Int8Tensor got = acc.readActivations();

    const Int8Tensor ref = requantizeTensor(
        depthwiseConv2d(iacts, weights, 1, 1, quant.iact_zp, 0),
        quant.multiplier, 0);
    ASSERT_EQ(got.shape(), ref.shape());
    for (int64_t i = 0; i < ref.numel(); ++i) {
        ASSERT_EQ(got[size_t(i)], ref[size_t(i)]) << "flat " << i;
    }
}

TEST(Feather, TwoLayerChainThroughPingPong)
{
    // Layer 1 writes oActs in layer 2's concordant layout; layer 2 consumes
    // them without any reload — the core RIR co-switching claim (§IV).
    Rng rng(31);
    const LayerSpec l1 = convLayer(4, 6, 8, 3, 1, 1);
    LayerSpec l2 = convLayer(8, 6, 4, 1, 1, 0);

    Int8Tensor iacts({1, 4, 6, 6});
    Int8Tensor w1({8, 4, 3, 3});
    Int8Tensor w2({4, 8, 1, 1});
    iacts.randomize(rng, -30, 30);
    w1.randomize(rng, -30, 30);
    w2.randomize(rng, -30, 30);

    LayerQuant q1;
    q1.multiplier = 0.03f;
    q1.oact_zp = 2;
    LayerQuant q2;
    q2.iact_zp = 2; // layer 2 consumes layer 1's zero point
    q2.multiplier = 0.04f;

    FeatherAccelerator acc(smallConfig(4, 4));
    acc.loadIacts(iacts, Layout::parse("HWC_C4"));
    acc.run(l1, w1, NestMapping::canonical(l1, 4, 4),
            Layout::parse("CHW_W4"), q1);
    acc.run(l2, w2, NestMapping::canonical(l2, 4, 4),
            Layout::parse("HWC_C4"), q2);
    const Int8Tensor got = acc.readActivations();

    const Int8Tensor mid = requantizeTensor(
        conv2d(iacts, w1, 1, 1, 0, 0), q1.multiplier, q1.oact_zp);
    const Int8Tensor ref = requantizeTensor(
        conv2d(mid, w2, 1, 0, q2.iact_zp, 0), q2.multiplier, 0);
    ASSERT_EQ(got.shape(), ref.shape());
    for (int64_t i = 0; i < ref.numel(); ++i) {
        ASSERT_EQ(got[size_t(i)], ref[size_t(i)]) << "flat " << i;
    }
}

TEST(Feather, ConcordantLayoutHasNoReadStalls)
{
    // Channel-parallel columns + channel-last layout: one line per cycle.
    const LayerSpec layer = convLayer(8, 6, 8, 3, 1, 1);
    NestMapping m;
    m.cols = {{Dim::C, 4}};
    m.rows = {{Dim::M, 4}};
    m.local = {{Dim::R, 3}, {Dim::S, 3}};

    Rng rng(41);
    Int8Tensor iacts({1, 8, 6, 6});
    Int8Tensor weights({8, 8, 3, 3});
    iacts.randomize(rng, -20, 20);
    weights.randomize(rng, -20, 20);

    FeatherAccelerator acc(smallConfig(4, 4));
    acc.loadIacts(iacts, Layout::parse("HWC_C4"));
    const LayerStats stats =
        acc.run(layer, weights, m, Layout::parse("HWC_C4"), LayerQuant{});
    EXPECT_EQ(stats.read_stall_cycles, 0)
        << "channel-last is concordant with channel-parallel";
    EXPECT_EQ(stats.write_stall_cycles, 0);
}

TEST(Feather, DiscordantLayoutStalls)
{
    // Same dataflow under a row-major layout: the four channels of a pixel
    // live in four lines of the same bank column -> stalls (Fig. 4-M7).
    const LayerSpec layer = convLayer(8, 6, 8, 3, 1, 1);
    NestMapping m;
    m.cols = {{Dim::C, 4}};
    m.rows = {{Dim::M, 4}};
    m.local = {{Dim::R, 3}, {Dim::S, 3}};

    Rng rng(42);
    Int8Tensor iacts({1, 8, 6, 6});
    Int8Tensor weights({8, 8, 3, 3});
    iacts.randomize(rng, -20, 20);
    weights.randomize(rng, -20, 20);

    FeatherAccelerator acc(smallConfig(4, 4));
    acc.loadIacts(iacts, Layout::parse("HCW_W4"));
    const LayerStats stats =
        acc.run(layer, weights, m, Layout::parse("HWC_C4"), LayerQuant{});
    EXPECT_GT(stats.read_stall_cycles, 0)
        << "row-major is discordant with channel-parallel";
}

TEST(Feather, UtilizationNearFullWhenBalanced)
{
    // t1 (9) >= AH (4) and shapes divide evenly: utilization should be
    // dominated by the C=8-on-4-columns reduction split (100% occupancy).
    const LayerSpec layer = convLayer(8, 8, 16, 3, 1, 1);
    NestMapping m;
    m.cols = {{Dim::C, 4}};
    m.rows = {{Dim::M, 4}};
    m.local = {{Dim::R, 3}, {Dim::S, 3}};

    Rng rng(43);
    Int8Tensor iacts({1, 8, 8, 8});
    Int8Tensor weights({16, 8, 3, 3});
    iacts.randomize(rng, -10, 10);
    weights.randomize(rng, -10, 10);

    FeatherAccelerator acc(smallConfig(4, 4));
    acc.loadIacts(iacts, Layout::parse("HWC_C4"));
    const LayerStats stats =
        acc.run(layer, weights, m, Layout::parse("HWC_C4"), LayerQuant{});
    // Padding zeros count as issued-but-useless MACs in `macs`? No: macs
    // counts executed MACs including zero-padded taps, so utilization here
    // reflects only pipeline fill and weight-load overheads.
    EXPECT_GT(stats.utilization(16), 0.85);
}

TEST(Feather, TraceRecordsReadsAndWrites)
{
    const LayerSpec layer = convLayer(4, 4, 4, 1, 1, 0);
    Rng rng(44);
    Int8Tensor iacts({1, 4, 4, 4});
    Int8Tensor weights({4, 4, 1, 1});
    iacts.randomize(rng, -10, 10);
    weights.randomize(rng, -10, 10);

    FeatherAccelerator acc(smallConfig(4, 4));
    acc.enableTrace(64);
    acc.loadIacts(iacts, Layout::parse("HWC_C4"));
    acc.run(layer, weights, NestMapping::canonical(layer, 4, 4),
            Layout::parse("CHW_W4"), LayerQuant{});
    bool saw_read = false, saw_write = false;
    for (const auto &ev : acc.trace()) {
        saw_read |= ev.kind == TraceEvent::Kind::StabRead;
        saw_write |= ev.kind == TraceEvent::Kind::StabWrite;
    }
    EXPECT_TRUE(saw_read);
    EXPECT_TRUE(saw_write);
}

/** Property sweep: random shapes x layout pairs stay bit-exact. */
class FeatherConvSweep
    : public ::testing::TestWithParam<std::tuple<int, const char *,
                                                 const char *>>
{
};

TEST_P(FeatherConvSweep, BitExact)
{
    const auto [seed, in_layout, out_layout] = GetParam();
    Rng rng(uint64_t(seed) * 977);
    const int64_t c = 1 + int64_t(rng.below(8));
    const int64_t hw = 4 + int64_t(rng.below(5));
    const int64_t m = 1 + int64_t(rng.below(12));
    const int64_t rs = 1 + 2 * int64_t(rng.below(2)); // 1 or 3
    const int64_t stride = 1 + int64_t(rng.below(2));
    const LayerSpec layer = convLayer(c, hw, m, rs, stride, (rs - 1) / 2);
    checkConv(layer, NestMapping::canonical(layer, 4, 4), in_layout,
              out_layout, uint64_t(seed));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FeatherConvSweep,
    ::testing::Values(
        std::make_tuple(1, "HWC_C4", "HWC_C4"),
        std::make_tuple(2, "HWC_C4", "CHW_W4"),
        std::make_tuple(3, "CHW_W4", "HWC_C4"),
        std::make_tuple(4, "HCW_W8", "HWC_C4"),
        std::make_tuple(5, "HWC_C2W2", "WHC_C4"),
        std::make_tuple(6, "HWC_C4", "HCW_W4"),
        std::make_tuple(7, "CHW_W4", "CHW_W4"),
        std::make_tuple(8, "HWC_C4", "HWC_C2W2")));

} // namespace
} // namespace feather
