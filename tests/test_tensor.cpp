/**
 * @file
 * Unit tests for src/tensor: tensor indexing, quantization semantics, and
 * the golden reference operators.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/quant.hpp"
#include "tensor/reference_ops.hpp"
#include "tensor/tensor.hpp"

namespace feather {
namespace {

TEST(Tensor, ShapeAndIndexing)
{
    Int32Tensor t({2, 3, 4, 5});
    EXPECT_EQ(t.numel(), 120);
    EXPECT_EQ(t.rank(), 4u);
    t.at4(1, 2, 3, 4) = 42;
    EXPECT_EQ(t.at({1, 2, 3, 4}), 42);
    EXPECT_EQ(t.offset({0, 0, 0, 1}), 1);
    EXPECT_EQ(t.offset({0, 0, 1, 0}), 5);
    EXPECT_EQ(t.offset({1, 0, 0, 0}), 60);
}

TEST(Tensor, At2)
{
    Int8Tensor t({3, 4});
    t.at2(2, 1) = 7;
    EXPECT_EQ(t.at({2, 1}), 7);
}

TEST(Tensor, EqualityAndRandomize)
{
    Rng rng(3);
    Int8Tensor a({4, 4});
    a.randomize(rng, -128, 127);
    Int8Tensor b = a;
    EXPECT_EQ(a, b);
    b.at2(0, 0) = int8_t(b.at2(0, 0) + 1);
    EXPECT_FALSE(a == b);
}

TEST(Quant, ClampToInt8)
{
    EXPECT_EQ(clampToInt8(-129), -128);
    EXPECT_EQ(clampToInt8(-128), -128);
    EXPECT_EQ(clampToInt8(127), 127);
    EXPECT_EQ(clampToInt8(128), 127);
    EXPECT_EQ(clampToInt8(0), 0);
}

TEST(Quant, QuantizeDequantizeRoundTrip)
{
    const QuantParams qp{0.5f, 3};
    for (float v : {-10.0f, -0.25f, 0.0f, 0.25f, 7.5f}) {
        const int8_t q = quantize(v, qp);
        EXPECT_NEAR(dequantize(q, qp), v, qp.scale / 2 + 1e-6);
    }
}

TEST(Quant, RequantizeRoundsHalfAwayFromZero)
{
    EXPECT_EQ(requantize(5, 0.1f, 0), 1);   // 0.5 -> 1
    EXPECT_EQ(requantize(-5, 0.1f, 0), -1); // -0.5 -> -1
    EXPECT_EQ(requantize(4, 0.1f, 0), 0);   // 0.4 -> 0
    EXPECT_EQ(requantize(1000, 1.0f, 0), 127); // saturates
    EXPECT_EQ(requantize(0, 1.0f, 5), 5);
}

TEST(RefOps, ConvOutDim)
{
    // ResNet-50 conv1: 224, k7, s2, p3 -> 112.
    EXPECT_EQ(convOutDim(224, 7, 2, 3), 112);
    EXPECT_EQ(convOutDim(7, 3, 1, 1), 7);
    EXPECT_EQ(convOutDim(8, 2, 2, 0), 4);
}

TEST(RefOps, Conv1x1EqualsGemm)
{
    // A 1x1 convolution over HxW is a GEMM with K=C, N(out)=H*W.
    Rng rng(17);
    const int64_t c = 6, hw = 4, m = 5;
    Int8Tensor iacts({1, c, hw, hw});
    Int8Tensor weights({m, c, 1, 1});
    iacts.randomize(rng, -20, 20);
    weights.randomize(rng, -20, 20);

    const Int32Tensor conv = conv2d(iacts, weights, 1, 0, 0, 0);

    Int8Tensor a({m, c});
    Int8Tensor b({c, hw * hw});
    for (int64_t im = 0; im < m; ++im) {
        for (int64_t ic = 0; ic < c; ++ic) {
            a.at2(im, ic) = weights.at4(im, ic, 0, 0);
        }
    }
    for (int64_t ic = 0; ic < c; ++ic) {
        for (int64_t ih = 0; ih < hw; ++ih) {
            for (int64_t iw = 0; iw < hw; ++iw) {
                b.at2(ic, ih * hw + iw) = iacts.at4(0, ic, ih, iw);
            }
        }
    }
    const Int32Tensor g = gemm(a, b, 0, 0);
    for (int64_t im = 0; im < m; ++im) {
        for (int64_t ih = 0; ih < hw; ++ih) {
            for (int64_t iw = 0; iw < hw; ++iw) {
                EXPECT_EQ(conv.at4(0, im, ih, iw), g.at2(im, ih * hw + iw));
            }
        }
    }
}

TEST(RefOps, ConvPaddingContributesZero)
{
    // With nonzero input zero-point, padded taps must add exactly zero.
    Int8Tensor iacts({1, 1, 2, 2});
    Int8Tensor weights({1, 1, 3, 3});
    const int8_t zp = 10;
    for (int64_t i = 0; i < iacts.numel(); ++i) iacts[size_t(i)] = zp;
    for (int64_t i = 0; i < weights.numel(); ++i) weights[size_t(i)] = 1;
    const Int32Tensor out = conv2d(iacts, weights, 1, 1, zp, 0);
    for (int64_t i = 0; i < out.numel(); ++i) {
        EXPECT_EQ(out[size_t(i)], 0) << "padded conv must cancel zp";
    }
}

TEST(RefOps, DepthwiseMatchesPerChannelConv)
{
    Rng rng(23);
    const int64_t c = 4, hw = 6;
    Int8Tensor iacts({1, c, hw, hw});
    Int8Tensor dw_weights({c, 1, 3, 3});
    iacts.randomize(rng, -30, 30);
    dw_weights.randomize(rng, -30, 30);

    const Int32Tensor dw = depthwiseConv2d(iacts, dw_weights, 1, 1, 2, -1);

    for (int64_t ic = 0; ic < c; ++ic) {
        Int8Tensor one_in({1, 1, hw, hw});
        Int8Tensor one_w({1, 1, 3, 3});
        for (int64_t ih = 0; ih < hw; ++ih) {
            for (int64_t iw = 0; iw < hw; ++iw) {
                one_in.at4(0, 0, ih, iw) = iacts.at4(0, ic, ih, iw);
            }
        }
        for (int64_t r = 0; r < 3; ++r) {
            for (int64_t s = 0; s < 3; ++s) {
                one_w.at4(0, 0, r, s) = dw_weights.at4(ic, 0, r, s);
            }
        }
        const Int32Tensor ref = conv2d(one_in, one_w, 1, 1, 2, -1);
        for (int64_t ih = 0; ih < hw; ++ih) {
            for (int64_t iw = 0; iw < hw; ++iw) {
                EXPECT_EQ(dw.at4(0, ic, ih, iw), ref.at4(0, 0, ih, iw));
            }
        }
    }
}

TEST(RefOps, GemmSmallHandComputed)
{
    Int8Tensor a({2, 2});
    Int8Tensor b({2, 2});
    a.at2(0, 0) = 1; a.at2(0, 1) = 2;
    a.at2(1, 0) = 3; a.at2(1, 1) = 4;
    b.at2(0, 0) = 5; b.at2(0, 1) = 6;
    b.at2(1, 0) = 7; b.at2(1, 1) = 8;
    const Int32Tensor c = gemm(a, b, 0, 0);
    EXPECT_EQ(c.at2(0, 0), 19);
    EXPECT_EQ(c.at2(0, 1), 22);
    EXPECT_EQ(c.at2(1, 0), 43);
    EXPECT_EQ(c.at2(1, 1), 50);
}

TEST(RefOps, GemmZeroPoints)
{
    Int8Tensor a({1, 2});
    Int8Tensor b({2, 1});
    a.at2(0, 0) = 3; a.at2(0, 1) = 3;
    b.at2(0, 0) = 4; b.at2(1, 0) = 4;
    // (3-3)*(4-4) = 0 contributions.
    const Int32Tensor c = gemm(a, b, 3, 4);
    EXPECT_EQ(c.at2(0, 0), 0);
}

TEST(RefOps, ReluQuantized)
{
    Int8Tensor x({1, 4});
    x.at2(0, 0) = -5; x.at2(0, 1) = 0; x.at2(0, 2) = 3; x.at2(0, 3) = 1;
    const Int8Tensor y = reluQuantized(x, 1);
    EXPECT_EQ(y.at2(0, 0), 1);
    EXPECT_EQ(y.at2(0, 1), 1);
    EXPECT_EQ(y.at2(0, 2), 3);
    EXPECT_EQ(y.at2(0, 3), 1);
}

TEST(RefOps, MaxPool)
{
    Int8Tensor x({1, 1, 4, 4});
    for (int64_t i = 0; i < 16; ++i) x[size_t(i)] = int8_t(i);
    const Int8Tensor y = maxPool2d(x, 2, 2, 0, -128);
    EXPECT_EQ(y.dim(2), 2);
    EXPECT_EQ(y.at4(0, 0, 0, 0), 5);
    EXPECT_EQ(y.at4(0, 0, 0, 1), 7);
    EXPECT_EQ(y.at4(0, 0, 1, 0), 13);
    EXPECT_EQ(y.at4(0, 0, 1, 1), 15);
}

TEST(RefOps, AvgPoolGlobal)
{
    Int8Tensor x({1, 2, 2, 2});
    // Channel 0: 1,2,3,4 (avg 2.5 -> rounds away from zero to 3 with zp 0).
    x.at4(0, 0, 0, 0) = 1; x.at4(0, 0, 0, 1) = 2;
    x.at4(0, 0, 1, 0) = 3; x.at4(0, 0, 1, 1) = 4;
    // Channel 1: all -4.
    x.at4(0, 1, 0, 0) = -4; x.at4(0, 1, 0, 1) = -4;
    x.at4(0, 1, 1, 0) = -4; x.at4(0, 1, 1, 1) = -4;
    const Int8Tensor y = avgPool2d(x, 2, 2, 0);
    EXPECT_EQ(y.at4(0, 0, 0, 0), 3);
    EXPECT_EQ(y.at4(0, 1, 0, 0), -4);
}

TEST(RefOps, RequantizeTensorShape)
{
    Int32Tensor acc({2, 2});
    acc.at2(0, 0) = 100; acc.at2(0, 1) = -100;
    acc.at2(1, 0) = 1000000; acc.at2(1, 1) = 0;
    const Int8Tensor q = requantizeTensor(acc, 0.01f, 1);
    EXPECT_EQ(q.at2(0, 0), 2);
    EXPECT_EQ(q.at2(0, 1), 0);
    EXPECT_EQ(q.at2(1, 0), 127);
    EXPECT_EQ(q.at2(1, 1), 1);
}

} // namespace
} // namespace feather
