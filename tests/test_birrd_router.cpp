/**
 * @file
 * Tests for the BIRRD router: reductions, reorderings, multicast, and
 * property-style sweeps over random permutations and groupings across
 * network sizes (the paper claims arbitrary reduction groups and arbitrary
 * reordering, §III-B3 — these tests exercise that claim).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.hpp"
#include "noc/router.hpp"

namespace feather {
namespace {

/** Route and functionally verify; returns true on success. */
bool
routeOk(BirrdRouter &router, const BirrdTopology &topo,
        const RouteRequest &req)
{
    const auto cfg = router.route(req);
    if (!cfg) return false;
    return BirrdRouter::verify(topo, *cfg, req);
}

TEST(Router, IdentityPermutation)
{
    const BirrdTopology topo(8);
    BirrdRouter router(topo);
    std::vector<int> dest(8);
    std::iota(dest.begin(), dest.end(), 0);
    EXPECT_TRUE(routeOk(router, topo, RouteRequest::permutation(dest)));
}

TEST(Router, ReversalPermutation)
{
    const BirrdTopology topo(8);
    BirrdRouter router(topo);
    std::vector<int> dest(8);
    for (int i = 0; i < 8; ++i) dest[size_t(i)] = 7 - i;
    EXPECT_TRUE(routeOk(router, topo, RouteRequest::permutation(dest)));
}

TEST(Router, FullReductionToEachPort)
{
    // AW:1 reduction steered to every possible output port.
    const BirrdTopology topo(8);
    BirrdRouter router(topo);
    for (int out = 0; out < 8; ++out) {
        const std::vector<int> groups(8, 0);
        EXPECT_TRUE(routeOk(router, topo,
                            RouteRequest::reduction(groups, {out})))
            << "8:1 reduction to port " << out;
    }
}

TEST(Router, FourToTwoReductionFig9)
{
    // Fig. 9: 4:2 spatial reduction on a 4-input BIRRD — two adjacent
    // pairs of columns reduce into two outputs.
    const BirrdTopology topo(4);
    BirrdRouter router(topo);
    EXPECT_TRUE(routeOk(router, topo,
                        RouteRequest::reduction({0, 0, 1, 1}, {0, 1})));
    // And with remapped output banks (RIR layout change).
    EXPECT_TRUE(routeOk(router, topo,
                        RouteRequest::reduction({0, 0, 1, 1}, {2, 0})));
    EXPECT_TRUE(routeOk(router, topo,
                        RouteRequest::reduction({0, 0, 1, 1}, {3, 1})));
}

TEST(Router, InterleavedGroups)
{
    // Non-contiguous reduction groups (M and C interleaved across columns,
    // as in the Fig. 9 walkthrough where columns carry (m, c) pairs).
    const BirrdTopology topo(8);
    BirrdRouter router(topo);
    EXPECT_TRUE(routeOk(
        router, topo,
        RouteRequest::reduction({0, 1, 0, 1, 2, 3, 2, 3}, {0, 1, 2, 3})));
    EXPECT_TRUE(routeOk(
        router, topo,
        RouteRequest::reduction({0, 1, 2, 3, 0, 1, 2, 3}, {4, 5, 6, 7})));
}

TEST(Router, UnevenGroupSizes)
{
    // Fig. 10 workload C: 3:1 and 1:1 groups concurrently.
    const BirrdTopology topo(4);
    BirrdRouter router(topo);
    EXPECT_TRUE(routeOk(router, topo,
                        RouteRequest::reduction({0, 0, 0, 1}, {0, 1})));
    EXPECT_TRUE(routeOk(router, topo,
                        RouteRequest::reduction({0, 0, 0, 1}, {3, 0})));
    EXPECT_TRUE(routeOk(router, topo,
                        RouteRequest::reduction({0, 1, 1, 1}, {2, 1})));
}

TEST(Router, PartialInputs)
{
    // Unused PE columns (edge tiles) leave input ports idle.
    const BirrdTopology topo(8);
    BirrdRouter router(topo);
    EXPECT_TRUE(routeOk(router, topo,
                        RouteRequest::reduction({0, 0, -1, -1, 1, 1, -1, -1},
                                                {5, 2})));
}

TEST(Router, CacheHitsOnRepeat)
{
    const BirrdTopology topo(8);
    BirrdRouter router(topo);
    const auto req = RouteRequest::reduction({0, 0, 1, 1, 2, 2, 3, 3},
                                             {3, 2, 1, 0});
    EXPECT_TRUE(routeOk(router, topo, req));
    EXPECT_TRUE(routeOk(router, topo, req));
    EXPECT_EQ(router.stats().cache_hits, 1);
    EXPECT_EQ(router.stats().requests, 2);
}

TEST(Router, MulticastBroadcastExtension)
{
    // Broadcast the reduced value into two StaB banks (paper: "extra
    // broadcast functions ... duplicate accumulated results in multiple
    // banks").
    const BirrdTopology topo(8);
    BirrdRouter router(topo);
    RouteRequest req;
    req.group_of_input = {0, 0, 0, 0, 1, 1, 1, 1};
    req.dests_of_group = {{0, 4}, {2, 6}};
    req.allow_broadcast = true;
    EXPECT_TRUE(routeOk(router, topo, req));
}

TEST(Router, BroadcastSingleInputToAllOutputs)
{
    const BirrdTopology topo(8);
    BirrdRouter router(topo);
    RouteRequest req;
    req.group_of_input.assign(8, -1);
    req.group_of_input[3] = 0;
    req.dests_of_group = {{0, 1, 2, 3, 4, 5, 6, 7}};
    req.allow_broadcast = true;
    EXPECT_TRUE(routeOk(router, topo, req));
}

class RouterPermutationSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(RouterPermutationSweep, RandomPermutationsRoute)
{
    // Property: BIRRD is rearrangeably non-blocking — every permutation of
    // live inputs to outputs must route (arbitrary reorder, Fig. 5e). The
    // incremental path search certifies this exhaustively up to 16 inputs;
    // at 32 adversarial random permutations would need the constructive
    // looping construction (see router.hpp), so the 32-input sweep runs in
    // the structured-pattern test below instead.
    const int n = GetParam();
    const BirrdTopology topo(n);
    BirrdRouter router(topo, /*seed=*/n);
    Rng rng(uint64_t(1000 + n));

    const int trials = n <= 8 ? 60 : 25;
    for (int t = 0; t < trials; ++t) {
        std::vector<int> dest(static_cast<size_t>(n));
        std::iota(dest.begin(), dest.end(), 0);
        for (int i = n - 1; i > 0; --i) {
            std::swap(dest[size_t(i)], dest[rng.below(uint64_t(i + 1))]);
        }
        EXPECT_TRUE(routeOk(router, topo, RouteRequest::permutation(dest)))
            << "n=" << n << " trial " << t;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RouterPermutationSweep,
                         ::testing::Values(4, 8, 16));

class RouterStructuredSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(RouterStructuredSweep, LayoutSwitchPatternsRoute)
{
    // The pattern family FEATHER's controller actually emits when
    // co-switching layouts: uniform reduction groups with rotated, strided
    // and xor-permuted destination banks (RIR bank retargeting), plus
    // xor-mask pure permutations (tile-granularity layout changes).
    const int n = GetParam();
    const BirrdTopology topo(n);
    BirrdRouter router(topo, /*seed=*/13 * n);

    for (int g = 1; g <= n; g *= 2) {
        const int num_groups = n / g;
        std::vector<int> groups(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i) groups[size_t(i)] = i / g;
        for (int rot = 0; rot < num_groups; ++rot) {
            std::vector<int> dests(static_cast<size_t>(num_groups));
            for (int j = 0; j < num_groups; ++j) {
                dests[size_t(j)] = (j + rot) % num_groups;
            }
            EXPECT_TRUE(routeOk(router, topo,
                                RouteRequest::reduction(groups, dests)))
                << "n=" << n << " g=" << g << " rot=" << rot;
        }
    }
    for (int xv = 0; xv < n; ++xv) {
        std::vector<int> dest(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i) dest[size_t(i)] = i ^ xv;
        EXPECT_TRUE(routeOk(router, topo, RouteRequest::permutation(dest)))
            << "n=" << n << " xor=" << xv;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RouterStructuredSweep,
                         ::testing::Values(8, 16, 32, 64));

class RouterReductionSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(RouterReductionSweep, RandomGroupingsRoute)
{
    // Property: arbitrary contiguous-run groupings with arbitrary output
    // assignment route and reduce to exact sums.
    const int n = GetParam();
    const BirrdTopology topo(n);
    BirrdRouter router(topo, /*seed=*/7 * n);
    Rng rng(uint64_t(2000 + n));

    const int trials = n <= 8 ? 40 : 15;
    for (int t = 0; t < trials; ++t) {
        // Random group count between 1 and n, random contiguous splits.
        const int num_groups = 1 + int(rng.below(uint64_t(n)));
        std::vector<int> groups(static_cast<size_t>(n));
        // Random split points.
        std::vector<int> cuts = {0, n};
        while (int(cuts.size()) < num_groups + 1) {
            cuts.push_back(1 + int(rng.below(uint64_t(n - 1))));
        }
        std::sort(cuts.begin(), cuts.end());
        cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
        const int actual_groups = int(cuts.size()) - 1;
        for (int g = 0; g < actual_groups; ++g) {
            for (int i = cuts[size_t(g)]; i < cuts[size_t(g) + 1]; ++i) {
                groups[size_t(i)] = g;
            }
        }
        // Random distinct destinations.
        std::vector<int> dest(static_cast<size_t>(n));
        std::iota(dest.begin(), dest.end(), 0);
        for (int i = n - 1; i > 0; --i) {
            std::swap(dest[size_t(i)], dest[rng.below(uint64_t(i + 1))]);
        }
        dest.resize(size_t(actual_groups));
        EXPECT_TRUE(routeOk(router, topo,
                            RouteRequest::reduction(groups, dest)))
            << "n=" << n << " trial " << t;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RouterReductionSweep,
                         ::testing::Values(4, 8, 16));

TEST(Router, StatsAccounting)
{
    const BirrdTopology topo(8);
    BirrdRouter router(topo);
    std::vector<int> dest(8);
    std::iota(dest.begin(), dest.end(), 0);
    ASSERT_TRUE(routeOk(router, topo, RouteRequest::permutation(dest)));
    EXPECT_EQ(router.stats().requests, 1);
    EXPECT_GT(router.stats().nodes_explored, 0);
    EXPECT_EQ(router.stats().failures, 0);
}

} // namespace
} // namespace feather
