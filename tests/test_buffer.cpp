/**
 * @file
 * Unit tests for src/buffer: bank-conflict math (§V-B) and the data-holding
 * scratchpad models.
 */

#include <gtest/gtest.h>

#include "buffer/scratchpad.hpp"
#include "buffer/spec.hpp"

namespace feather {
namespace {

BufferSpec
spec(int64_t lines, int64_t line_size, int64_t lines_per_bank, int ports = 2)
{
    BufferSpec s;
    s.num_lines = lines;
    s.line_size = line_size;
    s.lines_per_bank = lines_per_bank;
    s.read_ports = ports;
    s.write_ports = ports;
    return s;
}

TEST(BufferSpec, BankMapping)
{
    const BufferSpec s = spec(16, 8, 4);
    EXPECT_EQ(s.bankOf(0), 0);
    EXPECT_EQ(s.bankOf(3), 0);
    EXPECT_EQ(s.bankOf(4), 1);
    EXPECT_EQ(s.bankOf(15), 3);
    EXPECT_EQ(s.numBanks(), 4);
    EXPECT_EQ(s.capacityWords(), 128);
}

TEST(Conflict, NoLinesNoCycles)
{
    EXPECT_EQ(conflictCycles(spec(16, 8, 4), {}, 2), 0);
}

TEST(Conflict, WithinPortsIsOneCycle)
{
    const BufferSpec s = spec(16, 8, 4);
    EXPECT_EQ(readConflictCycles(s, {0}), 1);
    EXPECT_EQ(readConflictCycles(s, {0, 1}), 1);       // 2 lines, 2 ports
    EXPECT_EQ(readConflictCycles(s, {0, 4, 8, 12}), 1); // all diff banks
}

TEST(Conflict, PaperHalfSlowdownExample)
{
    // Fig. 4-M2/M7: four lines in one bank with dual ports -> 2 cycles,
    // i.e. the paper's "2/4 = 0.5 slowdown".
    const BufferSpec s = spec(16, 8, 16); // single bank
    EXPECT_EQ(readConflictCycles(s, {0, 1, 2, 3}), 2);
    // Fig. 4-M3: three lines, dual port -> ceil(3/2) = 2 cycles
    // (paper reports 2/3 = 0.667 effective rate, i.e. 2 accesses needed).
    EXPECT_EQ(readConflictCycles(s, {0, 1, 2}), 2);
}

TEST(Conflict, DuplicateLinesCollapse)
{
    const BufferSpec s = spec(16, 8, 16);
    EXPECT_EQ(readConflictCycles(s, {3, 3, 3, 3}), 1);
}

TEST(Conflict, WorstBankDominates)
{
    const BufferSpec s = spec(16, 8, 4);
    // Bank 0 gets 3 lines (2 cycles), bank 1 gets 1 line (1 cycle).
    EXPECT_EQ(readConflictCycles(s, {0, 1, 2, 4}), 2);
    // 5 lines in one bank with 2 ports -> 3 cycles.
    const BufferSpec one_bank = spec(8, 8, 8);
    EXPECT_EQ(readConflictCycles(one_bank, {0, 1, 2, 3, 4}), 3);
}

TEST(Conflict, SinglePortSram)
{
    const BufferSpec s = spec(16, 8, 16, 1);
    EXPECT_EQ(readConflictCycles(s, {0, 1}), 2);
    EXPECT_EQ(readConflictCycles(s, {0, 1, 2, 3}), 4);
}

TEST(Scratchpad, ReadWrite)
{
    Scratchpad<int32_t> sp(spec(4, 4, 2));
    sp.write(1, 2, 77);
    EXPECT_EQ(sp.read(1, 2), 77);
    EXPECT_EQ(sp.peek(1, 2), 77);
    EXPECT_EQ(sp.stats().word_writes, 1);
    EXPECT_EQ(sp.stats().word_reads, 1);
}

TEST(Scratchpad, ChargeReadAccessTracksStalls)
{
    Scratchpad<int32_t> sp(spec(8, 4, 8));
    EXPECT_EQ(sp.chargeReadAccess({0, 1}), 1);
    EXPECT_EQ(sp.stats().conflict_stall_cycles, 0);
    EXPECT_EQ(sp.chargeReadAccess({0, 1, 2, 3}), 2);
    EXPECT_EQ(sp.stats().conflict_stall_cycles, 1);
    EXPECT_EQ(sp.stats().line_reads, 6);
}

TEST(BankedScratchpad, PerBankAddressing)
{
    BankedScratchpad<int8_t> stab(4, 8);
    // Different addresses in different banks — the property RIR relies on.
    stab.write(0, 3, 10);
    stab.write(1, 5, 20);
    stab.write(2, 0, 30);
    EXPECT_EQ(stab.peek(0, 3), 10);
    EXPECT_EQ(stab.peek(1, 5), 20);
    EXPECT_EQ(stab.peek(2, 0), 30);
    EXPECT_EQ(stab.numBanks(), 4);
    EXPECT_EQ(stab.depth(), 8);
}

TEST(BankedScratchpad, LoadWithLayout)
{
    // Load a tiny CHW tensor channel-last and check physical placement:
    // slot (bank) = c, line (addr) = h*W + w.
    Extents ext;
    ext[Dim::C] = 4;
    ext[Dim::H] = 2;
    ext[Dim::W] = 2;
    const BoundLayout bl(Layout::parse("HWC_C4"), ext);

    BankedScratchpad<int8_t> stab(4, 8);
    stab.loadWithLayout(bl, [](const Coord &c) {
        return int8_t(c[Dim::C] * 16 + c[Dim::H] * 4 + c[Dim::W]);
    });
    for (int64_t c = 0; c < 4; ++c) {
        for (int64_t h = 0; h < 2; ++h) {
            for (int64_t w = 0; w < 2; ++w) {
                EXPECT_EQ(stab.peek(c, h * 2 + w), c * 16 + h * 4 + w);
            }
        }
    }
}

TEST(PingPong, SwapRoles)
{
    PingPong<Scratchpad<int8_t>> pp(Scratchpad<int8_t>(spec(2, 2, 2)),
                                    Scratchpad<int8_t>(spec(2, 2, 2)));
    pp.ping().write(0, 0, 1);
    pp.pong().write(0, 0, 2);
    EXPECT_EQ(pp.ping().peek(0, 0), 1);
    pp.swap();
    EXPECT_EQ(pp.ping().peek(0, 0), 2);
    EXPECT_EQ(pp.pong().peek(0, 0), 1);
    pp.swap();
    EXPECT_EQ(pp.ping().peek(0, 0), 1);
}

} // namespace
} // namespace feather
