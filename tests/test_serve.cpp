/**
 * @file
 * Tests for the serve batch engine: thread-pool execution, per-stream RNG
 * derivation, plan-cache hit/miss accounting, sweep expansion, batch-file
 * parsing, report export (CSV / single-line JSON), failure isolation, and
 * the engine's central determinism contract — a batch report is
 * bit-identical no matter how many worker threads ran it.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "common/rng.hpp"
#include "golden_util.hpp"
#include "serve/batch_cli.hpp"
#include "serve/engine.hpp"
#include "serve/job.hpp"
#include "serve/plan_cache.hpp"
#include "serve/report.hpp"
#include "serve/thread_pool.hpp"

namespace feather {
namespace serve {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunsEveryTaskExactlyOnce)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i) {
        pool.submit([&count] { count.fetch_add(1); });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusableAcrossBatches)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    for (int i = 0; i < 10; ++i) {
        pool.submit([&count] { count.fetch_add(1); });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 11);
}

TEST(ThreadPool, ClampsToAtLeastOneWorker)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.numThreads(), 1);
    std::atomic<int> count{0};
    pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
}

// ---------------------------------------------------------------------------
// Per-job RNG streams
// ---------------------------------------------------------------------------

TEST(RngStreams, DeterministicAndDistinct)
{
    EXPECT_EQ(Rng::deriveStream(2024, 0), Rng::deriveStream(2024, 0));
    std::set<uint64_t> seeds;
    for (uint64_t i = 0; i < 64; ++i) seeds.insert(Rng::deriveStream(7, i));
    EXPECT_EQ(seeds.size(), 64u) << "adjacent streams must not collide";
    EXPECT_NE(Rng::deriveStream(1, 0), Rng::deriveStream(2, 0));

    Rng a = Rng::forStream(11, 3);
    Rng b = Rng::forStream(11, 3);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(a(), b());
}

// ---------------------------------------------------------------------------
// PlanCache
// ---------------------------------------------------------------------------

TEST(PlanCache, CountsMissesOncePerKeyThenHits)
{
    PlanCache cache;
    const LayerSpec conv = sim::convLayer("c", 8, 8, 8, 3, 1, 1);
    EXPECT_TRUE(cache.getOrPlan(sim::EngineMode::Cycle,
                                sim::DataflowKind::Canonical, conv, 4, 4)
                    .has_value());
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 0u);

    EXPECT_TRUE(cache.getOrPlan(sim::EngineMode::Cycle,
                                sim::DataflowKind::Canonical, conv, 4, 4)
                    .has_value());
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().entries, 1u);

    // Different array size = different planning point.
    EXPECT_TRUE(cache.getOrPlan(sim::EngineMode::Cycle,
                                sim::DataflowKind::Canonical, conv, 8, 8)
                    .has_value());
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(PlanCache, KeysOnShapeNotName)
{
    PlanCache cache;
    const LayerSpec a = sim::convLayer("first_name", 8, 8, 8, 3, 1, 1);
    const LayerSpec b = sim::convLayer("other_name", 8, 8, 8, 3, 1, 1);
    EXPECT_TRUE(cache.getOrPlan(sim::EngineMode::Cycle,
                                sim::DataflowKind::Canonical, a, 4, 4)
                    .has_value());
    EXPECT_TRUE(cache.getOrPlan(sim::EngineMode::Cycle,
                                sim::DataflowKind::Canonical, b, 4, 4)
                    .has_value());
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(PlanCache, PlanMatchesUncachedPlanLayer)
{
    PlanCache cache;
    const LayerSpec conv = sim::convLayer("c", 16, 14, 16, 3, 1, 1);
    const auto cached =
        cache.getOrPlan(sim::EngineMode::Cycle,
                        sim::DataflowKind::ChannelParallel, conv, 8, 8);
    const auto direct =
        sim::planLayer(sim::DataflowKind::ChannelParallel, conv, 8, 8);
    ASSERT_TRUE(cached.has_value());
    ASSERT_TRUE(direct.has_value());
    EXPECT_EQ(cached->mapping.toString(), direct->mapping.toString());
    EXPECT_EQ(cached->in_layout.toString(), direct->in_layout.toString());
    EXPECT_EQ(cached->out_layout.toString(), direct->out_layout.toString());
}

TEST(PlanCache, ConcurrentLookupsStayConsistent)
{
    PlanCache cache;
    const LayerSpec conv = sim::convLayer("c", 8, 8, 8, 3, 1, 1);
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 50; ++i) {
                if (!cache.getOrPlan(sim::EngineMode::Cycle,
                                     sim::DataflowKind::Canonical, conv, 4,
                                     4)
                         .has_value()) {
                    failures.fetch_add(1);
                }
            }
        });
    }
    for (std::thread &t : threads) t.join();
    EXPECT_EQ(failures.load(), 0);
    // Whole-lookup locking makes the counters exact, not approximate:
    // one miss for the unique key, hits for everything else.
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 8u * 50u - 1u);
}

TEST(PlanCache, ConcurrentMixedModeStressKeepsExactCounters)
{
    // The daemon leans on this harder than the batch engine does: many
    // intake threads racing runtime lookups across BOTH engine tiers and
    // several planning points at once. Whole-lookup locking must keep the
    // counters exact — misses = |unique keys| and hits = lookups - misses,
    // independent of interleaving — and the stress must be sanitizer-clean.
    PlanCache cache;
    const LayerSpec shapes[] = {
        sim::convLayer("a", 8, 8, 8, 3, 1, 1),
        sim::convLayer("b", 16, 8, 8, 3, 1, 1),
        sim::convLayer("c", 8, 8, 16, 1, 1, 0),
    };
    const sim::EngineMode modes[] = {sim::EngineMode::Cycle,
                                     sim::EngineMode::Analytic};
    const sim::DataflowKind kinds[] = {sim::DataflowKind::Canonical,
                                       sim::DataflowKind::ChannelParallel};
    constexpr int kThreads = 8;
    constexpr int kItersPerThread = 60;
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kItersPerThread; ++i) {
                // Each thread walks the key space in a different order.
                const int n = (i + t) % (3 * 2 * 2);
                const auto plan = cache.getOrPlan(
                    modes[n % 2], kinds[(n / 2) % 2], shapes[n / 4], 8, 8);
                if (!plan.has_value()) failures.fetch_add(1);
                // Mode is part of the key: the tier tag must round-trip.
                if (plan && plan->engine != modes[n % 2]) {
                    failures.fetch_add(1);
                }
            }
        });
    }
    for (std::thread &t : threads) t.join();
    EXPECT_EQ(failures.load(), 0);
    const PlanCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.entries, 12u) << "3 shapes x 2 modes x 2 dataflows";
    EXPECT_EQ(stats.misses, 12u) << "exactly one miss per unique key";
    EXPECT_EQ(stats.lookups(), uint64_t(kThreads) * kItersPerThread);
    EXPECT_EQ(stats.hits, uint64_t(kThreads) * kItersPerThread - 12u);
}

// ---------------------------------------------------------------------------
// Sweep expansion and batch files
// ---------------------------------------------------------------------------

TEST(Sweep, UnknownScenarioIsRejected)
{
    PlanCache cache;
    SweepSpec sweep;
    sweep.scenario = "no_such_scenario";
    std::string error;
    EXPECT_FALSE(expandSweep(sweep, cache, nullptr, &error).has_value());
    EXPECT_NE(error.find("no_such_scenario"), std::string::npos);
}

TEST(Sweep, UnknownDataflowErrorsEvenWhenEveryPointIsSkipped)
{
    PlanCache cache;
    SweepSpec sweep;
    sweep.scenario = "gemm";
    sweep.dataflows = {"typo"};
    sweep.arrays = {{3, 4}}; // shape-skipped before any planning
    std::string error;
    EXPECT_FALSE(expandSweep(sweep, cache, nullptr, &error).has_value());
    EXPECT_NE(error.find("typo"), std::string::npos);
}

TEST(Sweep, SkipsInvalidArrayShapes)
{
    PlanCache cache;
    SweepSpec sweep;
    sweep.scenario = "gemm";
    sweep.dataflows = {""};
    sweep.arrays = {{3, 4}, {4, 4}};
    std::vector<std::string> skipped;
    const auto jobs = expandSweep(sweep, cache, &skipped);
    ASSERT_TRUE(jobs.has_value());
    EXPECT_EQ(jobs->size(), 1u);
    ASSERT_EQ(skipped.size(), 1u);
    EXPECT_NE(skipped.front().find("3x4"), std::string::npos);
}

TEST(Sweep, DefaultGridCoversDataflowsAndArrays)
{
    PlanCache cache;
    SweepSpec sweep;
    sweep.scenario = "quickstart_conv";
    const auto jobs = expandSweep(sweep, cache, nullptr);
    ASSERT_TRUE(jobs.has_value());
    // 4 dataflows x (default 4x4 deduped against the standard grid of
    // 4x4/8x8/16x16) = 12 jobs.
    EXPECT_EQ(jobs->size(), 12u);
    std::set<std::string> names;
    for (const JobSpec &j : *jobs) names.insert(displayName(j));
    EXPECT_EQ(names.size(), jobs->size()) << "job names must be unique";
    EXPECT_TRUE(names.count("quickstart_conv/cp@8x8"));
}

TEST(BatchFile, ParsesJobsAndRejectsMalformedLines)
{
    std::vector<JobSpec> jobs;
    std::string error;
    const std::string text = "# a comment\n"
                             "\n"
                             "gemm dataflow=cp aw=8 ah=4 seed=7\n"
                             "resnet_block name=my_block layout=HWC_C8\n";
    ASSERT_TRUE(parseBatchFile(text, &jobs, &error)) << error;
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_EQ(jobs[0].scenario, "gemm");
    EXPECT_EQ(jobs[0].opts.dataflow, "cp");
    EXPECT_EQ(jobs[0].opts.aw, 8);
    EXPECT_EQ(jobs[0].opts.ah, 4);
    ASSERT_TRUE(jobs[0].explicit_seed.has_value());
    EXPECT_EQ(*jobs[0].explicit_seed, 7u);
    EXPECT_EQ(jobs[1].name, "my_block");
    EXPECT_EQ(jobs[1].opts.layout, "HWC_C8");

    jobs.clear();
    EXPECT_FALSE(parseBatchFile("gemm bogus\n", &jobs, &error));
    EXPECT_NE(error.find("line 1"), std::string::npos);
    jobs.clear();
    EXPECT_FALSE(parseBatchFile("gemm frob=1\n", &jobs, &error));
    jobs.clear();
    EXPECT_FALSE(parseBatchFile("# only a comment\n", &jobs, &error));
}

// ---------------------------------------------------------------------------
// Engine: determinism, cache accounting, failure isolation
// ---------------------------------------------------------------------------

using golden::zeroWallCsv;
using golden::zeroWallJson;

BatchReport
sweepReport(const std::string &scenario, int num_threads)
{
    BatchOptions opts;
    opts.num_threads = num_threads;
    BatchEngine engine(opts);
    SweepSpec sweep;
    sweep.scenario = scenario;
    std::string error;
    const std::optional<BatchReport> report =
        engine.sweep(sweep, nullptr, &error);
    EXPECT_TRUE(report.has_value()) << error;
    return report ? *report : BatchReport{};
}

TEST(Engine, ReportIsBitIdenticalAcrossThreadCounts)
{
    const BatchReport one = sweepReport("quickstart_conv", 1);
    const BatchReport eight = sweepReport("quickstart_conv", 8);
    EXPECT_EQ(zeroWallCsv(one.toCsv()), zeroWallCsv(eight.toCsv()));
    EXPECT_EQ(zeroWallJson(one.toJson()), zeroWallJson(eight.toJson()));
    EXPECT_TRUE(one.allOk());
}

TEST(Engine, ChainScenarioSweepIsDeterministicToo)
{
    // A multi-layer chain (per-layer dataflow + StaB ping-pong) through
    // the same contract.
    const BatchReport one = sweepReport("dw_separable", 1);
    const BatchReport six = sweepReport("dw_separable", 6);
    EXPECT_EQ(zeroWallCsv(one.toCsv()), zeroWallCsv(six.toCsv()));
    EXPECT_EQ(zeroWallJson(one.toJson()), zeroWallJson(six.toJson()));
    EXPECT_TRUE(one.allOk());
}

TEST(Engine, SweepJobsHitTheWarmedPlanCache)
{
    const BatchReport report = sweepReport("quickstart_conv", 4);
    EXPECT_TRUE(report.allOk());
    EXPECT_GT(report.cache.hits, 0u)
        << "sweep expansion warms the cache; the run must hit it";
    EXPECT_GT(report.cache.misses, 0u);
    // Every job planned through the cache: lookups >= one per job-layer.
    EXPECT_GE(report.cache.lookups(), report.jobs.size());
}

TEST(Engine, EveryJobRemainsBitExact)
{
    const BatchReport report = sweepReport("resnet_block", 4);
    ASSERT_FALSE(report.jobs.empty());
    for (const JobResult &r : report.jobs) {
        EXPECT_TRUE(r.bitExact()) << r.name << ": " << r.error;
        EXPECT_GT(r.checked, 0) << r.name;
        EXPECT_EQ(r.mismatches, 0) << r.name;
    }
}

TEST(Engine, BadJobIsIsolatedFromTheBatch)
{
    std::vector<JobSpec> jobs(3);
    jobs[0].scenario = "gemm";
    jobs[1].scenario = "no_such_scenario";
    jobs[2].scenario = "depthwise";
    BatchEngine engine;
    const BatchReport report = engine.run(jobs);
    ASSERT_EQ(report.jobs.size(), 3u);
    EXPECT_TRUE(report.jobs[0].bitExact());
    EXPECT_FALSE(report.jobs[1].ok);
    EXPECT_NE(report.jobs[1].error.find("no_such_scenario"),
              std::string::npos);
    EXPECT_EQ(report.jobs[1].status(), "ERROR");
    EXPECT_TRUE(report.jobs[2].bitExact());
    EXPECT_EQ(report.failures(), 1u);
    EXPECT_FALSE(report.allOk());
}

TEST(Engine, BadOverrideIsIsolatedToo)
{
    std::vector<JobSpec> jobs(2);
    jobs[0].scenario = "gemm";
    jobs[0].opts.dataflow = "zigzag"; // rejected by runScenario
    jobs[1].scenario = "gemm";
    BatchEngine engine;
    const BatchReport report = engine.run(jobs);
    EXPECT_FALSE(report.jobs[0].ok);
    EXPECT_NE(report.jobs[0].error.find("zigzag"), std::string::npos);
    EXPECT_TRUE(report.jobs[1].bitExact());
}

TEST(Engine, ExplicitSeedIsHonoured)
{
    JobSpec job;
    job.scenario = "gemm";
    job.explicit_seed = 42;
    BatchEngine engine;
    const BatchReport report = engine.run({job});
    ASSERT_EQ(report.jobs.size(), 1u);
    EXPECT_EQ(report.jobs[0].seed, 42u);
    EXPECT_TRUE(report.jobs[0].bitExact());
}

// ---------------------------------------------------------------------------
// Report rendering
// ---------------------------------------------------------------------------

TEST(Report, CsvHasHeaderAndOneRowPerJob)
{
    const BatchReport report = sweepReport("gemm", 2);
    const std::string csv = report.toCsv();
    EXPECT_EQ(csv.rfind("job,scenario,dataflow,layout,aw,ah,seed,status,"
                        "layers,cycles,macs,utilization,rd_stalls,"
                        "wr_stalls,checked,mismatches,engine_mode,"
                        "sim_wall_us,arena_peak_bytes,error\n",
                        0),
              0u);
    size_t lines = 0;
    for (char c : csv) {
        if (c == '\n') ++lines;
    }
    EXPECT_EQ(lines, report.jobs.size() + 1);
    EXPECT_NE(csv.find(",ok,"), std::string::npos);
}

TEST(Report, JsonIsSingleLineWithSummary)
{
    const BatchReport report = sweepReport("gemm", 2);
    const std::string json = report.toJson();
    EXPECT_EQ(json.find('\n'), std::string::npos);
    EXPECT_EQ(json.rfind("{\"jobs\":[", 0), 0u);
    EXPECT_NE(json.find("\"summary\":{"), std::string::npos);
    EXPECT_NE(json.find("\"plan_cache\":{\"hits\":"), std::string::npos);
    EXPECT_NE(json.find("\"bit_exact\":true"), std::string::npos);
}

TEST(Report, ErrorsAreEscapedInBothFormats)
{
    BatchReport report;
    JobResult bad;
    bad.name = "bad,job";
    bad.scenario = "s";
    bad.error = "line1\nwith \"quotes\", and commas";
    report.jobs.push_back(bad);
    const std::string csv = report.toCsv();
    // CSV cells must stay comma/newline free (Table::toCsv contract).
    EXPECT_NE(csv.find("bad;job"), std::string::npos);
    EXPECT_NE(csv.find("line1;with \"quotes\"; and commas"),
              std::string::npos);
    const std::string json = report.toJson();
    EXPECT_NE(json.find("\\n"), std::string::npos);
    EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Batch CLI
// ---------------------------------------------------------------------------

TEST(BatchCli, DetectsBatchInvocations)
{
    EXPECT_TRUE(isBatchInvocation({"--sweep", "gemm"}));
    EXPECT_TRUE(isBatchInvocation({"--batch", "jobs.txt"}));
    EXPECT_TRUE(isBatchInvocation({"--jobs", "4"}));
    EXPECT_FALSE(isBatchInvocation({"--workload", "gemm"}));
    EXPECT_FALSE(isBatchInvocation({"--list"}));
}

TEST(BatchCli, ParsesAndValidatesFlags)
{
    const BatchCliParse p =
        parseBatchCli({"--sweep", "gemm", "--jobs", "8", "--seed", "11",
                       "--report-csv", "a.csv", "--report-json", "b.json"});
    ASSERT_TRUE(p.ok()) << p.error;
    EXPECT_EQ(p.opts.sweep, "gemm");
    EXPECT_EQ(p.opts.jobs, 8);
    EXPECT_EQ(p.opts.seed, 11u);
    EXPECT_EQ(p.opts.report_csv, "a.csv");
    EXPECT_EQ(p.opts.report_json, "b.json");

    EXPECT_FALSE(parseBatchCli({"--jobs", "4"}).ok());
    EXPECT_FALSE(parseBatchCli({"--jobs", "0", "--sweep", "gemm"}).ok());
    EXPECT_FALSE(parseBatchCli({"--jobs", "257", "--sweep", "gemm"}).ok());
    EXPECT_FALSE(
        parseBatchCli({"--sweep", "a", "--batch", "b.txt"}).ok());
    EXPECT_FALSE(parseBatchCli({"--sweep", "gemm", "--workload", "x"}).ok());
}

TEST(BatchCli, SweepRunsEndToEnd)
{
    std::vector<const char *> argv = {"feather_cli", "--sweep",
                                      "quickstart_conv", "--jobs", "2"};
    EXPECT_EQ(cliMain(int(argv.size()), argv.data()), 0);
}

TEST(BatchCli, DelegatesNonBatchInvocationsToSim)
{
    std::vector<const char *> argv = {"feather_cli", "--workload", "gemm"};
    EXPECT_EQ(cliMain(int(argv.size()), argv.data()), 0);
    std::vector<const char *> bad = {"feather_cli", "--workload",
                                     "no_such_scenario"};
    EXPECT_EQ(cliMain(int(bad.size()), bad.data()), 2);
}

TEST(BatchCli, UnknownSweepScenarioListsRegisteredNames)
{
    BatchEngine engine;
    SweepSpec sweep;
    sweep.scenario = "no_such_scenario";
    std::string error;
    EXPECT_FALSE(engine.sweep(sweep, nullptr, &error).has_value());
    EXPECT_NE(error.find("unknown scenario 'no_such_scenario'"),
              std::string::npos);
    for (const std::string &name : sim::scenarioNames()) {
        EXPECT_NE(error.find(name), std::string::npos) << error;
    }
}

// ---------------------------------------------------------------------------
// Batch report schema (golden lock; see tests/golden/)
// ---------------------------------------------------------------------------

namespace schema {

using golden::jsonKeys;
using golden::readGoldenLines;

BatchReport
sampleReport()
{
    JobSpec job;
    job.scenario = "gemm";
    BatchEngine engine;
    return engine.run({job});
}

TEST(BatchReportSchema, CsvColumnsMatchGolden)
{
    const std::vector<std::string> golden =
        readGoldenLines("batch_report_csv_header.golden");
    ASSERT_EQ(golden.size(), 1u);
    EXPECT_EQ(golden::csvHeader(sampleReport().toCsv()), golden[0])
        << "batch CSV columns are locked; update the golden file "
           "deliberately when extending the schema";
}

TEST(BatchReportSchema, JsonKeysMatchGolden)
{
    const std::vector<std::string> golden =
        readGoldenLines("batch_report_json_keys.golden");
    EXPECT_EQ(jsonKeys(sampleReport().toJson()), golden)
        << "batch JSON keys are locked; update the golden file "
           "deliberately when extending the schema";
}

} // namespace schema

} // namespace
} // namespace serve
} // namespace feather
