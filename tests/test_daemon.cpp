/**
 * @file
 * Tests for the serving daemon: request wire-format parsing, the
 * virtual-time admission/service scheduler (DES), end-to-end daemon runs
 * (continuous batching, per-client accounting, the shared warm plan
 * cache), the deterministic load generator, feather_serve CLI
 * validation, and the daemon report schema (golden lock).
 *
 * The central contract under test mirrors serve's: for a pinned-arrival
 * request stream, every response and every non-`_wall_us` report field
 * is bit-identical at any --jobs setting.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "daemon/daemon.hpp"
#include "daemon/load_gen.hpp"
#include "daemon/report.hpp"
#include "daemon/request.hpp"
#include "daemon/serve_cli.hpp"
#include "daemon/vclock.hpp"
#include "golden_util.hpp"

namespace feather {
namespace daemon {
namespace {

// ---------------------------------------------------------------------------
// Request wire format
// ---------------------------------------------------------------------------

TEST(Request, ParsesAllFields)
{
    Request req;
    std::string error;
    ASSERT_TRUE(Request::parse(
        "{\"id\":\"r7\",\"client\":\"c1\",\"priority\":0,"
        "\"arrival_us\":1500,\"scenario\":\"gemm\",\"aw\":8,\"ah\":4,"
        "\"dataflow\":\"cp\",\"layout\":\"HWC_C8\",\"seed\":42,"
        "\"engine\":\"analytic\"}",
        &req, &error))
        << error;
    EXPECT_EQ(req.id, "r7");
    EXPECT_EQ(req.client, "c1");
    EXPECT_EQ(req.priority, 0);
    EXPECT_EQ(req.arrival_us, 1500);
    EXPECT_EQ(req.scenario, "gemm");
    EXPECT_FALSE(req.isModel());
    EXPECT_EQ(req.aw, 8);
    EXPECT_EQ(req.ah, 4);
    EXPECT_EQ(req.dataflow, "cp");
    EXPECT_EQ(req.layout, "HWC_C8");
    ASSERT_TRUE(req.seed.has_value());
    EXPECT_EQ(*req.seed, 42u);
    ASSERT_TRUE(req.engine.has_value());
    EXPECT_EQ(*req.engine, sim::EngineMode::Analytic);
}

TEST(Request, DefaultsAreMinimal)
{
    Request req;
    std::string error;
    ASSERT_TRUE(Request::parse("{\"scenario\":\"gemm\"}", &req, &error))
        << error;
    EXPECT_EQ(req.client, "anon");
    EXPECT_EQ(req.priority, 1);
    EXPECT_EQ(req.arrival_us, -1) << "unpinned arrival";
    EXPECT_FALSE(req.seed.has_value());
    EXPECT_FALSE(req.engine.has_value());
}

TEST(Request, ModelRequestsParse)
{
    Request req;
    std::string error;
    ASSERT_TRUE(Request::parse(
        "{\"model\":\"bert_mlp\",\"schedule\":\"greedy\"}", &req, &error))
        << error;
    EXPECT_TRUE(req.isModel());
    EXPECT_EQ(req.model, "bert_mlp");
    EXPECT_EQ(req.schedule, "greedy");
}

TEST(Request, StrictRejections)
{
    Request req;
    std::string error;
    struct Case
    {
        const char *line;
        const char *expect; ///< substring the error must contain
    };
    const Case cases[] = {
        {"{\"scenario\":\"gemm\",\"frobnicate\":1}", "unknown key"},
        {"{\"scenario\":\"gemm\",\"priority\":3}", "priority"},
        {"{\"scenario\":\"gemm\",\"priority\":-1}", "priority"},
        {"{\"scenario\":\"gemm\",\"arrival_us\":-5}", "arrival_us"},
        {"{\"scenario\":\"gemm\",\"aw\":0}", "aw"},
        {"{\"scenario\":\"gemm\",\"ah\":8192}", "ah"},
        {"{\"scenario\":\"gemm\",\"engine\":\"warp\"}", "engine"},
        {"{\"scenario\":\"gemm\",\"model\":\"bert_mlp\"}", "exclusive"},
        {"{\"id\":\"x\"}", "required"},
        {"{\"model\":\"bert_mlp\",\"dataflow\":\"cp\"}",
         "scenario requests only"},
        {"{\"scenario\":\"gemm\",\"client\":\"\"}", "client"},
        {"not json at all", ""},
        {"{\"scenario\":\"gemm\"", ""},
    };
    for (const Case &c : cases) {
        error.clear();
        EXPECT_FALSE(Request::parse(c.line, &req, &error)) << c.line;
        EXPECT_FALSE(error.empty()) << c.line;
        EXPECT_NE(error.find(c.expect), std::string::npos)
            << c.line << " -> " << error;
    }
}

TEST(Request, KeepsClientParsedBeforeTheFailure)
{
    // Error accounting attributes bad lines to their client when that
    // field parsed before the failure (keys process in input order).
    Request req;
    std::string error;
    EXPECT_FALSE(Request::parse(
        "{\"client\":\"c3\",\"scenario\":\"gemm\",\"bogus\":1}", &req,
        &error));
    EXPECT_EQ(req.client, "c3");
}

TEST(Request, JsonLineRoundTrips)
{
    const char *lines[] = {
        "{\"scenario\":\"gemm\"}",
        "{\"id\":\"a\",\"client\":\"c0\",\"priority\":0,\"arrival_us\":10,"
        "\"scenario\":\"depthwise\",\"aw\":8,\"ah\":8,\"dataflow\":\"ws\","
        "\"seed\":7,\"engine\":\"analytic\"}",
        "{\"client\":\"c1\",\"model\":\"bert_mlp\",\"schedule\":\"greedy\"}",
    };
    for (const char *line : lines) {
        Request req;
        std::string error;
        ASSERT_TRUE(Request::parse(line, &req, &error)) << error;
        const std::string emitted = req.toJsonLine();
        Request back;
        ASSERT_TRUE(Request::parse(emitted, &back, &error))
            << emitted << ": " << error;
        EXPECT_EQ(back.toJsonLine(), emitted) << line;
    }
}

// ---------------------------------------------------------------------------
// VirtualScheduler (DES)
// ---------------------------------------------------------------------------

struct Completion
{
    size_t index;
    int64_t start;
    int64_t finish;

    bool
    operator==(const Completion &o) const
    {
        return index == o.index && start == o.start && finish == o.finish;
    }
};

/** Run a DES over (arrival, priority, duration) triples; returns
 *  completions in event order, rejects reasons by arrival index. */
struct DesHarness
{
    std::vector<int64_t> durations;
    std::vector<Completion> completions;
    std::vector<std::string> rejected; ///< "" = accepted

    explicit DesHarness(VirtualConfig cfg)
        : vs(cfg, [this](size_t i, int) { return durations[i]; },
             [this](size_t i, int, int64_t s, int64_t f) {
                 completions.push_back({i, s, f});
             })
    {
    }

    bool
    arrive(int64_t at, int priority, int64_t duration)
    {
        durations.push_back(duration);
        std::string reason;
        const bool ok =
            vs.arrive(durations.size() - 1, at, priority, &reason);
        rejected.push_back(ok ? "" : reason);
        return ok;
    }

    VirtualScheduler vs;
};

TEST(VirtualScheduler, SingleServerFifo)
{
    DesHarness h((VirtualConfig()));
    EXPECT_TRUE(h.arrive(0, 1, 10));
    EXPECT_TRUE(h.arrive(1, 1, 5));
    EXPECT_TRUE(h.arrive(2, 1, 5));
    h.vs.drain();
    const std::vector<Completion> want = {
        {0, 0, 10}, {1, 10, 15}, {2, 15, 20}};
    EXPECT_EQ(h.completions, want);
    EXPECT_EQ(h.vs.lastFinish(), 20);
}

TEST(VirtualScheduler, IdleServerStartsAtArrival)
{
    DesHarness h((VirtualConfig()));
    EXPECT_TRUE(h.arrive(0, 1, 10));
    EXPECT_TRUE(h.arrive(100, 1, 5)) << "arrives after the first finished";
    h.vs.drain();
    const std::vector<Completion> want = {{0, 0, 10}, {1, 100, 105}};
    EXPECT_EQ(h.completions, want);
}

TEST(VirtualScheduler, MultipleVworkersServeConcurrently)
{
    VirtualConfig cfg;
    cfg.vworkers = 2;
    DesHarness h(cfg);
    EXPECT_TRUE(h.arrive(0, 1, 10));
    EXPECT_TRUE(h.arrive(0, 1, 10));
    EXPECT_TRUE(h.arrive(0, 1, 10)); // queues behind both
    h.vs.drain();
    ASSERT_EQ(h.completions.size(), 3u);
    EXPECT_EQ(h.completions[2].start, 10) << "starts when a server frees";
    EXPECT_EQ(h.completions[2].finish, 20);
}

TEST(VirtualScheduler, HigherPriorityJumpsTheQueue)
{
    DesHarness h((VirtualConfig()));
    EXPECT_TRUE(h.arrive(0, 1, 10)); // in service
    EXPECT_TRUE(h.arrive(1, 2, 5));  // waits, low priority
    EXPECT_TRUE(h.arrive(2, 0, 5));  // waits, high priority
    h.vs.drain();
    const std::vector<Completion> want = {
        {0, 0, 10}, {2, 10, 15}, {1, 15, 20}};
    EXPECT_EQ(h.completions, want)
        << "priority 0 must start before the earlier priority-2 waiter";
}

TEST(VirtualScheduler, QueueDepthRejectsWithReason)
{
    VirtualConfig cfg;
    cfg.max_queue = 1;
    DesHarness h(cfg);
    EXPECT_TRUE(h.arrive(0, 1, 100)); // in service, not queued
    EXPECT_TRUE(h.arrive(1, 1, 10));  // the one queue slot
    EXPECT_FALSE(h.arrive(2, 1, 10)); // queue full
    EXPECT_NE(h.rejected[2].find("queue full"), std::string::npos)
        << h.rejected[2];
    EXPECT_NE(h.rejected[2].find("max-queue 1"), std::string::npos);
    h.vs.drain();
    EXPECT_EQ(h.completions.size(), 2u) << "rejected request never runs";
}

TEST(VirtualScheduler, MaxQueueZeroStillServesIdleServers)
{
    // Bounds apply to *waiting* requests only: with a free server even
    // max_queue=0 admits.
    VirtualConfig cfg;
    cfg.max_queue = 0;
    DesHarness h(cfg);
    EXPECT_TRUE(h.arrive(0, 1, 10));
    EXPECT_FALSE(h.arrive(1, 1, 10)) << "server busy, no queue room";
    EXPECT_TRUE(h.arrive(20, 1, 10)) << "server idle again";
    h.vs.drain();
    EXPECT_EQ(h.completions.size(), 2u);
}

TEST(VirtualScheduler, PerPriorityQuotaRejects)
{
    VirtualConfig cfg;
    cfg.quota[2] = 1;
    DesHarness h(cfg);
    EXPECT_TRUE(h.arrive(0, 2, 100));
    EXPECT_TRUE(h.arrive(1, 2, 10));  // one priority-2 waiter: at quota
    EXPECT_FALSE(h.arrive(2, 2, 10)); // over quota
    EXPECT_NE(h.rejected[2].find("priority-2 quota"), std::string::npos)
        << h.rejected[2];
    EXPECT_TRUE(h.arrive(3, 0, 10)) << "other priorities are unaffected";
    h.vs.drain();
    EXPECT_EQ(h.completions.size(), 3u);
}

TEST(VirtualScheduler, QueueFreesAsCompletionsMaterialize)
{
    // Lazy drain: a later arrival materializes earlier completions, so
    // the queue slot frees and the new request is admitted.
    VirtualConfig cfg;
    cfg.max_queue = 1;
    DesHarness h(cfg);
    EXPECT_TRUE(h.arrive(0, 1, 5));
    EXPECT_TRUE(h.arrive(1, 1, 5));   // queued
    EXPECT_TRUE(h.arrive(6, 1, 5));   // t=6: first done, queue empty again
    h.vs.drain();
    EXPECT_EQ(h.completions.size(), 3u);
    const std::vector<Completion> want = {
        {0, 0, 5}, {1, 5, 10}, {2, 10, 15}};
    EXPECT_EQ(h.completions, want);
}

TEST(VirtualScheduler, ZeroDurationClampsToOne)
{
    DesHarness h((VirtualConfig()));
    EXPECT_TRUE(h.arrive(0, 1, 0));
    h.vs.drain();
    ASSERT_EQ(h.completions.size(), 1u);
    EXPECT_EQ(h.completions[0].finish, 1)
        << "virtual service takes at least 1us";
}

// ---------------------------------------------------------------------------
// Daemon end to end
// ---------------------------------------------------------------------------

/** Run @p requests through a fresh daemon, capturing responses. */
struct DaemonRun
{
    std::vector<std::string> responses;
    DaemonReport report;
    uint64_t failures = 0;
};

DaemonRun
runDaemon(const std::vector<Request> &requests, DaemonOptions opts)
{
    DaemonRun out;
    Daemon daemon(opts);
    for (const Request &req : requests) {
        daemon.enqueue(req, [&out](const std::string &line) {
            out.responses.push_back(line);
        });
    }
    daemon.closeIntake();
    out.report = daemon.run();
    out.failures = daemon.failures();
    return out;
}

std::vector<Request>
smallLoad(uint64_t requests = 24)
{
    LoadGenConfig cfg;
    cfg.qps = 500;
    cfg.requests = requests;
    cfg.seed = 2024;
    return generateLoad(cfg);
}

TEST(Daemon, AnswersEveryRequestOnce)
{
    const std::vector<Request> reqs = smallLoad();
    const DaemonRun run = runDaemon(reqs, DaemonOptions());
    EXPECT_EQ(run.responses.size(), reqs.size());
    EXPECT_EQ(run.report.requests, reqs.size());
    EXPECT_EQ(run.report.requests, run.report.accepted +
                                       run.report.rejected +
                                       run.report.errors);
    EXPECT_EQ(run.report.errors, 0u);
    EXPECT_EQ(run.failures, 0u);
    // Percentiles come from accepted requests: makespan covers them all.
    EXPECT_GT(run.report.makespan_vus, 0);
    EXPECT_GE(run.report.p95_vus, run.report.p50_vus);
    EXPECT_GE(run.report.p99_vus, run.report.p95_vus);
    EXPECT_GE(run.report.max_vus, run.report.p99_vus);
}

TEST(Daemon, ResponsesAndReportAreBitIdenticalAcrossJobs)
{
    // THE determinism contract: --jobs changes wall-clock execution only.
    const std::vector<Request> reqs = smallLoad();
    DaemonOptions one;
    one.num_threads = 1;
    one.virt.vworkers = 2;
    DaemonOptions eight = one;
    eight.num_threads = 8;
    const DaemonRun a = runDaemon(reqs, one);
    const DaemonRun b = runDaemon(reqs, eight);

    ASSERT_EQ(a.responses.size(), b.responses.size());
    for (size_t i = 0; i < a.responses.size(); ++i) {
        EXPECT_EQ(zeroWallJson(a.responses[i]), zeroWallJson(b.responses[i]))
            << "response " << i;
    }
    EXPECT_EQ(golden::zeroWallCsv(a.report.toCsv()),
              golden::zeroWallCsv(b.report.toCsv()));
    EXPECT_EQ(golden::zeroWallJson(a.report.toJson()),
              golden::zeroWallJson(b.report.toJson()));
    EXPECT_EQ(a.failures, b.failures);
}

TEST(Daemon, AdmissionControlShedsLoadDeterministically)
{
    // A tiny virtual system under a fast open-loop stream must reject
    // some requests — identically at any pool size.
    std::vector<Request> reqs;
    for (int i = 0; i < 30; ++i) {
        Request req;
        req.id = strCat("r", i);
        req.client = i % 2 ? "odd" : "even";
        req.scenario = "gemm";
        req.arrival_us = i; // far faster than service
        reqs.push_back(req);
    }
    DaemonOptions opts;
    opts.clock_mhz = 1; // 1 MHz: service takes ~cycles virtual us
    opts.virt.max_queue = 2;
    const DaemonRun a = runDaemon(reqs, opts);
    EXPECT_GT(a.report.rejected, 0u);
    EXPECT_GT(a.report.accepted, 0u);
    EXPECT_EQ(a.report.requests, 30u);
    EXPECT_EQ(a.failures, 0u) << "admission rejections are not failures";

    opts.num_threads = 6;
    const DaemonRun b = runDaemon(reqs, opts);
    EXPECT_EQ(a.report.rejected, b.report.rejected);
    EXPECT_EQ(golden::zeroWallCsv(a.report.toCsv()),
              golden::zeroWallCsv(b.report.toCsv()));

    // Rejected responses carry the reason.
    const auto rejected_line =
        std::find_if(a.responses.begin(), a.responses.end(),
                     [](const std::string &r) {
                         return r.find("\"rejected\"") != std::string::npos;
                     });
    ASSERT_NE(rejected_line, a.responses.end());
    EXPECT_NE(rejected_line->find("\"reason\""), std::string::npos);
}

TEST(Daemon, QuotaZeroStarvesOnlyThatPriority)
{
    std::vector<Request> reqs;
    for (int i = 0; i < 12; ++i) {
        Request req;
        req.client = "c";
        req.scenario = "gemm";
        req.priority = i % 2 ? 2 : 0;
        req.arrival_us = i;
        reqs.push_back(req);
    }
    DaemonOptions opts;
    opts.clock_mhz = 1;     // slow virtual clock so requests pile up
    opts.virt.quota[2] = 0; // priority 2 may never wait
    const DaemonRun run = runDaemon(reqs, opts);
    EXPECT_GT(run.report.rejected, 0u);
    for (const std::string &r : run.responses) {
        if (r.find("\"rejected\"") != std::string::npos) {
            EXPECT_NE(r.find("priority-2 quota"), std::string::npos) << r;
        }
    }
}

TEST(Daemon, BadLinesBecomeErrorResponsesWithAttribution)
{
    Daemon daemon;
    std::vector<std::string> responses;
    const ResponseSink sink = [&responses](const std::string &line) {
        responses.push_back(line);
    };
    daemon.enqueueLine("{\"client\":\"cx\",\"scenario\":\"gemm\","
                       "\"bogus\":1}",
                       sink);
    daemon.enqueueLine("this is not json", sink);
    daemon.enqueueLine("{\"scenario\":\"no_such_scenario\"}", sink);
    daemon.closeIntake();
    const DaemonReport report = daemon.run();

    ASSERT_EQ(responses.size(), 3u);
    for (const std::string &r : responses) {
        EXPECT_NE(r.find("\"ERROR\""), std::string::npos) << r;
    }
    EXPECT_NE(responses[0].find("\"client\":\"cx\""), std::string::npos)
        << "bad line attributed to its parsed client";
    EXPECT_NE(responses[2].find("no_such_scenario"), std::string::npos);
    EXPECT_EQ(report.errors, 3u);
    EXPECT_EQ(daemon.failures(), 3u);

    const auto cx = std::find_if(
        report.clients.begin(), report.clients.end(),
        [](const ClientRow &c) { return c.client == "cx"; });
    ASSERT_NE(cx, report.clients.end());
    EXPECT_EQ(cx->errors, 1u);
}

TEST(Daemon, NonMonotonicPinnedArrivalsAreErrors)
{
    std::vector<Request> reqs(2);
    reqs[0].scenario = "gemm";
    reqs[0].arrival_us = 100;
    reqs[1].scenario = "gemm";
    reqs[1].arrival_us = 50; // goes backwards
    const DaemonRun run = runDaemon(reqs, DaemonOptions());
    EXPECT_EQ(run.report.accepted, 1u);
    EXPECT_EQ(run.report.errors, 1u);
    // The error response is emitted at intake time, before the first
    // request's completion materializes at drain — search, don't index.
    const auto err = std::find_if(
        run.responses.begin(), run.responses.end(),
        [](const std::string &r) {
            return r.find("non-decreasing") != std::string::npos;
        });
    EXPECT_NE(err, run.responses.end());
}

TEST(Daemon, EnqueueAfterCloseIsRejected)
{
    Daemon daemon;
    daemon.closeIntake();
    std::vector<std::string> responses;
    Request req;
    req.scenario = "gemm";
    daemon.enqueue(req, [&responses](const std::string &line) {
        responses.push_back(line);
    });
    const DaemonReport report = daemon.run();
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_NE(responses[0].find("intake closed"), std::string::npos);
    EXPECT_EQ(report.requests, 0u) << "late arrivals are not accounted";
}

TEST(Daemon, WarmCacheAttributesHitsToClients)
{
    // Two clients asking for the same scenario: the first planning pass
    // misses, every later one hits — attributed to the client that asked.
    std::vector<Request> reqs;
    for (int i = 0; i < 4; ++i) {
        Request req;
        req.client = i == 0 ? "first" : "rest";
        req.scenario = "gemm";
        req.arrival_us = i * 1000;
        reqs.push_back(req);
    }
    const DaemonRun run = runDaemon(reqs, DaemonOptions());
    ASSERT_EQ(run.report.clients.size(), 2u);
    const ClientRow &first = run.report.clients[0];
    const ClientRow &rest = run.report.clients[1];
    ASSERT_EQ(first.client, "first");
    EXPECT_GT(first.cache_misses, 0u);
    EXPECT_EQ(first.cache_hits, 0u);
    EXPECT_EQ(rest.cache_misses, 0u) << "the cache is already warm";
    EXPECT_GT(rest.cache_hits, 0u);
    EXPECT_GT(run.report.cache.hits, 0u);
    EXPECT_GT(run.report.cache.entries, 0u);
}

TEST(Daemon, BadLayoutFailsAtExecutionNotAdmission)
{
    // A layout the scenario cannot satisfy fails at execution (layouts
    // are not part of planning) — an ERROR, counted as a failure.
    Request req;
    req.scenario = "gemm";
    req.layout = "not_a_layout";
    const DaemonRun run = runDaemon({req}, DaemonOptions());
    EXPECT_EQ(run.report.errors, 1u);
    EXPECT_EQ(run.failures, 1u);
    EXPECT_NE(run.responses[0].find("\"ERROR\""), std::string::npos)
        << run.responses[0];
}

TEST(Daemon, ModelRequestsScheduleWholeGraphs)
{
    Request req;
    req.client = "m";
    req.model = "bert_mlp";
    const DaemonRun run = runDaemon({req}, DaemonOptions());
    ASSERT_EQ(run.responses.size(), 1u);
    EXPECT_NE(run.responses[0].find("\"ok\""), std::string::npos)
        << run.responses[0];
    EXPECT_EQ(run.report.accepted, 1u);
    EXPECT_GT(run.report.total_cycles, 0);
    EXPECT_EQ(run.failures, 0u);
}

TEST(Daemon, AnalyticScenarioRunsReportEstimates)
{
    Request req;
    req.scenario = "gemm";
    req.engine = sim::EngineMode::Analytic;
    const DaemonRun run = runDaemon({req}, DaemonOptions());
    ASSERT_EQ(run.responses.size(), 1u);
    EXPECT_NE(run.responses[0].find("\"est\""), std::string::npos)
        << run.responses[0];
    EXPECT_NE(run.responses[0].find("\"checked\":0"), std::string::npos)
        << "analytic runs verify nothing";
}

// ---------------------------------------------------------------------------
// Load generator
// ---------------------------------------------------------------------------

TEST(LoadGen, StreamIsDeterministicAndPinned)
{
    LoadGenConfig cfg;
    cfg.qps = 300;
    cfg.requests = 50;
    cfg.seed = 7;
    const std::vector<Request> a = generateLoad(cfg);
    const std::vector<Request> b = generateLoad(cfg);
    ASSERT_EQ(a.size(), 50u);
    EXPECT_EQ(toTraceText(a), toTraceText(b));

    int64_t last = -1;
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, strCat("r", i));
        ASSERT_GE(a[i].arrival_us, 0) << "arrivals must be pinned";
        EXPECT_GE(a[i].arrival_us, last) << "non-decreasing arrivals";
        last = a[i].arrival_us;
    }

    cfg.seed = 8;
    EXPECT_NE(toTraceText(generateLoad(cfg)), toTraceText(a))
        << "the seed must matter";
}

TEST(LoadGen, RateChangesArrivalsNotShapes)
{
    LoadGenConfig slow;
    slow.qps = 100;
    slow.requests = 30;
    LoadGenConfig fast = slow;
    fast.qps = 10000;
    const std::vector<Request> a = generateLoad(slow);
    const std::vector<Request> b = generateLoad(fast);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        // Same workload mix; only the arrival clock differs.
        EXPECT_EQ(a[i].scenario, b[i].scenario) << i;
        EXPECT_EQ(a[i].model, b[i].model) << i;
        EXPECT_EQ(a[i].client, b[i].client) << i;
        EXPECT_EQ(a[i].priority, b[i].priority) << i;
    }
    EXPECT_GT(a.back().arrival_us, b.back().arrival_us)
        << "lower qps spreads arrivals out";
}

TEST(LoadGen, MixCoversClientsPrioritiesAndModels)
{
    LoadGenConfig cfg;
    cfg.requests = 120;
    const std::vector<Request> reqs = generateLoad(cfg);
    std::set<std::string> clients;
    std::set<int> priorities;
    size_t models = 0;
    for (const Request &r : reqs) {
        clients.insert(r.client);
        priorities.insert(r.priority);
        if (r.isModel()) ++models;
    }
    EXPECT_EQ(clients.size(), 4u);
    EXPECT_EQ(priorities.size(), 3u);
    EXPECT_GT(models, 0u) << "every 40th request schedules a whole model";
}

TEST(LoadGen, TraceReplaysIdenticallyThroughTheDaemon)
{
    // trace -> parse -> daemon must equal requests -> daemon directly.
    const std::vector<Request> reqs = smallLoad(16);
    std::vector<Request> replayed;
    std::istringstream in(toTraceText(reqs));
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        Request req;
        std::string error;
        ASSERT_TRUE(Request::parse(line, &req, &error)) << error;
        replayed.push_back(req);
    }
    const DaemonRun direct = runDaemon(reqs, DaemonOptions());
    const DaemonRun via_trace = runDaemon(replayed, DaemonOptions());
    EXPECT_EQ(golden::zeroWallCsv(direct.report.toCsv()),
              golden::zeroWallCsv(via_trace.report.toCsv()));
    EXPECT_EQ(golden::zeroWallJson(direct.report.toJson()),
              golden::zeroWallJson(via_trace.report.toJson()));
}

// ---------------------------------------------------------------------------
// feather_serve CLI
// ---------------------------------------------------------------------------

TEST(ServeCli, ParsesFullCommandLine)
{
    ServeCliConfig config;
    std::string error;
    ASSERT_TRUE(parseServeCli(
        {"--qps", "500", "--requests", "100", "--jobs", "8", "--seed", "11",
         "--engine", "analytic", "--vworkers", "4", "--max-queue", "32",
         "--quota", "2=8", "--clock-mhz", "500", "--trace", "t.jsonl",
         "--report-csv", "a.csv", "--report-json", "b.json", "--quiet"},
        &config, &error))
        << error;
    EXPECT_EQ(config.mode, ServeCliConfig::Mode::LoadGen);
    EXPECT_EQ(config.load.qps, 500u);
    EXPECT_EQ(config.load.requests, 100u);
    EXPECT_EQ(config.daemon.num_threads, 8);
    EXPECT_EQ(config.daemon.base_seed, 11u);
    EXPECT_EQ(config.daemon.engine, sim::EngineMode::Analytic);
    EXPECT_EQ(config.daemon.virt.vworkers, 4);
    EXPECT_EQ(config.daemon.virt.max_queue, 32);
    EXPECT_EQ(config.daemon.virt.quota[2], 8);
    EXPECT_EQ(config.daemon.clock_mhz, 500u);
    EXPECT_EQ(config.trace_path, "t.jsonl");
    EXPECT_EQ(config.report_csv, "a.csv");
    EXPECT_EQ(config.report_json, "b.json");
    EXPECT_TRUE(config.quiet);
}

TEST(ServeCli, NumericFlagsRejectJunkNamingTheFlag)
{
    // Satellite contract: one-line error, names the flag, rejects both
    // non-numeric and non-positive values.
    struct Case
    {
        std::vector<std::string> args;
        const char *flag;
    };
    const Case cases[] = {
        {{"--stdin", "--jobs", "0"}, "--jobs"},
        {{"--stdin", "--jobs", "abc"}, "--jobs"},
        {{"--stdin", "--jobs", "-2"}, "--jobs"},
        {{"--stdin", "--jobs", "257"}, "--jobs"},
        {{"--stdin", "--seed", "0"}, "--seed"},
        {{"--stdin", "--seed", "12x"}, "--seed"},
        {{"--qps", "0", "--requests", "5"}, "--qps"},
        {{"--qps", "fast", "--requests", "5"}, "--qps"},
        {{"--qps", "10", "--requests", "0"}, "--requests"},
        {{"--qps", "10", "--requests", "many"}, "--requests"},
        {{"--stdin", "--vworkers", "0"}, "--vworkers"},
        {{"--stdin", "--max-queue", "-1"}, "--max-queue"},
        {{"--stdin", "--clock-mhz", "0"}, "--clock-mhz"},
        {{"--stdin", "--quota", "3=1"}, "--quota"},
        {{"--stdin", "--quota", "5=1"}, "--quota"},
        {{"--stdin", "--quota", "9=4"}, "--quota"},
        {{"--stdin", "--quota", "-1=2"}, "--quota"},
        {{"--stdin", "--quota", "1:2"}, "--quota"},
        {{"--stdin", "--quota", "1="}, "--quota"},
        {{"--listen", "65536"}, "--listen"},
    };
    for (const Case &c : cases) {
        ServeCliConfig config;
        std::string error;
        EXPECT_FALSE(parseServeCli(c.args, &config, &error)) << c.flag;
        EXPECT_NE(error.find(c.flag), std::string::npos)
            << "error must name the flag: " << error;
        EXPECT_EQ(error.find('\n'), std::string::npos)
            << "one-line error: " << error;
    }
}

TEST(ServeCli, ModeSelectionIsStrict)
{
    ServeCliConfig config;
    std::string error;
    EXPECT_FALSE(parseServeCli({}, &config, &error));
    EXPECT_NE(error.find("mode"), std::string::npos);
    EXPECT_FALSE(
        parseServeCli({"--stdin", "--replay", "t.jsonl"}, &config, &error));
    EXPECT_FALSE(parseServeCli({"--qps", "10"}, &config, &error));
    EXPECT_NE(error.find("--requests"), std::string::npos);
    EXPECT_FALSE(
        parseServeCli({"--stdin", "--trace", "t.jsonl"}, &config, &error));
    EXPECT_NE(error.find("--trace"), std::string::npos);
    EXPECT_FALSE(parseServeCli({"--frobnicate"}, &config, &error));
    EXPECT_NE(error.find("--frobnicate"), std::string::npos);

    ASSERT_TRUE(parseServeCli({"--help"}, &config, &error)) << error;
    EXPECT_TRUE(config.help);
    ASSERT_TRUE(parseServeCli({"--replay", "t.jsonl"}, &config, &error));
    EXPECT_EQ(config.mode, ServeCliConfig::Mode::Replay);
    EXPECT_EQ(config.replay_path, "t.jsonl");
}

// ---------------------------------------------------------------------------
// Daemon report schema (golden lock; see tests/golden/)
// ---------------------------------------------------------------------------

namespace schema {

DaemonReport
sampleReport()
{
    return runDaemon(smallLoad(8), DaemonOptions()).report;
}

TEST(DaemonReportSchema, CsvColumnsMatchGolden)
{
    const std::vector<std::string> golden =
        golden::readGoldenLines("daemon_report_csv_header.golden");
    ASSERT_EQ(golden.size(), 1u);
    EXPECT_EQ(golden::csvHeader(sampleReport().toCsv()), golden[0])
        << "daemon CSV columns are locked; update the golden file "
           "deliberately when extending the schema";
}

TEST(DaemonReportSchema, JsonKeysMatchGolden)
{
    const std::vector<std::string> golden =
        golden::readGoldenLines("daemon_report_json_keys.golden");
    EXPECT_EQ(golden::jsonKeys(sampleReport().toJson()), golden)
        << "daemon JSON keys are locked; update the golden file "
           "deliberately when extending the schema";
}

TEST(DaemonReportSchema, WallFieldsFollowTheSuffixConvention)
{
    // Every non-deterministic field must end in _wall_us so the shared
    // normalizer (common/report_norm) zeroes it; lock the ones we have.
    const std::string csv = sampleReport().toCsv();
    EXPECT_NE(golden::csvHeader(csv).find("queue_wall_us"),
              std::string::npos);
    EXPECT_NE(golden::csvHeader(csv).find("service_wall_us"),
              std::string::npos);
    const std::string json = sampleReport().toJson();
    EXPECT_NE(json.find("\"run_wall_us\":"), std::string::npos);
}

} // namespace schema

} // namespace
} // namespace daemon
} // namespace feather
