/**
 * @file
 * Unit tests for src/workload: shape math and the model zoos.
 */

#include <gtest/gtest.h>

#include "workload/model_zoo.hpp"
#include "workload/shapes.hpp"

namespace feather {
namespace {

TEST(Dims, NamesRoundTrip)
{
    for (int i = 0; i < kNumDims; ++i) {
        const Dim d = Dim(i);
        EXPECT_EQ(parseDim(dimName(d)), d);
    }
}

TEST(Dims, ReductionDims)
{
    EXPECT_TRUE(isReductionDim(Dim::C));
    EXPECT_TRUE(isReductionDim(Dim::R));
    EXPECT_TRUE(isReductionDim(Dim::S));
    EXPECT_TRUE(isReductionDim(Dim::K));
    EXPECT_FALSE(isReductionDim(Dim::M));
    EXPECT_FALSE(isReductionDim(Dim::P));
    EXPECT_FALSE(isReductionDim(Dim::N));
}

TEST(ConvShape, ResNetConv1)
{
    const ConvShape c{1, 3, 224, 224, 64, 7, 7, 2, 3, false};
    EXPECT_EQ(c.outH(), 112);
    EXPECT_EQ(c.outW(), 112);
    EXPECT_EQ(c.macs(), int64_t{1} * 64 * 3 * 112 * 112 * 7 * 7);
    EXPECT_EQ(c.iactElems(), 3 * 224 * 224);
    EXPECT_EQ(c.weightElems(), 64 * 3 * 7 * 7);
    EXPECT_EQ(c.oactElems(), 64 * 112 * 112);
}

TEST(ConvShape, ExtentLookup)
{
    const ConvShape c{1, 8, 16, 16, 32, 3, 3, 1, 1, false};
    EXPECT_EQ(c.extent(Dim::C), 8);
    EXPECT_EQ(c.extent(Dim::M), 32);
    EXPECT_EQ(c.extent(Dim::P), 16);
    EXPECT_EQ(c.extent(Dim::Q), 16);
    EXPECT_EQ(c.extent(Dim::K), 8 * 3 * 3);
}

TEST(ConvShape, DepthwiseMacs)
{
    const ConvShape c{1, 32, 8, 8, 32, 3, 3, 1, 1, true};
    EXPECT_EQ(c.macs(), int64_t{32} * 8 * 8 * 3 * 3);
    EXPECT_EQ(c.weightElems(), 32 * 3 * 3);
}

TEST(GemmShape, Basics)
{
    const GemmShape g{512, 768, 3072};
    EXPECT_EQ(g.macs(), int64_t{512} * 768 * 3072);
    EXPECT_EQ(g.extent(Dim::M), 512);
    EXPECT_EQ(g.extent(Dim::N), 768);
    EXPECT_EQ(g.extent(Dim::K), 3072);
}

TEST(ModelZoo, ResNet50HasExpectedLayers)
{
    const auto model = resnet50();
    // 53 convolutions + maxpool + avgpool + fc.
    int convs = 0, pools = 0, gemms = 0;
    for (const auto &l : model) {
        if (l.type == OpType::Conv) ++convs;
        if (l.type == OpType::MaxPool || l.type == OpType::AvgPool) ++pools;
        if (l.type == OpType::Gemm) ++gemms;
    }
    EXPECT_EQ(convs, 53);
    EXPECT_EQ(pools, 2);
    EXPECT_EQ(gemms, 1);

    // First layer is the 7x7 stem.
    EXPECT_EQ(model[0].conv.c, 3);
    EXPECT_EQ(model[0].conv.m, 64);
    EXPECT_EQ(model[0].conv.r, 7);
    EXPECT_EQ(model[0].conv.stride, 2);
}

TEST(ModelZoo, ResNet50MacCount)
{
    // ResNet-50 at 224x224 is ~4.1 GMACs; accept the conv-indexing
    // variance across published counts (3.8e9 .. 4.3e9).
    const int64_t macs = totalMacs(resnet50());
    EXPECT_GT(macs, int64_t{3'500'000'000});
    EXPECT_LT(macs, int64_t{4'500'000'000});
}

TEST(ModelZoo, ResNet50DeepLayerShapes)
{
    const auto convs = macLayers(resnet50());
    // The last stage works on 7x7 maps with up to 2048 channels.
    bool saw_2048 = false;
    for (const auto &l : convs) {
        if (l.type != OpType::Conv) continue;
        if (l.conv.c == 2048) {
            saw_2048 = true;
            EXPECT_EQ(l.conv.h, 7);
        }
    }
    EXPECT_TRUE(saw_2048);
}

TEST(ModelZoo, MobileNetV3Structure)
{
    const auto model = mobilenetV3Large();
    int dws = 0;
    for (const auto &l : model) {
        if (l.type == OpType::DepthwiseConv) {
            ++dws;
            EXPECT_TRUE(l.conv.depthwise);
        }
    }
    EXPECT_EQ(dws, 15); // one depthwise per bneck
    // MobileNet-V3-Large is ~0.22 GMACs.
    const int64_t macs = totalMacs(model);
    EXPECT_GT(macs, int64_t{150'000'000});
    EXPECT_LT(macs, int64_t{300'000'000});
}

TEST(ModelZoo, BertBaseGemms)
{
    const auto model = bertBase(512);
    EXPECT_EQ(model.size(), 6u);
    for (const auto &l : model) {
        EXPECT_EQ(l.type, OpType::Gemm);
    }
    // BERT-base forward at seq 512 is ~43.5 GMACs (without embeddings);
    // attention matmuls included.
    const int64_t macs = totalMacs(model);
    EXPECT_GT(macs, int64_t{30'000'000'000});
    EXPECT_LT(macs, int64_t{60'000'000'000});
}

TEST(ModelZoo, MacLayersFiltersPooling)
{
    const auto model = resnet50();
    const auto macs = macLayers(model);
    for (const auto &l : macs) {
        EXPECT_NE(l.type, OpType::MaxPool);
        EXPECT_NE(l.type, OpType::AvgPool);
    }
}

TEST(LayerSpec, ToStringContainsName)
{
    const auto model = resnet50();
    EXPECT_NE(model[0].toString().find("conv1"), std::string::npos);
}

} // namespace
} // namespace feather
