/**
 * @file
 * Tests for the Layoutloop analytical model (§V): bank-conflict assessment
 * per reorder capability, reorder overheads, and the (dataflow, layout)
 * mapper.
 */

#include <gtest/gtest.h>

#include "baselines/arch_zoo.hpp"
#include "layoutloop/evaluator.hpp"
#include "layoutloop/mapper.hpp"

namespace feather {
namespace {

LayerSpec
resnetLayer1()
{
    LayerSpec l;
    l.name = "resnet_l1";
    l.type = OpType::Conv;
    l.conv = ConvShape{1, 3, 224, 224, 64, 7, 7, 2, 3, false};
    return l;
}

LayerSpec
resnetDeepLayer()
{
    LayerSpec l;
    l.name = "resnet_l47";
    l.type = OpType::Conv;
    l.conv = ConvShape{1, 2048, 7, 7, 512, 3, 3, 1, 1, false};
    return l;
}

Mapping
channelParallel16x16()
{
    Mapping m;
    m.cols = {{Dim::C, 16}};
    m.rows = {{Dim::M, 16}};
    return m;
}

TEST(Evaluator, ConcordantChannelParallel)
{
    // C-parallel under HWC_C32: 16 channels of one pixel live in one line.
    const ArchSpec arch = sigmaLikeFixed(WorkloadKind::Conv, "HWC_C32");
    const EvalResult r = evaluateMapping(arch, resnetDeepLayer(),
                                         channelParallel16x16(),
                                         Layout::parse("HWC_C32"));
    ASSERT_TRUE(r.valid);
    EXPECT_DOUBLE_EQ(r.slowdown, 1.0);
    EXPECT_EQ(r.stall_cycles, 0);
    EXPECT_GT(r.practical_utilization, 0.99);
}

TEST(Evaluator, DiscordantChannelParallel)
{
    // Same dataflow under HWC_W32 (row-major lines): 16 channels live in
    // 16 different lines -> heavy conflicts.
    const ArchSpec arch = sigmaLikeFixed(WorkloadKind::Conv, "HWC_W32");
    const EvalResult r = evaluateMapping(arch, resnetDeepLayer(),
                                         channelParallel16x16(),
                                         Layout::parse("HWC_W32"));
    ASSERT_TRUE(r.valid);
    EXPECT_GT(r.slowdown, 1.5);
    EXPECT_GT(r.stall_cycles, 0);
}

TEST(Evaluator, UtilizationQuantization)
{
    // ResNet-50 layer 1 has C=3: a C16 unrolling runs at 3/16 occupancy.
    const ArchSpec arch = nvdlaLike(WorkloadKind::Conv);
    const EvalResult r = evaluateMapping(arch, resnetLayer1(),
                                         channelParallel16x16(),
                                         Layout::parse("HWC_C32"));
    ASSERT_TRUE(r.valid);
    EXPECT_NEAR(r.theoretical_utilization, 3.0 / 16.0, 1e-9);
}

TEST(Evaluator, LineRotationMitigatesThreeLineConflicts)
{
    // A mapping that touches exactly 3 lines per bank per cycle: dual-port
    // alone -> 2 cycles; with line rotation (one extra effective port) ->
    // 1 cycle.
    LayerSpec layer = resnetDeepLayer();
    Mapping m;
    m.cols = {{Dim::C, 3}};
    m.rows = {{Dim::M, 16}};

    ArchSpec none = sigmaLikeFixed(WorkloadKind::Conv, "HWC_W32");
    // Make the whole buffer one bank so the 3 lines always collide.
    none.iact_buffer.lines_per_bank = none.iact_buffer.num_lines;
    ArchSpec rot = none;
    rot.name = "rot";
    rot.reorder = ReorderCapability::LineRotation;

    const Layout l = Layout::parse("HWC_W32");
    const EvalResult r_none = evaluateMapping(none, layer, m, l);
    const EvalResult r_rot = evaluateMapping(rot, layer, m, l);
    ASSERT_TRUE(r_none.valid);
    ASSERT_TRUE(r_rot.valid);
    EXPECT_GT(r_none.slowdown, 1.5);
    EXPECT_DOUBLE_EQ(r_rot.slowdown, 1.0);
    // But rotation pays energy for the copied lines.
    EXPECT_GT(r_rot.reorder_energy_pj, 0.0);
}

TEST(Evaluator, TransposeCollapsesColumnAccess)
{
    // W-parallel reads under HWC_C32 touch one line per W position but a
    // single slot: a column access the MLU transpose can serve in 1 cycle.
    LayerSpec layer = resnetDeepLayer();
    Mapping m;
    m.cols = {{Dim::Q, 16}};
    m.rows = {{Dim::M, 16}};

    ArchSpec none = sigmaLikeFixed(WorkloadKind::Conv, "HWC_C32");
    none.iact_buffer.lines_per_bank = none.iact_buffer.num_lines;
    ArchSpec mtia = none;
    mtia.reorder = ReorderCapability::Transpose;

    const Layout l = Layout::parse("HWC_C32");
    const EvalResult r_none = evaluateMapping(none, layer, m, l);
    const EvalResult r_mtia = evaluateMapping(mtia, layer, m, l);
    EXPECT_GT(r_none.slowdown, 1.5);
    EXPECT_DOUBLE_EQ(r_mtia.slowdown, 1.0);
    // RAR through the MLU shows up as explicit reorder latency (Fig. 6b).
    EXPECT_GT(r_mtia.reorder_cycles, 0);
}

TEST(Evaluator, OffChipReorderCostsEnergyAlways)
{
    const ArchSpec arch = sigmaLikeOffChip(WorkloadKind::Conv);
    const EvalResult r = evaluateMapping(arch, resnetDeepLayer(),
                                         channelParallel16x16(),
                                         Layout::parse("HWC_C32"));
    ASSERT_TRUE(r.valid);
    EXPECT_GT(r.reorder_energy_pj, 0.0) << "DRAM round trip per layer";
    // Compute-heavy layer at 128 B/cycle: latency fully hidden.
    EXPECT_EQ(r.reorder_cycles, 0);
}

TEST(Evaluator, OffChipReorderExposedOnLowIntensityLayer)
{
    // A tiny depthwise-style layer: little compute, big activations.
    LayerSpec l;
    l.type = OpType::Conv;
    l.conv = ConvShape{1, 256, 56, 56, 16, 1, 1, 1, 0, false};
    ArchSpec arch = sigmaLikeOffChip(WorkloadKind::Conv);
    arch.offchip_bytes_per_cycle = 4.0; // slow link exposes the reorder
    Mapping m = channelParallel16x16();
    const EvalResult r =
        evaluateMapping(arch, l, m, Layout::parse("HWC_C32"));
    ASSERT_TRUE(r.valid);
    EXPECT_GT(r.reorder_cycles, 0);
}

TEST(Mapper, TOnlyDesignHasOneMapping)
{
    const Mapper mapper(nvdlaLike(WorkloadKind::Conv));
    EXPECT_EQ(mapper.candidateMappings(resnetLayer1()).size(), 1u);
}

TEST(Mapper, ShapeFlexEnumeratesDegrees)
{
    const Mapper mapper(eyerissLike(WorkloadKind::Conv));
    EXPECT_GT(mapper.candidateMappings(resnetLayer1()).size(), 4u);
}

TEST(Mapper, TopsDesignEnumeratesDims)
{
    const Mapper mapper(featherArch(WorkloadKind::Conv));
    const auto cands = mapper.candidateMappings(resnetLayer1());
    EXPECT_GT(cands.size(), 50u);
}

TEST(Mapper, LayoutChoiceRestrictedByReorder)
{
    const Mapper fixed(sigmaLikeFixed(WorkloadKind::Conv, "HWC_C32"));
    EXPECT_EQ(fixed.candidateLayouts(resnetLayer1()).size(), 1u);
    const Mapper rir(featherArch(WorkloadKind::Conv));
    EXPECT_EQ(rir.candidateLayouts(resnetLayer1()).size(),
              convLayoutSpace().size());
}

TEST(Mapper, FeatherFindsConflictFreePair)
{
    // §VI-C: FEATHER reaches peak utilization with zero conflict slowdown.
    const Mapper mapper(featherArch(WorkloadKind::Conv));
    for (const LayerSpec &layer : {resnetLayer1(), resnetDeepLayer()}) {
        const EvalResult best = mapper.searchLayer(layer);
        EXPECT_DOUBLE_EQ(best.slowdown, 1.0) << layer.toString();
        EXPECT_EQ(best.stall_cycles, 0) << layer.toString();
    }
}

TEST(Mapper, FeatherBeatsNvdlaOnLayer1)
{
    // NVDLA's fixed C16 parallelism wastes 13/16 of the array on C=3.
    const EvalResult nv =
        Mapper(nvdlaLike(WorkloadKind::Conv)).searchLayer(resnetLayer1());
    const EvalResult fe =
        Mapper(featherArch(WorkloadKind::Conv)).searchLayer(resnetLayer1());
    EXPECT_LT(fe.total_cycles, nv.total_cycles);
    EXPECT_GT(double(nv.total_cycles) / double(fe.total_cycles), 1.5);
}

TEST(Mapper, ModelEvalAggregates)
{
    std::vector<LayerSpec> model = {resnetLayer1(), resnetDeepLayer()};
    model[1].repeat = 2;
    const ModelEval eval =
        Mapper(featherArch(WorkloadKind::Conv)).searchModel(model);
    ASSERT_EQ(eval.layers.size(), 2u);
    EXPECT_EQ(eval.totalMacs(),
              model[0].macs() + 2 * model[1].macs());
    EXPECT_EQ(eval.totalCycles(),
              eval.layers[0].best.total_cycles +
                  2 * eval.layers[1].best.total_cycles);
    EXPECT_GT(eval.avgPracticalUtilization(), 0.0);
}

TEST(Mapper, GemmSearchWorks)
{
    LayerSpec l;
    l.type = OpType::Gemm;
    l.gemm = GemmShape{512, 768, 768};
    const EvalResult r =
        Mapper(featherArch(WorkloadKind::Gemm)).searchLayer(l);
    ASSERT_TRUE(r.valid);
    EXPECT_DOUBLE_EQ(r.slowdown, 1.0);
    EXPECT_GT(r.practical_utilization, 0.99);
}

TEST(Energy, TableMonotonicity)
{
    EnergyTable t;
    AccessCounts a;
    a.macs = 1000;
    const double base = totalEnergyPj(t, a, 32);
    a.dram_words = 100;
    EXPECT_GT(totalEnergyPj(t, a, 32), base + 1000.0)
        << "DRAM must dominate small on-chip counts";
}

} // namespace
} // namespace feather
