/**
 * @file
 * Unit tests for the BIRRD topology (Algorithm 1) and Egg switch semantics.
 */

#include <gtest/gtest.h>

#include "noc/birrd.hpp"
#include "noc/topology.hpp"

namespace feather {
namespace {

TEST(Topology, StageCounts)
{
    EXPECT_EQ(BirrdTopology(2).numStages(), 1);
    // Paper footnote 1: 4-input BIRRD has 2*log2(4)-1 = 3 stages.
    EXPECT_EQ(BirrdTopology(4).numStages(), 3);
    EXPECT_EQ(BirrdTopology(8).numStages(), 6);
    EXPECT_EQ(BirrdTopology(16).numStages(), 8);
    EXPECT_EQ(BirrdTopology(32).numStages(), 10);
}

TEST(Topology, SwitchCounts)
{
    const BirrdTopology t(16);
    EXPECT_EQ(t.switchesPerStage(), 8);
    EXPECT_EQ(t.totalSwitches(), 8 * 8);
    EXPECT_EQ(t.configBits(), 2 * 64);
}

TEST(Topology, BitRangesFollowAlgorithm1)
{
    // AW=8: min(3, 2+i, 6-i) for i in [0,6) -> 2,3,3,3,2,1.
    const BirrdTopology t(8);
    const int expected[] = {2, 3, 3, 3, 2, 1};
    for (int s = 0; s < 6; ++s) {
        EXPECT_EQ(t.bitRange(s), expected[s]) << "stage " << s;
    }
}

TEST(Topology, WiresArePermutations)
{
    for (int n : {2, 4, 8, 16, 32, 64}) {
        const BirrdTopology t(n);
        for (int s = 0; s < t.numStages(); ++s) {
            std::vector<bool> seen(size_t(n), false);
            for (int p = 0; p < n; ++p) {
                const int w = t.wire(s, p);
                ASSERT_GE(w, 0);
                ASSERT_LT(w, n);
                EXPECT_FALSE(seen[size_t(w)])
                    << "n=" << n << " stage " << s << " duplicate wire";
                seen[size_t(w)] = true;
            }
        }
    }
}

TEST(Topology, LastStageWiringIsIdentity)
{
    // bit range 1 reverses a single bit: the identity. Outputs land on the
    // output buffers in order.
    for (int n : {4, 8, 16, 32}) {
        const BirrdTopology t(n);
        const int last = t.numStages() - 1;
        for (int p = 0; p < n; ++p) {
            EXPECT_EQ(t.wire(last, p), p);
        }
    }
}

TEST(Topology, FullReachabilityFromEveryInput)
{
    for (int n : {2, 4, 8, 16, 32}) {
        const BirrdTopology t(n);
        const uint64_t all = (n == 64) ? ~uint64_t{0}
                                       : (uint64_t{1} << n) - 1;
        for (int p = 0; p < n; ++p) {
            EXPECT_EQ(t.reachable(0, p), all) << "n=" << n;
        }
    }
}

TEST(Topology, ReachabilityShrinksTowardOutputs)
{
    const BirrdTopology t(16);
    // At the final boundary each port reaches only itself.
    for (int p = 0; p < 16; ++p) {
        EXPECT_EQ(t.reachable(t.numStages(), p), uint64_t{1} << p);
    }
    // Reachable set sizes never grow as we move deeper.
    for (int p = 0; p < 16; ++p) {
        int prev = 64;
        for (int s = 0; s <= t.numStages(); ++s) {
            const int bits = __builtin_popcountll(t.reachable(s, p));
            EXPECT_LE(bits, prev);
            prev = bits;
        }
    }
}

TEST(Egg, PassSwap)
{
    const auto [l1, r1] = evalEgg(EggConfig::Pass, 3, 5);
    EXPECT_EQ(*l1, 3);
    EXPECT_EQ(*r1, 5);
    const auto [l2, r2] = evalEgg(EggConfig::Swap, 3, 5);
    EXPECT_EQ(*l2, 5);
    EXPECT_EQ(*r2, 3);
}

TEST(Egg, AddModes)
{
    const auto [l1, r1] = evalEgg(EggConfig::AddLeft, 3, 5);
    EXPECT_EQ(*l1, 8);
    EXPECT_FALSE(r1.has_value());
    const auto [l2, r2] = evalEgg(EggConfig::AddRight, 3, 5);
    EXPECT_FALSE(l2.has_value());
    EXPECT_EQ(*r2, 8);
    const auto [l3, r3] = evalEgg(EggConfig::AddBoth, 3, 5);
    EXPECT_EQ(*l3, 8);
    EXPECT_EQ(*r3, 8);
}

TEST(Egg, AddWithOneInput)
{
    const auto [l, r] = evalEgg(EggConfig::AddLeft, std::nullopt, 5);
    EXPECT_EQ(*l, 5);
    EXPECT_FALSE(r.has_value());
    const auto [l2, r2] =
        evalEgg(EggConfig::AddRight, std::nullopt, std::nullopt);
    EXPECT_FALSE(l2.has_value());
    EXPECT_FALSE(r2.has_value());
}

TEST(Egg, DupModes)
{
    const auto [l, r] = evalEgg(EggConfig::DupLeft, 7, std::nullopt);
    EXPECT_EQ(*l, 7);
    EXPECT_EQ(*r, 7);
    const auto [l2, r2] = evalEgg(EggConfig::DupRight, std::nullopt, 9);
    EXPECT_EQ(*l2, 9);
    EXPECT_EQ(*r2, 9);
}

TEST(Network, PassThroughIsButterflyPermutation)
{
    // With all-Pass switches the network applies the composition of the
    // inter-stage wirings; pushing distinct values through must yield a
    // permutation of them.
    for (int n : {4, 8, 16}) {
        BirrdNetwork net(n);
        std::vector<PortValue> in(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i) in[size_t(i)] = 100 + i;
        const auto out =
            net.evaluate(passThroughConfig(net.topology()), in);
        std::vector<bool> seen(size_t(n), false);
        for (int i = 0; i < n; ++i) {
            ASSERT_TRUE(out[size_t(i)].has_value());
            const int v = int(*out[size_t(i)]) - 100;
            ASSERT_GE(v, 0);
            ASSERT_LT(v, n);
            EXPECT_FALSE(seen[size_t(v)]);
            seen[size_t(v)] = true;
        }
    }
}

TEST(Network, LatencyEqualsStages)
{
    EXPECT_EQ(BirrdNetwork(16).latency(), 8);
    EXPECT_EQ(BirrdNetwork(4).latency(), 3);
}

TEST(Network, ActiveSwitchCount)
{
    BirrdNetwork net(8);
    std::vector<PortValue> in(8);
    const auto cfg = passThroughConfig(net.topology());
    EXPECT_EQ(net.activeSwitches(cfg, in), 0);
    in[0] = 1;
    // A single live value traverses one switch per stage.
    EXPECT_EQ(net.activeSwitches(cfg, in), net.topology().numStages());
}

} // namespace
} // namespace feather
