/**
 * @file
 * Tests for the area/power models behind Fig. 14 and Tab. V.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "area/area_model.hpp"

namespace feather {
namespace {

TEST(ReductionNetworks, PaperRatios)
{
    // §VI-D1: BIRRD ~1.43x/2.21x the area and ~1.17x/2.07x the power of
    // FAN/ART.
    for (int n : {16, 32, 64, 128, 256}) {
        const AreaPower b = birrdAreaPower(n);
        const AreaPower f = fanAreaPower(n);
        const AreaPower a = artAreaPower(n);
        EXPECT_NEAR(b.area_um2 / f.area_um2, 1.43, 0.01);
        EXPECT_NEAR(b.power_mw / f.power_mw, 1.17, 0.01);
        EXPECT_NEAR(b.area_um2 / a.area_um2, 2.21, 0.01);
        EXPECT_NEAR(b.power_mw / a.power_mw, 2.07, 0.01);
    }
}

TEST(ReductionNetworks, MonotoneScaling)
{
    double prev_area = 0.0;
    for (int n : {16, 32, 64, 128, 256}) {
        const AreaPower b = birrdAreaPower(n);
        EXPECT_GT(b.area_um2, prev_area);
        prev_area = b.area_um2;
    }
    // N log N scaling: doubling inputs grows area by a bit more than 2x.
    const double r = birrdAreaPower(128).area_um2 /
                     birrdAreaPower(64).area_um2;
    EXPECT_GT(r, 2.0);
    EXPECT_LT(r, 2.5);
}

TEST(ReductionNetworks, BirrdShareOfDie)
{
    // Fig. 14b: BIRRD is ~4% of the 16x16 FEATHER die.
    const double share = birrdAreaPower(16).area_um2 /
                         featherDieModel(16, 16).area_um2;
    EXPECT_GT(share, 0.025);
    EXPECT_LT(share, 0.055);
}

TEST(TableV, ModelTracksPaperAreas)
{
    // The empirical die model reproduces every published shape within 12%.
    for (const TableVRow &row : tableVPaperRows()) {
        const AreaPower m = featherDieModel(row.aw, row.ah);
        const double err =
            std::abs(m.area_um2 - row.paper_area_um2) / row.paper_area_um2;
        EXPECT_LT(err, 0.12) << row.aw << "x" << row.ah;
    }
}

TEST(TableV, SevenShapes)
{
    EXPECT_EQ(tableVPaperRows().size(), 7u);
}

TEST(Fig14b, TotalsMatchPaperRatios)
{
    const DieBreakdown eyeriss = eyerissLike256Breakdown();
    const DieBreakdown sigma = sigma256Breakdown();
    const DieBreakdown feather = feather256Breakdown();

    // §VI-D2: SIGMA is 2.93x FEATHER; abstract: +6% over Eyeriss-like.
    EXPECT_NEAR(sigma.totalMm2() / feather.totalMm2(), 2.93, 0.03);
    EXPECT_NEAR(feather.totalMm2() / eyeriss.totalMm2(), 1.06, 0.02);
}

TEST(Fig14b, BirrdIsFourPercent)
{
    EXPECT_NEAR(feather256Breakdown().share("Redn. NoC"), 0.04, 0.005);
}

TEST(Fig14b, ReductionNocSaving)
{
    // §VI-D1: one shared BIRRD saves ~94% vs SIGMA's per-row FANs.
    const double feather_redn =
        feather256Breakdown().share("Redn. NoC") *
        feather256Breakdown().totalMm2();
    const double sigma_redn =
        sigma256Breakdown().share("Redn. NoC") * sigma256Breakdown().totalMm2();
    EXPECT_NEAR(1.0 - feather_redn / sigma_redn, 0.94, 0.01);
}

TEST(Fig14b, ComponentsArePositive)
{
    for (const auto &bd :
         {eyerissLike256Breakdown(), sigma256Breakdown(),
          feather256Breakdown()}) {
        EXPECT_EQ(bd.components.size(), 6u);
        for (const auto &c : bd.components) {
            EXPECT_GT(c.area_mm2, 0.0) << bd.design << "/" << c.name;
        }
    }
}

TEST(DieModel, GrowsWithWidthFasterThanHeight)
{
    // The fitted AW term: widening the array (more BIRRD, wider buses,
    // more StaB banks) costs more than deepening it.
    const double wide = featherDieModel(32, 16).area_um2;
    const double tall = featherDieModel(16, 32).area_um2;
    EXPECT_GT(wide, tall);
}

} // namespace
} // namespace feather
