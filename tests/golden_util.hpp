#pragma once

/**
 * @file
 * Shared helpers for the golden-file report-schema suites (test_serve,
 * test_model). Both test targets define FEATHER_GOLDEN_DIR (see
 * tests/CMakeLists.txt) pointing at tests/golden/.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "common/report_norm.hpp"

namespace feather {
namespace golden {

/**
 * Zero every wall-clock column (name suffix `_wall_us`) of a CSV report:
 * wall time is the one field class that legitimately differs between
 * otherwise-identical runs, so determinism comparisons normalize it
 * first. Delegates to common/report_norm — the same code path the CI
 * workflows use via the feather_report_norm binary, so the tests and CI
 * can never disagree about what "normalized" means.
 */
inline std::string
zeroWallCsv(const std::string &csv)
{
    return feather::zeroWallCsv(csv);
}

/** Same normalization for the JSON rendering. */
inline std::string
zeroWallJson(std::string json)
{
    return feather::zeroWallJson(std::move(json));
}

/** Non-empty lines of tests/golden/<name>, in file order. */
inline std::vector<std::string>
readGoldenLines(const std::string &name)
{
    const std::string path = std::string(FEATHER_GOLDEN_DIR) + "/" + name;
    std::ifstream in(path);
    EXPECT_TRUE(bool(in)) << "missing golden file " << path;
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty()) lines.push_back(line);
    }
    return lines;
}

/**
 * Every distinct JSON object key in @p json, sorted. A quoted token is a
 * key iff a ':' immediately follows its closing quote — string *values*
 * containing ':' (schedules like "fixed:ws", error text) stay inside
 * their quotes and never match.
 */
inline std::vector<std::string>
jsonKeys(const std::string &json)
{
    std::set<std::string> keys;
    for (size_t i = 0; i < json.size(); ++i) {
        if (json[i] != '"') continue;
        std::string token;
        size_t j = i + 1;
        for (; j < json.size() && json[j] != '"'; ++j) {
            if (json[j] == '\\') ++j;
            token += json[j];
        }
        if (j + 1 < json.size() && json[j + 1] == ':') keys.insert(token);
        i = j;
    }
    return {keys.begin(), keys.end()};
}

/** First line (the header) of a CSV document. */
inline std::string
csvHeader(const std::string &csv)
{
    return csv.substr(0, csv.find('\n'));
}

} // namespace golden
} // namespace feather
