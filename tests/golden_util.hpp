#pragma once

/**
 * @file
 * Shared helpers for the golden-file report-schema suites (test_serve,
 * test_model). Both test targets define FEATHER_GOLDEN_DIR (see
 * tests/CMakeLists.txt) pointing at tests/golden/.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace feather {
namespace golden {

/**
 * Zero the sim_wall_us column of a CSV report: wall time is the one field
 * that legitimately differs between otherwise-identical runs, so
 * determinism comparisons normalize it first.
 */
inline std::string
zeroWallCsv(const std::string &csv)
{
    std::istringstream in(csv);
    std::string line, out;
    size_t wall_col = std::string::npos;
    bool header = true;
    while (std::getline(in, line)) {
        std::vector<std::string> cells;
        std::istringstream cells_in(line);
        std::string cell;
        while (std::getline(cells_in, cell, ',')) {
            cells.push_back(cell);
        }
        if (header) {
            for (size_t i = 0; i < cells.size(); ++i) {
                if (cells[i] == "sim_wall_us") wall_col = i;
            }
            header = false;
        } else if (wall_col < cells.size()) {
            cells[wall_col] = "0";
        }
        for (size_t i = 0; i < cells.size(); ++i) {
            if (i > 0) out += ',';
            out += cells[i];
        }
        out += '\n';
    }
    return out;
}

/** Same normalization for the JSON rendering. */
inline std::string
zeroWallJson(std::string json)
{
    const std::string key = "\"sim_wall_us\":";
    size_t pos = 0;
    while ((pos = json.find(key, pos)) != std::string::npos) {
        pos += key.size();
        size_t end = pos;
        while (end < json.size() &&
               std::isdigit(static_cast<unsigned char>(json[end]))) {
            ++end;
        }
        json.replace(pos, end - pos, "0");
        ++pos;
    }
    return json;
}

/** Non-empty lines of tests/golden/<name>, in file order. */
inline std::vector<std::string>
readGoldenLines(const std::string &name)
{
    const std::string path = std::string(FEATHER_GOLDEN_DIR) + "/" + name;
    std::ifstream in(path);
    EXPECT_TRUE(bool(in)) << "missing golden file " << path;
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty()) lines.push_back(line);
    }
    return lines;
}

/**
 * Every distinct JSON object key in @p json, sorted. A quoted token is a
 * key iff a ':' immediately follows its closing quote — string *values*
 * containing ':' (schedules like "fixed:ws", error text) stay inside
 * their quotes and never match.
 */
inline std::vector<std::string>
jsonKeys(const std::string &json)
{
    std::set<std::string> keys;
    for (size_t i = 0; i < json.size(); ++i) {
        if (json[i] != '"') continue;
        std::string token;
        size_t j = i + 1;
        for (; j < json.size() && json[j] != '"'; ++j) {
            if (json[j] == '\\') ++j;
            token += json[j];
        }
        if (j + 1 < json.size() && json[j + 1] == ':') keys.insert(token);
        i = j;
    }
    return {keys.begin(), keys.end()};
}

/** First line (the header) of a CSV document. */
inline std::string
csvHeader(const std::string &csv)
{
    return csv.substr(0, csv.find('\n'));
}

} // namespace golden
} // namespace feather
