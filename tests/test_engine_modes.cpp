/**
 * @file
 * Tests for the two-tier simulation engine (sim::EngineMode).
 *
 * The cycle tier is the bit-exact NoC replay the repo has always had: its
 * deterministic counters are locked, layer by layer, against
 * tests/golden/engine_cycle_counters.golden (captured from the
 * pre-refactor simulator), so hot-loop refactors cannot silently change
 * simulated behaviour.
 *
 * The analytic tier computes the same LayerStats closed-form from the
 * mapping plus one probed middle step. Its contract is weaker but
 * testable: total cycles within a 15% relative-error bound of the cycle
 * engine (measured worst case: 10.3%, exact on layers whose steps are
 * uniform), candidate *ranking* identical to the cycle engine's over the
 * sweep grid, and full determinism.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

#include "golden_util.hpp"
#include "serve/engine.hpp"
#include "serve/plan_cache.hpp"
#include "sim/engine.hpp"
#include "sim/scenario.hpp"

namespace feather {
namespace sim {
namespace {

std::optional<ScenarioRun>
runWith(const Scenario &s, EngineMode mode, std::string *error,
        const std::string &dataflow = "", int aw = 0, int ah = 0)
{
    ScenarioOptions opts;
    opts.engine = mode;
    opts.dataflow = dataflow;
    opts.aw = aw;
    opts.ah = ah;
    return runScenario(s, opts, error);
}

// ---------------------------------------------------------------------------
// EngineMode parsing and the Engine interface
// ---------------------------------------------------------------------------

TEST(EngineMode_, ParsesAndRoundTrips)
{
    ASSERT_TRUE(parseEngineMode("cycle").has_value());
    ASSERT_TRUE(parseEngineMode("analytic").has_value());
    EXPECT_EQ(*parseEngineMode("cycle"), EngineMode::Cycle);
    EXPECT_EQ(*parseEngineMode("analytic"), EngineMode::Analytic);
    EXPECT_FALSE(parseEngineMode("").has_value());
    EXPECT_FALSE(parseEngineMode("Cycle").has_value());
    EXPECT_FALSE(parseEngineMode("warp").has_value());
    for (const std::string &name : engineModeNames()) {
        const std::optional<EngineMode> mode = parseEngineMode(name);
        ASSERT_TRUE(mode.has_value()) << name;
        EXPECT_EQ(toString(*mode), name);
    }
}

TEST(EngineMode_, EngineForReturnsMatchingSingleton)
{
    EXPECT_EQ(engineFor(EngineMode::Cycle).mode(), EngineMode::Cycle);
    EXPECT_EQ(engineFor(EngineMode::Analytic).mode(), EngineMode::Analytic);
    EXPECT_EQ(&engineFor(EngineMode::Cycle), &cycleEngine());
    EXPECT_EQ(&engineFor(EngineMode::Analytic), &analyticEngine());
}

// ---------------------------------------------------------------------------
// Cycle tier: deterministic counters locked against the pre-refactor golden
// ---------------------------------------------------------------------------

struct GoldenRow
{
    int64_t v[17]; ///< the numeric columns, in header order
};

/** scenario name -> per-layer golden counter rows. */
std::map<std::string, std::vector<GoldenRow>>
readCounterGolden()
{
    const std::vector<std::string> lines =
        golden::readGoldenLines("engine_cycle_counters.golden");
    std::map<std::string, std::vector<GoldenRow>> out;
    for (size_t i = 1; i < lines.size(); ++i) { // skip the header
        std::istringstream in(lines[i]);
        std::string scenario, cell;
        std::getline(in, scenario, ',');
        std::getline(in, cell, ','); // layer index; rows are in order
        GoldenRow row{};
        for (int64_t &value : row.v) {
            std::getline(in, cell, ',');
            value = std::strtoll(cell.c_str(), nullptr, 10);
        }
        out[scenario].push_back(row);
    }
    return out;
}

TEST(CycleEngine_, CountersBitIdenticalToPreRefactorGolden)
{
    const auto golden_rows = readCounterGolden();
    ASSERT_FALSE(golden_rows.empty());
    for (const Scenario &s : scenarios()) {
        const auto it = golden_rows.find(s.name);
        ASSERT_NE(it, golden_rows.end())
            << s.name << " is not in engine_cycle_counters.golden; "
            << "capture it when registering a scenario";
        std::string error;
        const auto run = runWith(s, EngineMode::Cycle, &error);
        ASSERT_TRUE(run.has_value()) << s.name << ": " << error;
        ASSERT_EQ(run->chain.layers.size(), it->second.size()) << s.name;
        for (size_t i = 0; i < run->chain.layers.size(); ++i) {
            const LayerStats &st = run->chain.layers[i].stats;
            const GoldenRow &g = it->second[i];
            const int64_t got[17] = {
                st.cycles,          st.compute_cycles,
                st.weight_load_cycles, st.fill_cycles,
                st.read_stall_cycles,  st.write_stall_cycles,
                st.macs,            st.stab_reads,
                st.stab_writes,     st.strb_reads,
                st.ob_accumulates,  st.birrd_switch_hops,
                st.dram_words,      st.peak_ob_entries,
                st.weight_reload_events, run->chain.checked,
                run->chain.mismatches};
            for (int c = 0; c < 17; ++c) {
                EXPECT_EQ(got[c], g.v[c])
                    << s.name << " layer " << i << " counter column " << c
                    << ": cycle-mode counters must stay bit-identical to "
                       "the pre-refactor simulator";
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Analytic tier: error bound, rank preservation, determinism
// ---------------------------------------------------------------------------

TEST(AnalyticEngine_, WithinBoundAndPreservesRankingEverywhere)
{
    for (const Scenario &s : scenarios()) {
        // The candidate set a sweep would compare: every feasible
        // (dataflow x array) grid point.
        std::vector<std::string> keys;
        std::vector<int64_t> cycle_cycles, analytic_cycles;
        for (const char *df : {"", "ws", "cp", "wp"}) {
            for (int a : {4, 8, 16}) {
                std::string error;
                const auto cycle =
                    runWith(s, EngineMode::Cycle, &error, df, a, a);
                if (!cycle) continue; // infeasible grid point
                const auto analytic =
                    runWith(s, EngineMode::Analytic, &error, df, a, a);
                ASSERT_TRUE(analytic.has_value())
                    << s.name << "/" << df << "@" << a
                    << ": analytic must cover every point cycle covers: "
                    << error;
                const int64_t cc = cycle->chain.totalCycles();
                const int64_t ac = analytic->chain.totalCycles();
                ASSERT_GT(cc, 0);
                EXPECT_LE(std::fabs(double(ac - cc)) / double(cc),
                          kAnalyticBound)
                    << s.name << "/" << df << "@" << a << ": cycle " << cc
                    << " vs analytic " << ac;
                keys.push_back(std::string(df) + "@" + std::to_string(a));
                cycle_cycles.push_back(cc);
                analytic_cycles.push_back(ac);
            }
        }
        ASSERT_FALSE(keys.empty()) << s.name;
        // Sorting candidates by analytic cycles must give the same order
        // as sorting by measured cycles (stable, so exact ties keep
        // submission order): pruning on estimates never changes the
        // winner.
        std::vector<size_t> by_cycle(keys.size()), by_analytic(keys.size());
        for (size_t i = 0; i < keys.size(); ++i) {
            by_cycle[i] = by_analytic[i] = i;
        }
        std::stable_sort(by_cycle.begin(), by_cycle.end(),
                         [&](size_t x, size_t y) {
                             return cycle_cycles[x] < cycle_cycles[y];
                         });
        std::stable_sort(by_analytic.begin(), by_analytic.end(),
                         [&](size_t x, size_t y) {
                             return analytic_cycles[x] < analytic_cycles[y];
                         });
        for (size_t i = 0; i < by_cycle.size(); ++i) {
            EXPECT_EQ(keys[by_cycle[i]], keys[by_analytic[i]])
                << s.name << ": analytic ranking diverges at position "
                << i;
        }
    }
}

TEST(AnalyticEngine_, DeterministicAndReplayFree)
{
    const Scenario *s = findScenario("resnet_block");
    ASSERT_NE(s, nullptr);
    std::string error;
    const auto a = runWith(*s, EngineMode::Analytic, &error);
    const auto b = runWith(*s, EngineMode::Analytic, &error);
    ASSERT_TRUE(a.has_value()) << error;
    ASSERT_TRUE(b.has_value()) << error;
    ASSERT_EQ(a->chain.layers.size(), b->chain.layers.size());
    for (size_t i = 0; i < a->chain.layers.size(); ++i) {
        const LayerStats &x = a->chain.layers[i].stats;
        const LayerStats &y = b->chain.layers[i].stats;
        EXPECT_EQ(x.cycles, y.cycles);
        EXPECT_EQ(x.macs, y.macs);
        EXPECT_EQ(x.stab_reads, y.stab_reads);
        EXPECT_EQ(x.birrd_switch_hops, y.birrd_switch_hops);
        // No replay happened: nothing was verified, no arena was used.
        EXPECT_EQ(x.arena_peak_bytes, 0);
    }
    EXPECT_EQ(a->chain.checked, 0)
        << "analytic runs estimate; they must not claim verification";
    EXPECT_EQ(a->chain.mismatches, 0);
}

TEST(CycleEngine_, ReportsArenaScratchUse)
{
    const Scenario *s = findScenario("quickstart_conv");
    ASSERT_NE(s, nullptr);
    std::string error;
    const auto run = runWith(*s, EngineMode::Cycle, &error);
    ASSERT_TRUE(run.has_value()) << error;
    EXPECT_GT(run->chain.layers[0].stats.arena_peak_bytes, 0)
        << "the cycle engine's hot loop runs out of the per-job arena";
}

// ---------------------------------------------------------------------------
// PlanCache: the engine mode is part of the key (regression)
// ---------------------------------------------------------------------------

TEST(PlanCacheEngineKey, ModesNeverShareEntries)
{
    serve::PlanCache cache;
    const LayerSpec conv = convLayer("c", 8, 8, 8, 3, 1, 1);
    const auto cycle = cache.getOrPlan(EngineMode::Cycle,
                                       DataflowKind::Canonical, conv, 4, 4);
    const auto analytic = cache.getOrPlan(
        EngineMode::Analytic, DataflowKind::Canonical, conv, 4, 4);
    ASSERT_TRUE(cycle.has_value());
    ASSERT_TRUE(analytic.has_value());
    // Regression: a shared entry would replay one job under the other's
    // engine. Same planning point, two modes = two misses, two entries.
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().entries, 2u);
    EXPECT_EQ(cycle->engine, EngineMode::Cycle);
    EXPECT_EQ(analytic->engine, EngineMode::Analytic);
    // The planning artifacts themselves are engine-independent.
    EXPECT_EQ(cycle->mapping.toString(), analytic->mapping.toString());
    EXPECT_EQ(cycle->in_layout.toString(), analytic->in_layout.toString());
}

// ---------------------------------------------------------------------------
// Serve integration: analytic sweeps report estimates
// ---------------------------------------------------------------------------

TEST(AnalyticSweep, ReportsEstimatesAndNeverFailsVerification)
{
    serve::BatchOptions opts;
    opts.engine = EngineMode::Analytic;
    serve::BatchEngine engine(opts);
    serve::SweepSpec sweep;
    sweep.scenario = "quickstart_conv";
    std::string error;
    const auto report = engine.sweep(sweep, nullptr, &error);
    ASSERT_TRUE(report.has_value()) << error;
    ASSERT_FALSE(report->jobs.empty());
    for (const serve::JobResult &r : report->jobs) {
        EXPECT_TRUE(r.ok) << r.name << ": " << r.error;
        EXPECT_EQ(r.engine, EngineMode::Analytic) << r.name;
        EXPECT_EQ(r.status(), "est") << r.name;
        EXPECT_EQ(r.checked, 0) << r.name;
        EXPECT_GT(r.cycles, 0) << r.name;
    }
    EXPECT_EQ(report->failures(), 0u);
    EXPECT_TRUE(report->allOk());
    EXPECT_NE(report->toCsv().find(",analytic,"), std::string::npos);
    EXPECT_NE(report->toJson().find("\"engine_mode\":\"analytic\""),
              std::string::npos);
}

TEST(AnalyticSweep, JobPinOverridesBatchDefault)
{
    serve::BatchOptions opts;
    opts.engine = EngineMode::Analytic;
    serve::BatchEngine engine(opts);
    std::vector<serve::JobSpec> jobs(2);
    jobs[0].scenario = "gemm";
    jobs[0].engine = EngineMode::Cycle; // pinned: stays verified
    jobs[1].scenario = "gemm";
    const serve::BatchReport report = engine.run(jobs);
    ASSERT_EQ(report.jobs.size(), 2u);
    EXPECT_EQ(report.jobs[0].status(), "ok");
    EXPECT_TRUE(report.jobs[0].bitExact());
    EXPECT_EQ(report.jobs[1].status(), "est");
    EXPECT_EQ(report.jobs[1].checked, 0);
}

TEST(AnalyticSweep, BatchFileEngineKeyParsesAndRejectsUnknown)
{
    std::vector<serve::JobSpec> jobs;
    std::string error;
    ASSERT_TRUE(serve::parseBatchFile("gemm engine=analytic\n", &jobs,
                                      &error))
        << error;
    ASSERT_EQ(jobs.size(), 1u);
    ASSERT_TRUE(jobs[0].engine.has_value());
    EXPECT_EQ(*jobs[0].engine, EngineMode::Analytic);

    jobs.clear();
    EXPECT_FALSE(serve::parseBatchFile("gemm engine=warp\n", &jobs, &error));
    EXPECT_NE(error.find("unknown engine 'warp'"), std::string::npos);
    EXPECT_NE(error.find("cycle"), std::string::npos);
    EXPECT_NE(error.find("analytic"), std::string::npos);
}

} // namespace
} // namespace sim
} // namespace feather
