/**
 * @file
 * Whole-graph pipeline scheduling over a heterogeneous fleet, locked
 * down three ways:
 *
 *   - differential: a 1-device fleet reproduces the single-device
 *     per-layer schedule bit-exactly (same DP cost, same per-layer
 *     (dataflow, layout) picks, same measured cycle counters);
 *   - property: on random small graphs x small fleets, the DP cost
 *     equals the brute-force optimum over every (device, candidate)
 *     assignment, and is never beaten by greedy or by any pinned
 *     single-device placement (100+ seed-derived cases);
 *   - edge pricing: model::handoffCost is zero on-device, scales with
 *     tensor bytes, and charges only the link term on concordant
 *     hand-offs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "model/fleet.hpp"
#include "model/graph.hpp"
#include "model/scheduler.hpp"

namespace feather {
namespace model {
namespace {

/** The fleet CI smokes with: two FEATHER shapes plus a zoo design. */
constexpr const char *kCiFleet = "feather:16x16,feather:32x32,tpu-like";

FleetSpec
fleetOf(const std::string &spec)
{
    FleetSpec fleet;
    std::string error;
    EXPECT_TRUE(parseFleetSpec(spec, &fleet, &error)) << error;
    return fleet;
}

SchedulerOptions
fleetOptions(const std::string &spec, sim::EngineMode engine, int jobs = 1)
{
    SchedulerOptions opts;
    opts.fleet = fleetOf(spec);
    opts.engine = engine;
    opts.num_threads = jobs;
    return opts;
}

SchedulePolicy
policyOf(const std::string &name)
{
    std::string error;
    const std::optional<SchedulePolicy> policy = parseSchedule(name, &error);
    EXPECT_TRUE(policy.has_value()) << error;
    return *policy;
}

/** Extents with the given HWC box (enough for the pricing tests). */
Extents
hwcExtents(int64_t h, int64_t w, int64_t c)
{
    Extents e;
    e[Dim::H] = h;
    e[Dim::W] = w;
    e[Dim::C] = c;
    return e;
}

// ---------------------------------------------------------------------------
// handoffCost edge pricing
// ---------------------------------------------------------------------------

TEST(HandoffCost, SameDeviceHandoffIsFree)
{
    const InterChipLink link;
    const Layout src = Layout::parse("HWC_C16");
    const Layout dst = Layout::parse("CHW_W8");
    // Even a discordant hand-off is free on-device: the StaB ping-pong
    // plus BIRRD write path is what the per-layer scheduler exploits.
    EXPECT_EQ(handoffCost(true, src, dst, hwcExtents(8, 8, 16), 1, link),
              0);
}

TEST(HandoffCost, ConcordantHandoffChargesOnlyTheLinkTerm)
{
    const InterChipLink link; // 16 bytes/cycle
    const Layout layout = Layout::parse("HWC_C16");
    const Extents extents = hwcExtents(8, 8, 16); // 1024 elements
    EXPECT_EQ(reorderCost(layout, layout, extents), 0);
    // 1024 bytes over a 16 B/cycle link = 64 transfer cycles, nothing
    // else.
    EXPECT_EQ(handoffCost(false, layout, layout, extents, 1, link), 64);
    // Wider elements transfer proportionally more bytes.
    EXPECT_EQ(handoffCost(false, layout, layout, extents, 4, link), 256);
}

TEST(HandoffCost, ScalesWithTensorBytes)
{
    const InterChipLink link;
    const Layout layout = Layout::parse("HWC_C16");
    const int64_t small =
        handoffCost(false, layout, layout, hwcExtents(4, 4, 16), 1, link);
    const int64_t big =
        handoffCost(false, layout, layout, hwcExtents(16, 16, 16), 1, link);
    EXPECT_GT(small, 0);
    EXPECT_EQ(big, 16 * small); // 16x the elements, 16x the cycles
}

TEST(HandoffCost, DiscordantHandoffAddsTheReorderTerm)
{
    const InterChipLink link;
    const Layout src = Layout::parse("HWC_C16");
    const Layout dst = Layout::parse("CHW_W8");
    const Extents extents = hwcExtents(8, 8, 16);
    const int64_t reorder = reorderCost(src, dst, extents);
    EXPECT_GT(reorder, 0);
    EXPECT_EQ(handoffCost(false, src, dst, extents, 1, link),
              reorder +
                  handoffCost(false, src, src, extents, 1, link));
}

// ---------------------------------------------------------------------------
// Differential: 1-device fleet == single-device scheduler
// ---------------------------------------------------------------------------

TEST(GraphFleetDifferential, OneDeviceFleetReproducesSingleDeviceSchedule)
{
    for (const ModelGraph &graph : builtinModels()) {
        SCOPED_TRACE(graph.name);
        std::string error;

        Scheduler single{SchedulerOptions{}};
        const std::optional<Evaluation> seval =
            single.evaluate(graph, &error);
        ASSERT_TRUE(seval.has_value()) << error;
        const std::optional<ScheduleResult> sres = single.schedule(
            graph, *seval, policyOf("per-layer"), &error);
        ASSERT_TRUE(sres.has_value()) << error;

        const std::string spec = strCat("feather:", graph.default_aw, "x",
                                        graph.default_ah);
        Scheduler fleet{fleetOptions(spec, sim::EngineMode::Cycle)};
        const std::optional<Evaluation> feval =
            fleet.evaluate(graph, &error);
        ASSERT_TRUE(feval.has_value()) << error;
        const std::optional<ScheduleResult> fres = fleet.schedule(
            graph, *feval, policyOf("per-layer"), &error);
        ASSERT_TRUE(fres.has_value()) << error;

        // Same device-free DP cost and same measured ground truth.
        EXPECT_EQ(fres->est_total, sres->est_total);
        EXPECT_EQ(fres->cycles, sres->cycles);
        EXPECT_EQ(fres->macs, sres->macs);
        EXPECT_EQ(fres->checked, sres->checked);
        EXPECT_EQ(fres->mismatches, sres->mismatches);
        EXPECT_TRUE(fres->bitExact());
        EXPECT_EQ(fres->handoffs, 0);
        EXPECT_EQ(fres->handoff_cycles, 0);
        EXPECT_EQ(fres->fleet, spec);

        // Same chosen (dataflow, layout) pair and measured counters per
        // layer; every layer placed on the single device.
        ASSERT_EQ(fres->layers.size(), sres->layers.size());
        for (size_t i = 0; i < fres->layers.size(); ++i) {
            SCOPED_TRACE(fres->layers[i].layer);
            const LayerChoice &f = fres->layers[i];
            const LayerChoice &s = sres->layers[i];
            EXPECT_EQ(f.dataflow, s.dataflow);
            EXPECT_TRUE(f.plan.in_layout == s.plan.in_layout);
            EXPECT_TRUE(f.plan.out_layout == s.plan.out_layout);
            EXPECT_EQ(f.plan.mapping.toString(), s.plan.mapping.toString());
            EXPECT_EQ(f.est_cycles, s.est_cycles);
            EXPECT_EQ(f.reorder_cycles, s.reorder_cycles);
            EXPECT_EQ(f.cycles, s.cycles);
            EXPECT_EQ(f.macs, s.macs);
            EXPECT_EQ(f.read_stalls, s.read_stalls);
            EXPECT_EQ(f.write_stalls, s.write_stalls);
            EXPECT_EQ(f.device, 0);
            EXPECT_EQ(f.device_name, spec);
        }
    }
}

// ---------------------------------------------------------------------------
// Property: DP cost is the brute-force optimum over (device, candidate)
// ---------------------------------------------------------------------------

/** Random ≤4-layer pointwise/depthwise chain (bindings always valid). */
std::string
randomGraphText(std::mt19937 *rng)
{
    const int channels[] = {4, 8, 16};
    const int hw = 4 + 2 * int((*rng)() % 2); // 4 or 6
    const int layers = 2 + int((*rng)() % 3); // 2..4
    int c = channels[(*rng)() % 3];
    std::string text = "model prop_case\n";
    for (int i = 0; i < layers; ++i) {
        if ((*rng)() % 2 == 0) {
            const int m = channels[(*rng)() % 3];
            text += strCat("pointwise name=l", i, " c=", c, " hw=", hw,
                           " m=", m, "\n");
            c = m;
        } else {
            text += strCat("depthwise name=l", i, " c=", c, " hw=", hw,
                           " rs=3 pad=1\n");
        }
    }
    return text;
}

/** Small fleet derived from the seed: 1..3 devices, rotated pool. */
std::string
randomFleetSpec(std::mt19937 *rng)
{
    const char *pool[] = {"feather:4x4", "feather:8x8", "feather:16x4"};
    const size_t first = (*rng)() % 3;
    const size_t count = 1 + (*rng)() % 3;
    std::string spec;
    for (size_t i = 0; i < count; ++i) {
        if (i > 0) spec += ",";
        spec += pool[(first + i) % 3];
    }
    return spec;
}

/** Brute-force minimum of sum(est) + edge prices over every candidate
 *  assignment; restricted to one device when @p device >= 0. Returns
 *  int64 max when no full assignment exists under the restriction. */
int64_t
bruteForceCost(const Evaluation &eval, int device)
{
    constexpr int64_t kInf = std::numeric_limits<int64_t>::max();
    std::vector<int64_t> prev; // best cost ending at layer i, candidate c
    for (size_t i = 0; i < eval.layers.size(); ++i) {
        const std::vector<Candidate> &cands = eval.layers[i];
        std::vector<int64_t> cur(cands.size(), kInf);
        for (size_t c = 0; c < cands.size(); ++c) {
            if (device >= 0 && cands[c].device != device) continue;
            if (i == 0) {
                cur[c] = cands[c].est_cycles;
                continue;
            }
            for (size_t p = 0; p < prev.size(); ++p) {
                if (prev[p] == kInf) continue;
                const int64_t cost = prev[p] + cands[c].est_cycles +
                                     eval.edges[i][p][c];
                cur[c] = std::min(cur[c], cost);
            }
        }
        prev = std::move(cur);
    }
    int64_t best = kInf;
    for (const int64_t c : prev) best = std::min(best, c);
    return best;
}

/** Exhaustive (non-DP) enumeration for cross-checking bruteForceCost on
 *  the same evaluation — walks every full assignment explicitly. */
int64_t
exhaustiveCost(const Evaluation &eval)
{
    constexpr int64_t kInf = std::numeric_limits<int64_t>::max();
    int64_t best = kInf;
    std::vector<size_t> pick(eval.layers.size(), 0);
    const auto walk = [&](const auto &self, size_t i, int64_t cost) -> void {
        if (i == eval.layers.size()) {
            best = std::min(best, cost);
            return;
        }
        for (size_t c = 0; c < eval.layers[i].size(); ++c) {
            int64_t edge = 0;
            if (i > 0) edge = eval.edges[i][pick[i - 1]][c];
            pick[i] = c;
            self(self, i + 1,
                 cost + eval.layers[i][c].est_cycles + edge);
        }
    };
    walk(walk, 0, 0);
    return best;
}

TEST(GraphFleetProperty, DpCostIsOptimalOverDeviceCandidateAssignments)
{
    constexpr int64_t kInf = std::numeric_limits<int64_t>::max();
    constexpr int kCases = 120;
    int ran = 0;
    int split_schedules = 0;
    for (int seed = 0; seed < kCases + 40 && ran < kCases; ++seed) {
        std::mt19937 rng(uint32_t(7919 * seed + 17));
        const std::string text = randomGraphText(&rng);
        const std::string spec = randomFleetSpec(&rng);
        SCOPED_TRACE(strCat("seed ", seed, " fleet ", spec, "\n", text));

        std::string error;
        const std::optional<ModelGraph> graph =
            parseModelText(text, "prop_case", &error);
        ASSERT_TRUE(graph.has_value()) << error;

        // Analytic evaluation keeps 120 cases fast; the DP objective is
        // tier-independent given the candidate table.
        Scheduler sched{fleetOptions(spec, sim::EngineMode::Analytic)};
        const std::optional<Evaluation> eval =
            sched.evaluate(*graph, &error);
        if (!eval) continue; // no device fits some layer: not a DP case
        ++ran;

        const std::optional<ScheduleResult> dp = sched.schedule(
            *graph, *eval, policyOf("per-layer"), &error);
        ASSERT_TRUE(dp.has_value()) << error;
        const int64_t best = bruteForceCost(*eval, -1);
        ASSERT_LT(best, kInf);
        EXPECT_EQ(dp->est_total, best);
        // Cross-check the checker itself on every full enumeration.
        EXPECT_EQ(exhaustiveCost(*eval), best);

        const std::optional<ScheduleResult> greedy = sched.schedule(
            *graph, *eval, policyOf("greedy"), &error);
        ASSERT_TRUE(greedy.has_value()) << error;
        EXPECT_GE(greedy->est_total, dp->est_total);

        for (const FleetDevice &dev : sched.options().fleet.devices) {
            const int d =
                sched.options().fleet.deviceIndex(dev.name);
            const int64_t pinned_best = bruteForceCost(*eval, d);
            // Any single-device placement is a restriction of the DP's
            // search space.
            if (pinned_best != kInf) {
                EXPECT_LE(dp->est_total, pinned_best);
            }
            // Spot-check the Pinned policy against the restricted
            // brute force (full schedule runs are the slow part).
            if (seed % 10 == 0) {
                const std::optional<ScheduleResult> pinned =
                    sched.schedule(*graph, *eval,
                                   policyOf("pinned:" + dev.name), &error);
                if (pinned_best == kInf) {
                    EXPECT_FALSE(pinned.has_value());
                } else {
                    ASSERT_TRUE(pinned.has_value()) << error;
                    EXPECT_EQ(pinned->est_total, pinned_best);
                }
            }
        }
        if (dp->handoffs > 0) ++split_schedules;
    }
    EXPECT_GE(ran, kCases);
    // The generator must exercise actual cross-device schedules, not
    // only degenerate single-device optima.
    EXPECT_GT(split_schedules, 0);
}

// ---------------------------------------------------------------------------
// Rank preservation, determinism, and the CI-fleet win
// ---------------------------------------------------------------------------

TEST(GraphFleet, AnalyticTierPicksTheSameDeviceAssignmentAsCycle)
{
    // The analytic tier may estimate different absolute cycles, but on
    // the CI fleet it must rank devices the same way the cycle tier
    // does — otherwise --engine analytic fleet sweeps would mislead.
    for (const char *model : {"mobilenet_slice", "bert_mlp"}) {
        SCOPED_TRACE(model);
        const ModelGraph *graph = findModel(model);
        ASSERT_NE(graph, nullptr);
        std::vector<std::vector<int>> devices;
        for (const sim::EngineMode mode :
             {sim::EngineMode::Cycle, sim::EngineMode::Analytic}) {
            std::string error;
            Scheduler sched{fleetOptions(kCiFleet, mode)};
            const std::optional<Evaluation> eval =
                sched.evaluate(*graph, &error);
            ASSERT_TRUE(eval.has_value()) << error;
            const std::optional<ScheduleResult> res = sched.schedule(
                *graph, *eval, policyOf("per-layer"), &error);
            ASSERT_TRUE(res.has_value()) << error;
            std::vector<int> seq;
            for (const LayerChoice &l : res->layers) {
                seq.push_back(l.device);
            }
            devices.push_back(std::move(seq));
        }
        EXPECT_EQ(devices[0], devices[1]);
    }
}

TEST(GraphFleet, DpBeatsEveryPinnedPlacementOnTheCiFleet)
{
    // The acceptance bar: splitting mobilenet_slice across the CI fleet
    // is strictly cheaper than the best single-device placement.
    const ModelGraph *graph = findModel("mobilenet_slice");
    ASSERT_NE(graph, nullptr);
    std::string error;
    Scheduler sched{fleetOptions(kCiFleet, sim::EngineMode::Cycle)};
    const std::optional<ScheduleComparison> cmp =
        sched.compare(*graph, policyOf("per-layer"), &error);
    ASSERT_TRUE(cmp.has_value()) << error;

    const ScheduleResult &dp = cmp->primary();
    EXPECT_GE(dp.handoffs, 1); // it actually pipelines across devices
    EXPECT_GT(dp.search_nodes, 0);
    int pinned_seen = 0;
    for (const ScheduleResult &r : cmp->schedules) {
        if (r.schedule.rfind("pinned:", 0) != 0) continue;
        ++pinned_seen;
        EXPECT_LT(dp.est_total, r.est_total) << r.schedule;
    }
    EXPECT_EQ(pinned_seen, 3); // one ranking row per fleet device
}

TEST(GraphFleet, FleetScheduleIsBitIdenticalAcrossJobs)
{
    const ModelGraph *graph = findModel("mobilenet_slice");
    ASSERT_NE(graph, nullptr);
    std::vector<ScheduleResult> runs;
    for (const int jobs : {1, 8}) {
        std::string error;
        Scheduler sched{
            fleetOptions(kCiFleet, sim::EngineMode::Cycle, jobs)};
        const std::optional<Evaluation> eval =
            sched.evaluate(*graph, &error);
        ASSERT_TRUE(eval.has_value()) << error;
        const std::optional<ScheduleResult> res = sched.schedule(
            *graph, *eval, policyOf("per-layer"), &error);
        ASSERT_TRUE(res.has_value()) << error;
        runs.push_back(*res);
    }
    const ScheduleResult &a = runs[0];
    const ScheduleResult &b = runs[1];
    EXPECT_EQ(a.est_total, b.est_total);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.macs, b.macs);
    EXPECT_EQ(a.checked, b.checked);
    EXPECT_EQ(a.mismatches, b.mismatches);
    EXPECT_EQ(a.search_nodes, b.search_nodes);
    EXPECT_EQ(a.handoffs, b.handoffs);
    EXPECT_EQ(a.handoff_cycles, b.handoff_cycles);
    ASSERT_EQ(a.layers.size(), b.layers.size());
    for (size_t i = 0; i < a.layers.size(); ++i) {
        EXPECT_EQ(a.layers[i].device, b.layers[i].device);
        EXPECT_EQ(a.layers[i].dataflow, b.layers[i].dataflow);
        EXPECT_EQ(a.layers[i].cycles, b.layers[i].cycles);
    }
}

TEST(GraphFleet, PinnedPolicyErrorsAreActionable)
{
    const ModelGraph *graph = findModel("bert_mlp");
    ASSERT_NE(graph, nullptr);
    std::string error;

    // pinned:<dev> outside fleet mode names the missing flag.
    Scheduler single{SchedulerOptions{}};
    const std::optional<Evaluation> seval = single.evaluate(*graph, &error);
    ASSERT_TRUE(seval.has_value()) << error;
    EXPECT_FALSE(single
                     .schedule(*graph, *seval,
                               policyOf("pinned:feather:16x16"), &error)
                     .has_value());
    EXPECT_NE(error.find("needs --fleet"), std::string::npos) << error;

    // An unknown device name is rejected with the bad name echoed.
    Scheduler fleet{fleetOptions(kCiFleet, sim::EngineMode::Analytic)};
    const std::optional<Evaluation> feval = fleet.evaluate(*graph, &error);
    ASSERT_TRUE(feval.has_value()) << error;
    EXPECT_FALSE(fleet
                     .schedule(*graph, *feval, policyOf("pinned:nope"),
                               &error)
                     .has_value());
    EXPECT_NE(error.find("unknown fleet device 'nope'"), std::string::npos)
        << error;
}

} // namespace
} // namespace model
} // namespace feather
