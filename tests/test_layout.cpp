/**
 * @file
 * Unit tests for src/layout: the layout grammar of Fig. 3 and the
 * coordinate -> (line, slot) address map, including the paper's worked
 * examples (channel-last HWC_C4, row-major HCW_W8, CHW_W4H2C2).
 */

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "layout/layout.hpp"

namespace feather {
namespace {

Extents
chwExtents(int64_t c, int64_t h, int64_t w)
{
    Extents e;
    e[Dim::C] = c;
    e[Dim::H] = h;
    e[Dim::W] = w;
    return e;
}

Coord
chw(int64_t c, int64_t h, int64_t w)
{
    Coord x;
    x[Dim::C] = c;
    x[Dim::H] = h;
    x[Dim::W] = w;
    return x;
}

TEST(Layout, ParsePrintRoundTrip)
{
    for (const char *name :
         {"HWC_C32", "HCW_W8", "CHW_W4H2C2", "HWC_C4W8", "MK_K32",
          "MK_M4K8", "HWC_W2C3"}) {
        EXPECT_EQ(Layout::parse(name).toString(), name);
    }
}

TEST(Layout, LineSizeAndIntraSize)
{
    const Layout l = Layout::parse("CHW_W4H2C2");
    EXPECT_EQ(l.lineSize(), 16);
    EXPECT_EQ(l.intraSize(Dim::W), 4);
    EXPECT_EQ(l.intraSize(Dim::H), 2);
    EXPECT_EQ(l.intraSize(Dim::C), 2);
    EXPECT_EQ(l.intraSize(Dim::M), 1);
}

TEST(Layout, Fig3WorkedExample)
{
    // Paper Fig. 3: layer C56 H8 W8, layout CHW_W4H2C2.
    // Line 0 holds W0:3 H0:1 C0:1 flattened W -> H -> C:
    // slot order (w,h,c) = (0,0,0),(0,0,1),(0,1,0),(0,1,1),(1,0,0),...
    const BoundLayout bl(Layout::parse("CHW_W4H2C2"), chwExtents(56, 8, 8));
    EXPECT_EQ(bl.lineSize(), 16);
    // 56/2 * 8/2 * 8/4 = 28*4*2 = 224 lines.
    EXPECT_EQ(bl.numLines(), 224);

    EXPECT_EQ(bl.addrOf(chw(0, 0, 0)), (LineAddr{0, 0}));
    EXPECT_EQ(bl.addrOf(chw(1, 0, 0)), (LineAddr{0, 1}));
    EXPECT_EQ(bl.addrOf(chw(0, 1, 0)), (LineAddr{0, 2}));
    EXPECT_EQ(bl.addrOf(chw(1, 1, 0)), (LineAddr{0, 3}));
    EXPECT_EQ(bl.addrOf(chw(0, 0, 1)), (LineAddr{0, 4}));
    EXPECT_EQ(bl.addrOf(chw(1, 1, 3)), (LineAddr{0, 15}));

    // Inter-line order C -> H -> W: the W-tile advances fastest.
    EXPECT_EQ(bl.addrOf(chw(0, 0, 4)).line, 1);   // next W tile
    EXPECT_EQ(bl.addrOf(chw(0, 2, 0)).line, 2);   // next H tile
    EXPECT_EQ(bl.addrOf(chw(2, 0, 0)).line, 8);   // next C tile: 4*2 lines
}

TEST(Layout, ChannelLastHwcC4)
{
    // Fig. 11 iActs: channel-last HWC_C4 with C=4: line = h*W + w.
    const BoundLayout bl(Layout::parse("HWC_C4"), chwExtents(4, 3, 4));
    EXPECT_EQ(bl.lineSize(), 4);
    EXPECT_EQ(bl.numLines(), 12);
    EXPECT_EQ(bl.addrOf(chw(2, 0, 0)), (LineAddr{0, 2}));
    EXPECT_EQ(bl.addrOf(chw(0, 0, 1)), (LineAddr{1, 0}));
    EXPECT_EQ(bl.addrOf(chw(3, 1, 2)), (LineAddr{6, 3}));
}

TEST(Layout, RowMajorHcwW8)
{
    // Fig. 4 L2/L4 row-major: HCW_W8 flattens 8 W-elements per line;
    // lines ordered H outer, C inner.
    const BoundLayout bl(Layout::parse("HCW_W8"), chwExtents(3, 2, 16));
    EXPECT_EQ(bl.lineSize(), 8);
    EXPECT_EQ(bl.numLines(), 2 * 3 * 2);
    // H0 C0 W0:7 -> line 0; H0 C0 W8:15 -> line 1; H0 C1 W0:7 -> line 2.
    EXPECT_EQ(bl.addrOf(chw(0, 0, 0)).line, 0);
    EXPECT_EQ(bl.addrOf(chw(0, 0, 8)).line, 1);
    EXPECT_EQ(bl.addrOf(chw(1, 0, 0)).line, 2);
    EXPECT_EQ(bl.addrOf(chw(0, 1, 0)).line, 6);
    EXPECT_EQ(bl.addrOf(chw(0, 0, 5)).slot, 5);
}

TEST(Layout, InsightOneChannelParallelConflict)
{
    // Fig. 4-M7: channel-parallel dataflow needs H0W0C0:3 concurrently.
    // Under row-major HCW_W8 those land in four different lines; under
    // channel-last HWC_C4 they land in one line.
    const Extents ext = chwExtents(2048, 7, 7);
    const BoundLayout row_major(Layout::parse("HCW_W8"), ext);
    const BoundLayout channel_last(Layout::parse("HWC_C4"), ext);

    std::set<int64_t> rm_lines, cl_lines;
    for (int64_t c = 0; c < 4; ++c) {
        rm_lines.insert(row_major.addrOf(chw(c, 0, 0)).line);
        cl_lines.insert(channel_last.addrOf(chw(c, 0, 0)).line);
    }
    EXPECT_EQ(rm_lines.size(), 4u);
    EXPECT_EQ(cl_lines.size(), 1u);
}

TEST(Layout, AddrRoundTripExhaustive)
{
    // coordAt(addrOf(c)) == c for every element of a small tensor, for
    // several layouts (property: the map is a bijection).
    const Extents ext = chwExtents(4, 6, 8);
    for (const char *name : {"HWC_C4", "HCW_W8", "CHW_W4H2C2", "HWC_C2W4"}) {
        const BoundLayout bl(Layout::parse(name), ext);
        std::set<std::pair<int64_t, int64_t>> seen;
        for (int64_t c = 0; c < 4; ++c) {
            for (int64_t h = 0; h < 6; ++h) {
                for (int64_t w = 0; w < 8; ++w) {
                    const LineAddr a = bl.addrOf(chw(c, h, w));
                    EXPECT_GE(a.line, 0);
                    EXPECT_LT(a.line, bl.numLines());
                    EXPECT_GE(a.slot, 0);
                    EXPECT_LT(a.slot, bl.lineSize());
                    EXPECT_TRUE(seen.insert({a.line, a.slot}).second)
                        << name << ": address collision";
                    const Coord back = bl.coordAt(a);
                    EXPECT_EQ(back[Dim::C], c) << name;
                    EXPECT_EQ(back[Dim::H], h) << name;
                    EXPECT_EQ(back[Dim::W], w) << name;
                }
            }
        }
    }
}

TEST(Layout, NonDivisibleExtentsPad)
{
    // C=3 under HWC_C4: one C-tile with one empty slot, like Fig. 4-L1/L3
    // "Empty" slots for ResNet-50 layer 1 (C=3).
    const BoundLayout bl(Layout::parse("HWC_C4"), chwExtents(3, 2, 2));
    EXPECT_EQ(bl.numLines(), 4);
    EXPECT_EQ(bl.addrOf(chw(2, 1, 1)), (LineAddr{3, 2}));
}

TEST(Layout, GemmLayouts)
{
    Extents ext;
    ext[Dim::M] = 8;
    ext[Dim::K] = 64;
    const BoundLayout k32(Layout::parse("MK_K32"), ext);
    EXPECT_EQ(k32.numLines(), 8 * 2);
    Coord c;
    c[Dim::M] = 1;
    c[Dim::K] = 33;
    EXPECT_EQ(k32.addrOf(c).line, 3);
    EXPECT_EQ(k32.addrOf(c).slot, 1);

    const BoundLayout m32(Layout::parse("MK_M32"), ext);
    EXPECT_EQ(m32.numLines(), 1 * 64);
    EXPECT_EQ(m32.addrOf(c).line, 33);
    EXPECT_EQ(m32.addrOf(c).slot, 1);
}

TEST(Layout, SpacesMatchPaper)
{
    EXPECT_EQ(convLayoutSpace().size(), 7u);
    EXPECT_EQ(gemmLayoutSpace().size(), 3u);
    for (const auto &l : convLayoutSpace()) {
        EXPECT_EQ(l.lineSize(), 32) << l.toString()
            << ": paper's conv layouts all have 32-word lines";
    }
    for (const auto &l : gemmLayoutSpace()) {
        EXPECT_EQ(l.lineSize(), 32) << l.toString();
    }
}

} // namespace
} // namespace feather
