/**
 * @file
 * Unit tests for src/common: bit utilities, RNG determinism, statistics,
 * table formatting, the latency histogram, flat-JSON parsing, numeric
 * flag parsing, and the shared wall-clock report normalizer.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "common/bits.hpp"
#include "common/histogram.hpp"
#include "common/json_min.hpp"
#include "common/log.hpp"
#include "common/options.hpp"
#include "common/parse.hpp"
#include "common/report_norm.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace feather {
namespace {

TEST(Bits, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(64));
    EXPECT_FALSE(isPow2(65));
    EXPECT_TRUE(isPow2(uint64_t{1} << 40));
}

TEST(Bits, Log2Exact)
{
    EXPECT_EQ(log2Exact(1), 0u);
    EXPECT_EQ(log2Exact(2), 1u);
    EXPECT_EQ(log2Exact(16), 4u);
    EXPECT_EQ(log2Exact(1024), 10u);
}

TEST(Bits, Log2Ceil)
{
    EXPECT_EQ(log2Ceil(1), 0u);
    EXPECT_EQ(log2Ceil(2), 1u);
    EXPECT_EQ(log2Ceil(3), 2u);
    EXPECT_EQ(log2Ceil(5), 3u);
    EXPECT_EQ(log2Ceil(17), 5u);
}

TEST(Bits, NextPow2)
{
    EXPECT_EQ(nextPow2(0), 1u);
    EXPECT_EQ(nextPow2(1), 1u);
    EXPECT_EQ(nextPow2(3), 4u);
    EXPECT_EQ(nextPow2(16), 16u);
    EXPECT_EQ(nextPow2(17), 32u);
}

TEST(Bits, CeilDivRoundUp)
{
    EXPECT_EQ(ceilDiv(7, 2), 4);
    EXPECT_EQ(ceilDiv(8, 2), 4);
    EXPECT_EQ(ceilDiv(int64_t{0}, int64_t{5}), 0);
    EXPECT_EQ(roundUp(7, 4), 8);
    EXPECT_EQ(roundUp(8, 4), 8);
}

TEST(Bits, ReverseBitsMatchesAlgorithm1)
{
    // Worked examples from Alg. 1 semantics: reverse low `range` bits only.
    EXPECT_EQ(reverseBits(0b000, 3), 0b000u);
    EXPECT_EQ(reverseBits(0b001, 3), 0b100u);
    EXPECT_EQ(reverseBits(0b011, 3), 0b110u);
    EXPECT_EQ(reverseBits(0b110, 3), 0b011u);
    // Higher bits are preserved.
    EXPECT_EQ(reverseBits(0b1001, 3), 0b1100u);
    // Range 1 is the identity.
    for (uint32_t v = 0; v < 8; ++v) {
        EXPECT_EQ(reverseBits(v, 1), v);
    }
}

TEST(Bits, ReverseBitsIsInvolution)
{
    for (uint32_t range = 1; range <= 6; ++range) {
        for (uint32_t v = 0; v < 64; ++v) {
            EXPECT_EQ(reverseBits(reverseBits(v, range), range), v);
        }
    }
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a(), b());
    }
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a() == b()) ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(r.below(13), 13u);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const int64_t v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        hit_lo |= (v == -3);
        hit_hi |= (v == 3);
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double acc = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        acc += u;
    }
    EXPECT_NEAR(acc / 10000.0, 0.5, 0.02);
}

TEST(Stats, MeanGeomean)
{
    EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Stats, SumMinMax)
{
    EXPECT_DOUBLE_EQ(sum({1.0, 2.0, 3.0}), 6.0);
    EXPECT_DOUBLE_EQ(maxOf({1.0, 5.0, 3.0}), 5.0);
    EXPECT_DOUBLE_EQ(minOf({1.0, 5.0, 3.0}), 1.0);
}

TEST(Stats, RunningStat)
{
    RunningStat s;
    s.add(2.0);
    s.add(6.0);
    s.add(4.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
    EXPECT_DOUBLE_EQ(s.total(), 12.0);
}

TEST(Table, RendersAlignedAndCsv)
{
    Table t({"design", "latency"});
    t.addRow({"FEATHER", "1.00x"});
    t.addRow({"NVDLA-like", "2.00x"});
    const std::string s = t.toString();
    EXPECT_NE(s.find("FEATHER"), std::string::npos);
    EXPECT_NE(s.find("NVDLA-like"), std::string::npos);
    const std::string csv = t.toCsv();
    EXPECT_NE(csv.find("design,latency"), std::string::npos);
    EXPECT_NE(csv.find("FEATHER,1.00x"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(fmtDouble(1.2345, 2), "1.23");
    EXPECT_EQ(fmtRatio(2.654, 2), "2.65x");
    EXPECT_EQ(fmtPercent(0.983, 1), "98.3%");
}

TEST(Log, StrCat)
{
    EXPECT_EQ(strCat("a", 1, "b", 2.5), "a1b2.5");
    EXPECT_EQ(strCat(), "");
}

// ---------------------------------------------------------------------------
// Numeric flag parsing
// ---------------------------------------------------------------------------

TEST(Parse, ParsePositiveRejectsZeroJunkAndOverflow)
{
    uint64_t v = 0;
    EXPECT_TRUE(parsePositive("1", &v));
    EXPECT_EQ(v, 1u);
    EXPECT_TRUE(parsePositive("256", &v, 256));
    EXPECT_EQ(v, 256u);

    EXPECT_FALSE(parsePositive("0", &v));
    EXPECT_FALSE(parsePositive("", &v));
    EXPECT_FALSE(parsePositive("-3", &v));
    EXPECT_FALSE(parsePositive("4x", &v));
    EXPECT_FALSE(parsePositive("abc", &v));
    EXPECT_FALSE(parsePositive("257", &v, 256)) << "above the cap";
    // Failure must not clobber the previous value.
    v = 77;
    EXPECT_FALSE(parsePositive("zero", &v));
    EXPECT_EQ(v, 77u);
}

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

TEST(Histogram, EmptyAndSingleSample)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(50), 0);
    EXPECT_EQ(h.min(), 0);
    EXPECT_EQ(h.max(), 0);

    h.record(42);
    EXPECT_EQ(h.count(), 1u);
    for (double p : {0.0, 50.0, 99.0, 100.0}) {
        EXPECT_EQ(h.percentile(p), 42) << "p" << p;
    }
}

TEST(Histogram, SmallValuesHaveExactQuantiles)
{
    // Values below 64 occupy singleton buckets, so every percentile of a
    // small-valued distribution is exact, not approximate.
    LatencyHistogram h;
    for (int64_t v = 1; v <= 20; ++v) h.record(v);
    EXPECT_EQ(h.percentile(50), 10);  // rank ceil(0.50*20) = 10
    EXPECT_EQ(h.percentile(95), 19);  // rank 19
    EXPECT_EQ(h.percentile(99), 20);  // rank 20
    EXPECT_EQ(h.percentile(100), 20);
    EXPECT_EQ(h.percentile(0), 1);
    EXPECT_EQ(h.min(), 1);
    EXPECT_EQ(h.max(), 20);
    EXPECT_EQ(h.total(), 210);
    EXPECT_DOUBLE_EQ(h.mean(), 10.5);
}

TEST(Histogram, NegativeSamplesClampToZero)
{
    LatencyHistogram h;
    h.record(-5);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.min(), 0);
    EXPECT_EQ(h.percentile(50), 0);
}

TEST(Histogram, BucketBoundsRoundTrip)
{
    // bucketLowerBound(bucketIndex(v)) <= v, and the lower bound maps to
    // its own bucket — across the exact range, bucket edges, and large
    // values.
    const int64_t probes[] = {0,   1,    63,   64,        65,
                              127, 128,  4095, 4096,      100000,
                              int64_t(1) << 40, (int64_t(1) << 40) + 12345};
    for (int64_t v : probes) {
        const size_t b = LatencyHistogram::bucketIndex(v);
        ASSERT_LT(b, LatencyHistogram::kNumBuckets) << v;
        const int64_t lo = LatencyHistogram::bucketLowerBound(b);
        EXPECT_LE(lo, v) << v;
        EXPECT_EQ(LatencyHistogram::bucketIndex(lo), b) << v;
        if (v < 64) {
            EXPECT_EQ(lo, v) << "small values are exact";
        }
    }
}

TEST(Histogram, RelativeErrorBoundedByBucketWidth)
{
    LatencyHistogram h;
    h.record(1000000);
    const int64_t p = h.percentile(50);
    EXPECT_LE(p, 1000000);
    // 1/64 relative bucket width.
    EXPECT_GE(p, 1000000 - 1000000 / 64);
}

TEST(Histogram, InsertionOrderDoesNotChangePercentiles)
{
    std::vector<int64_t> values;
    Rng rng(13);
    for (int i = 0; i < 500; ++i) {
        values.push_back(int64_t(rng.below(100000)));
    }
    LatencyHistogram forward, shuffled;
    for (int64_t v : values) forward.record(v);
    std::shuffle(values.begin(), values.end(), std::mt19937(99));
    for (int64_t v : values) shuffled.record(v);
    for (double p : {0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
        EXPECT_EQ(forward.percentile(p), shuffled.percentile(p)) << p;
    }
    EXPECT_EQ(forward.total(), shuffled.total());
}

TEST(Histogram, MergeIsAssociativeAndCommutative)
{
    // Three disjoint shards; every merge order must agree bit-exactly with
    // recording everything into one histogram.
    LatencyHistogram a, b, c, all;
    Rng rng(7);
    for (int i = 0; i < 300; ++i) {
        const int64_t v = int64_t(rng.below(1 << 20));
        (i % 3 == 0 ? a : i % 3 == 1 ? b : c).record(v);
        all.record(v);
    }
    LatencyHistogram ab_c = a;   // (a+b)+c
    ab_c.merge(b);
    ab_c.merge(c);
    LatencyHistogram c_ba = c;   // (c+b)+a
    c_ba.merge(b);
    c_ba.merge(a);
    for (LatencyHistogram *m : {&ab_c, &c_ba}) {
        EXPECT_EQ(m->count(), all.count());
        EXPECT_EQ(m->min(), all.min());
        EXPECT_EQ(m->max(), all.max());
        EXPECT_EQ(m->total(), all.total());
        for (double p : {50.0, 95.0, 99.0}) {
            EXPECT_EQ(m->percentile(p), all.percentile(p)) << p;
        }
    }
}

// ---------------------------------------------------------------------------
// Flat JSON parsing (daemon wire format)
// ---------------------------------------------------------------------------

TEST(JsonMin, ParsesScalarsOfEveryKind)
{
    JsonObject obj;
    std::string error;
    ASSERT_TRUE(JsonObject::parse(
        "{\"s\":\"text\",\"n\":42,\"neg\":-7,\"b\":true,\"z\":null}", &obj,
        &error))
        << error;
    ASSERT_EQ(obj.entries().size(), 5u);
    EXPECT_EQ(obj.entries()[0].first, "s") << "input order preserved";
    const JsonScalar *s = obj.find("s");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->kind, JsonScalar::Kind::String);
    EXPECT_EQ(s->text, "text");
    uint64_t u = 0;
    ASSERT_TRUE(obj.find("n")->asUint(&u));
    EXPECT_EQ(u, 42u);
    int64_t i = 0;
    ASSERT_TRUE(obj.find("neg")->asInt(&i));
    EXPECT_EQ(i, -7);
    EXPECT_FALSE(obj.find("neg")->asUint(&u)) << "negative is not a uint";
    EXPECT_TRUE(obj.find("b")->boolean);
    EXPECT_EQ(obj.find("z")->kind, JsonScalar::Kind::Null);
    EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(JsonMin, UnescapesStrings)
{
    JsonObject obj;
    std::string error;
    ASSERT_TRUE(JsonObject::parse(
        "{\"k\":\"a\\\"b\\\\c\\nd\\te\"}", &obj, &error))
        << error;
    EXPECT_EQ(obj.find("k")->text, "a\"b\\c\nd\te");
}

TEST(JsonMin, RejectsMalformedInput)
{
    JsonObject obj;
    std::string error;
    const char *bad[] = {
        "",                            // empty
        "not json",                    // no object
        "[1,2]",                       // array at top level
        "{\"a\":1",                    // unterminated
        "{\"a\":{\"b\":1}}",           // nested object
        "{\"a\":[1]}",                 // nested array
        "{\"a\":1}trailing",           // trailing garbage
        "{\"a\":1,\"a\":2}",           // duplicate key
        "{\"a\":}",                    // missing value
        "{\"a\" 1}",                   // missing colon
        "{\"a\":\"\\x\"}",             // bad escape
        "{a:1}",                       // unquoted key
    };
    for (const char *text : bad) {
        error.clear();
        EXPECT_FALSE(JsonObject::parse(text, &obj, &error)) << text;
        EXPECT_FALSE(error.empty()) << text;
    }
}

TEST(JsonMin, WhitespaceTolerantAndEmptyObjectOk)
{
    JsonObject obj;
    std::string error;
    ASSERT_TRUE(JsonObject::parse("  { \"a\" : 1 , \"b\" : \"x\" }  ", &obj,
                                  &error))
        << error;
    EXPECT_EQ(obj.entries().size(), 2u);
    ASSERT_TRUE(JsonObject::parse("{}", &obj, &error)) << error;
    EXPECT_TRUE(obj.entries().empty());
}

// ---------------------------------------------------------------------------
// Shared wall-clock report normalizer
// ---------------------------------------------------------------------------

TEST(ReportNorm, WallFieldNamingConvention)
{
    EXPECT_TRUE(isWallReportField("sim_wall_us"));
    EXPECT_TRUE(isWallReportField("run_wall_us"));
    EXPECT_TRUE(isWallReportField("queue_wall_us"));
    EXPECT_FALSE(isWallReportField("wall_us_total"));
    EXPECT_FALSE(isWallReportField("cycles"));
    EXPECT_FALSE(isWallReportField(""));
    EXPECT_FALSE(isWallReportField("_wall_u"));
}

TEST(ReportNorm, CsvZeroesEveryWallColumn)
{
    const std::string csv = "job,sim_wall_us,cycles,queue_wall_us\n"
                            "a,123,10,456\n"
                            "b,789,20,12\n";
    EXPECT_EQ(zeroWallCsv(csv), "job,sim_wall_us,cycles,queue_wall_us\n"
                                "a,0,10,0\n"
                                "b,0,20,0\n");
    // No wall columns: byte-identical passthrough.
    const std::string plain = "a,b\n1,2\n";
    EXPECT_EQ(zeroWallCsv(plain), plain);
}

TEST(ReportNorm, JsonZeroesWallValuesButNotLookalikes)
{
    const std::string json =
        "{\"cycles\":5,\"sim_wall_us\":9999,\"note\":\"sim_wall_us: 3\","
        "\"run_wall_us\":-12,\"inner_wall_us\":7}";
    EXPECT_EQ(zeroWallJson(json),
              "{\"cycles\":5,\"sim_wall_us\":0,\"note\":\"sim_wall_us: 3\","
              "\"run_wall_us\":0,\"inner_wall_us\":0}")
        << "string values mentioning a wall key must survive untouched";
}

TEST(ReportNorm, AutoFormatDetection)
{
    EXPECT_EQ(zeroWallReport("  {\"sim_wall_us\":3}"),
              "  {\"sim_wall_us\":0}");
    EXPECT_EQ(zeroWallReport("a,sim_wall_us\nx,3\n"), "a,sim_wall_us\nx,0\n");
    EXPECT_EQ(zeroWallReport("a,sim_wall_us\nx,3\n", "csv"),
              "a,sim_wall_us\nx,0\n");
}

// ---------------------------------------------------------------------------
// OptionTable (the declarative CLI flag table shared by every binary)
// ---------------------------------------------------------------------------

TEST(Options, ParsesEveryBuilderKind)
{
    bool verbose = false;
    std::string name;
    uint64_t count = 0;
    int width = 0;
    uint64_t level = 99;
    std::string custom;
    OptionTable t;
    t.flag("--verbose", "say more", &verbose);
    t.str("--name", "S", "a string", &name);
    t.positive("--count", "N", "a count", &count);
    t.positiveInt("--width", "N", "a width", &width, 64);
    t.ranged("--level", "N", "a level", &level, 2);
    t.custom("--mode", "M", "a mode", [&custom](const std::string &v) {
        if (v != "fast" && v != "slow") {
            return OptionTable::invalidValue("--mode", v, "fast or slow");
        }
        custom = v;
        return std::string();
    });
    std::string error;
    ASSERT_TRUE(t.parse({"--verbose", "--name", "x", "--count", "7",
                         "--width", "32", "--level", "2", "--mode", "slow"},
                        &error))
        << error;
    EXPECT_TRUE(verbose);
    EXPECT_EQ(name, "x");
    EXPECT_EQ(count, 7u);
    EXPECT_EQ(width, 32);
    EXPECT_EQ(level, 2u);
    EXPECT_EQ(custom, "slow");
}

TEST(Options, ErrorsNameTheFlagAndTheExpectation)
{
    uint64_t count = 0;
    int width = 0;
    uint64_t level = 0;
    uint64_t seed = 0;
    OptionTable t;
    t.positive("--count", "N", "", &count);
    t.positiveInt("--width", "N", "", &width, 64);
    t.ranged("--level", "N", "", &level, 2);
    t.nonNegative("--seed", "N", "", &seed);

    struct Case
    {
        std::vector<std::string> args;
        const char *expect;
    };
    const Case cases[] = {
        {{"--count", "0"}, "invalid value for --count: '0' (expected a "
                           "positive integer)"},
        {{"--count", "abc"}, "invalid value for --count: 'abc' (expected "
                             "a positive integer)"},
        {{"--width", "65"},
         "invalid value for --width: '65' (expected a positive integer "
         "<= 64)"},
        {{"--level", "3"},
         "invalid value for --level: '3' (expected an integer in 0..2)"},
        {{"--seed", "-1"},
         "invalid value for --seed: '-1' (expected a non-negative "
         "integer)"},
        {{"--count"}, "--count needs a value"},
    };
    for (const Case &c : cases) {
        std::string error;
        EXPECT_FALSE(t.parse(c.args, &error)) << c.args[0];
        EXPECT_EQ(error, c.expect);
    }
}

TEST(Options, UnknownFlagsCarryTheConfiguredSuffix)
{
    OptionTable t;
    t.unknownSuffix(" (see tool --help)");
    std::string error;
    EXPECT_FALSE(t.parse({"--bogus"}, &error));
    EXPECT_EQ(error, "unknown flag '--bogus' (see tool --help)");

    OptionTable bare;
    EXPECT_FALSE(bare.parse({"--bogus"}, &error));
    EXPECT_EQ(error, "unknown flag '--bogus'");
}

TEST(Options, ShortHelpAliasMapsToHelp)
{
    bool help = false;
    OptionTable t;
    t.flag("--help", "show this text", &help);
    std::string error;
    ASSERT_TRUE(t.parse({"-h"}, &error)) << error;
    EXPECT_TRUE(help);
}

TEST(Options, HelpTextAlignsFlagsAndContinuationLines)
{
    bool flag = false;
    std::string value;
    OptionTable t;
    t.flag("--quiet", "suppress chatter", &flag);
    t.str("--workload", "NAME", "first line\nsecond line", &value);
    const std::string help = t.helpText();
    EXPECT_EQ(help,
              "  --quiet               suppress chatter\n"
              "  --workload NAME       first line\n"
              "                        second line\n");
}

TEST(Options, LaterOccurrencesOverrideEarlierOnes)
{
    std::string name;
    OptionTable t;
    t.str("--name", "S", "", &name);
    std::string error;
    ASSERT_TRUE(t.parse({"--name", "a", "--name", "b"}, &error)) << error;
    EXPECT_EQ(name, "b") << "last occurrence wins, like getopt";
}

} // namespace
} // namespace feather
