/**
 * @file
 * Unit tests for src/common: bit utilities, RNG determinism, statistics,
 * and table formatting.
 */

#include <gtest/gtest.h>

#include "common/bits.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace feather {
namespace {

TEST(Bits, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(64));
    EXPECT_FALSE(isPow2(65));
    EXPECT_TRUE(isPow2(uint64_t{1} << 40));
}

TEST(Bits, Log2Exact)
{
    EXPECT_EQ(log2Exact(1), 0u);
    EXPECT_EQ(log2Exact(2), 1u);
    EXPECT_EQ(log2Exact(16), 4u);
    EXPECT_EQ(log2Exact(1024), 10u);
}

TEST(Bits, Log2Ceil)
{
    EXPECT_EQ(log2Ceil(1), 0u);
    EXPECT_EQ(log2Ceil(2), 1u);
    EXPECT_EQ(log2Ceil(3), 2u);
    EXPECT_EQ(log2Ceil(5), 3u);
    EXPECT_EQ(log2Ceil(17), 5u);
}

TEST(Bits, NextPow2)
{
    EXPECT_EQ(nextPow2(0), 1u);
    EXPECT_EQ(nextPow2(1), 1u);
    EXPECT_EQ(nextPow2(3), 4u);
    EXPECT_EQ(nextPow2(16), 16u);
    EXPECT_EQ(nextPow2(17), 32u);
}

TEST(Bits, CeilDivRoundUp)
{
    EXPECT_EQ(ceilDiv(7, 2), 4);
    EXPECT_EQ(ceilDiv(8, 2), 4);
    EXPECT_EQ(ceilDiv(int64_t{0}, int64_t{5}), 0);
    EXPECT_EQ(roundUp(7, 4), 8);
    EXPECT_EQ(roundUp(8, 4), 8);
}

TEST(Bits, ReverseBitsMatchesAlgorithm1)
{
    // Worked examples from Alg. 1 semantics: reverse low `range` bits only.
    EXPECT_EQ(reverseBits(0b000, 3), 0b000u);
    EXPECT_EQ(reverseBits(0b001, 3), 0b100u);
    EXPECT_EQ(reverseBits(0b011, 3), 0b110u);
    EXPECT_EQ(reverseBits(0b110, 3), 0b011u);
    // Higher bits are preserved.
    EXPECT_EQ(reverseBits(0b1001, 3), 0b1100u);
    // Range 1 is the identity.
    for (uint32_t v = 0; v < 8; ++v) {
        EXPECT_EQ(reverseBits(v, 1), v);
    }
}

TEST(Bits, ReverseBitsIsInvolution)
{
    for (uint32_t range = 1; range <= 6; ++range) {
        for (uint32_t v = 0; v < 64; ++v) {
            EXPECT_EQ(reverseBits(reverseBits(v, range), range), v);
        }
    }
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a(), b());
    }
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a() == b()) ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(r.below(13), 13u);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const int64_t v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        hit_lo |= (v == -3);
        hit_hi |= (v == 3);
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double acc = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        acc += u;
    }
    EXPECT_NEAR(acc / 10000.0, 0.5, 0.02);
}

TEST(Stats, MeanGeomean)
{
    EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Stats, SumMinMax)
{
    EXPECT_DOUBLE_EQ(sum({1.0, 2.0, 3.0}), 6.0);
    EXPECT_DOUBLE_EQ(maxOf({1.0, 5.0, 3.0}), 5.0);
    EXPECT_DOUBLE_EQ(minOf({1.0, 5.0, 3.0}), 1.0);
}

TEST(Stats, RunningStat)
{
    RunningStat s;
    s.add(2.0);
    s.add(6.0);
    s.add(4.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
    EXPECT_DOUBLE_EQ(s.total(), 12.0);
}

TEST(Table, RendersAlignedAndCsv)
{
    Table t({"design", "latency"});
    t.addRow({"FEATHER", "1.00x"});
    t.addRow({"NVDLA-like", "2.00x"});
    const std::string s = t.toString();
    EXPECT_NE(s.find("FEATHER"), std::string::npos);
    EXPECT_NE(s.find("NVDLA-like"), std::string::npos);
    const std::string csv = t.toCsv();
    EXPECT_NE(csv.find("design,latency"), std::string::npos);
    EXPECT_NE(csv.find("FEATHER,1.00x"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(fmtDouble(1.2345, 2), "1.23");
    EXPECT_EQ(fmtRatio(2.654, 2), "2.65x");
    EXPECT_EQ(fmtPercent(0.983, 1), "98.3%");
}

TEST(Log, StrCat)
{
    EXPECT_EQ(strCat("a", 1, "b", 2.5), "a1b2.5");
    EXPECT_EQ(strCat(), "");
}

} // namespace
} // namespace feather
