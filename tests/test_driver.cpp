/**
 * @file
 * Tests for the sim driver library behind `feather_cli`: scenario-registry
 * lookup, CLI flag parsing (unknown-flag rejection), dataflow/layout
 * derivation, and bit-exactness of driver-run layers against the
 * tensor/reference_ops golden implementations.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/cli.hpp"
#include "sim/driver.hpp"
#include "sim/scenario.hpp"
#include "tensor/reference_ops.hpp"

namespace feather {
namespace sim {
namespace {

// ---------------------------------------------------------------------------
// Scenario registry
// ---------------------------------------------------------------------------

TEST(ScenarioRegistry, LookupKnownNames)
{
    ASSERT_GE(scenarios().size(), 9u);
    for (const char *name : {"quickstart_conv", "conv3x3", "depthwise",
                             "gemm", "resnet_block"}) {
        const Scenario *s = findScenario(name);
        ASSERT_NE(s, nullptr) << name;
        EXPECT_EQ(s->name, name);
        EXPECT_FALSE(s->layers.empty());
    }
}

TEST(ScenarioRegistry, LookupUnknownReturnsNull)
{
    EXPECT_EQ(findScenario("no_such_scenario"), nullptr);
    EXPECT_EQ(findScenario(""), nullptr);
}

TEST(ScenarioRegistry, NamesAreUniqueAndOrdered)
{
    const std::vector<std::string> names = scenarioNames();
    EXPECT_EQ(names.size(), scenarios().size());
    const std::set<std::string> unique(names.begin(), names.end());
    EXPECT_EQ(unique.size(), names.size());
}

TEST(ScenarioRegistry, EveryLayerMappingValidates)
{
    for (const Scenario &s : scenarios()) {
        for (const ScenarioLayer &sl : s.layers) {
            std::string error;
            const auto m = buildMapping(sl.dataflow, sl.layer, s.default_aw,
                                        s.default_ah, &error);
            EXPECT_TRUE(m.has_value())
                << s.name << "/" << sl.layer.name << ": " << error;
        }
    }
}

TEST(ScenarioRegistry, AllScenariosRunBitExact)
{
    for (const Scenario &s : scenarios()) {
        std::string error;
        const std::optional<ScenarioRun> run = runScenario(s, {}, &error);
        ASSERT_TRUE(run.has_value()) << s.name << ": " << error;
        EXPECT_TRUE(run->chain.bitExact())
            << s.name << ": " << run->chain.mismatches << " of "
            << run->chain.checked << " elements differ";
    }
}

TEST(ScenarioRegistry, DataflowOverrideApplies)
{
    const Scenario *s = findScenario("conv3x3");
    ASSERT_NE(s, nullptr);
    ScenarioOptions opts;
    opts.dataflow = "wp";
    std::string error;
    const std::optional<ScenarioRun> run = runScenario(*s, opts, &error);
    ASSERT_TRUE(run.has_value()) << error;
    EXPECT_TRUE(run->chain.bitExact());
    EXPECT_EQ(run->chain.layers.front().mapping.cols.front().dim, Dim::Q);
}

TEST(ScenarioRegistry, BadOverridesAreRejected)
{
    const Scenario *s = findScenario("gemm");
    ASSERT_NE(s, nullptr);

    ScenarioOptions bad_dataflow;
    bad_dataflow.dataflow = "zigzag";
    std::string error;
    EXPECT_FALSE(runScenario(*s, bad_dataflow, &error).has_value());
    EXPECT_NE(error.find("zigzag"), std::string::npos);

    ScenarioOptions bad_layout;
    bad_layout.layout = "not-a-layout";
    error.clear();
    EXPECT_FALSE(runScenario(*s, bad_layout, &error).has_value());
    EXPECT_NE(error.find("not-a-layout"), std::string::npos);

    // A parsable layout whose dims are not in the layer's iAct tensor must
    // be rejected cleanly, not die on an internal CHECK downstream.
    ScenarioOptions wrong_dims;
    wrong_dims.layout = "HWC_C4"; // conv layout on a [M,K] GEMM
    error.clear();
    EXPECT_FALSE(runScenario(*s, wrong_dims, &error).has_value());
    EXPECT_NE(error.find("HWC_C4"), std::string::npos);

    // BIRRD widths are powers of two; --aw 3 must not reach the topology
    // constructor's panic.
    ScenarioOptions bad_aw;
    bad_aw.aw = 3;
    error.clear();
    EXPECT_FALSE(runScenario(*s, bad_aw, &error).has_value());
    EXPECT_NE(error.find("power of two"), std::string::npos);
}

// ---------------------------------------------------------------------------
// CLI parsing
// ---------------------------------------------------------------------------

TEST(Cli, RejectsUnknownFlag)
{
    const CliParse p = parseCli({"--frobnicate"});
    EXPECT_FALSE(p.ok());
    EXPECT_NE(p.error.find("unknown flag"), std::string::npos);
    EXPECT_NE(p.error.find("--frobnicate"), std::string::npos);
}

TEST(Cli, RejectsMissingValue)
{
    EXPECT_FALSE(parseCli({"--workload"}).ok());
    EXPECT_FALSE(parseCli({"--aw"}).ok());
}

TEST(Cli, RejectsNonNumericValue)
{
    EXPECT_FALSE(parseCli({"--aw", "four"}).ok());
    EXPECT_FALSE(parseCli({"--seed", "-3"}).ok());
    EXPECT_FALSE(parseCli({"--trace", "1x"}).ok());
}

TEST(Cli, RejectsOutOfRangeValues)
{
    // int truncation of huge --aw/--ah must not silently change meaning.
    EXPECT_FALSE(parseCli({"--aw", "4294967296"}).ok());
    EXPECT_FALSE(parseCli({"--ah", "2147483648"}).ok());
    // uint64 wraparound in the digit scan must be rejected, not wrapped.
    EXPECT_FALSE(parseCli({"--seed", "99999999999999999999999999"}).ok());
    EXPECT_TRUE(parseCli({"--aw", "65536"}).ok());
}

TEST(Cli, ParsesEveryFlag)
{
    const CliParse p =
        parseCli({"--workload", "resnet_block", "--dataflow", "ws",
                  "--layout", "HWC_C8", "--aw", "16", "--ah", "8", "--seed",
                  "7", "--trace", "12"});
    ASSERT_TRUE(p.ok()) << p.error;
    EXPECT_EQ(p.opts.workload, "resnet_block");
    EXPECT_EQ(p.opts.dataflow, "ws");
    EXPECT_EQ(p.opts.layout, "HWC_C8");
    EXPECT_EQ(p.opts.aw, 16);
    EXPECT_EQ(p.opts.ah, 8);
    EXPECT_EQ(p.opts.seed, 7u);
    EXPECT_EQ(p.opts.trace, 12u);
    EXPECT_FALSE(p.opts.list);
    EXPECT_FALSE(p.opts.help);
}

TEST(Cli, DefaultsMatchDocumentation)
{
    const CliParse p = parseCli({});
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p.opts.workload, "quickstart_conv");
    EXPECT_EQ(p.opts.layout, "concordant");
    EXPECT_TRUE(p.opts.dataflow.empty());
    EXPECT_EQ(p.opts.aw, 0);
}

namespace {

int
runCliMain(const std::vector<const char *> &args)
{
    std::vector<const char *> argv = {"feather_cli"};
    argv.insert(argv.end(), args.begin(), args.end());
    return cliMain(int(argv.size()), argv.data());
}

} // namespace

TEST(Cli, MainRunsConvGemmDepthwiseBitExact)
{
    // Exit code 0 == the run was verified bit-exact against reference_ops.
    EXPECT_EQ(runCliMain({"--workload", "quickstart_conv"}), 0);
    EXPECT_EQ(runCliMain({"--workload", "gemm"}), 0);
    EXPECT_EQ(runCliMain({"--workload", "depthwise"}), 0);
}

TEST(Cli, MainRejectsBadUsage)
{
    EXPECT_EQ(runCliMain({"--bogus"}), 2);
    EXPECT_EQ(runCliMain({"--workload", "no_such_scenario"}), 2);
    EXPECT_EQ(runCliMain({"--workload", "gemm", "--layout", "bad"}), 2);
    EXPECT_EQ(runCliMain({"--workload", "gemm", "--dataflow", "bad"}), 2);
}

TEST(Cli, MainListAndHelpSucceed)
{
    EXPECT_EQ(runCliMain({"--list"}), 0);
    EXPECT_EQ(runCliMain({"--help"}), 0);
}

// ---------------------------------------------------------------------------
// Driver primitives
// ---------------------------------------------------------------------------

TEST(Driver, ConvRunsBitExact)
{
    RunOptions opts;
    opts.aw = 4;
    opts.ah = 4;
    const RunResult r = runLayer(convLayer("c", 8, 8, 8, 3, 1, 1), opts);
    EXPECT_TRUE(r.bitExact()) << r.mismatches << " mismatches";
    EXPECT_GT(r.stats.cycles, 0);
    EXPECT_GT(r.stats.macs, 0);
}

TEST(Driver, GemmRunsBitExact)
{
    RunOptions opts;
    opts.aw = 4;
    opts.ah = 4;
    const RunResult r = runLayer(gemmLayer("g", 8, 6, 32), opts);
    EXPECT_TRUE(r.bitExact());
    EXPECT_EQ(r.output.shape(), (std::vector<int64_t>{8, 6}));
}

TEST(Driver, DepthwiseRunsBitExact)
{
    RunOptions opts;
    opts.aw = 4;
    opts.ah = 4;
    opts.quant.iact_zp = 5;
    opts.quant.multiplier = 0.1f;
    const RunResult r = runLayer(depthwiseLayer("dw", 8, 6, 3, 1, 1), opts);
    EXPECT_TRUE(r.bitExact());
}

TEST(Driver, ChainThreadsActivationsBitExact)
{
    std::vector<ChainStep> steps(2);
    steps[0].layer = convLayer("l1", 4, 6, 8, 3, 1, 1);
    steps[1].layer = convLayer("l2", 8, 6, 4, 1, 1, 0);
    RunOptions opts;
    opts.aw = 4;
    opts.ah = 4;
    const ChainResult r = runChain(steps, opts);
    ASSERT_EQ(r.layers.size(), 2u);
    EXPECT_TRUE(r.bitExact()) << r.mismatches << " mismatches";
    // Step 0 defaults its oAct layout to step 1's concordant iAct layout.
    EXPECT_EQ(r.layers[0].out_layout.toString(),
              r.layers[1].in_layout.toString());
}

TEST(Driver, ConcordantLayoutsFollowTheMapping)
{
    const LayerSpec conv = convLayer("c", 8, 14, 16, 3, 1, 1);
    const auto cp = buildMapping(DataflowKind::ChannelParallel, conv, 4, 4);
    ASSERT_TRUE(cp.has_value());
    EXPECT_EQ(concordantInputLayout(conv, *cp, 4).toString(), "HWC_C4");
    EXPECT_EQ(concordantOutputLayout(conv, *cp, 4).toString(), "HWC_C4");

    const auto wp = buildMapping(DataflowKind::WindowParallel, conv, 4, 4);
    ASSERT_TRUE(wp.has_value());
    EXPECT_EQ(concordantInputLayout(conv, *wp, 4).toString(), "CHW_W4");

    const LayerSpec g = gemmLayer("g", 8, 6, 32);
    const auto gm = buildMapping(DataflowKind::Canonical, g, 4, 4);
    ASSERT_TRUE(gm.has_value());
    EXPECT_EQ(concordantInputLayout(g, *gm, 4).toString(), "MK_K4");
}

TEST(Driver, PlanLayerBundlesMappingAndConcordantLayouts)
{
    const LayerSpec conv = convLayer("c", 8, 14, 16, 3, 1, 1);
    const auto plan =
        planLayer(DataflowKind::ChannelParallel, conv, 4, 4);
    ASSERT_TRUE(plan.has_value());
    const auto mapping = buildMapping(DataflowKind::ChannelParallel, conv, 4, 4);
    ASSERT_TRUE(mapping.has_value());
    EXPECT_EQ(plan->mapping.toString(), mapping->toString());
    EXPECT_EQ(plan->in_layout.toString(),
              concordantInputLayout(conv, *mapping, 4).toString());
    EXPECT_EQ(plan->out_layout.toString(),
              concordantOutputLayout(conv, *mapping, 4).toString());
}

TEST(ScenarioRegistry, OutLayoutOverrideRetargetsLastLayer)
{
    const Scenario *s = findScenario("gemm");
    ASSERT_NE(s, nullptr);
    // Re-target the oActs to M-major banks: same reduction, different
    // banks, still bit-exact (the Fig. 10 zero-cost RIR switch).
    ScenarioOptions opts;
    opts.out_layout = "MK_M4";
    std::string error;
    const std::optional<ScenarioRun> run = runScenario(*s, opts, &error);
    ASSERT_TRUE(run.has_value()) << error;
    EXPECT_TRUE(run->chain.bitExact());
    EXPECT_EQ(run->chain.layers.back().out_layout.toString(), "MK_M4");

    ScenarioOptions bad;
    bad.out_layout = "HWC_C4"; // conv dims on a GEMM's oActs
    error.clear();
    EXPECT_FALSE(runScenario(*s, bad, &error).has_value());
    EXPECT_NE(error.find("HWC_C4"), std::string::npos);
}

TEST(ScenarioRegistry, EmptyScenarioIsRejectedCleanly)
{
    Scenario empty;
    empty.name = "empty";
    empty.default_aw = 4;
    empty.default_ah = 4;
    std::string error;
    EXPECT_FALSE(runScenario(empty, {}, &error).has_value());
    EXPECT_NE(error.find("no layers"), std::string::npos);
}

TEST(Driver, TryParseLayoutRejectsMalformedStrings)
{
    std::string error;
    EXPECT_FALSE(tryParseLayout("garbage", &error).has_value());
    EXPECT_FALSE(tryParseLayout("HWC_C", &error).has_value());
    EXPECT_FALSE(tryParseLayout("HWC_Cx", &error).has_value());
    EXPECT_FALSE(tryParseLayout("ZZ_A4", &error).has_value());
    EXPECT_FALSE(tryParseLayout("HWC_", &error).has_value());
    EXPECT_FALSE(tryParseLayout("HWC_C0", &error).has_value());

    const std::optional<Layout> ok = tryParseLayout("HWC_C8W2", &error);
    ASSERT_TRUE(ok.has_value()) << error;
    EXPECT_EQ(ok->toString(), "HWC_C8W2");
}

TEST(Driver, ReferenceOutputMatchesDirectOps)
{
    // referenceOutput is the single dispatch point the CLI relies on; spot
    // check the conv path against a by-hand call.
    const LayerSpec layer = convLayer("c", 4, 6, 4, 3, 1, 1);
    Rng rng(11);
    const Int8Tensor iacts = randomIacts(layer, rng);
    const Int8Tensor weights = randomWeights(layer, rng);
    LayerQuant quant;
    quant.multiplier = 0.05f;
    const Int8Tensor a = referenceOutput(layer, iacts, weights, quant);
    const Int8Tensor b = requantizeTensor(
        conv2d(iacts, weights, 1, 1, 0, 0), quant.multiplier, 0);
    EXPECT_EQ(countMismatches(a, b), 0);
}

} // namespace
} // namespace sim
} // namespace feather
