/**
 * @file
 * Tests for the baseline design points (Tab. IV) and the systolic-array
 * analysis behind Fig. 4 and Fig. 10.
 */

#include <gtest/gtest.h>

#include "baselines/arch_zoo.hpp"
#include "baselines/systolic_array.hpp"

namespace feather {
namespace {

TEST(ArchZoo, Fig13DesignCount)
{
    // Conv: NVDLA, Eyeriss, SIGMA(C32), SIGMA(C4W8), SIGMA(off-chip),
    // Medusa, MTIA, TPU, FEATHER = 9 (matches Fig. 13's x-axis).
    EXPECT_EQ(fig13DesignPoints(WorkloadKind::Conv).size(), 9u);
    // GEMM (BERT): one fixed-layout SIGMA entry -> 8.
    EXPECT_EQ(fig13DesignPoints(WorkloadKind::Gemm).size(), 8u);
}

TEST(ArchZoo, FlexibilityMatchesTable4)
{
    EXPECT_FALSE(nvdlaLike(WorkloadKind::Conv).flex.parallelism);
    EXPECT_FALSE(nvdlaLike(WorkloadKind::Conv).flex.shape);
    EXPECT_TRUE(eyerissLike(WorkloadKind::Conv).flex.shape);
    EXPECT_FALSE(eyerissLike(WorkloadKind::Conv).flex.parallelism);
    EXPECT_TRUE(featherArch(WorkloadKind::Conv).flex.parallelism);
    EXPECT_EQ(featherArch(WorkloadKind::Conv).reorder,
              ReorderCapability::Rir);
    EXPECT_EQ(sigmaLikeOffChip(WorkloadKind::Conv).reorder,
              ReorderCapability::OffChip);
    EXPECT_EQ(medusaLike(WorkloadKind::Conv).reorder,
              ReorderCapability::LineRotation);
    EXPECT_EQ(mtiaLike(WorkloadKind::Conv).reorder,
              ReorderCapability::Transpose);
    EXPECT_EQ(tpuLike(WorkloadKind::Conv).reorder,
              ReorderCapability::TransposeRowReorder);
}

TEST(ArchZoo, DeviceModelsPeCounts)
{
    EXPECT_EQ(gemminiLike().numPes(), 256);
    EXPECT_EQ(xilinxDpuLike().numPes(), 1152);
    EXPECT_EQ(edgeTpuLike().numPes(), 1024);
}

TEST(ArchZoo, FeatherLayoutsSpanPaperSpace)
{
    EXPECT_EQ(featherArch(WorkloadKind::Conv).layouts.size(), 7u);
    EXPECT_EQ(featherArch(WorkloadKind::Gemm).layouts.size(), 3u);
}

TEST(SystolicArray, GemmUtilizationFig10)
{
    // Fig. 10 shapes on the 4x4 weight-stationary SA.
    EXPECT_DOUBLE_EQ(saGemmUtilization({8, 4, 8}, 4, 4), 1.0);    // A
    EXPECT_DOUBLE_EQ(saGemmUtilization({6, 8, 2}, 4, 4), 0.5);    // B
    EXPECT_DOUBLE_EQ(saGemmUtilization({8, 3, 12}, 4, 4), 0.75);  // C
    EXPECT_DOUBLE_EQ(saGemmUtilization({4, 1, 16}, 4, 4), 0.25);  // D
}

TEST(SystolicArray, UtilizationNeverExceedsOne)
{
    for (int64_t k = 1; k <= 20; ++k) {
        for (int64_t n = 1; n <= 20; ++n) {
            const double u = saGemmUtilization({8, n, k}, 4, 4);
            EXPECT_GT(u, 0.0);
            EXPECT_LE(u, 1.0);
        }
    }
}

TEST(SystolicArray, Fig4M7Table)
{
    // ResNet-50 layer 47, D1 (C-parallel-4), row-major HCW_W8: every cycle
    // touches 4 lines of one bank -> access takes 2 cycles, practical
    // utilization halves (the paper's 0.5 slowdown).
    LayerSpec layer;
    layer.type = OpType::Conv;
    layer.conv = ConvShape{1, 2048, 7, 7, 512, 3, 3, 1, 1, false};

    Mapping d1;
    d1.cols = {{Dim::C, 4}};
    d1.rows = {{Dim::M, 4}};

    const BoundLayout bl(Layout::parse("HCW_W8"), iactExtents(layer));
    BufferSpec buf;
    buf.num_lines = bl.numLines();
    buf.line_size = bl.lineSize();
    buf.lines_per_bank = bl.numLines(); // single bank: worst case
    const SaAnalysis a = analyzeSaMapping(layer, d1, bl, buf, 16);

    EXPECT_NEAR(a.avg_slowdown, 2.0, 0.2);
    EXPECT_NEAR(a.practical_util, a.theoretical_util / 2.0,
                a.theoretical_util * 0.1);
    ASSERT_FALSE(a.rows.empty());
}

TEST(SystolicArray, Fig4M5Table)
{
    // Same dataflow under channel-last: concordant, no slowdown.
    LayerSpec layer;
    layer.type = OpType::Conv;
    layer.conv = ConvShape{1, 2048, 7, 7, 512, 3, 3, 1, 1, false};

    Mapping d1;
    d1.cols = {{Dim::C, 4}};
    d1.rows = {{Dim::M, 4}};

    const BoundLayout bl(Layout::parse("HWC_C8"), iactExtents(layer));
    BufferSpec buf;
    buf.num_lines = bl.numLines();
    buf.line_size = bl.lineSize();
    buf.lines_per_bank = bl.numLines();
    const SaAnalysis a = analyzeSaMapping(layer, d1, bl, buf, 16);

    EXPECT_DOUBLE_EQ(a.avg_slowdown, 1.0);
    EXPECT_NEAR(a.lines_per_cycle, 1.0, 0.01)
        << "one line per cycle: best memory efficiency (M5)";
}

TEST(SystolicArray, RowsDescribeIacts)
{
    LayerSpec layer;
    layer.type = OpType::Conv;
    layer.conv = ConvShape{1, 8, 8, 8, 8, 1, 1, 1, 0, false};
    Mapping d1;
    d1.cols = {{Dim::C, 4}};
    const BoundLayout bl(Layout::parse("HWC_C8"), iactExtents(layer));
    BufferSpec buf;
    buf.num_lines = bl.numLines();
    buf.line_size = bl.lineSize();
    buf.lines_per_bank = 8;
    const SaAnalysis a = analyzeSaMapping(layer, d1, bl, buf, 4);
    ASSERT_EQ(a.rows.size(), 4u);
    EXPECT_NE(a.rows[0].iacts.find("C0:3"), std::string::npos)
        << "got: " << a.rows[0].iacts;
}

} // namespace
} // namespace feather
