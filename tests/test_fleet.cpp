/**
 * @file
 * Tests for heterogeneous fleet sharding: --fleet spec parsing, the
 * arch-zoo device registry behind it, placement policies in the virtual
 * scheduler, cross-device hand-off pricing (model::handoffCost), the
 * device-scoped plan-cache keys, per-device report rows, and the fleet
 * determinism contract (responses and all non-`_wall_us` report fields
 * bit-identical at any --jobs setting).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "baselines/arch_zoo.hpp"
#include "common/io.hpp"
#include "common/log.hpp"
#include "daemon/daemon.hpp"
#include "daemon/fleet.hpp"
#include "daemon/request.hpp"
#include "daemon/serve_cli.hpp"
#include "daemon/vclock.hpp"
#include "model/scheduler.hpp"
#include "serve/plan_cache.hpp"
#include "golden_util.hpp"

namespace feather {
namespace daemon {
namespace {

// ---------------------------------------------------------------------------
// --fleet spec parsing
// ---------------------------------------------------------------------------

TEST(FleetSpec, ParsesInlineHeterogeneousFleet)
{
    FleetConfig fleet;
    std::string error;
    ASSERT_TRUE(parseFleetSpec("feather:16x16, feather:32x32,tpu-like",
                               &fleet, &error))
        << error;
    ASSERT_EQ(fleet.devices.size(), 3u);
    EXPECT_EQ(fleet.devices[0].name, "feather:16x16");
    EXPECT_EQ(fleet.devices[0].aw, 16);
    EXPECT_EQ(fleet.devices[0].ah, 16);
    EXPECT_EQ(fleet.devices[0].capability, 256);
    EXPECT_EQ(fleet.devices[1].name, "feather:32x32");
    EXPECT_EQ(fleet.devices[1].capability, 1024);
    EXPECT_EQ(fleet.devices[2].name, "tpu-like");
    EXPECT_GT(fleet.devices[2].capability, 0);
    EXPECT_EQ(fleet.spec, "feather:16x16,feather:32x32,tpu-like");
    EXPECT_TRUE(fleet.enabled());
}

TEST(FleetSpec, DuplicateEntriesGetOccurrenceSuffixes)
{
    FleetConfig fleet;
    std::string error;
    ASSERT_TRUE(parseFleetSpec("feather:8x8,feather:8x8,feather:8x8",
                               &fleet, &error))
        << error;
    ASSERT_EQ(fleet.devices.size(), 3u);
    EXPECT_EQ(fleet.devices[0].name, "feather:8x8");
    EXPECT_EQ(fleet.devices[1].name, "feather:8x8#2");
    EXPECT_EQ(fleet.devices[2].name, "feather:8x8#3");
}

TEST(FleetSpec, UnknownDeviceListsTheValidNames)
{
    FleetConfig fleet;
    std::string error;
    EXPECT_FALSE(parseFleetSpec("warp-core", &fleet, &error));
    EXPECT_NE(error.find("unknown device 'warp-core'"), std::string::npos)
        << error;
    // The error must teach the valid vocabulary: every zoo name plus the
    // parametric feather:<COLS>x<ROWS> form.
    for (const std::string &name : baselines::archZoo().names()) {
        EXPECT_NE(error.find(name), std::string::npos)
            << "error must list '" << name << "': " << error;
    }
    EXPECT_NE(error.find("feather:<COLS>x<ROWS>"), std::string::npos);
    EXPECT_EQ(error.find('\n'), std::string::npos) << "one-line error";
}

TEST(FleetSpec, RejectsMalformedShapes)
{
    FleetConfig fleet;
    std::string error;
    EXPECT_FALSE(parseFleetSpec("feather:0x8", &fleet, &error));
    EXPECT_NE(error.find("feather:0x8"), std::string::npos);
    EXPECT_FALSE(parseFleetSpec("feather:16", &fleet, &error));
    EXPECT_FALSE(parseFleetSpec("feather:16xten", &fleet, &error));
    // Columns are bounded by what the BIRRD cycle engine can run (64
    // router inputs); rows by the generic dim bound.
    EXPECT_FALSE(parseFleetSpec("feather:128x8", &fleet, &error));
    EXPECT_NE(error.find("1..64"), std::string::npos) << error;
    EXPECT_FALSE(parseFleetSpec("feather:16x2048", &fleet, &error));
    // BIRRD needs a power-of-two column count.
    EXPECT_FALSE(parseFleetSpec("feather:12x8", &fleet, &error));
    EXPECT_NE(error.find("power-of-two"), std::string::npos) << error;
    EXPECT_FALSE(parseFleetSpec("", &fleet, &error));
    EXPECT_NE(error.find("no devices"), std::string::npos) << error;
}

TEST(FleetSpec, ReadsFleetFilesWithCommentsAndNewlines)
{
    const std::string path = "fleet_spec_test.txt";
    ASSERT_TRUE(writeFile(path, "# the lab fleet\nfeather:16x16\n"
                                "feather:32x32 # big one\n\n"
                                "eyeriss-like,tpu-like\n"));
    FleetConfig fleet;
    std::string error;
    ASSERT_TRUE(parseFleetSpec(path, &fleet, &error)) << error;
    ASSERT_EQ(fleet.devices.size(), 4u);
    EXPECT_EQ(fleet.devices[2].name, "eyeriss-like");
    EXPECT_EQ(fleet.devices[3].name, "tpu-like");
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Arch-zoo registry (baselines::archZoo)
// ---------------------------------------------------------------------------

TEST(ArchZoo, LookupFindsEveryRegisteredName)
{
    const baselines::ArchZoo &zoo = baselines::archZoo();
    const std::vector<std::string> names = zoo.names();
    EXPECT_GE(names.size(), 11u);
    for (const std::string &name : names) {
        const baselines::ZooEntry *entry = zoo.lookup(name);
        ASSERT_NE(entry, nullptr) << name;
        EXPECT_EQ(entry->name, name);
        EXPECT_FALSE(entry->summary.empty()) << name;
        const ArchSpec spec = entry->make(WorkloadKind::Conv);
        EXPECT_GT(spec.numPes(), 0) << name;
        EXPECT_FALSE(spec.name.empty()) << name;
    }
    EXPECT_EQ(zoo.lookup("warp-core"), nullptr);
    EXPECT_EQ(zoo.lookup(""), nullptr);
}

TEST(ArchZoo, LegacyFactoriesAreThinWrappersOverTheRegistry)
{
    // The named free functions must produce exactly what the registry
    // produces — they are the same builders.
    const baselines::ArchZoo &zoo = baselines::archZoo();
    const ArchSpec via_fn = tpuLike(WorkloadKind::Conv);
    const ArchSpec via_zoo = zoo.lookup("tpu-like")->make(WorkloadKind::Conv);
    EXPECT_EQ(via_fn.name, via_zoo.name);
    EXPECT_EQ(via_fn.pe_rows, via_zoo.pe_rows);
    EXPECT_EQ(via_fn.pe_cols, via_zoo.pe_cols);
    EXPECT_EQ(via_fn.reorder, via_zoo.reorder);

    const ArchSpec feather_fn = featherArch(WorkloadKind::Conv);
    const ArchSpec feather_zoo =
        zoo.lookup("feather")->make(WorkloadKind::Conv);
    EXPECT_EQ(feather_fn.name, feather_zoo.name);
    EXPECT_EQ(feather_fn.pe_rows, feather_zoo.pe_rows);
}

// ---------------------------------------------------------------------------
// Hand-off pricing (model::handoffCost)
// ---------------------------------------------------------------------------

TEST(HandoffCost, SameDeviceIsFree)
{
    Extents e;
    e[Dim::C] = 4;
    e[Dim::H] = 8;
    e[Dim::W] = 8;
    EXPECT_EQ(model::handoffCost(true, Layout::parse("CHW_W4"),
                                 Layout::parse("HWC_C4"), e, 2,
                                 model::InterChipLink()),
              0);
}

TEST(HandoffCost, CrossDeviceIsReorderPlusTransfer)
{
    // 2x2x2 tensor, 8 elements. Reorder between these layouts costs 8
    // (see ReorderCost tests); the transfer term adds
    // ceil(bytes / bytes_per_cycle) on top.
    Extents e;
    e[Dim::C] = 2;
    e[Dim::H] = 2;
    e[Dim::W] = 2;
    const Layout src = Layout::parse("CHW_W2");
    const Layout dst = Layout::parse("HWC_C2");
    const int64_t reorder = model::reorderCost(src, dst, e);
    ASSERT_EQ(reorder, 8);

    model::InterChipLink link;
    link.bytes_per_cycle = 4;
    // 8 elements x 2 bytes = 16 bytes -> 4 transfer cycles.
    EXPECT_EQ(model::handoffCost(false, src, dst, e, 2, link), reorder + 4);
    // 1-byte elements: 8 bytes -> 2 cycles.
    EXPECT_EQ(model::handoffCost(false, src, dst, e, 1, link), reorder + 2);
    // A narrower link makes the same hand-off strictly dearer.
    link.bytes_per_cycle = 1;
    EXPECT_EQ(model::handoffCost(false, src, dst, e, 2, link), reorder + 16);
    // Identical layouts still pay the transfer term across chips.
    EXPECT_EQ(model::handoffCost(false, src, src, e, 1, link), 8);
}

// ---------------------------------------------------------------------------
// Device-scoped plan-cache keys
// ---------------------------------------------------------------------------

TEST(PlanCacheScope, ScopedKeyPartitionsTheKeySpace)
{
    LayerSpec layer;
    layer.name = "g";
    layer.type = OpType::Gemm;
    layer.gemm = {8, 8, 8};
    const std::string base = serve::PlanCache::key(
        sim::EngineMode::Cycle, sim::DataflowKind::Canonical, layer, 8, 8);
    const std::string dev = serve::PlanCache::key(
        sim::EngineMode::Cycle, sim::DataflowKind::Canonical, layer, 8, 8,
        "feather:32x32");
    EXPECT_NE(base, dev);
    EXPECT_EQ(dev, serve::PlanCache::scopedKey(base, "feather:32x32"));
    EXPECT_EQ(base, serve::PlanCache::scopedKey(base, ""));
    EXPECT_NE(serve::PlanCache::scopedKey(base, "a"),
              serve::PlanCache::scopedKey(base, "b"));
}

TEST(PlanCacheScope, ScopesMissIndependently)
{
    LayerSpec layer;
    layer.name = "g";
    layer.type = OpType::Gemm;
    layer.gemm = {8, 8, 8};
    serve::PlanCache cache;
    std::string error;
    ASSERT_TRUE(cache
                    .getOrPlan(sim::EngineMode::Cycle,
                               sim::DataflowKind::Canonical, layer, 8, 8,
                               &error, "dev-a")
                    .has_value())
        << error;
    EXPECT_EQ(cache.stats().misses, 1u);
    // Same point, different scope: a fresh miss, not a hit.
    ASSERT_TRUE(cache
                    .getOrPlan(sim::EngineMode::Cycle,
                               sim::DataflowKind::Canonical, layer, 8, 8,
                               &error, "dev-b")
                    .has_value());
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.stats().hits, 0u);
    // Same point, same scope: now a hit.
    cache.getOrPlan(sim::EngineMode::Cycle, sim::DataflowKind::Canonical,
                    layer, 8, 8, &error, "dev-a");
    EXPECT_EQ(cache.stats().hits, 1u);
}

// ---------------------------------------------------------------------------
// Placement policies in the DES
// ---------------------------------------------------------------------------

VirtualConfig
fleetConfig(PlacementPolicy place)
{
    VirtualConfig cfg;
    cfg.devices = {{"small", 64}, {"big", 1024}, {"mid", 256}};
    cfg.place = place;
    return cfg;
}

/** DES harness for placed arrivals; records (index, device). */
struct PlacedHarness
{
    std::vector<int64_t> durations;
    std::vector<std::pair<size_t, int>> completions;

    explicit PlacedHarness(VirtualConfig cfg)
        : vs(cfg, [this](size_t i, int) { return durations[i]; },
             [this](size_t i, int device, int64_t, int64_t) {
                 completions.push_back({i, device});
             })
    {
    }

    int
    arrive(int64_t at, int64_t duration, ArrivalHints hints)
    {
        durations.push_back(duration);
        if (hints.eligible.empty()) hints.eligible = {1, 1, 1};
        if (hints.handoff_vus.empty()) hints.handoff_vus = {0, 0, 0};
        std::string reason;
        int device = -1;
        EXPECT_TRUE(vs.arrive(durations.size() - 1, at, 1, hints, &reason,
                              &device))
            << reason;
        return device;
    }

    VirtualScheduler vs;
};

TEST(Placement, LeastLoadedBreaksTiesOnLowestIndex)
{
    PlacedHarness h(fleetConfig(PlacementPolicy::LeastLoaded));
    EXPECT_EQ(h.arrive(0, 100, {}), 0) << "all idle -> first device";
    EXPECT_EQ(h.arrive(1, 100, {}), 1) << "device 0 busy";
    EXPECT_EQ(h.arrive(2, 100, {}), 2);
    EXPECT_EQ(h.arrive(3, 100, {}), 0) << "all loaded 1 -> lowest index";
}

TEST(Placement, CapabilityWeighsLoadByDeviceCapability)
{
    PlacedHarness h(fleetConfig(PlacementPolicy::Capability));
    // (load+1)/capability: the 1024-PE device absorbs the first several
    // requests before the smaller devices become competitive.
    EXPECT_EQ(h.arrive(0, 1000, {}), 1);
    EXPECT_EQ(h.arrive(1, 1000, {}), 1);
    EXPECT_EQ(h.arrive(2, 1000, {}), 1);
    EXPECT_EQ(h.arrive(3, 1000, {}), 1);
    // big now has 4 in system: 5/1024 > 1/256 -> mid gets one.
    EXPECT_EQ(h.arrive(4, 1000, {}), 2);
}

TEST(Placement, AffinityFollowsTheScoreThenLoad)
{
    PlacedHarness h(fleetConfig(PlacementPolicy::Affinity));
    ArrivalHints warm;
    warm.affinity = {0, 0, 3};
    EXPECT_EQ(h.arrive(0, 100, warm), 2) << "max affinity wins";
    // Cold request: falls back to least-loaded (device 0 and 1 idle).
    EXPECT_EQ(h.arrive(1, 100, {}), 0);
    ArrivalHints tied;
    tied.affinity = {2, 2, 0};
    EXPECT_EQ(h.arrive(2, 100, tied), 1)
        << "affinity tie -> less-loaded of the tied devices";
}

TEST(Placement, IneligibleDevicesAreNeverChosen)
{
    PlacedHarness h(fleetConfig(PlacementPolicy::LeastLoaded));
    ArrivalHints only_mid;
    only_mid.eligible = {0, 0, 1};
    only_mid.handoff_vus = {0, 0, 0};
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(h.arrive(i, 50, only_mid), 2) << "request " << i;
    }
}

TEST(Placement, HandoffPremiumExtendsTheServiceWindow)
{
    VirtualConfig cfg;
    cfg.devices = {{"a", 1}, {"b", 1}};
    cfg.place = PlacementPolicy::LeastLoaded;
    std::vector<std::pair<int64_t, int64_t>> windows;
    VirtualScheduler vs(
        cfg, [](size_t, int) { return int64_t(10); },
        [&windows](size_t, int, int64_t s, int64_t f) {
            windows.push_back({s, f});
        });
    ArrivalHints free_hints;
    free_hints.eligible = {1, 1};
    free_hints.handoff_vus = {0, 0};
    ArrivalHints paid;
    paid.eligible = {1, 1};
    paid.handoff_vus = {7, 7};
    std::string reason;
    int device = -1;
    ASSERT_TRUE(vs.arrive(0, 0, 1, free_hints, &reason, &device));
    ASSERT_TRUE(vs.arrive(1, 0, 1, paid, &reason, &device));
    vs.drain();
    ASSERT_EQ(windows.size(), 2u);
    EXPECT_EQ(windows[0].second - windows[0].first, 10);
    EXPECT_EQ(windows[1].second - windows[1].first, 17)
        << "duration + hand-off premium";
}

// ---------------------------------------------------------------------------
// Fleet daemon end to end
// ---------------------------------------------------------------------------

struct DaemonRun
{
    std::vector<std::string> responses;
    DaemonReport report;
    uint64_t failures = 0;
};

DaemonRun
runDaemon(const std::vector<Request> &requests, DaemonOptions opts)
{
    DaemonRun out;
    Daemon daemon(opts);
    for (const Request &req : requests) {
        daemon.enqueue(req, [&out](const std::string &line) {
            out.responses.push_back(line);
        });
    }
    daemon.closeIntake();
    out.report = daemon.run();
    out.failures = daemon.failures();
    return out;
}

/** A canned 4-client trace dense enough that queues form at clock 10. */
std::vector<Request>
cannedTrace(int n = 32)
{
    std::vector<Request> reqs;
    const char *scenarios[] = {"gemm", "quickstart_conv", "depthwise",
                               "gemm_skewed"};
    for (int i = 0; i < n; ++i) {
        Request req;
        req.id = strCat("r", i);
        req.client = strCat("c", i % 4);
        req.scenario = scenarios[i % 4];
        req.arrival_us = int64_t(i) * 40;
        reqs.push_back(req);
    }
    return reqs;
}

DaemonOptions
fleetOptions(const std::string &spec, PlacementPolicy place, int jobs = 1)
{
    DaemonOptions opts;
    opts.num_threads = jobs;
    opts.clock_mhz = 10; // cycles are expensive -> queues actually form
    std::string error;
    EXPECT_TRUE(parseFleetSpec(spec, &opts.fleet, &error)) << error;
    opts.fleet.place = place;
    return opts;
}

TEST(FleetDaemon, PerDeviceCountsAreDeterministicPerPolicy)
{
    // The canned trace must land on the same devices every run — and the
    // three policies must shard it differently.
    const std::vector<Request> reqs = cannedTrace();
    std::map<std::string, std::vector<uint64_t>> counts;
    for (const PlacementPolicy place :
         {PlacementPolicy::Affinity, PlacementPolicy::LeastLoaded,
          PlacementPolicy::Capability}) {
        const DaemonRun a = runDaemon(
            reqs, fleetOptions("feather:16x16,feather:32x32,tpu-like",
                               place, 1));
        const DaemonRun b = runDaemon(
            reqs, fleetOptions("feather:16x16,feather:32x32,tpu-like",
                               place, 8));
        ASSERT_EQ(a.report.devices.size(), 3u);
        uint64_t total = 0;
        std::vector<uint64_t> per_device;
        for (size_t d = 0; d < 3; ++d) {
            EXPECT_EQ(a.report.devices[d].requests,
                      b.report.devices[d].requests)
                << toString(place) << " device " << d;
            per_device.push_back(a.report.devices[d].requests);
            total += a.report.devices[d].requests;
        }
        EXPECT_EQ(total, a.report.accepted) << toString(place);
        counts[toString(place)] = per_device;
    }
    EXPECT_NE(counts["affinity"], counts["capability"]);
    EXPECT_NE(counts["least-loaded"], counts["capability"]);
}

TEST(FleetDaemon, PoliciesProduceMeasurablyDifferentTailLatency)
{
    // Acceptance criterion: at least one trace where the three policies
    // disagree on p95 virtual latency.
    const std::vector<Request> reqs = cannedTrace(48);
    std::set<int64_t> p95;
    for (const PlacementPolicy place :
         {PlacementPolicy::Affinity, PlacementPolicy::LeastLoaded,
          PlacementPolicy::Capability}) {
        const DaemonRun run = runDaemon(
            reqs, fleetOptions("feather:16x16,feather:32x32,tpu-like",
                               place));
        p95.insert(run.report.p95_vus);
    }
    EXPECT_EQ(p95.size(), 3u)
        << "the three placement policies must differ on p95";
}

TEST(FleetDaemon, ResponsesAndReportAreBitIdenticalAcrossJobs)
{
    const std::vector<Request> reqs = cannedTrace(40);
    const DaemonRun a = runDaemon(
        reqs, fleetOptions("feather:16x16,feather:32x32,tpu-like",
                           PlacementPolicy::Capability, 1));
    const DaemonRun b = runDaemon(
        reqs, fleetOptions("feather:16x16,feather:32x32,tpu-like",
                           PlacementPolicy::Capability, 8));
    ASSERT_EQ(a.responses.size(), b.responses.size());
    for (size_t i = 0; i < a.responses.size(); ++i) {
        EXPECT_EQ(zeroWallJson(a.responses[i]), zeroWallJson(b.responses[i]))
            << "response " << i;
    }
    EXPECT_EQ(golden::zeroWallCsv(a.report.toCsv()),
              golden::zeroWallCsv(b.report.toCsv()));
    EXPECT_EQ(golden::zeroWallJson(a.report.toJson()),
              golden::zeroWallJson(b.report.toJson()));
}

TEST(FleetDaemon, ResponsesCarryDeviceAndHandoffFields)
{
    const std::vector<Request> reqs = cannedTrace(16);
    const DaemonRun run = runDaemon(
        reqs, fleetOptions("feather:16x16,feather:32x32",
                           PlacementPolicy::LeastLoaded));
    ASSERT_FALSE(run.responses.empty());
    for (const std::string &line : run.responses) {
        if (line.find("\"status\":\"ok\"") == std::string::npos) continue;
        EXPECT_NE(line.find("\"device\":\""), std::string::npos) << line;
        EXPECT_NE(line.find("\"handoff_vus\":"), std::string::npos) << line;
    }
}

TEST(FleetDaemon, HandoffsArePricedOnlyAcrossDevices)
{
    // One client, sticky affinity: after the first placement every
    // request has warm affinity on its device, so no hand-offs happen.
    std::vector<Request> reqs;
    for (int i = 0; i < 12; ++i) {
        Request req;
        req.id = strCat("r", i);
        req.client = "solo";
        req.scenario = "gemm";
        req.arrival_us = int64_t(i) * 2000;
        reqs.push_back(req);
    }
    const DaemonRun sticky = runDaemon(
        reqs, fleetOptions("feather:16x16,feather:32x32",
                           PlacementPolicy::Affinity));
    uint64_t handoffs = 0;
    for (const DeviceRow &d : sticky.report.devices) {
        handoffs += d.handoffs;
    }
    EXPECT_EQ(handoffs, 0u) << "affinity keeps one idle client home";
    for (const std::string &line : sticky.responses) {
        EXPECT_EQ(line.find("\"handoff_vus\":0") == std::string::npos,
                  line.find("\"status\":\"ok\"") == std::string::npos)
            << line;
    }
}

TEST(FleetDaemon, HomogeneousRunsKeepTheClassicSchemas)
{
    // No --fleet: no device rows, no fleet/place keys — byte-compatible
    // with pre-fleet reports.
    std::vector<Request> reqs = cannedTrace(8);
    DaemonOptions opts;
    const DaemonRun run = runDaemon(reqs, opts);
    EXPECT_TRUE(run.report.devices.empty());
    EXPECT_EQ(run.report.toJson().find("\"devices\""), std::string::npos);
    EXPECT_EQ(run.report.toJson().find("\"fleet\""), std::string::npos);
    EXPECT_EQ(run.report.toCsv().find("\ndevice,"), std::string::npos);
    for (const std::string &line : run.responses) {
        EXPECT_EQ(line.find("\"device\""), std::string::npos) << line;
    }
}

TEST(FleetDaemon, SharedValidationErrorsStillNameTheCause)
{
    // Shape-independent validation (unknown workload, bad overrides) keeps
    // its legacy one-line errors in fleet mode, attributed to the client.
    Request req;
    req.id = "r0";
    req.client = "c0";
    req.scenario = "no_such_scenario";
    req.arrival_us = 0;
    const DaemonRun run = runDaemon(
        {req}, fleetOptions("feather:8x8", PlacementPolicy::LeastLoaded));
    EXPECT_EQ(run.report.errors, 1u);
    ASSERT_EQ(run.responses.size(), 1u);
    EXPECT_NE(run.responses[0].find("no_such_scenario"), std::string::npos)
        << run.responses[0];
    EXPECT_NE(run.responses[0].find("\"status\":\"ERROR\""),
              std::string::npos)
        << run.responses[0];
}

// ---------------------------------------------------------------------------
// Fleet CLI surface
// ---------------------------------------------------------------------------

TEST(FleetCli, ParsesFleetAndPlace)
{
    ServeCliConfig config;
    std::string error;
    ASSERT_TRUE(parseServeCli({"--stdin", "--fleet",
                               "feather:16x16,tpu-like", "--place",
                               "capability"},
                              &config, &error))
        << error;
    ASSERT_EQ(config.daemon.fleet.devices.size(), 2u);
    EXPECT_EQ(config.daemon.fleet.place, PlacementPolicy::Capability);
}

TEST(FleetCli, RejectsConflictsAndBadValuesNamingTheFlag)
{
    ServeCliConfig config;
    std::string error;
    EXPECT_FALSE(parseServeCli({"--stdin", "--fleet", "feather:16x16",
                                "--vworkers", "4"},
                               &config, &error));
    EXPECT_NE(error.find("--fleet"), std::string::npos) << error;
    EXPECT_NE(error.find("--vworkers"), std::string::npos) << error;

    EXPECT_FALSE(parseServeCli({"--stdin", "--place", "capability"},
                               &config, &error));
    EXPECT_NE(error.find("--place"), std::string::npos) << error;
    EXPECT_NE(error.find("--fleet"), std::string::npos) << error;

    EXPECT_FALSE(parseServeCli({"--stdin", "--fleet", "feather:16x16",
                                "--place", "random"},
                               &config, &error));
    EXPECT_NE(error.find("--place"), std::string::npos) << error;
    EXPECT_NE(error.find("least-loaded"), std::string::npos) << error;

    EXPECT_FALSE(parseServeCli({"--stdin", "--fleet", "warp-core"},
                               &config, &error));
    EXPECT_NE(error.find("unknown device 'warp-core'"), std::string::npos)
        << error;
    EXPECT_EQ(error.find('\n'), std::string::npos) << error;
}

// ---------------------------------------------------------------------------
// Fleet report schema (golden lock; see tests/golden/)
// ---------------------------------------------------------------------------

namespace schema {

DaemonReport
sampleFleetReport()
{
    return runDaemon(cannedTrace(12),
                     fleetOptions("feather:16x16,feather:32x32,tpu-like",
                                  PlacementPolicy::LeastLoaded))
        .report;
}

TEST(FleetReportSchema, DeviceCsvColumnsMatchGolden)
{
    const std::vector<std::string> golden =
        golden::readGoldenLines("daemon_fleet_csv_headers.golden");
    ASSERT_EQ(golden.size(), 2u)
        << "client-section header + device-section header";
    const std::string csv = sampleFleetReport().toCsv();
    std::vector<std::string> headers;
    size_t start = 0;
    bool at_header = true;
    for (size_t i = 0; i <= csv.size(); ++i) {
        if (i == csv.size() || csv[i] == '\n') {
            const std::string line = csv.substr(start, i - start);
            if (at_header && !line.empty()) headers.push_back(line);
            at_header = line.empty(); // header follows each blank line
            start = i + 1;
        }
    }
    EXPECT_EQ(headers, golden)
        << "fleet CSV sections are locked; update the golden file "
           "deliberately when extending the schema";
}

TEST(FleetReportSchema, JsonKeysMatchGolden)
{
    const std::vector<std::string> golden =
        golden::readGoldenLines("daemon_fleet_json_keys.golden");
    EXPECT_EQ(golden::jsonKeys(sampleFleetReport().toJson()), golden)
        << "fleet JSON keys are locked; update the golden file "
           "deliberately when extending the schema";
}

} // namespace schema

// ---------------------------------------------------------------------------
// Staged pipelines in the DES (graph-over-fleet requests)
// ---------------------------------------------------------------------------

/** DES harness for staged arrivals: fixed per-(index, stage) durations,
 *  records every stage window and the final completion. */
struct StagedHarness
{
    struct Window
    {
        size_t index;
        int stage;
        int device;
        int64_t start;
        int64_t finish;
    };

    std::vector<std::vector<int64_t>> stage_durations; ///< [index][stage]
    std::vector<Window> windows;
    std::vector<Window> completions; ///< stage = last stage index

    explicit StagedHarness(VirtualConfig cfg)
        : vs(cfg, [](size_t, int) { return int64_t(50); },
             [this](size_t i, int device, int64_t s, int64_t f) {
                 completions.push_back({i, -1, device, s, f});
             })
    {
        vs.setStageHooks(
            [this](size_t i, int stage, int) {
                return stage_durations[i][size_t(stage)];
            },
            [this](size_t i, int stage, int device, int64_t s, int64_t f) {
                windows.push_back({i, stage, device, s, f});
            });
    }

    void
    arrive(size_t index, int64_t at, std::vector<StagePlan> stages,
           std::vector<int64_t> durations)
    {
        ASSERT_EQ(index, stage_durations.size());
        stage_durations.push_back(std::move(durations));
        std::string reason;
        ASSERT_TRUE(vs.arriveStaged(index, at, 1, std::move(stages),
                                    &reason))
            << reason;
    }

    VirtualScheduler vs;
};

VirtualConfig
twoDeviceConfig()
{
    VirtualConfig cfg;
    cfg.devices = {{"a", 1}, {"b", 1}};
    cfg.place = PlacementPolicy::LeastLoaded;
    return cfg;
}

TEST(StagedScheduler, StagesRunInOrderAndChargeTheHandoffPremium)
{
    StagedHarness h(twoDeviceConfig());
    h.arrive(0, 0, {{0, 0}, {1, 5}}, {10, 20});
    h.vs.drain();
    ASSERT_EQ(h.windows.size(), 2u);
    EXPECT_EQ(h.windows[0].device, 0);
    EXPECT_EQ(h.windows[0].start, 0);
    EXPECT_EQ(h.windows[0].finish, 10);
    EXPECT_EQ(h.windows[1].device, 1);
    EXPECT_EQ(h.windows[1].start, 10);
    EXPECT_EQ(h.windows[1].finish, 35) << "20 service + 5 hand-off";
    // One completion, spanning first start to last finish.
    ASSERT_EQ(h.completions.size(), 1u);
    EXPECT_EQ(h.completions[0].device, 1);
    EXPECT_EQ(h.completions[0].start, 0);
    EXPECT_EQ(h.completions[0].finish, 35);
}

TEST(StagedScheduler, IndependentPipelinesInterleaveInVirtualTime)
{
    // Two identical a->b pipelines: request 1's first stage overlaps
    // request 0's second stage, so the makespan is 3 windows, not 4.
    StagedHarness h(twoDeviceConfig());
    h.arrive(0, 0, {{0, 0}, {1, 0}}, {10, 10});
    h.arrive(1, 0, {{0, 0}, {1, 0}}, {10, 10});
    h.vs.drain();
    ASSERT_EQ(h.completions.size(), 2u);
    EXPECT_EQ(h.completions[0].finish, 20);
    EXPECT_EQ(h.completions[1].finish, 30)
        << "stage interleaving: 30, not the serialized 40";
    EXPECT_EQ(h.vs.lastFinish(), 30);
}

TEST(StagedScheduler, ContinuationStageQueuesBehindABusyDevice)
{
    StagedHarness h(twoDeviceConfig());
    // Request 0 occupies device b until t=100; request 1's second stage
    // must wait for it.
    h.arrive(0, 0, {{1, 0}}, {100});
    h.arrive(1, 0, {{0, 0}, {1, 0}}, {10, 10});
    h.vs.drain();
    ASSERT_EQ(h.windows.size(), 3u);
    const StagedHarness::Window &w = h.windows.back();
    EXPECT_EQ(w.index, 1u);
    EXPECT_EQ(w.stage, 1);
    EXPECT_EQ(w.start, 100) << "waited for device b to free";
    EXPECT_EQ(w.finish, 110);
}

TEST(StagedScheduler, ContinuationReclaimsItsOwnDeviceBeforeWaiters)
{
    // Both stages of request 0 are pinned to device a; request 1 waits
    // on a. The continuation starts immediately at its own stage-0
    // finish — the waiter must not double-claim the freed server.
    StagedHarness h(twoDeviceConfig());
    h.arrive(0, 0, {{0, 0}, {0, 0}}, {10, 10});
    h.arrive(1, 0, {{0, 0}}, {10});
    h.vs.drain();
    ASSERT_EQ(h.windows.size(), 3u);
    EXPECT_EQ(h.windows[1].index, 0u);
    EXPECT_EQ(h.windows[1].stage, 1);
    EXPECT_EQ(h.windows[1].start, 10);
    EXPECT_EQ(h.windows[2].index, 1u);
    EXPECT_EQ(h.windows[2].start, 20) << "waiter runs after the pipeline";
    EXPECT_EQ(h.vs.lastFinish(), 30);
}

// ---------------------------------------------------------------------------
// Graph-over-fleet requests end to end
// ---------------------------------------------------------------------------

/** One whole-graph request (mobilenet_slice splits on the CI fleet). */
Request
graphRequest(const std::string &id, const std::string &client, int64_t at)
{
    Request req;
    req.id = id;
    req.client = client;
    req.model = "mobilenet_slice";
    req.arrival_us = at;
    return req;
}

TEST(GraphOverFleet, StagedResponseCarriesTheDevicePath)
{
    const DaemonRun run = runDaemon(
        {graphRequest("g0", "c0", 0)},
        fleetOptions("feather:16x16,feather:32x32,tpu-like",
                     PlacementPolicy::LeastLoaded));
    ASSERT_EQ(run.responses.size(), 1u);
    const std::string &line = run.responses[0];
    EXPECT_NE(line.find("\"status\":\"ok\""), std::string::npos) << line;
    // The fleet DP splits mobilenet_slice 32x32 -> 16x16, and the
    // response's device field names the whole pipeline.
    EXPECT_NE(line.find("\"device\":\"feather:32x32>feather:16x16\""),
              std::string::npos)
        << line;
    EXPECT_EQ(line.find("\"handoff_vus\":0"), std::string::npos)
        << "the cross-device edge must be priced: " << line;
}

TEST(GraphOverFleet, EachStageIsAccountedOnItsOwnDevice)
{
    const DaemonRun run = runDaemon(
        {graphRequest("g0", "c0", 0)},
        fleetOptions("feather:16x16,feather:32x32,tpu-like",
                     PlacementPolicy::LeastLoaded));
    ASSERT_EQ(run.report.devices.size(), 3u);
    std::map<std::string, DeviceRow> rows;
    for (const DeviceRow &row : run.report.devices) {
        rows[row.device] = row;
    }
    // One DES service window per stage: both pipeline devices served the
    // request, the third sat idle.
    EXPECT_EQ(rows["feather:32x32"].requests, 1u);
    EXPECT_EQ(rows["feather:16x16"].requests, 1u);
    EXPECT_EQ(rows["tpu-like"].requests, 0u);
    EXPECT_GT(rows["feather:32x32"].busy_vus, 0);
    EXPECT_GT(rows["feather:16x16"].busy_vus, 0);
    // The hand-off premium lands on the device the edge feeds.
    EXPECT_EQ(rows["feather:16x16"].handoffs, 1u);
    EXPECT_GT(rows["feather:16x16"].handoff_vus, 0);
    EXPECT_EQ(rows["feather:32x32"].handoffs, 0u);
}

TEST(GraphOverFleet, IndependentGraphRequestsInterleaveAcrossStages)
{
    const DaemonRun one = runDaemon(
        {graphRequest("g0", "c0", 0)},
        fleetOptions("feather:16x16,feather:32x32,tpu-like",
                     PlacementPolicy::LeastLoaded));
    const DaemonRun two = runDaemon(
        {graphRequest("g0", "c0", 0), graphRequest("g1", "c1", 1)},
        fleetOptions("feather:16x16,feather:32x32,tpu-like",
                     PlacementPolicy::LeastLoaded));
    ASSERT_EQ(one.report.errors, 0u);
    ASSERT_EQ(two.report.errors, 0u);
    const int64_t solo = one.report.makespan_vus;
    // Pipelining: g1's first stage runs while g0's second stage is in
    // flight, so two requests finish well before 2x one request.
    EXPECT_LT(two.report.makespan_vus, 2 * solo);
    EXPECT_GT(two.report.makespan_vus, solo);
}

TEST(GraphOverFleet, MixedTraceIsBitIdenticalAcrossJobs)
{
    // Graph requests riding a scenario-dense trace: every response and
    // every non-wall report field must be identical at any pool size.
    std::vector<Request> reqs = cannedTrace(16);
    reqs.insert(reqs.begin() + 4, graphRequest("g0", "c0", 170));
    reqs.insert(reqs.begin() + 9, graphRequest("g1", "c2", 330));
    for (size_t i = 0; i < reqs.size(); ++i) {
        reqs[i].arrival_us = int64_t(i) * 40; // restore monotone arrivals
    }
    const DaemonRun a = runDaemon(
        reqs, fleetOptions("feather:16x16,feather:32x32,tpu-like",
                           PlacementPolicy::Affinity, 1));
    const DaemonRun b = runDaemon(
        reqs, fleetOptions("feather:16x16,feather:32x32,tpu-like",
                           PlacementPolicy::Affinity, 8));
    ASSERT_EQ(a.responses.size(), b.responses.size());
    for (size_t i = 0; i < a.responses.size(); ++i) {
        EXPECT_EQ(golden::zeroWallJson(a.responses[i]),
                  golden::zeroWallJson(b.responses[i]))
            << "response " << i;
    }
    EXPECT_EQ(golden::zeroWallJson(a.report.toJson()),
              golden::zeroWallJson(b.report.toJson()));
}

TEST(GraphOverFleet, SameClientStreamPaysTheMigrationHandoff)
{
    // c0's first graph request parks its stream on the pipeline's last
    // device; a later scenario request placed elsewhere pays the
    // client-stream hand-off, while a graph request re-entering the
    // pipeline pays it on its first stage.
    std::vector<Request> reqs = {graphRequest("g0", "c0", 0),
                                 graphRequest("g1", "c0", 1)};
    const DaemonRun run = runDaemon(
        reqs, fleetOptions("feather:16x16,feather:32x32,tpu-like",
                           PlacementPolicy::LeastLoaded));
    ASSERT_EQ(run.responses.size(), 2u);
    // g0: cross-device pipeline edge only. g1: that edge plus the
    // client-stream migration back to the pipeline head, so its total
    // hand-off premium is strictly larger.
    const auto premium = [](const std::string &line) {
        const size_t at = line.find("\"handoff_vus\":");
        EXPECT_NE(at, std::string::npos) << line;
        return std::stoll(line.substr(at + 14));
    };
    int64_t g0 = 0;
    int64_t g1 = 0;
    for (const std::string &line : run.responses) {
        if (line.find("\"id\":\"g0\"") != std::string::npos) {
            g0 = premium(line);
        }
        if (line.find("\"id\":\"g1\"") != std::string::npos) {
            g1 = premium(line);
        }
    }
    EXPECT_GT(g0, 0);
    EXPECT_GT(g1, g0);
}

} // namespace
} // namespace daemon
} // namespace feather
