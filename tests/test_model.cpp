/**
 * @file
 * Tests for the model subsystem: graph binding validation, the model-file
 * parser, the BIRRD reorder switching-cost model, schedule policies, the
 * per-layer DP scheduler (including the headline property: the per-layer
 * schedule never loses to the best fixed dataflow on the built-in
 * graphs), scheduler determinism across thread counts, the model-mode
 * CLI, and the golden-file schema lock of the schedule report.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "golden_util.hpp"
#include "model/graph.hpp"
#include "model/model_cli.hpp"
#include "model/report.hpp"
#include "model/scheduler.hpp"
#include "sim/driver.hpp"

namespace feather {
namespace model {
namespace {

using golden::csvHeader;
using golden::jsonKeys;
using golden::readGoldenLines;

// ---------------------------------------------------------------------------
// ModelGraph
// ---------------------------------------------------------------------------

TEST(ModelGraph, BuiltinsValidateAndResolve)
{
    EXPECT_GE(builtinModels().size(), 3u);
    for (const ModelGraph &g : builtinModels()) {
        EXPECT_EQ(g.validate(), "") << g.name;
        EXPECT_GT(g.totalMacs(), 0) << g.name;
        EXPECT_EQ(findModel(g.name), &g);
    }
    EXPECT_EQ(findModel("nope"), nullptr);
    const std::vector<std::string> names = modelNames();
    EXPECT_NE(std::find(names.begin(), names.end(), "resnet_block"),
              names.end());
}

TEST(ModelGraph, RejectsBrokenChannelBinding)
{
    ModelGraph g;
    g.name = "bad";
    g.layers = {{sim::convLayer("a", 8, 14, 16, 1, 1, 0), 0.02f},
                {sim::convLayer("b", 8, 14, 16, 1, 1, 0), 0.02f}};
    const std::string why = g.validate();
    EXPECT_NE(why.find("16 channels"), std::string::npos) << why;
}

TEST(ModelGraph, RejectsSpatialMismatchAndMixedOps)
{
    ModelGraph g;
    g.name = "bad";
    g.layers = {{sim::convLayer("a", 8, 14, 8, 3, 2, 1), 0.02f}, // -> 7x7
                {sim::convLayer("b", 8, 14, 8, 3, 1, 1), 0.02f}};
    EXPECT_NE(g.validate().find("7x7"), std::string::npos);

    g.layers = {{sim::gemmLayer("fc", 8, 16, 32), 0.02f},
                {sim::convLayer("c", 16, 4, 8, 1, 1, 0), 0.02f}};
    EXPECT_NE(g.validate().find("conv<->GEMM"), std::string::npos);

    g.layers.clear();
    EXPECT_NE(g.validate().find("no layers"), std::string::npos);
}

TEST(ModelGraph, DepthwiseBindsByChannelCount)
{
    ModelGraph g;
    g.name = "dw";
    g.layers = {{sim::convLayer("pw", 8, 14, 16, 1, 1, 0), 0.02f},
                {sim::depthwiseLayer("dw", 16, 14, 3, 1, 1), 0.05f},
                {sim::convLayer("out", 16, 14, 8, 1, 1, 0), 0.02f}};
    EXPECT_EQ(g.validate(), "");
}

// ---------------------------------------------------------------------------
// Model-file parser
// ---------------------------------------------------------------------------

TEST(ModelFile, ParsesDirectivesAndLayerTypes)
{
    const std::string text = "# comment\n"
                             "model tiny\n"
                             "aw 4\n"
                             "ah 8\n"
                             "conv name=stem c=8 hw=14 m=16 rs=3 pad=1\n"
                             "depthwise c=16 hw=14 rs=3 pad=1 qm=0.05\n"
                             "pointwise name=pw c=16 hw=14 m=8\n";
    std::string error;
    const auto g = parseModelText(text, "fallback", &error);
    ASSERT_TRUE(g.has_value()) << error;
    EXPECT_EQ(g->name, "tiny");
    EXPECT_EQ(g->default_aw, 4);
    EXPECT_EQ(g->default_ah, 8);
    ASSERT_EQ(g->layers.size(), 3u);
    EXPECT_EQ(g->layers[0].spec.name, "stem");
    EXPECT_EQ(g->layers[0].spec.conv.r, 3);
    EXPECT_EQ(g->layers[1].spec.type, OpType::DepthwiseConv);
    EXPECT_FLOAT_EQ(g->layers[1].multiplier, 0.05f);
    EXPECT_EQ(g->layers[2].spec.conv.r, 1);
    EXPECT_EQ(g->validate(), "");
}

TEST(ModelFile, ParsesGemmChain)
{
    std::string error;
    const auto g = parseModelText("gemm name=a m=8 n=16 k=32\n"
                                  "gemm name=b m=8 n=4 k=16\n",
                                  "mlp", &error);
    ASSERT_TRUE(g.has_value()) << error;
    EXPECT_EQ(g->name, "mlp");
    EXPECT_EQ(g->layers[0].spec.gemm.n, 16);
}

TEST(ModelFile, ErrorsNameTheLine)
{
    std::string error;
    EXPECT_FALSE(parseModelText("conv c=8 hw=14 m=8\nwat x=1\n", "t",
                                &error));
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;
    EXPECT_NE(error.find("unknown layer type 'wat'"), std::string::npos);

    EXPECT_FALSE(parseModelText("conv c=8 hw=14 m=8 zap=3\n", "t", &error));
    EXPECT_NE(error.find("unknown key 'zap'"), std::string::npos) << error;

    EXPECT_FALSE(parseModelText("conv hw=14 m=8\n", "t", &error));
    EXPECT_NE(error.find("needs c="), std::string::npos) << error;

    EXPECT_FALSE(parseModelText("conv c=8 hw=14 m=8 qm=zero\n", "t",
                                &error));
    EXPECT_NE(error.find("qm"), std::string::npos) << error;

    // Pointwise layers are fixed at r=s=1; kernel keys must be rejected.
    EXPECT_FALSE(parseModelText("pointwise c=8 hw=14 m=8 rs=3\n", "t",
                                &error));
    EXPECT_NE(error.find("unknown key 'rs' for a pointwise layer"),
              std::string::npos)
        << error;

    // Keys another layer type consumes are still typos here: a silently
    // dropped m= on a depthwise layer would schedule a different model.
    EXPECT_FALSE(parseModelText("depthwise c=16 hw=14 rs=3 pad=1 m=999\n",
                                "t", &error));
    EXPECT_NE(error.find("unknown key 'm' for a depthwise layer"),
              std::string::npos)
        << error;
    EXPECT_FALSE(parseModelText("gemm m=8 n=4 k=4 stride=2\n", "t",
                                &error));
    EXPECT_NE(error.find("unknown key 'stride'"), std::string::npos)
        << error;

    // Conflicting duplicates must not silently resolve to either value.
    EXPECT_FALSE(parseModelText("conv c=8 hw=14 m=16 c=32\n", "t",
                                &error));
    EXPECT_NE(error.find("duplicate key 'c'"), std::string::npos) << error;

    // Zero is invalid for every dimension key except pad (a zero stride
    // or extent would crash the shape math downstream).
    EXPECT_FALSE(parseModelText("conv c=8 hw=14 m=16 rs=3 stride=0\n", "t",
                                &error));
    EXPECT_NE(error.find("stride needs a positive integer"),
              std::string::npos)
        << error;
    EXPECT_FALSE(parseModelText("conv c=8 hw=14 m=16 w=0\n", "t", &error));
    EXPECT_NE(error.find("w needs a positive integer"), std::string::npos)
        << error;
    EXPECT_TRUE(parseModelText("conv c=8 hw=14 m=16 rs=3 pad=0\n", "t",
                               &error)
                    .has_value())
        << error;

    // A per-line parse pass is not enough: the chain must also bind.
    EXPECT_FALSE(parseModelText("conv c=8 hw=14 m=8\n"
                                "conv c=99 hw=14 m=8\n",
                                "t", &error));
    EXPECT_NE(error.find("8 channels"), std::string::npos) << error;
}

TEST(ModelFile, LoadModelPrefersBuiltinsAndListsNamesOnFailure)
{
    std::string error;
    const auto g = loadModel("resnet_block", &error);
    ASSERT_TRUE(g.has_value());
    EXPECT_EQ(g->layers.size(), 3u);

    EXPECT_FALSE(loadModel("no_such_model", &error).has_value());
    EXPECT_NE(error.find("unknown model 'no_such_model'"),
              std::string::npos);
    for (const std::string &name : modelNames()) {
        EXPECT_NE(error.find(name), std::string::npos) << error;
    }
}

// ---------------------------------------------------------------------------
// Switching-cost model
// ---------------------------------------------------------------------------

TEST(ReorderCost, ZeroWhenConcordant)
{
    Extents e;
    e[Dim::C] = 8;
    e[Dim::H] = 4;
    e[Dim::W] = 4;
    const Layout l = Layout::parse("HWC_C8");
    EXPECT_EQ(reorderCost(l, l, e), 0);
}

TEST(ReorderCost, CountsDistinctSourceLinesPerDestinationLine)
{
    // 2x2x2 CHW tensor: HWC_C2 lines hold {(c=0..1, h, w)}, CHW_W2 lines
    // hold {(c, h, w=0..1)}. Every destination line draws from exactly 2
    // source lines; 4 destination lines -> 8 read cycles.
    Extents e;
    e[Dim::C] = 2;
    e[Dim::H] = 2;
    e[Dim::W] = 2;
    EXPECT_EQ(reorderCost(Layout::parse("CHW_W2"), Layout::parse("HWC_C2"),
                          e),
              8);
    // The transpose in the other direction is symmetric here.
    EXPECT_EQ(reorderCost(Layout::parse("HWC_C2"), Layout::parse("CHW_W2"),
                          e),
              8);
}

TEST(ReorderCost, GrowsWithTensorSize)
{
    Extents small;
    small[Dim::C] = 4;
    small[Dim::H] = 4;
    small[Dim::W] = 4;
    Extents big = small;
    big[Dim::H] = 16;
    big[Dim::W] = 16;
    const Layout src = Layout::parse("CHW_W4");
    const Layout dst = Layout::parse("HWC_C4");
    EXPECT_LT(reorderCost(src, dst, small), reorderCost(src, dst, big));
}

// ---------------------------------------------------------------------------
// Schedule policies
// ---------------------------------------------------------------------------

TEST(SchedulePolicy, ParsesAllForms)
{
    EXPECT_EQ(parseSchedule("per-layer")->kind, ScheduleKind::PerLayer);
    EXPECT_EQ(parseSchedule("greedy")->kind, ScheduleKind::Greedy);
    const auto fixed = parseSchedule("fixed:wp");
    ASSERT_TRUE(fixed.has_value());
    EXPECT_EQ(fixed->kind, ScheduleKind::Fixed);
    EXPECT_EQ(fixed->fixed, sim::DataflowKind::WindowParallel);
    EXPECT_EQ(toString(*fixed), "fixed:window-parallel");
    EXPECT_EQ(toString(*parseSchedule("fixed:canonical")),
              "fixed:canonical");

    std::string error;
    EXPECT_FALSE(parseSchedule("fixed:zz", &error).has_value());
    EXPECT_NE(error.find("unknown schedule"), std::string::npos);
    EXPECT_FALSE(parseSchedule("random", &error).has_value());
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

TEST(Scheduler, EnumeratesAndEvaluatesCandidates)
{
    const ModelGraph *g = findModel("resnet_block");
    ASSERT_NE(g, nullptr);
    Scheduler s;
    std::string error;
    const auto eval = s.evaluate(*g, &error);
    ASSERT_TRUE(eval.has_value()) << error;
    ASSERT_EQ(eval->layers.size(), 3u);
    for (const auto &cands : eval->layers) {
        EXPECT_GE(cands.size(), 2u) << "conv layers have distinct families";
        for (const Candidate &c : cands) {
            EXPECT_GT(c.est_cycles, 0);
            EXPECT_GT(c.macs, 0);
            EXPECT_TRUE(c.bit_exact);
            EXPECT_FALSE(c.kinds.empty());
        }
    }
    EXPECT_GT(s.cache().stats().lookups(), 0u);
}

TEST(Scheduler, GemmFamiliesCollapseToOneCandidate)
{
    const ModelGraph *g = findModel("bert_mlp");
    ASSERT_NE(g, nullptr);
    Scheduler s;
    std::string error;
    const auto eval = s.evaluate(*g, &error);
    ASSERT_TRUE(eval.has_value()) << error;
    for (const auto &cands : eval->layers) {
        ASSERT_EQ(cands.size(), 1u);
        EXPECT_EQ(cands[0].kinds.size(), 3u)
            << "all three families plan to the canonical GEMM mapping";
    }
}

TEST(Scheduler, PerLayerNeverLosesToBestFixedOnBuiltins)
{
    for (const ModelGraph &g : builtinModels()) {
        Scheduler s;
        std::string error;
        const auto cmp = s.compare(
            g, SchedulePolicy{ScheduleKind::PerLayer,
                              sim::DataflowKind::Canonical, {}},
            &error);
        ASSERT_TRUE(cmp.has_value()) << g.name << ": " << error;
        const ScheduleResult &p = cmp->primary();
        EXPECT_TRUE(p.bitExact()) << g.name;
        const int best = cmp->bestFixed();
        ASSERT_GE(best, 0) << g.name;
        EXPECT_LE(p.cycles, cmp->schedules[size_t(best)].cycles) << g.name;
        EXPECT_GE(cmp->speedupVsBestFixed(), 1.0) << g.name;
        for (const ScheduleResult &r : cmp->schedules) {
            EXPECT_TRUE(r.bitExact()) << g.name << "/" << r.schedule;
        }
    }
}

TEST(Scheduler, PerLayerStrictlyBeatsAFixedDataflowOnResnetBlock)
{
    const ModelGraph *g = findModel("resnet_block");
    ASSERT_NE(g, nullptr);
    Scheduler s;
    std::string error;
    const auto cmp = s.compare(
        *g,
        SchedulePolicy{ScheduleKind::PerLayer, sim::DataflowKind::Canonical, {}},
        &error);
    ASSERT_TRUE(cmp.has_value()) << error;
    bool beat_one = false;
    for (const ScheduleResult &r : cmp->schedules) {
        if (r.schedule.rfind("fixed:", 0) == 0 &&
            cmp->primary().cycles < r.cycles) {
            beat_one = true;
        }
    }
    EXPECT_TRUE(beat_one)
        << "per-layer must strictly beat at least one fixed dataflow";
}

TEST(Scheduler, FixedScheduleMatchesItsStandaloneEstimates)
{
    // A uniform schedule hands off concordant layouts at every edge, so
    // the standalone candidate estimates must compose exactly to the
    // measured chain (est_total == cycles, all reorder prices zero).
    const ModelGraph *g = findModel("resnet_block");
    ASSERT_NE(g, nullptr);
    Scheduler s;
    std::string error;
    const auto eval = s.evaluate(*g, &error);
    ASSERT_TRUE(eval.has_value()) << error;
    const auto fixed = s.schedule(
        *g, *eval,
        SchedulePolicy{ScheduleKind::Fixed,
                       sim::DataflowKind::WindowParallel, {}},
        &error);
    ASSERT_TRUE(fixed.has_value()) << error;
    EXPECT_EQ(fixed->est_total, fixed->cycles);
    for (const LayerChoice &l : fixed->layers) {
        EXPECT_EQ(l.reorder_cycles, 0);
        EXPECT_EQ(l.est_cycles, l.cycles);
        EXPECT_EQ(l.dataflow, sim::DataflowKind::WindowParallel);
    }
}

TEST(Scheduler, GreedyRespectsPreviousChoice)
{
    const ModelGraph *g = findModel("resnet_block");
    ASSERT_NE(g, nullptr);
    Scheduler s;
    std::string error;
    const auto eval = s.evaluate(*g, &error);
    ASSERT_TRUE(eval.has_value()) << error;
    const auto greedy = s.schedule(
        *g, *eval,
        SchedulePolicy{ScheduleKind::Greedy, sim::DataflowKind::Canonical, {}},
        &error);
    ASSERT_TRUE(greedy.has_value()) << error;
    EXPECT_TRUE(greedy->bitExact());
    EXPECT_LE(greedy->layers[0].est_cycles,
              eval->layers[0][0].est_cycles)
        << "greedy starts from the cheapest first-layer candidate";
}

TEST(Scheduler, ReportIsBitIdenticalAcrossThreadCounts)
{
    const ModelGraph *g = findModel("mobilenet_slice");
    ASSERT_NE(g, nullptr);
    std::string csv1, json1;
    for (int threads : {1, 8}) {
        SchedulerOptions opts;
        opts.num_threads = threads;
        Scheduler s(opts);
        std::string error;
        const auto cmp = s.compare(
            *g,
            SchedulePolicy{ScheduleKind::PerLayer,
                           sim::DataflowKind::Canonical, {}},
            &error);
        ASSERT_TRUE(cmp.has_value()) << error;
        const ScheduleReport report{*cmp};
        if (threads == 1) {
            csv1 = golden::zeroWallCsv(report.toCsv());
            json1 = golden::zeroWallJson(report.toJson());
        } else {
            EXPECT_EQ(golden::zeroWallCsv(report.toCsv()), csv1);
            EXPECT_EQ(golden::zeroWallJson(report.toJson()), json1);
        }
    }
}

TEST(Scheduler, RejectsBadArrays)
{
    const ModelGraph *g = findModel("resnet_block");
    ASSERT_NE(g, nullptr);
    SchedulerOptions opts;
    opts.aw = 6; // not a power of two
    Scheduler s(opts);
    std::string error;
    EXPECT_FALSE(s.evaluate(*g, &error).has_value());
    EXPECT_NE(error.find("power of two"), std::string::npos) << error;
}

// ---------------------------------------------------------------------------
// CLI
// ---------------------------------------------------------------------------

TEST(ModelCli, DetectsModelMode)
{
    EXPECT_TRUE(isModelInvocation({"--model", "resnet_block"}));
    EXPECT_TRUE(isModelInvocation({"--list-models"}));
    EXPECT_TRUE(isModelInvocation({"--schedule", "greedy"}));
    EXPECT_FALSE(isModelInvocation({"--workload", "gemm"}));
    EXPECT_FALSE(isModelInvocation({"--sweep", "gemm"}));
}

TEST(ModelCli, ParsesFlagsAndRejectsBadInput)
{
    const ModelCliParse ok = parseModelCli(
        {"--model", "bert_mlp", "--schedule", "greedy", "--aw", "8",
         "--ah", "4", "--seed", "7", "--jobs", "2", "--report-csv", "a.csv",
         "--report-json", "a.json"});
    ASSERT_TRUE(ok.ok()) << ok.error;
    EXPECT_EQ(ok.opts.model, "bert_mlp");
    EXPECT_EQ(ok.opts.schedule, "greedy");
    EXPECT_EQ(ok.opts.aw, 8);
    EXPECT_EQ(ok.opts.jobs, 2);

    EXPECT_FALSE(parseModelCli({"--model"}).ok());
    EXPECT_FALSE(parseModelCli({"--model", "x", "--jobs", "0"}).ok());
    EXPECT_FALSE(parseModelCli({"--model", "x", "--wat"}).ok());
    EXPECT_FALSE(parseModelCli({"--schedule", "greedy"}).ok())
        << "--schedule without --model must demand a model";
}

TEST(ModelCli, ExitCodesAreLocked)
{
    const auto run = [](std::vector<const char *> argv) {
        argv.insert(argv.begin(), "feather_cli");
        return cliMain(int(argv.size()), argv.data());
    };
    EXPECT_EQ(run({"--list-models"}), 0);
    EXPECT_EQ(run({"--model", "bert_mlp", "--schedule", "fixed:ws"}), 0);
    EXPECT_EQ(run({"--model", "no_such_model"}), 2);
    EXPECT_EQ(run({"--model", "bert_mlp", "--schedule", "wat"}), 2);
    EXPECT_EQ(run({"--model"}), 2);
}

// ---------------------------------------------------------------------------
// Schedule report schema (golden lock)
// ---------------------------------------------------------------------------

ScheduleReport
sampleReport()
{
    const ModelGraph *g = findModel("bert_mlp");
    EXPECT_NE(g, nullptr);
    Scheduler s;
    std::string error;
    const auto cmp = s.compare(
        *g,
        SchedulePolicy{ScheduleKind::PerLayer, sim::DataflowKind::Canonical, {}},
        &error);
    EXPECT_TRUE(cmp.has_value()) << error;
    return ScheduleReport{*cmp};
}

TEST(ScheduleReportSchema, CsvColumnsMatchGolden)
{
    const std::vector<std::string> golden =
        readGoldenLines("schedule_report_csv_header.golden");
    ASSERT_EQ(golden.size(), 1u);
    EXPECT_EQ(csvHeader(sampleReport().toCsv()), golden[0])
        << "schedule CSV columns are locked; update the golden file "
           "deliberately when extending the schema";
}

TEST(ScheduleReportSchema, JsonKeysMatchGolden)
{
    const std::vector<std::string> golden =
        readGoldenLines("schedule_report_json_keys.golden");
    EXPECT_EQ(jsonKeys(sampleReport().toJson()), golden)
        << "schedule JSON keys are locked; update the golden file "
           "deliberately when extending the schema";
}

} // namespace
} // namespace model
} // namespace feather
