/**
 * @file
 * Unit tests for the NEST array and mapping machinery (§III-A).
 */

#include <gtest/gtest.h>

#include "nest/nest_array.hpp"
#include "nest/nest_mapping.hpp"

namespace feather {
namespace {

LayerSpec
convLayer(int64_t c, int64_t hw, int64_t m, int64_t rs, int64_t stride = 1)
{
    LayerSpec l;
    l.type = OpType::Conv;
    l.conv = ConvShape{1, c, hw, hw, m, rs, rs, stride, (rs - 1) / 2, false};
    return l;
}

TEST(NestMapping, DegreesAndT1)
{
    NestMapping m;
    m.cols = {{Dim::C, 2}, {Dim::M, 2}};
    m.rows = {{Dim::M, 4}};
    m.local = {{Dim::R, 2}, {Dim::S, 2}};
    EXPECT_EQ(m.colsUsed(), 4);
    EXPECT_EQ(m.rowsUsed(), 4);
    EXPECT_EQ(m.t1(), 4);
    EXPECT_EQ(m.degreeOf(Dim::M), 8); // split across cols and rows
    EXPECT_EQ(m.degreeOf(Dim::C), 2);
    EXPECT_EQ(m.degreeOf(Dim::Q), 1);
}

TEST(NestMapping, ValidateAcceptsFig9Style)
{
    // Fig. 9: 4x4 NEST, 2 input channels x 2 kernels across columns, 4
    // kernels across rows, 2x2 weights local.
    NestMapping m;
    m.cols = {{Dim::C, 2}, {Dim::M, 2}};
    m.rows = {{Dim::M, 4}};
    m.local = {{Dim::R, 2}, {Dim::S, 2}};
    EXPECT_EQ(m.validate(convLayer(2, 4, 16, 2), 4, 4), "");
}

TEST(NestMapping, ValidateRejectsOversizedCols)
{
    NestMapping m;
    m.cols = {{Dim::C, 8}};
    m.rows = {{Dim::M, 4}};
    m.local = {{Dim::R, 3}};
    EXPECT_NE(m.validate(convLayer(8, 4, 4, 3), 4, 4), "");
}

TEST(NestMapping, ValidateRejectsDimRepeatInGroup)
{
    NestMapping m;
    m.cols = {{Dim::C, 2}, {Dim::C, 2}};
    EXPECT_NE(m.validate(convLayer(8, 4, 4, 3), 4, 4), "");
}

TEST(NestMapping, ValidateRejectsKInConv)
{
    NestMapping m;
    m.cols = {{Dim::K, 4}};
    EXPECT_NE(m.validate(convLayer(8, 4, 4, 3), 4, 4), "");
}

TEST(NestMapping, ValidateRejectsMInDepthwise)
{
    LayerSpec dw;
    dw.type = OpType::DepthwiseConv;
    dw.conv = ConvShape{1, 8, 8, 8, 8, 3, 3, 1, 1, true};
    NestMapping m;
    m.cols = {{Dim::M, 4}};
    EXPECT_NE(m.validate(dw, 4, 4), "");
}

TEST(NestMapping, CanonicalFitsArray)
{
    for (int aw : {4, 8, 16}) {
        for (const auto &layer :
             {convLayer(3, 224, 64, 7, 2), convLayer(64, 56, 64, 1),
              convLayer(512, 7, 2048, 1), convLayer(256, 14, 256, 3)}) {
            const NestMapping m = NestMapping::canonical(layer, aw, aw);
            EXPECT_EQ(m.validate(layer, aw, aw), "")
                << layer.toString() << " on " << aw << "x" << aw << ": "
                << m.toString();
        }
    }
}

TEST(NestMapping, CanonicalGemm)
{
    LayerSpec l;
    l.type = OpType::Gemm;
    l.gemm = GemmShape{512, 768, 768};
    const NestMapping m = NestMapping::canonical(l, 16, 16);
    EXPECT_EQ(m.validate(l, 16, 16), "");
    EXPECT_GE(m.t1(), 16); // Phase 1 covers the bus multiplexing depth
}

TEST(NestMapping, CanonicalDepthwise)
{
    LayerSpec dw;
    dw.type = OpType::DepthwiseConv;
    dw.conv = ConvShape{1, 64, 28, 28, 64, 3, 3, 1, 1, true};
    const NestMapping m = NestMapping::canonical(dw, 8, 8);
    EXPECT_EQ(m.validate(dw, 8, 8), "");
}

TEST(NestArray, WeightPingPong)
{
    NestArray nest(2, 2, 4);
    nest.loadWeight(0, 0, 0, 7);
    // Shadow bank: not visible until swap.
    EXPECT_EQ(nest.weight(0, 0, 0), 0);
    nest.swapWeightBanks();
    EXPECT_EQ(nest.weight(0, 0, 0), 7);
    // Load the next tile while the first is active.
    nest.loadWeight(0, 0, 0, 9);
    EXPECT_EQ(nest.weight(0, 0, 0), 7);
    nest.swapWeightBanks();
    EXPECT_EQ(nest.weight(0, 0, 0), 9);
}

TEST(NestArray, ComputeRowEmission)
{
    NestArray nest(4, 2, 4);
    // PE (0, c) holds weights [c+1, 2].
    for (int c = 0; c < 4; ++c) {
        nest.loadWeight(0, c, 0, int16_t(c + 1));
        nest.loadWeight(0, c, 1, 2);
    }
    nest.swapWeightBanks();

    std::vector<std::vector<int16_t>> iacts = {
        {10, 1}, {10, 1}, {10, 1}, {10, 1}};
    const std::vector<bool> active = {true, true, false, true};
    const auto em = nest.computeRowEmission(0, iacts, active);
    EXPECT_EQ(*em[0], 10 * 1 + 1 * 2);
    EXPECT_EQ(*em[1], 10 * 2 + 2);
    EXPECT_FALSE(em[2].has_value());
    EXPECT_EQ(*em[3], 10 * 4 + 2);
    EXPECT_EQ(nest.macsExecuted(), 6); // 3 active cols x 2 local steps
}

TEST(NestArray, WeightLoadCycles)
{
    // Paper: AW x AH NEST takes AH^2 cycles to preload.
    EXPECT_EQ(NestArray(4, 4).weightLoadCycles(), 16);
    EXPECT_EQ(NestArray(16, 16).weightLoadCycles(), 256);
}

TEST(NestArray, NegativeValues)
{
    NestArray nest(2, 1, 2);
    nest.loadWeight(0, 0, 0, -5);
    nest.loadWeight(0, 1, 0, 3);
    nest.swapWeightBanks();
    const auto em = nest.computeRowEmission(
        0, {{-4}, {-4}}, {true, true});
    EXPECT_EQ(*em[0], 20);
    EXPECT_EQ(*em[1], -12);
}

} // namespace
} // namespace feather
