/**
 * @file
 * Unit tests for src/dataflow: mapping math, access-set generation, and the
 * bank-conflict slowdowns of the Fig. 4 walkthrough (M1–M8).
 */

#include <gtest/gtest.h>

#include "dataflow/access_pattern.hpp"
#include "dataflow/mapping.hpp"

namespace feather {
namespace {

LayerSpec
resnetLayer1()
{
    LayerSpec l;
    l.name = "resnet50_l1";
    l.type = OpType::Conv;
    l.conv = ConvShape{1, 3, 224, 224, 64, 7, 7, 2, 3, false};
    return l;
}

LayerSpec
resnetLayer47()
{
    // Fig. 4 workload 2: C=2048, H=W=7, R=S=3, stride 1, pad 1.
    LayerSpec l;
    l.name = "resnet50_l47";
    l.type = OpType::Conv;
    l.conv = ConvShape{1, 2048, 7, 7, 512, 3, 3, 1, 1, false};
    return l;
}

BufferSpec
singleBankBuffer(int64_t lines, int64_t line_size)
{
    BufferSpec s;
    s.num_lines = lines;
    s.line_size = line_size;
    s.lines_per_bank = lines; // everything in one bank: worst case
    s.read_ports = 2;
    s.write_ports = 2;
    return s;
}

TEST(Mapping, TotalDegreeAndOccupancy)
{
    const std::vector<ParallelDim> par = {{Dim::M, 4}, {Dim::C, 4}};
    EXPECT_EQ(totalDegree(par), 16);

    Extents ext;
    ext[Dim::M] = 8;
    ext[Dim::C] = 6; // 6/(4*2) = 0.75 occupancy on C
    EXPECT_DOUBLE_EQ(spatialOccupancy(par, ext), 0.75);

    ext[Dim::M] = 3; // 3/4 on M
    EXPECT_DOUBLE_EQ(spatialOccupancy(par, ext), 0.75 * 0.75);
}

TEST(Mapping, TileExtentDefaultsToFull)
{
    Mapping m;
    Extents ext;
    ext[Dim::C] = 64;
    EXPECT_EQ(m.tileExtent(Dim::C, ext), 64);
    m.tile[Dim::C] = 16;
    EXPECT_EQ(m.tileExtent(Dim::C, ext), 16);
}

TEST(Mapping, ConvExtentsIncludeDerived)
{
    const Extents e = convExtents(resnetLayer1().conv);
    EXPECT_EQ(e[Dim::P], 112);
    EXPECT_EQ(e[Dim::Q], 112);
    EXPECT_EQ(e[Dim::H], 224);
}

TEST(LoopNest, OdometerCountsAllPoints)
{
    LoopNest nest({{Dim::M, 3}, {Dim::C, 4}, {Dim::Q, 5}});
    EXPECT_EQ(nest.totalIters(), 60);
    Coord c;
    int visited = 1;
    while (nest.advance(c)) ++visited;
    EXPECT_EQ(visited, 60);
    // After exhaustion the coordinate wraps to zero.
    EXPECT_EQ(c[Dim::M], 0);
    EXPECT_EQ(c[Dim::C], 0);
    EXPECT_EQ(c[Dim::Q], 0);
}

TEST(AccessSet, ChannelParallelReadsFourChannels)
{
    // Fig. 4 D1 on layer 47: C-parallel degree 4 -> {H0 W0 C0:3}.
    const LayerSpec layer = resnetLayer47();
    const std::vector<ParallelDim> spatial = {{Dim::C, 4}, {Dim::M, 4}};
    Coord base;
    // Start at p=1,q=1 so the 3x3 window center is in-bounds at r=s=1...
    base[Dim::P] = 1;
    base[Dim::Q] = 1;
    base[Dim::R] = 1;
    base[Dim::S] = 1;
    const auto coords = concurrentIactCoords(layer, spatial, base);
    // M-parallel broadcasts the same iActs: only C varies -> 4 coords.
    ASSERT_EQ(coords.size(), 4u);
    for (const auto &c : coords) {
        EXPECT_EQ(c[Dim::H], 1 * 1 + 1 - 1); // p*stride + r - pad
        EXPECT_EQ(c[Dim::W], 1);
    }
}

TEST(AccessSet, PaddingDropsOutOfBounds)
{
    const LayerSpec layer = resnetLayer47();
    const std::vector<ParallelDim> spatial = {{Dim::C, 4}};
    Coord base; // p=q=r=s=0 -> h=w=-1: padded
    const auto coords = concurrentIactCoords(layer, spatial, base);
    EXPECT_TRUE(coords.empty());
}

TEST(AccessSet, GemmKParallel)
{
    LayerSpec l;
    l.type = OpType::Gemm;
    l.gemm = GemmShape{8, 8, 64};
    const std::vector<ParallelDim> spatial = {{Dim::K, 4}, {Dim::N, 4}};
    Coord base;
    const auto coords = concurrentIactCoords(l, spatial, base);
    // N-parallel broadcasts A: 4 distinct (m,k) coords.
    ASSERT_EQ(coords.size(), 4u);
}

TEST(AccessSet, OactCoordsMparallel)
{
    const LayerSpec layer = resnetLayer47();
    const std::vector<ParallelDim> spatial = {{Dim::M, 4}, {Dim::C, 4}};
    Coord base;
    const auto coords = concurrentOactCoords(layer, spatial, base);
    // C is a reduction dim: it does not multiply oAct coords.
    ASSERT_EQ(coords.size(), 4u);
}

TEST(Fig4, M7ChannelParallelOnRowMajorHalvesUtilization)
{
    // Fig. 4-M7: D1 (C-parallel 4) under row-major HCW_W8 accesses 4 lines
    // per cycle in the same bank -> 0.5 slowdown (2 cycles per access).
    const LayerSpec layer = resnetLayer47();
    Mapping m;
    m.cols = {{Dim::C, 4}};
    m.rows = {{Dim::M, 4}};
    const BoundLayout bl(Layout::parse("HCW_W8"),
                         iactExtents(layer));
    const double slow = averageReadSlowdown(
        layer, m, bl, singleBankBuffer(bl.numLines(), bl.lineSize()), 32);
    EXPECT_NEAR(slow, 2.0, 0.05);
}

TEST(Fig4, M5ChannelParallelOnChannelLastIsConcordant)
{
    // Fig. 4-M5 (FEATHER's pick): D1 under channel-last reads one line per
    // cycle -> no slowdown.
    const LayerSpec layer = resnetLayer47();
    Mapping m;
    m.cols = {{Dim::C, 4}};
    m.rows = {{Dim::M, 4}};
    const BoundLayout bl(Layout::parse("HWC_C8"), iactExtents(layer));
    const double slow = averageReadSlowdown(
        layer, m, bl, singleBankBuffer(bl.numLines(), bl.lineSize()), 32);
    EXPECT_DOUBLE_EQ(slow, 1.0);
}

TEST(Fig4, M8SlidingWindowOnRowMajorIsConcordant)
{
    // Fig. 4-M8: D2 (W-parallel) on row-major reads 1-2 lines/cycle: fine.
    const LayerSpec layer = resnetLayer47();
    Mapping m;
    m.cols = {{Dim::Q, 4}};
    m.rows = {{Dim::M, 4}};
    const BoundLayout bl(Layout::parse("HCW_W8"), iactExtents(layer));
    const double slow = averageReadSlowdown(
        layer, m, bl, singleBankBuffer(bl.numLines(), bl.lineSize()), 32);
    EXPECT_DOUBLE_EQ(slow, 1.0);
}

TEST(Fig4, M6SlidingWindowOnChannelLastConflicts)
{
    // Fig. 4-M6: D2 (W-parallel 4) under channel-last: each w lands in a
    // different line -> 4 lines/cycle -> 0.5 slowdown.
    const LayerSpec layer = resnetLayer47();
    Mapping m;
    m.cols = {{Dim::Q, 4}};
    m.rows = {{Dim::M, 4}};
    const BoundLayout bl(Layout::parse("HWC_C8"), iactExtents(layer));
    const double slow = averageReadSlowdown(
        layer, m, bl, singleBankBuffer(bl.numLines(), bl.lineSize()), 32);
    // Interior cycles conflict at 2x; boundary cycles (partial windows at
    // the feature-map edge) access fewer lines, so the average sits just
    // below the steady-state 2.0 of the paper's table.
    EXPECT_GT(slow, 1.5);
    EXPECT_LE(slow, 2.0);
}

TEST(SampleBases, CoversTemporalSteps)
{
    const LayerSpec layer = resnetLayer47();
    Mapping m;
    m.cols = {{Dim::C, 4}};
    m.temporal_order = {Dim::Q, Dim::P};
    const auto bases = sampleTemporalBases(layer, m, 8);
    EXPECT_EQ(bases.size(), 8u);
    // Innermost temporal dim (P) advances first.
    EXPECT_EQ(bases[1][Dim::P], 1);
    EXPECT_EQ(bases[1][Dim::Q], 0);
}

} // namespace
} // namespace feather
