/**
 * @file
 * `feather_serve` — the long-running serving daemon (see
 * daemon/serve_cli.hpp for modes and options).
 */

#include "daemon/serve_cli.hpp"

int
main(int argc, char **argv)
{
    return feather::daemon::serveCliMain(argc, argv);
}
