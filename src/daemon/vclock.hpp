#pragma once

/**
 * @file
 * Virtual-time admission, placement and service scheduler for the serving
 * daemon.
 *
 * The daemon separates *what the serving system would do* from *how fast
 * this host computes it*. All externally-visible serving behavior —
 * admission decisions, placement, queueing, per-request latencies,
 * percentiles — is decided here, in virtual microseconds, by a
 * discrete-event simulation. Actual simulation work runs speculatively on
 * the wall-clock thread pool; the DES only consumes each request's
 * (deterministic) service duration. The result: reports are bit-identical
 * at any `--jobs N`, while execution still fans out.
 *
 * Two serving topologies:
 *   - homogeneous (cfg.devices empty): `vworkers` identical servers
 *     draining shared per-priority FIFOs — the classic --vworkers N.
 *   - fleet (cfg.devices non-empty): one virtual server per named device,
 *     each with its own per-priority FIFOs. Every arrival is *placed* on
 *     one device by the configured PlacementPolicy, using only virtual
 *     state (queue depths, device capabilities, caller-supplied affinity
 *     scores) — so placement, too, is deterministic at any pool size.
 *     Cross-device hand-off premiums (priced by the caller via
 *     model::handoffCost) are added to the placed request's service time.
 *
 * Event processing is *lazy*: arrivals are fed in non-decreasing virtual
 * time order, and a completion is only materialized when a later arrival
 * (or the final drain) advances time past it. Starting a waiting request
 * on a freed server at the server's finish time f is time-correct because
 * of an invariant of this laziness: every request still waiting arrived
 * before f (had it arrived after, its own arrival processing would have
 * materialized the f-completion first).
 *
 * Staged requests (fleet mode): a whole-graph request pipelined across
 * devices arrives via arriveStaged() with one pinned StagePlan per
 * contiguous same-device segment of its schedule. Stage k+1 starts when
 * stage k finishes — immediately if its device is free at that instant
 * (current by the heap's event order), else it joins that device's FIFO
 * at the request's priority. Continuation stages bypass admission (an
 * in-flight request cannot be rejected) but occupy queue slots while they
 * wait, so the depth bounds see them; stages of independent requests
 * interleave in virtual time. The completion callback fires once, after
 * the last stage, spanning first start to last finish.
 *
 * The DurationFn may block (it waits on the speculative execution's
 * result); it is called exactly once per started request (per started
 * stage for staged requests), on the single DES thread.
 */

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

namespace feather {
namespace daemon {

/** How a fleet routes each arrival to a device. */
enum class PlacementPolicy : uint8_t {
    LeastLoaded, ///< shortest virtual queue (waiting + in service)
    Capability,  ///< queue depth weighted by device capability
    Affinity,    ///< plan-cache affinity; least-loaded among ties
};

std::optional<PlacementPolicy> parsePlacement(const std::string &name);
std::string toString(PlacementPolicy p);
std::vector<std::string> placementNames();

/** One virtual server of a heterogeneous fleet. */
struct VirtualDevice
{
    std::string name;
    /** Relative placement weight of the Capability policy (PE count). */
    int64_t capability = 1;
};

/** Admission/service knobs of the virtual serving system. */
struct VirtualConfig
{
    static constexpr int kPriorities = 3;

    /** Virtual servers: requests in service concurrently (not --jobs).
     *  Ignored in fleet mode (each device is one server). */
    int vworkers = 1;
    /** Max requests waiting (not in service), fleet-wide; < 0 =
     *  unbounded. */
    int max_queue = 64;
    /** Per-priority bound on waiting requests; -1 = unbounded. */
    std::array<int64_t, kPriorities> quota = {-1, -1, -1};
    /** Non-empty = fleet mode: one server per device, per-device FIFOs,
     *  arrivals placed by `place`. */
    std::vector<VirtualDevice> devices;
    PlacementPolicy place = PlacementPolicy::LeastLoaded;
};

/** One pipeline stage of a staged request: a pinned device plus the
 *  hand-off premium charged when the stage starts (the inter-device edge
 *  feeding it, in virtual microseconds). */
struct StagePlan
{
    int device = -1;
    int64_t handoff_vus = 0;
};

/** Per-arrival placement inputs, computed by the caller on the DES
 *  thread (fleet mode only). Vectors are indexed by device; empty means
 *  "no constraint / all zero". */
struct ArrivalHints
{
    /** Devices this request can run on (feasible mapping at the device's
     *  array shape); empty = all. */
    std::vector<uint8_t> eligible;
    /** Plan-affinity score per device (Affinity policy input). */
    std::vector<int64_t> affinity;
    /** Hand-off premium in virtual microseconds, added to the service
     *  time when placed on that device (0 on the previous device). */
    std::vector<int64_t> handoff_vus;
};

/** Deterministic DES over arrivals, admission, placement and service. */
class VirtualScheduler
{
  public:
    /** Virtual service duration of request @p index on @p device (-1 in
     *  homogeneous mode), in microseconds; called once per started
     *  request, may block. */
    using DurationFn = std::function<int64_t(size_t index, int device)>;

    /** Completion callback: request @p index ran on @p device (-1 in
     *  homogeneous mode), started at @p start_vus and finished at
     *  @p finish_vus. Called in deterministic event order. For staged
     *  requests it fires once, after the last stage, with that stage's
     *  device and the first stage's start. */
    using CompletionFn = std::function<void(
        size_t index, int device, int64_t start_vus, int64_t finish_vus)>;

    /** Virtual service duration of stage @p stage of staged request
     *  @p index on @p device; same contract as DurationFn. */
    using StageDurationFn =
        std::function<int64_t(size_t index, int stage, int device)>;

    /** Per-stage completion callback for staged requests: fires for
     *  every stage (including the last, before CompletionFn) so the
     *  caller can account busy time and hand-offs per device. */
    using StageFinishFn =
        std::function<void(size_t index, int stage, int device,
                           int64_t start_vus, int64_t finish_vus)>;

    VirtualScheduler(VirtualConfig cfg, DurationFn duration,
                     CompletionFn on_finish);

    /** Required before the first arriveStaged() call. */
    void
    setStageHooks(StageDurationFn duration, StageFinishFn on_stage)
    {
        stage_duration_ = std::move(duration);
        stage_finish_ = std::move(on_stage);
    }

    /**
     * Process the arrival of request @p index at @p arrival_vus (must be
     * >= every earlier arrival). Materializes any completions up to that
     * time first, then decides admission: true = accepted (in service or
     * waiting), false = rejected with @p reject_reason set. A request is
     * only queued — and thus only subject to the depth/quota bounds —
     * when every server it may use is busy.
     *
     * Fleet mode must use the overload taking ArrivalHints; it reports
     * the chosen device in @p placed_device (untouched on rejection).
     * Placement happens before the admission bounds are checked, so a
     * rejected request still never occupies its would-be device.
     */
    bool arrive(size_t index, int64_t arrival_vus, int priority,
                std::string *reject_reason);
    bool arrive(size_t index, int64_t arrival_vus, int priority,
                const ArrivalHints &hints, std::string *reject_reason,
                int *placed_device = nullptr);

    /**
     * Staged arrival (fleet mode only): run @p stages in order, each
     * pinned to its device. Admission bounds apply to the first stage
     * exactly as for arrive(); later stages cannot be rejected. Requires
     * setStageHooks().
     */
    bool arriveStaged(size_t index, int64_t arrival_vus, int priority,
                      std::vector<StagePlan> stages,
                      std::string *reject_reason);

    /** Run every accepted request to completion. */
    void drain();

    /** Finish time of the latest completed request. */
    int64_t lastFinish() const { return last_finish_; }

    bool fleet() const { return !cfg_.devices.empty(); }
    size_t numDevices() const { return cfg_.devices.size(); }

  private:
    struct Running
    {
        int64_t finish = 0;
        size_t index = 0;
        int64_t start = 0;
        int device = -1;
        int stage = 0; ///< staged requests; 0 otherwise

        /** Min-heap order: earliest finish first, ties by index (a
         *  request has at most one stage in flight, so this is total). */
        bool
        operator>(const Running &o) const
        {
            return finish != o.finish ? finish > o.finish : index > o.index;
        }
    };

    /** One FIFO entry: a request, at the stage waiting to start. */
    struct Waiter
    {
        size_t index = 0;
        int stage = 0;
    };

    /** One device's private server + FIFOs (fleet mode). */
    struct DeviceState
    {
        bool busy = false;
        std::array<std::deque<Waiter>, VirtualConfig::kPriorities> waiting;
        size_t waiting_total = 0;
    };

    /** A staged request's pinned pipeline, kept until it completes. */
    struct StagedInfo
    {
        std::vector<StagePlan> stages;
        int priority = 0;
        int64_t first_start = 0;
    };

    /** Materialize every completion with finish <= @p t. */
    void advanceTo(int64_t t);

    /** Pop the earliest completion; advance its pipeline (staged
     *  requests), then hand its server to a waiter. */
    void completeOne();

    void start(size_t index, int stage, int64_t start_vus, int device);

    /** The placement decision: pick among eligible devices by policy. */
    int place(const ArrivalHints &hints) const;

    /** Shared admission bounds (depth + quota), fleet-wide. */
    bool admitWaiter(int priority, std::string *reject_reason);

    VirtualConfig cfg_;
    DurationFn duration_;
    CompletionFn on_finish_;
    StageDurationFn stage_duration_;
    StageFinishFn stage_finish_;
    std::priority_queue<Running, std::vector<Running>, std::greater<Running>>
        running_;
    /** Homogeneous mode: shared FIFOs across the vworkers. */
    std::array<std::deque<Waiter>, VirtualConfig::kPriorities> waiting_;
    /** Staged requests by index (fleet mode). */
    std::unordered_map<size_t, StagedInfo> staged_;
    /** Fleet mode: per-device servers and FIFOs. */
    std::vector<DeviceState> dev_;
    /** Hand-off premium charged to each placed request (fleet mode),
     *  indexed by request index. */
    std::vector<int64_t> handoff_;
    size_t waiting_total_ = 0;
    std::array<int64_t, VirtualConfig::kPriorities> waiting_by_prio_ = {
        0, 0, 0};
    int64_t last_arrival_ = 0;
    int64_t last_finish_ = 0;
};

} // namespace daemon
} // namespace feather
