#pragma once

/**
 * @file
 * Virtual-time admission and service scheduler for the serving daemon.
 *
 * The daemon separates *what the serving system would do* from *how fast
 * this host computes it*. All externally-visible serving behavior —
 * admission decisions, queueing, per-request latencies, percentiles — is
 * decided here, in virtual microseconds, by a discrete-event simulation of
 * a fixed pool of `vworkers` servers. Actual simulation work runs
 * speculatively on the wall-clock thread pool; the DES only consumes each
 * request's (deterministic) service duration. The result: reports are
 * bit-identical at any `--jobs N`, while execution still fans out.
 *
 * Event processing is *lazy*: arrivals are fed in non-decreasing virtual
 * time order, and a completion is only materialized when a later arrival
 * (or the final drain) advances time past it. Starting a waiting request
 * on a freed worker at the worker's finish time f is time-correct because
 * of an invariant of this laziness: every request still waiting arrived
 * before f (had it arrived after, its own arrival processing would have
 * materialized the f-completion first).
 *
 * The DurationFn may block (it waits on the speculative execution's
 * result); it is called exactly once per started request, on the single
 * DES thread.
 */

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <string>
#include <vector>

namespace feather {
namespace daemon {

/** Admission/service knobs of the virtual serving system. */
struct VirtualConfig
{
    static constexpr int kPriorities = 3;

    /** Virtual servers: requests in service concurrently (not --jobs). */
    int vworkers = 1;
    /** Max requests waiting (not in service); < 0 = unbounded. */
    int max_queue = 64;
    /** Per-priority bound on waiting requests; -1 = unbounded. */
    std::array<int64_t, kPriorities> quota = {-1, -1, -1};
};

/** Deterministic DES over arrivals, admission, queueing and service. */
class VirtualScheduler
{
  public:
    /** Virtual service duration of request @p index, in microseconds;
     *  called once per started request, may block. */
    using DurationFn = std::function<int64_t(size_t index)>;

    /** Completion callback: request @p index started at @p start_vus and
     *  finished at @p finish_vus. Called in deterministic event order. */
    using CompletionFn = std::function<void(size_t index, int64_t start_vus,
                                            int64_t finish_vus)>;

    VirtualScheduler(VirtualConfig cfg, DurationFn duration,
                     CompletionFn on_finish);

    /**
     * Process the arrival of request @p index at @p arrival_vus (must be
     * >= every earlier arrival). Materializes any completions up to that
     * time first, then decides admission: true = accepted (in service or
     * waiting), false = rejected with @p reject_reason set. A request is
     * only queued — and thus only subject to the depth/quota bounds —
     * when every virtual server is busy.
     */
    bool arrive(size_t index, int64_t arrival_vus, int priority,
                std::string *reject_reason);

    /** Run every accepted request to completion. */
    void drain();

    /** Finish time of the latest completed request. */
    int64_t lastFinish() const { return last_finish_; }

  private:
    struct Running
    {
        int64_t finish = 0;
        size_t index = 0;
        int64_t start = 0;

        /** Min-heap order: earliest finish first, ties by index. */
        bool
        operator>(const Running &o) const
        {
            return finish != o.finish ? finish > o.finish : index > o.index;
        }
    };

    /** Materialize every completion with finish <= @p t. */
    void advanceTo(int64_t t);

    /** Pop the earliest completion; hand its server to a waiter. */
    void completeOne();

    void start(size_t index, int64_t start_vus);

    VirtualConfig cfg_;
    DurationFn duration_;
    CompletionFn on_finish_;
    std::priority_queue<Running, std::vector<Running>, std::greater<Running>>
        running_;
    std::array<std::deque<size_t>, VirtualConfig::kPriorities> waiting_;
    size_t waiting_total_ = 0;
    int64_t last_arrival_ = 0;
    int64_t last_finish_ = 0;
};

} // namespace daemon
} // namespace feather
