#include "daemon/report.hpp"

#include "common/log.hpp"
#include "common/table.hpp"

namespace feather {
namespace daemon {

namespace {

const std::vector<std::string> &
columns()
{
    static const std::vector<std::string> cols = {
        "client",       "requests",     "accepted",
        "rejected",     "errors",       "cache_hits",
        "cache_misses", "total_cycles", "p50_vus",
        "p95_vus",      "p99_vus",      "mean_queue_vus",
        "mean_service_vus", "queue_wall_us", "service_wall_us"};
    return cols;
}

std::vector<std::string>
row(const ClientRow &c)
{
    return {csvSafe(c.client),
            std::to_string(c.requests),
            std::to_string(c.accepted),
            std::to_string(c.rejected),
            std::to_string(c.errors),
            std::to_string(c.cache_hits),
            std::to_string(c.cache_misses),
            std::to_string(c.total_cycles),
            std::to_string(c.p50_vus),
            std::to_string(c.p95_vus),
            std::to_string(c.p99_vus),
            fmtDouble(c.mean_queue_vus, 2),
            fmtDouble(c.mean_service_vus, 2),
            std::to_string(c.queue_wall_us),
            std::to_string(c.service_wall_us)};
}

const std::vector<std::string> &
deviceColumns()
{
    static const std::vector<std::string> cols = {
        "device",     "capability",   "requests",
        "busy_vus",   "queue_p95_vus", "cache_hits",
        "cache_misses", "handoffs",   "handoff_vus"};
    return cols;
}

std::vector<std::string>
deviceRow(const DeviceRow &d)
{
    return {csvSafe(d.device),
            std::to_string(d.capability),
            std::to_string(d.requests),
            std::to_string(d.busy_vus),
            std::to_string(d.queue_p95_vus),
            std::to_string(d.cache_hits),
            std::to_string(d.cache_misses),
            std::to_string(d.handoffs),
            std::to_string(d.handoff_vus)};
}

} // namespace

std::string
DaemonReport::toCsv() const
{
    Table t(columns());
    for (const ClientRow &c : clients) t.addRow(row(c));
    std::string out = t.toCsv();
    if (!devices.empty()) {
        Table dt(deviceColumns());
        for (const DeviceRow &d : devices) dt.addRow(deviceRow(d));
        out += "\n" + dt.toCsv();
    }
    return out;
}

std::string
DaemonReport::toJson() const
{
    std::string out = "{\"clients\":[";
    for (size_t i = 0; i < clients.size(); ++i) {
        const ClientRow &c = clients[i];
        if (i > 0) out += ",";
        out += strCat(
            "{\"client\":\"", jsonEscape(c.client),
            "\",\"requests\":", c.requests, ",\"accepted\":", c.accepted,
            ",\"rejected\":", c.rejected, ",\"errors\":", c.errors,
            ",\"cache_hits\":", c.cache_hits,
            ",\"cache_misses\":", c.cache_misses,
            ",\"total_cycles\":", c.total_cycles,
            ",\"p50_vus\":", c.p50_vus, ",\"p95_vus\":", c.p95_vus,
            ",\"p99_vus\":", c.p99_vus,
            ",\"mean_queue_vus\":", fmtDouble(c.mean_queue_vus, 2),
            ",\"mean_service_vus\":", fmtDouble(c.mean_service_vus, 2),
            ",\"queue_wall_us\":", c.queue_wall_us,
            ",\"service_wall_us\":", c.service_wall_us, "}");
    }
    out += "]";
    if (!devices.empty()) {
        out += ",\"devices\":[";
        for (size_t i = 0; i < devices.size(); ++i) {
            const DeviceRow &d = devices[i];
            if (i > 0) out += ",";
            out += strCat(
                "{\"device\":\"", jsonEscape(d.device),
                "\",\"capability\":", d.capability,
                ",\"requests\":", d.requests, ",\"busy_vus\":", d.busy_vus,
                ",\"queue_p95_vus\":", d.queue_p95_vus,
                ",\"cache_hits\":", d.cache_hits,
                ",\"cache_misses\":", d.cache_misses,
                ",\"handoffs\":", d.handoffs,
                ",\"handoff_vus\":", d.handoff_vus, "}");
        }
        out += "]";
    }
    out += strCat(
        ",\"summary\":{\"requests\":", requests,
        ",\"accepted\":", accepted, ",\"rejected\":", rejected,
        ",\"errors\":", errors, ",\"p50_vus\":", p50_vus,
        ",\"p95_vus\":", p95_vus, ",\"p99_vus\":", p99_vus,
        ",\"max_vus\":", max_vus, ",\"makespan_vus\":", makespan_vus,
        ",\"virtual_rps\":", fmtDouble(virtual_rps, 2),
        ",\"total_cycles\":", total_cycles, ",\"total_macs\":", total_macs,
        ",\"plan_cache\":{\"hits\":", cache.hits,
        ",\"misses\":", cache.misses, ",\"entries\":", cache.entries,
        "},\"base_seed\":", base_seed, ",\"vworkers\":", vworkers,
        ",\"clock_mhz\":", clock_mhz, ",\"engine\":\"", jsonEscape(engine),
        "\"");
    if (!devices.empty()) {
        out += strCat(",\"fleet\":\"", jsonEscape(fleet), "\",\"place\":\"",
                      jsonEscape(place), "\"");
    }
    out += strCat(",\"run_wall_us\":", run_wall_us, "}}");
    return out;
}

std::string
DaemonReport::summaryTable() const
{
    Table t({"client", "requests", "accepted", "rejected", "errors",
             "p50_vus", "p95_vus", "p99_vus", "cache h/m"});
    for (const ClientRow &c : clients) {
        t.addRow({c.client, std::to_string(c.requests),
                  std::to_string(c.accepted), std::to_string(c.rejected),
                  std::to_string(c.errors), std::to_string(c.p50_vus),
                  std::to_string(c.p95_vus), std::to_string(c.p99_vus),
                  strCat(c.cache_hits, "/", c.cache_misses)});
    }
    std::string out = t.toString();
    if (!devices.empty()) {
        Table dt({"device", "capability", "requests", "busy_vus",
                  "queue_p95", "cache h/m", "handoffs"});
        for (const DeviceRow &d : devices) {
            dt.addRow({d.device, std::to_string(d.capability),
                       std::to_string(d.requests),
                       std::to_string(d.busy_vus),
                       std::to_string(d.queue_p95_vus),
                       strCat(d.cache_hits, "/", d.cache_misses),
                       strCat(d.handoffs, " (", d.handoff_vus, " vus)")});
        }
        out += strCat("fleet [", fleet, "] placed by ", place, ":\n",
                      dt.toString());
    }
    out += strCat(requests, " request(s): ", accepted, " accepted, ",
                  rejected, " rejected, ", errors, " error(s); latency p50/"
                  "p95/p99 ", p50_vus, "/", p95_vus, "/", p99_vus,
                  " vus; makespan ", makespan_vus, " vus (",
                  fmtDouble(virtual_rps, 2), " rps); plan cache: ",
                  cache.hits, " hit(s), ", cache.misses, " miss(es), ",
                  cache.entries, " entr(y/ies)\n");
    return out;
}

} // namespace daemon
} // namespace feather
