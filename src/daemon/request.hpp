#pragma once

/**
 * @file
 * The serving daemon's request wire format: one flat JSON object per line.
 *
 * A request names either a registered sim scenario or a built-in model
 * graph (whole-model scheduling), plus the per-request knobs a batch-file
 * job would carry. Parsing is strict — unknown keys, malformed values and
 * scenario/model ambiguity are rejected with a one-line reason — because
 * daemon clients are programs, and a silently-ignored typo in a field name
 * would corrupt experiments instead of failing them.
 *
 * Examples:
 *   {"id":"r0","client":"c1","scenario":"gemm","aw":8,"ah":8}
 *   {"client":"c2","priority":0,"scenario":"depthwise","engine":"analytic"}
 *   {"client":"c0","model":"bert_mlp","schedule":"per-layer"}
 *   {"id":"t3","arrival_us":1500,"scenario":"quickstart_conv","seed":7}
 */

#include <cstdint>
#include <optional>
#include <string>

#include "sim/engine_mode.hpp"

namespace feather {
namespace daemon {

/** One serving request, as carried on the JSON-lines wire. */
struct Request
{
    /** Response correlation id; defaults to "r<index>" when empty. */
    std::string id;
    /** Requesting client; per-client accounting keys on this. */
    std::string client = "anon";
    /** 0 = highest, 2 = lowest; admission quotas are per priority. */
    int priority = 1;
    /**
     * Virtual arrival time in microseconds. >= 0 pins the arrival (trace
     * replay and the load generator — the deterministic modes); -1 lets
     * the daemon stamp wall-clock-since-start (interactive frontends).
     * Pinned arrivals must be non-decreasing across the request stream.
     */
    int64_t arrival_us = -1;

    /** Registered scenario name; exactly one of scenario/model is set. */
    std::string scenario;
    /** Built-in model graph name (whole-model scheduling request). */
    std::string model;
    /** Model schedule policy: per-layer, greedy, or fixed:<dataflow>. */
    std::string schedule = "per-layer";

    // Scenario/model option overrides (0/"" = the workload's default).
    int aw = 0;
    int ah = 0;
    std::string dataflow; ///< scenario-only; "" = per-layer families
    std::string layout = "concordant";
    std::string out_layout = "concordant";
    /** Pin the input seed; unset derives Rng::deriveStream(base, index). */
    std::optional<uint64_t> seed;
    /** Pin the engine tier; unset inherits the daemon default. */
    std::optional<sim::EngineMode> engine;

    bool isModel() const { return !model.empty(); }

    /**
     * Parse one JSON line. Returns false with @p error set on syntax
     * errors, unknown keys, out-of-range values, or when scenario/model
     * are both (or neither) present. @p out keeps any fields parsed
     * before the failure (so error accounting can still attribute the
     * line to its client when that field parsed).
     */
    static bool parse(const std::string &line, Request *out,
                      std::string *error);

    /** This request as one JSON line (default-valued fields omitted) —
     *  the inverse of parse(), used to write trace files. */
    std::string toJsonLine() const;
};

} // namespace daemon
} // namespace feather
