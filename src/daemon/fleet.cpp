#include "daemon/fleet.hpp"

namespace feather {
namespace daemon {

bool
parseFleetSpec(const std::string &text, FleetConfig *out, std::string *error)
{
    return model::parseFleetSpec(text, out, error);
}

std::vector<VirtualDevice>
toVirtualDevices(const FleetConfig &fleet)
{
    std::vector<VirtualDevice> out;
    out.reserve(fleet.devices.size());
    for (const DeviceSpec &d : fleet.devices) {
        out.push_back({d.name, d.capability});
    }
    return out;
}

} // namespace daemon
} // namespace feather
