#pragma once

/**
 * @file
 * Command line and frontends of the `feather_serve` binary.
 *
 * Modes (exactly one):
 *   --stdin                 JSON-lines requests on stdin until EOF (or a
 *                           bare `shutdown` line); responses on stdout
 *   --listen PORT           TCP frontend on 127.0.0.1:PORT (0 = pick an
 *                           ephemeral port, announced on stderr); each
 *                           connection speaks the same JSON-lines
 *                           protocol, responses go back per-connection
 *   --replay FILE           feed a JSON-lines trace with pinned arrivals
 *   --qps N --requests M    deterministic open-loop load generator;
 *                           add --trace FILE to also write the stream
 *
 * Shared knobs: --jobs N (wall pool, 1..256), --seed N, --engine
 * cycle|analytic, --vworkers N, --fleet FILE|SPEC (heterogeneous device
 * fleet; excludes --vworkers), --place affinity|least-loaded|capability
 * (fleet placement policy), --max-queue N, --quota P=N (priority P in
 * 0..2), --clock-mhz N, --report-csv FILE, --report-json FILE, --quiet
 * (suppress response lines), --help.
 *
 * Every flag is declared once in a common OptionTable (common/options.hpp)
 * shared with feather_cli, so validation is strict and names the
 * offending flag in one line: numeric flags reject non-numeric and
 * non-positive values (exit 2).
 * Exit status: 0 = clean run, 1 = some request failed (ERROR/MISMATCH),
 * 2 = usage error.
 */

#include <string>
#include <vector>

#include "daemon/daemon.hpp"
#include "daemon/load_gen.hpp"

namespace feather {
namespace daemon {

/** Parsed feather_serve command line. */
struct ServeCliConfig
{
    enum class Mode
    {
        Stdin,
        Listen,
        Replay,
        LoadGen,
    };

    Mode mode = Mode::Stdin;
    DaemonOptions daemon;
    LoadGenConfig load;
    int port = 0;            ///< --listen
    std::string replay_path; ///< --replay
    std::string trace_path;  ///< --trace (loadgen mode)
    std::string report_csv;
    std::string report_json;
    bool quiet = false;
    bool help = false;
};

/** The usage text (also printed on --help). */
std::string serveUsage();

/** Parse @p args (no argv[0]); false with a one-line @p error naming the
 *  offending flag on any invalid input. */
bool parseServeCli(const std::vector<std::string> &args, ServeCliConfig *out,
                   std::string *error);

/** Run feather_serve under @p config; returns the process exit code. */
int serveMain(const ServeCliConfig &config);

/** Full entry point: parse + run (argv[0] ignored). */
int serveCliMain(int argc, char **argv);

} // namespace daemon
} // namespace feather
