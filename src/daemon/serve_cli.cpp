#include "daemon/serve_cli.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "common/io.hpp"
#include "common/log.hpp"
#include "common/parse.hpp"

namespace feather {
namespace daemon {

namespace {

/** Strip one trailing '\r' (TCP clients may send CRLF). */
std::string
chomp(std::string line)
{
    if (!line.empty() && line.back() == '\r') line.pop_back();
    return line;
}

// ---------------------------------------------------------------------------
// TCP frontend
// ---------------------------------------------------------------------------

/** Loopback JSON-lines listener; one reader thread per connection. */
class TcpFrontend
{
  public:
    ~TcpFrontend() { stop(); }

    bool
    start(Daemon *daemon, int port, std::string *error)
    {
        daemon_ = daemon;
        listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listen_fd_ < 0) {
            *error = "cannot create socket";
            return false;
        }
        int one = 1;
        ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(uint16_t(port));
        if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0 ||
            ::listen(listen_fd_, 16) != 0) {
            *error = strCat("cannot listen on 127.0.0.1:", port);
            ::close(listen_fd_);
            listen_fd_ = -1;
            return false;
        }
        socklen_t len = sizeof(addr);
        ::getsockname(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
                      &len);
        port_ = int(ntohs(addr.sin_port));
        accept_thread_ = std::thread([this] { acceptLoop(); });
        return true;
    }

    int port() const { return port_; }

    /** Unblock and join every thread; idempotent. */
    void
    stop()
    {
        if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
        if (accept_thread_.joinable()) accept_thread_.join();
        if (listen_fd_ >= 0) {
            ::close(listen_fd_);
            listen_fd_ = -1;
        }
    }

  private:
    void
    acceptLoop()
    {
        std::vector<std::thread> readers;
        std::vector<int> fds;
        for (;;) {
            const int fd = ::accept(listen_fd_, nullptr, nullptr);
            if (fd < 0) break; // stop() shut the listener down
            fds.push_back(fd);
            readers.emplace_back([this, fd] { connectionLoop(fd); });
        }
        // The daemon has drained by the time stop() runs (responses are
        // all sent); unblock any reader still waiting on its peer.
        for (int fd : fds) ::shutdown(fd, SHUT_RDWR);
        for (std::thread &t : readers) t.join();
        for (int fd : fds) ::close(fd);
    }

    void
    connectionLoop(int fd)
    {
        const ResponseSink sink = [fd](const std::string &line) {
            const std::string msg = line + "\n";
            // A gone-away client must not kill the daemon: ignore errors
            // (and suppress SIGPIPE).
            (void)::send(fd, msg.data(), msg.size(), MSG_NOSIGNAL);
        };
        std::string buf;
        char chunk[4096];
        for (;;) {
            const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
            if (n <= 0) break;
            buf.append(chunk, size_t(n));
            size_t eol;
            while ((eol = buf.find('\n')) != std::string::npos) {
                const std::string line = chomp(buf.substr(0, eol));
                buf.erase(0, eol + 1);
                if (line.empty()) continue;
                if (line == "shutdown") {
                    daemon_->closeIntake();
                    continue;
                }
                daemon_->enqueueLine(line, sink);
            }
        }
        if (!chomp(buf).empty() && chomp(buf) != "shutdown") {
            daemon_->enqueueLine(chomp(buf), sink);
        }
    }

    Daemon *daemon_ = nullptr;
    int listen_fd_ = -1;
    int port_ = 0;
    std::thread accept_thread_;
};

} // namespace

// ---------------------------------------------------------------------------
// Command line
// ---------------------------------------------------------------------------

std::string
serveUsage()
{
    return "usage: feather_serve MODE [OPTIONS]\n"
           "\n"
           "modes (exactly one):\n"
           "  --stdin               JSON-lines requests on stdin until EOF\n"
           "                        (or a bare `shutdown` line)\n"
           "  --listen PORT         TCP frontend on 127.0.0.1:PORT (0 =\n"
           "                        ephemeral, announced on stderr)\n"
           "  --replay FILE         replay a JSON-lines trace with pinned\n"
           "                        arrival_us values (deterministic)\n"
           "  --qps N --requests M  deterministic open-loop load generator\n"
           "    [--trace FILE]      also write the generated trace\n"
           "\n"
           "options:\n"
           "  --jobs N              wall-clock worker pool size, 1..256\n"
           "                        (default 1; never changes results)\n"
           "  --seed N              base seed for per-request input\n"
           "                        streams (default 2024)\n"
           "  --engine MODE         default tier: cycle | analytic\n"
           "  --vworkers N          virtual servers (default 1)\n"
           "  --max-queue N         admission: max waiting requests\n"
           "                        (default 64)\n"
           "  --quota P=N           admission: max waiting requests of\n"
           "                        priority P (0..2); repeatable\n"
           "  --clock-mhz N         virtual clock, service_vus =\n"
           "                        ceil(cycles/mhz) (default 1000)\n"
           "  --report-csv FILE     write the per-client report as CSV\n"
           "  --report-json FILE    write the full report as JSON\n"
           "  --quiet               suppress per-request response lines\n"
           "  --help                this text\n"
           "\n"
           "request lines are flat JSON objects, e.g.\n"
           "  {\"client\":\"c0\",\"scenario\":\"gemm\",\"priority\":0}\n"
           "  {\"client\":\"c1\",\"model\":\"bert_mlp\",\"schedule\":"
           "\"per-layer\"}\n";
}

bool
parseServeCli(const std::vector<std::string> &args, ServeCliConfig *out,
              std::string *error)
{
    *out = ServeCliConfig();
    bool has_mode = false;
    bool has_qps = false;
    bool has_requests = false;

    const auto setMode = [&](ServeCliConfig::Mode mode) {
        if (has_mode && out->mode != mode) {
            *error = "pick exactly one mode: --stdin, --listen, --replay, "
                     "or --qps/--requests";
            return false;
        }
        out->mode = mode;
        has_mode = true;
        return true;
    };

    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        const auto value = [&](std::string *v) {
            if (i + 1 >= args.size()) {
                *error = arg + " needs a value";
                return false;
            }
            *v = args[++i];
            return true;
        };
        // Satellite contract: numeric flags reject non-numeric and <= 0
        // with a one-line error naming the flag.
        const auto positive = [&](uint64_t *v, uint64_t max,
                                  const char *what) {
            std::string text;
            if (!value(&text)) return false;
            if (!parsePositive(text, v, max)) {
                *error = strCat("invalid value for ", arg, ": '", text,
                                "' (expected ", what, ")");
                return false;
            }
            return true;
        };

        uint64_t n = 0;
        if (arg == "--stdin") {
            if (!setMode(ServeCliConfig::Mode::Stdin)) return false;
        } else if (arg == "--listen") {
            if (!setMode(ServeCliConfig::Mode::Listen)) return false;
            std::string text;
            if (!value(&text)) return false;
            uint64_t port = 0;
            if (!parseUint(text, &port) || port > 65535) {
                *error = strCat("invalid value for --listen: '", text,
                                "' (expected a port in 0..65535)");
                return false;
            }
            out->port = int(port);
        } else if (arg == "--replay") {
            if (!setMode(ServeCliConfig::Mode::Replay)) return false;
            if (!value(&out->replay_path)) return false;
        } else if (arg == "--qps") {
            if (!setMode(ServeCliConfig::Mode::LoadGen)) return false;
            if (!positive(&out->load.qps, 1000000,
                          "a positive integer <= 1000000")) {
                return false;
            }
            has_qps = true;
        } else if (arg == "--requests") {
            if (!setMode(ServeCliConfig::Mode::LoadGen)) return false;
            if (!positive(&out->load.requests, 1000000,
                          "a positive integer <= 1000000")) {
                return false;
            }
            has_requests = true;
        } else if (arg == "--trace") {
            if (!value(&out->trace_path)) return false;
        } else if (arg == "--jobs") {
            if (!positive(&n, 256, "a positive integer <= 256")) {
                return false;
            }
            out->daemon.num_threads = int(n);
        } else if (arg == "--seed") {
            if (!positive(&out->daemon.base_seed, UINT64_MAX,
                          "a positive integer")) {
                return false;
            }
        } else if (arg == "--engine") {
            std::string text;
            if (!value(&text)) return false;
            const std::optional<sim::EngineMode> mode =
                sim::parseEngineMode(text);
            if (!mode) {
                *error = strCat("invalid value for --engine: '", text,
                                "' (expected cycle or analytic)");
                return false;
            }
            out->daemon.engine = *mode;
        } else if (arg == "--vworkers") {
            if (!positive(&n, 4096, "a positive integer <= 4096")) {
                return false;
            }
            out->daemon.virt.vworkers = int(n);
        } else if (arg == "--max-queue") {
            std::string text;
            if (!value(&text)) return false;
            if (!parseUint(text, &n) || n > 1000000) {
                *error = strCat("invalid value for --max-queue: '", text,
                                "' (expected an integer in 0..1000000)");
                return false;
            }
            out->daemon.virt.max_queue = int(n);
        } else if (arg == "--quota") {
            std::string text;
            if (!value(&text)) return false;
            const size_t eq = text.find('=');
            uint64_t prio = 0;
            uint64_t quota = 0;
            if (eq == std::string::npos ||
                !parseUint(text.substr(0, eq), &prio) || prio > 2 ||
                !parseUint(text.substr(eq + 1), &quota) ||
                quota > 1000000) {
                *error = strCat("invalid value for --quota: '", text,
                                "' (expected P=N with priority P in 0..2 "
                                "and N in 0..1000000)");
                return false;
            }
            out->daemon.virt.quota[prio] = int64_t(quota);
        } else if (arg == "--clock-mhz") {
            if (!positive(&out->daemon.clock_mhz, 1000000,
                          "a positive integer <= 1000000")) {
                return false;
            }
        } else if (arg == "--report-csv") {
            if (!value(&out->report_csv)) return false;
        } else if (arg == "--report-json") {
            if (!value(&out->report_json)) return false;
        } else if (arg == "--quiet") {
            out->quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            out->help = true;
        } else {
            *error = strCat("unknown flag '", arg,
                            "' (see feather_serve --help)");
            return false;
        }
    }
    if (out->help) return true;
    if (!has_mode) {
        *error = "pick a mode: --stdin, --listen PORT, --replay FILE, or "
                 "--qps N --requests M";
        return false;
    }
    if (out->mode == ServeCliConfig::Mode::LoadGen &&
        (!has_qps || !has_requests)) {
        *error = "the load generator needs both --qps N and --requests M";
        return false;
    }
    if (!out->trace_path.empty() &&
        out->mode != ServeCliConfig::Mode::LoadGen) {
        *error = "--trace only applies to load-generator mode "
                 "(--qps/--requests)";
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

int
serveMain(const ServeCliConfig &config)
{
    if (config.help) {
        std::printf("%s", serveUsage().c_str());
        return 0;
    }

    Daemon daemon(config.daemon);
    const ResponseSink stdout_sink =
        config.quiet ? ResponseSink()
                     : ResponseSink([](const std::string &line) {
                           std::fprintf(stdout, "%s\n", line.c_str());
                       });

    DaemonReport report;
    switch (config.mode) {
    case ServeCliConfig::Mode::Replay: {
        std::ifstream in(config.replay_path, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "feather_serve: cannot read trace '%s'\n",
                         config.replay_path.c_str());
            return 2;
        }
        std::string line;
        while (std::getline(in, line)) {
            line = chomp(line);
            if (line.empty() || line[0] == '#') continue;
            daemon.enqueueLine(line, stdout_sink);
        }
        daemon.closeIntake();
        report = daemon.run();
        break;
    }
    case ServeCliConfig::Mode::LoadGen: {
        LoadGenConfig load = config.load;
        load.seed = config.daemon.base_seed;
        const std::vector<Request> requests = generateLoad(load);
        if (!config.trace_path.empty() &&
            !writeFile(config.trace_path, toTraceText(requests))) {
            std::fprintf(stderr, "feather_serve: cannot write trace '%s'\n",
                         config.trace_path.c_str());
            return 2;
        }
        for (const Request &req : requests) {
            daemon.enqueue(req, stdout_sink);
        }
        daemon.closeIntake();
        report = daemon.run();
        break;
    }
    case ServeCliConfig::Mode::Stdin: {
        std::thread reader([&daemon, &stdout_sink] {
            std::string line;
            while (std::getline(std::cin, line)) {
                line = chomp(line);
                if (line.empty()) continue;
                if (line == "shutdown") break;
                daemon.enqueueLine(line, stdout_sink);
            }
            daemon.closeIntake();
        });
        report = daemon.run();
        reader.join();
        break;
    }
    case ServeCliConfig::Mode::Listen: {
        TcpFrontend frontend;
        std::string err;
        if (!frontend.start(&daemon, config.port, &err)) {
            std::fprintf(stderr, "feather_serve: %s\n", err.c_str());
            return 2;
        }
        std::fprintf(stderr, "feather_serve: listening on 127.0.0.1:%d\n",
                     frontend.port());
        report = daemon.run();
        frontend.stop();
        break;
    }
    }
    std::fflush(stdout);

    std::fprintf(stderr, "%s", report.summaryTable().c_str());
    if (!config.report_csv.empty() &&
        !writeFile(config.report_csv, report.toCsv())) {
        std::fprintf(stderr, "feather_serve: cannot write '%s'\n",
                     config.report_csv.c_str());
        return 1;
    }
    if (!config.report_json.empty() &&
        !writeFile(config.report_json, report.toJson() + "\n")) {
        std::fprintf(stderr, "feather_serve: cannot write '%s'\n",
                     config.report_json.c_str());
        return 1;
    }
    return daemon.failures() > 0 ? 1 : 0;
}

int
serveCliMain(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    ServeCliConfig config;
    std::string error;
    if (!parseServeCli(args, &config, &error)) {
        std::fprintf(stderr, "feather_serve: %s\n", error.c_str());
        return 2;
    }
    return serveMain(config);
}

} // namespace daemon
} // namespace feather
