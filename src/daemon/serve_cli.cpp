#include "daemon/serve_cli.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "common/io.hpp"
#include "common/log.hpp"
#include "common/options.hpp"
#include "common/parse.hpp"

namespace feather {
namespace daemon {

namespace {

/** Strip one trailing '\r' (TCP clients may send CRLF). */
std::string
chomp(std::string line)
{
    if (!line.empty() && line.back() == '\r') line.pop_back();
    return line;
}

// ---------------------------------------------------------------------------
// TCP frontend
// ---------------------------------------------------------------------------

/** Loopback JSON-lines listener; one reader thread per connection. */
class TcpFrontend
{
  public:
    ~TcpFrontend() { stop(); }

    bool
    start(Daemon *daemon, int port, std::string *error)
    {
        daemon_ = daemon;
        listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listen_fd_ < 0) {
            *error = "cannot create socket";
            return false;
        }
        int one = 1;
        ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(uint16_t(port));
        if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0 ||
            ::listen(listen_fd_, 16) != 0) {
            *error = strCat("cannot listen on 127.0.0.1:", port);
            ::close(listen_fd_);
            listen_fd_ = -1;
            return false;
        }
        socklen_t len = sizeof(addr);
        ::getsockname(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
                      &len);
        port_ = int(ntohs(addr.sin_port));
        accept_thread_ = std::thread([this] { acceptLoop(); });
        return true;
    }

    int port() const { return port_; }

    /** Unblock and join every thread; idempotent. */
    void
    stop()
    {
        if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
        if (accept_thread_.joinable()) accept_thread_.join();
        if (listen_fd_ >= 0) {
            ::close(listen_fd_);
            listen_fd_ = -1;
        }
    }

  private:
    void
    acceptLoop()
    {
        std::vector<std::thread> readers;
        std::vector<int> fds;
        for (;;) {
            const int fd = ::accept(listen_fd_, nullptr, nullptr);
            if (fd < 0) break; // stop() shut the listener down
            fds.push_back(fd);
            readers.emplace_back([this, fd] { connectionLoop(fd); });
        }
        // The daemon has drained by the time stop() runs (responses are
        // all sent); unblock any reader still waiting on its peer.
        for (int fd : fds) ::shutdown(fd, SHUT_RDWR);
        for (std::thread &t : readers) t.join();
        for (int fd : fds) ::close(fd);
    }

    void
    connectionLoop(int fd)
    {
        const ResponseSink sink = [fd](const std::string &line) {
            const std::string msg = line + "\n";
            // A gone-away client must not kill the daemon: ignore errors
            // (and suppress SIGPIPE).
            (void)::send(fd, msg.data(), msg.size(), MSG_NOSIGNAL);
        };
        std::string buf;
        char chunk[4096];
        for (;;) {
            const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
            if (n <= 0) break;
            buf.append(chunk, size_t(n));
            size_t eol;
            while ((eol = buf.find('\n')) != std::string::npos) {
                const std::string line = chomp(buf.substr(0, eol));
                buf.erase(0, eol + 1);
                if (line.empty()) continue;
                if (line == "shutdown") {
                    daemon_->closeIntake();
                    continue;
                }
                daemon_->enqueueLine(line, sink);
            }
        }
        if (!chomp(buf).empty() && chomp(buf) != "shutdown") {
            daemon_->enqueueLine(chomp(buf), sink);
        }
    }

    Daemon *daemon_ = nullptr;
    int listen_fd_ = -1;
    int port_ = 0;
    std::thread accept_thread_;
};

/** Parse-time state not stored in the config itself. */
struct ParseState
{
    bool has_mode = false;
    bool has_qps = false;
    bool has_requests = false;
    bool has_vworkers = false;
    bool has_fleet = false;
    bool has_place = false;
    PlacementPolicy place = PlacementPolicy::LeastLoaded;
};

/** The one declaration of every feather_serve flag: parse loop, error
 *  phrasing, and the usage text all derive from this table. */
OptionTable
serveOptions(ServeCliConfig *out, ParseState *st)
{
    const auto set_mode = [out, st](ServeCliConfig::Mode mode) {
        if (st->has_mode && out->mode != mode) {
            return std::string(
                "pick exactly one mode: --stdin, --listen, --replay, "
                "or --qps/--requests");
        }
        out->mode = mode;
        st->has_mode = true;
        return std::string();
    };

    OptionTable t;
    t.unknownSuffix(" (see feather_serve --help)");
    t.flagFn("--stdin",
             "JSON-lines requests on stdin until EOF\n"
             "(or a bare `shutdown` line)",
             [set_mode] { return set_mode(ServeCliConfig::Mode::Stdin); });
    t.custom("--listen", "PORT",
             "TCP frontend on 127.0.0.1:PORT (0 =\n"
             "ephemeral, announced on stderr)",
             [out, set_mode](const std::string &v) {
                 std::string err = set_mode(ServeCliConfig::Mode::Listen);
                 if (!err.empty()) return err;
                 uint64_t port = 0;
                 if (!parseUint(v, &port) || port > 65535) {
                     return OptionTable::invalidValue(
                         "--listen", v, "a port in 0..65535");
                 }
                 out->port = int(port);
                 return std::string();
             });
    t.custom("--replay", "FILE",
             "replay a JSON-lines trace with pinned\n"
             "arrival_us values (deterministic)",
             [out, set_mode](const std::string &v) {
                 std::string err = set_mode(ServeCliConfig::Mode::Replay);
                 if (!err.empty()) return err;
                 out->replay_path = v;
                 return std::string();
             });
    t.custom("--qps", "N",
             "open-loop load generator rate (with\n--requests M)",
             [out, st, set_mode](const std::string &v) {
                 std::string err = set_mode(ServeCliConfig::Mode::LoadGen);
                 if (!err.empty()) return err;
                 if (!parsePositive(v, &out->load.qps, 1000000)) {
                     return OptionTable::invalidValue(
                         "--qps", v, "a positive integer <= 1000000");
                 }
                 st->has_qps = true;
                 return std::string();
             });
    t.custom("--requests", "M", "load generator request count",
             [out, st, set_mode](const std::string &v) {
                 std::string err = set_mode(ServeCliConfig::Mode::LoadGen);
                 if (!err.empty()) return err;
                 if (!parsePositive(v, &out->load.requests, 1000000)) {
                     return OptionTable::invalidValue(
                         "--requests", v, "a positive integer <= 1000000");
                 }
                 st->has_requests = true;
                 return std::string();
             });
    t.str("--trace", "FILE",
          "load generator: also write the\ngenerated trace",
          &out->trace_path);
    t.positiveInt("--jobs", "N",
                  "wall-clock worker pool size, 1..256\n"
                  "(default 1; never changes results)",
                  &out->daemon.num_threads, 256);
    t.positive("--seed", "N",
               "base seed for per-request input\nstreams (default 2024)",
               &out->daemon.base_seed);
    t.custom("--engine", "MODE", "default tier: cycle | analytic",
             [out](const std::string &v) {
                 const std::optional<sim::EngineMode> mode =
                     sim::parseEngineMode(v);
                 if (!mode) {
                     return OptionTable::invalidValue(
                         "--engine", v, "cycle or analytic");
                 }
                 out->daemon.engine = *mode;
                 return std::string();
             });
    t.custom("--vworkers", "N", "identical virtual servers (default 1)",
             [out, st](const std::string &v) {
                 uint64_t n = 0;
                 if (!parsePositive(v, &n, 4096)) {
                     return OptionTable::invalidValue(
                         "--vworkers", v, "a positive integer <= 4096");
                 }
                 out->daemon.virt.vworkers = int(n);
                 st->has_vworkers = true;
                 return std::string();
             });
    t.custom("--fleet", "FILE|SPEC",
             "heterogeneous device fleet: comma-\n"
             "separated device names (arch-zoo\n"
             "entries or feather:<COLS>x<ROWS>) or\n"
             "a file, one device per line",
             [out, st](const std::string &v) {
                 std::string err;
                 if (!parseFleetSpec(v, &out->daemon.fleet, &err)) {
                     return err;
                 }
                 st->has_fleet = true;
                 return std::string();
             });
    t.custom("--place", "POLICY",
             "fleet placement policy: affinity |\n"
             "least-loaded | capability\n"
             "(default least-loaded)",
             [st](const std::string &v) {
                 const std::optional<PlacementPolicy> policy =
                     parsePlacement(v);
                 if (!policy) {
                     return OptionTable::invalidValue(
                         "--place", v,
                         "affinity, least-loaded or capability");
                 }
                 st->place = *policy;
                 st->has_place = true;
                 return std::string();
             });
    t.rangedInt("--max-queue", "N",
                "admission: max waiting requests\n(default 64)",
                &out->daemon.virt.max_queue, 1000000);
    t.custom("--quota", "P=N",
             "admission: max waiting requests of\n"
             "priority P (0..2); repeatable",
             [out](const std::string &v) {
                 const size_t eq = v.find('=');
                 uint64_t prio = 0;
                 uint64_t quota = 0;
                 if (eq == std::string::npos ||
                     !parseUint(v.substr(0, eq), &prio) || prio > 2 ||
                     !parseUint(v.substr(eq + 1), &quota) ||
                     quota > 1000000) {
                     return OptionTable::invalidValue(
                         "--quota", v,
                         "P=N with priority P in 0..2 and N in 0..1000000");
                 }
                 out->daemon.virt.quota[prio] = int64_t(quota);
                 return std::string();
             });
    t.positive("--clock-mhz", "N",
               "virtual clock, service_vus =\nceil(cycles/mhz) (default "
               "1000)",
               &out->daemon.clock_mhz, 1000000);
    t.str("--report-csv", "FILE", "write the per-client report as CSV",
          &out->report_csv);
    t.str("--report-json", "FILE", "write the full report as JSON",
          &out->report_json);
    t.flag("--quiet", "suppress per-request response lines", &out->quiet);
    t.flag("--help", "this text", &out->help);
    return t;
}

} // namespace

// ---------------------------------------------------------------------------
// Command line
// ---------------------------------------------------------------------------

std::string
serveUsage()
{
    ServeCliConfig dummy;
    ParseState st;
    return strCat(
        "usage: feather_serve MODE [OPTIONS]\n"
        "\n"
        "modes (exactly one): --stdin | --listen PORT | --replay FILE |\n"
        "--qps N --requests M [--trace FILE]\n"
        "\n"
        "flags:\n",
        serveOptions(&dummy, &st).helpText(),
        "\n"
        "request lines are flat JSON objects, e.g.\n"
        "  {\"client\":\"c0\",\"scenario\":\"gemm\",\"priority\":0}\n"
        "  {\"client\":\"c1\",\"model\":\"bert_mlp\",\"schedule\":"
        "\"per-layer\"}\n");
}

bool
parseServeCli(const std::vector<std::string> &args, ServeCliConfig *out,
              std::string *error)
{
    *out = ServeCliConfig();
    ParseState st;
    if (!serveOptions(out, &st).parse(args, error)) return false;
    if (out->help) return true;
    if (!st.has_mode) {
        *error = "pick a mode: --stdin, --listen PORT, --replay FILE, or "
                 "--qps N --requests M";
        return false;
    }
    if (out->mode == ServeCliConfig::Mode::LoadGen &&
        (!st.has_qps || !st.has_requests)) {
        *error = "the load generator needs both --qps N and --requests M";
        return false;
    }
    if (!out->trace_path.empty() &&
        out->mode != ServeCliConfig::Mode::LoadGen) {
        *error = "--trace only applies to load-generator mode "
                 "(--qps/--requests)";
        return false;
    }
    if (st.has_fleet && st.has_vworkers) {
        *error = "--fleet and --vworkers are mutually exclusive (the "
                 "fleet defines the virtual servers)";
        return false;
    }
    if (st.has_place && !st.has_fleet) {
        *error = "--place needs --fleet (placement applies to a device "
                 "fleet)";
        return false;
    }
    if (st.has_place) out->daemon.fleet.place = st.place;
    return true;
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

int
serveMain(const ServeCliConfig &config)
{
    if (config.help) {
        std::printf("%s", serveUsage().c_str());
        return 0;
    }

    Daemon daemon(config.daemon);
    const ResponseSink stdout_sink =
        config.quiet ? ResponseSink()
                     : ResponseSink([](const std::string &line) {
                           std::fprintf(stdout, "%s\n", line.c_str());
                       });

    DaemonReport report;
    switch (config.mode) {
    case ServeCliConfig::Mode::Replay: {
        std::ifstream in(config.replay_path, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "feather_serve: cannot read trace '%s'\n",
                         config.replay_path.c_str());
            return 2;
        }
        std::string line;
        while (std::getline(in, line)) {
            line = chomp(line);
            if (line.empty() || line[0] == '#') continue;
            daemon.enqueueLine(line, stdout_sink);
        }
        daemon.closeIntake();
        report = daemon.run();
        break;
    }
    case ServeCliConfig::Mode::LoadGen: {
        LoadGenConfig load = config.load;
        load.seed = config.daemon.base_seed;
        const std::vector<Request> requests = generateLoad(load);
        if (!config.trace_path.empty() &&
            !writeFile(config.trace_path, toTraceText(requests))) {
            std::fprintf(stderr, "feather_serve: cannot write trace '%s'\n",
                         config.trace_path.c_str());
            return 2;
        }
        for (const Request &req : requests) {
            daemon.enqueue(req, stdout_sink);
        }
        daemon.closeIntake();
        report = daemon.run();
        break;
    }
    case ServeCliConfig::Mode::Stdin: {
        std::thread reader([&daemon, &stdout_sink] {
            std::string line;
            while (std::getline(std::cin, line)) {
                line = chomp(line);
                if (line.empty()) continue;
                if (line == "shutdown") break;
                daemon.enqueueLine(line, stdout_sink);
            }
            daemon.closeIntake();
        });
        report = daemon.run();
        reader.join();
        break;
    }
    case ServeCliConfig::Mode::Listen: {
        TcpFrontend frontend;
        std::string err;
        if (!frontend.start(&daemon, config.port, &err)) {
            std::fprintf(stderr, "feather_serve: %s\n", err.c_str());
            return 2;
        }
        std::fprintf(stderr, "feather_serve: listening on 127.0.0.1:%d\n",
                     frontend.port());
        report = daemon.run();
        frontend.stop();
        break;
    }
    }
    std::fflush(stdout);

    std::fprintf(stderr, "%s", report.summaryTable().c_str());
    if (!config.report_csv.empty() &&
        !writeFile(config.report_csv, report.toCsv())) {
        std::fprintf(stderr, "feather_serve: cannot write '%s'\n",
                     config.report_csv.c_str());
        return 1;
    }
    if (!config.report_json.empty() &&
        !writeFile(config.report_json, report.toJson() + "\n")) {
        std::fprintf(stderr, "feather_serve: cannot write '%s'\n",
                     config.report_json.c_str());
        return 1;
    }
    return daemon.failures() > 0 ? 1 : 0;
}

int
serveCliMain(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    ServeCliConfig config;
    std::string error;
    if (!parseServeCli(args, &config, &error)) {
        std::fprintf(stderr, "feather_serve: %s\n", error.c_str());
        return 2;
    }
    return serveMain(config);
}

} // namespace daemon
} // namespace feather
