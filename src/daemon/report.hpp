#pragma once

/**
 * @file
 * Aggregated results of one daemon run.
 *
 * One ClientRow per client (sorted by name), plus run-wide summary
 * figures. Like serve::BatchReport, every field except the `*_wall_us`
 * ones is deterministic for a given request stream and base seed —
 * independent of --jobs, of wall-clock execution order, and of response
 * interleaving — because everything virtual is computed by the
 * single-threaded DES (daemon/vclock.hpp) and latency percentiles come
 * from integer histograms (common/histogram.hpp) merged per client.
 *
 * Counter semantics: requests = accepted + rejected + errors. `accepted`
 * covers requests that entered virtual service (including MISMATCH runs);
 * `errors` covers parse, validation and execution failures; `rejected`
 * covers admission control only. cache_hits/cache_misses attribute
 * *admission-time planning* to the client that caused it; the summary's
 * plan_cache block is the shared cache's global truth and additionally
 * counts runtime lookups by speculative execution (every parsable
 * request executes, even if admission later rejects it — the virtual
 * system sheds the load, the harness measures everything).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "serve/plan_cache.hpp"

namespace feather {
namespace daemon {

/** Per-client accounting over one daemon run. */
struct ClientRow
{
    std::string client;
    uint64_t requests = 0;
    uint64_t accepted = 0;
    uint64_t rejected = 0;
    uint64_t errors = 0;
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    int64_t total_cycles = 0;
    // Virtual latency (finish - arrival) percentiles over accepted
    // requests, in virtual microseconds.
    int64_t p50_vus = 0;
    int64_t p95_vus = 0;
    int64_t p99_vus = 0;
    double mean_queue_vus = 0.0;   ///< mean virtual time spent waiting
    double mean_service_vus = 0.0; ///< mean virtual time in service
    /** Wall time between enqueue and speculative execution start, summed.
     *  Non-deterministic; determinism checks zero it (`_wall_us`). */
    int64_t queue_wall_us = 0;
    /** Wall time spent executing this client's requests, summed. */
    int64_t service_wall_us = 0;
};

/** Per-device accounting over one fleet-mode daemon run. Every field is
 *  virtual-time bookkeeping, so device rows are fully deterministic. */
struct DeviceRow
{
    std::string device; ///< unique fleet name ("feather:32x32")
    int64_t capability = 0; ///< placement weight (PE count)
    uint64_t requests = 0;  ///< completions served on this device
    int64_t busy_vus = 0;   ///< virtual time in service (incl. hand-offs)
    int64_t queue_p95_vus = 0; ///< p95 virtual wait before service
    /** Virtual per-device plan-cache warmth: a request's planning points
     *  count as hits only when this device saw them before (device-scoped
     *  keys; see serve::PlanCache::scopedKey). */
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    uint64_t handoffs = 0;   ///< placements that switched devices
    int64_t handoff_vus = 0; ///< summed cross-device hand-off premiums
};

/** Everything one daemon run produced. */
struct DaemonReport
{
    std::vector<ClientRow> clients; ///< sorted by client name
    /** Fleet mode only: one row per device, in fleet order. Empty in
     *  homogeneous --vworkers runs, which keeps the classic CSV/JSON
     *  schemas byte-identical. */
    std::vector<DeviceRow> devices;

    uint64_t requests = 0;
    uint64_t accepted = 0;
    uint64_t rejected = 0;
    uint64_t errors = 0;
    // Run-wide virtual latency distribution (all clients merged).
    int64_t p50_vus = 0;
    int64_t p95_vus = 0;
    int64_t p99_vus = 0;
    int64_t max_vus = 0;
    /** Virtual finish of the last accepted request. */
    int64_t makespan_vus = 0;
    /** Accepted requests per virtual second (accepted/makespan). */
    double virtual_rps = 0.0;
    int64_t total_cycles = 0;
    int64_t total_macs = 0;
    serve::PlanCache::Stats cache;
    uint64_t base_seed = 0;
    int vworkers = 1;
    uint64_t clock_mhz = 0;
    std::string engine; ///< default engine tier ("cycle"/"analytic")
    /** Fleet mode only: the --fleet spec and --place policy. */
    std::string fleet;
    std::string place;
    /** Wall duration of the whole run; zeroed by determinism checks. */
    int64_t run_wall_us = 0;

    /** One CSV row per client (header included); fleet runs append a
     *  blank line plus a per-device section with its own header. */
    std::string toCsv() const;

    /** The whole report as one line of JSON. */
    std::string toJson() const;

    /** Aligned console table plus a summary line. */
    std::string summaryTable() const;
};

} // namespace daemon
} // namespace feather
