#include "daemon/load_gen.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace feather {
namespace daemon {

std::vector<Request>
generateLoad(const LoadGenConfig &cfg)
{
    // Separate derived streams: arrivals (stream 0) and shapes (stream 1).
    Rng arrivals = Rng::forStream(cfg.seed, 0);
    Rng shapes = Rng::forStream(cfg.seed, 1);

    // Uniform integer gaps in [1, 2*period-1]: mean = period = 1e6/qps
    // microseconds, computed without floating point so traces are
    // byte-identical across platforms.
    const uint64_t qps = std::max<uint64_t>(1, cfg.qps);
    const int64_t period = std::max<int64_t>(1, int64_t(1000000 / qps));

    static const char *const kScenarios[] = {
        "gemm", "quickstart_conv", "depthwise", "conv1x1", "gemm_skewed"};
    constexpr size_t kNumScenarios =
        sizeof(kScenarios) / sizeof(kScenarios[0]);

    std::vector<Request> out;
    out.reserve(cfg.requests);
    int64_t t = 0;
    for (uint64_t i = 0; i < cfg.requests; ++i) {
        t += 1 + int64_t(arrivals.below(uint64_t(2 * period - 1)));

        Request req;
        req.id = strCat("r", i);
        req.arrival_us = t;
        req.client = strCat(
            "c", shapes.below(uint64_t(std::max(1, cfg.clients))));
        req.priority = int(shapes.below(3));
        if (cfg.model_every > 0 && i > 0 && i % cfg.model_every == 0) {
            req.model = "bert_mlp";
        } else {
            req.scenario = kScenarios[shapes.below(kNumScenarios)];
            // A quarter of the scenario stream runs the analytic tier —
            // cheap estimates interleaved with verified cycle runs, like
            // a planner probing alongside production traffic.
            if (shapes.below(4) == 0) {
                req.engine = sim::EngineMode::Analytic;
            }
            // Occasionally pin a dataflow instead of the per-layer
            // family, so the plan cache sees distinct keys per workload.
            const uint64_t df = shapes.below(4);
            if (df == 1) req.dataflow = "ws";
            if (df == 2) req.dataflow = "cp";
        }
        out.push_back(std::move(req));
    }
    return out;
}

std::string
toTraceText(const std::vector<Request> &requests)
{
    std::string out;
    for (const Request &req : requests) {
        out += req.toJsonLine();
        out += '\n';
    }
    return out;
}

} // namespace daemon
} // namespace feather
