#pragma once

/**
 * @file
 * Deterministic open-loop load generator for the serving daemon.
 *
 * Generates a pinned-arrival request stream (`--qps N --requests M`):
 * inter-arrival gaps are uniform integers with mean 1e6/qps microseconds
 * — integer-only arithmetic, no libm, so the same (seed, qps, requests)
 * triple produces a byte-identical trace on every platform. Arrival
 * times and request shapes draw from *separate* derived RNG streams, so
 * changing the rate never changes which workloads are requested.
 *
 * The mix exercises the daemon end to end: several clients, all three
 * priorities, a handful of scenarios across both engine tiers, and an
 * occasional whole-model scheduling request.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "daemon/request.hpp"

namespace feather {
namespace daemon {

/** Load-generation knobs. */
struct LoadGenConfig
{
    uint64_t qps = 200;       ///< mean virtual arrival rate (--qps)
    uint64_t requests = 100;  ///< stream length (--requests)
    uint64_t seed = 2024;     ///< stream base (the daemon's base seed)
    int clients = 4;          ///< client names c0..c<clients-1>
    /** Every Nth request asks for whole-model scheduling (0 = never). */
    uint64_t model_every = 40;
};

/** The deterministic request stream for @p cfg (arrival_us pinned,
 *  non-decreasing; ids r0..r<requests-1>). */
std::vector<Request> generateLoad(const LoadGenConfig &cfg);

/** Requests as a JSON-lines trace (`--trace FILE` body); replayable via
 *  `feather_serve --replay`. */
std::string toTraceText(const std::vector<Request> &requests);

} // namespace daemon
} // namespace feather
