#pragma once

/**
 * @file
 * The long-running serving daemon: a persistent event loop with
 * continuous batching, admission control and a warm shared plan cache.
 *
 * Lifecycle:
 *   - Frontend threads (stdin reader, TCP connections, the load
 *     generator, a trace replayer) call enqueue()/enqueueLine() as
 *     requests arrive. Enqueue validates the request, *pre-plans* it
 *     through the shared PlanCache (attributing per-client hits/misses
 *     under the intake lock, so attribution is deterministic), and
 *     immediately submits its simulation to the wall-clock thread pool —
 *     speculative, continuous execution with no wave barrier.
 *   - run() — the event loop, on the caller's thread — consumes requests
 *     in intake order and feeds their arrivals to the VirtualScheduler,
 *     which decides admission and virtual timing. Responses (one JSON
 *     line each) are emitted from this single thread, in deterministic
 *     order for pinned-arrival request streams.
 *   - closeIntake() (EOF / shutdown control line) lets run() drain and
 *     return the final DaemonReport.
 *
 * Determinism: for a request stream with pinned arrival_us values, every
 * response and every report field other than `*_wall_us` is bit-identical
 * at any pool size, because all serving decisions happen in virtual time
 * on the DES thread and each request's simulation draws from its own
 * derived RNG stream (Rng::deriveStream(base_seed, intake_index)).
 */

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/histogram.hpp"
#include "daemon/fleet.hpp"
#include "daemon/report.hpp"
#include "daemon/request.hpp"
#include "daemon/vclock.hpp"
#include "serve/plan_cache.hpp"
#include "serve/thread_pool.hpp"

namespace feather {
namespace daemon {

/** Daemon-wide knobs. */
struct DaemonOptions
{
    /** Wall-clock worker pool size (`--jobs N`); affects throughput and
     *  `*_wall_us` fields only, never results. */
    int num_threads = 1;
    uint64_t base_seed = 2024; ///< stream base for per-request seeds
    /** Default engine tier for requests that do not pin one. */
    sim::EngineMode engine = sim::EngineMode::Cycle;
    /** Virtual serving system (vworkers, queue depth, quotas). */
    VirtualConfig virt;
    /** Virtual clock: service_vus = ceil(cycles / clock_mhz). */
    uint64_t clock_mhz = 1000;
    /** Heterogeneous fleet (--fleet): when enabled, each virtual server
     *  is a distinct named device, requests are placed by fleet.place,
     *  and cross-device hand-offs are priced into service time. Overrides
     *  virt.vworkers/virt.devices. */
    FleetConfig fleet;
};

/** Where a request's response line goes (per-request: TCP connections
 *  each bring their own sink). Called only from the run() thread. */
using ResponseSink = std::function<void(const std::string &line)>;

/** Persistent serving daemon over the batch simulation engine. */
class Daemon
{
  public:
    explicit Daemon(DaemonOptions opts = {});
    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /** Parse @p line and enqueue it; unparsable lines become error
     *  responses attributed to client "_invalid" (or the line's client
     *  when that field parsed before the failure). */
    void enqueueLine(const std::string &line, ResponseSink sink);

    /** Enqueue an already-parsed request. */
    void enqueue(Request req, ResponseSink sink);

    /** No further requests; run() returns once the queue drains. */
    void closeIntake();

    /**
     * The event loop: processes intake until closeIntake() and every
     * request has been answered, then returns the final report. Call
     * exactly once, from one thread (enqueue is safe concurrently).
     */
    DaemonReport run();

    /** Requests that failed (parse, validation, execution, mismatch) —
     *  admission rejections are serving behavior, not failures. */
    uint64_t failures() const;

    serve::PlanCache &cache() { return cache_; }
    const DaemonOptions &options() const { return opts_; }

  private:
    /** One contiguous same-device segment of a whole-graph fleet
     *  schedule (graph-over-fleet requests only). */
    struct ExecSegment
    {
        int device = -1;
        int64_t cycles = 0; ///< measured cycles of the segment's layers
        /** Price of the cross-device edge feeding this segment (0 for
         *  the first segment). */
        int64_t handoff_cycles = 0;
    };

    /** Outcome of one speculative execution (filled on a pool thread). */
    struct ExecResult
    {
        bool ok = false;
        std::string error;
        bool est = false; ///< analytic scenario run: nothing to verify
        int64_t cycles = 0;
        int64_t macs = 0;
        int64_t checked = 0;
        int64_t mismatches = 0;
        int64_t queue_wall_us = 0;   ///< enqueue -> execution start
        int64_t service_wall_us = 0; ///< execution duration
        // Graph-over-fleet requests: the pipeline the DES will stage.
        std::vector<ExecSegment> segments;
        std::string path;        ///< "devA>devB" device chain
        Layout first_in_layout;  ///< first layer's chosen input layout
        Extents first_in_extents;
    };

    /** One speculative execution at one resolved array shape. Fleet mode
     *  runs a request once per *distinct* device shape; the DES then
     *  charges the placed device's variant. Homogeneous runs have exactly
     *  one variant. */
    struct ExecVariant
    {
        int aw = 0; ///< shape override passed to execution (0 = default)
        int ah = 0;
        std::promise<void> done;
        std::future<void> done_future;
        ExecResult exec; ///< written by the pool task before done
    };

    /** What one fleet device would do with one request (filled at
     *  admission time, on the intake path, under mu_). */
    struct DevicePlan
    {
        bool feasible = false;
        int variant = 0;    ///< index into Pending::variants
        Layout in_layout;   ///< first layer's planned input layout
        Extents in_extents; ///< first layer's input tensor extents
        std::vector<std::string> keys; ///< base plan keys at this shape
    };

    /** One request in flight, owned by the daemon until run() returns. */
    struct Pending
    {
        Request req;
        ResponseSink sink;
        size_t index = 0;       ///< intake order (seed stream index)
        int64_t arrival_vus = 0;
        int64_t enqueue_wall_us = 0;
        std::string early_error; ///< parse/validation error; skips the DES
        std::vector<std::unique_ptr<ExecVariant>> variants;
        std::vector<DevicePlan> dev_plan; ///< fleet mode: one per device
        int64_t service_vus = 0;
        int device = -1;         ///< placed device (fleet mode)
        int64_t handoff_vus = 0; ///< cross-device hand-off premium paid
        /** Graph-over-fleet request: ran as a staged DES pipeline
         *  (per-stage device accounting happens in the stage hook, and
         *  the response's device field carries the whole path). */
        bool staged = false;
        std::vector<StagePlan> stage_plans;
    };

    /** Per-client accounting, folded into ClientRows at report time. */
    struct ClientStats
    {
        uint64_t requests = 0;
        uint64_t accepted = 0;
        uint64_t rejected = 0;
        uint64_t errors = 0;
        uint64_t cache_hits = 0;
        uint64_t cache_misses = 0;
        int64_t cycles = 0;
        int64_t macs = 0;
        LatencyHistogram latency;
        int64_t queue_vus = 0;
        int64_t service_vus = 0;
        int64_t queue_wall_us = 0;
        int64_t service_wall_us = 0;
    };

    /** Per-device virtual bookkeeping (fleet mode; run() thread). */
    struct DeviceStats
    {
        uint64_t requests = 0;
        int64_t busy_vus = 0;
        LatencyHistogram queue;
        uint64_t cache_hits = 0;
        uint64_t cache_misses = 0;
        uint64_t handoffs = 0;
        int64_t handoff_vus = 0;
    };

    /** Outcome of planning one request at one resolved array shape. */
    struct ShapeInfo
    {
        bool feasible = false;
        std::string error;  ///< why this shape cannot run
        Layout in_layout;   ///< first layer's planned input layout
        Extents in_extents;
        std::vector<std::string> keys; ///< base plan keys at this shape
    };

    int64_t wallSinceStartUs() const;

    /**
     * Validate @p p->req and warm the plan cache with every planning
     * point its execution will look up, attributing hits/misses to
     * @p stats. Runs under mu_ (sequential in intake order =>
     * deterministic attribution). Fleet mode plans once per distinct
     * device shape, fills p->dev_plan, and creates one ExecVariant per
     * feasible shape. Returns a non-empty reason when the request can
     * never run (unknown workload, bad override, infeasible mapping on
     * every device).
     */
    std::string preplanLocked(Pending *p, ClientStats *stats);

    /** Plan every layer of @p req at one resolved shape (under mu_). */
    ShapeInfo planShapeLocked(const Request &req, ClientStats *stats,
                              int aw, int ah);

    /** Fleet-mode model request: warm every (layer, family, device)
     *  point the whole-graph fleet scheduler will enumerate (through
     *  each device's cache scope), under mu_. */
    std::string planModelFleetLocked(Pending *p, ClientStats *stats);

    /** The speculative execution body (pool thread). */
    void execute(Pending *p, ExecVariant *v);

    /** The variant the DES charges when @p p runs on @p device. */
    ExecVariant *variantFor(Pending *p, int device) const;

    void respond(Pending *p, const std::string &line);

    /** Event-loop helpers (run() thread). */
    void finishOne(Pending *p, int device, int64_t start_vus,
                   int64_t finish_vus);
    DaemonReport buildReport(const VirtualScheduler &vs) const;

    DaemonOptions opts_;
    serve::PlanCache cache_;
    std::unique_ptr<serve::ThreadPool> pool_;
    std::chrono::steady_clock::time_point start_;

    mutable std::mutex mu_;
    std::condition_variable intake_cv_;
    std::deque<std::unique_ptr<Pending>> intake_;
    std::vector<std::unique_ptr<Pending>> processed_; ///< run()-owned
    bool closed_ = false;
    size_t next_index_ = 0;
    /** Keys already planned at admission time: replicates the cache's
     *  own hit/miss behavior without racing the pool's runtime lookups,
     *  keeping per-client counters deterministic. */
    std::unordered_set<std::string> planned_keys_;
    std::map<std::string, ClientStats> clients_;
    uint64_t failures_ = 0;
    uint64_t total_requests_ = 0;

    // Fleet-mode placement state, touched only by the run() thread.
    std::vector<DeviceStats> dev_stats_;          ///< fleet order
    std::unordered_set<std::string> device_keys_; ///< device-scoped keys
    std::map<std::string, int> client_device_;    ///< last placed device
};

} // namespace daemon
} // namespace feather
