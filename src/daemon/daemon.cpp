#include "daemon/daemon.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "model/graph.hpp"
#include "model/scheduler.hpp"
#include "sim/scenario.hpp"

namespace feather {
namespace daemon {

namespace {

/** Dataflow families a model request enumerates — must mirror the
 *  scheduler's candidate enumeration so pre-planning warms exactly the
 *  keys Scheduler::evaluate will look up. */
constexpr sim::DataflowKind kModelFamilies[] = {
    sim::DataflowKind::Canonical,
    sim::DataflowKind::ChannelParallel,
    sim::DataflowKind::WindowParallel,
};

std::string
reasonLine(const Request &req, const char *status, const std::string &reason)
{
    return strCat("{\"id\":\"", jsonEscape(req.id), "\",\"client\":\"",
                  jsonEscape(req.client), "\",\"status\":\"", status,
                  "\",\"reason\":\"", jsonEscape(reason), "\"}");
}

} // namespace

Daemon::Daemon(DaemonOptions opts) : opts_(opts)
{
    if (opts_.num_threads < 1) opts_.num_threads = 1;
    if (opts_.clock_mhz < 1) opts_.clock_mhz = 1;
    pool_ = std::make_unique<serve::ThreadPool>(opts_.num_threads);
    start_ = std::chrono::steady_clock::now();
}

Daemon::~Daemon()
{
    // Speculative executions hold raw pointers into intake_/processed_;
    // let them land before the members go away.
    if (pool_) pool_->wait();
}

int64_t
Daemon::wallSinceStartUs() const
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
}

std::string
Daemon::preplanLocked(const Request &req, ClientStats *stats)
{
    const sim::EngineMode mode = req.engine ? *req.engine : opts_.engine;
    // One planning point: count hit/miss against the admission-time
    // planning history (racing the pool's runtime lookups would make
    // per-client counters timing-dependent), then actually plan.
    const auto plan_point = [&](sim::DataflowKind kind,
                                const LayerSpec &layer, int aw, int ah,
                                std::string *err) {
        const std::string key =
            serve::PlanCache::key(mode, kind, layer, aw, ah);
        if (planned_keys_.insert(key).second) {
            ++stats->cache_misses;
        } else {
            ++stats->cache_hits;
        }
        return cache_.getOrPlan(mode, kind, layer, aw, ah, err).has_value();
    };

    if (!req.isModel()) {
        const sim::Scenario *scenario = sim::findScenario(req.scenario);
        if (!scenario) {
            return strCat("unknown scenario \"", req.scenario, "\"");
        }
        const int aw = req.aw > 0 ? req.aw : scenario->default_aw;
        const int ah = req.ah > 0 ? req.ah : scenario->default_ah;
        std::optional<sim::DataflowKind> forced;
        if (!req.dataflow.empty()) {
            forced = sim::parseDataflow(req.dataflow);
            if (!forced) {
                return strCat("unknown dataflow \"", req.dataflow, "\"");
            }
        }
        for (const sim::ScenarioLayer &sl : scenario->layers) {
            std::string err;
            if (!plan_point(forced ? *forced : sl.dataflow, sl.layer, aw,
                            ah, &err)) {
                return strCat("layer ", sl.layer.name, ": ", err);
            }
        }
        return "";
    }

    const model::ModelGraph *graph = model::findModel(req.model);
    if (!graph) {
        return strCat("unknown model \"", req.model, "\"");
    }
    std::string err;
    if (!model::parseSchedule(req.schedule, &err)) return err;
    const int aw = req.aw > 0 ? req.aw : graph->default_aw;
    const int ah = req.ah > 0 ? req.ah : graph->default_ah;
    for (const model::ModelLayer &ml : graph->layers) {
        bool feasible = false;
        for (sim::DataflowKind kind : kModelFamilies) {
            if (plan_point(kind, ml.spec, aw, ah, &err)) feasible = true;
        }
        if (!feasible) {
            return strCat("no dataflow family fits ", ml.spec.name, " on a ",
                          aw, "x", ah, " array: ", err);
        }
    }
    return "";
}

void
Daemon::enqueue(Request req, ResponseSink sink)
{
    auto p = std::make_unique<Pending>();
    p->req = std::move(req);
    p->sink = std::move(sink);
    p->done_future = p->done.get_future();

    bool runnable = false;
    Pending *raw = p.get();
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (closed_) {
            // Late arrival racing shutdown (TCP). Answer directly — the
            // event loop may already be unreachable.
            if (p->sink) {
                p->sink(reasonLine(p->req, "rejected", "intake closed"));
            }
            return;
        }
        p->index = next_index_++;
        ++total_requests_;
        if (p->req.id.empty()) p->req.id = strCat("r", p->index);
        p->enqueue_wall_us = wallSinceStartUs();
        p->arrival_vus = p->req.arrival_us >= 0 ? p->req.arrival_us
                                                : p->enqueue_wall_us;
        ClientStats &cs = clients_[p->req.client];
        ++cs.requests;
        if (p->early_error.empty()) {
            p->early_error = preplanLocked(p->req, &cs);
        }
        runnable = p->early_error.empty();
        intake_.push_back(std::move(p));
    }
    // Continuous batching: the simulation starts the moment the request
    // is planned, regardless of admission (decided later, in virtual
    // time). A rejected request's result is simply discarded.
    if (runnable) {
        pool_->submit([this, raw] { execute(raw); });
    }
    intake_cv_.notify_one();
}

void
Daemon::enqueueLine(const std::string &line, ResponseSink sink)
{
    auto p = std::make_unique<Pending>();
    std::string error;
    if (!Request::parse(line, &p->req, &error)) {
        // Attribute the failure to the line's client when that field
        // parsed before the error; "anon" otherwise.
        Request bad = p->req;
        bad.scenario.clear();
        bad.model.clear();
        Pending *raw = p.get();
        raw->early_error = strCat("bad request line: ", error);
        raw->req = std::move(bad);
        raw->sink = std::move(sink);
        raw->done_future = raw->done.get_future();
        std::lock_guard<std::mutex> lk(mu_);
        if (closed_) return;
        raw->index = next_index_++;
        ++total_requests_;
        if (raw->req.id.empty()) raw->req.id = strCat("r", raw->index);
        raw->enqueue_wall_us = wallSinceStartUs();
        raw->arrival_vus = raw->enqueue_wall_us;
        ++clients_[raw->req.client].requests;
        intake_.push_back(std::move(p));
        intake_cv_.notify_one();
        return;
    }
    enqueue(std::move(p->req), std::move(sink));
}

void
Daemon::closeIntake()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        closed_ = true;
    }
    intake_cv_.notify_all();
}

void
Daemon::execute(Pending *p)
{
    const auto exec_start = std::chrono::steady_clock::now();
    ExecResult &r = p->exec;
    r.queue_wall_us = wallSinceStartUs() - p->enqueue_wall_us;
    const uint64_t seed =
        p->req.seed ? *p->req.seed
                    : Rng::deriveStream(opts_.base_seed, p->index);
    const sim::EngineMode mode =
        p->req.engine ? *p->req.engine : opts_.engine;
    try {
        if (!p->req.isModel()) {
            const sim::Scenario *scenario =
                sim::findScenario(p->req.scenario);
            FEATHER_CHECK(scenario != nullptr,
                          "pre-planned scenario vanished");
            sim::ScenarioOptions sopts;
            sopts.aw = p->req.aw;
            sopts.ah = p->req.ah;
            sopts.dataflow = p->req.dataflow;
            sopts.layout = p->req.layout;
            sopts.out_layout = p->req.out_layout;
            sopts.engine = mode;
            sopts.seed = seed;
            std::string err;
            const std::optional<sim::ScenarioRun> run =
                sim::runScenario(*scenario, sopts, &err, cache_.planFn());
            if (!run) {
                r.error = err;
            } else {
                r.ok = true;
                r.est = mode == sim::EngineMode::Analytic;
                for (const sim::RunResult &lr : run->chain.layers) {
                    r.cycles += lr.stats.cycles;
                    r.macs += lr.stats.macs;
                }
                r.checked = run->chain.checked;
                r.mismatches = run->chain.mismatches;
            }
        } else {
            const model::ModelGraph *graph = model::findModel(p->req.model);
            FEATHER_CHECK(graph != nullptr, "pre-planned model vanished");
            const std::optional<model::SchedulePolicy> policy =
                model::parseSchedule(p->req.schedule);
            FEATHER_CHECK(policy.has_value(),
                          "pre-validated schedule vanished");
            model::SchedulerOptions mopts;
            mopts.aw = p->req.aw;
            mopts.ah = p->req.ah;
            // One request = one pool slot; parallelism comes from serving
            // many requests, not from fanning out inside one.
            mopts.num_threads = 1;
            mopts.seed = seed;
            mopts.engine = mode;
            mopts.shared_cache = &cache_;
            model::Scheduler sched(mopts);
            std::string err;
            const std::optional<model::Evaluation> eval =
                sched.evaluate(*graph, &err);
            std::optional<model::ScheduleResult> result;
            if (eval) result = sched.schedule(*graph, *eval, *policy, &err);
            if (!result) {
                r.error = err;
            } else {
                // The measured chain is always cycle-accurate, whatever
                // tier evaluated the candidates — so model results are
                // verified ("ok"), never estimates.
                r.ok = true;
                r.cycles = result->cycles;
                r.macs = result->macs;
                r.checked = result->checked;
                r.mismatches = result->mismatches;
            }
        }
    } catch (const std::exception &e) {
        r.ok = false;
        r.error = e.what();
    }
    r.service_wall_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - exec_start)
            .count();
    p->done.set_value();
}

void
Daemon::respond(Pending *p, const std::string &line)
{
    if (p->sink) p->sink(line);
}

void
Daemon::finishOne(Pending *p, int64_t start_vus, int64_t finish_vus)
{
    const ExecResult &r = p->exec;
    if (!r.ok) {
        {
            std::lock_guard<std::mutex> lk(mu_);
            ++clients_[p->req.client].errors;
            ++failures_;
        }
        respond(p, reasonLine(p->req, "ERROR", r.error));
        return;
    }
    const int64_t queue_vus = start_vus - p->arrival_vus;
    const int64_t latency_vus = finish_vus - p->arrival_vus;
    const char *status =
        r.est ? "est" : (r.mismatches == 0 ? "ok" : "MISMATCH");
    {
        std::lock_guard<std::mutex> lk(mu_);
        ClientStats &cs = clients_[p->req.client];
        ++cs.accepted;
        cs.cycles += r.cycles;
        cs.macs += r.macs;
        cs.latency.record(latency_vus);
        cs.queue_vus += queue_vus;
        cs.service_vus += p->service_vus;
        cs.queue_wall_us += r.queue_wall_us;
        cs.service_wall_us += r.service_wall_us;
        if (r.mismatches != 0) ++failures_;
    }
    respond(p, strCat("{\"id\":\"", jsonEscape(p->req.id),
                      "\",\"client\":\"", jsonEscape(p->req.client),
                      "\",\"status\":\"", status, "\",\"cycles\":", r.cycles,
                      ",\"macs\":", r.macs, ",\"checked\":", r.checked,
                      ",\"mismatches\":", r.mismatches,
                      ",\"queue_vus\":", queue_vus,
                      ",\"service_vus\":", p->service_vus,
                      ",\"latency_vus\":", latency_vus,
                      ",\"finish_vus\":", finish_vus,
                      ",\"service_wall_us\":", r.service_wall_us, "}"));
}

DaemonReport
Daemon::run()
{
    // Requests the DES admitted, indexed by DES position.
    std::vector<Pending *> des;
    VirtualScheduler vs(
        opts_.virt,
        [this, &des](size_t pos) {
            Pending *p = des[pos];
            // The one synchronization point between virtual time and the
            // wall-clock pool: a request's service duration is known once
            // its speculative execution lands.
            p->done_future.wait();
            const int64_t cycles = p->exec.ok ? p->exec.cycles : 0;
            p->service_vus = std::max<int64_t>(
                1, (cycles + int64_t(opts_.clock_mhz) - 1) /
                       int64_t(opts_.clock_mhz));
            return p->service_vus;
        },
        [this, &des](size_t pos, int64_t start_vus, int64_t finish_vus) {
            finishOne(des[pos], start_vus, finish_vus);
        });

    int64_t last_arrival = 0;
    for (;;) {
        std::unique_ptr<Pending> item;
        {
            std::unique_lock<std::mutex> lk(mu_);
            intake_cv_.wait(lk,
                            [this] { return !intake_.empty() || closed_; });
            if (intake_.empty()) break;
            item = std::move(intake_.front());
            intake_.pop_front();
        }
        Pending *p = item.get();
        processed_.push_back(std::move(item));

        if (!p->early_error.empty()) {
            {
                std::lock_guard<std::mutex> lk(mu_);
                ++clients_[p->req.client].errors;
                ++failures_;
            }
            respond(p, reasonLine(p->req, "ERROR", p->early_error));
            continue;
        }
        if (p->arrival_vus < last_arrival) {
            {
                std::lock_guard<std::mutex> lk(mu_);
                ++clients_[p->req.client].errors;
                ++failures_;
            }
            respond(p, reasonLine(
                           p->req, "ERROR",
                           strCat("arrival_us ", p->arrival_vus,
                                  " is earlier than a previous request's ",
                                  last_arrival, " (pinned arrivals must be"
                                  " non-decreasing)")));
            continue;
        }
        last_arrival = p->arrival_vus;

        const size_t pos = des.size();
        des.push_back(p);
        std::string reason;
        if (!vs.arrive(pos, p->arrival_vus, p->req.priority, &reason)) {
            {
                std::lock_guard<std::mutex> lk(mu_);
                ++clients_[p->req.client].rejected;
            }
            respond(p, reasonLine(p->req, "rejected", reason));
        }
    }
    vs.drain();
    // Discarded speculative executions (rejected requests) may still be
    // in flight; land them before reading the cache counters.
    pool_->wait();
    return buildReport(vs);
}

uint64_t
Daemon::failures() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return failures_;
}

DaemonReport
Daemon::buildReport(const VirtualScheduler &vs) const
{
    std::lock_guard<std::mutex> lk(mu_);
    DaemonReport rep;
    rep.base_seed = opts_.base_seed;
    rep.vworkers = opts_.virt.vworkers;
    rep.clock_mhz = opts_.clock_mhz;
    rep.engine = sim::toString(opts_.engine);

    LatencyHistogram all;
    for (const auto &[name, cs] : clients_) {
        ClientRow row;
        row.client = name;
        row.requests = cs.requests;
        row.accepted = cs.accepted;
        row.rejected = cs.rejected;
        row.errors = cs.errors;
        row.cache_hits = cs.cache_hits;
        row.cache_misses = cs.cache_misses;
        row.total_cycles = cs.cycles;
        row.p50_vus = cs.latency.percentile(50);
        row.p95_vus = cs.latency.percentile(95);
        row.p99_vus = cs.latency.percentile(99);
        const uint64_t n = cs.latency.count();
        row.mean_queue_vus = n ? double(cs.queue_vus) / double(n) : 0.0;
        row.mean_service_vus = n ? double(cs.service_vus) / double(n) : 0.0;
        row.queue_wall_us = cs.queue_wall_us;
        row.service_wall_us = cs.service_wall_us;
        rep.clients.push_back(std::move(row));

        rep.requests += cs.requests;
        rep.accepted += cs.accepted;
        rep.rejected += cs.rejected;
        rep.errors += cs.errors;
        rep.total_cycles += cs.cycles;
        rep.total_macs += cs.macs;
        all.merge(cs.latency);
    }
    rep.p50_vus = all.percentile(50);
    rep.p95_vus = all.percentile(95);
    rep.p99_vus = all.percentile(99);
    rep.max_vus = all.max();
    rep.makespan_vus = vs.lastFinish();
    rep.virtual_rps = rep.makespan_vus > 0
                          ? double(rep.accepted) * 1e6 /
                                double(rep.makespan_vus)
                          : 0.0;
    rep.cache = cache_.stats();
    rep.run_wall_us = wallSinceStartUs();
    return rep;
}

} // namespace daemon
} // namespace feather
