#include "daemon/daemon.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "common/bits.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "dataflow/mapping.hpp"
#include "model/graph.hpp"
#include "model/scheduler.hpp"
#include "sim/scenario.hpp"

namespace feather {
namespace daemon {

namespace {

/** Dataflow families a model request enumerates — must mirror the
 *  scheduler's candidate enumeration so pre-planning warms exactly the
 *  keys Scheduler::evaluate will look up. */
constexpr sim::DataflowKind kModelFamilies[] = {
    sim::DataflowKind::Canonical,
    sim::DataflowKind::ChannelParallel,
    sim::DataflowKind::WindowParallel,
};

std::string
reasonLine(const Request &req, const char *status, const std::string &reason)
{
    return strCat("{\"id\":\"", jsonEscape(req.id), "\",\"client\":\"",
                  jsonEscape(req.client), "\",\"status\":\"", status,
                  "\",\"reason\":\"", jsonEscape(reason), "\"}");
}

} // namespace

Daemon::Daemon(DaemonOptions opts) : opts_(opts)
{
    if (opts_.num_threads < 1) opts_.num_threads = 1;
    if (opts_.clock_mhz < 1) opts_.clock_mhz = 1;
    if (opts_.fleet.enabled()) {
        // The fleet *is* the virtual serving system: one virtual server
        // per device, placement by the fleet's policy.
        opts_.virt.devices = toVirtualDevices(opts_.fleet);
        opts_.virt.place = opts_.fleet.place;
        opts_.virt.vworkers = int(opts_.fleet.devices.size());
        dev_stats_.resize(opts_.fleet.devices.size());
    }
    pool_ = std::make_unique<serve::ThreadPool>(opts_.num_threads);
    start_ = std::chrono::steady_clock::now();
}

Daemon::~Daemon()
{
    // Speculative executions hold raw pointers into intake_/processed_;
    // let them land before the members go away.
    if (pool_) pool_->wait();
}

int64_t
Daemon::wallSinceStartUs() const
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
}

Daemon::ShapeInfo
Daemon::planShapeLocked(const Request &req, ClientStats *stats, int aw,
                        int ah)
{
    const sim::EngineMode mode = req.engine ? *req.engine : opts_.engine;
    ShapeInfo info;
    // One planning point: count hit/miss against the admission-time
    // planning history (racing the pool's runtime lookups would make
    // per-client counters timing-dependent), then actually plan.
    const auto plan_point = [&](sim::DataflowKind kind,
                                const LayerSpec &layer, int paw, int pah,
                                std::string *err) {
        const std::string key =
            serve::PlanCache::key(mode, kind, layer, paw, pah);
        info.keys.push_back(key);
        if (planned_keys_.insert(key).second) {
            ++stats->cache_misses;
        } else {
            ++stats->cache_hits;
        }
        return cache_.getOrPlan(mode, kind, layer, paw, pah, err);
    };

    if (!req.isModel()) {
        const sim::Scenario *scenario = sim::findScenario(req.scenario);
        FEATHER_CHECK(scenario != nullptr, "scenario validated earlier");
        const int eff_aw = aw > 0 ? aw : scenario->default_aw;
        const int eff_ah = ah > 0 ? ah : scenario->default_ah;
        std::optional<sim::DataflowKind> forced;
        if (!req.dataflow.empty()) forced = sim::parseDataflow(req.dataflow);
        bool first = true;
        for (const sim::ScenarioLayer &sl : scenario->layers) {
            std::string err;
            const std::optional<sim::LayerPlan> plan = plan_point(
                forced ? *forced : sl.dataflow, sl.layer, eff_aw, eff_ah,
                &err);
            if (!plan) {
                info.error = strCat("layer ", sl.layer.name, ": ", err);
                return info;
            }
            if (first) {
                info.in_layout = plan->in_layout;
                info.in_extents = iactExtents(sl.layer);
                first = false;
            }
        }
        info.feasible = true;
        return info;
    }

    const model::ModelGraph *graph = model::findModel(req.model);
    FEATHER_CHECK(graph != nullptr, "model validated earlier");
    const int eff_aw = aw > 0 ? aw : graph->default_aw;
    const int eff_ah = ah > 0 ? ah : graph->default_ah;
    bool first = true;
    for (const model::ModelLayer &ml : graph->layers) {
        bool feasible = false;
        std::string err;
        for (sim::DataflowKind kind : kModelFamilies) {
            const std::optional<sim::LayerPlan> plan =
                plan_point(kind, ml.spec, eff_aw, eff_ah, &err);
            if (plan && !feasible) {
                feasible = true;
                if (first) {
                    info.in_layout = plan->in_layout;
                    info.in_extents = iactExtents(ml.spec);
                    first = false;
                }
            }
        }
        if (!feasible) {
            info.error = strCat("no dataflow family fits ", ml.spec.name,
                                " on a ", eff_aw, "x", eff_ah, " array: ",
                                err);
            return info;
        }
    }
    info.feasible = true;
    return info;
}

std::string
Daemon::preplanLocked(Pending *p, ClientStats *stats)
{
    const Request &req = p->req;
    // Shape-independent validation first.
    if (!req.isModel()) {
        if (!sim::findScenario(req.scenario)) {
            return strCat("unknown scenario \"", req.scenario, "\"");
        }
        if (!req.dataflow.empty() && !sim::parseDataflow(req.dataflow)) {
            return strCat("unknown dataflow \"", req.dataflow, "\"");
        }
    } else {
        if (!model::findModel(req.model)) {
            return strCat("unknown model \"", req.model, "\"");
        }
        std::string err;
        if (!model::parseSchedule(req.schedule, &err)) return err;
    }

    const auto add_variant = [&](int aw, int ah) {
        auto v = std::make_unique<ExecVariant>();
        v->aw = aw;
        v->ah = ah;
        v->done_future = v->done.get_future();
        p->variants.push_back(std::move(v));
        return int(p->variants.size()) - 1;
    };

    if (!opts_.fleet.enabled()) {
        const ShapeInfo info =
            planShapeLocked(req, stats, req.aw, req.ah);
        if (!info.feasible) return info.error;
        add_variant(req.aw, req.ah);
        return "";
    }

    if (req.isModel()) {
        // Whole-graph over the fleet: the scheduler places each layer
        // itself, so planning warms its full (layer, family, device)
        // enumeration instead of one shape per device.
        return planModelFleetLocked(p, stats);
    }

    // Fleet: plan once per *distinct* resolved shape (a request that pins
    // --aw/--ah resolves to the same shape everywhere), share the
    // resulting variant between same-shaped devices, and remember per
    // device what its execution would look like.
    const std::vector<DeviceSpec> &devs = opts_.fleet.devices;
    p->dev_plan.resize(devs.size());
    std::map<std::pair<int, int>, std::pair<ShapeInfo, int>> shapes;
    std::string first_error;
    for (size_t d = 0; d < devs.size(); ++d) {
        const int aw = req.aw > 0 ? req.aw : devs[d].aw;
        const int ah = req.ah > 0 ? req.ah : devs[d].ah;
        auto it = shapes.find({aw, ah});
        if (it == shapes.end()) {
            ShapeInfo info = planShapeLocked(req, stats, aw, ah);
            const int variant =
                info.feasible ? add_variant(aw, ah) : -1;
            if (!info.feasible && first_error.empty()) {
                first_error = info.error;
            }
            it = shapes.emplace(std::make_pair(aw, ah),
                                std::make_pair(std::move(info), variant))
                     .first;
        }
        const ShapeInfo &info = it->second.first;
        DevicePlan &dp = p->dev_plan[d];
        dp.feasible = info.feasible;
        if (info.feasible) {
            dp.variant = it->second.second;
            dp.in_layout = info.in_layout;
            dp.in_extents = info.in_extents;
            dp.keys = info.keys;
        }
    }
    if (p->variants.empty()) {
        return strCat("no fleet device can run this request: ",
                      first_error);
    }
    return "";
}

std::string
Daemon::planModelFleetLocked(Pending *p, ClientStats *stats)
{
    const Request &req = p->req;
    const sim::EngineMode mode = req.engine ? *req.engine : opts_.engine;
    const model::ModelGraph *graph = model::findModel(req.model);
    FEATHER_CHECK(graph != nullptr, "model validated earlier");
    const std::vector<DeviceSpec> &devs = opts_.fleet.devices;
    p->dev_plan.resize(devs.size());

    // Mirror Scheduler::evaluate's fleet enumeration exactly: every
    // (layer, family) point on every usable device, at the device's own
    // shape, through the device's cache scope. A layer is schedulable
    // when at least one (device, family) point plans. Shape pins
    // (req.aw/req.ah) are ignored here — the fleet scheduler owns the
    // shapes (documented in the README).
    std::vector<char> layer_ok(graph->layers.size(), 0);
    std::vector<std::string> layer_err(graph->layers.size());
    for (size_t d = 0; d < devs.size(); ++d) {
        DevicePlan &dp = p->dev_plan[d];
        // Staged stages are pinned by the schedule, never placed, so
        // every device is "feasible" for variantFor's purposes; the
        // single variant holds the whole-graph execution.
        dp.feasible = true;
        dp.variant = 0;
        if (devs[d].aw < 2 || !isPow2(uint64_t(devs[d].aw)) ||
            devs[d].ah < 1) {
            continue; // the scheduler skips unusable shapes too
        }
        bool dev_first = true;
        for (size_t li = 0; li < graph->layers.size(); ++li) {
            const LayerSpec &spec = graph->layers[li].spec;
            for (sim::DataflowKind kind : kModelFamilies) {
                const std::string key = serve::PlanCache::key(
                    mode, kind, spec, devs[d].aw, devs[d].ah);
                dp.keys.push_back(key);
                if (planned_keys_
                        .insert(serve::PlanCache::scopedKey(key,
                                                            devs[d].name))
                        .second) {
                    ++stats->cache_misses;
                } else {
                    ++stats->cache_hits;
                }
                std::string err;
                const std::optional<sim::LayerPlan> plan =
                    cache_.getOrPlan(mode, kind, spec, devs[d].aw,
                                     devs[d].ah, &err, devs[d].name);
                if (!plan) {
                    if (layer_err[li].empty()) layer_err[li] = err;
                    continue;
                }
                layer_ok[li] = 1;
                if (dev_first) {
                    dp.in_layout = plan->in_layout;
                    dp.in_extents = iactExtents(spec);
                    dev_first = false;
                }
            }
        }
    }
    for (size_t li = 0; li < graph->layers.size(); ++li) {
        if (!layer_ok[li]) {
            return strCat("no fleet device fits ",
                          graph->layers[li].spec.name, ": ",
                          layer_err[li].empty() ? "no usable device shape"
                                                : layer_err[li]);
        }
    }
    // One variant: the whole-graph fleet schedule (shape comes from the
    // schedule's per-device placement, not from the variant).
    auto v = std::make_unique<ExecVariant>();
    v->done_future = v->done.get_future();
    p->variants.push_back(std::move(v));
    return "";
}

void
Daemon::enqueue(Request req, ResponseSink sink)
{
    auto p = std::make_unique<Pending>();
    p->req = std::move(req);
    p->sink = std::move(sink);

    bool runnable = false;
    Pending *raw = p.get();
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (closed_) {
            // Late arrival racing shutdown (TCP). Answer directly — the
            // event loop may already be unreachable.
            if (p->sink) {
                p->sink(reasonLine(p->req, "rejected", "intake closed"));
            }
            return;
        }
        p->index = next_index_++;
        ++total_requests_;
        if (p->req.id.empty()) p->req.id = strCat("r", p->index);
        p->enqueue_wall_us = wallSinceStartUs();
        p->arrival_vus = p->req.arrival_us >= 0 ? p->req.arrival_us
                                                : p->enqueue_wall_us;
        ClientStats &cs = clients_[p->req.client];
        ++cs.requests;
        if (p->early_error.empty()) {
            p->early_error = preplanLocked(p.get(), &cs);
        }
        runnable = p->early_error.empty();
        intake_.push_back(std::move(p));
    }
    // Continuous batching: the simulation starts the moment the request
    // is planned, regardless of admission (decided later, in virtual
    // time). A rejected request's result is simply discarded. Fleet mode
    // runs one speculative execution per distinct device shape; the DES
    // charges the placed device's variant.
    if (runnable) {
        for (const std::unique_ptr<ExecVariant> &v : raw->variants) {
            ExecVariant *var = v.get();
            pool_->submit([this, raw, var] { execute(raw, var); });
        }
    }
    intake_cv_.notify_one();
}

void
Daemon::enqueueLine(const std::string &line, ResponseSink sink)
{
    auto p = std::make_unique<Pending>();
    std::string error;
    if (!Request::parse(line, &p->req, &error)) {
        // Attribute the failure to the line's client when that field
        // parsed before the error; "anon" otherwise.
        Request bad = p->req;
        bad.scenario.clear();
        bad.model.clear();
        Pending *raw = p.get();
        raw->early_error = strCat("bad request line: ", error);
        raw->req = std::move(bad);
        raw->sink = std::move(sink);
        std::lock_guard<std::mutex> lk(mu_);
        if (closed_) return;
        raw->index = next_index_++;
        ++total_requests_;
        if (raw->req.id.empty()) raw->req.id = strCat("r", raw->index);
        raw->enqueue_wall_us = wallSinceStartUs();
        raw->arrival_vus = raw->enqueue_wall_us;
        ++clients_[raw->req.client].requests;
        intake_.push_back(std::move(p));
        intake_cv_.notify_one();
        return;
    }
    enqueue(std::move(p->req), std::move(sink));
}

void
Daemon::closeIntake()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        closed_ = true;
    }
    intake_cv_.notify_all();
}

void
Daemon::execute(Pending *p, ExecVariant *v)
{
    const auto exec_start = std::chrono::steady_clock::now();
    ExecResult &r = v->exec;
    r.queue_wall_us = wallSinceStartUs() - p->enqueue_wall_us;
    const uint64_t seed =
        p->req.seed ? *p->req.seed
                    : Rng::deriveStream(opts_.base_seed, p->index);
    const sim::EngineMode mode =
        p->req.engine ? *p->req.engine : opts_.engine;
    try {
        if (!p->req.isModel()) {
            const sim::Scenario *scenario =
                sim::findScenario(p->req.scenario);
            FEATHER_CHECK(scenario != nullptr,
                          "pre-planned scenario vanished");
            sim::ScenarioOptions sopts;
            sopts.aw = v->aw;
            sopts.ah = v->ah;
            sopts.dataflow = p->req.dataflow;
            sopts.layout = p->req.layout;
            sopts.out_layout = p->req.out_layout;
            sopts.engine = mode;
            sopts.seed = seed;
            std::string err;
            const std::optional<sim::ScenarioRun> run =
                sim::runScenario(*scenario, sopts, &err, cache_.planFn());
            if (!run) {
                r.error = err;
            } else {
                r.ok = true;
                r.est = mode == sim::EngineMode::Analytic;
                for (const sim::RunResult &lr : run->chain.layers) {
                    r.cycles += lr.stats.cycles;
                    r.macs += lr.stats.macs;
                }
                r.checked = run->chain.checked;
                r.mismatches = run->chain.mismatches;
            }
        } else {
            const model::ModelGraph *graph = model::findModel(p->req.model);
            FEATHER_CHECK(graph != nullptr, "pre-planned model vanished");
            const std::optional<model::SchedulePolicy> policy =
                model::parseSchedule(p->req.schedule);
            FEATHER_CHECK(policy.has_value(),
                          "pre-validated schedule vanished");
            model::SchedulerOptions mopts;
            mopts.aw = v->aw;
            mopts.ah = v->ah;
            // One request = one pool slot; parallelism comes from serving
            // many requests, not from fanning out inside one.
            mopts.num_threads = 1;
            mopts.seed = seed;
            mopts.engine = mode;
            mopts.shared_cache = &cache_;
            // Fleet mode: the scheduler splits the graph across the
            // fleet's devices itself (whole-graph pipeline scheduling).
            if (opts_.fleet.enabled()) mopts.fleet = opts_.fleet;
            model::Scheduler sched(mopts);
            std::string err;
            const std::optional<model::Evaluation> eval =
                sched.evaluate(*graph, &err);
            std::optional<model::ScheduleResult> result;
            if (eval) result = sched.schedule(*graph, *eval, *policy, &err);
            if (!result) {
                r.error = err;
            } else {
                // The measured chain is always cycle-accurate, whatever
                // tier evaluated the candidates — so model results are
                // verified ("ok"), never estimates.
                r.ok = true;
                r.cycles = result->cycles;
                r.macs = result->macs;
                r.checked = result->checked;
                r.mismatches = result->mismatches;
                if (opts_.fleet.enabled()) {
                    // The DES pipeline: one stage per contiguous
                    // same-device segment, the cross-device edge priced
                    // on the segment it feeds.
                    for (size_t i = 0; i < result->layers.size(); ++i) {
                        const model::LayerChoice &lc = result->layers[i];
                        if (r.segments.empty() ||
                            r.segments.back().device != lc.device) {
                            if (!r.path.empty()) r.path += ">";
                            r.path += lc.device_name;
                            ExecSegment seg;
                            seg.device = lc.device;
                            seg.handoff_cycles =
                                i > 0 ? lc.reorder_cycles : 0;
                            r.segments.push_back(seg);
                        }
                        r.segments.back().cycles += lc.cycles;
                    }
                    r.first_in_layout =
                        result->layers.front().plan.in_layout;
                    r.first_in_extents =
                        iactExtents(graph->layers.front().spec);
                }
            }
        }
    } catch (const std::exception &e) {
        r.ok = false;
        r.error = e.what();
    }
    r.service_wall_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - exec_start)
            .count();
    v->done.set_value();
}

Daemon::ExecVariant *
Daemon::variantFor(Pending *p, int device) const
{
    if (device < 0) return p->variants.front().get();
    FEATHER_CHECK(size_t(device) < p->dev_plan.size(),
                  "placed device out of range");
    const DevicePlan &dp = p->dev_plan[size_t(device)];
    FEATHER_CHECK(dp.feasible, "placed on an infeasible device");
    return p->variants[size_t(dp.variant)].get();
}

void
Daemon::respond(Pending *p, const std::string &line)
{
    if (p->sink) p->sink(line);
}

void
Daemon::finishOne(Pending *p, int device, int64_t start_vus,
                  int64_t finish_vus)
{
    const ExecVariant *v = variantFor(p, device);
    const ExecResult &r = v->exec;
    if (device >= 0 && !p->staged) {
        // The device served this completion in virtual time whatever the
        // execution outcome; busy time includes the hand-off premium.
        // (Staged requests were accounted per stage by the stage hook.)
        DeviceStats &ds = dev_stats_[size_t(device)];
        ++ds.requests;
        ds.busy_vus += finish_vus - start_vus;
        ds.queue.record(start_vus - p->arrival_vus);
    }
    if (!r.ok) {
        {
            std::lock_guard<std::mutex> lk(mu_);
            ++clients_[p->req.client].errors;
            ++failures_;
        }
        respond(p, reasonLine(p->req, "ERROR", r.error));
        return;
    }
    const int64_t queue_vus = start_vus - p->arrival_vus;
    const int64_t latency_vus = finish_vus - p->arrival_vus;
    const char *status =
        r.est ? "est" : (r.mismatches == 0 ? "ok" : "MISMATCH");
    {
        std::lock_guard<std::mutex> lk(mu_);
        ClientStats &cs = clients_[p->req.client];
        ++cs.accepted;
        cs.cycles += r.cycles;
        cs.macs += r.macs;
        cs.latency.record(latency_vus);
        cs.queue_vus += queue_vus;
        cs.service_vus += p->service_vus;
        cs.queue_wall_us += r.queue_wall_us;
        cs.service_wall_us += r.service_wall_us;
        if (r.mismatches != 0) ++failures_;
    }
    std::string extra;
    if (device >= 0) {
        // Staged requests report the whole device path ("devA>devB");
        // single-device requests report their placed device.
        const std::string &dev_name =
            p->staged && !r.path.empty()
                ? r.path
                : opts_.fleet.devices[size_t(device)].name;
        extra = strCat(",\"device\":\"", jsonEscape(dev_name),
                       "\",\"handoff_vus\":", p->handoff_vus);
    }
    respond(p, strCat("{\"id\":\"", jsonEscape(p->req.id),
                      "\",\"client\":\"", jsonEscape(p->req.client),
                      "\",\"status\":\"", status, "\",\"cycles\":", r.cycles,
                      ",\"macs\":", r.macs, ",\"checked\":", r.checked,
                      ",\"mismatches\":", r.mismatches,
                      ",\"queue_vus\":", queue_vus,
                      ",\"service_vus\":", p->service_vus, extra,
                      ",\"latency_vus\":", latency_vus,
                      ",\"finish_vus\":", finish_vus,
                      ",\"service_wall_us\":", r.service_wall_us, "}"));
}

DaemonReport
Daemon::run()
{
    const bool fleet = opts_.fleet.enabled();
    const std::vector<DeviceSpec> &devs = opts_.fleet.devices;

    // Requests the DES admitted, indexed by DES position.
    std::vector<Pending *> des;
    VirtualScheduler vs(
        opts_.virt,
        [this, &des](size_t pos, int device) {
            Pending *p = des[pos];
            // The one synchronization point between virtual time and the
            // wall-clock pool: a request's service duration is known once
            // its speculative execution lands.
            ExecVariant *v = variantFor(p, device);
            v->done_future.wait();
            const int64_t cycles = v->exec.ok ? v->exec.cycles : 0;
            p->service_vus = std::max<int64_t>(
                1, (cycles + int64_t(opts_.clock_mhz) - 1) /
                       int64_t(opts_.clock_mhz));
            return p->service_vus;
        },
        [this, &des](size_t pos, int device, int64_t start_vus,
                     int64_t finish_vus) {
            finishOne(des[pos], device, start_vus, finish_vus);
        });
    vs.setStageHooks(
        [this, &des](size_t pos, int stage, int device) {
            (void)device;
            // Staged requests resolved their execution at arrival, so
            // this never blocks; a failed schedule serves 1 vus.
            Pending *p = des[pos];
            const ExecResult &r = p->variants.front()->exec;
            const int64_t cycles =
                r.ok && size_t(stage) < r.segments.size()
                    ? r.segments[size_t(stage)].cycles
                    : 0;
            const int64_t dur = std::max<int64_t>(
                1, (cycles + int64_t(opts_.clock_mhz) - 1) /
                       int64_t(opts_.clock_mhz));
            p->service_vus += dur;
            return dur;
        },
        [this, &des](size_t pos, int stage, int device, int64_t start_vus,
                     int64_t finish_vus) {
            // Per-device virtual accounting, one entry per stage; the
            // whole-request view stays in finishOne.
            Pending *p = des[pos];
            DeviceStats &ds = dev_stats_[size_t(device)];
            ++ds.requests;
            ds.busy_vus += finish_vus - start_vus;
            if (stage == 0) ds.queue.record(start_vus - p->arrival_vus);
            const int64_t h = p->stage_plans[size_t(stage)].handoff_vus;
            if (h > 0) {
                ++ds.handoffs;
                ds.handoff_vus += h;
            }
        });

    int64_t last_arrival = 0;
    for (;;) {
        std::unique_ptr<Pending> item;
        {
            std::unique_lock<std::mutex> lk(mu_);
            intake_cv_.wait(lk,
                            [this] { return !intake_.empty() || closed_; });
            if (intake_.empty()) break;
            item = std::move(intake_.front());
            intake_.pop_front();
        }
        Pending *p = item.get();
        processed_.push_back(std::move(item));

        if (!p->early_error.empty()) {
            {
                std::lock_guard<std::mutex> lk(mu_);
                ++clients_[p->req.client].errors;
                ++failures_;
            }
            respond(p, reasonLine(p->req, "ERROR", p->early_error));
            continue;
        }
        if (p->arrival_vus < last_arrival) {
            {
                std::lock_guard<std::mutex> lk(mu_);
                ++clients_[p->req.client].errors;
                ++failures_;
            }
            respond(p, reasonLine(
                           p->req, "ERROR",
                           strCat("arrival_us ", p->arrival_vus,
                                  " is earlier than a previous request's ",
                                  last_arrival, " (pinned arrivals must be"
                                  " non-decreasing)")));
            continue;
        }
        last_arrival = p->arrival_vus;

        const size_t pos = des.size();
        des.push_back(p);
        std::string reason;
        bool accepted;
        if (fleet && p->req.isModel()) {
            // Whole-graph pipeline request: the fleet scheduler pins its
            // stages, so the speculative execution must land before
            // admission. Graph requests therefore serialize on the DES
            // thread; scenario requests keep their full overlap.
            ExecVariant *v = p->variants.front().get();
            v->done_future.wait();
            const ExecResult &r = v->exec;
            p->staged = true;
            const auto prev_it = client_device_.find(p->req.client);
            const int prev =
                prev_it == client_device_.end() ? -1 : prev_it->second;
            if (r.ok) {
                for (size_t s = 0; s < r.segments.size(); ++s) {
                    StagePlan sp;
                    sp.device = r.segments[s].device;
                    int64_t cycles = 0;
                    if (s == 0) {
                        // The client's stream moving off its previous
                        // device: concordant layouts, so handoffCost
                        // charges only the inter-chip link term.
                        if (prev >= 0 && prev != sp.device) {
                            cycles = model::handoffCost(
                                false, r.first_in_layout, r.first_in_layout,
                                r.first_in_extents, model::kHandoffElemBytes,
                                opts_.fleet.link);
                        }
                    } else {
                        cycles = r.segments[s].handoff_cycles;
                    }
                    if (cycles > 0) {
                        sp.handoff_vus = std::max<int64_t>(
                            1, (cycles + int64_t(opts_.clock_mhz) - 1) /
                                   int64_t(opts_.clock_mhz));
                    }
                    p->handoff_vus += sp.handoff_vus;
                    p->stage_plans.push_back(sp);
                }
            } else {
                // Failed schedules still flow through the DES so their
                // rejection/error accounting stays deterministic: one
                // unit stage on the first device.
                p->stage_plans.push_back(StagePlan{0, 0});
            }
            accepted = vs.arriveStaged(pos, p->arrival_vus,
                                       p->req.priority, p->stage_plans,
                                       &reason);
            if (accepted) {
                p->device = p->stage_plans.back().device;
                client_device_[p->req.client] = p->device;
                // Per-device cache warmth for every device the pipeline
                // touches, in stage order.
                std::vector<char> seen(devs.size(), 0);
                for (const StagePlan &sp : p->stage_plans) {
                    if (seen[size_t(sp.device)]) continue;
                    seen[size_t(sp.device)] = 1;
                    DeviceStats &ds = dev_stats_[size_t(sp.device)];
                    for (const std::string &k :
                         p->dev_plan[size_t(sp.device)].keys) {
                        if (device_keys_
                                .insert(serve::PlanCache::scopedKey(
                                    k, devs[size_t(sp.device)].name))
                                .second) {
                            ++ds.cache_misses;
                        } else {
                            ++ds.cache_hits;
                        }
                    }
                }
            }
        } else if (fleet) {
            const size_t ndev = devs.size();
            ArrivalHints hints;
            hints.eligible.resize(ndev);
            for (size_t d = 0; d < ndev; ++d) {
                hints.eligible[d] = p->dev_plan[d].feasible ? 1 : 0;
            }
            if (opts_.fleet.place == PlacementPolicy::Affinity) {
                // Affinity score: how many of this request's planning
                // points the device has already served (device-scoped
                // keys, maintained at placement time below).
                hints.affinity.assign(ndev, 0);
                for (size_t d = 0; d < ndev; ++d) {
                    if (!p->dev_plan[d].feasible) continue;
                    for (const std::string &k : p->dev_plan[d].keys) {
                        if (device_keys_.count(serve::PlanCache::scopedKey(
                                k, devs[d].name))) {
                            ++hints.affinity[d];
                        }
                    }
                }
            }
            // Cross-device hand-off premium: moving this client's stream
            // off its previous device pays reorder + inter-chip transfer
            // (model::handoffCost), converted cycles -> vus.
            hints.handoff_vus.assign(ndev, 0);
            const auto prev_it = client_device_.find(p->req.client);
            const int prev =
                prev_it == client_device_.end() ? -1 : prev_it->second;
            if (prev >= 0) {
                for (size_t d = 0; d < ndev; ++d) {
                    if (int(d) == prev || !p->dev_plan[d].feasible) {
                        continue;
                    }
                    const DevicePlan &dst = p->dev_plan[d];
                    const Layout &src =
                        p->dev_plan[size_t(prev)].feasible
                            ? p->dev_plan[size_t(prev)].in_layout
                            : dst.in_layout;
                    const int64_t cycles = model::handoffCost(
                        false, src, dst.in_layout, dst.in_extents,
                        model::kHandoffElemBytes, opts_.fleet.link);
                    hints.handoff_vus[d] = std::max<int64_t>(
                        1, (cycles + int64_t(opts_.clock_mhz) - 1) /
                               int64_t(opts_.clock_mhz));
                }
            }
            int placed = -1;
            accepted = vs.arrive(pos, p->arrival_vus, p->req.priority,
                                 hints, &reason, &placed);
            if (accepted) {
                p->device = placed;
                p->handoff_vus = hints.handoff_vus[size_t(placed)];
                client_device_[p->req.client] = placed;
                DeviceStats &ds = dev_stats_[size_t(placed)];
                if (p->handoff_vus > 0) {
                    ++ds.handoffs;
                    ds.handoff_vus += p->handoff_vus;
                }
                // Virtual per-device cache warmth: a planning point is
                // warm only on devices that placed it before.
                for (const std::string &k :
                     p->dev_plan[size_t(placed)].keys) {
                    if (device_keys_
                            .insert(serve::PlanCache::scopedKey(
                                k, devs[size_t(placed)].name))
                            .second) {
                        ++ds.cache_misses;
                    } else {
                        ++ds.cache_hits;
                    }
                }
            }
        } else {
            accepted =
                vs.arrive(pos, p->arrival_vus, p->req.priority, &reason);
        }
        if (!accepted) {
            {
                std::lock_guard<std::mutex> lk(mu_);
                ++clients_[p->req.client].rejected;
            }
            respond(p, reasonLine(p->req, "rejected", reason));
        }
    }
    vs.drain();
    // Discarded speculative executions (rejected requests) may still be
    // in flight; land them before reading the cache counters.
    pool_->wait();
    return buildReport(vs);
}

uint64_t
Daemon::failures() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return failures_;
}

DaemonReport
Daemon::buildReport(const VirtualScheduler &vs) const
{
    std::lock_guard<std::mutex> lk(mu_);
    DaemonReport rep;
    rep.base_seed = opts_.base_seed;
    rep.vworkers = opts_.virt.vworkers;
    rep.clock_mhz = opts_.clock_mhz;
    rep.engine = sim::toString(opts_.engine);

    LatencyHistogram all;
    for (const auto &[name, cs] : clients_) {
        ClientRow row;
        row.client = name;
        row.requests = cs.requests;
        row.accepted = cs.accepted;
        row.rejected = cs.rejected;
        row.errors = cs.errors;
        row.cache_hits = cs.cache_hits;
        row.cache_misses = cs.cache_misses;
        row.total_cycles = cs.cycles;
        row.p50_vus = cs.latency.percentile(50);
        row.p95_vus = cs.latency.percentile(95);
        row.p99_vus = cs.latency.percentile(99);
        const uint64_t n = cs.latency.count();
        row.mean_queue_vus = n ? double(cs.queue_vus) / double(n) : 0.0;
        row.mean_service_vus = n ? double(cs.service_vus) / double(n) : 0.0;
        row.queue_wall_us = cs.queue_wall_us;
        row.service_wall_us = cs.service_wall_us;
        rep.clients.push_back(std::move(row));

        rep.requests += cs.requests;
        rep.accepted += cs.accepted;
        rep.rejected += cs.rejected;
        rep.errors += cs.errors;
        rep.total_cycles += cs.cycles;
        rep.total_macs += cs.macs;
        all.merge(cs.latency);
    }
    rep.p50_vus = all.percentile(50);
    rep.p95_vus = all.percentile(95);
    rep.p99_vus = all.percentile(99);
    rep.max_vus = all.max();
    rep.makespan_vus = vs.lastFinish();
    rep.virtual_rps = rep.makespan_vus > 0
                          ? double(rep.accepted) * 1e6 /
                                double(rep.makespan_vus)
                          : 0.0;
    rep.cache = cache_.stats();
    if (opts_.fleet.enabled()) {
        rep.fleet = opts_.fleet.spec;
        rep.place = toString(opts_.fleet.place);
        for (size_t i = 0; i < dev_stats_.size(); ++i) {
            const DeviceStats &ds = dev_stats_[i];
            DeviceRow row;
            row.device = opts_.fleet.devices[i].name;
            row.capability = opts_.fleet.devices[i].capability;
            row.requests = ds.requests;
            row.busy_vus = ds.busy_vus;
            row.queue_p95_vus = ds.queue.percentile(95);
            row.cache_hits = ds.cache_hits;
            row.cache_misses = ds.cache_misses;
            row.handoffs = ds.handoffs;
            row.handoff_vus = ds.handoff_vus;
            rep.devices.push_back(std::move(row));
        }
    }
    rep.run_wall_us = wallSinceStartUs();
    return rep;
}

} // namespace daemon
} // namespace feather
