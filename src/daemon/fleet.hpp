#pragma once

/**
 * @file
 * Heterogeneous fleet configuration for the serving daemon.
 *
 * A fleet is an ordered list of named simulated devices — FEATHER
 * instances of arbitrary PE-array sizes plus any arch-zoo design point —
 * parsed from a `--fleet` value:
 *
 *   --fleet feather:16x16,feather:32x32,tpu-like
 *
 * Spec grammar (comma-separated entries; or a file path, one entry per
 * line with '#' comments and commas allowed):
 *
 *   entry := "feather:<COLS>x<ROWS>"       custom FEATHER instance
 *          | <arch-zoo name>               baselines::archZoo() entry
 *
 * Each device serves requests at its own array shape (requests that pin
 * --aw/--ah keep their pinned shape everywhere), contributes its PE count
 * as placement capability, and gets a unique report name (duplicate
 * entries get a "#2", "#3"... suffix).
 */

#include <string>
#include <vector>

#include "layoutloop/arch_spec.hpp"
#include "model/scheduler.hpp"
#include "daemon/vclock.hpp"

namespace feather {
namespace daemon {

/** One named device of the simulated fleet. */
struct DeviceSpec
{
    std::string name; ///< unique report name ("feather:32x32")
    ArchSpec arch;
    /** Array shape requests resolve to when they do not pin aw/ah. */
    int aw = 16;
    int ah = 16;
    /** Placement weight of the Capability policy (PE count). */
    int64_t capability = 256;
};

/** The whole fleet: devices + placement policy + inter-chip link. */
struct FleetConfig
{
    std::vector<DeviceSpec> devices;
    PlacementPolicy place = PlacementPolicy::LeastLoaded;
    /** Prices the transfer term of cross-device hand-offs. */
    model::InterChipLink link;
    /** The normalized spec text ("a,b,c"), echoed in reports. */
    std::string spec;

    bool enabled() const { return !devices.empty(); }
};

/**
 * Parse a --fleet value: @p text is a file path (when a file of that name
 * is readable) or an inline spec. False with a one-line @p error on an
 * unknown device name (listing the valid ones), malformed feather:<C>x<R>
 * shapes, or an empty/oversized fleet.
 */
bool parseFleetSpec(const std::string &text, FleetConfig *out,
                    std::string *error);

/** The vclock view of the fleet (names + capabilities, in order). */
std::vector<VirtualDevice> toVirtualDevices(const FleetConfig &fleet);

} // namespace daemon
} // namespace feather
