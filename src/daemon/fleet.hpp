#pragma once

/**
 * @file
 * Heterogeneous fleet configuration for the serving daemon.
 *
 * The fleet itself (device list, spec grammar, inter-chip link) lives in
 * model/fleet.hpp so the whole-graph Scheduler can split ModelGraphs over
 * the same devices; this header adds the daemon's view: the placement
 * policy that routes per-request arrivals, and the vclock device list.
 *
 * Each device serves requests at its own array shape (requests that pin
 * --aw/--ah keep their pinned shape everywhere), contributes its PE count
 * as placement capability, and gets a unique report name (duplicate
 * entries get a "#2", "#3"... suffix).
 */

#include <string>
#include <vector>

#include "model/fleet.hpp"
#include "daemon/vclock.hpp"

namespace feather {
namespace daemon {

/** One named device of the simulated fleet. */
using DeviceSpec = model::FleetDevice;

/** The whole fleet: the shared spec plus the daemon placement policy. */
struct FleetConfig : model::FleetSpec
{
    PlacementPolicy place = PlacementPolicy::LeastLoaded;
};

/**
 * Parse a --fleet value: @p text is a file path (when a file of that name
 * is readable) or an inline spec. False with a one-line @p error on an
 * unknown device name (listing the valid ones), malformed feather:<C>x<R>
 * shapes, or an empty/oversized fleet.
 */
bool parseFleetSpec(const std::string &text, FleetConfig *out,
                    std::string *error);

/** The vclock view of the fleet (names + capabilities, in order). */
std::vector<VirtualDevice> toVirtualDevices(const FleetConfig &fleet);

} // namespace daemon
} // namespace feather
