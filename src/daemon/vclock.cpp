#include "daemon/vclock.hpp"

#include <algorithm>
#include <utility>

#include "common/log.hpp"

namespace feather {
namespace daemon {

std::optional<PlacementPolicy>
parsePlacement(const std::string &name)
{
    if (name == "least-loaded") return PlacementPolicy::LeastLoaded;
    if (name == "capability") return PlacementPolicy::Capability;
    if (name == "affinity") return PlacementPolicy::Affinity;
    return std::nullopt;
}

std::string
toString(PlacementPolicy p)
{
    switch (p) {
    case PlacementPolicy::LeastLoaded: return "least-loaded";
    case PlacementPolicy::Capability: return "capability";
    case PlacementPolicy::Affinity: return "affinity";
    }
    return "?";
}

std::vector<std::string>
placementNames()
{
    return {"affinity", "least-loaded", "capability"};
}

VirtualScheduler::VirtualScheduler(VirtualConfig cfg, DurationFn duration,
                                   CompletionFn on_finish)
    : cfg_(std::move(cfg)), duration_(std::move(duration)),
      on_finish_(std::move(on_finish))
{
    if (cfg_.vworkers < 1) cfg_.vworkers = 1;
    dev_.resize(cfg_.devices.size());
    for (VirtualDevice &d : cfg_.devices) {
        if (d.capability < 1) d.capability = 1;
    }
}

void
VirtualScheduler::start(size_t index, int stage, int64_t start_vus,
                        int device)
{
    const auto staged = staged_.find(index);
    int64_t dur;
    if (staged != staged_.end()) {
        if (stage == 0) staged->second.first_start = start_vus;
        dur = std::max<int64_t>(1,
                                stage_duration_(index, stage, device));
        dur += staged->second.stages[size_t(stage)].handoff_vus;
    } else {
        dur = std::max<int64_t>(1, duration_(index, device));
        if (fleet() && index < handoff_.size()) dur += handoff_[index];
    }
    if (fleet()) dev_[size_t(device)].busy = true;
    running_.push({start_vus + dur, index, start_vus, device, stage});
}

void
VirtualScheduler::completeOne()
{
    const Running done = running_.top();
    running_.pop();
    last_finish_ = std::max(last_finish_, done.finish);
    const auto staged = staged_.find(done.index);
    const bool is_staged = staged != staged_.end();
    if (is_staged) {
        stage_finish_(done.index, done.stage, done.device, done.start,
                      done.finish);
    }
    const bool final_stage =
        !is_staged ||
        size_t(done.stage) + 1 == staged->second.stages.size();
    if (final_stage) {
        on_finish_(done.index, done.device,
                   is_staged ? staged->second.first_start : done.start,
                   done.finish);
    }
    if (fleet()) dev_[size_t(done.device)].busy = false;
    if (!final_stage) {
        // Advance the pipeline: stage k+1 is pinned, so it either claims
        // its device right now (its busy state is current at done.finish
        // — the heap materialized every earlier completion first) or
        // joins that device's FIFO. Continuations bypass admission (an
        // in-flight request cannot be rejected) but occupy queue slots
        // while they wait.
        const StagePlan &next_stage =
            staged->second.stages[size_t(done.stage) + 1];
        DeviceState &ds = dev_[size_t(next_stage.device)];
        if (!ds.busy) {
            start(done.index, done.stage + 1, done.finish,
                  next_stage.device);
        } else {
            const int prio = staged->second.priority;
            ds.waiting[size_t(prio)].push_back(
                {done.index, done.stage + 1});
            ++ds.waiting_total;
            ++waiting_total_;
            ++waiting_by_prio_[size_t(prio)];
        }
    }
    // Hand the freed server to the highest-priority waiter (FIFO within a
    // priority) — unless a continuation stage just reclaimed it. Starting
    // it at done.finish is time-correct: see the laziness invariant in
    // the header. In fleet mode the server is the device itself, so only
    // its own waiters are candidates — placement already happened at
    // arrival and is never revisited.
    if (fleet() && dev_[size_t(done.device)].busy) return;
    auto &fifos = fleet() ? dev_[size_t(done.device)].waiting : waiting_;
    for (int prio = 0; prio < VirtualConfig::kPriorities; ++prio) {
        auto &fifo = fifos[size_t(prio)];
        if (fifo.empty()) continue;
        const Waiter next = fifo.front();
        fifo.pop_front();
        --waiting_total_;
        --waiting_by_prio_[size_t(prio)];
        if (fleet()) --dev_[size_t(done.device)].waiting_total;
        start(next.index, next.stage, done.finish, done.device);
        break;
    }
}

void
VirtualScheduler::advanceTo(int64_t t)
{
    while (!running_.empty() && running_.top().finish <= t) completeOne();
}

bool
VirtualScheduler::admitWaiter(int priority, std::string *reject_reason)
{
    if (cfg_.max_queue >= 0 && int(waiting_total_) >= cfg_.max_queue) {
        *reject_reason = strCat("queue full (", waiting_total_,
                                " waiting, max-queue ", cfg_.max_queue, ")");
        return false;
    }
    const int64_t quota = cfg_.quota[size_t(priority)];
    if (quota >= 0 && waiting_by_prio_[size_t(priority)] >= quota) {
        *reject_reason = strCat("priority-", priority, " quota reached (",
                                waiting_by_prio_[size_t(priority)],
                                " waiting, quota ", quota, ")");
        return false;
    }
    return true;
}

int
VirtualScheduler::place(const ArrivalHints &hints) const
{
    const auto eligible = [&](size_t d) {
        return hints.eligible.empty() || hints.eligible[d] != 0;
    };
    const auto load = [&](size_t d) {
        return int64_t(dev_[d].waiting_total) + (dev_[d].busy ? 1 : 0);
    };

    int best = -1;
    for (size_t d = 0; d < dev_.size(); ++d) {
        if (!eligible(d)) continue;
        if (best < 0) {
            best = int(d);
            continue;
        }
        const size_t b = size_t(best);
        bool wins = false;
        switch (cfg_.place) {
        case PlacementPolicy::LeastLoaded:
            wins = load(d) < load(b);
            break;
        case PlacementPolicy::Capability: {
            // Minimize (load + 1) / capability without division; ties go
            // to the bigger device, then the lower index.
            const int64_t lhs =
                (load(d) + 1) * cfg_.devices[b].capability;
            const int64_t rhs =
                (load(b) + 1) * cfg_.devices[d].capability;
            wins = lhs < rhs ||
                   (lhs == rhs && cfg_.devices[d].capability >
                                      cfg_.devices[b].capability);
            break;
        }
        case PlacementPolicy::Affinity: {
            // Warmest device wins; load breaks score ties so a cold
            // fleet degrades to least-loaded.
            const int64_t sd = hints.affinity.empty() ? 0
                                                      : hints.affinity[d];
            const int64_t sb = hints.affinity.empty() ? 0
                                                      : hints.affinity[b];
            wins = sd > sb || (sd == sb && load(d) < load(b));
            break;
        }
        }
        if (wins) best = int(d);
    }
    FEATHER_CHECK(best >= 0, "no eligible device to place on");
    return best;
}

bool
VirtualScheduler::arrive(size_t index, int64_t arrival_vus, int priority,
                         std::string *reject_reason)
{
    FEATHER_CHECK(!fleet(),
                  "fleet mode arrivals must carry placement hints");
    FEATHER_CHECK(arrival_vus >= last_arrival_,
                  "arrivals must be fed in non-decreasing time order");
    FEATHER_CHECK(priority >= 0 && priority < VirtualConfig::kPriorities,
                  "priority out of range");
    last_arrival_ = arrival_vus;
    advanceTo(arrival_vus);

    if (int(running_.size()) < cfg_.vworkers) {
        // waiting_ is necessarily empty here: a server only stays free
        // while nothing waits for it.
        start(index, 0, arrival_vus, -1);
        return true;
    }
    if (!admitWaiter(priority, reject_reason)) return false;
    waiting_[size_t(priority)].push_back({index, 0});
    ++waiting_total_;
    ++waiting_by_prio_[size_t(priority)];
    return true;
}

bool
VirtualScheduler::arrive(size_t index, int64_t arrival_vus, int priority,
                         const ArrivalHints &hints,
                         std::string *reject_reason, int *placed_device)
{
    FEATHER_CHECK(fleet(), "placement hints need a fleet configuration");
    FEATHER_CHECK(arrival_vus >= last_arrival_,
                  "arrivals must be fed in non-decreasing time order");
    FEATHER_CHECK(priority >= 0 && priority < VirtualConfig::kPriorities,
                  "priority out of range");
    last_arrival_ = arrival_vus;
    advanceTo(arrival_vus);

    const int device = place(hints);
    if (index >= handoff_.size()) handoff_.resize(index + 1, 0);
    handoff_[index] =
        hints.handoff_vus.empty() ? 0 : hints.handoff_vus[size_t(device)];

    DeviceState &ds = dev_[size_t(device)];
    if (!ds.busy) {
        start(index, 0, arrival_vus, device);
        if (placed_device) *placed_device = device;
        return true;
    }
    if (!admitWaiter(priority, reject_reason)) return false;
    ds.waiting[size_t(priority)].push_back({index, 0});
    ++ds.waiting_total;
    ++waiting_total_;
    ++waiting_by_prio_[size_t(priority)];
    if (placed_device) *placed_device = device;
    return true;
}

bool
VirtualScheduler::arriveStaged(size_t index, int64_t arrival_vus,
                               int priority, std::vector<StagePlan> stages,
                               std::string *reject_reason)
{
    FEATHER_CHECK(fleet(), "staged arrivals need a fleet configuration");
    FEATHER_CHECK(stage_duration_ && stage_finish_,
                  "staged arrivals need setStageHooks()");
    FEATHER_CHECK(!stages.empty(), "staged arrivals need >= 1 stage");
    FEATHER_CHECK(arrival_vus >= last_arrival_,
                  "arrivals must be fed in non-decreasing time order");
    FEATHER_CHECK(priority >= 0 && priority < VirtualConfig::kPriorities,
                  "priority out of range");
    for (const StagePlan &s : stages) {
        FEATHER_CHECK(s.device >= 0 && size_t(s.device) < dev_.size(),
                      "stage pinned to an unknown device");
    }
    last_arrival_ = arrival_vus;
    advanceTo(arrival_vus);

    const int device = stages.front().device;
    StagedInfo info;
    info.stages = std::move(stages);
    info.priority = priority;
    DeviceState &ds = dev_[size_t(device)];
    if (!ds.busy) {
        staged_[index] = std::move(info);
        start(index, 0, arrival_vus, device);
        return true;
    }
    if (!admitWaiter(priority, reject_reason)) return false;
    staged_[index] = std::move(info);
    ds.waiting[size_t(priority)].push_back({index, 0});
    ++ds.waiting_total;
    ++waiting_total_;
    ++waiting_by_prio_[size_t(priority)];
    return true;
}

void
VirtualScheduler::drain()
{
    while (!running_.empty()) completeOne();
    FEATHER_CHECK(waiting_total_ == 0,
                  "waiters cannot outlive the running set");
}

} // namespace daemon
} // namespace feather
