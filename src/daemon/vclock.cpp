#include "daemon/vclock.hpp"

#include <algorithm>
#include <utility>

#include "common/log.hpp"

namespace feather {
namespace daemon {

VirtualScheduler::VirtualScheduler(VirtualConfig cfg, DurationFn duration,
                                   CompletionFn on_finish)
    : cfg_(cfg), duration_(std::move(duration)),
      on_finish_(std::move(on_finish))
{
    if (cfg_.vworkers < 1) cfg_.vworkers = 1;
}

void
VirtualScheduler::start(size_t index, int64_t start_vus)
{
    const int64_t dur = std::max<int64_t>(1, duration_(index));
    running_.push({start_vus + dur, index, start_vus});
}

void
VirtualScheduler::completeOne()
{
    const Running done = running_.top();
    running_.pop();
    last_finish_ = std::max(last_finish_, done.finish);
    on_finish_(done.index, done.start, done.finish);
    // Hand the freed server to the highest-priority waiter (FIFO within a
    // priority). Starting it at done.finish is time-correct: see the
    // laziness invariant in the header.
    for (auto &fifo : waiting_) {
        if (fifo.empty()) continue;
        const size_t next = fifo.front();
        fifo.pop_front();
        --waiting_total_;
        start(next, done.finish);
        break;
    }
}

void
VirtualScheduler::advanceTo(int64_t t)
{
    while (!running_.empty() && running_.top().finish <= t) completeOne();
}

bool
VirtualScheduler::arrive(size_t index, int64_t arrival_vus, int priority,
                         std::string *reject_reason)
{
    FEATHER_CHECK(arrival_vus >= last_arrival_,
                  "arrivals must be fed in non-decreasing time order");
    FEATHER_CHECK(priority >= 0 && priority < VirtualConfig::kPriorities,
                  "priority out of range");
    last_arrival_ = arrival_vus;
    advanceTo(arrival_vus);

    if (int(running_.size()) < cfg_.vworkers) {
        // waiting_ is necessarily empty here: a server only stays free
        // while nothing waits for it.
        start(index, arrival_vus);
        return true;
    }
    if (cfg_.max_queue >= 0 && int(waiting_total_) >= cfg_.max_queue) {
        *reject_reason = strCat("queue full (", waiting_total_,
                                " waiting, max-queue ", cfg_.max_queue, ")");
        return false;
    }
    const int64_t quota = cfg_.quota[size_t(priority)];
    if (quota >= 0 && int64_t(waiting_[size_t(priority)].size()) >= quota) {
        *reject_reason = strCat("priority-", priority, " quota reached (",
                                waiting_[size_t(priority)].size(),
                                " waiting, quota ", quota, ")");
        return false;
    }
    waiting_[size_t(priority)].push_back(index);
    ++waiting_total_;
    return true;
}

void
VirtualScheduler::drain()
{
    while (!running_.empty()) completeOne();
    FEATHER_CHECK(waiting_total_ == 0,
                  "waiters cannot outlive the running set");
}

} // namespace daemon
} // namespace feather
