#include "daemon/request.hpp"

#include "common/json_min.hpp"
#include "common/log.hpp"
#include "common/parse.hpp"
#include "common/table.hpp"

namespace feather {
namespace daemon {

namespace {

bool
fail(std::string *error, std::string why)
{
    *error = std::move(why);
    return false;
}

bool
stringField(const std::string &key, const JsonScalar &v, std::string *out,
            std::string *error)
{
    if (v.kind != JsonScalar::Kind::String) {
        return fail(error, strCat("\"", key, "\" must be a string"));
    }
    *out = v.text;
    return true;
}

bool
dimField(const std::string &key, const JsonScalar &v, int *out,
         std::string *error)
{
    uint64_t n = 0;
    if (!v.asUint(&n) || n == 0 || n > 4096) {
        return fail(error, strCat("\"", key, "\" must be a positive integer"
                                  " <= 4096, got ", v.text));
    }
    *out = int(n);
    return true;
}

} // namespace

bool
Request::parse(const std::string &line, Request *out, std::string *error)
{
    *out = Request();
    JsonObject obj;
    if (!JsonObject::parse(line, &obj, error)) return false;

    bool has_scenario = false;
    bool has_model = false;
    for (const auto &[key, value] : obj.entries()) {
        if (key == "id") {
            if (!stringField(key, value, &out->id, error)) return false;
        } else if (key == "client") {
            if (!stringField(key, value, &out->client, error)) return false;
            if (out->client.empty()) {
                return fail(error, "\"client\" must be non-empty");
            }
        } else if (key == "priority") {
            int64_t p = 0;
            if (!value.asInt(&p) || p < 0 || p > 2) {
                return fail(error, strCat("\"priority\" must be 0, 1 or 2, "
                                          "got ", value.text));
            }
            out->priority = int(p);
        } else if (key == "arrival_us") {
            int64_t t = 0;
            if (!value.asInt(&t) || t < 0) {
                return fail(error, strCat("\"arrival_us\" must be a "
                                          "non-negative integer, got ",
                                          value.text));
            }
            out->arrival_us = t;
        } else if (key == "scenario") {
            if (!stringField(key, value, &out->scenario, error)) return false;
            has_scenario = true;
        } else if (key == "model") {
            if (!stringField(key, value, &out->model, error)) return false;
            has_model = true;
        } else if (key == "schedule") {
            if (!stringField(key, value, &out->schedule, error)) return false;
        } else if (key == "aw") {
            if (!dimField(key, value, &out->aw, error)) return false;
        } else if (key == "ah") {
            if (!dimField(key, value, &out->ah, error)) return false;
        } else if (key == "dataflow") {
            if (!stringField(key, value, &out->dataflow, error)) return false;
        } else if (key == "layout") {
            if (!stringField(key, value, &out->layout, error)) return false;
        } else if (key == "out_layout") {
            if (!stringField(key, value, &out->out_layout, error)) {
                return false;
            }
        } else if (key == "seed") {
            uint64_t s = 0;
            if (!value.asUint(&s)) {
                return fail(error, strCat("\"seed\" must be a non-negative "
                                          "integer, got ", value.text));
            }
            out->seed = s;
        } else if (key == "engine") {
            std::string name;
            if (!stringField(key, value, &name, error)) return false;
            const std::optional<sim::EngineMode> mode =
                sim::parseEngineMode(name);
            if (!mode) {
                return fail(error, strCat("\"engine\" must be cycle or "
                                          "analytic, got \"", name, "\""));
            }
            out->engine = *mode;
        } else {
            return fail(error, strCat("unknown key \"", key, "\""));
        }
    }

    if (has_scenario == has_model) {
        return fail(error, has_scenario
                               ? "\"scenario\" and \"model\" are exclusive"
                               : "one of \"scenario\" or \"model\" is "
                                 "required");
    }
    if (has_scenario && out->scenario.empty()) {
        return fail(error, "\"scenario\" must be non-empty");
    }
    if (has_model && out->model.empty()) {
        return fail(error, "\"model\" must be non-empty");
    }
    if (has_model && !out->dataflow.empty()) {
        return fail(error, "\"dataflow\" applies to scenario requests only "
                           "(model requests pick per-layer dataflows)");
    }
    return true;
}

std::string
Request::toJsonLine() const
{
    std::string out = "{";
    const auto field = [&out](const std::string &key,
                              const std::string &value, bool quoted) {
        if (out.size() > 1) out += ',';
        out += strCat("\"", key, "\":");
        out += quoted ? strCat("\"", jsonEscape(value), "\"") : value;
    };
    if (!id.empty()) field("id", id, true);
    if (client != "anon") field("client", client, true);
    if (priority != 1) field("priority", std::to_string(priority), false);
    if (arrival_us >= 0) {
        field("arrival_us", std::to_string(arrival_us), false);
    }
    if (!scenario.empty()) field("scenario", scenario, true);
    if (!model.empty()) {
        field("model", model, true);
        if (schedule != "per-layer") field("schedule", schedule, true);
    }
    if (aw > 0) field("aw", std::to_string(aw), false);
    if (ah > 0) field("ah", std::to_string(ah), false);
    if (!dataflow.empty()) field("dataflow", dataflow, true);
    if (layout != "concordant") field("layout", layout, true);
    if (out_layout != "concordant") field("out_layout", out_layout, true);
    if (seed) field("seed", std::to_string(*seed), false);
    if (engine) field("engine", sim::toString(*engine), true);
    out += '}';
    return out;
}

} // namespace daemon
} // namespace feather
