#pragma once

/**
 * @file
 * Minimal dense tensor with row-major logical indexing.
 *
 * The simulator distinguishes *logical* tensors (what a layer computes on,
 * indexed by named dimensions like N/C/H/W) from *physical* on-chip layouts
 * (src/layout). A Tensor is always logically row-major over its shape; the
 * Layout machinery decides where each element physically lives in a buffer.
 */

#include <cstdint>
#include <numeric>
#include <vector>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace feather {

/** Dense n-dimensional tensor of POD elements. */
template <typename T>
class Tensor
{
  public:
    Tensor() = default;

    explicit Tensor(std::vector<int64_t> shape, T fill = T{})
        : shape_(std::move(shape))
    {
        int64_t n = 1;
        for (int64_t d : shape_) {
            FEATHER_CHECK(d > 0, "tensor dims must be positive");
            n *= d;
        }
        data_.assign(size_t(n), fill);
        computeStrides();
    }

    const std::vector<int64_t> &shape() const { return shape_; }
    int64_t dim(size_t i) const { return shape_.at(i); }
    size_t rank() const { return shape_.size(); }
    int64_t numel() const { return int64_t(data_.size()); }

    T *data() { return data_.data(); }
    const T *data() const { return data_.data(); }

    T &operator[](size_t flat) { return data_[flat]; }
    const T &operator[](size_t flat) const { return data_[flat]; }

    /** Flat offset of a coordinate vector (row-major). */
    int64_t
    offset(const std::vector<int64_t> &idx) const
    {
        FEATHER_CHECK(idx.size() == shape_.size(), "rank mismatch");
        int64_t off = 0;
        for (size_t i = 0; i < idx.size(); ++i) {
            FEATHER_CHECK(idx[i] >= 0 && idx[i] < shape_[i],
                          "index ", idx[i], " out of bounds for dim ", i,
                          " (extent ", shape_[i], ")");
            off += idx[i] * strides_[i];
        }
        return off;
    }

    T &at(const std::vector<int64_t> &idx) { return data_[size_t(offset(idx))]; }
    const T &
    at(const std::vector<int64_t> &idx) const
    {
        return data_[size_t(offset(idx))];
    }

    /** Convenience accessors for the common 4-D (N,C,H,W) case. */
    T &
    at4(int64_t a, int64_t b, int64_t c, int64_t d)
    {
        return data_[size_t(a * strides_[0] + b * strides_[1] +
                            c * strides_[2] + d * strides_[3])];
    }
    const T &
    at4(int64_t a, int64_t b, int64_t c, int64_t d) const
    {
        return data_[size_t(a * strides_[0] + b * strides_[1] +
                            c * strides_[2] + d * strides_[3])];
    }

    /** Convenience accessors for the 2-D (rows, cols) case. */
    T &at2(int64_t r, int64_t c) { return data_[size_t(r * strides_[0] + c)]; }
    const T &
    at2(int64_t r, int64_t c) const
    {
        return data_[size_t(r * strides_[0] + c)];
    }

    /** Fill with uniform random values in [lo, hi] from @p rng. */
    void
    randomize(Rng &rng, int64_t lo, int64_t hi)
    {
        for (auto &v : data_) {
            v = static_cast<T>(rng.range(lo, hi));
        }
    }

    bool
    operator==(const Tensor &o) const
    {
        return shape_ == o.shape_ && data_ == o.data_;
    }

  private:
    void
    computeStrides()
    {
        strides_.assign(shape_.size(), 1);
        for (size_t i = shape_.size(); i-- > 1;) {
            strides_[i - 1] = strides_[i] * shape_[i];
        }
    }

    std::vector<int64_t> shape_;
    std::vector<int64_t> strides_;
    std::vector<T> data_;
};

using Int8Tensor = Tensor<int8_t>;
using Int32Tensor = Tensor<int32_t>;
using FloatTensor = Tensor<float>;

} // namespace feather
