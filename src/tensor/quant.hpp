#pragma once

/**
 * @file
 * FBGEMM/QNNPACK-style affine quantization, as used by FEATHER's Quantize
 * Module (QM): 8-bit zero points and 32-bit (float) scales (paper §III-C4).
 *
 * real = scale * (q - zero_point)
 *
 * The QM rescales 32-bit accumulator outputs down to int8 using the combined
 * scale (s_in * s_w / s_out) and the output zero point, with round-half-away
 * -from-zero semantics. Both the reference ops and the cycle simulator use
 * exactly these functions so results compare bit-exactly.
 */

#include <cstdint>

namespace feather {

/** Affine quantization parameters for one tensor. */
struct QuantParams
{
    float scale = 1.0f;
    int8_t zero_point = 0;
};

/** Clamp an int32 into int8 range. */
int8_t clampToInt8(int32_t v);

/** Quantize one real value under @p qp. */
int8_t quantize(float real, const QuantParams &qp);

/** Dequantize one int8 value under @p qp. */
float dequantize(int8_t q, const QuantParams &qp);

/**
 * Requantize a 32-bit accumulator value into int8.
 *
 * @param acc        int32 accumulator (sum of (x-zx)*(w-zw) products)
 * @param multiplier combined scale s_x*s_w/s_out
 * @param out_zp     output zero point
 */
int8_t requantize(int32_t acc, float multiplier, int8_t out_zp);

} // namespace feather
