#include "tensor/quant.hpp"

#include <cmath>

namespace feather {

int8_t
clampToInt8(int32_t v)
{
    if (v < -128) return -128;
    if (v > 127) return 127;
    return static_cast<int8_t>(v);
}

int8_t
quantize(float real, const QuantParams &qp)
{
    const float scaled = real / qp.scale;
    const int32_t rounded =
        static_cast<int32_t>(std::lround(scaled)) + qp.zero_point;
    return clampToInt8(rounded);
}

float
dequantize(int8_t q, const QuantParams &qp)
{
    return qp.scale * float(int32_t(q) - int32_t(qp.zero_point));
}

int8_t
requantize(int32_t acc, float multiplier, int8_t out_zp)
{
    const double scaled = double(acc) * double(multiplier);
    // Round half away from zero, matching FBGEMM's default host rounding.
    const int64_t rounded = int64_t(std::llround(scaled));
    return clampToInt8(int32_t(rounded + out_zp));
}

} // namespace feather
