#pragma once

/**
 * @file
 * Golden reference implementations of the operators FEATHER executes.
 *
 * Every cycle-level result produced by the NEST/BIRRD simulator is checked
 * bit-exactly against these loops in the test suite. All operators follow
 * the int8-input / int32-accumulate / requantize-to-int8 discipline of the
 * paper's datapath (9-bit multipliers after zero-point subtraction feeding
 * 32-bit accumulation, §III / Fig. 8).
 */

#include <cstdint>

#include "tensor/quant.hpp"
#include "tensor/tensor.hpp"

namespace feather {

/** Output spatial extent of a convolution along one axis. */
int64_t convOutDim(int64_t in, int64_t kernel, int64_t stride, int64_t pad);

/**
 * Standard convolution: iActs [N,C,H,W] (int8) * weights [M,C,R,S] (int8)
 * -> oActs [N,M,P,Q] (int32 accumulators).
 *
 * Zero points are subtracted before multiplication, so padded positions
 * (which hold the input zero point) contribute exactly zero.
 */
Int32Tensor conv2d(const Int8Tensor &iacts, const Int8Tensor &weights,
                   int64_t stride, int64_t pad, int8_t iact_zp,
                   int8_t weight_zp);

/**
 * Depthwise convolution: iActs [N,C,H,W] * weights [C,1,R,S] -> [N,C,P,Q].
 */
Int32Tensor depthwiseConv2d(const Int8Tensor &iacts, const Int8Tensor &weights,
                            int64_t stride, int64_t pad, int8_t iact_zp,
                            int8_t weight_zp);

/**
 * GEMM: A [M,K] * B [K,N] -> C [M,N] int32, zero points subtracted.
 * The paper's GEMM notation (Fig. 10) streams A (weights stationary possible
 * per-column); the reference is plain triple-loop.
 */
Int32Tensor gemm(const Int8Tensor &a, const Int8Tensor &b, int8_t a_zp,
                 int8_t b_zp);

/** Requantize an int32 accumulator tensor into int8 (QM behaviour). */
Int8Tensor requantizeTensor(const Int32Tensor &acc, float multiplier,
                            int8_t out_zp);

/** ReLU on a quantized tensor: max(q, zero_point). */
Int8Tensor reluQuantized(const Int8Tensor &x, int8_t zp);

/** 2-D max pooling over [N,C,H,W]. */
Int8Tensor maxPool2d(const Int8Tensor &x, int64_t kernel, int64_t stride,
                     int64_t pad, int8_t pad_value);

/**
 * 2-D average pooling expressed as a convolution, the way FEATHER executes
 * it on NEST (paper §III-A: "AvgPooling layers are transformed into
 * convolution operations"). Accumulates int32 and divides with rounding.
 */
Int8Tensor avgPool2d(const Int8Tensor &x, int64_t kernel, int64_t stride,
                     int8_t zp);

} // namespace feather
