#include "tensor/reference_ops.hpp"

#include <algorithm>
#include <cmath>

namespace feather {

int64_t
convOutDim(int64_t in, int64_t kernel, int64_t stride, int64_t pad)
{
    return (in + 2 * pad - kernel) / stride + 1;
}

Int32Tensor
conv2d(const Int8Tensor &iacts, const Int8Tensor &weights, int64_t stride,
       int64_t pad, int8_t iact_zp, int8_t weight_zp)
{
    FEATHER_CHECK(iacts.rank() == 4 && weights.rank() == 4, "rank");
    const int64_t n = iacts.dim(0), c = iacts.dim(1);
    const int64_t h = iacts.dim(2), w = iacts.dim(3);
    const int64_t m = weights.dim(0), r = weights.dim(2), s = weights.dim(3);
    FEATHER_CHECK(weights.dim(1) == c, "channel mismatch");
    const int64_t p = convOutDim(h, r, stride, pad);
    const int64_t q = convOutDim(w, s, stride, pad);

    Int32Tensor out({n, m, p, q});
    for (int64_t in_ = 0; in_ < n; ++in_) {
        for (int64_t im = 0; im < m; ++im) {
            for (int64_t ip = 0; ip < p; ++ip) {
                for (int64_t iq = 0; iq < q; ++iq) {
                    int32_t acc = 0;
                    for (int64_t ic = 0; ic < c; ++ic) {
                        for (int64_t ir = 0; ir < r; ++ir) {
                            const int64_t ih = ip * stride + ir - pad;
                            if (ih < 0 || ih >= h) continue;
                            for (int64_t is = 0; is < s; ++is) {
                                const int64_t iw = iq * stride + is - pad;
                                if (iw < 0 || iw >= w) continue;
                                const int32_t x =
                                    int32_t(iacts.at4(in_, ic, ih, iw)) -
                                    iact_zp;
                                const int32_t wt =
                                    int32_t(weights.at4(im, ic, ir, is)) -
                                    weight_zp;
                                acc += x * wt;
                            }
                        }
                    }
                    out.at4(in_, im, ip, iq) = acc;
                }
            }
        }
    }
    return out;
}

Int32Tensor
depthwiseConv2d(const Int8Tensor &iacts, const Int8Tensor &weights,
                int64_t stride, int64_t pad, int8_t iact_zp, int8_t weight_zp)
{
    FEATHER_CHECK(iacts.rank() == 4 && weights.rank() == 4, "rank");
    const int64_t n = iacts.dim(0), c = iacts.dim(1);
    const int64_t h = iacts.dim(2), w = iacts.dim(3);
    FEATHER_CHECK(weights.dim(0) == c && weights.dim(1) == 1,
                  "depthwise weights must be [C,1,R,S]");
    const int64_t r = weights.dim(2), s = weights.dim(3);
    const int64_t p = convOutDim(h, r, stride, pad);
    const int64_t q = convOutDim(w, s, stride, pad);

    Int32Tensor out({n, c, p, q});
    for (int64_t in_ = 0; in_ < n; ++in_) {
        for (int64_t ic = 0; ic < c; ++ic) {
            for (int64_t ip = 0; ip < p; ++ip) {
                for (int64_t iq = 0; iq < q; ++iq) {
                    int32_t acc = 0;
                    for (int64_t ir = 0; ir < r; ++ir) {
                        const int64_t ih = ip * stride + ir - pad;
                        if (ih < 0 || ih >= h) continue;
                        for (int64_t is = 0; is < s; ++is) {
                            const int64_t iw = iq * stride + is - pad;
                            if (iw < 0 || iw >= w) continue;
                            acc += (int32_t(iacts.at4(in_, ic, ih, iw)) -
                                    iact_zp) *
                                   (int32_t(weights.at4(ic, 0, ir, is)) -
                                    weight_zp);
                        }
                    }
                    out.at4(in_, ic, ip, iq) = acc;
                }
            }
        }
    }
    return out;
}

Int32Tensor
gemm(const Int8Tensor &a, const Int8Tensor &b, int8_t a_zp, int8_t b_zp)
{
    FEATHER_CHECK(a.rank() == 2 && b.rank() == 2, "rank");
    const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    FEATHER_CHECK(b.dim(0) == k, "inner-dim mismatch");

    Int32Tensor out({m, n});
    for (int64_t im = 0; im < m; ++im) {
        for (int64_t in_ = 0; in_ < n; ++in_) {
            int32_t acc = 0;
            for (int64_t ik = 0; ik < k; ++ik) {
                acc += (int32_t(a.at2(im, ik)) - a_zp) *
                       (int32_t(b.at2(ik, in_)) - b_zp);
            }
            out.at2(im, in_) = acc;
        }
    }
    return out;
}

Int8Tensor
requantizeTensor(const Int32Tensor &acc, float multiplier, int8_t out_zp)
{
    Int8Tensor out(acc.shape());
    for (int64_t i = 0; i < acc.numel(); ++i) {
        out[size_t(i)] = requantize(acc[size_t(i)], multiplier, out_zp);
    }
    return out;
}

Int8Tensor
reluQuantized(const Int8Tensor &x, int8_t zp)
{
    Int8Tensor out(x.shape());
    for (int64_t i = 0; i < x.numel(); ++i) {
        out[size_t(i)] = std::max(x[size_t(i)], zp);
    }
    return out;
}

Int8Tensor
maxPool2d(const Int8Tensor &x, int64_t kernel, int64_t stride, int64_t pad,
          int8_t pad_value)
{
    FEATHER_CHECK(x.rank() == 4, "rank");
    const int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
    const int64_t p = convOutDim(h, kernel, stride, pad);
    const int64_t q = convOutDim(w, kernel, stride, pad);

    Int8Tensor out({n, c, p, q});
    for (int64_t in_ = 0; in_ < n; ++in_) {
        for (int64_t ic = 0; ic < c; ++ic) {
            for (int64_t ip = 0; ip < p; ++ip) {
                for (int64_t iq = 0; iq < q; ++iq) {
                    int8_t best = pad_value;
                    for (int64_t kr = 0; kr < kernel; ++kr) {
                        const int64_t ih = ip * stride + kr - pad;
                        if (ih < 0 || ih >= h) continue;
                        for (int64_t ks = 0; ks < kernel; ++ks) {
                            const int64_t iw = iq * stride + ks - pad;
                            if (iw < 0 || iw >= w) continue;
                            best = std::max(best, x.at4(in_, ic, ih, iw));
                        }
                    }
                    out.at4(in_, ic, ip, iq) = best;
                }
            }
        }
    }
    return out;
}

Int8Tensor
avgPool2d(const Int8Tensor &x, int64_t kernel, int64_t stride, int8_t zp)
{
    FEATHER_CHECK(x.rank() == 4, "rank");
    const int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
    const int64_t p = convOutDim(h, kernel, stride, 0);
    const int64_t q = convOutDim(w, kernel, stride, 0);
    const int32_t window = int32_t(kernel * kernel);

    Int8Tensor out({n, c, p, q});
    for (int64_t in_ = 0; in_ < n; ++in_) {
        for (int64_t ic = 0; ic < c; ++ic) {
            for (int64_t ip = 0; ip < p; ++ip) {
                for (int64_t iq = 0; iq < q; ++iq) {
                    int32_t acc = 0;
                    for (int64_t kr = 0; kr < kernel; ++kr) {
                        for (int64_t ks = 0; ks < kernel; ++ks) {
                            acc += int32_t(x.at4(in_, ic, ip * stride + kr,
                                                 iq * stride + ks)) -
                                   zp;
                        }
                    }
                    // Round-half-away-from-zero division, then re-add zp.
                    const int32_t rounded =
                        acc >= 0 ? (acc + window / 2) / window
                                 : -((-acc + window / 2) / window);
                    out.at4(in_, ic, ip, iq) = clampToInt8(rounded + zp);
                }
            }
        }
    }
    return out;
}

} // namespace feather
