/**
 * @file
 * `feather_report_norm`: the CI-facing wrapper of common/report_norm.
 *
 *   $ feather_report_norm auto  < report.json > report.norm.json
 *   $ feather_report_norm csv   report.csv    > report.norm.csv
 *
 * Zeroes every wall-clock field (`*_wall_us`) of a CSV / JSON / JSON-lines
 * report so CI determinism diffs share one normalizer with the unit-test
 * golden suites instead of re-implementing it in awk/sed per workflow.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/report_norm.hpp"

int
main(int argc, char **argv)
{
    const std::string format = argc > 1 ? argv[1] : "";
    if (format != "csv" && format != "json" && format != "auto") {
        std::fprintf(stderr,
                     "usage: feather_report_norm csv|json|auto [FILE]\n"
                     "zeroes *_wall_us report fields (stdin when no FILE) "
                     "and writes the result to stdout\n");
        return 2;
    }
    std::ostringstream text;
    if (argc > 2) {
        std::ifstream in(argv[2], std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "error: cannot read '%s'\n", argv[2]);
            return 2;
        }
        text << in.rdbuf();
    } else {
        text << std::cin.rdbuf();
    }
    std::cout << feather::zeroWallReport(text.str(), format);
    return 0;
}
