#pragma once

/**
 * @file
 * Declarative command-line option tables, shared by every CLI surface
 * (feather_cli's sim/batch/model modes and feather_serve).
 *
 * Each binary used to hand-roll the same parse loop: a `value` lambda
 * fetching the next arg, a `uintValue` wrapper, bespoke range checks, and
 * subtly different error texts. An OptionTable declares each flag once —
 * name, arity (a value name or none), validator, help line — and the
 * shared parse loop produces uniform one-line errors that always name the
 * offending flag:
 *
 *   unknown flag '--x'<suffix>
 *   --x needs a value
 *   invalid value for --x: 'v' (expected <what>)
 *
 * helpText() renders the declarations as the aligned two-column block the
 * usage texts embed, so flags are documented where they are declared.
 */

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace feather {

/** A declarative flag table: declare once, parse + document from it. */
class OptionTable
{
  public:
    /** Handle one occurrence (@p value empty for 0-arity flags); returns
     *  "" on success or the complete one-line error message. */
    using ApplyFn = std::function<std::string(const std::string &value)>;

    /** Appended to "unknown flag '--x'" (e.g. " (see --help)"). */
    OptionTable &unknownSuffix(std::string suffix);

    /** A 0-arity flag that sets @p out. */
    OptionTable &flag(const std::string &name, const std::string &help,
                      bool *out);

    /** A 0-arity flag with a custom handler (mode selection etc.). */
    OptionTable &flagFn(const std::string &name, const std::string &help,
                        std::function<std::string()> fn);

    /** A flag taking one arbitrary string value. */
    OptionTable &str(const std::string &name, const std::string &value_name,
                     const std::string &help, std::string *out);

    /** A strictly positive integer <= @p max. */
    OptionTable &positive(const std::string &name,
                          const std::string &value_name,
                          const std::string &help, uint64_t *out,
                          uint64_t max = UINT64_MAX);
    OptionTable &positiveInt(const std::string &name,
                             const std::string &value_name,
                             const std::string &help, int *out,
                             uint64_t max);

    /** Any non-negative integer (0 allowed, full uint64 range). */
    OptionTable &nonNegative(const std::string &name,
                             const std::string &value_name,
                             const std::string &help, uint64_t *out);

    /** A non-negative integer <= @p max (0 allowed). */
    OptionTable &ranged(const std::string &name,
                        const std::string &value_name,
                        const std::string &help, uint64_t *out,
                        uint64_t max);
    OptionTable &rangedInt(const std::string &name,
                           const std::string &value_name,
                           const std::string &help, int *out, uint64_t max);

    /** A flag with one value and a custom handler. The handler returns ""
     *  on success, or the full error message (use invalidValue()). */
    OptionTable &custom(const std::string &name,
                        const std::string &value_name,
                        const std::string &help, ApplyFn fn);

    /**
     * Parse @p args against the table. False with a one-line @p error
     * naming the offending flag on the first invalid input. "-h" is
     * accepted for "--help" when the table declares the latter.
     */
    bool parse(const std::vector<std::string> &args,
               std::string *error) const;

    /** The aligned two-column help block (one line per declared flag, in
     *  declaration order), for embedding into a usage text. */
    std::string helpText() const;

    /** The standard bad-value message: shared by custom handlers so every
     *  CLI phrases validation failures identically. */
    static std::string invalidValue(const std::string &name,
                                    const std::string &text,
                                    const std::string &expected);

  private:
    struct Option
    {
        std::string name;
        std::string value_name; ///< "" = 0-arity flag
        std::string help;
        ApplyFn apply;
    };

    std::vector<Option> options_;
    std::string unknown_suffix_;
};

} // namespace feather
