#include "common/report_norm.hpp"

#include <cctype>
#include <sstream>
#include <vector>

namespace feather {

bool
isWallReportField(const std::string &name)
{
    static const std::string suffix = "_wall_us";
    return name.size() >= suffix.size() &&
           name.compare(name.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

std::string
zeroWallCsv(const std::string &csv)
{
    std::istringstream in(csv);
    std::string line, out;
    std::vector<size_t> wall_cols;
    bool header = true;
    while (std::getline(in, line)) {
        std::vector<std::string> cells;
        std::istringstream cells_in(line);
        std::string cell;
        while (std::getline(cells_in, cell, ',')) cells.push_back(cell);
        if (header) {
            for (size_t i = 0; i < cells.size(); ++i) {
                if (isWallReportField(cells[i])) wall_cols.push_back(i);
            }
            header = false;
        } else {
            for (size_t col : wall_cols) {
                if (col < cells.size()) cells[col] = "0";
            }
        }
        for (size_t i = 0; i < cells.size(); ++i) {
            if (i > 0) out += ',';
            out += cells[i];
        }
        out += '\n';
    }
    return out;
}

std::string
zeroWallJson(std::string json)
{
    // Scan quoted tokens; a token is a key iff ':' follows its closing
    // quote. Wall keys get their (optionally signed) integer value
    // replaced by 0; everything else is copied through untouched, so the
    // normalizer works on any of the JSON / JSON-lines reports.
    for (size_t i = 0; i < json.size(); ++i) {
        if (json[i] != '"') continue;
        std::string token;
        size_t j = i + 1;
        for (; j < json.size() && json[j] != '"'; ++j) {
            if (json[j] == '\\' && j + 1 < json.size()) ++j;
            token += json[j];
        }
        i = j;
        if (j + 1 >= json.size() || json[j + 1] != ':' ||
            !isWallReportField(token)) {
            continue;
        }
        size_t pos = j + 2;
        size_t end = pos;
        if (end < json.size() && json[end] == '-') ++end;
        while (end < json.size() &&
               std::isdigit(static_cast<unsigned char>(json[end]))) {
            ++end;
        }
        if (end > pos) {
            json.replace(pos, end - pos, "0");
            i = pos; // continue after the replaced value
        }
    }
    return json;
}

std::string
zeroWallReport(const std::string &text, const std::string &format)
{
    if (format == "csv") return zeroWallCsv(text);
    if (format == "json") return zeroWallJson(text);
    size_t first = 0;
    while (first < text.size() &&
           std::isspace(static_cast<unsigned char>(text[first]))) {
        ++first;
    }
    const bool json = first < text.size() && text[first] == '{';
    return json ? zeroWallJson(text) : zeroWallCsv(text);
}

} // namespace feather
