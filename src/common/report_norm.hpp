#pragma once

/**
 * @file
 * The one shared definition of "wall-clock report field" and the
 * normalizers that zero such fields before determinism comparisons.
 *
 * Report schemas mark wall-clock measurements — the only legitimately
 * non-deterministic report fields — with the `_wall_us` name suffix
 * (sim_wall_us, queue_wall_us, service_wall_us, run_wall_us, ...). The
 * golden-file test suites (tests/golden_util.hpp) and the CI determinism
 * checks (via the `feather_report_norm` binary; see
 * .github/workflows/sanitize.yml and ci.yml) all normalize through these
 * two functions, so adding a wall field to any schema needs no new
 * zeroing code anywhere: follow the suffix convention and every consumer
 * zeroes it.
 */

#include <string>

namespace feather {

/** True when @p name denotes a wall-clock field (suffix `_wall_us`). */
bool isWallReportField(const std::string &name);

/** Zero every wall-clock column of a CSV report (header names the
 *  columns; data cells in those columns become "0"). */
std::string zeroWallCsv(const std::string &csv);

/** Zero every `"<wall field>":<integer>` value in a JSON document (also
 *  works on JSON-lines: the scan is line-agnostic). */
std::string zeroWallJson(std::string json);

/** Normalize @p text as @p format ("csv", "json", or "auto": JSON when
 *  the first non-space character is '{'). */
std::string zeroWallReport(const std::string &text,
                           const std::string &format = "auto");

} // namespace feather
