#pragma once

/**
 * @file
 * Bump-pointer arena for per-job simulation scratch.
 *
 * The cycle simulator's inner loops need many small, short-lived buffers
 * (per-row iact staging, bank-conflict counters, wave assignment tables).
 * Allocating them with vectors inside the step loop dominates batch-sweep
 * profiles with malloc traffic. An Arena turns all of that into pointer
 * bumps: a run resets the arena once, carves its scratch out of a few
 * large blocks, and drops everything wholesale at the next reset — no
 * per-buffer free, no churn, and the blocks themselves are reused across
 * resets (so across the layers of a chain and the steps of a batch job).
 *
 * Only trivially-destructible element types are supported: reset() never
 * runs destructors. peakBytes() reports the high-water mark of live bytes
 * ever requested, which the serve/model reports export per job as
 * `arena_peak_bytes`.
 */

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/log.hpp"

namespace feather {

/** Chunked bump allocator; memory is recycled on reset(), freed on
 *  destruction. */
class Arena
{
  public:
    /** @param block_bytes granularity of the underlying blocks. */
    explicit Arena(size_t block_bytes = 64 * 1024)
        : block_bytes_(block_bytes)
    {
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Raw allocation; the returned memory is uninitialized. */
    void *
    alloc(size_t bytes, size_t align = alignof(std::max_align_t))
    {
        FEATHER_CHECK(align > 0 && (align & (align - 1)) == 0,
                      "arena alignment must be a power of two, got ", align);
        if (bytes == 0) bytes = 1;
        // Bump within the current block, or move on to the next (recycled
        // or fresh) block large enough for the request.
        while (true) {
            if (block_ < blocks_.size()) {
                Block &b = blocks_[block_];
                const size_t at = (b.used + align - 1) & ~(align - 1);
                if (at + bytes <= b.size) {
                    b.used = at + bytes;
                    live_bytes_ += bytes;
                    if (live_bytes_ > peak_bytes_) peak_bytes_ = live_bytes_;
                    return b.data.get() + at;
                }
                ++block_;
                continue;
            }
            Block b;
            b.size = bytes + align > block_bytes_ ? bytes + align
                                                  : block_bytes_;
            b.data.reset(new unsigned char[b.size]);
            blocks_.push_back(std::move(b));
        }
    }

    /** Typed array of @p n elements (uninitialized; trivial T only). */
    template <typename T>
    T *
    allocArray(size_t n)
    {
        static_assert(std::is_trivially_destructible<T>::value &&
                          std::is_trivially_copyable<T>::value,
                      "Arena holds trivial types only (reset() skips "
                      "destructors)");
        return static_cast<T *>(alloc(n * sizeof(T), alignof(T)));
    }

    /** Drop every allocation (keeping the blocks for reuse). */
    void
    reset()
    {
        for (Block &b : blocks_) b.used = 0;
        block_ = 0;
        live_bytes_ = 0;
    }

    /** Bytes currently allocated (since the last reset). */
    size_t liveBytes() const { return live_bytes_; }

    /** High-water mark of liveBytes() over the arena's lifetime. */
    size_t peakBytes() const { return peak_bytes_; }

  private:
    struct Block
    {
        std::unique_ptr<unsigned char[]> data;
        size_t size = 0;
        size_t used = 0;
    };

    size_t block_bytes_;
    std::vector<Block> blocks_;
    size_t block_ = 0;      ///< first block with room
    size_t live_bytes_ = 0;
    size_t peak_bytes_ = 0;
};

} // namespace feather
