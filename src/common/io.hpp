#pragma once

/**
 * @file
 * Tiny shared file-IO helpers for the CLI surfaces (batch and model
 * report writers), so error handling lives in one place.
 */

#include <fstream>
#include <string>

namespace feather {

/** Write @p content to @p path, truncating; false on any IO failure. */
inline bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    if (!out) return false;
    out << content;
    return bool(out);
}

} // namespace feather
