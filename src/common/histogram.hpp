#pragma once

/**
 * @file
 * Streaming latency histogram with deterministic percentiles.
 *
 * HDR-style log-linear bucketing over non-negative int64 values: values
 * below 64 get singleton buckets (exact), larger values share 64
 * sub-buckets per power of two (worst-case relative error 1/64 ≈ 1.6%,
 * reported values are bucket lower bounds so they never exceed the true
 * quantile's bucket). Everything is integer arithmetic on integer counts,
 * so two properties the serving reports rely on hold exactly:
 *
 *   - merge() is associative and commutative — per-thread histograms
 *     merged in any order produce bit-identical counts and percentiles,
 *     which keeps daemon reports independent of worker interleaving;
 *   - recording the same multiset of values always yields the same
 *     percentile, independent of insertion order.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

namespace feather {

/** Fixed-footprint streaming histogram of non-negative int64 samples. */
class LatencyHistogram
{
  public:
    LatencyHistogram();

    /** Record one sample; negative values clamp to 0. */
    void record(int64_t value);

    /** Fold @p other into this histogram (exact integer addition). */
    void merge(const LatencyHistogram &other);

    uint64_t count() const { return count_; }
    int64_t min() const { return count_ ? min_ : 0; }
    int64_t max() const { return count_ ? max_ : 0; }
    int64_t total() const { return sum_; }
    double mean() const;

    /**
     * The value at percentile @p p in [0, 100]: the lower bound of the
     * first bucket whose cumulative count reaches ceil(p/100 * count),
     * clamped to [min, max]. p <= 0 returns min, p >= 100 returns max,
     * an empty histogram returns 0.
     */
    int64_t percentile(double p) const;

    /** Bucket of @p value (exposed for the unit tests). */
    static size_t bucketIndex(int64_t value);

    /** Smallest value mapping to bucket @p index. */
    static int64_t bucketLowerBound(size_t index);

    static constexpr int kSubBits = 6;
    static constexpr size_t kSubBuckets = size_t(1) << kSubBits; // 64
    /** 58 ranges x 64 sub-buckets covers every non-negative int64. */
    static constexpr size_t kNumBuckets = kSubBuckets * 58;

  private:
    std::vector<uint64_t> counts_;
    uint64_t count_ = 0;
    int64_t min_ = 0;
    int64_t max_ = 0;
    int64_t sum_ = 0;
};

} // namespace feather
