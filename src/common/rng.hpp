#pragma once

/**
 * @file
 * Deterministic pseudo-random number generator (splitmix64 + xoshiro256**).
 *
 * All stochastic components (mapper random search, router randomized
 * restarts, test-input generation) draw from this generator so every run of
 * the simulator, tests, and benchmarks is reproducible from a seed.
 */

#include <cstdint>
#include <limits>

namespace feather {

/** xoshiro256** seeded through splitmix64; satisfies UniformRandomBitGenerator. */
class Rng
{
  public:
    using result_type = uint64_t;

    explicit Rng(uint64_t seed = 0x5EEDFEA7'42ull) { reseed(seed); }

    /**
     * Independent stream @p stream of @p base_seed: the generator for job
     * @p stream of a batch whose base seed is @p base_seed. Concurrent jobs
     * each derive their own stream instead of sharing one mutable Rng, so a
     * batch run is bit-identical regardless of how many worker threads
     * execute it (see serve::BatchEngine).
     */
    static Rng
    forStream(uint64_t base_seed, uint64_t stream)
    {
        return Rng(deriveStream(base_seed, stream));
    }

    /** The seed Rng::forStream(base_seed, stream) reseeds with. */
    static uint64_t
    deriveStream(uint64_t base_seed, uint64_t stream)
    {
        // One extra splitmix64 round over (base, stream) so adjacent stream
        // indices land far apart in seed space.
        uint64_t x = base_seed + 0x9E3779B97F4A7C15ull * (stream + 1);
        x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
        x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
        return x ^ (x >> 31);
    }

    void
    reseed(uint64_t seed)
    {
        // splitmix64 to spread the seed across the four lanes of state.
        uint64_t x = seed;
        for (auto &lane : state_) {
            x += 0x9E3779B97F4A7C15ull;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            lane = z ^ (z >> 31);
        }
    }

    uint64_t
    operator()()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    static constexpr uint64_t min() { return 0; }
    static constexpr uint64_t
    max()
    {
        return std::numeric_limits<uint64_t>::max();
    }

    /** Uniform integer in [0, bound). @p bound must be > 0. */
    uint64_t
    below(uint64_t bound)
    {
        // Rejection-free Lemire reduction is overkill here; modulo bias is
        // negligible for the bounds we use (<< 2^32).
        return (*this)() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(below(uint64_t(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return double((*this)() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

} // namespace feather
