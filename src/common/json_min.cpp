#include "common/json_min.hpp"

#include <cctype>

#include "common/log.hpp"
#include "common/parse.hpp"

namespace feather {
namespace {

struct Cursor
{
    const std::string &text;
    size_t pos = 0;

    void skipSpace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos]))) {
            ++pos;
        }
    }

    bool done() const { return pos >= text.size(); }
    char peek() const { return text[pos]; }
};

bool
parseString(Cursor *c, std::string *out, std::string *error)
{
    ++c->pos; // opening quote
    out->clear();
    while (!c->done() && c->peek() != '"') {
        char ch = c->peek();
        if (ch == '\\') {
            ++c->pos;
            if (c->done()) break;
            switch (c->peek()) {
            case '"': ch = '"'; break;
            case '\\': ch = '\\'; break;
            case '/': ch = '/'; break;
            case 'n': ch = '\n'; break;
            case 't': ch = '\t'; break;
            case 'r': ch = '\r'; break;
            default:
                *error = strCat("unsupported escape '\\",
                                std::string(1, c->peek()), "' at offset ",
                                c->pos);
                return false;
            }
        }
        out->push_back(ch);
        ++c->pos;
    }
    if (c->done()) {
        *error = "unterminated string";
        return false;
    }
    ++c->pos; // closing quote
    return true;
}

bool
parseScalar(Cursor *c, JsonScalar *out, std::string *error)
{
    const char ch = c->peek();
    if (ch == '"') {
        out->kind = JsonScalar::Kind::String;
        return parseString(c, &out->text, error);
    }
    if (ch == '{' || ch == '[') {
        *error = strCat("nested ", ch == '{' ? "objects" : "arrays",
                        " are not allowed (offset ", c->pos, ")");
        return false;
    }
    if (c->text.compare(c->pos, 4, "true") == 0) {
        out->kind = JsonScalar::Kind::Bool;
        out->boolean = true;
        out->text = "true";
        c->pos += 4;
        return true;
    }
    if (c->text.compare(c->pos, 5, "false") == 0) {
        out->kind = JsonScalar::Kind::Bool;
        out->boolean = false;
        out->text = "false";
        c->pos += 5;
        return true;
    }
    if (c->text.compare(c->pos, 4, "null") == 0) {
        out->kind = JsonScalar::Kind::Null;
        out->text = "null";
        c->pos += 4;
        return true;
    }
    // Number: optional '-', digits, optional fraction/exponent. The raw
    // text is kept verbatim so integer consumers stay exact.
    const size_t start = c->pos;
    if (!c->done() && c->peek() == '-') ++c->pos;
    size_t digits = 0;
    while (!c->done()) {
        const char d = c->peek();
        if (std::isdigit(static_cast<unsigned char>(d))) {
            ++digits;
        } else if (d != '.' && d != 'e' && d != 'E' && d != '+' &&
                   d != '-') {
            break;
        }
        ++c->pos;
    }
    if (digits == 0) {
        *error = strCat("expected a JSON value at offset ", start);
        return false;
    }
    out->kind = JsonScalar::Kind::Number;
    out->text = c->text.substr(start, c->pos - start);
    return true;
}

} // namespace

bool
JsonScalar::asUint(uint64_t *out) const
{
    return kind == Kind::Number && parseUint(text, out);
}

bool
JsonScalar::asInt(int64_t *out) const
{
    if (kind != Kind::Number) return false;
    const bool negative = !text.empty() && text[0] == '-';
    uint64_t magnitude = 0;
    if (!parseUint(negative ? text.substr(1) : text, &magnitude)) {
        return false;
    }
    if (negative) {
        if (magnitude > uint64_t(INT64_MAX) + 1) return false;
        *out = magnitude == uint64_t(INT64_MAX) + 1
                   ? INT64_MIN
                   : -int64_t(magnitude);
    } else {
        if (magnitude > uint64_t(INT64_MAX)) return false;
        *out = int64_t(magnitude);
    }
    return true;
}

bool
JsonObject::parse(const std::string &text, JsonObject *out,
                  std::string *error)
{
    out->entries_.clear();
    Cursor c{text};
    c.skipSpace();
    if (c.done() || c.peek() != '{') {
        *error = "expected a JSON object ('{' ... '}')";
        return false;
    }
    ++c.pos;
    c.skipSpace();
    bool first = true;
    while (!c.done() && c.peek() != '}') {
        if (!first) {
            if (c.peek() != ',') {
                *error = strCat("expected ',' or '}' at offset ", c.pos);
                return false;
            }
            ++c.pos;
            c.skipSpace();
        }
        first = false;
        if (c.done() || c.peek() != '"') {
            *error = strCat("expected a quoted key at offset ", c.pos);
            return false;
        }
        std::string key;
        if (!parseString(&c, &key, error)) return false;
        if (out->find(key) != nullptr) {
            *error = strCat("duplicate key \"", key, "\"");
            return false;
        }
        c.skipSpace();
        if (c.done() || c.peek() != ':') {
            *error = strCat("expected ':' after key \"", key, "\"");
            return false;
        }
        ++c.pos;
        c.skipSpace();
        JsonScalar value;
        if (!parseScalar(&c, &value, error)) return false;
        out->entries_.emplace_back(std::move(key), std::move(value));
        c.skipSpace();
    }
    if (c.done()) {
        *error = "unterminated object (missing '}')";
        return false;
    }
    ++c.pos; // '}'
    c.skipSpace();
    if (!c.done()) {
        *error = strCat("trailing characters at offset ", c.pos);
        return false;
    }
    return true;
}

const JsonScalar *
JsonObject::find(const std::string &key) const
{
    for (const auto &entry : entries_) {
        if (entry.first == key) return &entry.second;
    }
    return nullptr;
}

} // namespace feather
