#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>

namespace feather {

LatencyHistogram::LatencyHistogram() : counts_(kNumBuckets, 0) {}

size_t
LatencyHistogram::bucketIndex(int64_t value)
{
    if (value < 0) value = 0;
    const uint64_t v = uint64_t(value);
    if (v < kSubBuckets) return size_t(v);
    // msb >= kSubBits here; shift drops the value into [kSub, 2*kSub).
    const int msb = 63 - __builtin_clzll(v);
    const int shift = msb - kSubBits;
    const size_t sub = size_t((v >> shift) - kSubBuckets);
    return size_t(shift + 1) * kSubBuckets + sub;
}

int64_t
LatencyHistogram::bucketLowerBound(size_t index)
{
    if (index < kSubBuckets) return int64_t(index);
    const size_t range = index / kSubBuckets;
    const size_t sub = index % kSubBuckets;
    const int shift = int(range) - 1;
    return int64_t((kSubBuckets + sub) << shift);
}

void
LatencyHistogram::record(int64_t value)
{
    if (value < 0) value = 0;
    if (count_ == 0 || value < min_) min_ = value;
    if (count_ == 0 || value > max_) max_ = value;
    sum_ += value;
    ++count_;
    ++counts_[bucketIndex(value)];
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    if (other.count_ == 0) return;
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (count_ == 0 || other.max_ > max_) max_ = other.max_;
    sum_ += other.sum_;
    count_ += other.count_;
    for (size_t i = 0; i < kNumBuckets; ++i) counts_[i] += other.counts_[i];
}

double
LatencyHistogram::mean() const
{
    return count_ ? double(sum_) / double(count_) : 0.0;
}

int64_t
LatencyHistogram::percentile(double p) const
{
    if (count_ == 0) return 0;
    if (p <= 0.0) return min_;
    if (p >= 100.0) return max_;
    const uint64_t rank = std::max<uint64_t>(
        1, uint64_t(std::ceil(p / 100.0 * double(count_))));
    uint64_t cum = 0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
        cum += counts_[i];
        if (cum >= rank) {
            return std::clamp(bucketLowerBound(i), min_, max_);
        }
    }
    return max_;
}

} // namespace feather
