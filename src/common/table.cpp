#include "common/table.hpp"

#include <cstdint>
#include <cstdio>
#include <sstream>

#include "common/log.hpp"

namespace feather {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    FEATHER_CHECK(cells.size() == headers_.size(),
                  "row arity ", cells.size(), " != header arity ",
                  headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::toString() const
{
    std::vector<size_t> widths(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "| " : " | ");
            os << row[c];
            os << std::string(widths[c] - row[c].size(), ' ');
        }
        os << " |\n";
    };
    emit_row(headers_);
    os << '|';
    for (size_t c = 0; c < headers_.size(); ++c) {
        os << std::string(widths[c] + 2, '-') << '|';
    }
    os << '\n';
    for (const auto &row : rows_) {
        emit_row(row);
    }
    return os.str();
}

std::string
Table::toCsv() const
{
    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c) os << ',';
            os << row[c];
        }
        os << '\n';
    };
    emit_row(headers_);
    for (const auto &row : rows_) {
        emit_row(row);
    }
    return os.str();
}

std::string
fmtDouble(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
fmtRatio(double v, int precision)
{
    return fmtDouble(v, precision) + "x";
}

std::string
fmtPercent(double v, int precision)
{
    return fmtDouble(v * 100.0, precision) + "%";
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (uint8_t(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
csvSafe(std::string s)
{
    for (char &c : s) {
        if (c == ',' || c == '\n') c = ';';
    }
    return s;
}

} // namespace feather
