#pragma once

/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh: fatal() for
 * user-caused misconfiguration, panic() for internal invariant violations.
 */

#include <cstdlib>
#include <sstream>
#include <string>

namespace feather {

/** Print @p msg to stderr and exit(1). Use for user configuration errors. */
[[noreturn]] void fatal(const std::string &msg);

/** Print @p msg to stderr and abort(). Use for internal invariant bugs. */
[[noreturn]] void panic(const std::string &msg);

/** Print a non-fatal warning to stderr. */
void warn(const std::string &msg);

namespace detail {

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &v, const Rest &...rest)
{
    os << v;
    formatInto(os, rest...);
}

} // namespace detail

/** Concatenate a mixed argument list into a std::string via operator<<. */
template <typename... Args>
std::string
strCat(const Args &...args)
{
    std::ostringstream os;
    detail::formatInto(os, args...);
    return os.str();
}

} // namespace feather

/** Assert-with-message that stays active in release builds. */
#define FEATHER_CHECK(cond, ...)                                              \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::feather::panic(::feather::strCat(                               \
                "CHECK failed: ", #cond, " at ", __FILE__, ":", __LINE__,     \
                " ", __VA_ARGS__));                                           \
        }                                                                     \
    } while (0)
