#include "common/options.hpp"

#include "common/log.hpp"
#include "common/parse.hpp"

namespace feather {

std::string
OptionTable::invalidValue(const std::string &name, const std::string &text,
                          const std::string &expected)
{
    return strCat("invalid value for ", name, ": '", text, "' (expected ",
                  expected, ")");
}

OptionTable &
OptionTable::unknownSuffix(std::string suffix)
{
    unknown_suffix_ = std::move(suffix);
    return *this;
}

OptionTable &
OptionTable::flag(const std::string &name, const std::string &help,
                  bool *out)
{
    options_.push_back({name, "", help, [out](const std::string &) {
                            *out = true;
                            return std::string();
                        }});
    return *this;
}

OptionTable &
OptionTable::flagFn(const std::string &name, const std::string &help,
                    std::function<std::string()> fn)
{
    options_.push_back({name, "", help,
                        [fn = std::move(fn)](const std::string &) {
                            return fn();
                        }});
    return *this;
}

OptionTable &
OptionTable::str(const std::string &name, const std::string &value_name,
                 const std::string &help, std::string *out)
{
    options_.push_back({name, value_name, help,
                        [out](const std::string &value) {
                            *out = value;
                            return std::string();
                        }});
    return *this;
}

OptionTable &
OptionTable::positive(const std::string &name,
                      const std::string &value_name,
                      const std::string &help, uint64_t *out, uint64_t max)
{
    options_.push_back(
        {name, value_name, help, [name, out, max](const std::string &v) {
             if (!parsePositive(v, out, max)) {
                 const std::string what =
                     max == UINT64_MAX
                         ? "a positive integer"
                         : strCat("a positive integer <= ", max);
                 return invalidValue(name, v, what);
             }
             return std::string();
         }});
    return *this;
}

OptionTable &
OptionTable::positiveInt(const std::string &name,
                         const std::string &value_name,
                         const std::string &help, int *out, uint64_t max)
{
    options_.push_back(
        {name, value_name, help, [name, out, max](const std::string &v) {
             uint64_t n = 0;
             if (!parsePositive(v, &n, max)) {
                 return invalidValue(
                     name, v, strCat("a positive integer <= ", max));
             }
             *out = int(n);
             return std::string();
         }});
    return *this;
}

OptionTable &
OptionTable::nonNegative(const std::string &name,
                         const std::string &value_name,
                         const std::string &help, uint64_t *out)
{
    options_.push_back(
        {name, value_name, help, [name, out](const std::string &v) {
             if (!parseUint(v, out)) {
                 return invalidValue(name, v, "a non-negative integer");
             }
             return std::string();
         }});
    return *this;
}

OptionTable &
OptionTable::ranged(const std::string &name, const std::string &value_name,
                    const std::string &help, uint64_t *out, uint64_t max)
{
    options_.push_back(
        {name, value_name, help, [name, out, max](const std::string &v) {
             uint64_t n = 0;
             if (!parseUint(v, &n) || n > max) {
                 return invalidValue(name, v,
                                     strCat("an integer in 0..", max));
             }
             *out = n;
             return std::string();
         }});
    return *this;
}

OptionTable &
OptionTable::rangedInt(const std::string &name,
                       const std::string &value_name,
                       const std::string &help, int *out, uint64_t max)
{
    options_.push_back(
        {name, value_name, help, [name, out, max](const std::string &v) {
             uint64_t n = 0;
             if (!parseUint(v, &n) || n > max) {
                 return invalidValue(name, v,
                                     strCat("an integer in 0..", max));
             }
             *out = int(n);
             return std::string();
         }});
    return *this;
}

OptionTable &
OptionTable::custom(const std::string &name, const std::string &value_name,
                    const std::string &help, ApplyFn fn)
{
    options_.push_back({name, value_name, help, std::move(fn)});
    return *this;
}

bool
OptionTable::parse(const std::vector<std::string> &args,
                   std::string *error) const
{
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i] == "-h" ? std::string("--help")
                                                 : args[i];
        const Option *opt = nullptr;
        for (const Option &o : options_) {
            if (o.name == arg) {
                opt = &o;
                break;
            }
        }
        if (!opt) {
            *error = strCat("unknown flag '", args[i], "'",
                            unknown_suffix_);
            return false;
        }
        std::string value;
        if (!opt->value_name.empty()) {
            if (i + 1 >= args.size()) {
                *error = strCat(arg, " needs a value");
                return false;
            }
            value = args[++i];
        }
        const std::string err = opt->apply(value);
        if (!err.empty()) {
            *error = err;
            return false;
        }
    }
    return true;
}

std::string
OptionTable::helpText() const
{
    // "  --flag VALUE" padded to column 24, help continuation lines
    // indented to match (the layout the hand-written usage texts used).
    constexpr size_t kHelpCol = 24;
    std::string out;
    for (const Option &o : options_) {
        std::string head = "  " + o.name;
        if (!o.value_name.empty()) head += " " + o.value_name;
        std::string line = head;
        if (line.size() + 2 <= kHelpCol) {
            line.append(kHelpCol - line.size(), ' ');
        } else {
            line += "\n" + std::string(kHelpCol, ' ');
        }
        std::string help = o.help;
        size_t eol;
        while ((eol = help.find('\n')) != std::string::npos) {
            line += help.substr(0, eol + 1) + std::string(kHelpCol, ' ');
            help.erase(0, eol + 1);
        }
        out += line + help + "\n";
    }
    return out;
}

} // namespace feather
