#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace feather {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty()) return 0.0;
    double s = 0.0;
    for (double x : xs) s += x;
    return s / double(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty()) return 0.0;
    double log_sum = 0.0;
    for (double x : xs) log_sum += std::log(x);
    return std::exp(log_sum / double(xs.size()));
}

double
sum(const std::vector<double> &xs)
{
    double s = 0.0;
    for (double x : xs) s += x;
    return s;
}

double
maxOf(const std::vector<double> &xs)
{
    if (xs.empty()) return 0.0;
    return *std::max_element(xs.begin(), xs.end());
}

double
minOf(const std::vector<double> &xs)
{
    if (xs.empty()) return 0.0;
    return *std::min_element(xs.begin(), xs.end());
}

} // namespace feather
