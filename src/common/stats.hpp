#pragma once

/**
 * @file
 * Tiny statistics helpers used by the benchmark harnesses (geometric means
 * over per-layer speedups, as done throughout the paper's evaluation) and by
 * the cost model (running averages of per-cycle slowdowns).
 */

#include <cstddef>
#include <vector>

namespace feather {

/** Arithmetic mean of @p xs; 0 for an empty vector. */
double mean(const std::vector<double> &xs);

/** Geometric mean of @p xs (all entries must be > 0); 0 for empty. */
double geomean(const std::vector<double> &xs);

/** Sum of @p xs. */
double sum(const std::vector<double> &xs);

/** Maximum of @p xs; 0 for empty. */
double maxOf(const std::vector<double> &xs);

/** Minimum of @p xs; 0 for empty. */
double minOf(const std::vector<double> &xs);

/** Running accumulator for mean / min / max without storing samples. */
class RunningStat
{
  public:
    void
    add(double x)
    {
        if (n_ == 0 || x < min_) min_ = x;
        if (n_ == 0 || x > max_) max_ = x;
        sum_ += x;
        ++n_;
    }

    size_t count() const { return n_; }
    double total() const { return sum_; }
    double mean() const { return n_ ? sum_ / double(n_) : 0.0; }
    double min() const { return min_; }
    double max() const { return max_; }

  private:
    size_t n_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace feather
