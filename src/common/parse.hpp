#pragma once

/**
 * @file
 * Tiny shared text-parsing helpers for the CLI surfaces (sim flag parser,
 * serve batch flags, serve batch files), so overflow policy lives in one
 * place.
 */

#include <cstdint>
#include <string>

namespace feather {

/** Parse a non-negative decimal integer; false on empty input, any
 *  non-digit character, or uint64 overflow. */
inline bool
parseUint(const std::string &text, uint64_t *out)
{
    if (text.empty()) return false;
    uint64_t v = 0;
    for (char c : text) {
        if (c < '0' || c > '9') return false;
        const uint64_t digit = uint64_t(c - '0');
        if (v > (UINT64_MAX - digit) / 10) return false; // would wrap
        v = v * 10 + digit;
    }
    *out = v;
    return true;
}

/**
 * Parse a strictly positive decimal integer bounded by @p max (inclusive);
 * false on empty input, non-digits, zero, overflow, or values above
 * @p max. The CLI flag validators (--jobs, --seed, --qps, --requests)
 * share this so "reject non-numeric and <= 0" means the same everywhere.
 */
inline bool
parsePositive(const std::string &text, uint64_t *out,
              uint64_t max = UINT64_MAX)
{
    uint64_t v = 0;
    if (!parseUint(text, &v) || v == 0 || v > max) return false;
    *out = v;
    return true;
}

} // namespace feather
