#pragma once

/**
 * @file
 * Minimal strict parser for flat JSON objects — the request wire format
 * of the serving daemon (one object per line, scalar values only).
 *
 * This is deliberately not a general JSON library: daemon requests are
 * flat by design so that every field is a CLI-style key/value pair, and
 * rejecting nested containers keeps malformed input errors short and
 * actionable. Keys keep their input order (useful for error reporting
 * and deterministic iteration); duplicate keys are an error.
 */

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace feather {

/** One scalar JSON value, with the raw text preserved for numbers. */
struct JsonScalar
{
    enum class Kind
    {
        String,
        Number,
        Bool,
        Null,
    };

    Kind kind = Kind::Null;
    std::string text; ///< string contents (unescaped) or raw number text
    bool boolean = false;

    /** Number -> uint64; false unless kind==Number and it fits. */
    bool asUint(uint64_t *out) const;
    /** Number -> int64 (optional leading '-'); false otherwise. */
    bool asInt(int64_t *out) const;
};

/** A parsed flat JSON object: ordered (key, scalar) pairs. */
class JsonObject
{
  public:
    /**
     * Parse @p text as a single flat JSON object. Returns false and sets
     * @p error (never empty on failure) for: non-object input, nested
     * objects/arrays, trailing garbage, bad escapes, duplicate keys, or
     * any other syntax error.
     */
    static bool parse(const std::string &text, JsonObject *out,
                      std::string *error);

    const std::vector<std::pair<std::string, JsonScalar>> &entries() const
    {
        return entries_;
    }

    /** Value for @p key, or nullptr when absent. */
    const JsonScalar *find(const std::string &key) const;

  private:
    std::vector<std::pair<std::string, JsonScalar>> entries_;
};

} // namespace feather
