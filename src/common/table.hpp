#pragma once

/**
 * @file
 * Console table / CSV emitter used by every benchmark binary so the harness
 * prints the same row/series structure the paper's figures and tables report.
 */

#include <string>
#include <vector>

namespace feather {

/** A simple column-aligned text table that can also be dumped as CSV. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns for console output. */
    std::string toString() const;

    /** Render as CSV (no quoting; cells must not contain commas). */
    std::string toCsv() const;

    size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p precision decimal digits. */
std::string fmtDouble(double v, int precision = 2);

/** Format a ratio like "2.65x". */
std::string fmtRatio(double v, int precision = 2);

/** Format a fraction as a percentage like "98.3%". */
std::string fmtPercent(double v, int precision = 1);

/** Minimal JSON string escaping (quotes, backslashes, control chars) for
 *  the hand-rolled single-line JSON reports. */
std::string jsonEscape(const std::string &s);

/** Replace ','/'\n' with ';' so a cell survives Table::toCsv (which does
 *  no quoting). */
std::string csvSafe(std::string s);

} // namespace feather
