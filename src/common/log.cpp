#include "common/log.hpp"

#include <cstdio>

namespace feather {

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

} // namespace feather
