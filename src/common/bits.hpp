#pragma once

/**
 * @file
 * Small bit-manipulation helpers used across the BIRRD topology (Alg. 1 of
 * the paper), buffer address maps, and dataflow factorization.
 */

#include <cassert>
#include <cstdint>

namespace feather {

/** @return true iff @p v is a power of two (0 is not). */
constexpr bool
isPow2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Integer log2 of a power of two. */
constexpr uint32_t
log2Exact(uint64_t v)
{
    assert(isPow2(v));
    uint32_t r = 0;
    while (v > 1) {
        v >>= 1;
        ++r;
    }
    return r;
}

/** Ceiling of log2 for any positive value. */
constexpr uint32_t
log2Ceil(uint64_t v)
{
    assert(v > 0);
    uint32_t r = 0;
    uint64_t p = 1;
    while (p < v) {
        p <<= 1;
        ++r;
    }
    return r;
}

/** Smallest power of two >= @p v. */
constexpr uint64_t
nextPow2(uint64_t v)
{
    return uint64_t{1} << log2Ceil(v == 0 ? 1 : v);
}

/**
 * Largest power of two <= @p budget, clipped to the next power of two
 * covering @p extent (no point unrolling a spatial dim past its extent).
 * The sizing rule shared by NestMapping::canonical and the sim driver's
 * mapping builders.
 */
constexpr int64_t
fitPow2(int64_t extent, int64_t budget)
{
    int64_t p = 1;
    while (p * 2 <= budget && p < extent) p *= 2;
    return p;
}

/** Ceiling division for non-negative integers. */
template <typename T>
constexpr T
ceilDiv(T a, T b)
{
    assert(b > 0);
    return (a + b - 1) / b;
}

/** Round @p a up to the next multiple of @p b. */
template <typename T>
constexpr T
roundUp(T a, T b)
{
    return ceilDiv(a, b) * b;
}

/**
 * Reverse the low @p bit_range bits of @p data, keeping higher bits intact.
 *
 * This is the `reverse_bits` helper of Algorithm 1 in the paper, which
 * defines the inter-stage connectivity of BIRRD: stage i's output port j
 * feeds stage (i+1)'s input port reverseBits(j, r) where r depends on the
 * stage index.
 */
constexpr uint32_t
reverseBits(uint32_t data, uint32_t bit_range)
{
    const uint32_t mask = (1u << bit_range) - 1;
    uint32_t reversed = 0;
    for (uint32_t i = 0; i < bit_range; ++i) {
        if (data & (1u << i)) {
            reversed |= 1u << (bit_range - 1 - i);
        }
    }
    return (data & ~mask) | reversed;
}

} // namespace feather
