#pragma once

/**
 * @file
 * Batch-mode front-end of `feather_cli`, factored into the serve library so
 * it is unit-testable without spawning the binary.
 *
 *   feather_cli --sweep quickstart_conv --jobs 8 --report-csv sweep.csv
 *   feather_cli --batch jobs.txt --jobs 4 --report-json report.json
 *
 * Invocations without a batch flag fall through to sim::cliMain, so the
 * single-scenario interface (`--workload ...`) is unchanged.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine_mode.hpp"

namespace feather {
namespace serve {

/** Parsed batch-mode options. */
struct BatchCliOptions
{
    std::string batch_file;  ///< --batch FILE (one job per line)
    std::string sweep;       ///< --sweep SCENARIO (grid sweep)
    int jobs = 1;            ///< --jobs N (worker threads)
    uint64_t seed = 2024;    ///< --seed N (base seed for job streams)
    /** --engine cycle|analytic: default tier for jobs that do not pin one. */
    sim::EngineMode engine = sim::EngineMode::Cycle;
    std::string report_csv;  ///< --report-csv PATH
    std::string report_json; ///< --report-json PATH
    bool help = false;
};

/** Result of parsing an argv tail; ok() iff error is empty. */
struct BatchCliParse
{
    BatchCliOptions opts;
    std::string error;

    bool ok() const { return error.empty(); }
};

/** True when @p args selects batch mode (--batch/--sweep/--jobs/--report-*). */
bool isBatchInvocation(const std::vector<std::string> &args);

/** Parse the arguments after argv[0] (batch mode only). */
BatchCliParse parseBatchCli(const std::vector<std::string> &args);

/**
 * Run batch mode under @p opts: expand the sweep or parse the batch file,
 * execute on the engine, print the summary table, and write the requested
 * report files. Returns 0 when every job verified bit-exactly, 1 on any
 * job failure, 2 on a usage/IO error.
 */
int batchMain(const BatchCliOptions &opts);

/**
 * Full `feather_cli` entry point: batch invocations run batchMain, anything
 * else is delegated to sim::cliMain.
 */
int cliMain(int argc, const char *const *argv);

} // namespace serve
} // namespace feather
