#pragma once

/**
 * @file
 * Thread-safe memoization of per-(layer, dataflow, AW, AH) planning
 * artifacts (sim::LayerPlan: the NEST mapping plus the concordant in/out
 * layouts it induces).
 *
 * A batch sweep re-plans the same points over and over — every job of a
 * (dataflow x layout x array) grid over one scenario shares its layer
 * plans with the grid points that differ only in layout or seed. The cache
 * keys on the layer *shape*, not its name, so two scenarios containing the
 * same conv share an entry too. Failed plans (mapping does not fit) are
 * cached alongside successes so a sweep probing infeasible corners stays
 * cheap.
 */

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "sim/scenario.hpp"

namespace feather {
namespace serve {

/** Shared, thread-safe plan memo with hit/miss accounting. */
class PlanCache
{
  public:
    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        size_t entries = 0;

        uint64_t lookups() const { return hits + misses; }
    };

    /**
     * The memoized equivalent of sim::planLayer. On a miss the plan is
     * computed *while holding the cache lock*: planning is microseconds
     * against the milliseconds a job's cycle sim takes, and serializing it
     * makes the hit/miss counters deterministic (one miss per unique key,
     * regardless of how many worker threads race on it) — which keeps the
     * exported BatchReport bit-identical across --jobs settings.
     *
     * @p mode is part of the key: a plan cached by an analytic enumeration
     * pass is never served to a cycle-mode job (and vice versa), so each
     * tier's plans carry the right LayerPlan::engine tag.
     *
     * @p scope optionally partitions the key space (e.g. one scope per
     * simulated device of a fleet, so two devices never share warmth even
     * when their shapes coincide). "" is the shared global scope and
     * leaves keys exactly as before.
     */
    std::optional<sim::LayerPlan> getOrPlan(sim::EngineMode mode,
                                            sim::DataflowKind kind,
                                            const LayerSpec &layer, int aw,
                                            int ah,
                                            std::string *error = nullptr,
                                            const std::string &scope = {});

    /** This cache as a sim::PlanFn, for injection into sim::runScenario;
     *  every lookup the returned fn makes carries @p scope. */
    sim::PlanFn planFn(const std::string &scope = {});

    Stats stats() const;

    void clear();

    /** Cache key of one planning point (layer shape, not name). */
    static std::string key(sim::EngineMode mode, sim::DataflowKind kind,
                           const LayerSpec &layer, int aw, int ah,
                           const std::string &scope = {});

    /** Re-scope an existing base key (the shared "" scope) into @p scope;
     *  key(..., scope) == scopedKey(key(...), scope). */
    static std::string scopedKey(const std::string &base,
                                 const std::string &scope);

  private:
    struct Entry
    {
        std::optional<sim::LayerPlan> plan; ///< nullopt = cached failure
        std::string error;                  ///< why planning failed
    };

    mutable std::mutex mu_;
    std::unordered_map<std::string, Entry> map_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

} // namespace serve
} // namespace feather
