/**
 * @file
 * `feather_cli`: run one workload scenario — or a whole batch/sweep of them
 * on the multi-threaded serve engine — on the FEATHER cycle-level simulator.
 *
 *   $ ./feather_cli --list
 *   $ ./feather_cli --workload resnet_block --dataflow ws --layout concordant
 *   $ ./feather_cli --sweep quickstart_conv --jobs 8 --report-csv sweep.csv
 *   $ ./feather_cli --batch jobs.txt --jobs 4
 */

#include "serve/batch_cli.hpp"

int
main(int argc, char **argv)
{
    return feather::serve::cliMain(argc, argv);
}
