/**
 * @file
 * `feather_cli`: run one workload scenario, a batch/sweep of them on the
 * multi-threaded serve engine, or a whole model graph through the
 * per-layer dataflow/layout scheduler.
 *
 *   $ ./feather_cli --list
 *   $ ./feather_cli --workload resnet_block --dataflow ws --layout concordant
 *   $ ./feather_cli --sweep quickstart_conv --jobs 8 --report-csv sweep.csv
 *   $ ./feather_cli --batch jobs.txt --jobs 4
 *   $ ./feather_cli --model resnet_block --schedule per-layer
 *   $ ./feather_cli --list-models
 */

#include <string>
#include <vector>

#include "model/model_cli.hpp"
#include "serve/batch_cli.hpp"

int
main(int argc, char **argv)
{
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
    if (feather::model::isModelInvocation(args)) {
        return feather::model::cliMain(argc, argv);
    }
    return feather::serve::cliMain(argc, argv);
}
