#include "serve/plan_cache.hpp"

#include "common/log.hpp"

namespace feather {
namespace serve {

std::string
PlanCache::scopedKey(const std::string &base, const std::string &scope)
{
    return scope.empty() ? base : strCat(base, "|@", scope);
}

std::string
PlanCache::key(sim::EngineMode mode, sim::DataflowKind kind,
               const LayerSpec &layer, int aw, int ah,
               const std::string &scope)
{
    // Shape-only key: two layers with equal shapes plan identically, their
    // names notwithstanding. The engine mode is part of the key so the two
    // tiers never share entries.
    if (layer.type == OpType::Gemm) {
        return scopedKey(strCat("gemm|", layer.gemm.m, "x", layer.gemm.n,
                                "x", layer.gemm.k, "|", toString(kind), "|",
                                aw, "x", ah, "|", toString(mode)),
                         scope);
    }
    const ConvShape &c = layer.conv;
    return scopedKey(strCat(toString(layer.type), "|", c.n, ",", c.c, ",",
                            c.h, ",", c.w, ",", c.m, ",", c.r, ",", c.s,
                            ",s", c.stride, ",p", c.pad, "|", toString(kind),
                            "|", aw, "x", ah, "|", toString(mode)),
                     scope);
}

std::optional<sim::LayerPlan>
PlanCache::getOrPlan(sim::EngineMode mode, sim::DataflowKind kind,
                     const LayerSpec &layer, int aw, int ah,
                     std::string *error, const std::string &scope)
{
    const std::string k = key(mode, kind, layer, aw, ah, scope);
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(k);
    if (it == map_.end()) {
        ++misses_;
        Entry entry;
        entry.plan = sim::planLayer(kind, layer, aw, ah, &entry.error, mode);
        it = map_.emplace(k, std::move(entry)).first;
    } else {
        ++hits_;
    }
    if (!it->second.plan && error) *error = it->second.error;
    return it->second.plan;
}

sim::PlanFn
PlanCache::planFn(const std::string &scope)
{
    return [this, scope](sim::EngineMode mode, sim::DataflowKind kind,
                         const LayerSpec &layer, int aw, int ah,
                         std::string *error) {
        return getOrPlan(mode, kind, layer, aw, ah, error, scope);
    };
}

PlanCache::Stats
PlanCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    Stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.entries = map_.size();
    return s;
}

void
PlanCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    hits_ = 0;
    misses_ = 0;
}

} // namespace serve
} // namespace feather
