#include "serve/report.hpp"

#include <cstdio>

#include "common/log.hpp"
#include "common/table.hpp"

namespace feather {
namespace serve {

namespace {

/** Fixed-precision utilization: deterministic and locale-independent. */
std::string
fmtUtil(double v)
{
    return fmtDouble(v, 4);
}

const std::vector<std::string> &
columns()
{
    static const std::vector<std::string> cols = {
        "job",        "scenario", "dataflow",    "layout",
        "aw",         "ah",       "seed",        "status",
        "layers",     "cycles",   "macs",        "utilization",
        "rd_stalls",  "wr_stalls", "checked",    "mismatches",
        "engine_mode", "sim_wall_us", "arena_peak_bytes",
        "error"};
    return cols;
}

std::vector<std::string>
row(const JobResult &r)
{
    return {csvSafe(r.name),
            csvSafe(r.scenario),
            csvSafe(r.dataflow),
            csvSafe(r.layout),
            std::to_string(r.aw),
            std::to_string(r.ah),
            std::to_string(r.seed),
            r.status(),
            std::to_string(r.layers),
            std::to_string(r.cycles),
            std::to_string(r.macs),
            fmtUtil(r.utilization),
            std::to_string(r.read_stalls),
            std::to_string(r.write_stalls),
            std::to_string(r.checked),
            std::to_string(r.mismatches),
            sim::toString(r.engine),
            std::to_string(r.sim_wall_us),
            std::to_string(r.arena_peak_bytes),
            csvSafe(r.error)};
}

} // namespace

std::string
JobResult::status() const
{
    if (!ok) return "ERROR";
    if (engine == sim::EngineMode::Analytic) return "est";
    return bitExact() ? "ok" : "MISMATCH";
}

size_t
BatchReport::failures() const
{
    size_t n = 0;
    for (const JobResult &r : jobs) {
        // Analytic jobs carry estimates, not verified outputs: only an
        // ERROR counts against them.
        if (r.ok && r.engine == sim::EngineMode::Analytic) continue;
        if (!r.bitExact()) ++n;
    }
    return n;
}

int64_t
BatchReport::totalCycles() const
{
    int64_t total = 0;
    for (const JobResult &r : jobs) total += r.cycles;
    return total;
}

int64_t
BatchReport::totalMacs() const
{
    int64_t total = 0;
    for (const JobResult &r : jobs) total += r.macs;
    return total;
}

std::string
BatchReport::toCsv() const
{
    Table t(columns());
    for (const JobResult &r : jobs) t.addRow(row(r));
    return t.toCsv();
}

std::string
BatchReport::toJson() const
{
    std::string out = "{\"jobs\":[";
    for (size_t i = 0; i < jobs.size(); ++i) {
        const JobResult &r = jobs[i];
        if (i > 0) out += ",";
        out += strCat(
            "{\"job\":\"", jsonEscape(r.name), "\",\"scenario\":\"",
            jsonEscape(r.scenario), "\",\"dataflow\":\"",
            jsonEscape(r.dataflow), "\",\"layout\":\"", jsonEscape(r.layout),
            "\",\"aw\":", r.aw, ",\"ah\":", r.ah, ",\"seed\":", r.seed,
            ",\"status\":\"", r.status(), "\",\"layers\":", r.layers,
            ",\"cycles\":", r.cycles, ",\"macs\":", r.macs,
            ",\"utilization\":", fmtUtil(r.utilization),
            ",\"rd_stalls\":", r.read_stalls,
            ",\"wr_stalls\":", r.write_stalls, ",\"checked\":", r.checked,
            ",\"mismatches\":", r.mismatches, ",\"engine_mode\":\"",
            toString(r.engine), "\",\"sim_wall_us\":", r.sim_wall_us,
            ",\"arena_peak_bytes\":", r.arena_peak_bytes, ",\"error\":\"",
            jsonEscape(r.error), "\"}");
    }
    out += strCat(
        "],\"summary\":{\"jobs\":", jobs.size(),
        ",\"failures\":", failures(), ",\"bit_exact\":",
        allOk() ? "true" : "false", ",\"total_cycles\":", totalCycles(),
        ",\"total_macs\":", totalMacs(), ",\"base_seed\":", base_seed,
        ",\"plan_cache\":{\"hits\":", cache.hits, ",\"misses\":",
        cache.misses, ",\"entries\":", cache.entries, "}}}");
    return out;
}

std::string
BatchReport::summaryTable() const
{
    Table t({"job", "array", "status", "layers", "cycles", "util",
             "rd stalls", "wr stalls"});
    for (const JobResult &r : jobs) {
        t.addRow({r.name, strCat(r.aw, "x", r.ah), r.status(),
                  std::to_string(r.layers), std::to_string(r.cycles),
                  fmtPercent(r.utilization),
                  std::to_string(r.read_stalls),
                  std::to_string(r.write_stalls)});
    }
    std::string out = t.toString();
    out += strCat(jobs.size(), " job(s), ", failures(),
                  " failure(s); total cycles ", totalCycles(),
                  "; plan cache: ", cache.hits, " hit(s), ", cache.misses,
                  " miss(es), ", cache.entries, " entr(y/ies)\n");
    return out;
}

} // namespace serve
} // namespace feather
