#include "serve/job.hpp"

#include <algorithm>
#include <sstream>

#include "common/bits.hpp"
#include "common/log.hpp"
#include "common/parse.hpp"

namespace feather {
namespace serve {

const sim::Scenario *
resolveScenario(const JobSpec &spec, std::string *error)
{
    if (spec.inline_scenario) return &*spec.inline_scenario;
    const sim::Scenario *s = sim::findScenario(spec.scenario);
    if (!s && error) {
        // List the registry so a typo'd sweep/batch line is actionable
        // instead of a bare "unknown scenario".
        *error = "unknown scenario '" + spec.scenario + "'; known:";
        for (const std::string &name : sim::scenarioNames()) {
            *error += " " + name;
        }
    }
    return s;
}

std::string
displayName(const JobSpec &spec)
{
    if (!spec.name.empty()) return spec.name;
    const std::string scenario =
        spec.inline_scenario ? spec.inline_scenario->name : spec.scenario;
    std::string name = strCat(
        scenario, "/",
        spec.opts.dataflow.empty() ? std::string("auto") : spec.opts.dataflow);
    const sim::Scenario *s = resolveScenario(spec, nullptr);
    const int aw =
        spec.opts.aw > 0 ? spec.opts.aw : (s ? s->default_aw : 0);
    const int ah =
        spec.opts.ah > 0 ? spec.opts.ah : (s ? s->default_ah : 0);
    name += strCat("@", aw, "x", ah);
    if (!spec.opts.layout.empty() && spec.opts.layout != "concordant") {
        name += "+" + spec.opts.layout;
    }
    if (!spec.opts.out_layout.empty() &&
        spec.opts.out_layout != "concordant") {
        name += ">" + spec.opts.out_layout;
    }
    return name;
}

std::optional<std::vector<JobSpec>>
expandSweep(const SweepSpec &sweep, PlanCache &cache,
            std::vector<std::string> *skipped, std::string *error)
{
    JobSpec probe;
    probe.scenario = sweep.scenario;
    probe.inline_scenario = sweep.inline_scenario;
    const sim::Scenario *scenario = resolveScenario(probe, error);
    if (!scenario) return std::nullopt;

    std::vector<std::string> dataflows = sweep.dataflows;
    if (dataflows.empty()) dataflows = {"", "ws", "cp", "wp"};
    // Validate dataflow names up front: a typo must error out even when
    // every grid point is skipped for its array shape. "" keeps the
    // scenario's per-layer families (no parsed override).
    std::vector<std::optional<sim::DataflowKind>> overrides;
    for (const std::string &dataflow : dataflows) {
        std::optional<sim::DataflowKind> kind;
        if (!dataflow.empty()) {
            kind = sim::parseDataflow(dataflow);
            if (!kind) {
                if (error) *error = "unknown dataflow '" + dataflow + "'";
                return std::nullopt;
            }
        }
        overrides.push_back(kind);
    }

    std::vector<std::pair<int, int>> arrays = sweep.arrays;
    if (arrays.empty()) {
        arrays = {{scenario->default_aw, scenario->default_ah},
                  {4, 4},
                  {8, 8},
                  {16, 16}};
    }
    // Drop duplicate grid points (e.g. the scenario default repeating a
    // standard size) while preserving order.
    std::vector<std::pair<int, int>> unique_arrays;
    for (const auto &a : arrays) {
        if (std::find(unique_arrays.begin(), unique_arrays.end(), a) ==
            unique_arrays.end()) {
            unique_arrays.push_back(a);
        }
    }

    std::vector<std::string> layouts = sweep.layouts;
    if (layouts.empty()) layouts = {"concordant"};

    // Pre-plan every (dataflow, array) point through the shared cache;
    // points that cannot map are filtered here so every emitted job can
    // run (and the run itself then hits the warmed cache).
    std::vector<JobSpec> jobs;
    for (const auto &array : unique_arrays) {
        // BIRRD is a power-of-two butterfly: grid points with an invalid
        // array shape are skipped like unmappable ones, not run into the
        // runScenario error path job by job.
        if (array.first < 2 || !isPow2(uint64_t(array.first)) ||
            array.second < 1) {
            if (skipped) {
                skipped->push_back(
                    strCat(scenario->name, "@", array.first, "x",
                           array.second,
                           ": array width must be a power of two >= 2 and "
                           "height >= 1"));
            }
            continue;
        }
        for (size_t d = 0; d < dataflows.size(); ++d) {
            const std::string &dataflow = dataflows[d];
            std::string why;
            bool fits = true;
            for (const sim::ScenarioLayer &sl : scenario->layers) {
                const sim::DataflowKind kind =
                    overrides[d] ? *overrides[d] : sl.dataflow;
                if (!cache.getOrPlan(sweep.engine, kind, sl.layer,
                                     array.first, array.second, &why)) {
                    fits = false;
                    break;
                }
            }
            if (!fits) {
                if (skipped) {
                    skipped->push_back(strCat(
                        scenario->name, "/",
                        dataflow.empty() ? std::string("auto") : dataflow,
                        "@", array.first, "x", array.second, ": ", why));
                }
                continue;
            }
            for (const std::string &layout : layouts) {
                JobSpec job;
                job.scenario = sweep.scenario;
                job.inline_scenario = sweep.inline_scenario;
                job.opts.dataflow = dataflow;
                job.opts.layout = layout;
                job.opts.aw = array.first;
                job.opts.ah = array.second;
                jobs.push_back(std::move(job));
            }
        }
    }
    return jobs;
}

bool
parseBatchFile(const std::string &text, std::vector<JobSpec> *jobs,
               std::string *error)
{
    std::istringstream lines(text);
    std::string line;
    int line_no = 0;
    const auto fail = [&](const std::string &why) {
        if (error) *error = strCat("batch file line ", line_no, ": ", why);
        return false;
    };
    while (std::getline(lines, line)) {
        ++line_no;
        const size_t hash = line.find('#');
        if (hash != std::string::npos) line.erase(hash);
        std::istringstream tokens(line);
        std::string token;
        JobSpec job;
        bool first = true;
        while (tokens >> token) {
            if (first) {
                job.scenario = token;
                first = false;
                continue;
            }
            const size_t eq = token.find('=');
            if (eq == std::string::npos || eq == 0 ||
                eq + 1 >= token.size()) {
                return fail("expected key=value, got '" + token + "'");
            }
            const std::string key = token.substr(0, eq);
            const std::string value = token.substr(eq + 1);
            uint64_t n = 0;
            if (key == "dataflow") {
                job.opts.dataflow = value;
            } else if (key == "layout") {
                job.opts.layout = value;
            } else if (key == "out_layout") {
                job.opts.out_layout = value;
            } else if (key == "name") {
                job.name = value;
            } else if (key == "aw" || key == "ah") {
                if (!parseUint(value, &n) || n == 0 || n > 65536) {
                    return fail(key + " needs a positive integer <= 65536");
                }
                (key == "aw" ? job.opts.aw : job.opts.ah) = int(n);
            } else if (key == "seed") {
                if (!parseUint(value, &n)) {
                    return fail("seed needs a non-negative integer");
                }
                job.explicit_seed = n;
            } else if (key == "engine") {
                const std::optional<sim::EngineMode> mode =
                    sim::parseEngineMode(value);
                if (!mode) {
                    std::string valid;
                    for (const std::string &m : sim::engineModeNames()) {
                        valid += " " + m;
                    }
                    return fail("unknown engine '" + value + "'; known:" +
                                valid);
                }
                job.engine = *mode;
            } else {
                return fail("unknown key '" + key + "'");
            }
        }
        if (first) continue; // blank / comment-only line
        jobs->push_back(std::move(job));
    }
    if (jobs->empty()) {
        if (error) *error = "batch file defines no jobs";
        return false;
    }
    return true;
}

} // namespace serve
} // namespace feather
