#include "serve/engine.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

#include "common/rng.hpp"
#include "serve/thread_pool.hpp"

namespace feather {
namespace serve {

BatchEngine::BatchEngine(BatchOptions opts) : opts_(opts)
{
    if (opts_.num_threads < 1) opts_.num_threads = 1;
}

JobResult
BatchEngine::runOne(const JobSpec &spec, size_t index)
{
    JobResult result;
    result.name = displayName(spec);
    result.scenario =
        spec.inline_scenario ? spec.inline_scenario->name : spec.scenario;
    result.dataflow =
        spec.opts.dataflow.empty() ? std::string("auto") : spec.opts.dataflow;
    result.layout =
        spec.opts.layout.empty() ? std::string("concordant") : spec.opts.layout;

    std::string error;
    const sim::Scenario *scenario = resolveScenario(spec, &error);
    if (!scenario) {
        result.error = error;
        return result;
    }

    sim::ScenarioOptions opts = spec.opts;
    // The per-job input stream: derived from (base_seed, job_index) unless
    // the spec pins a seed, so a batch is bit-identical at any --jobs N.
    opts.seed = spec.explicit_seed
                    ? *spec.explicit_seed
                    : Rng::deriveStream(opts_.base_seed, index);
    opts.engine = spec.engine ? *spec.engine : opts_.engine;
    result.seed = opts.seed;
    result.engine = opts.engine;
    result.aw = opts.aw > 0 ? opts.aw : scenario->default_aw;
    result.ah = opts.ah > 0 ? opts.ah : scenario->default_ah;

    std::optional<sim::ScenarioRun> run;
    const auto start = std::chrono::steady_clock::now();
    try {
        run = sim::runScenario(*scenario, opts, &error, cache_.planFn());
    } catch (const std::exception &e) {
        result.error = e.what();
        return result;
    }
    result.sim_wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    if (!run) {
        result.error = error;
        return result;
    }

    result.ok = true;
    result.aw = run->aw;
    result.ah = run->ah;
    result.layers = run->chain.layers.size();
    for (const sim::RunResult &r : run->chain.layers) {
        result.cycles += r.stats.cycles;
        result.macs += r.stats.macs;
        result.read_stalls += r.stats.read_stall_cycles;
        result.write_stalls += r.stats.write_stall_cycles;
        result.arena_peak_bytes =
            std::max(result.arena_peak_bytes, r.stats.arena_peak_bytes);
    }
    result.checked = run->chain.checked;
    result.mismatches = run->chain.mismatches;
    const double denom = double(result.aw) * double(result.ah);
    result.utilization =
        result.cycles > 0 ? double(result.macs) /
                                (double(result.cycles) * denom)
                          : 0.0;
    return result;
}

BatchReport
BatchEngine::run(const std::vector<JobSpec> &jobs)
{
    BatchReport report;
    report.base_seed = opts_.base_seed;
    report.jobs.resize(jobs.size());
    {
        ThreadPool pool(opts_.num_threads);
        for (size_t i = 0; i < jobs.size(); ++i) {
            pool.submit([this, &jobs, &report, i] {
                report.jobs[i] = runOne(jobs[i], i);
            });
        }
        pool.wait();
    }
    report.cache = cache_.stats();
    return report;
}

std::optional<BatchReport>
BatchEngine::sweep(const SweepSpec &sweep, std::vector<std::string> *skipped,
                   std::string *error)
{
    // Pre-plan under the engine's own tier so cache warming hits the same
    // keys the run will look up (the sweep's jobs inherit opts_.engine).
    SweepSpec spec = sweep;
    spec.engine = opts_.engine;
    const std::optional<std::vector<JobSpec>> jobs =
        expandSweep(spec, cache_, skipped, error);
    if (!jobs) return std::nullopt;
    return run(*jobs);
}

} // namespace serve
} // namespace feather
