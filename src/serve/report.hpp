#pragma once

/**
 * @file
 * Structured results of a batch run.
 *
 * A BatchReport aggregates one JobResult per submitted job, in submission
 * order, plus the plan-cache counters. It renders three ways: an aligned
 * console table, CSV (one row per job, for CI artifacts / spreadsheets),
 * and single-line JSON (for log scraping and downstream tooling). All
 * three are deterministic for a given job list and base seed — notably
 * independent of how many worker threads executed the batch — which the
 * test suite relies on.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "serve/plan_cache.hpp"

namespace feather {
namespace serve {

/** Outcome of one job. */
struct JobResult
{
    std::string name;     ///< display name (JobSpec name or derived)
    std::string scenario; ///< scenario name
    std::string dataflow; ///< override, or "auto" (per-layer families)
    std::string layout;   ///< first-layer iAct layout override
    int aw = 0;
    int ah = 0;
    uint64_t seed = 0; ///< the seed the job actually ran with
    /** Engine tier the job ran under (JobSpec pin or BatchOptions). */
    sim::EngineMode engine = sim::EngineMode::Cycle;
    bool ok = false;   ///< the run completed (regardless of verification)
    std::string error; ///< why the run failed (when !ok)

    // Aggregated over the scenario's layers (when ok).
    size_t layers = 0;
    int64_t cycles = 0;
    int64_t macs = 0;
    int64_t read_stalls = 0;
    int64_t write_stalls = 0;
    int64_t checked = 0;
    int64_t mismatches = 0;
    double utilization = 0.0; ///< macs / (cycles * AW * AH)
    /** Wall time of the scenario run in microseconds. The one
     *  non-deterministic report field; determinism checks zero it. */
    int64_t sim_wall_us = 0;
    /** Peak arena scratch over the job's layers (0 in analytic mode). */
    int64_t arena_peak_bytes = 0;

    bool bitExact() const { return ok && checked > 0 && mismatches == 0; }

    /** "ok" (verified), "est" (analytic estimate, nothing to verify),
     *  "MISMATCH" (ran, diffs) or "ERROR" (did not run). */
    std::string status() const;
};

/** Everything a batch run produced. */
struct BatchReport
{
    std::vector<JobResult> jobs; ///< submission order
    PlanCache::Stats cache;
    uint64_t base_seed = 0;

    /** Jobs that errored or failed verification. Analytic jobs have
     *  nothing to verify: they fail only by erroring. */
    size_t failures() const;

    /** True when every job ran and (cycle jobs) verified bit-exactly. */
    bool allOk() const { return failures() == 0 && !jobs.empty(); }

    int64_t totalCycles() const;
    int64_t totalMacs() const;

    /** One CSV row per job (header included). */
    std::string toCsv() const;

    /** The whole report as one line of JSON. */
    std::string toJson() const;

    /** Aligned console table plus a summary line. */
    std::string summaryTable() const;
};

} // namespace serve
} // namespace feather
