#include "serve/thread_pool.hpp"

#include <algorithm>

namespace feather {
namespace serve {

ThreadPool::ThreadPool(int num_threads)
{
    const int n = std::max(1, num_threads);
    workers_.reserve(size_t(n));
    for (int i = 0; i < n; ++i) {
        workers_.emplace_back([this] { workerLoop(); });
    }
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread &w : workers_) w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push(std::move(task));
        ++inflight_;
    }
    work_cv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return inflight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty()) return; // stop_ and drained
            task = std::move(queue_.front());
            queue_.pop();
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mu_);
            --inflight_;
            if (inflight_ == 0) idle_cv_.notify_all();
        }
    }
}

} // namespace serve
} // namespace feather
