#include "serve/batch_cli.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/io.hpp"
#include "common/options.hpp"
#include "common/parse.hpp"
#include "serve/engine.hpp"
#include "sim/cli.hpp"

namespace feather {
namespace serve {

bool
isBatchInvocation(const std::vector<std::string> &args)
{
    for (const std::string &arg : args) {
        if (arg == "--batch" || arg == "--sweep" || arg == "--jobs" ||
            arg == "--report-csv" || arg == "--report-json") {
            return true;
        }
    }
    return false;
}

BatchCliParse
parseBatchCli(const std::vector<std::string> &args)
{
    BatchCliParse parse;
    BatchCliOptions &o = parse.opts;
    OptionTable t;
    t.unknownSuffix(" in batch mode (--batch/--sweep runs accept --jobs, "
                    "--seed, --engine, --report-csv, --report-json)");
    t.str("--batch", "FILE", "run the jobs listed in FILE, one per line",
          &o.batch_file);
    t.str("--sweep", "NAME",
          "run the (dataflow x array-size) grid over a\nscenario",
          &o.sweep);
    t.positiveInt("--jobs", "N",
                  "worker threads (default 1); the report is\n"
                  "bit-identical for any N",
                  &o.jobs, 256);
    t.nonNegative("--seed", "N",
                  "base seed; job i draws inputs from stream\n(seed, i)",
                  &o.seed);
    t.custom("--engine", "MODE", "default tier for jobs that do not pin one",
             [&o](const std::string &v) {
                 const std::optional<sim::EngineMode> mode =
                     sim::parseEngineMode(v);
                 if (!mode) {
                     return OptionTable::invalidValue(
                         "--engine", v, "cycle or analytic");
                 }
                 o.engine = *mode;
                 return std::string();
             });
    t.str("--report-csv", "F", "write the per-job report as CSV to F",
          &o.report_csv);
    t.str("--report-json", "F", "write the report as single-line JSON to F",
          &o.report_json);
    t.flag("--help", "show this text", &o.help);
    if (!t.parse(args, &parse.error)) return parse;
    if (o.help) return parse;
    if (o.batch_file.empty() == o.sweep.empty()) {
        parse.error = o.batch_file.empty()
                          ? "batch mode needs --batch FILE or --sweep "
                            "SCENARIO"
                          : "--batch and --sweep are mutually exclusive";
    }
    return parse;
}

int
batchMain(const BatchCliOptions &opts)
{
    if (opts.help) {
        std::printf("%s", sim::usage().c_str());
        return 0;
    }

    BatchOptions engine_opts;
    engine_opts.num_threads = opts.jobs;
    engine_opts.base_seed = opts.seed;
    engine_opts.engine = opts.engine;
    BatchEngine engine(engine_opts);

    BatchReport report;
    if (!opts.sweep.empty()) {
        SweepSpec sweep;
        sweep.scenario = opts.sweep;
        std::vector<std::string> skipped;
        std::string error;
        const std::optional<BatchReport> r =
            engine.sweep(sweep, &skipped, &error);
        if (!r) {
            std::fprintf(stderr, "error: %s\n", error.c_str());
            return 2;
        }
        report = *r;
        for (const std::string &why : skipped) {
            std::printf("skipped %s\n", why.c_str());
        }
    } else {
        std::ifstream in(opts.batch_file, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "error: cannot read batch file '%s'\n",
                         opts.batch_file.c_str());
            return 2;
        }
        std::ostringstream text;
        text << in.rdbuf();
        std::vector<JobSpec> jobs;
        std::string error;
        if (!parseBatchFile(text.str(), &jobs, &error)) {
            std::fprintf(stderr, "error: %s\n", error.c_str());
            return 2;
        }
        report = engine.run(jobs);
    }

    std::printf("batch of %zu job(s) on %d worker thread(s), base seed "
                "%llu\n",
                report.jobs.size(), engine.options().num_threads,
                (unsigned long long)report.base_seed);
    std::printf("%s", report.summaryTable().c_str());

    if (!opts.report_csv.empty() &&
        !writeFile(opts.report_csv, report.toCsv())) {
        std::fprintf(stderr, "error: cannot write '%s'\n",
                     opts.report_csv.c_str());
        return 2;
    }
    if (!opts.report_json.empty() &&
        !writeFile(opts.report_json, report.toJson())) {
        std::fprintf(stderr, "error: cannot write '%s'\n",
                     opts.report_json.c_str());
        return 2;
    }
    return report.allOk() ? 0 : 1;
}

int
cliMain(int argc, const char *const *argv)
{
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
    if (!isBatchInvocation(args)) return sim::cliMain(argc, argv);

    const BatchCliParse parse = parseBatchCli(args);
    if (!parse.ok()) {
        std::fprintf(stderr, "error: %s\n\n%s", parse.error.c_str(),
                     sim::usage().c_str());
        return 2;
    }
    return batchMain(parse.opts);
}

} // namespace serve
} // namespace feather
