#pragma once

/**
 * @file
 * The batch simulation engine: executes a list of JobSpecs on a fixed-size
 * thread pool, sharing one PlanCache across jobs, and aggregates the
 * results into a BatchReport.
 *
 * Determinism contract: the report (CSV and JSON) is bit-identical for a
 * given (job list, base seed) regardless of num_threads. Three mechanisms
 * make that hold:
 *   - every job's inputs come from its own RNG stream,
 *     Rng::deriveStream(base_seed, job_index), never a shared generator;
 *   - results land in a pre-sized slot per job index, so completion order
 *     is irrelevant;
 *   - plan-cache misses are computed under the cache lock, so the hit/miss
 *     counters depend only on the lookup sequence, not thread timing.
 *
 * Failure isolation: a job that cannot plan or fails verification is
 * reported as ERROR/MISMATCH in its slot; the rest of the batch runs
 * unaffected.
 */

#include <optional>
#include <string>
#include <vector>

#include "serve/job.hpp"
#include "serve/plan_cache.hpp"
#include "serve/report.hpp"

namespace feather {
namespace serve {

/** Engine-wide knobs. */
struct BatchOptions
{
    int num_threads = 1;       ///< worker pool size (`--jobs N`)
    uint64_t base_seed = 2024; ///< stream base for per-job input seeds
    /** Default engine tier for jobs that do not pin one (`--engine`). */
    sim::EngineMode engine = sim::EngineMode::Cycle;
};

/** Multi-threaded batch runner with a shared plan cache. */
class BatchEngine
{
  public:
    explicit BatchEngine(BatchOptions opts = {});

    /** Run @p jobs; the report's rows are in job order. */
    BatchReport run(const std::vector<JobSpec> &jobs);

    /**
     * Expand @p sweep (filtering grid points that cannot map, reported via
     * @p skipped) and run the surviving jobs. nullopt with @p error set
     * when the swept scenario or a dataflow name is unknown.
     */
    std::optional<BatchReport>
    sweep(const SweepSpec &sweep, std::vector<std::string> *skipped = nullptr,
          std::string *error = nullptr);

    PlanCache &cache() { return cache_; }
    const BatchOptions &options() const { return opts_; }

  private:
    JobResult runOne(const JobSpec &spec, size_t index);

    BatchOptions opts_;
    PlanCache cache_;
};

} // namespace serve
} // namespace feather
