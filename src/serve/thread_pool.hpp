#pragma once

/**
 * @file
 * Fixed-size worker pool for the batch simulation engine.
 *
 * Deliberately minimal: submit() enqueues a task, wait() blocks until every
 * submitted task has finished. Determinism of a batch run never depends on
 * the pool — jobs write into pre-sized slots and draw from per-job RNG
 * streams — so the pool needs no ordering guarantees beyond "every task runs
 * exactly once".
 */

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace feather {
namespace serve {

/** Fixed-size thread pool; tasks may be submitted from any thread. */
class ThreadPool
{
  public:
    /** Spawns max(1, @p num_threads) workers. */
    explicit ThreadPool(int num_threads);

    /** Drains outstanding tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task for execution on some worker. */
    void submit(std::function<void()> task);

    /** Block until every task submitted so far has completed. */
    void wait();

    int numThreads() const { return int(workers_.size()); }

  private:
    void workerLoop();

    std::mutex mu_;
    std::condition_variable work_cv_; ///< workers: "a task is available"
    std::condition_variable idle_cv_; ///< wait(): "all tasks completed"
    std::queue<std::function<void()>> queue_;
    size_t inflight_ = 0; ///< queued + currently-running tasks
    bool stop_ = false;
    std::vector<std::thread> workers_;
};

} // namespace serve
} // namespace feather
