#pragma once

/**
 * @file
 * Batch job descriptions for the serve engine.
 *
 * A JobSpec names one scenario run: a registered scenario (or an inline,
 * programmatically-built one) plus ScenarioOptions overrides. Jobs come from
 * three sources:
 *   - a batch file (`feather_cli --batch jobs.txt`), one job per line:
 *       <scenario> [dataflow=ws|cp|wp] [layout=L] [out_layout=L]
 *                  [aw=N] [ah=N] [seed=N] [engine=cycle|analytic] [name=STR]
 *     ('#' starts a comment, blank lines are skipped);
 *   - a programmatic sweep (`--sweep <scenario>`): the (dataflow x layout x
 *     array-size) grid of SweepSpec, pre-filtered so only grid points whose
 *     mappings actually fit become jobs;
 *   - direct construction (see bench/fig10_gemm_flexibility.cpp).
 */

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "serve/plan_cache.hpp"
#include "sim/scenario.hpp"

namespace feather {
namespace serve {

/** One batch job: a scenario plus option overrides. */
struct JobSpec
{
    /** Display name; derived from the overrides when empty. */
    std::string name;
    /** Registered scenario name (ignored when inline_scenario is set). */
    std::string scenario;
    /** Inline scenario for programmatic jobs (bench/example sweeps). */
    std::optional<sim::Scenario> inline_scenario;
    /** Per-job overrides. The seed field is ignored: jobs draw from
     *  explicit_seed or the engine's (base_seed, job_index) stream. */
    sim::ScenarioOptions opts;
    /** Pin the input seed; unset derives Rng::deriveStream(base, index). */
    std::optional<uint64_t> explicit_seed;
    /** Pin the engine tier; unset inherits BatchOptions::engine. */
    std::optional<sim::EngineMode> engine;
};

/** Scenario a job refers to; nullptr with @p error set when unknown. */
const sim::Scenario *resolveScenario(const JobSpec &spec, std::string *error);

/** The display name of @p spec (spec.name, or derived from overrides). */
std::string displayName(const JobSpec &spec);

/** A (dataflow x layout x array-size) grid over one scenario. */
struct SweepSpec
{
    std::string scenario; ///< registered name (or set inline_scenario)
    std::optional<sim::Scenario> inline_scenario;
    /** Dataflow overrides; "" = the scenario's per-layer families.
     *  Empty vector = {"", "ws", "cp", "wp"}. */
    std::vector<std::string> dataflows;
    /** (AW, AH) grid; empty = scenario default + {4x4, 8x8, 16x16}. */
    std::vector<std::pair<int, int>> arrays;
    /** First-layer iAct layouts; empty = {"concordant"}. */
    std::vector<std::string> layouts;
    /** Engine tier the sweep's jobs will run under (pre-planning warms the
     *  cache for this tier's keys). */
    sim::EngineMode engine = sim::EngineMode::Cycle;
};

/**
 * Expand @p sweep into runnable jobs. Every grid point is pre-planned
 * through @p cache (warming it for the run); points whose mapping does not
 * fit are skipped, with one line per skip appended to @p skipped. Returns
 * nullopt with @p error set when the scenario itself is unknown.
 */
std::optional<std::vector<JobSpec>>
expandSweep(const SweepSpec &sweep, PlanCache &cache,
            std::vector<std::string> *skipped = nullptr,
            std::string *error = nullptr);

/**
 * Parse the batch-file format described above. Returns false with @p error
 * set (including the line number) on the first malformed line.
 */
bool parseBatchFile(const std::string &text, std::vector<JobSpec> *jobs,
                    std::string *error);

} // namespace serve
} // namespace feather
