#pragma once

/**
 * @file
 * NEST work assignment: how one layer's loop nest is spread over the
 * AW x AH PE array (paper §III-A, Fig. 9).
 *
 * - `cols`: dims unrolled across the AW columns. Reduction dims (C/R/S/K)
 *   among them define the BIRRD spatial reduction groups: columns that share
 *   all non-reduction col indices reduce into one output.
 * - `rows`: dims unrolled across the AH rows. Rows time-multiplex the
 *   column buses (one row emission per cycle). Reduction dims among them
 *   accumulate temporally in the Output Buffer.
 * - `local`: dims reduced *inside* each PE's Phase-1 local temporal
 *   reduction (the local register file holds one weight per local step;
 *   T1 = product of local extents).
 * - remaining extents are iterated by the controller's temporal loops, with
 *   reduction loops innermost so Output Buffer entries complete before any
 *   non-reduction coordinate advances.
 */

#include <string>
#include <vector>

#include "dataflow/mapping.hpp"
#include "workload/shapes.hpp"

namespace feather {

/** Full NEST mapping for one layer. */
struct NestMapping
{
    std::vector<ParallelDim> cols;
    std::vector<ParallelDim> rows;
    std::vector<ParallelDim> local;

    /** Phase-1 local reduction length (product of local extents). */
    int64_t t1() const { return totalDegree(local); }

    /** Column count used (product of col degrees). */
    int64_t colsUsed() const { return totalDegree(cols); }

    /** Row count used (product of row degrees). */
    int64_t rowsUsed() const { return totalDegree(rows); }

    /** All spatial dims (cols then rows), for utilization math. */
    std::vector<ParallelDim> spatial() const;

    /** Degree of @p d across cols/rows/local combined (1 if absent). */
    int64_t degreeOf(Dim d) const;

    std::string toString() const;

    /**
     * Check structural validity for an AW x AH array running @p layer:
     * degrees fit the array, every dim appears at most once, depthwise
     * layers do not parallelize M, GEMM layers use only M/N/K.
     * @return empty string if valid, else a description of the violation.
     */
    std::string validate(const LayerSpec &layer, int aw, int ah) const;

    /**
     * The canonical weight-stationary mapping of the Fig. 9 walkthrough,
     * adapted to the layer: local = {R,S} (conv) or a K-tile (GEMM),
     * cols = reduction x output dims filling AW, rows = output dims
     * filling AH.
     */
    static NestMapping canonical(const LayerSpec &layer, int aw, int ah);
};

} // namespace feather
