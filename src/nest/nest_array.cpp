#include "nest/nest_array.hpp"

#include "common/log.hpp"

namespace feather {

NestArray::NestArray(int aw, int ah, int max_local)
    : aw_(aw), ah_(ah), max_local_(max_local),
      regs_(2 * size_t(aw) * size_t(ah) * size_t(max_local), 0)
{
    FEATHER_CHECK(aw >= 1 && ah >= 1, "array dims must be positive");
    FEATHER_CHECK(max_local >= 1, "local register file must hold >= 1");
}

void
NestArray::loadWeight(int row, int col, int local_step, int16_t weight)
{
    FEATHER_CHECK(row >= 0 && row < ah_ && col >= 0 && col < aw_,
                  "PE (", row, ",", col, ") out of range");
    FEATHER_CHECK(local_step >= 0 && local_step < max_local_,
                  "local step ", local_step, " exceeds register file ",
                  max_local_);
    regs_[regIndex(1 - active_bank_, row, col, local_step)] = weight;
    ++weight_writes_;
}

void
NestArray::swapWeightBanks()
{
    active_bank_ = 1 - active_bank_;
}

int16_t
NestArray::weight(int row, int col, int local_step) const
{
    return regs_[regIndex(active_bank_, row, col, local_step)];
}

std::vector<PortValue>
NestArray::computeRowEmission(int row,
                              const std::vector<std::vector<int16_t>> &iacts,
                              const std::vector<bool> &active)
{
    FEATHER_CHECK(int(iacts.size()) == aw_, "iact column arity mismatch");
    FEATHER_CHECK(int(active.size()) == aw_, "active column arity mismatch");

    std::vector<PortValue> emission(static_cast<size_t>(aw_));
    for (int col = 0; col < aw_; ++col) {
        if (!active[size_t(col)]) continue;
        const auto &stream = iacts[size_t(col)];
        FEATHER_CHECK(int(stream.size()) <= max_local_,
                      "local stream exceeds register file");
        int64_t acc = 0;
        for (size_t l = 0; l < stream.size(); ++l) {
            acc += int64_t(stream[l]) *
                   int64_t(regs_[regIndex(active_bank_, row, col, int(l))]);
            ++macs_;
        }
        emission[size_t(col)] = acc;
    }
    return emission;
}

void
NestArray::computeRowEmission(int row, const int16_t *iacts, int64_t t1,
                              const uint8_t *active, PortValue *emission)
{
    FEATHER_CHECK(t1 <= max_local_, "local stream exceeds register file");
    for (int col = 0; col < aw_; ++col) {
        if (!active[col]) {
            emission[col] = std::nullopt;
            continue;
        }
        const int16_t *stream = iacts + int64_t(col) * t1;
        const int16_t *w = &regs_[regIndex(active_bank_, row, col, 0)];
        int64_t acc = 0;
        for (int64_t l = 0; l < t1; ++l) {
            acc += int64_t(stream[l]) * int64_t(w[l]);
        }
        macs_ += t1;
        emission[col] = acc;
    }
}

} // namespace feather
