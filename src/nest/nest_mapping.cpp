#include "nest/nest_mapping.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/log.hpp"

namespace feather {

std::vector<ParallelDim>
NestMapping::spatial() const
{
    std::vector<ParallelDim> all = cols;
    all.insert(all.end(), rows.begin(), rows.end());
    return all;
}

int64_t
NestMapping::degreeOf(Dim d) const
{
    int64_t degree = 1;
    for (const auto &pd : cols) {
        if (pd.dim == d) degree *= pd.degree;
    }
    for (const auto &pd : rows) {
        if (pd.dim == d) degree *= pd.degree;
    }
    for (const auto &pd : local) {
        if (pd.dim == d) degree *= pd.degree;
    }
    return degree;
}

std::string
NestMapping::toString() const
{
    auto dims = [](const std::vector<ParallelDim> &v) {
        std::string s;
        for (const auto &d : v) {
            s += strCat(dimName(d.dim), d.degree, " ");
        }
        return s;
    };
    return strCat("cols[", dims(cols), "] rows[", dims(rows), "] local[",
                  dims(local), "]");
}

std::string
NestMapping::validate(const LayerSpec &layer, int aw, int ah) const
{
    if (colsUsed() > aw) {
        return strCat("col degree ", colsUsed(), " exceeds AW=", aw);
    }
    if (rowsUsed() > ah) {
        return strCat("row degree ", rowsUsed(), " exceeds AH=", ah);
    }
    // A dim may be split across local/cols/rows (Fig. 9 splits M over both
    // columns and rows) but must appear at most once within each group.
    for (const auto &group : {cols, rows, local}) {
        std::vector<int> count(kNumDims, 0);
        for (const auto &pd : group) {
            if (pd.degree < 1) return "degree must be >= 1";
            if (++count[size_t(pd.dim)] > 1) {
                return strCat("dim ", dimName(pd.dim),
                              " repeated within one spatial group");
            }
        }
    }
    const bool is_gemm = layer.type == OpType::Gemm;
    for (const auto &group : {cols, rows, local}) {
        for (const auto &pd : group) {
            if (is_gemm) {
                if (pd.dim != Dim::M && pd.dim != Dim::N && pd.dim != Dim::K) {
                    return strCat("GEMM mapping uses dim ", dimName(pd.dim));
                }
            } else {
                if (pd.dim == Dim::K) {
                    return "conv mapping must not use K";
                }
                if (layer.conv.depthwise && pd.dim == Dim::M) {
                    return "depthwise conv has no independent M";
                }
            }
        }
    }
    return "";
}

NestMapping
NestMapping::canonical(const LayerSpec &layer, int aw, int ah)
{
    NestMapping m;
    const auto fit = fitPow2; // shared spatial-unroll sizing rule

    if (layer.type == OpType::Gemm) {
        const GemmShape &g = layer.gemm;
        // Local K-tile keeps Phase 1 at least AH long (full bus utilization).
        const int64_t kt = std::min<int64_t>(nextPow2(uint64_t(ah)),
                                             nextPow2(uint64_t(g.k)));
        m.local = {{Dim::K, kt}};
        // Columns: split between K (reduction groups) and N.
        const int64_t k_cols = std::min<int64_t>(
            fit(ceilDiv<int64_t>(g.k, kt), aw), int64_t(aw));
        m.cols = {{Dim::K, k_cols}};
        const int64_t n_cols = fit(g.n, aw / k_cols);
        if (n_cols > 1) m.cols.push_back({Dim::N, n_cols});
        m.rows = {{Dim::M, fit(g.m, ah)}};
        return m;
    }

    const ConvShape &c = layer.conv;
    m.local = {{Dim::R, c.r}, {Dim::S, c.s}};
    if (c.depthwise) {
        // Depthwise: no cross-channel reduction; parallelize C and Q.
        // Rows are capped at t1 so the shared output buses stay saturated
        // (each row needs the bus once per t1 cycles).
        const int64_t c_cols = fit(c.c, aw);
        m.cols = {{Dim::C, c_cols}};
        const int64_t q_cols = fit(c.outW(), aw / c_cols);
        if (q_cols > 1) m.cols.push_back({Dim::Q, q_cols});
        const int64_t row_cap = std::min<int64_t>(ah, nextPow2(m.t1()) ==
                                                          uint64_t(m.t1())
                                                      ? m.t1()
                                                      : nextPow2(m.t1()) / 2);
        m.rows = {{Dim::P, fit(c.outH(), std::max<int64_t>(row_cap, 1))}};
        return m;
    }
    // Standard conv (Fig. 9): C x M across columns, M across rows. For
    // small kernels (1x1 convs) Phase 1 would be shorter than the bus
    // multiplexing depth, so a local C-tile extends the temporal
    // reduction (its partial sums fold inside the PE, like K-tiles in
    // GEMM mode).
    int64_t local_c = 1;
    while (c.r * c.s * local_c < ah && local_c * 2 <= c.c) {
        local_c *= 2;
    }
    if (local_c > 1) m.local.push_back({Dim::C, local_c});
    const int64_t c_cols = fit(ceilDiv(c.c, local_c), aw);
    m.cols = {{Dim::C, c_cols}};
    const int64_t m_cols = fit(c.m, aw / c_cols);
    if (m_cols > 1) m.cols.push_back({Dim::M, m_cols});
    m.rows = {{Dim::M, fit(ceilDiv(c.m, m_cols), ah)}};
    return m;
}

} // namespace feather
