#pragma once

/**
 * @file
 * NEST: FEATHER's neural engine with Spatial forwarding and Temporal
 * reduction (paper §III-A, Fig. 8/9).
 *
 * The array is AW columns x AH rows of PEs. Each PE holds a slice of
 * weights in a ping-pong local register file (so the next tile's weights
 * load while the current tile computes, hiding the AH^2-cycle preload) and
 * accumulates Phase-1 local temporal reductions. In Phase 2, one row per
 * cycle drives the column-wise output buses, sending AW locally-reduced
 * partial sums into BIRRD while the other rows keep computing.
 *
 * This class models the *functional* datapath (exact int arithmetic per
 * emission). Cycle accounting lives in the FEATHER controller, which knows
 * the mapping, the buffers, and the stall sources.
 */

#include <cstdint>
#include <optional>
#include <vector>

#include "noc/birrd.hpp" // PortValue

namespace feather {

/** The 2D PE array with ping-pong weight register files. */
class NestArray
{
  public:
    /**
     * @param aw  columns (must match the BIRRD input count)
     * @param ah  rows
     * @param max_local capacity of each PE's local weight register file
     */
    NestArray(int aw, int ah, int max_local = 512);

    int aw() const { return aw_; }
    int ah() const { return ah_; }
    int maxLocal() const { return max_local_; }

    /**
     * Write one weight into the *shadow* register bank of PE (row, col).
     * Weights are stored post-zero-point-subtraction (9-bit range), as the
     * datapath multiplies 9b x 9b (Fig. 8).
     */
    void loadWeight(int row, int col, int local_step, int16_t weight);

    /** Swap ping/pong register banks (new tile becomes active). */
    void swapWeightBanks();

    /** Active-bank weight of PE (row, col) at @p local_step. */
    int16_t weight(int row, int col, int local_step) const;

    /**
     * Phase 1 + one Phase-2 emission for @p row.
     *
     * @param row    the emitting row
     * @param iacts  iacts[col][local_step], zero-point-subtracted; inactive
     *               (padded / out-of-range) taps must be 0
     * @param active active[col] = false leaves the column bus silent
     * @return AW partial sums (std::nullopt on silent columns)
     */
    std::vector<PortValue>
    computeRowEmission(int row, const std::vector<std::vector<int16_t>> &iacts,
                       const std::vector<bool> &active);

    /**
     * Flat-buffer emission for the controller's hot loop: @p iacts is an
     * AW x @p t1 row-major block (column c's stream at iacts[c * t1]),
     * @p active is AW bytes, and the AW partial sums are written into
     * @p emission (inactive columns get std::nullopt). Identical
     * arithmetic and MAC accounting to the vector overload.
     */
    void computeRowEmission(int row, const int16_t *iacts, int64_t t1,
                            const uint8_t *active, PortValue *emission);

    /** Cycles to preload a full array of weights (paper: AH^2). */
    int64_t weightLoadCycles() const { return int64_t(ah_) * ah_; }

    /** Total multiply-accumulates executed so far. */
    int64_t macsExecuted() const { return macs_; }

    /** Total weight-register writes so far (for energy accounting). */
    int64_t weightWrites() const { return weight_writes_; }

  private:
    size_t
    regIndex(int bank, int row, int col, int local_step) const
    {
        return ((size_t(bank) * size_t(ah_) + size_t(row)) * size_t(aw_) +
                size_t(col)) * size_t(max_local_) + size_t(local_step);
    }

    int aw_;
    int ah_;
    int max_local_;
    int active_bank_ = 0;
    std::vector<int16_t> regs_; ///< [2][ah][aw][max_local]
    int64_t macs_ = 0;
    int64_t weight_writes_ = 0;
};

} // namespace feather
