#include "sim/driver.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/log.hpp"
#include "feather/analytic.hpp"
#include "sim/engine.hpp"
#include "tensor/reference_ops.hpp"

namespace feather {
namespace sim {

namespace {

/** First cols dim with degree > 1 (the dim that actually spans banks). */
std::optional<Dim>
leadColDim(const NestMapping &mapping)
{
    for (const ParallelDim &pd : mapping.cols) {
        if (pd.degree > 1) return pd.dim;
    }
    return std::nullopt;
}

} // namespace

// ---------------------------------------------------------------------------
// Layer construction
// ---------------------------------------------------------------------------

LayerSpec
convLayer(std::string name, int64_t c, int64_t hw, int64_t m, int64_t rs,
          int64_t stride, int64_t pad)
{
    return convLayer2d(std::move(name), c, hw, hw, m, rs, rs, stride, pad);
}

LayerSpec
convLayer2d(std::string name, int64_t c, int64_t h, int64_t w, int64_t m,
            int64_t r, int64_t s, int64_t stride, int64_t pad)
{
    LayerSpec l;
    l.name = std::move(name);
    l.type = OpType::Conv;
    l.conv = ConvShape{1, c, h, w, m, r, s, stride, pad, false};
    return l;
}

LayerSpec
depthwiseLayer(std::string name, int64_t c, int64_t hw, int64_t rs,
               int64_t stride, int64_t pad)
{
    LayerSpec l;
    l.name = std::move(name);
    l.type = OpType::DepthwiseConv;
    l.conv = ConvShape{1, c, hw, hw, c, rs, rs, stride, pad, true};
    return l;
}

LayerSpec
gemmLayer(std::string name, int64_t m, int64_t n, int64_t k)
{
    LayerSpec l;
    l.name = std::move(name);
    l.type = OpType::Gemm;
    l.gemm = GemmShape{m, n, k};
    return l;
}

// ---------------------------------------------------------------------------
// Inputs and golden reference
// ---------------------------------------------------------------------------

Int8Tensor
randomIacts(const LayerSpec &layer, Rng &rng, int lo, int hi)
{
    Int8Tensor t = layer.type == OpType::Gemm
                       ? Int8Tensor({layer.gemm.m, layer.gemm.k})
                       : Int8Tensor({layer.conv.n, layer.conv.c, layer.conv.h,
                                     layer.conv.w});
    t.randomize(rng, lo, hi);
    return t;
}

Int8Tensor
randomWeights(const LayerSpec &layer, Rng &rng, int lo, int hi)
{
    Int8Tensor t;
    switch (layer.type) {
    case OpType::Gemm:
        t = Int8Tensor({layer.gemm.k, layer.gemm.n});
        break;
    case OpType::DepthwiseConv:
        t = Int8Tensor({layer.conv.c, 1, layer.conv.r, layer.conv.s});
        break;
    default:
        t = Int8Tensor({layer.conv.m, layer.conv.c, layer.conv.r,
                        layer.conv.s});
        break;
    }
    t.randomize(rng, lo, hi);
    return t;
}

Int8Tensor
referenceOutput(const LayerSpec &layer, const Int8Tensor &iacts,
                const Int8Tensor &weights, const LayerQuant &quant)
{
    Int32Tensor acc;
    switch (layer.type) {
    case OpType::Gemm:
        acc = gemm(iacts, weights, quant.iact_zp, quant.weight_zp);
        break;
    case OpType::DepthwiseConv:
        acc = depthwiseConv2d(iacts, weights, layer.conv.stride,
                              layer.conv.pad, quant.iact_zp, quant.weight_zp);
        break;
    case OpType::Conv:
        acc = conv2d(iacts, weights, layer.conv.stride, layer.conv.pad,
                     quant.iact_zp, quant.weight_zp);
        break;
    default:
        FEATHER_CHECK(false, "referenceOutput: ", toString(layer.type),
                      " is not a MAC operator");
    }
    return requantizeTensor(acc, quant.multiplier, quant.oact_zp);
}

int64_t
countMismatches(const Int8Tensor &got, const Int8Tensor &want)
{
    if (got.shape() != want.shape()) return want.numel();
    int64_t bad = 0;
    for (int64_t i = 0; i < want.numel(); ++i) {
        if (got[size_t(i)] != want[size_t(i)]) ++bad;
    }
    return bad;
}

// ---------------------------------------------------------------------------
// Dataflow selection
// ---------------------------------------------------------------------------

std::optional<DataflowKind>
parseDataflow(const std::string &name)
{
    if (name == "ws" || name == "canonical") return DataflowKind::Canonical;
    if (name == "cp" || name == "channel-parallel") {
        return DataflowKind::ChannelParallel;
    }
    if (name == "wp" || name == "window-parallel") {
        return DataflowKind::WindowParallel;
    }
    return std::nullopt;
}

std::string
toString(DataflowKind kind)
{
    switch (kind) {
    case DataflowKind::Canonical: return "canonical";
    case DataflowKind::ChannelParallel: return "channel-parallel";
    case DataflowKind::WindowParallel: return "window-parallel";
    }
    return "?";
}

std::optional<NestMapping>
buildMapping(DataflowKind kind, const LayerSpec &layer, int aw, int ah,
             std::string *error)
{
    NestMapping m;
    const ConvShape &c = layer.conv;
    // GEMM and depthwise have one natural mapping family each; the named
    // families below only diversify standard convolutions.
    if (kind == DataflowKind::Canonical || layer.type == OpType::Gemm ||
        layer.type == OpType::DepthwiseConv) {
        m = NestMapping::canonical(layer, aw, ah);
    } else if (kind == DataflowKind::ChannelParallel) {
        m.local = {{Dim::R, c.r}, {Dim::S, c.s}};
        m.cols = {{Dim::C, fitPow2(c.c, aw)}};
        m.rows = {{Dim::M, fitPow2(c.m, ah)}};
    } else { // WindowParallel
        // Columns sweep output windows; the reduction is purely temporal
        // (local R/S plus a C-tile that keeps Phase 1 at least AH long).
        m.local = {{Dim::R, c.r}, {Dim::S, c.s}};
        int64_t local_c = 1;
        while (c.r * c.s * local_c < ah && local_c * 2 <= c.c) local_c *= 2;
        if (local_c > 1) m.local.push_back({Dim::C, local_c});
        m.cols = {{Dim::Q, fitPow2(c.outW(), aw)}};
        m.rows = {{Dim::M, fitPow2(c.m, ah)}};
    }
    const std::string why = m.validate(layer, aw, ah);
    if (!why.empty()) {
        if (error) {
            *error = toString(kind) + " does not fit " + layer.name + ": " +
                     why;
        }
        return std::nullopt;
    }
    return m;
}

std::optional<Layout>
tryParseLayout(const std::string &text, std::string *error)
{
    const auto fail = [&](const std::string &why) -> std::optional<Layout> {
        if (error) *error = "layout '" + text + "': " + why;
        return std::nullopt;
    };
    // Valid dim letters come from the Dim enum itself so this pre-pass
    // cannot drift from what parseDim() accepts.
    std::string dims;
    for (int d = 0; d < kNumDims; ++d) dims += dimName(Dim(d));
    const size_t underscore = text.find('_');
    if (underscore == std::string::npos) {
        return fail("missing '_' separator");
    }
    for (size_t i = 0; i < underscore; ++i) {
        if (dims.find(text[i]) == std::string::npos) {
            return fail(std::string("unknown dimension '") + text[i] + "'");
        }
    }
    size_t i = underscore + 1;
    if (i >= text.size()) return fail("no intra factors");
    while (i < text.size()) {
        if (dims.find(text[i]) == std::string::npos) {
            return fail(std::string("unknown dimension '") + text[i] + "'");
        }
        ++i;
        if (i >= text.size() || !std::isdigit(uint8_t(text[i]))) {
            return fail("intra dim needs a size");
        }
        int64_t size = 0;
        while (i < text.size() && std::isdigit(uint8_t(text[i]))) {
            size = size * 10 + (text[i] - '0');
            ++i;
        }
        if (size < 1) return fail("intra size must be >= 1");
    }
    return Layout::parse(text);
}

Layout
concordantInputLayout(const LayerSpec &layer, const NestMapping &mapping,
                      int aw)
{
    if (layer.type == OpType::Gemm) {
        return Layout::parse(
            "MK_K" + std::to_string(std::min<int64_t>(aw, layer.gemm.k)));
    }
    const std::optional<Dim> lead = leadColDim(mapping);
    if (lead == Dim::Q || lead == Dim::P) {
        // Window-parallel columns read consecutive W positions: row-major.
        return Layout::parse(
            "CHW_W" + std::to_string(std::min<int64_t>(aw, layer.conv.w)));
    }
    // Channel-parallel columns (and the degenerate all-temporal case) read
    // consecutive channels: channel-last.
    return Layout::parse(
        "HWC_C" + std::to_string(std::min<int64_t>(aw, layer.conv.c)));
}

Layout
concordantOutputLayout(const LayerSpec &layer, const NestMapping &mapping,
                       int aw)
{
    if (layer.type == OpType::Gemm) {
        // The [M,N] oActs are the next GEMM's [M,K]: K-tiled lines.
        return Layout::parse(
            "MK_K" + std::to_string(std::min<int64_t>(aw, layer.gemm.n)));
    }
    const std::optional<Dim> lead = leadColDim(mapping);
    if (lead == Dim::Q || lead == Dim::P) {
        return Layout::parse(
            "CHW_W" +
            std::to_string(std::min<int64_t>(aw, layer.conv.outW())));
    }
    // The M output channels are the next layer's input channels.
    return Layout::parse(
        "HWC_C" + std::to_string(std::min<int64_t>(aw, layer.conv.m)));
}

std::optional<LayerPlan>
planLayer(DataflowKind kind, const LayerSpec &layer, int aw, int ah,
          std::string *error, EngineMode mode)
{
    const std::optional<NestMapping> mapping =
        buildMapping(kind, layer, aw, ah, error);
    if (!mapping) return std::nullopt;
    LayerPlan plan;
    plan.mapping = *mapping;
    plan.in_layout = concordantInputLayout(layer, *mapping, aw);
    plan.out_layout = concordantOutputLayout(layer, *mapping, aw);
    plan.engine = mode;
    return plan;
}

// ---------------------------------------------------------------------------
// Runs
// ---------------------------------------------------------------------------

namespace {

FeatherConfig
makeConfig(const RunOptions &opts)
{
    FeatherConfig cfg;
    cfg.aw = opts.aw;
    cfg.ah = opts.ah;
    if (opts.stab_depth > 0) cfg.stab_depth = opts.stab_depth;
    return cfg;
}

} // namespace

RunResult
runLayer(const LayerSpec &layer, const RunOptions &opts)
{
    return engineFor(opts.engine).runLayer(layer, opts);
}

ChainResult
runChain(const std::vector<ChainStep> &steps, const RunOptions &opts)
{
    return engineFor(opts.engine).runChain(steps, opts);
}

namespace detail {

RunResult
runLayerCycle(const LayerSpec &layer, const RunOptions &opts)
{
    RunResult res;
    res.mapping = opts.mapping
                      ? *opts.mapping
                      : NestMapping::canonical(layer, opts.aw, opts.ah);
    res.in_layout = opts.in_layout
                        ? *opts.in_layout
                        : concordantInputLayout(layer, res.mapping, opts.aw);
    res.out_layout = opts.out_layout
                         ? *opts.out_layout
                         : concordantOutputLayout(layer, res.mapping, opts.aw);

    Rng rng(opts.seed);
    const Int8Tensor iacts = randomIacts(layer, rng);
    const Int8Tensor weights = randomWeights(layer, rng);

    FeatherAccelerator acc(makeConfig(opts));
    if (opts.trace_events > 0) acc.enableTrace(opts.trace_events);
    acc.loadIacts(iacts, res.in_layout);
    res.stats = acc.run(layer, weights, res.mapping, res.out_layout,
                        opts.quant);
    res.output = acc.readActivations();
    res.trace = acc.trace();

    if (opts.verify) {
        const Int8Tensor ref =
            referenceOutput(layer, iacts, weights, opts.quant);
        res.checked = ref.numel();
        res.mismatches = countMismatches(res.output, ref);
    }
    return res;
}

ChainResult
runChainCycle(const std::vector<ChainStep> &steps, const RunOptions &opts)
{
    FEATHER_CHECK(!steps.empty(), "runChain: no steps");
    ChainResult res;

    // Resolve every step's mapping/layout up front so step i can default its
    // output to step i+1's concordant input (the paper's co-switch).
    std::vector<NestMapping> mappings;
    for (const ChainStep &s : steps) {
        mappings.push_back(s.mapping ? *s.mapping
                                     : NestMapping::canonical(s.layer, opts.aw,
                                                              opts.ah));
    }

    Rng rng(opts.seed);
    const Int8Tensor iacts = randomIacts(steps.front().layer, rng);
    std::vector<Int8Tensor> weights;
    for (const ChainStep &s : steps) {
        weights.push_back(randomWeights(s.layer, rng));
    }

    FeatherAccelerator acc(makeConfig(opts));
    if (opts.trace_events > 0) acc.enableTrace(opts.trace_events);
    const Layout first_in =
        opts.in_layout
            ? *opts.in_layout
            : concordantInputLayout(steps.front().layer, mappings.front(),
                                    opts.aw);
    acc.loadIacts(iacts, first_in);

    Int8Tensor ref = iacts;
    for (size_t i = 0; i < steps.size(); ++i) {
        const ChainStep &s = steps[i];
        RunResult r;
        r.mapping = mappings[i];
        r.in_layout = i == 0 ? first_in : res.layers[i - 1].out_layout;
        if (s.out_layout) {
            r.out_layout = *s.out_layout;
        } else if (i + 1 < steps.size()) {
            r.out_layout = concordantInputLayout(steps[i + 1].layer,
                                                 mappings[i + 1], opts.aw);
        } else {
            r.out_layout = concordantOutputLayout(s.layer, r.mapping, opts.aw);
        }
        r.stats = acc.run(s.layer, weights[i], r.mapping, r.out_layout,
                          s.quant);
        if (opts.verify) {
            ref = referenceOutput(s.layer, ref, weights[i], s.quant);
        }
        res.layers.push_back(std::move(r));
    }

    res.layers.back().output = acc.readActivations();
    res.layers.back().trace = acc.trace();
    if (opts.verify) {
        res.checked = ref.numel();
        res.mismatches = countMismatches(res.layers.back().output, ref);
    }
    return res;
}

RunResult
runLayerAnalytic(const LayerSpec &layer, const RunOptions &opts)
{
    // Resolve the exact same mapping/layout defaults as the cycle tier so
    // both engines evaluate the same plan; then fill the stats from the
    // closed-form model. No data, no verification (checked stays 0).
    RunResult res;
    res.mapping = opts.mapping
                      ? *opts.mapping
                      : NestMapping::canonical(layer, opts.aw, opts.ah);
    res.in_layout = opts.in_layout
                        ? *opts.in_layout
                        : concordantInputLayout(layer, res.mapping, opts.aw);
    res.out_layout = opts.out_layout
                         ? *opts.out_layout
                         : concordantOutputLayout(layer, res.mapping, opts.aw);
    res.stats = analyticLayerStats(layer, res.mapping, res.in_layout,
                                   res.out_layout, makeConfig(opts));
    return res;
}

ChainResult
runChainAnalytic(const std::vector<ChainStep> &steps, const RunOptions &opts)
{
    FEATHER_CHECK(!steps.empty(), "runChain: no steps");
    ChainResult res;

    std::vector<NestMapping> mappings;
    for (const ChainStep &s : steps) {
        mappings.push_back(s.mapping ? *s.mapping
                                     : NestMapping::canonical(s.layer, opts.aw,
                                                              opts.ah));
    }
    const Layout first_in =
        opts.in_layout
            ? *opts.in_layout
            : concordantInputLayout(steps.front().layer, mappings.front(),
                                    opts.aw);
    const FeatherConfig cfg = makeConfig(opts);
    for (size_t i = 0; i < steps.size(); ++i) {
        const ChainStep &s = steps[i];
        RunResult r;
        r.mapping = mappings[i];
        r.in_layout = i == 0 ? first_in : res.layers[i - 1].out_layout;
        if (s.out_layout) {
            r.out_layout = *s.out_layout;
        } else if (i + 1 < steps.size()) {
            r.out_layout = concordantInputLayout(steps[i + 1].layer,
                                                 mappings[i + 1], opts.aw);
        } else {
            r.out_layout = concordantOutputLayout(s.layer, r.mapping, opts.aw);
        }
        r.stats = analyticLayerStats(s.layer, r.mapping, r.in_layout,
                                     r.out_layout, cfg);
        res.layers.push_back(std::move(r));
    }
    return res;
}

} // namespace detail

int64_t
ChainResult::totalCycles() const
{
    int64_t total = 0;
    for (const RunResult &r : layers) total += r.stats.cycles;
    return total;
}

int64_t
ChainResult::totalReadStalls() const
{
    int64_t total = 0;
    for (const RunResult &r : layers) total += r.stats.read_stall_cycles;
    return total;
}

} // namespace sim
} // namespace feather
