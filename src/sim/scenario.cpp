#include "sim/scenario.hpp"

#include "common/bits.hpp"
#include "common/log.hpp"
#include "dataflow/mapping.hpp"
#include "feather/accelerator.hpp"

namespace feather {
namespace sim {

namespace {

/** Every dim a layout names must exist in the target tensor, else binding
 *  it downstream dies on an internal CHECK instead of a clean CLI error. */
std::string
layoutDimError(const Layout &layout, const LayerSpec &layer,
               const Extents &extents, const char *what)
{
    const auto check = [&](Dim d) -> std::string {
        if (extents[d] > 0) return "";
        return strCat("layout '", layout.toString(), "' uses dim ",
                      toString(d), " which ", layer.name, "'s ", what,
                      " do not have");
    };
    for (Dim d : layout.interOrder()) {
        const std::string why = check(d);
        if (!why.empty()) return why;
    }
    for (const IntraFactor &f : layout.intraFactors()) {
        const std::string why = check(f.dim);
        if (!why.empty()) return why;
    }
    return "";
}

ScenarioLayer
layer(LayerSpec spec, DataflowKind kind = DataflowKind::Canonical,
      float multiplier = 0.02f)
{
    return ScenarioLayer{std::move(spec), kind, multiplier};
}

std::vector<Scenario>
buildScenarios()
{
    std::vector<Scenario> all;

    all.push_back({"quickstart_conv",
                   "8-channel 8x8 conv 3x3 on a 4x4 array (the quickstart)",
                   {layer(convLayer("quickstart_conv", 8, 8, 8, 3, 1, 1),
                          DataflowKind::Canonical, 0.03f)},
                   4, 4});

    all.push_back({"conv3x3",
                   "16-channel 14x14 conv 3x3, channel-parallel columns",
                   {layer(convLayer("conv3x3", 16, 14, 16, 3, 1, 1),
                          DataflowKind::ChannelParallel)},
                   8, 8});

    all.push_back({"conv1x1",
                   "32-channel 14x14 pointwise conv, canonical mapping",
                   {layer(convLayer("conv1x1", 32, 14, 32, 1, 1, 0))},
                   8, 8});

    all.push_back({"conv_window",
                   "conv 3x3 with window-parallel (Q) columns",
                   {layer(convLayer("conv_window", 8, 14, 16, 3, 1, 1),
                          DataflowKind::WindowParallel)},
                   8, 8});

    all.push_back({"depthwise",
                   "8-channel 6x6 depthwise conv 3x3",
                   {layer(depthwiseLayer("depthwise", 8, 6, 3, 1, 1),
                          DataflowKind::Canonical, 0.1f)},
                   4, 4});

    all.push_back({"gemm",
                   "GEMM M8 N6 K32 (the Fig. 10 steady-state shape)",
                   {layer(gemmLayer("gemm", 8, 6, 32))},
                   4, 4});

    all.push_back({"gemm_skewed",
                   "skewed GEMM M8 N3 K12 (Fig. 10 workload C)",
                   {layer(gemmLayer("gemm_skewed", 8, 3, 12))},
                   4, 4});

    all.push_back(
        {"resnet_block",
         "scaled ResNet bottleneck 1x1 -> 3x3 -> 1x1, per-layer "
         "(dataflow, layout) co-switch through the StaB ping-pong",
         {layer(convLayer("reduce_1x1", 32, 14, 8, 1, 1, 0),
                DataflowKind::WindowParallel),
          layer(convLayer("conv_3x3", 8, 14, 8, 3, 1, 1),
                DataflowKind::ChannelParallel, 0.03f),
          layer(convLayer("expand_1x1", 8, 14, 32, 1, 1, 0),
                DataflowKind::WindowParallel)},
         8, 8});

    all.push_back(
        {"mobilenet_bneck",
         "scaled MobileNet-V3 bneck: expand 1x1 -> depthwise 3x3 -> "
         "project 1x1",
         {layer(convLayer("expand_1x1", 16, 14, 32, 1, 1, 0)),
          layer(depthwiseLayer("dw_3x3", 32, 14, 3, 1, 1), // outputs 14x14
                DataflowKind::Canonical, 0.05f),
          layer(convLayer("project_1x1", 32, 14, 16, 1, 1, 0))},
         8, 8});

    all.push_back(
        {"dw_separable",
         "depthwise 3x3 -> pointwise 1x1 separable pair (MobileNet's "
         "workhorse block) with a dataflow switch between them",
         {layer(depthwiseLayer("dw_3x3", 16, 14, 3, 1, 1),
                DataflowKind::Canonical, 0.05f),
          layer(convLayer("pw_1x1", 16, 14, 32, 1, 1, 0),
                DataflowKind::ChannelParallel)},
         8, 8});

    all.push_back(
        {"gemm_chain",
         "3-layer GEMM MLP K32 -> N16 -> N8 -> N4 threaded through the "
         "StaB ping-pong (each output is the next GEMM's [M,K] input)",
         {layer(gemmLayer("fc1", 8, 16, 32), DataflowKind::Canonical, 0.03f),
          layer(gemmLayer("fc2", 8, 8, 16), DataflowKind::Canonical, 0.03f),
          layer(gemmLayer("fc3", 8, 4, 8), DataflowKind::Canonical, 0.05f)},
         4, 4});

    all.push_back({"conv_stride2",
                   "stride-2 3x3 downsampling conv (16ch 14x14 -> 32ch 7x7)",
                   {layer(convLayer("down_3x3", 16, 14, 32, 3, 2, 1),
                          DataflowKind::ChannelParallel)},
                   8, 8});

    return all;
}

} // namespace

const std::vector<Scenario> &
scenarios()
{
    static const std::vector<Scenario> all = buildScenarios();
    return all;
}

const Scenario *
findScenario(const std::string &name)
{
    for (const Scenario &s : scenarios()) {
        if (s.name == name) return &s;
    }
    return nullptr;
}

std::vector<std::string>
scenarioNames()
{
    std::vector<std::string> names;
    for (const Scenario &s : scenarios()) names.push_back(s.name);
    return names;
}

std::optional<ScenarioRun>
runScenario(const Scenario &scenario, const ScenarioOptions &opts,
            std::string *error)
{
    return runScenario(scenario, opts, error,
                       [](EngineMode mode, DataflowKind kind,
                          const LayerSpec &layer, int aw, int ah,
                          std::string *err) {
                           return planLayer(kind, layer, aw, ah, err, mode);
                       });
}

std::optional<ScenarioRun>
runScenario(const Scenario &scenario, const ScenarioOptions &opts,
            std::string *error, const PlanFn &plan)
{
    if (scenario.layers.empty()) {
        if (error) *error = "scenario '" + scenario.name + "' has no layers";
        return std::nullopt;
    }
    ScenarioRun run;
    run.aw = opts.aw > 0 ? opts.aw : scenario.default_aw;
    run.ah = opts.ah > 0 ? opts.ah : scenario.default_ah;
    if (run.aw < 2 || !isPow2(uint64_t(run.aw))) {
        // BIRRD is a power-of-two butterfly; reject up front instead of
        // panicking inside the topology constructor.
        if (error) {
            *error = strCat("array width (--aw) must be a power of two >= 2"
                            ", got ", run.aw);
        }
        return std::nullopt;
    }
    if (run.ah < 1) {
        if (error) *error = strCat("array height (--ah) must be >= 1");
        return std::nullopt;
    }

    std::optional<DataflowKind> override_kind;
    if (!opts.dataflow.empty()) {
        override_kind = parseDataflow(opts.dataflow);
        if (!override_kind) {
            if (error) {
                *error = "unknown dataflow '" + opts.dataflow +
                         "' (expected ws|cp|wp or their long names)";
            }
            return std::nullopt;
        }
    }

    RunOptions ropts;
    ropts.aw = run.aw;
    ropts.ah = run.ah;
    ropts.engine = opts.engine;
    ropts.seed = opts.seed;
    ropts.trace_events = opts.trace_events;

    // Plan every layer up front (through the injected plan source) so the
    // chain below is pure execution: step i's oActs materialise directly in
    // step i+1's concordant input layout (the paper's co-switch).
    std::vector<LayerPlan> plans;
    for (const ScenarioLayer &sl : scenario.layers) {
        const DataflowKind kind =
            override_kind ? *override_kind : sl.dataflow;
        std::optional<LayerPlan> p =
            plan(opts.engine, kind, sl.layer, run.aw, run.ah, error);
        if (!p) return std::nullopt;
        plans.push_back(std::move(*p));
    }

    std::vector<ChainStep> steps;
    for (size_t i = 0; i < scenario.layers.size(); ++i) {
        ChainStep step;
        step.layer = scenario.layers[i].layer;
        step.mapping = plans[i].mapping;
        step.out_layout = i + 1 < plans.size() ? plans[i + 1].in_layout
                                               : plans.back().out_layout;
        step.quant.multiplier = scenario.layers[i].multiplier;
        steps.push_back(std::move(step));
    }
    ropts.in_layout = plans.front().in_layout;

    if (!opts.layout.empty() && opts.layout != "concordant") {
        const std::optional<Layout> in = tryParseLayout(opts.layout, error);
        if (!in) return std::nullopt;
        const LayerSpec &first = scenario.layers.front().layer;
        const std::string why =
            layoutDimError(*in, first, iactExtents(first),
                           first.type == OpType::Gemm ? "[M,K] iActs"
                                                      : "[N,C,H,W] iActs");
        if (!why.empty()) {
            if (error) *error = why;
            return std::nullopt;
        }
        ropts.in_layout = *in;
    }

    if (!opts.out_layout.empty() && opts.out_layout != "concordant") {
        const std::optional<Layout> out =
            tryParseLayout(opts.out_layout, error);
        if (!out) return std::nullopt;
        const LayerSpec &last = scenario.layers.back().layer;
        // oAct layouts are written in next-layer iAct space (RIR: the pong
        // buffer holds the next layer's inputs); validate against the same
        // binding FeatherAccelerator::run applies.
        const std::string why = layoutDimError(
            *out, last, oactIactExtents(last),
            last.type == OpType::Gemm ? "oActs (next layer's [M,K] iActs)"
                                      : "oActs (next layer's [C,H,W] iActs)");
        if (!why.empty()) {
            if (error) *error = why;
            return std::nullopt;
        }
        steps.back().out_layout = *out;
    }

    run.chain = runChain(steps, ropts);
    return run;
}

} // namespace sim
} // namespace feather
