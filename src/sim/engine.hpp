#pragma once

/**
 * @file
 * The two-tier simulation engine behind one interface.
 *
 * Every layer/chain execution in the repo goes through a sim::Engine:
 *
 *   - cycle    — today's bit-exact NoC replay (FeatherAccelerator): exact
 *                deterministic counters, outputs verified against
 *                tensor/reference_ops.
 *   - analytic — closed-form cycle/energy estimates from the mapping's
 *                loop structure plus one probe step of address arithmetic
 *                (src/feather/analytic.hpp). No per-element replay, no
 *                verification (RunResult::checked == 0); orders of
 *                magnitude faster, with a documented accuracy bound.
 *
 * The free functions sim::runLayer / sim::runChain dispatch on
 * RunOptions::engine, so existing call sites pick up the tiering by
 * setting one field. serve::BatchEngine and model::Scheduler use analytic
 * mode to enumerate and prune candidate spaces and fall back to cycle
 * mode for final verified runs.
 */

#include "sim/driver.hpp"
#include "sim/engine_mode.hpp"

namespace feather {
namespace sim {

/** Documented accuracy bound of the analytic tier: the relative error of
 *  its cycle estimate vs the cycle engine is at most this on the built-in
 *  scenario grid (measured worst case 10.3%, most points exact), and the
 *  analytic ranking of dataflow candidates at a fixed (scenario, array)
 *  point matches the cycle-accurate ranking. Locked by
 *  tests/test_engine_modes.cpp; tighten only with fresh measurements. */
constexpr double kAnalyticBound = 0.15;

/** One execution tier; stateless and thread-safe. */
class Engine
{
  public:
    virtual ~Engine() = default;

    virtual EngineMode mode() const = 0;

    /** Execute one layer under @p opts (opts.engine is ignored — the
     *  engine you call decides the tier). */
    virtual RunResult runLayer(const LayerSpec &layer,
                               const RunOptions &opts) const = 0;

    /** Execute a chain of layers (StaB ping-pong hand-off in cycle mode;
     *  per-layer estimate composition in analytic mode). */
    virtual ChainResult runChain(const std::vector<ChainStep> &steps,
                                 const RunOptions &opts) const = 0;
};

/** The process-wide engine instances. */
const Engine &cycleEngine();
const Engine &analyticEngine();
const Engine &engineFor(EngineMode mode);

} // namespace sim
} // namespace feather
