#include "sim/cli.hpp"

#include <cstdio>

#include "common/log.hpp"
#include "common/options.hpp"
#include "common/parse.hpp"
#include "common/table.hpp"
#include "sim/scenario.hpp"

namespace feather {
namespace sim {

namespace {

/** The one declaration of every single-run flag: the parse loop and the
 *  usage text both derive from this table (common/options.hpp). */
OptionTable
simOptions(CliOptions *o)
{
    OptionTable t;
    t.str("--workload", "NAME", "scenario to run (default: quickstart_conv)",
          &o->workload);
    t.str("--dataflow", "KIND",
          "override every layer's dataflow family:\n"
          "ws|canonical, cp|channel-parallel,\n"
          "wp|window-parallel (default: per-layer choice)",
          &o->dataflow);
    t.str("--layout", "L",
          "first layer's iAct layout: 'concordant' or a\n"
          "layout string like HWC_C8 (default: concordant)",
          &o->layout);
    // A 64k-PE edge keeps int(n) well-defined and rejects typos like
    // --aw 4294967296 instead of silently truncating them.
    t.rangedInt("--aw", "N", "array width (default: scenario's)", &o->aw,
                65536);
    t.rangedInt("--ah", "N", "array height (default: scenario's)", &o->ah,
                65536);
    t.nonNegative("--seed", "N", "RNG seed for inputs (default: 2024)",
                  &o->seed);
    t.custom("--engine", "MODE",
             "simulation engine tier (default: cycle):\n"
             "cycle    bit-exact NoC replay, verified against\n"
             "         the reference operators\n"
             "analytic closed-form cycle/energy estimates\n"
             "         from the mapping (no per-element\n"
             "         replay, nothing to verify)",
             [o](const std::string &v) {
                 const std::optional<EngineMode> mode = parseEngineMode(v);
                 if (!mode) {
                     return OptionTable::invalidValue(
                         "--engine", v, "cycle or analytic");
                 }
                 o->engine = *mode;
                 return std::string();
             });
    t.custom("--trace", "N", "print the first N StaB read/write events",
             [o](const std::string &v) {
                 uint64_t n = 0;
                 if (!parseUint(v, &n)) {
                     return OptionTable::invalidValue(
                         "--trace", v, "a non-negative integer");
                 }
                 o->trace = size_t(n);
                 return std::string();
             });
    t.flag("--list", "list the registered scenarios and exit", &o->list);
    t.flag("--help", "show this text", &o->help);
    return t;
}

} // namespace

std::string
usage()
{
    CliOptions dummy;
    std::string text =
        "usage: feather_cli [options]\n"
        "\n"
        "Run a named workload scenario on the FEATHER cycle-level simulator\n"
        "and verify the result bit-exactly against the reference operators.\n"
        "\n"
        "options:\n" +
        simOptions(&dummy).helpText() +
        "\n"
        "batch mode (multi-threaded serve engine; see src/serve):\n"
        "  --sweep NAME      run the (dataflow x array-size) grid over a\n"
        "                    scenario; infeasible grid points are skipped\n"
        "  --batch FILE      run the jobs listed in FILE, one per line:\n"
        "                    <scenario> [dataflow=..] [layout=..]\n"
        "                    [out_layout=..] [aw=N] [ah=N] [seed=N]\n"
        "                    [engine=cycle|analytic] [name=..]\n"
        "                    ('#' comments)\n"
        "  --jobs N          worker threads (default 1); the report is\n"
        "                    bit-identical for any N\n"
        "  --seed N          base seed; job i draws inputs from stream\n"
        "                    (seed, i)\n"
        "  --engine MODE     default tier for jobs that do not pin one\n"
        "  --report-csv F    write the per-job report as CSV to F\n"
        "  --report-json F   write the report as single-line JSON to F\n"
        "\n"
        "model mode (whole-graph per-layer scheduler; see src/model):\n"
        "  --model NAME|FILE schedule a built-in model graph or a model\n"
        "                    file (layer lines: conv/depthwise/pointwise/\n"
        "                    gemm key=value...)\n"
        "  --schedule S      per-layer (DP over dataflow candidates and\n"
        "                    BIRRD reorder costs), greedy, or\n"
        "                    fixed:<ws|cp|wp> (default: per-layer)\n"
        "  --list-models     list the built-in model graphs and exit\n"
        "  --jobs N          candidate-evaluation worker threads\n"
        "  --engine MODE     candidate-evaluation tier; the final chosen\n"
        "                    schedule is always measured cycle-accurately\n"
        "  --report-csv/--report-json also export the schedule report\n"
        "\n"
        "long-running serving (continuous batching, admission control,\n"
        "latency percentiles) lives in the separate feather_serve binary\n"
        "(see src/daemon; feather_serve --help).\n"
        "\n"
        "scenarios:\n";
    for (const Scenario &s : scenarios()) {
        text += "  " + s.name;
        text.append(s.name.size() < 18 ? 18 - s.name.size() : 1, ' ');
        text += s.summary + "\n";
    }
    return text;
}

CliParse
parseCli(const std::vector<std::string> &args)
{
    CliParse parse;
    simOptions(&parse.opts).parse(args, &parse.error);
    return parse;
}

int
cliMain(int argc, const char *const *argv)
{
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);

    const CliParse parse = parseCli(args);
    if (!parse.ok()) {
        std::fprintf(stderr, "error: %s\n\n%s", parse.error.c_str(),
                     usage().c_str());
        return 2;
    }
    const CliOptions &o = parse.opts;
    if (o.help) {
        std::printf("%s", usage().c_str());
        return 0;
    }
    if (o.list) {
        Table t({"scenario", "layers", "array", "summary"});
        for (const Scenario &s : scenarios()) {
            t.addRow({s.name, std::to_string(s.layers.size()),
                      strCat(s.default_aw, "x", s.default_ah), s.summary});
        }
        std::printf("%s", t.toString().c_str());
        return 0;
    }

    const Scenario *scenario = findScenario(o.workload);
    if (!scenario) {
        std::fprintf(stderr, "error: unknown workload '%s'; known:",
                     o.workload.c_str());
        for (const std::string &name : scenarioNames()) {
            std::fprintf(stderr, " %s", name.c_str());
        }
        std::fprintf(stderr, "\n");
        return 2;
    }

    ScenarioOptions sopts;
    sopts.aw = o.aw;
    sopts.ah = o.ah;
    sopts.dataflow = o.dataflow;
    sopts.layout = o.layout;
    sopts.engine = o.engine;
    sopts.seed = o.seed;
    sopts.trace_events = o.trace;

    std::string error;
    const std::optional<ScenarioRun> run =
        runScenario(*scenario, sopts, &error);
    if (!run) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 2;
    }

    std::printf("%s on %dx%d FEATHER (engine %s, seed %llu)\n",
                scenario->name.c_str(), run->aw, run->ah,
                toString(o.engine).c_str(), (unsigned long long)o.seed);
    Table t({"layer", "mapping", "iAct layout", "oAct layout", "cycles",
             "util", "rd stalls", "wr stalls"});
    const int num_pes = run->aw * run->ah;
    for (size_t i = 0; i < run->chain.layers.size(); ++i) {
        const RunResult &r = run->chain.layers[i];
        t.addRow({scenario->layers[i].layer.name, r.mapping.toString(),
                  r.in_layout.toString(), r.out_layout.toString(),
                  std::to_string(r.stats.cycles),
                  fmtPercent(r.stats.utilization(num_pes)),
                  std::to_string(r.stats.read_stall_cycles),
                  std::to_string(r.stats.write_stall_cycles)});
    }
    std::printf("%s", t.toString().c_str());

    if (o.trace > 0) {
        Table tr({"event", "step", "bank", "line"});
        for (const TraceEvent &ev : run->chain.layers.back().trace) {
            tr.addRow({ev.kind == TraceEvent::Kind::StabRead
                           ? "StaB-Ping read"
                           : "StaB-Pong write",
                       std::to_string(ev.step), std::to_string(ev.bank),
                       std::to_string(ev.addr)});
        }
        std::printf("%s", tr.toString().c_str());
    }

    if (o.engine == EngineMode::Analytic) {
        // Analytic runs estimate from the mapping without producing
        // outputs, so there is nothing to verify and no failure to signal.
        std::printf("total cycles: %lld (analytic estimate; run with "
                    "--engine cycle to verify)\n",
                    (long long)run->chain.totalCycles());
        return 0;
    }
    std::printf("total cycles: %lld; oActs bit-exact vs reference_ops: %s\n",
                (long long)run->chain.totalCycles(),
                run->chain.bitExact() ? "yes" : "NO");
    return run->chain.bitExact() ? 0 : 1;
}

} // namespace sim
} // namespace feather
