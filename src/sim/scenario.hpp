#pragma once

/**
 * @file
 * Named simulation scenarios for the `feather_cli` driver.
 *
 * A scenario is a workload (one layer, or a chain threaded through the StaB
 * ping-pong) together with the per-layer dataflow family it is meant to
 * exercise. Adding a workload to the simulator means adding one entry to
 * scenarios() — not writing a new main(). Every scenario runs bit-exact
 * against tensor/reference_ops via sim::runLayer / sim::runChain.
 */

#include <functional>
#include <string>
#include <vector>

#include "sim/driver.hpp"

namespace feather {
namespace sim {

/** One layer of a scenario plus the dataflow family it should run under. */
struct ScenarioLayer
{
    LayerSpec layer;
    DataflowKind dataflow = DataflowKind::Canonical;
    float multiplier = 0.02f; ///< QM rescale for this layer
};

/** A named, self-contained workload for the CLI and the smoke tests. */
struct Scenario
{
    std::string name;
    std::string summary;
    std::vector<ScenarioLayer> layers;
    int default_aw = 8;
    int default_ah = 8;
};

/** All registered scenarios, in presentation order. */
const std::vector<Scenario> &scenarios();

/** Lookup by name; nullptr when unknown. */
const Scenario *findScenario(const std::string &name);

/** Registered names, in presentation order. */
std::vector<std::string> scenarioNames();

/** Result of a scenario run (per-layer stats live in chain.layers). */
struct ScenarioRun
{
    ChainResult chain;
    int aw = 0;
    int ah = 0;
};

/** Overrides applied on top of a scenario's defaults. */
struct ScenarioOptions
{
    int aw = 0; ///< <= 0 picks the scenario default
    int ah = 0;
    std::string dataflow;              ///< empty = per-layer family
    std::string layout = "concordant"; ///< first layer's iAct layout
    /** Last layer's oAct layout; "concordant" derives it from the mapping.
     *  This is the Fig. 10 "re-target the reduction to different StaB
     *  banks" knob: same routes, different bank assignment. */
    std::string out_layout = "concordant";
    /** Execution tier: cycle replays and verifies, analytic estimates. */
    EngineMode engine = EngineMode::Cycle;
    uint64_t seed = 2024;
    size_t trace_events = 0;
};

/**
 * Source of per-layer planning artifacts. runScenario consults it for every
 * (dataflow, layer, aw, ah) point; the default is a plain planLayer call,
 * and serve::PlanCache injects its memoizing lookup through the same
 * signature (sim stays below serve in the layering).
 */
using PlanFn = std::function<std::optional<LayerPlan>(
    EngineMode mode, DataflowKind kind, const LayerSpec &layer, int aw,
    int ah, std::string *error)>;

/**
 * Run @p scenario under @p opts, honouring per-layer dataflow families
 * unless opts.dataflow overrides them; opts.layout replaces the first
 * layer's input layout and opts.out_layout the last layer's output layout
 * ("concordant" derives them from the mapping).
 * Returns nullopt with @p error set when an override does not apply
 * (unknown dataflow name, unparsable layout, or a mapping that fails
 * validation).
 */
std::optional<ScenarioRun> runScenario(const Scenario &scenario,
                                       const ScenarioOptions &opts = {},
                                       std::string *error = nullptr);

/** As above, but planning goes through @p plan (e.g. a shared cache). */
std::optional<ScenarioRun> runScenario(const Scenario &scenario,
                                       const ScenarioOptions &opts,
                                       std::string *error, const PlanFn &plan);

} // namespace sim
} // namespace feather
