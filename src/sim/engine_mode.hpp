#pragma once

/**
 * @file
 * The simulation engine tiers (see sim/engine.hpp for the interface).
 *
 * Split into its own header so option structs (sim::RunOptions,
 * sim::ScenarioOptions, serve job specs) can name a mode without pulling
 * in the engine interface or the driver.
 */

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace feather {
namespace sim {

/** Which execution tier a run uses. */
enum class EngineMode : uint8_t {
    /** Bit-exact NoC replay: every partial sum flows through NEST, the
     *  routed BIRRD network, the OB and the QM; counters are exact and
     *  outputs verify against the reference operators. */
    Cycle,
    /** Closed-form cycles from the mapping's loop structure plus one
     *  probe step of address arithmetic — no data movement, no
     *  verification. Orders of magnitude faster; estimates carry a
     *  documented error bound. */
    Analytic,
};

/** Parse "cycle" or "analytic"; nullopt on anything else. */
std::optional<EngineMode> parseEngineMode(const std::string &name);

std::string toString(EngineMode mode);

/** Valid --engine values, in presentation order (for error messages). */
const std::vector<std::string> &engineModeNames();

} // namespace sim
} // namespace feather
