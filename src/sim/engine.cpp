#include "sim/engine.hpp"

namespace feather {
namespace sim {

std::optional<EngineMode>
parseEngineMode(const std::string &name)
{
    if (name == "cycle") return EngineMode::Cycle;
    if (name == "analytic") return EngineMode::Analytic;
    return std::nullopt;
}

std::string
toString(EngineMode mode)
{
    switch (mode) {
    case EngineMode::Cycle: return "cycle";
    case EngineMode::Analytic: return "analytic";
    }
    return "?";
}

const std::vector<std::string> &
engineModeNames()
{
    static const std::vector<std::string> names = {"cycle", "analytic"};
    return names;
}

namespace {

class CycleEngine final : public Engine
{
  public:
    EngineMode mode() const override { return EngineMode::Cycle; }

    RunResult
    runLayer(const LayerSpec &layer, const RunOptions &opts) const override
    {
        return detail::runLayerCycle(layer, opts);
    }

    ChainResult
    runChain(const std::vector<ChainStep> &steps,
             const RunOptions &opts) const override
    {
        return detail::runChainCycle(steps, opts);
    }
};

class AnalyticEngine final : public Engine
{
  public:
    EngineMode mode() const override { return EngineMode::Analytic; }

    RunResult
    runLayer(const LayerSpec &layer, const RunOptions &opts) const override
    {
        return detail::runLayerAnalytic(layer, opts);
    }

    ChainResult
    runChain(const std::vector<ChainStep> &steps,
             const RunOptions &opts) const override
    {
        return detail::runChainAnalytic(steps, opts);
    }
};

} // namespace

const Engine &
cycleEngine()
{
    static const CycleEngine engine;
    return engine;
}

const Engine &
analyticEngine()
{
    static const AnalyticEngine engine;
    return engine;
}

const Engine &
engineFor(EngineMode mode)
{
    return mode == EngineMode::Analytic ? analyticEngine() : cycleEngine();
}

} // namespace sim
} // namespace feather
