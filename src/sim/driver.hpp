#pragma once

/**
 * @file
 * Shared simulation driver: the one place that knows how to take a layer
 * from "shape on paper" to "bit-exact cycle-level run".
 *
 * Every example, benchmark and the `feather_cli` front-end used to carry a
 * private copy of the same boilerplate — build a LayerSpec, randomize int8
 * tensors, construct a FeatherAccelerator, load activations under a layout,
 * pick a mapping, run, and diff the read-back against tensor/reference_ops.
 * That boilerplate lives here now; a new workload is a few driver calls (or
 * a scenario-registry entry, see sim/scenario.hpp), not a new main().
 */

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "feather/accelerator.hpp"
#include "nest/nest_mapping.hpp"
#include "sim/engine_mode.hpp"
#include "tensor/tensor.hpp"
#include "workload/shapes.hpp"

namespace feather {
namespace sim {

// ---------------------------------------------------------------------------
// Layer construction
// ---------------------------------------------------------------------------

/** Square-input convolution layer: C in-channels on an HW x HW map, M
 *  kernels of RS x RS. */
LayerSpec convLayer(std::string name, int64_t c, int64_t hw, int64_t m,
                    int64_t rs, int64_t stride = 1, int64_t pad = 0);

/** Fully general convolution layer. */
LayerSpec convLayer2d(std::string name, int64_t c, int64_t h, int64_t w,
                      int64_t m, int64_t r, int64_t s, int64_t stride,
                      int64_t pad);

/** Depthwise convolution layer (one RS x RS filter per channel). */
LayerSpec depthwiseLayer(std::string name, int64_t c, int64_t hw, int64_t rs,
                         int64_t stride = 1, int64_t pad = 0);

/** GEMM layer: inputs M x K, weights K x N. */
LayerSpec gemmLayer(std::string name, int64_t m, int64_t n, int64_t k);

// ---------------------------------------------------------------------------
// Inputs and golden reference
// ---------------------------------------------------------------------------
//
// Input generation is concurrency-safe by construction: there is no shared
// generator state. Each caller owns its Rng — runLayer/runChain seed a local
// one from RunOptions::seed, and batch jobs (serve::BatchEngine) derive
// theirs from Rng::deriveStream(base_seed, job_index) — so concurrent runs
// are bit-identical regardless of thread count or scheduling.

/** Random iActs of the layer's input shape ([1,C,H,W] conv, [M,K] GEMM). */
Int8Tensor randomIacts(const LayerSpec &layer, Rng &rng, int lo = -50,
                       int hi = 50);

/** Random weights of the layer's weight shape ([M,C,R,S] conv, [C,1,R,S]
 *  depthwise, [K,N] GEMM). */
Int8Tensor randomWeights(const LayerSpec &layer, Rng &rng, int lo = -50,
                         int hi = 50);

/**
 * Golden output of @p layer via tensor/reference_ops: conv2d /
 * depthwiseConv2d / gemm with the quant zero points, requantized by the QM
 * multiplier.
 */
Int8Tensor referenceOutput(const LayerSpec &layer, const Int8Tensor &iacts,
                           const Int8Tensor &weights, const LayerQuant &quant);

/** Number of element-wise mismatches (shape mismatch counts every element). */
int64_t countMismatches(const Int8Tensor &got, const Int8Tensor &want);

// ---------------------------------------------------------------------------
// Dataflow selection
// ---------------------------------------------------------------------------

/** Named dataflow families the driver can instantiate for any layer. */
enum class DataflowKind : uint8_t {
    Canonical,       ///< NestMapping::canonical (weight-stationary)
    ChannelParallel, ///< C across columns (BIRRD spatial reduction)
    WindowParallel,  ///< output windows (Q) across columns
};

/** Parse "ws"/"canonical", "cp"/"channel-parallel", "wp"/"window-parallel". */
std::optional<DataflowKind> parseDataflow(const std::string &name);

std::string toString(DataflowKind kind);

/**
 * Instantiate @p kind for @p layer on an AW x AH array. Falls back to the
 * canonical mapping when the family does not apply (e.g. window-parallel
 * GEMM); returns nullopt with @p error set when the result fails
 * NestMapping::validate.
 */
std::optional<NestMapping> buildMapping(DataflowKind kind,
                                        const LayerSpec &layer, int aw, int ah,
                                        std::string *error = nullptr);

/**
 * Non-fatal Layout::parse: validates the "INTER_IntraN..." grammar first
 * and returns nullopt (with @p error set) instead of aborting on bad input,
 * so CLI-supplied layout strings can be rejected gracefully.
 */
std::optional<Layout> tryParseLayout(const std::string &text,
                                     std::string *error = nullptr);

/**
 * The concordant *input* layout of @p mapping on an AW-bank StaB: one line
 * feeds all columns in one cycle (channel-last for C-parallel columns,
 * row-major for window-parallel, MK_K tiles for GEMM).
 */
Layout concordantInputLayout(const LayerSpec &layer, const NestMapping &mapping,
                             int aw);

/** The concordant layout of the layer's *output* tensor (what RIR writes so
 *  the next layer of the same dataflow family reads conflict-free). */
Layout concordantOutputLayout(const LayerSpec &layer,
                              const NestMapping &mapping, int aw);

/**
 * The planning artifacts of one (layer, dataflow, AW, AH) point: the NEST
 * mapping plus the concordant in/out layouts it induces. This is the unit
 * serve::PlanCache memoizes across batch jobs — per job the sim still runs,
 * but planning is shared.
 */
struct LayerPlan
{
    NestMapping mapping;
    Layout in_layout;
    Layout out_layout;
    /** Engine tier the plan was made for (and is cached under). */
    EngineMode engine = EngineMode::Cycle;
};

/**
 * buildMapping + both concordant layouts in one call; nullopt (with
 * @p error set) when the mapping does not fit or fails validation.
 * @p mode tags the plan with the engine tier requesting it (the plan
 * artifacts themselves are mode-independent, but caches key on it).
 */
std::optional<LayerPlan> planLayer(DataflowKind kind, const LayerSpec &layer,
                                   int aw, int ah, std::string *error = nullptr,
                                   EngineMode mode = EngineMode::Cycle);

// ---------------------------------------------------------------------------
// Single-layer runs
// ---------------------------------------------------------------------------

/** Options for runLayer; every field has a usable default. */
struct RunOptions
{
    int aw = 8;
    int ah = 8;
    /** Execution tier (sim/engine.hpp); analytic skips data + verify. */
    EngineMode engine = EngineMode::Cycle;
    uint64_t seed = 2024;
    int64_t stab_depth = 0; ///< 0 = FeatherConfig default
    /** Unset fields derive from the mapping (concordant layouts) or the
     *  layer (canonical mapping). */
    std::optional<NestMapping> mapping;
    std::optional<Layout> in_layout;
    std::optional<Layout> out_layout;
    LayerQuant quant = defaultQuant();
    bool verify = true;       ///< diff against referenceOutput
    size_t trace_events = 0;  ///< capture first N StaB reads/writes

    static LayerQuant
    defaultQuant()
    {
        LayerQuant q;
        q.multiplier = 0.02f;
        return q;
    }
};

/** Everything a caller may want to report about one layer run. */
struct RunResult
{
    LayerStats stats;
    NestMapping mapping;
    Layout in_layout;
    Layout out_layout;
    Int8Tensor output;      ///< read-back oActs
    int64_t checked = 0;    ///< elements compared (0 when verify = false)
    int64_t mismatches = 0;
    std::vector<TraceEvent> trace;

    bool bitExact() const { return checked > 0 && mismatches == 0; }
    double utilization(int aw, int ah) const
    {
        return stats.utilization(aw * ah);
    }
};

/**
 * Run @p layer through the engine tier selected by opts.engine: cycle mode
 * builds a fresh FEATHER instance with seeded random inputs and (by
 * default) verifies the read-back bit-exactly against the reference ops;
 * analytic mode resolves the same mapping/layouts and fills stats from the
 * closed-form model (checked == 0, empty output).
 */
RunResult runLayer(const LayerSpec &layer, const RunOptions &opts = {});

// ---------------------------------------------------------------------------
// Multi-layer chains (StaB ping-pong, per-layer dataflow/layout co-switch)
// ---------------------------------------------------------------------------

/** One step of a chain; unset fields derive like RunOptions. */
struct ChainStep
{
    LayerSpec layer;
    std::optional<NestMapping> mapping;
    std::optional<Layout> out_layout;
    LayerQuant quant = RunOptions::defaultQuant();
};

struct ChainResult
{
    std::vector<RunResult> layers; ///< per-layer stats (output kept on last)
    int64_t checked = 0;           ///< final-output elements compared
    int64_t mismatches = 0;

    bool bitExact() const { return checked > 0 && mismatches == 0; }
    int64_t totalCycles() const;
    int64_t totalReadStalls() const;
};

/**
 * Run @p steps back-to-back on one accelerator, threading activations
 * through the StaB ping-pong, then verify the *final* activations against
 * the chained reference ops. @p opts.mapping / out_layout apply when a step
 * leaves its own unset; in_layout applies to the first layer's load.
 */
ChainResult runChain(const std::vector<ChainStep> &steps,
                     const RunOptions &opts = {});

namespace detail {

// Per-tier implementations behind sim::Engine (sim/engine.hpp). The public
// runLayer/runChain dispatch on RunOptions::engine; call these only through
// the engine singletons.
RunResult runLayerCycle(const LayerSpec &layer, const RunOptions &opts);
ChainResult runChainCycle(const std::vector<ChainStep> &steps,
                          const RunOptions &opts);
RunResult runLayerAnalytic(const LayerSpec &layer, const RunOptions &opts);
ChainResult runChainAnalytic(const std::vector<ChainStep> &steps,
                             const RunOptions &opts);

} // namespace detail

} // namespace sim
} // namespace feather
