/**
 * @file
 * `feather_cli`: run any registered workload scenario on the FEATHER
 * cycle-level simulator from the command line.
 *
 *   $ ./feather_cli --list
 *   $ ./feather_cli --workload resnet_block --dataflow ws --layout concordant
 */

#include "sim/cli.hpp"

int
main(int argc, char **argv)
{
    return feather::sim::cliMain(argc, argv);
}
