#pragma once

/**
 * @file
 * Command-line front-end of the simulation driver, factored into a library
 * so the flag parser and the run orchestration are unit-testable without
 * spawning the `feather_cli` binary.
 *
 *   feather_cli --workload resnet_block --dataflow ws --layout concordant
 *   feather_cli --list
 */

#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine_mode.hpp"

namespace feather {
namespace sim {

/** Parsed `feather_cli` options. */
struct CliOptions
{
    std::string workload = "quickstart_conv";
    std::string dataflow;              ///< empty = scenario's per-layer choice
    std::string layout = "concordant"; ///< first layer's iAct layout
    int aw = 0;                        ///< 0 = scenario default
    int ah = 0;
    uint64_t seed = 2024;
    /** --engine: cycle (bit-exact replay) or analytic (closed-form). */
    EngineMode engine = EngineMode::Cycle;
    size_t trace = 0; ///< print the first N StaB trace events
    bool list = false;
    bool help = false;
};

/** Result of parsing an argv tail; ok() iff error is empty. */
struct CliParse
{
    CliOptions opts;
    std::string error;

    bool ok() const { return error.empty(); }
};

/**
 * Parse the arguments after argv[0]. Unknown flags, missing values and
 * non-numeric values are rejected with a one-line error.
 */
CliParse parseCli(const std::vector<std::string> &args);

/** Usage text (one screen; printed by --help and on parse errors). */
std::string usage();

/**
 * Full CLI entry point: parse, run the scenario, print per-layer stats and
 * the bit-exactness verdict. Returns 0 on a verified run (or an analytic
 * estimate, which has nothing to verify), 1 on a numeric mismatch, 2 on a
 * usage error.
 */
int cliMain(int argc, const char *const *argv);

} // namespace sim
} // namespace feather
