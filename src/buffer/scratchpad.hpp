#pragma once

/**
 * @file
 * Data-holding buffer models used by the cycle-level simulator.
 *
 * - Scratchpad<T>: logical (num_lines x line_size) buffer with access stats,
 *   used for StrB and baseline accelerators.
 * - BankedScratchpad<T>: FEATHER's StaB organization (§III-C1): AW banks
 *   side-by-side, each one word wide, with *independent per-bank write
 *   addresses* — the property BIRRD exploits to materialise a new layout
 *   during reduction (slot == bank, line == address within bank).
 * - PingPong<B>: double-buffer wrapper for StaB/StrB latency hiding and
 *   inter-layer pipelining.
 */

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "buffer/spec.hpp"
#include "common/log.hpp"
#include "layout/layout.hpp"

namespace feather {

/** Logical 2D buffer that actually stores words. */
template <typename T>
class Scratchpad
{
  public:
    Scratchpad() = default;

    explicit Scratchpad(BufferSpec spec, T fill = T{})
        : spec_(spec),
          data_(size_t(spec.num_lines * spec.line_size), fill)
    {
    }

    const BufferSpec &spec() const { return spec_; }

    T
    read(int64_t line, int64_t slot)
    {
        checkAddr(line, slot);
        ++stats_.word_reads;
        return data_[size_t(line * spec_.line_size + slot)];
    }

    void
    write(int64_t line, int64_t slot, T value)
    {
        checkAddr(line, slot);
        ++stats_.word_writes;
        data_[size_t(line * spec_.line_size + slot)] = value;
    }

    /** Peek without counting an access (for test assertions / dumps). */
    T
    peek(int64_t line, int64_t slot) const
    {
        checkAddr(line, slot);
        return data_[size_t(line * spec_.line_size + slot)];
    }

    /** Charge a multi-line read access and return its stall cycles. */
    int64_t
    chargeReadAccess(const std::vector<int64_t> &lines)
    {
        stats_.line_reads += int64_t(lines.size());
        const int64_t cycles = readConflictCycles(spec_, lines);
        stats_.conflict_stall_cycles += cycles - 1;
        return cycles;
    }

    AccessStats &stats() { return stats_; }
    const AccessStats &stats() const { return stats_; }

  private:
    void
    checkAddr(int64_t line, int64_t slot) const
    {
        FEATHER_CHECK(line >= 0 && line < spec_.num_lines, "line ", line,
                      " out of range (", spec_.num_lines, ")");
        FEATHER_CHECK(slot >= 0 && slot < spec_.line_size, "slot ", slot,
                      " out of range (", spec_.line_size, ")");
    }

    BufferSpec spec_;
    std::vector<T> data_;
    AccessStats stats_;
};

/**
 * FEATHER StaB: @ref numBanks() banks of one word width, each @ref depth()
 * entries deep, with independent addressing per bank.
 */
template <typename T>
class BankedScratchpad
{
  public:
    BankedScratchpad() = default;

    BankedScratchpad(int64_t num_banks, int64_t depth, T fill = T{})
        : num_banks_(num_banks), depth_(depth),
          data_(size_t(num_banks * depth), fill)
    {
    }

    int64_t numBanks() const { return num_banks_; }
    int64_t depth() const { return depth_; }

    T
    read(int64_t bank, int64_t addr)
    {
        checkAddr(bank, addr);
        ++stats_.word_reads;
        return data_[size_t(bank * depth_ + addr)];
    }

    void
    write(int64_t bank, int64_t addr, T value)
    {
        checkAddr(bank, addr);
        ++stats_.word_writes;
        data_[size_t(bank * depth_ + addr)] = value;
    }

    T
    peek(int64_t bank, int64_t addr) const
    {
        checkAddr(bank, addr);
        return data_[size_t(bank * depth_ + addr)];
    }

    /**
     * Write @p n contiguous words into one bank starting at @p addr — the
     * bulk DMA path for host loads: one bounds check, one memcpy-able copy,
     * and the same per-word access accounting as n write() calls.
     */
    void
    writeRange(int64_t bank, int64_t addr, const T *src, int64_t n)
    {
        if (n <= 0) return;
        checkAddr(bank, addr);
        checkAddr(bank, addr + n - 1);
        stats_.word_writes += n;
        std::copy(src, src + n, data_.begin() + ptrdiff_t(bank * depth_ + addr));
    }

    /** Bulk peek of @p n contiguous words of one bank (no access stats,
     *  matching peek()). */
    void
    peekRange(int64_t bank, int64_t addr, T *dst, int64_t n) const
    {
        if (n <= 0) return;
        checkAddr(bank, addr);
        checkAddr(bank, addr + n - 1);
        const auto at = data_.begin() + ptrdiff_t(bank * depth_ + addr);
        std::copy(at, at + ptrdiff_t(n), dst);
    }

    /**
     * Load a tensor into the scratchpad under @p bl: element coords map to
     * (line -> address, slot -> bank). The value provider @p get is called
     * with each element coordinate.
     */
    template <typename GetFn>
    void
    loadWithLayout(const BoundLayout &bl, GetFn get)
    {
        FEATHER_CHECK(bl.lineSize() <= num_banks_,
                      "layout line size ", bl.lineSize(),
                      " exceeds bank count ", num_banks_);
        FEATHER_CHECK(bl.numLines() <= depth_, "layout needs ",
                      bl.numLines(), " lines, scratchpad depth ", depth_);
        for (int64_t line = 0; line < bl.numLines(); ++line) {
            for (int64_t slot = 0; slot < bl.lineSize(); ++slot) {
                const Coord c = bl.coordAt({line, slot});
                write(slot, line, get(c));
            }
        }
    }

    AccessStats &stats() { return stats_; }
    const AccessStats &stats() const { return stats_; }

  private:
    void
    checkAddr(int64_t bank, int64_t addr) const
    {
        FEATHER_CHECK(bank >= 0 && bank < num_banks_, "bank ", bank,
                      " out of range (", num_banks_, ")");
        FEATHER_CHECK(addr >= 0 && addr < depth_, "addr ", addr,
                      " out of range (", depth_, ")");
    }

    int64_t num_banks_ = 0;
    int64_t depth_ = 0;
    std::vector<T> data_;
    AccessStats stats_;
};

/** Ping-pong pair of buffers with an explicit swap. */
template <typename B>
class PingPong
{
  public:
    PingPong() = default;
    PingPong(B ping, B pong)
        : bufs_{std::move(ping), std::move(pong)}
    {
    }

    B &ping() { return bufs_[active_]; }
    B &pong() { return bufs_[1 - active_]; }
    const B &ping() const { return bufs_[active_]; }
    const B &pong() const { return bufs_[1 - active_]; }

    /** Swap roles: the written pong becomes the next layer's ping. */
    void swap() { active_ = 1 - active_; }

    int activeIndex() const { return active_; }

  private:
    B bufs_[2];
    int active_ = 0;
};

} // namespace feather
