#include "buffer/spec.hpp"

#include <algorithm>
#include <unordered_map>

namespace feather {

int64_t
conflictCycles(const BufferSpec &spec, std::vector<int64_t> lines, int ports)
{
    if (lines.empty()) return 0;
    FEATHER_CHECK(ports > 0, "port count must be positive");

    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());

    // Count distinct lines per bank.
    int64_t worst = 1;
    int64_t current_bank = -1;
    int64_t in_bank = 0;
    auto flush = [&]() {
        if (in_bank > 0) {
            const int64_t cycles = (in_bank + ports - 1) / ports;
            worst = std::max(worst, cycles);
        }
    };
    for (int64_t line : lines) {
        const int64_t bank = spec.bankOf(line);
        if (bank != current_bank) {
            flush();
            current_bank = bank;
            in_bank = 0;
        }
        ++in_bank;
    }
    flush();
    return worst;
}

int64_t
readConflictCycles(const BufferSpec &spec, std::vector<int64_t> lines)
{
    return conflictCycles(spec, std::move(lines), spec.read_ports);
}

int64_t
writeConflictCycles(const BufferSpec &spec, std::vector<int64_t> lines)
{
    return conflictCycles(spec, std::move(lines), spec.write_ports);
}

} // namespace feather
