#pragma once

/**
 * @file
 * Physical on-chip storage specification and the bank-conflict model.
 *
 * Per the paper (§II-B, Tab. II, §V-A): a *buffer* is a logical 2D array of
 * (num_lines x line_size) words built from SRAM *banks*; each bank holds
 * `lines_per_bank` consecutive lines (Layoutloop's "conflict_depth") and has
 * a fixed number of read/write ports (TSMC 28nm offers at most two). A
 * cycle that touches NL lines within one bank of NP ports incurs a
 * `max(ceil(NL / NP), 1)` slowdown (§V-B).
 */

#include <cstdint>
#include <vector>

#include "common/log.hpp"

namespace feather {

/** Physical organization of one logical buffer. */
struct BufferSpec
{
    int64_t num_lines = 0;      ///< logical rows
    int64_t line_size = 0;      ///< words per row (per-cycle bandwidth)
    int64_t lines_per_bank = 1; ///< conflict depth: rows per physical bank
    int read_ports = 2;         ///< read ports per bank
    int write_ports = 2;        ///< write ports per bank

    /** Bank index holding @p line. */
    int64_t
    bankOf(int64_t line) const
    {
        return line / lines_per_bank;
    }

    /** Number of physical banks (vertical stacking). */
    int64_t
    numBanks() const
    {
        return (num_lines + lines_per_bank - 1) / lines_per_bank;
    }

    int64_t capacityWords() const { return num_lines * line_size; }
};

/**
 * Cycles needed to read the given set of distinct lines in one logical
 * access, under per-bank port limits: max over banks of
 * ceil(lines_in_bank / ports), at least 1.
 *
 * @param spec   buffer organization
 * @param lines  distinct line indices touched this cycle (need not be sorted)
 * @param ports  port count to use (read or write ports)
 */
int64_t conflictCycles(const BufferSpec &spec, std::vector<int64_t> lines,
                       int ports);

/** Convenience wrappers for read and write port counts. */
int64_t readConflictCycles(const BufferSpec &spec,
                           std::vector<int64_t> lines);
int64_t writeConflictCycles(const BufferSpec &spec,
                            std::vector<int64_t> lines);

/** Running access statistics for one buffer. */
struct AccessStats
{
    int64_t word_reads = 0;
    int64_t word_writes = 0;
    int64_t line_reads = 0;      ///< distinct (cycle, line) read activations
    int64_t line_writes = 0;
    int64_t conflict_stall_cycles = 0;

    void
    merge(const AccessStats &o)
    {
        word_reads += o.word_reads;
        word_writes += o.word_writes;
        line_reads += o.line_reads;
        line_writes += o.line_writes;
        conflict_stall_cycles += o.conflict_stall_cycles;
    }
};

} // namespace feather
