#pragma once

/**
 * @file
 * Fixed-dataflow weight-stationary systolic array analysis, used by the
 * Fig. 4 walkthrough (memory efficiency / compute utilization of
 * (workload, dataflow, layout) combinations on a 4x4 SA) and the Fig. 10
 * comparison (SA vs FEATHER on irregular GEMMs).
 */

#include <string>
#include <vector>

#include "buffer/spec.hpp"
#include "dataflow/access_pattern.hpp"
#include "layout/layout.hpp"
#include "workload/shapes.hpp"

namespace feather {

/** One row of a Fig. 4-style per-cycle table. */
struct SaCycleRow
{
    int64_t cycle = 0;
    std::string iacts;     ///< "H0W0C0:3"-style description
    std::string lines;     ///< accessed line indices
    int64_t access_cycles = 1; ///< >= 1; 2 means the paper's "0.5 slowdown"
    double theoretical_util = 0.0;
    double practical_util = 0.0;
};

/** Whole-table analysis result. */
struct SaAnalysis
{
    std::vector<SaCycleRow> rows;
    double avg_slowdown = 1.0;      ///< mean access cycles per cycle
    double theoretical_util = 0.0;  ///< spatial occupancy
    double practical_util = 0.0;    ///< occupancy / slowdown
    double lines_per_cycle = 0.0;   ///< memory efficiency metric
};

/**
 * Reproduce a Fig. 4 mapping table: walk the first @p num_cycles access
 * cycles of (layer, mapping) under @p layout and record which iActs are
 * required, which buffer lines they hit, and the resulting slowdown on a
 * dual-port SA input buffer.
 */
SaAnalysis analyzeSaMapping(const LayerSpec &layer, const Mapping &mapping,
                            const BoundLayout &layout,
                            const BufferSpec &buffer, int num_cycles);

/**
 * Steady-state utilization of a rows x cols weight-stationary systolic
 * array on a GEMM (weights K x N stationary, K along rows, N along
 * columns, M streaming) — the SA side of Fig. 10.
 */
double saGemmUtilization(const GemmShape &g, int rows, int cols);

} // namespace feather
