#include "baselines/arch_zoo.hpp"

#include "common/bits.hpp"
#include "common/log.hpp"

namespace feather {

namespace {

std::vector<Layout>
layoutSpace(WorkloadKind kind)
{
    return kind == WorkloadKind::Conv ? convLayoutSpace() : gemmLayoutSpace();
}

Layout
namedLayout(WorkloadKind kind, const char *name)
{
    for (const Layout &l : layoutSpace(kind)) {
        if (l.toString() == name) return l;
    }
    fatal(strCat("layout '", name, "' is not in the paper's space"));
}

/** Default fixed layout per family: HWC_C32 (conv) / MK_K32 (GEMM). */
Layout
defaultFixedLayout(WorkloadKind kind)
{
    return namedLayout(kind, kind == WorkloadKind::Conv ? "HWC_C32"
                                                        : "MK_K32");
}

ArchSpec
base16x16(WorkloadKind kind)
{
    ArchSpec a;
    a.pe_rows = 16;
    a.pe_cols = 16;
    a.freq_ghz = 1.0;
    a.iact_buffer = defaultIactBuffer();
    a.layouts = {defaultFixedLayout(kind)};
    return a;
}

} // namespace

BufferSpec
defaultIactBuffer()
{
    // 512 lines x 32 words; 8 lines per physical bank; TSMC dual-port.
    BufferSpec b;
    b.num_lines = 512;
    b.line_size = 32;
    b.lines_per_bank = 8;
    b.read_ports = 2;
    b.write_ports = 2;
    return b;
}

ArchSpec
nvdlaLike(WorkloadKind kind)
{
    ArchSpec a = base16x16(kind);
    a.name = "NVDLA-like";
    a.flex = {true, false, false, false,
              kind == WorkloadKind::Conv
                  ? std::vector<ParallelDim>{{Dim::C, 16}, {Dim::M, 16}}
                  : std::vector<ParallelDim>{{Dim::K, 16}, {Dim::N, 16}}};
    a.reorder = ReorderCapability::None;
    a.noc_hops_per_word = 1.0; // rigid multiplier-accumulator chains
    return a;
}

ArchSpec
eyerissLike(WorkloadKind kind)
{
    ArchSpec a = base16x16(kind);
    a.name = "Eyeriss-like";
    // Row-stationary: filters x output rows with a regroupable virtual
    // shape (TS) — the PE sets processing filter rows fold into these two
    // macroscopic parallel dims.
    a.flex = {true, false, false, true,
              kind == WorkloadKind::Conv
                  ? std::vector<ParallelDim>{{Dim::M, 16}, {Dim::P, 16}}
                  : std::vector<ParallelDim>{{Dim::K, 16}, {Dim::M, 16}}};
    a.reorder = ReorderCapability::None;
    a.noc_hops_per_word = 1.5; // X/Y bus delivery
    return a;
}

ArchSpec
sigmaLikeFixed(WorkloadKind kind, const char *layout_name)
{
    ArchSpec a = base16x16(kind);
    a.name = strCat("SIGMA-like (", layout_name, ")");
    a.flex = {true, true, true, true, {}};
    a.reorder = ReorderCapability::None;
    a.layouts = {namedLayout(kind, layout_name)};
    // Benes distribution + FAN reduction: log-depth traversals both ways.
    a.noc_hops_per_word = 16.0;
    return a;
}

ArchSpec
sigmaLikeOffChip(WorkloadKind kind)
{
    ArchSpec a = base16x16(kind);
    a.name = "SIGMA-like (off-chip reorder)";
    a.flex = {true, true, true, true, {}};
    a.reorder = ReorderCapability::OffChip;
    a.layouts = layoutSpace(kind);
    a.offchip_bytes_per_cycle = 128.0; // 128 GB/s HBM at 1 GHz
    a.noc_hops_per_word = 16.0;
    return a;
}

ArchSpec
medusaLike(WorkloadKind kind)
{
    ArchSpec a = base16x16(kind);
    a.name = "Medusa-like";
    a.flex = {true, true, true, true, {}};
    a.reorder = ReorderCapability::LineRotation;
    a.noc_hops_per_word = 16.0;
    return a;
}

ArchSpec
mtiaLike(WorkloadKind kind)
{
    ArchSpec a = base16x16(kind);
    a.name = "MTIA-like";
    // MTIA exposes T,O,P (no shape regrouping, §Tab. IV).
    a.flex = {true, true, true, false, {}};
    a.reorder = ReorderCapability::Transpose;
    a.noc_hops_per_word = 4.0;
    return a;
}

ArchSpec
tpuLike(WorkloadKind kind)
{
    ArchSpec a = base16x16(kind);
    a.name = "TPU-like";
    // TPUv4: T,O only — systolic parallelism is fixed to the array dims.
    a.flex = {true, true, false, false,
              kind == WorkloadKind::Conv
                  ? std::vector<ParallelDim>{{Dim::C, 16}, {Dim::M, 16}}
                  : std::vector<ParallelDim>{{Dim::K, 16}, {Dim::N, 16}}};
    a.reorder = ReorderCapability::TransposeRowReorder;
    a.systolic_fill_drain = true;
    a.noc_hops_per_word = 2.0;
    return a;
}

ArchSpec
featherArch(WorkloadKind kind)
{
    return featherArch(kind, 16, 16);
}

ArchSpec
featherArch(WorkloadKind kind, int pe_cols, int pe_rows)
{
    ArchSpec a = base16x16(kind);
    a.name = "FEATHER";
    a.pe_cols = pe_cols;
    a.pe_rows = pe_rows;
    a.flex = {true, true, true, true, {}};
    a.reorder = ReorderCapability::Rir;
    a.layouts = layoutSpace(kind);
    // BIRRD is 2*log2(AW) stages deep; distribution is point-to-point.
    a.noc_hops_per_word = 2.0 * double(log2Ceil(uint64_t(pe_cols)));
    return a;
}

ArchSpec
gemminiLike()
{
    ArchSpec a = base16x16(WorkloadKind::Conv);
    a.name = "Gemmini-like";
    a.flex = {true, false, false, false,
              {{Dim::C, 16}, {Dim::M, 16}}};
    a.reorder = ReorderCapability::None;
    a.systolic_fill_drain = true;
    a.noc_hops_per_word = 1.0;
    return a;
}

ArchSpec
xilinxDpuLike()
{
    ArchSpec a = base16x16(WorkloadKind::Conv);
    a.name = "Xilinx-DPU-like";
    a.pe_cols = 12;
    a.pe_rows = 96; // 12 x (12 x 8) = 1152 PEs
    a.flex = {true, false, false, false,
              {{Dim::M, 12}, {Dim::C, 12}, {Dim::Q, 8}}};
    a.reorder = ReorderCapability::None;
    a.noc_hops_per_word = 1.0;
    return a;
}

ArchSpec
edgeTpuLike()
{
    ArchSpec a = base16x16(WorkloadKind::Conv);
    a.name = "EdgeTPU-like";
    a.pe_cols = 64;
    a.pe_rows = 16; // 1024 PEs
    a.flex = {true, false, false, false,
              {{Dim::C, 64}, {Dim::M, 16}}};
    a.reorder = ReorderCapability::None;
    a.systolic_fill_drain = true;
    a.noc_hops_per_word = 1.0;
    return a;
}

std::vector<ArchSpec>
fig13DesignPoints(WorkloadKind kind)
{
    std::vector<ArchSpec> designs;
    designs.push_back(nvdlaLike(kind));
    designs.push_back(eyerissLike(kind));
    if (kind == WorkloadKind::Conv) {
        designs.push_back(sigmaLikeFixed(kind, "HWC_C32"));
        designs.push_back(sigmaLikeFixed(kind, "HWC_C4W8"));
    } else {
        designs.push_back(sigmaLikeFixed(kind, "MK_K32"));
    }
    designs.push_back(sigmaLikeOffChip(kind));
    designs.push_back(medusaLike(kind));
    designs.push_back(mtiaLike(kind));
    designs.push_back(tpuLike(kind));
    designs.push_back(featherArch(kind));
    return designs;
}

} // namespace feather
