#include "baselines/arch_zoo.hpp"

#include "common/bits.hpp"
#include "common/log.hpp"

namespace feather {

namespace {

std::vector<Layout>
layoutSpace(WorkloadKind kind)
{
    return kind == WorkloadKind::Conv ? convLayoutSpace() : gemmLayoutSpace();
}

Layout
namedLayout(WorkloadKind kind, const char *name)
{
    for (const Layout &l : layoutSpace(kind)) {
        if (l.toString() == name) return l;
    }
    fatal(strCat("layout '", name, "' is not in the paper's space"));
}

/** Default fixed layout per family: HWC_C32 (conv) / MK_K32 (GEMM). */
Layout
defaultFixedLayout(WorkloadKind kind)
{
    return namedLayout(kind, kind == WorkloadKind::Conv ? "HWC_C32"
                                                        : "MK_K32");
}

ArchSpec
base16x16(WorkloadKind kind)
{
    ArchSpec a;
    a.pe_rows = 16;
    a.pe_cols = 16;
    a.freq_ghz = 1.0;
    a.iact_buffer = defaultIactBuffer();
    a.layouts = {defaultFixedLayout(kind)};
    return a;
}

// The actual design-point builders. The registry points at these; the
// classic factory functions are thin wrappers over registry lookup.

ArchSpec
makeNvdlaLike(WorkloadKind kind)
{
    ArchSpec a = base16x16(kind);
    a.name = "NVDLA-like";
    a.flex = {true, false, false, false,
              kind == WorkloadKind::Conv
                  ? std::vector<ParallelDim>{{Dim::C, 16}, {Dim::M, 16}}
                  : std::vector<ParallelDim>{{Dim::K, 16}, {Dim::N, 16}}};
    a.reorder = ReorderCapability::None;
    a.noc_hops_per_word = 1.0; // rigid multiplier-accumulator chains
    return a;
}

ArchSpec
makeEyerissLike(WorkloadKind kind)
{
    ArchSpec a = base16x16(kind);
    a.name = "Eyeriss-like";
    // Row-stationary: filters x output rows with a regroupable virtual
    // shape (TS) — the PE sets processing filter rows fold into these two
    // macroscopic parallel dims.
    a.flex = {true, false, false, true,
              kind == WorkloadKind::Conv
                  ? std::vector<ParallelDim>{{Dim::M, 16}, {Dim::P, 16}}
                  : std::vector<ParallelDim>{{Dim::K, 16}, {Dim::M, 16}}};
    a.reorder = ReorderCapability::None;
    a.noc_hops_per_word = 1.5; // X/Y bus delivery
    return a;
}

ArchSpec
makeSigmaLikeFixed(WorkloadKind kind, const char *layout_name)
{
    ArchSpec a = base16x16(kind);
    a.name = strCat("SIGMA-like (", layout_name, ")");
    a.flex = {true, true, true, true, {}};
    a.reorder = ReorderCapability::None;
    a.layouts = {namedLayout(kind, layout_name)};
    // Benes distribution + FAN reduction: log-depth traversals both ways.
    a.noc_hops_per_word = 16.0;
    return a;
}

/** The registry's "sigma-fixed" point: the default layout per family. */
ArchSpec
makeSigmaLikeFixedDefault(WorkloadKind kind)
{
    return makeSigmaLikeFixed(kind, kind == WorkloadKind::Conv ? "HWC_C32"
                                                               : "MK_K32");
}

ArchSpec
makeSigmaLikeOffChip(WorkloadKind kind)
{
    ArchSpec a = base16x16(kind);
    a.name = "SIGMA-like (off-chip reorder)";
    a.flex = {true, true, true, true, {}};
    a.reorder = ReorderCapability::OffChip;
    a.layouts = layoutSpace(kind);
    a.offchip_bytes_per_cycle = 128.0; // 128 GB/s HBM at 1 GHz
    a.noc_hops_per_word = 16.0;
    return a;
}

ArchSpec
makeMedusaLike(WorkloadKind kind)
{
    ArchSpec a = base16x16(kind);
    a.name = "Medusa-like";
    a.flex = {true, true, true, true, {}};
    a.reorder = ReorderCapability::LineRotation;
    a.noc_hops_per_word = 16.0;
    return a;
}

ArchSpec
makeMtiaLike(WorkloadKind kind)
{
    ArchSpec a = base16x16(kind);
    a.name = "MTIA-like";
    // MTIA exposes T,O,P (no shape regrouping, §Tab. IV).
    a.flex = {true, true, true, false, {}};
    a.reorder = ReorderCapability::Transpose;
    a.noc_hops_per_word = 4.0;
    return a;
}

ArchSpec
makeTpuLike(WorkloadKind kind)
{
    ArchSpec a = base16x16(kind);
    a.name = "TPU-like";
    // TPUv4: T,O only — systolic parallelism is fixed to the array dims.
    a.flex = {true, true, false, false,
              kind == WorkloadKind::Conv
                  ? std::vector<ParallelDim>{{Dim::C, 16}, {Dim::M, 16}}
                  : std::vector<ParallelDim>{{Dim::K, 16}, {Dim::N, 16}}};
    a.reorder = ReorderCapability::TransposeRowReorder;
    a.systolic_fill_drain = true;
    a.noc_hops_per_word = 2.0;
    return a;
}

ArchSpec
makeFeatherArch(WorkloadKind kind, int pe_cols, int pe_rows)
{
    ArchSpec a = base16x16(kind);
    a.name = "FEATHER";
    a.pe_cols = pe_cols;
    a.pe_rows = pe_rows;
    a.flex = {true, true, true, true, {}};
    a.reorder = ReorderCapability::Rir;
    a.layouts = layoutSpace(kind);
    // BIRRD is 2*log2(AW) stages deep; distribution is point-to-point.
    a.noc_hops_per_word = 2.0 * double(log2Ceil(uint64_t(pe_cols)));
    return a;
}

ArchSpec
makeFeatherDefault(WorkloadKind kind)
{
    return makeFeatherArch(kind, 16, 16);
}

ArchSpec
makeGemminiLike(WorkloadKind)
{
    ArchSpec a = base16x16(WorkloadKind::Conv);
    a.name = "Gemmini-like";
    a.flex = {true, false, false, false,
              {{Dim::C, 16}, {Dim::M, 16}}};
    a.reorder = ReorderCapability::None;
    a.systolic_fill_drain = true;
    a.noc_hops_per_word = 1.0;
    return a;
}

ArchSpec
makeXilinxDpuLike(WorkloadKind)
{
    ArchSpec a = base16x16(WorkloadKind::Conv);
    a.name = "Xilinx-DPU-like";
    a.pe_cols = 12;
    a.pe_rows = 96; // 12 x (12 x 8) = 1152 PEs
    a.flex = {true, false, false, false,
              {{Dim::M, 12}, {Dim::C, 12}, {Dim::Q, 8}}};
    a.reorder = ReorderCapability::None;
    a.noc_hops_per_word = 1.0;
    return a;
}

ArchSpec
makeEdgeTpuLike(WorkloadKind)
{
    ArchSpec a = base16x16(WorkloadKind::Conv);
    a.name = "EdgeTPU-like";
    a.pe_cols = 64;
    a.pe_rows = 16; // 1024 PEs
    a.flex = {true, false, false, false,
              {{Dim::C, 64}, {Dim::M, 16}}};
    a.reorder = ReorderCapability::None;
    a.systolic_fill_drain = true;
    a.noc_hops_per_word = 1.0;
    return a;
}

} // namespace

BufferSpec
defaultIactBuffer()
{
    // 512 lines x 32 words; 8 lines per physical bank; TSMC dual-port.
    BufferSpec b;
    b.num_lines = 512;
    b.line_size = 32;
    b.lines_per_bank = 8;
    b.read_ports = 2;
    b.write_ports = 2;
    return b;
}

namespace baselines {

ArchZoo::ArchZoo(std::vector<ZooEntry> entries)
    : entries_(std::move(entries))
{
}

const ZooEntry *
ArchZoo::lookup(const std::string &name) const
{
    for (const ZooEntry &e : entries_) {
        if (e.name == name) return &e;
    }
    return nullptr;
}

std::vector<std::string>
ArchZoo::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const ZooEntry &e : entries_) out.push_back(e.name);
    return out;
}

const ArchZoo &
archZoo()
{
    static const ArchZoo zoo({
        {"nvdla-like", "fixed C/M unrolling, no reorder", makeNvdlaLike},
        {"eyeriss-like", "row-stationary with shape regrouping",
         makeEyerissLike},
        {"sigma-fixed", "fully flexible dataflow, one fixed layout",
         makeSigmaLikeFixedDefault},
        {"sigma-offchip", "flexible dataflow, DRAM round-trip reorder",
         makeSigmaLikeOffChip},
        {"medusa-like", "line-rotation on-chip reorder", makeMedusaLike},
        {"mtia-like", "transpose-capable on-chip reorder", makeMtiaLike},
        {"tpu-like", "systolic, transpose + row-reorder", makeTpuLike},
        {"feather", "BIRRD reorder-in-reduction, full layout space",
         makeFeatherDefault},
        {"gemmini-like", "16x16 weight-stationary systolic",
         makeGemminiLike},
        {"xilinx-dpu-like", "1152-PE fixed (M,C,Q) unrolling",
         makeXilinxDpuLike},
        {"edgetpu-like", "1024-PE weight-stationary systolic",
         makeEdgeTpuLike},
    });
    return zoo;
}

} // namespace baselines

namespace {

/** The wrapper contract: the classic factories resolve through the
 *  registry, so a renamed or dropped entry fails loudly in tests. */
ArchSpec
fromZoo(const char *name, WorkloadKind kind)
{
    const baselines::ZooEntry *e = baselines::archZoo().lookup(name);
    FEATHER_CHECK(e != nullptr, strCat("arch zoo entry '", name,
                                       "' vanished from the registry"));
    return e->make(kind);
}

} // namespace

ArchSpec
nvdlaLike(WorkloadKind kind)
{
    return fromZoo("nvdla-like", kind);
}

ArchSpec
eyerissLike(WorkloadKind kind)
{
    return fromZoo("eyeriss-like", kind);
}

ArchSpec
sigmaLikeFixed(WorkloadKind kind, const char *layout_name)
{
    return makeSigmaLikeFixed(kind, layout_name);
}

ArchSpec
sigmaLikeOffChip(WorkloadKind kind)
{
    return fromZoo("sigma-offchip", kind);
}

ArchSpec
medusaLike(WorkloadKind kind)
{
    return fromZoo("medusa-like", kind);
}

ArchSpec
mtiaLike(WorkloadKind kind)
{
    return fromZoo("mtia-like", kind);
}

ArchSpec
tpuLike(WorkloadKind kind)
{
    return fromZoo("tpu-like", kind);
}

ArchSpec
featherArch(WorkloadKind kind)
{
    return fromZoo("feather", kind);
}

ArchSpec
featherArch(WorkloadKind kind, int pe_cols, int pe_rows)
{
    return makeFeatherArch(kind, pe_cols, pe_rows);
}

ArchSpec
gemminiLike()
{
    return fromZoo("gemmini-like", WorkloadKind::Conv);
}

ArchSpec
xilinxDpuLike()
{
    return fromZoo("xilinx-dpu-like", WorkloadKind::Conv);
}

ArchSpec
edgeTpuLike()
{
    return fromZoo("edgetpu-like", WorkloadKind::Conv);
}

std::vector<ArchSpec>
fig13DesignPoints(WorkloadKind kind)
{
    std::vector<ArchSpec> designs;
    designs.push_back(nvdlaLike(kind));
    designs.push_back(eyerissLike(kind));
    if (kind == WorkloadKind::Conv) {
        designs.push_back(sigmaLikeFixed(kind, "HWC_C32"));
        designs.push_back(sigmaLikeFixed(kind, "HWC_C4W8"));
    } else {
        designs.push_back(sigmaLikeFixed(kind, "MK_K32"));
    }
    designs.push_back(sigmaLikeOffChip(kind));
    designs.push_back(medusaLike(kind));
    designs.push_back(mtiaLike(kind));
    designs.push_back(tpuLike(kind));
    designs.push_back(featherArch(kind));
    return designs;
}

} // namespace feather
