#include "baselines/systolic_array.hpp"

#include <algorithm>
#include <map>

#include "common/bits.hpp"
#include "common/log.hpp"

namespace feather {

namespace {

/** Compact "H0W0C0:3" description of a coordinate set. */
std::string
describeCoords(const std::vector<Coord> &coords, bool is_gemm)
{
    if (coords.empty()) return "(padding)";
    auto range = [&](Dim d) {
        int64_t lo = coords.front()[d], hi = lo;
        for (const Coord &c : coords) {
            lo = std::min(lo, c[d]);
            hi = std::max(hi, c[d]);
        }
        if (lo == hi) return strCat(dimName(d), lo);
        return strCat(dimName(d), lo, ":", hi);
    };
    if (is_gemm) {
        return strCat(range(Dim::M), range(Dim::K));
    }
    return strCat(range(Dim::H), range(Dim::W), range(Dim::C));
}

std::string
describeLines(const std::vector<int64_t> &lines)
{
    std::string s;
    for (size_t i = 0; i < lines.size(); ++i) {
        if (i) s += ",";
        s += std::to_string(lines[i]);
        if (i >= 5 && lines.size() > 7) {
            s += strCat(",... (", lines.size(), " lines)");
            break;
        }
    }
    return s.empty() ? "-" : s;
}

} // namespace

SaAnalysis
analyzeSaMapping(const LayerSpec &layer, const Mapping &mapping,
                 const BoundLayout &layout, const BufferSpec &buffer,
                 int num_cycles)
{
    SaAnalysis out;
    const Extents ext = layer.type == OpType::Gemm
                            ? gemmExtents(layer.gemm)
                            : convExtents(layer.conv);
    out.theoretical_util = spatialOccupancy(mapping.spatial(), ext);

    // Sample extra bases: fully-padded cycles (halo positions with no live
    // taps) do not appear in the paper's tables, so only live access
    // cycles count.
    // Heavily padded stems (e.g. 7x7/2 with pad 3) need many temporal
    // steps before the first live tap enters the window.
    const auto bases = sampleTemporalBases(layer, mapping, 128 * num_cycles);
    double slow_sum = 0.0;
    double lines_sum = 0.0;
    int64_t counted = 0;
    for (const Coord &base : bases) {
        if (counted >= num_cycles) break;
        const auto coords =
            concurrentIactCoords(layer, mapping.spatial(), base);
        if (coords.empty()) continue;
        SaCycleRow row;
        row.cycle = counted;
        row.iacts = describeCoords(coords, layer.type == OpType::Gemm);
        const auto lines = linesTouched(layout, coords);
        row.lines = describeLines(lines);
        row.access_cycles =
            conflictCycles(buffer, lines, buffer.read_ports);
        row.theoretical_util = out.theoretical_util;
        row.practical_util =
            out.theoretical_util / double(row.access_cycles);
        out.rows.push_back(row);
        slow_sum += double(row.access_cycles);
        lines_sum += double(lines.size());
        ++counted;
    }
    if (counted > 0) {
        out.avg_slowdown = slow_sum / double(counted);
        out.lines_per_cycle = lines_sum / double(counted);
    }
    out.practical_util = out.theoretical_util / out.avg_slowdown;
    return out;
}

double
saGemmUtilization(const GemmShape &g, int rows, int cols)
{
    // Weight-stationary: K folds onto the rows, N onto the columns; the
    // array is refilled ceil(K/rows) * ceil(N/cols) times and each fill
    // streams all M rows. Utilization is the average occupancy of the
    // stationary tiles.
    const int64_t k_tiles = ceilDiv<int64_t>(g.k, rows);
    const int64_t n_tiles = ceilDiv<int64_t>(g.n, cols);
    const double k_occ = double(g.k) / double(k_tiles * rows);
    const double n_occ = double(g.n) / double(n_tiles * cols);
    return k_occ * n_occ;
}

} // namespace feather
