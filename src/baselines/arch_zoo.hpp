#pragma once

/**
 * @file
 * The design points of the paper's evaluation (Tab. IV), expressed as
 * Layoutloop ArchSpecs:
 *
 *  real-device comparisons (Fig. 12): Gemmini-like, Xilinx-DPU-like,
 *  Edge-TPU-like — all fixed-dataflow (T-only) weight-stationary designs;
 *
 *  Layoutloop comparisons (Fig. 13): NVDLA-like, Eyeriss-like, SIGMA-like
 *  under two fixed layouts / off-chip reordering / line rotation
 *  (Medusa-like) / transpose (MTIA-like) / transpose+row-reorder
 *  (TPU-like), and FEATHER with RIR.
 *
 * All Layoutloop design points share the same 16x16 int8 PE budget and the
 * same physical buffer organization so differences come from dataflow
 * flexibility, layout policy, and reorder capability — mirroring the
 * paper's normalization.
 */

#include <string>
#include <vector>

#include "layoutloop/arch_spec.hpp"

namespace feather {

/** Workload family: selects the layout vocabulary (§VI-A2 footnote 4). */
enum class WorkloadKind { Conv, Gemm };

/** Shared 16x16 buffer organization for the Layoutloop design points. */
BufferSpec defaultIactBuffer();

namespace baselines {

/** One named design point of the registry. */
struct ZooEntry
{
    std::string name;    ///< registry key, e.g. "tpu-like"
    std::string summary; ///< one-line description
    ArchSpec (*make)(WorkloadKind kind);
};

/**
 * String-keyed registry over the arch zoo, so design points are
 * addressable by name from CLI surfaces (`--fleet tpu-like,...`). The
 * classic factory functions below remain as thin wrappers over lookup().
 */
class ArchZoo
{
  public:
    explicit ArchZoo(std::vector<ZooEntry> entries);

    /** The entry named @p name, or nullptr (names are exact, e.g.
     *  "nvdla-like"). */
    const ZooEntry *lookup(const std::string &name) const;

    /** Every registered name, in registration order. */
    std::vector<std::string> names() const;

    const std::vector<ZooEntry> &entries() const { return entries_; }

  private:
    std::vector<ZooEntry> entries_;
};

/** The process-wide registry (immutable after construction). */
const ArchZoo &archZoo();

} // namespace baselines

// --- Fig. 13 design points (16x16 PEs) ---
ArchSpec nvdlaLike(WorkloadKind kind);
ArchSpec eyerissLike(WorkloadKind kind);
/** SIGMA with a runtime-fixed layout (named entry of the layout space). */
ArchSpec sigmaLikeFixed(WorkloadKind kind, const char *layout_name);
ArchSpec sigmaLikeOffChip(WorkloadKind kind);
ArchSpec medusaLike(WorkloadKind kind);
ArchSpec mtiaLike(WorkloadKind kind);
ArchSpec tpuLike(WorkloadKind kind);
ArchSpec featherArch(WorkloadKind kind);
ArchSpec featherArch(WorkloadKind kind, int pe_cols, int pe_rows);

// --- Fig. 12 real-device models (fixed dataflows from the paper) ---
/** Gemmini: 16x16 weight-stationary, C16 x M16. */
ArchSpec gemminiLike();
/** Xilinx DPU: 1152 PEs, parallelism (M,C,H/W) = (12,12,8). */
ArchSpec xilinxDpuLike();
/** Edge TPU: 1024 PEs, weight-stationary 2D array. */
ArchSpec edgeTpuLike();

/** All Fig. 13 design points for a workload kind, in the paper's order. */
std::vector<ArchSpec> fig13DesignPoints(WorkloadKind kind);

} // namespace feather
