#pragma once

/**
 * @file
 * Model-mode front-end of `feather_cli`: schedule a whole model graph
 * with per-layer dataflow/layout switching and report the result.
 *
 *   feather_cli --model resnet_block --schedule per-layer
 *   feather_cli --model nets/edge.model --schedule fixed:ws --jobs 8
 *   feather_cli --model bert_mlp --fleet feather:16x16,tpu-like
 *   feather_cli --list-models
 */

#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine_mode.hpp"

namespace feather {
namespace model {

/** Parsed model-mode options. */
struct ModelCliOptions
{
    std::string model;                 ///< built-in name or model file path
    std::string schedule = "per-layer";
    /** --fleet SPEC|FILE: split the graph across a device fleet (adds a
     *  device column to reports and pinned:<dev> ranking rows). */
    std::string fleet;
    int aw = 0; ///< 0 = graph default
    int ah = 0;
    uint64_t seed = 2024;
    int jobs = 1; ///< candidate-evaluation worker threads
    /** --engine: tier for candidate evaluation (measurement stays cycle). */
    sim::EngineMode engine = sim::EngineMode::Cycle;
    std::string report_csv;
    std::string report_json;
    bool list_models = false;
    bool help = false;
};

/** Result of parsing an argv tail; ok() iff error is empty. */
struct ModelCliParse
{
    ModelCliOptions opts;
    std::string error;

    bool ok() const { return error.empty(); }
};

/** @return true when @p args selects model mode (--model/--schedule/
 *  --list-models). */
bool isModelInvocation(const std::vector<std::string> &args);

/** Parse the arguments after argv[0]. */
ModelCliParse parseModelCli(const std::vector<std::string> &args);

/**
 * Full model-mode entry point: load the graph, schedule it, print the
 * per-layer choices and the schedule ranking. Returns 0 on a verified
 * run, 1 on a numeric mismatch, 2 on a usage error.
 */
int cliMain(int argc, const char *const *argv);

} // namespace model
} // namespace feather
