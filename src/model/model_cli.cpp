#include "model/model_cli.hpp"

#include <cstdio>

#include "common/io.hpp"
#include "common/options.hpp"
#include "common/parse.hpp"
#include "common/table.hpp"
#include "model/fleet.hpp"
#include "model/report.hpp"
#include "sim/cli.hpp"

namespace feather {
namespace model {

bool
isModelInvocation(const std::vector<std::string> &args)
{
    for (const std::string &arg : args) {
        if (arg == "--model" || arg == "--schedule" ||
            arg == "--list-models") {
            return true;
        }
    }
    return false;
}

ModelCliParse
parseModelCli(const std::vector<std::string> &args)
{
    ModelCliParse parse;
    ModelCliOptions &o = parse.opts;
    OptionTable t;
    t.unknownSuffix(" in model mode (--model runs accept --schedule, "
                    "--fleet, --aw, --ah, --seed, --jobs, --engine, "
                    "--report-csv, --report-json)");
    t.str("--model", "NAME|FILE",
          "schedule a built-in model graph or a model\nfile", &o.model);
    t.str("--schedule", "S",
          "per-layer, greedy, fixed:<ws|cp|wp>, or\npinned:<device> "
          "(default: per-layer)",
          &o.schedule);
    t.str("--fleet", "SPEC|F",
          "split the graph across a device fleet\n"
          "(e.g. feather:16x16,feather:32x32,tpu-like)",
          &o.fleet);
    t.positiveInt("--aw", "N", "array width (default: model's)", &o.aw,
                  65536);
    t.positiveInt("--ah", "N", "array height (default: model's)", &o.ah,
                  65536);
    t.nonNegative("--seed", "N", "RNG seed for inputs (default: 2024)",
                  &o.seed);
    t.positiveInt("--jobs", "N", "candidate-evaluation worker threads",
                  &o.jobs, 256);
    t.custom("--engine", "MODE",
             "candidate-evaluation tier; the final chosen\n"
             "schedule is always measured cycle-accurately",
             [&o](const std::string &v) {
                 const std::optional<sim::EngineMode> mode =
                     sim::parseEngineMode(v);
                 if (!mode) {
                     return OptionTable::invalidValue(
                         "--engine", v, "cycle or analytic");
                 }
                 o.engine = *mode;
                 return std::string();
             });
    t.str("--report-csv", "F", "write the schedule report as CSV to F",
          &o.report_csv);
    t.str("--report-json", "F",
          "write the schedule report as JSON to F", &o.report_json);
    t.flag("--list-models", "list the built-in model graphs and exit",
           &o.list_models);
    t.flag("--help", "show this text", &o.help);
    if (!t.parse(args, &parse.error)) return parse;
    if (!o.help && !o.list_models && o.model.empty()) {
        parse.error = "model mode needs --model NAME|FILE "
                      "(see --list-models)";
    }
    return parse;
}

int
cliMain(int argc, const char *const *argv)
{
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);

    const ModelCliParse parse = parseModelCli(args);
    if (!parse.ok()) {
        std::fprintf(stderr, "error: %s\n\n%s", parse.error.c_str(),
                     sim::usage().c_str());
        return 2;
    }
    const ModelCliOptions &o = parse.opts;
    if (o.help) {
        std::printf("%s", sim::usage().c_str());
        return 0;
    }
    if (o.list_models) {
        Table t({"model", "layers", "array", "macs", "summary"});
        for (const ModelGraph &g : builtinModels()) {
            t.addRow({g.name, std::to_string(g.layers.size()),
                      strCat(g.default_aw, "x", g.default_ah),
                      std::to_string(g.totalMacs()), g.summary});
        }
        std::printf("%s", t.toString().c_str());
        return 0;
    }

    std::string error;
    const std::optional<ModelGraph> graph = loadModel(o.model, &error);
    if (!graph) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 2;
    }
    const std::optional<SchedulePolicy> policy =
        parseSchedule(o.schedule, &error);
    if (!policy) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 2;
    }

    SchedulerOptions sopts;
    sopts.aw = o.aw;
    sopts.ah = o.ah;
    sopts.seed = o.seed;
    sopts.num_threads = o.jobs;
    sopts.engine = o.engine;
    if (!o.fleet.empty() &&
        !parseFleetSpec(o.fleet, &sopts.fleet, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 2;
    }
    Scheduler scheduler(sopts);
    const std::optional<ScheduleComparison> cmp =
        scheduler.compare(*graph, *policy, &error);
    if (!cmp) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 2;
    }

    ScheduleReport report{*cmp};
    if (sopts.fleet.enabled()) {
        std::printf("model %s over fleet [%s] (schedule %s, seed %llu, "
                    "%d worker thread(s))\n",
                    graph->name.c_str(), sopts.fleet.spec.c_str(),
                    o.schedule.c_str(), (unsigned long long)o.seed,
                    o.jobs);
    } else {
        std::printf("model %s on %dx%d FEATHER (schedule %s, seed %llu, "
                    "%d worker thread(s))\n",
                    graph->name.c_str(), report.comparison.primary().aw,
                    report.comparison.primary().ah, o.schedule.c_str(),
                    (unsigned long long)o.seed, o.jobs);
    }
    std::printf("%s", report.layerTable().c_str());
    std::printf("schedule ranking (* = selected):\n%s",
                report.comparisonTable().c_str());
    std::printf("%s", report.summaryLine().c_str());

    if (!o.report_csv.empty() &&
        !writeFile(o.report_csv, report.toCsv())) {
        std::fprintf(stderr, "error: cannot write '%s'\n",
                     o.report_csv.c_str());
        return 2;
    }
    if (!o.report_json.empty() &&
        !writeFile(o.report_json, report.toJson())) {
        std::fprintf(stderr, "error: cannot write '%s'\n",
                     o.report_json.c_str());
        return 2;
    }
    return report.comparison.primary().bitExact() ? 0 : 1;
}

} // namespace model
} // namespace feather
