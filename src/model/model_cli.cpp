#include "model/model_cli.hpp"

#include <cstdio>

#include "common/io.hpp"
#include "common/parse.hpp"
#include "common/table.hpp"
#include "model/report.hpp"
#include "sim/cli.hpp"

namespace feather {
namespace model {

bool
isModelInvocation(const std::vector<std::string> &args)
{
    for (const std::string &arg : args) {
        if (arg == "--model" || arg == "--schedule" ||
            arg == "--list-models") {
            return true;
        }
    }
    return false;
}

ModelCliParse
parseModelCli(const std::vector<std::string> &args)
{
    ModelCliParse parse;
    ModelCliOptions &o = parse.opts;
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        const auto value = [&](std::string *out) {
            if (i + 1 >= args.size()) {
                parse.error = arg + " needs a value";
                return false;
            }
            *out = args[++i];
            return true;
        };
        const auto uintValue = [&](uint64_t *out) {
            std::string text;
            if (!value(&text)) return false;
            if (!parseUint(text, out)) {
                parse.error = arg + " needs a non-negative integer, got '" +
                              text + "'";
                return false;
            }
            return true;
        };

        uint64_t n = 0;
        if (arg == "--model") {
            if (!value(&o.model)) return parse;
        } else if (arg == "--schedule") {
            if (!value(&o.schedule)) return parse;
        } else if (arg == "--aw" || arg == "--ah") {
            if (!uintValue(&n)) return parse;
            if (n < 1 || n > 65536) {
                parse.error = arg + " must be in [1, 65536], got " +
                              std::to_string(n);
                return parse;
            }
            (arg == "--aw" ? o.aw : o.ah) = int(n);
        } else if (arg == "--seed") {
            if (!uintValue(&o.seed)) return parse;
        } else if (arg == "--jobs") {
            if (!uintValue(&n)) return parse;
            if (n < 1 || n > 256) {
                parse.error = "--jobs must be in [1, 256], got " +
                              std::to_string(n);
                return parse;
            }
            o.jobs = int(n);
        } else if (arg == "--engine") {
            std::string text;
            if (!value(&text)) return parse;
            const std::optional<sim::EngineMode> mode =
                sim::parseEngineMode(text);
            if (!mode) {
                parse.error = "unknown engine '" + text + "'; known:";
                for (const std::string &m : sim::engineModeNames()) {
                    parse.error += " " + m;
                }
                return parse;
            }
            o.engine = *mode;
        } else if (arg == "--report-csv") {
            if (!value(&o.report_csv)) return parse;
        } else if (arg == "--report-json") {
            if (!value(&o.report_json)) return parse;
        } else if (arg == "--list-models") {
            o.list_models = true;
        } else if (arg == "--help" || arg == "-h") {
            o.help = true;
        } else {
            parse.error = "unknown flag '" + arg +
                          "' in model mode (--model runs accept "
                          "--schedule, --aw, --ah, --seed, --jobs, "
                          "--engine, --report-csv, --report-json)";
            return parse;
        }
    }
    if (!parse.ok()) return parse;
    if (!o.help && !o.list_models && o.model.empty()) {
        parse.error = "model mode needs --model NAME|FILE "
                      "(see --list-models)";
    }
    return parse;
}

int
cliMain(int argc, const char *const *argv)
{
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);

    const ModelCliParse parse = parseModelCli(args);
    if (!parse.ok()) {
        std::fprintf(stderr, "error: %s\n\n%s", parse.error.c_str(),
                     sim::usage().c_str());
        return 2;
    }
    const ModelCliOptions &o = parse.opts;
    if (o.help) {
        std::printf("%s", sim::usage().c_str());
        return 0;
    }
    if (o.list_models) {
        Table t({"model", "layers", "array", "macs", "summary"});
        for (const ModelGraph &g : builtinModels()) {
            t.addRow({g.name, std::to_string(g.layers.size()),
                      strCat(g.default_aw, "x", g.default_ah),
                      std::to_string(g.totalMacs()), g.summary});
        }
        std::printf("%s", t.toString().c_str());
        return 0;
    }

    std::string error;
    const std::optional<ModelGraph> graph = loadModel(o.model, &error);
    if (!graph) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 2;
    }
    const std::optional<SchedulePolicy> policy =
        parseSchedule(o.schedule, &error);
    if (!policy) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 2;
    }

    SchedulerOptions sopts;
    sopts.aw = o.aw;
    sopts.ah = o.ah;
    sopts.seed = o.seed;
    sopts.num_threads = o.jobs;
    sopts.engine = o.engine;
    Scheduler scheduler(sopts);
    const std::optional<ScheduleComparison> cmp =
        scheduler.compare(*graph, *policy, &error);
    if (!cmp) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 2;
    }

    ScheduleReport report{*cmp};
    std::printf("model %s on %dx%d FEATHER (schedule %s, seed %llu, "
                "%d worker thread(s))\n",
                graph->name.c_str(), report.comparison.primary().aw,
                report.comparison.primary().ah, o.schedule.c_str(),
                (unsigned long long)o.seed, o.jobs);
    std::printf("%s", report.layerTable().c_str());
    std::printf("schedule ranking (* = selected):\n%s",
                report.comparisonTable().c_str());
    std::printf("%s", report.summaryLine().c_str());

    if (!o.report_csv.empty() &&
        !writeFile(o.report_csv, report.toCsv())) {
        std::fprintf(stderr, "error: cannot write '%s'\n",
                     o.report_csv.c_str());
        return 2;
    }
    if (!o.report_json.empty() &&
        !writeFile(o.report_json, report.toJson())) {
        std::fprintf(stderr, "error: cannot write '%s'\n",
                     o.report_json.c_str());
        return 2;
    }
    return report.comparison.primary().bitExact() ? 0 : 1;
}

} // namespace model
} // namespace feather
