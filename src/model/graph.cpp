#include "model/graph.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/log.hpp"
#include "common/parse.hpp"
#include "sim/driver.hpp"

namespace feather {
namespace model {

namespace {

ModelLayer
layer(LayerSpec spec, float multiplier = 0.02f)
{
    return ModelLayer{std::move(spec), multiplier};
}

std::vector<ModelGraph>
buildModels()
{
    std::vector<ModelGraph> all;

    all.push_back(
        {"resnet_block",
         "scaled ResNet bottleneck 1x1 -> 3x3 -> 1x1 (the resnet_block "
         "scenario as a schedulable graph)",
         {layer(sim::convLayer("reduce_1x1", 32, 14, 8, 1, 1, 0)),
          layer(sim::convLayer("conv_3x3", 8, 14, 8, 3, 1, 1), 0.03f),
          layer(sim::convLayer("expand_1x1", 8, 14, 32, 1, 1, 0))},
         8, 8});

    all.push_back(
        {"mobilenet_slice",
         "two MobileNet separable stages: expand -> depthwise -> project "
         "-> depthwise -> pointwise",
         {layer(sim::convLayer("expand_1x1", 16, 14, 32, 1, 1, 0)),
          layer(sim::depthwiseLayer("dw1_3x3", 32, 14, 3, 1, 1), 0.05f),
          layer(sim::convLayer("project_1x1", 32, 14, 16, 1, 1, 0)),
          layer(sim::depthwiseLayer("dw2_3x3", 16, 14, 3, 1, 1), 0.05f),
          layer(sim::convLayer("pw_1x1", 16, 14, 32, 1, 1, 0))},
         8, 8});

    all.push_back(
        {"bert_mlp",
         "scaled BERT feed-forward pair: expand GEMM -> contract GEMM",
         {layer(sim::gemmLayer("fc_expand", 8, 32, 16), 0.03f),
          layer(sim::gemmLayer("fc_contract", 8, 16, 32), 0.03f)},
         4, 4});

    return all;
}

/** Output-channel count of a conv-like layer ([N,M,P,Q] oActs). */
int64_t
outChannels(const LayerSpec &l)
{
    return l.conv.depthwise ? l.conv.c : l.conv.m;
}

std::string
bindingError(const LayerSpec &prev, const LayerSpec &cur)
{
    const bool prev_conv = prev.type != OpType::Gemm;
    const bool cur_conv = cur.type != OpType::Gemm;
    if (prev_conv != cur_conv) {
        return strCat(prev.name, " -> ", cur.name,
                      ": conv<->GEMM bindings are not supported (a GEMM "
                      "cannot read conv activations in place)");
    }
    if (prev_conv) {
        if (outChannels(prev) != cur.conv.c) {
            return strCat(prev.name, " writes ", outChannels(prev),
                          " channels but ", cur.name, " reads ", cur.conv.c);
        }
        if (prev.conv.outH() != cur.conv.h ||
            prev.conv.outW() != cur.conv.w) {
            return strCat(prev.name, " writes ", prev.conv.outH(), "x",
                          prev.conv.outW(), " activations but ", cur.name,
                          " reads ", cur.conv.h, "x", cur.conv.w);
        }
        return "";
    }
    if (prev.gemm.m != cur.gemm.m) {
        return strCat(prev.name, " writes M=", prev.gemm.m, " rows but ",
                      cur.name, " reads M=", cur.gemm.m);
    }
    if (prev.gemm.n != cur.gemm.k) {
        return strCat(prev.name, " writes N=", prev.gemm.n, " columns but ",
                      cur.name, " reads K=", cur.gemm.k);
    }
    return "";
}

/** Key=value list parsed off one model-file layer line. */
struct KeyVals
{
    std::vector<std::pair<std::string, std::string>> pairs;

    const std::string *
    find(const std::string &key) const
    {
        for (const auto &kv : pairs) {
            if (kv.first == key) return &kv.second;
        }
        return nullptr;
    }
};

} // namespace

std::string
ModelGraph::validate() const
{
    if (layers.empty()) {
        return strCat("model '", name, "' has no layers");
    }
    for (size_t i = 0; i < layers.size(); ++i) {
        const LayerSpec &l = layers[i].spec;
        if (!isMacOp(l.type)) {
            return strCat("layer ", l.name, " (", toString(l.type),
                          ") is not a MAC operator");
        }
        if (layers[i].multiplier <= 0.0f) {
            return strCat("layer ", l.name,
                          " needs a positive qm multiplier");
        }
        if (i == 0) continue;
        const std::string why = bindingError(layers[i - 1].spec, l);
        if (!why.empty()) return why;
    }
    return "";
}

int64_t
ModelGraph::totalMacs() const
{
    int64_t total = 0;
    for (const ModelLayer &l : layers) total += l.spec.macs();
    return total;
}

const std::vector<ModelGraph> &
builtinModels()
{
    static const std::vector<ModelGraph> all = buildModels();
    return all;
}

const ModelGraph *
findModel(const std::string &name)
{
    for (const ModelGraph &g : builtinModels()) {
        if (g.name == name) return &g;
    }
    return nullptr;
}

std::vector<std::string>
modelNames()
{
    std::vector<std::string> names;
    for (const ModelGraph &g : builtinModels()) names.push_back(g.name);
    return names;
}

std::optional<ModelGraph>
parseModelText(const std::string &text, const std::string &default_name,
               std::string *error)
{
    ModelGraph graph;
    graph.name = default_name;

    std::istringstream lines(text);
    std::string line;
    int line_no = 0;
    const auto fail = [&](const std::string &why) -> std::optional<ModelGraph> {
        if (error) *error = strCat("model file line ", line_no, ": ", why);
        return std::nullopt;
    };

    while (std::getline(lines, line)) {
        ++line_no;
        const size_t hash = line.find('#');
        if (hash != std::string::npos) line.erase(hash);
        std::istringstream tokens(line);
        std::string type;
        if (!(tokens >> type)) continue; // blank / comment-only line

        // Directives.
        if (type == "model" || type == "aw" || type == "ah") {
            std::string value;
            if (!(tokens >> value)) return fail(type + " needs a value");
            if (type == "model") {
                graph.name = value;
            } else {
                uint64_t n = 0;
                if (!parseUint(value, &n) || n < 1 || n > 65536) {
                    return fail(type +
                                " needs a positive integer <= 65536");
                }
                (type == "aw" ? graph.default_aw : graph.default_ah) =
                    int(n);
            }
            std::string extra;
            if (tokens >> extra) {
                return fail("unexpected token '" + extra + "' after " +
                            type);
            }
            continue;
        }

        if (type != "conv" && type != "depthwise" && type != "pointwise" &&
            type != "gemm") {
            return fail("unknown layer type '" + type +
                        "' (expected conv, depthwise, pointwise, gemm, or "
                        "a model/aw/ah directive)");
        }

        KeyVals kv;
        std::string token;
        while (tokens >> token) {
            const size_t eq = token.find('=');
            if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
                return fail("expected key=value, got '" + token + "'");
            }
            std::string key = token.substr(0, eq);
            // A conflicting duplicate is the same class of authoring
            // mistake as a typo'd key: reject it instead of silently
            // letting the first occurrence win.
            if (kv.find(key)) {
                return fail("duplicate key '" + key + "'");
            }
            kv.pairs.emplace_back(std::move(key), token.substr(eq + 1));
        }

        // Reject keys the layer type does not consume, so a typo (or a
        // conv key on a gemm line) errors out instead of silently
        // producing a different model than the author intended.
        static const std::vector<std::string> kShared = {"name", "qm"};
        static const std::vector<std::string> kConvKeys = {
            "c", "m", "h", "w", "hw", "r", "s", "rs", "stride", "pad"};
        static const std::vector<std::string> kDepthwiseKeys = {
            "c", "h", "w", "hw", "r", "s", "rs", "stride", "pad"};
        static const std::vector<std::string> kPointwiseKeys = {
            "c", "m", "h", "w", "hw", "stride", "pad"};
        static const std::vector<std::string> kGemmKeys = {"m", "n", "k"};
        const std::vector<std::string> &typed =
            type == "gemm"
                ? kGemmKeys
                : (type == "depthwise"
                       ? kDepthwiseKeys
                       : (type == "pointwise" ? kPointwiseKeys
                                              : kConvKeys));
        for (const auto &pair : kv.pairs) {
            const bool ok =
                std::find(kShared.begin(), kShared.end(), pair.first) !=
                    kShared.end() ||
                std::find(typed.begin(), typed.end(), pair.first) !=
                    typed.end();
            if (!ok) {
                return fail("unknown key '" + pair.first + "' for a " +
                            type + " layer");
            }
        }

        // Shared accessors over the key=value list.
        bool bad = false;
        std::string bad_why;
        const auto dim = [&](const std::string &key, int64_t fallback,
                             bool required) -> int64_t {
            const std::string *v = kv.find(key);
            if (!v) {
                // h/w and r/s fall back to the square hw/rs spellings.
                if (key == "h" || key == "w") v = kv.find("hw");
                if (key == "r" || key == "s") v = kv.find("rs");
            }
            if (!v) {
                if (required) {
                    bad = true;
                    bad_why = type + " needs " + key + "=";
                }
                return fallback;
            }
            uint64_t n = 0;
            // Every dimension key must be >= 1 (a zero stride or extent
            // would divide by zero / fail tensor CHECKs downstream); only
            // pad may legitimately be 0.
            if (!parseUint(*v, &n) || (n == 0 && key != "pad") ||
                n > 65536) {
                bad = true;
                bad_why = key == "pad"
                              ? "pad needs an integer in [0, 65536]"
                              : key + " needs a positive integer <= 65536";
                return fallback;
            }
            return int64_t(n);
        };

        ModelLayer ml;
        std::string name = type + std::to_string(graph.layers.size());
        if (const std::string *v = kv.find("name")) name = *v;
        if (const std::string *v = kv.find("qm")) {
            char *end = nullptr;
            const float q = std::strtof(v->c_str(), &end);
            if (end == v->c_str() || *end != '\0' || !(q > 0.0f)) {
                return fail("qm needs a positive number, got '" + *v + "'");
            }
            ml.multiplier = q;
        }

        if (type == "gemm") {
            ml.spec = sim::gemmLayer(name, dim("m", 0, true),
                                     dim("n", 0, true), dim("k", 0, true));
        } else if (type == "depthwise") {
            const int64_t c = dim("c", 0, true);
            const int64_t h = dim("h", 0, true);
            const int64_t w = dim("w", h, false);
            const int64_t r = dim("r", 0, true);
            const int64_t s = dim("s", r, false);
            ml.spec = sim::depthwiseLayer(name, c, h, r,
                                          dim("stride", 1, false),
                                          dim("pad", 0, false));
            ml.spec.conv.w = w;
            ml.spec.conv.s = s;
        } else { // conv / pointwise
            const bool pointwise = type == "pointwise";
            const int64_t r = pointwise ? 1 : dim("r", 1, false);
            const int64_t s = pointwise ? 1 : dim("s", r, false);
            const int64_t h = dim("h", 0, true);
            ml.spec = sim::convLayer2d(name, dim("c", 0, true), h,
                                       dim("w", h, false),
                                       dim("m", 0, true), r, s,
                                       dim("stride", 1, false),
                                       dim("pad", 0, false));
        }
        if (bad) return fail(bad_why);

        graph.layers.push_back(std::move(ml));
    }

    const std::string why = graph.validate();
    if (!why.empty()) {
        if (error) *error = why;
        return std::nullopt;
    }
    return graph;
}

std::optional<ModelGraph>
loadModel(const std::string &name_or_path, std::string *error)
{
    if (const ModelGraph *g = findModel(name_or_path)) return *g;

    std::ifstream in(name_or_path, std::ios::binary);
    if (!in) {
        if (error) {
            std::string names;
            for (const std::string &n : modelNames()) names += " " + n;
            *error = "unknown model '" + name_or_path +
                     "' (not a built-in graph:" + names +
                     "; and not a readable model file)";
        }
        return std::nullopt;
    }
    std::ostringstream text;
    text << in.rdbuf();

    // Default the graph name to the file's stem.
    std::string stem = name_or_path;
    const size_t slash = stem.find_last_of("/\\");
    if (slash != std::string::npos) stem.erase(0, slash + 1);
    const size_t dot = stem.find_last_of('.');
    if (dot != std::string::npos && dot > 0) stem.erase(dot);

    return parseModelText(text.str(), stem, error);
}

} // namespace model
} // namespace feather
