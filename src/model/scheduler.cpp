#include "model/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <limits>
#include <unordered_set>

#include "common/bits.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "dataflow/mapping.hpp"
#include "serve/thread_pool.hpp"

namespace feather {
namespace model {

namespace {

/** The dataflow families the scheduler enumerates, in display-priority
 *  order (a candidate shared by several families is named after the
 *  first). */
constexpr sim::DataflowKind kFamilies[] = {
    sim::DataflowKind::Canonical,
    sim::DataflowKind::ChannelParallel,
    sim::DataflowKind::WindowParallel,
};

/** Dedup key of a planning point: same mapping + layouts = same candidate. */
std::string
planKey(const sim::LayerPlan &plan)
{
    return plan.mapping.toString() + "|" + plan.in_layout.toString() + "|" +
           plan.out_layout.toString();
}

/** Visit every coordinate of @p extents (dims with extent > 0). */
template <typename Fn>
void
forEachCoord(const Extents &extents, Fn &&fn)
{
    std::vector<Dim> dims;
    for (int d = 0; d < kNumDims; ++d) {
        if (extents[Dim(d)] > 0) dims.push_back(Dim(d));
    }
    Coord c;
    const auto walk = [&](const auto &self, size_t depth) -> void {
        if (depth == dims.size()) {
            fn(c);
            return;
        }
        for (int64_t i = 0; i < extents[dims[depth]]; ++i) {
            c[dims[depth]] = i;
            self(self, depth + 1);
        }
    };
    walk(walk, 0);
}

} // namespace

int64_t
reorderCost(const Layout &src, const Layout &dst, const Extents &extents)
{
    if (src == dst) return 0;
    const BoundLayout from(src, extents);
    const BoundLayout to(dst, extents);
    // One read cycle per distinct source line feeding each destination
    // line; writes overlap with reads in the BIRRD pipeline.
    std::vector<std::unordered_set<int64_t>> sources(size_t(to.numLines()));
    forEachCoord(extents, [&](const Coord &c) {
        sources[size_t(to.addrOf(c).line)].insert(from.addrOf(c).line);
    });
    int64_t cycles = 0;
    for (const auto &lines : sources) cycles += int64_t(lines.size());
    return cycles;
}

int64_t
handoffCost(bool same_device, const Layout &src, const Layout &dst,
            const Extents &extents, int64_t elem_bytes,
            const InterChipLink &link)
{
    if (same_device) return 0;
    int64_t elements = 1;
    for (int d = 0; d < kNumDims; ++d) {
        if (extents[Dim(d)] > 0) elements *= extents[Dim(d)];
    }
    const int64_t bytes = elements * std::max<int64_t>(1, elem_bytes);
    const int64_t bpc = std::max<int64_t>(1, link.bytes_per_cycle);
    const int64_t transfer = (bytes + bpc - 1) / bpc;
    return reorderCost(src, dst, extents) + transfer;
}

std::optional<SchedulePolicy>
parseSchedule(const std::string &name, std::string *error)
{
    SchedulePolicy policy;
    if (name == "per-layer" || name.empty()) {
        policy.kind = ScheduleKind::PerLayer;
        return policy;
    }
    if (name == "greedy") {
        policy.kind = ScheduleKind::Greedy;
        return policy;
    }
    const std::string prefix = "fixed:";
    if (name.compare(0, prefix.size(), prefix) == 0) {
        const std::optional<sim::DataflowKind> kind =
            sim::parseDataflow(name.substr(prefix.size()));
        if (kind) {
            policy.kind = ScheduleKind::Fixed;
            policy.fixed = *kind;
            return policy;
        }
    }
    const std::string pinned = "pinned:";
    if (name.compare(0, pinned.size(), pinned) == 0 &&
        name.size() > pinned.size()) {
        policy.kind = ScheduleKind::Pinned;
        policy.pinned = name.substr(pinned.size());
        return policy;
    }
    if (error) {
        *error = "unknown schedule '" + name +
                 "' (expected per-layer, greedy, fixed:<ws|cp|wp>, or "
                 "pinned:<device>)";
    }
    return std::nullopt;
}

std::string
toString(const SchedulePolicy &policy)
{
    switch (policy.kind) {
    case ScheduleKind::PerLayer: return "per-layer";
    case ScheduleKind::Greedy: return "greedy";
    case ScheduleKind::Fixed: return "fixed:" + sim::toString(policy.fixed);
    case ScheduleKind::Pinned: return "pinned:" + policy.pinned;
    }
    return "?";
}

int
ScheduleComparison::bestFixed() const
{
    int best = -1;
    for (size_t i = 0; i < schedules.size(); ++i) {
        if (schedules[i].schedule.compare(0, 6, "fixed:") != 0) continue;
        if (best < 0 || schedules[i].cycles < schedules[size_t(best)].cycles) {
            best = int(i);
        }
    }
    return best;
}

double
ScheduleComparison::speedupVsBestFixed() const
{
    const int best = bestFixed();
    if (best < 0 || schedules.empty() || primary().cycles <= 0) return 0.0;
    return double(schedules[size_t(best)].cycles) / double(primary().cycles);
}

Scheduler::Scheduler(SchedulerOptions opts) : opts_(opts)
{
    if (opts_.num_threads < 1) opts_.num_threads = 1;
}

int
Scheduler::resolvedAw(const ModelGraph &graph) const
{
    return opts_.aw > 0 ? opts_.aw : graph.default_aw;
}

int
Scheduler::resolvedAh(const ModelGraph &graph) const
{
    return opts_.ah > 0 ? opts_.ah : graph.default_ah;
}

std::optional<Evaluation>
Scheduler::evaluate(const ModelGraph &graph, std::string *error)
{
    const std::string why = graph.validate();
    if (!why.empty()) {
        if (error) *error = why;
        return std::nullopt;
    }
    const bool fleet = opts_.fleet.enabled();
    const int aw = resolvedAw(graph);
    const int ah = resolvedAh(graph);
    if (!fleet) {
        if (aw < 2 || !isPow2(uint64_t(aw))) {
            if (error) {
                *error = strCat("array width (--aw) must be a power of two"
                                " >= 2, got ", aw);
            }
            return std::nullopt;
        }
        if (ah < 1) {
            if (error) *error = "array height (--ah) must be >= 1";
            return std::nullopt;
        }
    }

    // Step 1: plan every (layer, family) point through the shared cache
    // and collapse families that induce identical planning artifacts. In
    // fleet mode the per-device candidate lists (each enumerated at that
    // device's shape, through its cache scope) are flattened in fleet
    // order into one device-tagged list per layer; deduplication stays
    // within a device, since the same (mapping, layouts) point on two
    // devices prices edges differently.
    Evaluation eval;
    for (const ModelLayer &ml : graph.layers) {
        std::vector<Candidate> candidates;
        std::string plan_error;
        const size_t ndev = fleet ? opts_.fleet.devices.size() : 1;
        for (size_t d = 0; d < ndev; ++d) {
            const int daw = fleet ? opts_.fleet.devices[d].aw : aw;
            const int dah = fleet ? opts_.fleet.devices[d].ah : ah;
            const std::string scope =
                fleet ? opts_.fleet.devices[d].name : std::string();
            if (daw < 2 || !isPow2(uint64_t(daw)) || dah < 1) {
                plan_error = strCat(scope, " has an unusable ", daw, "x",
                                    dah, " array");
                continue;
            }
            const size_t first = candidates.size();
            for (sim::DataflowKind kind : kFamilies) {
                const std::optional<sim::LayerPlan> plan =
                    cache().getOrPlan(opts_.engine, kind, ml.spec, daw, dah,
                                      &plan_error, scope);
                if (!plan) continue;
                bool merged = false;
                for (size_t c = first; c < candidates.size(); ++c) {
                    if (planKey(candidates[c].plan) == planKey(*plan)) {
                        candidates[c].kinds.push_back(kind);
                        merged = true;
                        break;
                    }
                }
                if (merged) continue;
                Candidate c;
                c.kinds = {kind};
                c.plan = *plan;
                c.device = fleet ? int(d) : -1;
                candidates.push_back(std::move(c));
            }
        }
        if (candidates.empty()) {
            if (error) {
                *error = fleet
                             ? strCat("no fleet device fits ", ml.spec.name,
                                      ": ", plan_error)
                             : strCat("no dataflow family fits ",
                                      ml.spec.name, " on a ", aw, "x", ah,
                                      " array: ", plan_error);
            }
            return std::nullopt;
        }
        eval.layers.push_back(std::move(candidates));
    }

    // Step 2: simulate every unique candidate standalone, in parallel.
    // Slots are pre-sized and seeds derived per flat index, so the result
    // is bit-identical at any num_threads.
    struct EvalSlot
    {
        size_t layer;
        size_t cand;
        uint64_t seed;
        std::string error;
    };
    std::vector<EvalSlot> slots;
    for (size_t li = 0; li < eval.layers.size(); ++li) {
        for (size_t ci = 0; ci < eval.layers[li].size(); ++ci) {
            slots.push_back({li, ci,
                             Rng::deriveStream(opts_.seed, slots.size()),
                             ""});
        }
    }
    {
        serve::ThreadPool pool(opts_.num_threads);
        for (EvalSlot &slot : slots) {
            pool.submit([this, &graph, &eval, &slot] {
                const ModelLayer &ml = graph.layers[slot.layer];
                Candidate &cand = eval.layers[slot.layer][slot.cand];
                sim::RunOptions ropts;
                ropts.aw = cand.device >= 0
                               ? opts_.fleet.devices[size_t(cand.device)].aw
                               : resolvedAw(graph);
                ropts.ah = cand.device >= 0
                               ? opts_.fleet.devices[size_t(cand.device)].ah
                               : resolvedAh(graph);
                ropts.engine = opts_.engine;
                ropts.seed = slot.seed;
                ropts.mapping = cand.plan.mapping;
                ropts.in_layout = cand.plan.in_layout;
                ropts.out_layout = cand.plan.out_layout;
                ropts.quant.multiplier = ml.multiplier;
                try {
                    const sim::RunResult r = sim::runLayer(ml.spec, ropts);
                    cand.est_cycles = r.stats.cycles;
                    cand.macs = r.stats.macs;
                    cand.bit_exact = r.bitExact();
                } catch (const std::exception &e) {
                    slot.error = e.what();
                }
            });
        }
        pool.wait();
    }
    for (const EvalSlot &slot : slots) {
        if (slot.error.empty()) continue;
        if (error) {
            *error = strCat("evaluating ", graph.layers[slot.layer].spec.name,
                            "/", sim::toString(
                                     eval.layers[slot.layer][slot.cand]
                                         .kinds.front()),
                            " failed: ", slot.error);
        }
        return std::nullopt;
    }

    // Step 3: price every layer-to-layer hand-off once. The intermediate
    // tensor of edge i is layer i's input. Same-device edges (everything
    // outside fleet mode) cost the BIRRD reorder; cross-device edges add
    // the inter-chip link transfer term via handoffCost.
    eval.edges.resize(eval.layers.size());
    for (size_t i = 1; i < eval.layers.size(); ++i) {
        const Extents extents = iactExtents(graph.layers[i].spec);
        eval.edges[i].resize(eval.layers[i - 1].size());
        for (size_t p = 0; p < eval.layers[i - 1].size(); ++p) {
            const Candidate &prev = eval.layers[i - 1][p];
            for (size_t c = 0; c < eval.layers[i].size(); ++c) {
                const Candidate &next = eval.layers[i][c];
                eval.edges[i][p].push_back(
                    prev.device == next.device
                        ? reorderCost(prev.plan.out_layout,
                                      next.plan.in_layout, extents)
                        : handoffCost(false, prev.plan.out_layout,
                                      next.plan.in_layout, extents,
                                      kHandoffElemBytes, opts_.fleet.link));
            }
        }
    }
    return eval;
}

bool
Scheduler::pickCandidates(const ModelGraph &graph, const Evaluation &eval,
                          const SchedulePolicy &policy,
                          std::vector<size_t> *out_picks,
                          int64_t *search_nodes, std::string *error)
{
    FEATHER_CHECK(eval.layers.size() == graph.layers.size(),
                  "schedule: evaluation does not match the graph");
    const size_t n = graph.layers.size();
    const int aw = resolvedAw(graph);
    const int ah = resolvedAh(graph);
    const auto edge = [&](size_t i, size_t p, size_t c) {
        return eval.edges[i][p][c];
    };
    int64_t nodes = 0;

    // Pinned restricts the search to one fleet device's candidates; the
    // remaining policies then run unchanged over the masked table.
    int pin = -1;
    if (policy.kind == ScheduleKind::Pinned) {
        if (!opts_.fleet.enabled()) {
            if (error) {
                *error = strCat(toString(policy),
                                " needs --fleet (no fleet configured)");
            }
            return false;
        }
        pin = opts_.fleet.deviceIndex(policy.pinned);
        if (pin < 0) {
            if (error) {
                *error = strCat(toString(policy), " cannot schedule ",
                                graph.name, ": unknown fleet device '",
                                policy.pinned, "'");
            }
            return false;
        }
    }
    const auto allowed = [&](size_t i, size_t c) {
        return pin < 0 || eval.layers[i][c].device == pin;
    };

    std::vector<size_t> &picks = *out_picks;
    picks.assign(n, 0);
    if (policy.kind == ScheduleKind::Fixed) {
        for (size_t i = 0; i < n; ++i) {
            bool found = false;
            for (size_t c = 0; c < eval.layers[i].size(); ++c) {
                ++nodes;
                const auto &kinds = eval.layers[i][c].kinds;
                for (sim::DataflowKind k : kinds) {
                    if (k == policy.fixed) {
                        picks[i] = c;
                        found = true;
                        break;
                    }
                }
                if (found) break;
            }
            if (!found) {
                std::string why;
                (void)cache().getOrPlan(opts_.engine, policy.fixed,
                                       graph.layers[i].spec, aw, ah, &why);
                if (error) {
                    *error = strCat(toString(policy), " cannot schedule ",
                                    graph.name, ": ", why);
                }
                return false;
            }
        }
    } else if (policy.kind == ScheduleKind::Greedy) {
        for (size_t i = 0; i < n; ++i) {
            int64_t best = std::numeric_limits<int64_t>::max();
            for (size_t c = 0; c < eval.layers[i].size(); ++c) {
                ++nodes;
                int64_t cost = eval.layers[i][c].est_cycles;
                if (i > 0) cost += edge(i, picks[i - 1], c);
                if (cost < best) {
                    best = cost;
                    picks[i] = c;
                }
            }
        }
    } else { // PerLayer/Pinned: DP shortest path over (layer, candidate)
             // states — in fleet mode the candidates carry device tags, so
             // the same relaxation searches (layer, device, candidate).
        constexpr int64_t kInf = std::numeric_limits<int64_t>::max();
        std::vector<std::vector<int64_t>> dp(n);
        std::vector<std::vector<size_t>> parent(n);
        for (size_t c = 0; c < eval.layers[0].size(); ++c) {
            ++nodes;
            dp[0].push_back(allowed(0, c) ? eval.layers[0][c].est_cycles
                                          : kInf);
            parent[0].push_back(0);
        }
        for (size_t i = 1; i < n; ++i) {
            dp[i].assign(eval.layers[i].size(), kInf);
            parent[i].assign(eval.layers[i].size(), 0);
            for (size_t c = 0; c < eval.layers[i].size(); ++c) {
                if (!allowed(i, c)) continue;
                for (size_t p = 0; p < eval.layers[i - 1].size(); ++p) {
                    if (dp[i - 1][p] == kInf) continue;
                    ++nodes;
                    const int64_t cost = dp[i - 1][p] + edge(i, p, c) +
                                         eval.layers[i][c].est_cycles;
                    if (cost < dp[i][c]) {
                        dp[i][c] = cost;
                        parent[i][c] = p;
                    }
                }
            }
        }
        size_t best = 0;
        for (size_t c = 1; c < dp[n - 1].size(); ++c) {
            if (dp[n - 1][c] < dp[n - 1][best]) best = c;
        }
        if (dp[n - 1][best] == kInf) {
            // Only reachable when a pin excludes some layer entirely.
            if (error) {
                *error = strCat(toString(policy), " cannot schedule ",
                                graph.name, ": no ", policy.pinned,
                                " candidate for every layer");
            }
            return false;
        }
        picks[n - 1] = best;
        for (size_t i = n - 1; i > 0; --i) {
            picks[i - 1] = parent[i][picks[i]];
        }
    }
    if (search_nodes) *search_nodes = nodes;
    return true;
}

ScheduleResult
Scheduler::assemble(const ModelGraph &graph, const Evaluation &eval,
                    const SchedulePolicy &policy,
                    const std::vector<size_t> &picks) const
{
    ScheduleResult result;
    result.model = graph.name;
    result.schedule = toString(policy);
    result.aw = resolvedAw(graph);
    result.ah = resolvedAh(graph);
    result.seed = opts_.seed;
    result.engine = opts_.engine;
    result.fleet = opts_.fleet.enabled() ? opts_.fleet.spec : "";
    for (size_t i = 0; i < graph.layers.size(); ++i) {
        const Candidate &cand = eval.layers[i][picks[i]];
        LayerChoice choice;
        choice.layer = graph.layers[i].spec.name;
        choice.op = feather::toString(graph.layers[i].spec.type);
        choice.dataflow = policy.kind == ScheduleKind::Fixed
                              ? policy.fixed
                              : cand.kinds.front();
        choice.plan = cand.plan;
        choice.est_cycles = cand.est_cycles;
        choice.reorder_cycles =
            i > 0 ? eval.edges[i][picks[i - 1]][picks[i]] : 0;
        choice.device = cand.device;
        if (cand.device >= 0) {
            choice.device_name =
                opts_.fleet.devices[size_t(cand.device)].name;
            if (i > 0 &&
                eval.layers[i - 1][picks[i - 1]].device != cand.device) {
                // Cross-device edge: its price (reorder + link transfer)
                // already sits in reorder_cycles; count it separately too.
                ++result.handoffs;
                result.handoff_cycles += choice.reorder_cycles;
            }
        }
        result.est_total += choice.est_cycles + choice.reorder_cycles;
        result.layers.push_back(std::move(choice));
    }
    return result;
}

bool
Scheduler::measure(const ModelGraph &graph, ScheduleResult *result,
                   std::string *error)
{
    // Step 5: execute the chosen schedule as measured, bit-exact chains
    // through the StaB ping-pong (layer i writes directly in layer i+1's
    // input layout). Outside fleet mode this is one chain; in fleet mode
    // each contiguous same-device segment runs as one chain on its
    // device's shape (through that device's cache scope), and the
    // cross-device hand-off between segments is priced by the edge model,
    // not replayed — each segment verifies bit-exactly against the
    // reference operators from freshly seeded inputs. A 1-device fleet
    // has exactly one segment and reproduces the non-fleet measurement.
    struct Segment
    {
        size_t first; ///< layer range [first, last]
        size_t last;
        int aw;
        int ah;
        std::string scope;
    };
    std::vector<Segment> segments;
    for (size_t i = 0; i < graph.layers.size(); ++i) {
        const int dev = result->layers[i].device;
        if (!segments.empty() &&
            result->layers[segments.back().first].device == dev) {
            segments.back().last = i;
            continue;
        }
        Segment seg;
        seg.first = seg.last = i;
        seg.aw = dev >= 0 ? opts_.fleet.devices[size_t(dev)].aw
                          : result->aw;
        seg.ah = dev >= 0 ? opts_.fleet.devices[size_t(dev)].ah
                          : result->ah;
        seg.scope = dev >= 0 ? opts_.fleet.devices[size_t(dev)].name
                             : std::string();
        segments.push_back(seg);
    }

    const auto start = std::chrono::steady_clock::now();
    for (const Segment &seg : segments) {
        sim::Scenario scenario;
        scenario.name = graph.name;
        scenario.default_aw = seg.aw;
        scenario.default_ah = seg.ah;
        for (size_t i = seg.first; i <= seg.last; ++i) {
            scenario.layers.push_back({graph.layers[i].spec,
                                       result->layers[i].dataflow,
                                       graph.layers[i].multiplier});
        }
        sim::ScenarioOptions sopts;
        sopts.aw = seg.aw;
        sopts.ah = seg.ah;
        sopts.seed = opts_.seed;
        // Measured cycles are the ground truth the report ranks schedules
        // by: the chain always replays cycle-accurately, whatever tier
        // evaluated the candidates.
        sopts.engine = sim::EngineMode::Cycle;
        const std::optional<sim::ScenarioRun> run =
            sim::runScenario(scenario, sopts, error, cache().planFn(seg.scope));
        if (!run) return false;
        for (size_t i = seg.first; i <= seg.last; ++i) {
            const sim::RunResult &r = run->chain.layers[i - seg.first];
            result->layers[i].cycles = r.stats.cycles;
            result->layers[i].macs = r.stats.macs;
            result->layers[i].read_stalls = r.stats.read_stall_cycles;
            result->layers[i].write_stalls = r.stats.write_stall_cycles;
            result->cycles += r.stats.cycles;
            result->macs += r.stats.macs;
            result->read_stalls += r.stats.read_stall_cycles;
            result->write_stalls += r.stats.write_stall_cycles;
            result->arena_peak_bytes =
                std::max(result->arena_peak_bytes, r.stats.arena_peak_bytes);
        }
        result->checked += run->chain.checked;
        result->mismatches += run->chain.mismatches;
    }
    result->sim_wall_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    return true;
}

std::optional<ScheduleResult>
Scheduler::schedule(const ModelGraph &graph, const Evaluation &eval,
                    const SchedulePolicy &policy, std::string *error)
{
    std::vector<size_t> picks;
    int64_t search_nodes = 0;
    if (!pickCandidates(graph, eval, policy, &picks, &search_nodes, error)) {
        return std::nullopt;
    }
    ScheduleResult result = assemble(graph, eval, policy, picks);
    result.search_nodes = search_nodes;
    if (!measure(graph, &result, error)) return std::nullopt;
    return result;
}

std::optional<ScheduleComparison>
Scheduler::compare(const ModelGraph &graph, const SchedulePolicy &primary,
                   std::string *error)
{
    const std::optional<Evaluation> eval = evaluate(graph, error);
    if (!eval) return std::nullopt;

    std::vector<SchedulePolicy> policies = {primary};
    SchedulePolicy per_layer;
    per_layer.kind = ScheduleKind::PerLayer;
    SchedulePolicy greedy;
    greedy.kind = ScheduleKind::Greedy;
    for (const SchedulePolicy &p : {per_layer, greedy}) {
        if (toString(p) != toString(primary)) policies.push_back(p);
    }
    for (sim::DataflowKind kind : kFamilies) {
        SchedulePolicy p;
        p.kind = ScheduleKind::Fixed;
        p.fixed = kind;
        if (toString(p) != toString(primary)) policies.push_back(p);
    }
    // Fleet mode: every single-device placement is a baseline the primary
    // schedule is ranked against (the DP should beat the best of them
    // whenever splitting the graph pays for its hand-offs).
    for (const FleetDevice &dev : opts_.fleet.devices) {
        SchedulePolicy p;
        p.kind = ScheduleKind::Pinned;
        p.pinned = dev.name;
        if (toString(p) != toString(primary)) policies.push_back(p);
    }

    // Pick every policy's schedule first (cheap table lookups over the
    // shared evaluation), remembering which policies landed on identical
    // candidate picks — same picks means same plans, so one measured
    // chain run serves them all.
    struct Slot
    {
        bool picked = false;
        std::string error;
        std::vector<size_t> picks;
        ScheduleResult result;
        size_t measure_as = 0; ///< index of the slot whose chain runs
    };
    std::vector<Slot> slots(policies.size());
    for (size_t i = 0; i < policies.size(); ++i) {
        Slot &slot = slots[i];
        int64_t search_nodes = 0;
        slot.picked = pickCandidates(graph, *eval, policies[i],
                                     &slot.picks, &search_nodes,
                                     &slot.error);
        if (!slot.picked) continue;
        slot.result = assemble(graph, *eval, policies[i], slot.picks);
        slot.result.search_nodes = search_nodes;
        slot.measure_as = i;
        for (size_t j = 0; j < i; ++j) {
            if (slots[j].picked && slots[j].picks == slot.picks) {
                slot.measure_as = j;
                break;
            }
        }
    }

    // The measured chain runs dominate compare() wall-clock and are
    // independent — fan the unique ones out on the same pool candidate
    // evaluation used. Results land in per-policy slots and every plan
    // lookup hits the cache evaluate() warmed, so the comparison
    // (including the cache counters) is bit-identical at any thread
    // count.
    {
        serve::ThreadPool pool(opts_.num_threads);
        for (size_t i = 0; i < policies.size(); ++i) {
            if (!slots[i].picked || slots[i].measure_as != i) continue;
            pool.submit([this, &graph, &slots, i] {
                try {
                    if (!measure(graph, &slots[i].result,
                                 &slots[i].error)) {
                        slots[i].picked = false;
                    }
                } catch (const std::exception &e) {
                    slots[i].error = e.what();
                    slots[i].picked = false;
                }
            });
        }
        pool.wait();
    }

    ScheduleComparison cmp;
    for (size_t i = 0; i < policies.size(); ++i) {
        Slot &slot = slots[i];
        const Slot &measured = slots[slot.measure_as];
        if (!slot.picked || !measured.picked) {
            if ((policies[i].kind == ScheduleKind::Fixed ||
                 policies[i].kind == ScheduleKind::Pinned) &&
                toString(policies[i]) != toString(primary)) {
                // A baseline family or device that cannot map every layer
                // is simply absent from the comparison; the primary must
                // schedule.
                continue;
            }
            if (error) {
                *error = slot.picked ? measured.error : slot.error;
            }
            return std::nullopt;
        }
        if (slot.measure_as != i) {
            // Same picks, same plans: graft the measured stats onto this
            // policy's skeleton instead of re-simulating the chain.
            for (size_t l = 0; l < slot.result.layers.size(); ++l) {
                LayerChoice &dst = slot.result.layers[l];
                const LayerChoice &src = measured.result.layers[l];
                dst.cycles = src.cycles;
                dst.macs = src.macs;
                dst.read_stalls = src.read_stalls;
                dst.write_stalls = src.write_stalls;
            }
            slot.result.cycles = measured.result.cycles;
            slot.result.macs = measured.result.macs;
            slot.result.read_stalls = measured.result.read_stalls;
            slot.result.write_stalls = measured.result.write_stalls;
            slot.result.checked = measured.result.checked;
            slot.result.mismatches = measured.result.mismatches;
            slot.result.sim_wall_us = measured.result.sim_wall_us;
            slot.result.arena_peak_bytes = measured.result.arena_peak_bytes;
        }
        // Copy, not move: a later slot may still graft from this one.
        cmp.schedules.push_back(slot.result);
    }
    cmp.cache = cache().stats();
    return cmp;
}

} // namespace model
} // namespace feather
