#pragma once

/**
 * @file
 * Structured rendering of a ScheduleComparison.
 *
 * Three forms, mirroring serve::BatchReport: an aligned console table
 * (per-layer choices of the primary schedule plus a schedule ranking),
 * CSV (one row per (schedule, layer) — for CI artifacts / spreadsheets),
 * and single-line JSON (primary schedule + alternatives + summary). The
 * CSV column set and JSON key set are locked by golden-file schema tests
 * (tests/golden/) so downstream parsers do not rot.
 */

#include <string>

#include "model/scheduler.hpp"

namespace feather {
namespace model {

/** Rendering wrapper over one ScheduleComparison. */
struct ScheduleReport
{
    ScheduleComparison comparison;

    /** One CSV row per (schedule, layer), primary schedule first. */
    std::string toCsv() const;

    /** The whole comparison as one line of JSON. */
    std::string toJson() const;

    /** Aligned per-layer table of the primary schedule. */
    std::string layerTable() const;

    /** Aligned ranking of every schedule against the best fixed one. */
    std::string comparisonTable() const;

    /** One-line verdict (totals, speedup, bit-exactness). */
    std::string summaryLine() const;
};

} // namespace model
} // namespace feather
