#pragma once

/**
 * @file
 * Whole-model workload graphs for the per-layer dataflow/layout scheduler.
 *
 * A ModelGraph is a linear chain of MAC layers (conv / depthwise /
 * pointwise / GEMM) whose inter-layer tensor bindings are validated up
 * front: layer i's output tensor *is* layer i+1's input tensor, exactly as
 * the StaB ping-pong threads activations at runtime. Graphs come from the
 * built-in registry (resnet_block, mobilenet_slice, bert_mlp) or from a
 * simple text format:
 *
 *   # '#' starts a comment, blank lines are skipped
 *   model tiny_cnn          # optional; defaults to the file's stem
 *   aw 8                    # optional default array size
 *   ah 8
 *   conv      name=stem c=8 hw=14 m=16 rs=3 pad=1
 *   depthwise name=dw   c=16 hw=14 rs=3 pad=1 qm=0.05
 *   pointwise name=pw   c=16 hw=14 m=32
 *
 * Layer lines are `<type> key=value...` with types conv, depthwise,
 * pointwise and gemm. Conv keys: c, m, h/w (or hw), r/s (or rs), stride,
 * pad, qm, name. GEMM keys: m, n, k, qm, name. `qm` is the requantization
 * multiplier applied after the layer (default 0.02).
 */

#include <optional>
#include <string>
#include <vector>

#include "workload/shapes.hpp"

namespace feather {
namespace model {

/** One layer of a model graph. */
struct ModelLayer
{
    LayerSpec spec;
    float multiplier = 0.02f; ///< QM rescale applied after this layer
};

/** A linear chain of MAC layers with validated tensor bindings. */
struct ModelGraph
{
    std::string name;
    std::string summary;
    std::vector<ModelLayer> layers;
    int default_aw = 8;
    int default_ah = 8;

    /**
     * Check the inter-layer tensor bindings: every layer is a MAC
     * operator, consecutive conv-like layers agree on channels and
     * spatial extents (m_i == c_{i+1}, outH/outW == h/w), consecutive
     * GEMMs agree on [M,N] -> [M,K], and conv<->GEMM transitions are
     * rejected. @return empty string if valid, else a description.
     */
    std::string validate() const;

    /** Total MAC count over all layers. */
    int64_t totalMacs() const;
};

/** All built-in model graphs, in presentation order. */
const std::vector<ModelGraph> &builtinModels();

/** Lookup a built-in graph by name; nullptr when unknown. */
const ModelGraph *findModel(const std::string &name);

/** Built-in model names, in presentation order. */
std::vector<std::string> modelNames();

/**
 * Parse the text format described above. Returns nullopt with @p error
 * set (including the line number) on the first malformed line or when the
 * resulting graph fails validate().
 */
std::optional<ModelGraph> parseModelText(const std::string &text,
                                         const std::string &default_name,
                                         std::string *error = nullptr);

/**
 * Resolve @p name_or_path: a built-in graph name first, else a readable
 * model file. Returns nullopt with @p error set (listing the built-in
 * names) when neither resolves.
 */
std::optional<ModelGraph> loadModel(const std::string &name_or_path,
                                    std::string *error = nullptr);

} // namespace model
} // namespace feather
