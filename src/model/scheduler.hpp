#pragma once

/**
 * @file
 * Per-layer (dataflow, layout) scheduling over a whole ModelGraph.
 *
 * The scheduler reproduces the paper's headline end-to-end experiment
 * (Fig. 12): because BIRRD makes on-chip dataflow switching cheap, the
 * per-layer *optimal* (dataflow, layout) pair can be chosen for every
 * layer of a network instead of one fixed dataflow for the whole model.
 *
 * Pipeline:
 *   1. Candidate enumeration — for every layer, every dataflow family is
 *      planned via sim::planLayer through the shared serve::PlanCache;
 *      families that induce the same (mapping, layouts) collapse into one
 *      candidate.
 *   2. Candidate evaluation — each unique candidate is simulated
 *      standalone (concordant layouts, bit-exact verification against the
 *      reference operators) in parallel on a serve::ThreadPool. Results
 *      land in pre-sized slots with per-candidate derived RNG streams, so
 *      the outcome is bit-identical at any thread count.
 *   3. Edge pricing — switching from layer i's candidate a to layer
 *      i+1's candidate b costs reorderCost(a.out_layout, b.in_layout):
 *      the BIRRD reorder cycles needed to convert the intermediate tensor
 *      between the two layouts, zero when they are concordant.
 *   4. Search — dynamic-programming shortest path over (layer, candidate)
 *      states (per-layer), a no-lookahead variant (greedy), or a single
 *      family forced everywhere (fixed:<dataflow>).
 *   5. Measurement — the chosen schedule is executed as one chain through
 *      the StaB ping-pong (layer i writes directly in layer i+1's input
 *      layout) and verified bit-exactly end-to-end; measured cycles are
 *      the ground truth the report ranks schedules by.
 *
 * Fleet mode (SchedulerOptions::fleet non-empty) generalizes the DP state
 * to (layer, device, candidate): every layer's candidates are enumerated
 * once per fleet device at that device's array shape (through the
 * device-scoped PlanCache partition), intra-device switches keep their
 * reorderCost pricing, and inter-device edges are priced by handoffCost
 * (BIRRD reorder + inter-chip link transfer). The chosen schedule splits
 * into contiguous same-device segments (pipeline parallelism); each
 * segment is measured as one cycle-accurate chain on its device and
 * verified bit-exactly against the reference operators — the hand-off
 * itself is priced, not replayed. Two extra baselines exist only here:
 * pinned:<device> restricts the whole graph to one device (the
 * single-device placements the DP must beat), and compare() ranks the
 * primary schedule against every pinned placement. A 1-device fleet
 * reproduces the single-device path bit-exactly.
 */

#include <optional>
#include <string>
#include <vector>

#include "model/fleet.hpp"
#include "model/graph.hpp"
#include "serve/plan_cache.hpp"
#include "sim/scenario.hpp"

namespace feather {
namespace model {

// ---------------------------------------------------------------------------
// Switching-cost model
// ---------------------------------------------------------------------------

/**
 * BIRRD reorder cycles to convert a tensor of @p extents stored under
 * @p src into @p dst: zero when the layouts are identical (concordant
 * hand-off), else one read cycle per distinct source line feeding each
 * destination line (the reorder pass streams every destination line
 * through BIRRD; writes overlap with reads). An optimistic lower bound —
 * the measured chain run is the ground truth — but it prices edges
 * consistently: discordant hand-offs of big tensors cost more than small
 * ones, and concordant hand-offs are free.
 */
int64_t reorderCost(const Layout &src, const Layout &dst,
                    const Extents &extents);

/**
 * Cycles to hand a tensor of @p extents (elements of @p elem_bytes each,
 * resident under layout @p src) over to a device whose consumer wants
 * layout @p dst: zero when @p same_device (the on-chip StaB ping-pong
 * hand-off is free — the paper's headline), else the BIRRD
 * reorderCost(src, dst, extents) plus the link transfer term
 * ceil(total_bytes / link.bytes_per_cycle).
 */
int64_t handoffCost(bool same_device, const Layout &src, const Layout &dst,
                    const Extents &extents, int64_t elem_bytes,
                    const InterChipLink &link);

// ---------------------------------------------------------------------------
// Schedules
// ---------------------------------------------------------------------------

/** How to pick each layer's dataflow family (and, in fleet mode, its
 *  device). */
enum class ScheduleKind : uint8_t {
    PerLayer, ///< DP shortest path over candidates + switching costs
    Greedy,   ///< pick each layer's best given only the previous choice
    Fixed,    ///< force one family everywhere (the baseline)
    Pinned,   ///< fleet only: force every layer onto one named device
};

/** A schedule policy: the kind plus the family forced by Fixed or the
 *  device name forced by Pinned. */
struct SchedulePolicy
{
    ScheduleKind kind = ScheduleKind::PerLayer;
    sim::DataflowKind fixed = sim::DataflowKind::Canonical;
    std::string pinned; ///< Pinned: fleet device name
};

/** Parse "per-layer", "greedy", "fixed:<dataflow>" (ws|cp|wp or long
 *  names), or "pinned:<device>" (fleet mode only). */
std::optional<SchedulePolicy> parseSchedule(const std::string &name,
                                            std::string *error = nullptr);

std::string toString(const SchedulePolicy &policy);

/** One evaluated candidate of one layer. */
struct Candidate
{
    /** Families that plan to this (mapping, layouts) point; the first is
     *  the display name. */
    std::vector<sim::DataflowKind> kinds;
    sim::LayerPlan plan;
    int64_t est_cycles = 0; ///< standalone run under concordant layouts
    int64_t macs = 0;
    /** Verified against the reference operator. Always false under the
     *  analytic engine, which estimates without producing outputs. */
    bool bit_exact = false;
    /** Fleet device index this candidate runs on; -1 outside fleet mode.
     *  Fleet evaluations flatten per-device candidate lists into one
     *  tagged list per layer, so the DP/greedy/fixed policies search
     *  (device, candidate) pairs without special-casing. */
    int device = -1;
};

/** The evaluated candidate table of one graph (scheduler steps 1-3). */
struct Evaluation
{
    std::vector<std::vector<Candidate>> layers; ///< per layer, ≥1 each
    /** Pre-priced switching costs: edges[i][p][c] = reorderCost between
     *  layer i-1's candidate p and layer i's candidate c (edges[0] is
     *  empty). Computed once per graph so the DP, greedy and every
     *  compared policy index instead of re-walking the tensor. */
    std::vector<std::vector<std::vector<int64_t>>> edges;
};

/** The scheduler's choice for one layer, with measured chain stats. */
struct LayerChoice
{
    std::string layer;
    std::string op;
    sim::DataflowKind dataflow = sim::DataflowKind::Canonical;
    sim::LayerPlan plan;
    int64_t est_cycles = 0;     ///< candidate's standalone estimate
    int64_t reorder_cycles = 0; ///< edge price from the previous layer
    /** Fleet placement; -1/"" outside fleet mode. */
    int device = -1;
    std::string device_name;
    // Measured from the final chain run.
    int64_t cycles = 0;
    int64_t macs = 0;
    int64_t read_stalls = 0;
    int64_t write_stalls = 0;
};

/** One scheduled + measured run of a graph. */
struct ScheduleResult
{
    std::string model;
    std::string schedule; ///< toString(policy)
    int aw = 0;
    int ah = 0;
    uint64_t seed = 0;
    std::vector<LayerChoice> layers;
    int64_t est_total = 0; ///< DP objective: sum of est + reorder cycles
    int64_t cycles = 0;    ///< measured chain total (ground truth)
    int64_t macs = 0;
    int64_t read_stalls = 0;
    int64_t write_stalls = 0;
    int64_t checked = 0; ///< final-output elements verified
    int64_t mismatches = 0;
    /** Engine tier candidate evaluation ran under. The measured chain is
     *  always cycle-accurate, so bitExact() holds either way. */
    sim::EngineMode engine = sim::EngineMode::Cycle;
    /** Wall time of the measured chain run in microseconds. The one
     *  non-deterministic report field; determinism checks zero it. */
    int64_t sim_wall_us = 0;
    /** Peak per-layer arena scratch over the measured chain. */
    int64_t arena_peak_bytes = 0;
    // Fleet-mode extras (defaults outside fleet mode).
    std::string fleet;          ///< normalized fleet spec, "" when none
    int64_t search_nodes = 0;   ///< (layer, device, candidate) states
                                ///< relaxed/scanned by the pick
    int64_t handoffs = 0;       ///< cross-device edges in the schedule
    int64_t handoff_cycles = 0; ///< summed handoffCost of those edges

    bool bitExact() const { return checked > 0 && mismatches == 0; }
    double
    utilization() const
    {
        const double pes = double(aw) * double(ah);
        return cycles > 0 ? double(macs) / (double(cycles) * pes) : 0.0;
    }
};

/** A set of schedules of one graph, ranked against the fixed baselines. */
struct ScheduleComparison
{
    std::vector<ScheduleResult> schedules; ///< primary first
    serve::PlanCache::Stats cache;

    const ScheduleResult &primary() const { return schedules.front(); }

    /** Index of the cheapest fixed:* schedule (measured cycles); -1 when
     *  no fixed schedule is present. */
    int bestFixed() const;

    /** best-fixed cycles / primary cycles (0 when unavailable). */
    double speedupVsBestFixed() const;
};

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

/** Engine knobs. */
struct SchedulerOptions
{
    int aw = 0; ///< <= 0 picks the graph default
    int ah = 0;
    int num_threads = 1;  ///< candidate-evaluation pool size
    uint64_t seed = 2024; ///< base seed for inputs
    /** Engine tier for candidate enumeration/evaluation (steps 1-2).
     *  Analytic prunes the candidate table without per-element replay;
     *  the final measured chain (step 5) always runs cycle-accurate. */
    sim::EngineMode engine = sim::EngineMode::Cycle;
    /** Plan through this cache instead of the scheduler's own — the
     *  serving daemon injects its warm, shared cache here so model
     *  requests reuse (and contribute) plans across the whole run. The
     *  cache must outlive the Scheduler; nullptr keeps the private one. */
    serve::PlanCache *shared_cache = nullptr;
    /** Non-empty switches on fleet mode: candidates are enumerated per
     *  device at that device's array shape (aw/ah above are ignored),
     *  inter-device edges are priced by handoffCost, and the schedule is
     *  measured as contiguous same-device segments. */
    FleetSpec fleet;
};

/** Per-layer dataflow/layout scheduler over ModelGraphs. */
class Scheduler
{
  public:
    explicit Scheduler(SchedulerOptions opts = {});

    /** Steps 1+2: enumerate and evaluate every layer's candidates in
     *  parallel. nullopt with @p error set when the graph is invalid or a
     *  layer has no feasible mapping. */
    std::optional<Evaluation> evaluate(const ModelGraph &graph,
                                       std::string *error = nullptr);

    /** Steps 3-5: pick the schedule under @p policy and run it as one
     *  measured, bit-exact chain. */
    std::optional<ScheduleResult> schedule(const ModelGraph &graph,
                                           const Evaluation &eval,
                                           const SchedulePolicy &policy,
                                           std::string *error = nullptr);

    /** evaluate() once, then schedule @p primary plus the standard
     *  baselines (greedy and every fixed family, deduplicated). */
    std::optional<ScheduleComparison>
    compare(const ModelGraph &graph, const SchedulePolicy &primary,
            std::string *error = nullptr);

    /** The cache in use: opts.shared_cache when set, else the private
     *  per-scheduler one. */
    serve::PlanCache &
    cache()
    {
        return opts_.shared_cache ? *opts_.shared_cache : cache_;
    }
    const SchedulerOptions &options() const { return opts_; }

  private:
    int resolvedAw(const ModelGraph &graph) const;
    int resolvedAh(const ModelGraph &graph) const;

    /** Steps 3+4: one candidate index per layer under @p policy.
     *  @p search_nodes counts the states scanned/relaxed by the pick. */
    bool pickCandidates(const ModelGraph &graph, const Evaluation &eval,
                        const SchedulePolicy &policy,
                        std::vector<size_t> *picks, int64_t *search_nodes,
                        std::string *error);

    /** Result skeleton (choices, estimates, edge prices) for @p picks. */
    ScheduleResult assemble(const ModelGraph &graph, const Evaluation &eval,
                            const SchedulePolicy &policy,
                            const std::vector<size_t> &picks) const;

    /** Step 5: run @p result's schedule as one verified chain and fill
     *  the measured fields. */
    bool measure(const ModelGraph &graph, ScheduleResult *result,
                 std::string *error);

    SchedulerOptions opts_;
    serve::PlanCache cache_;
};

} // namespace model
} // namespace feather
