#include "model/fleet.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "baselines/arch_zoo.hpp"
#include "common/log.hpp"
#include "common/parse.hpp"

namespace feather {
namespace model {

namespace {

constexpr size_t kMaxDevices = 64;
/** BIRRD's router reachability masks support 64 inputs (one per column),
 *  so 64 is the widest array the cycle engine can actually run. */
constexpr uint64_t kMaxFeatherCols = 64;
constexpr uint64_t kMaxFeatherRows = 1024;

std::string
trim(const std::string &s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    return s.substr(b, e - b);
}

std::string
validEntries()
{
    std::string names;
    for (const std::string &n : baselines::archZoo().names()) {
        if (!names.empty()) names += ", ";
        names += n;
    }
    return strCat(names, ", or feather:<COLS>x<ROWS>");
}

bool
parseEntry(const std::string &entry, FleetDevice *out, std::string *error)
{
    const std::string prefix = "feather:";
    if (entry.compare(0, prefix.size(), prefix) == 0) {
        const std::string shape = entry.substr(prefix.size());
        const size_t x = shape.find('x');
        uint64_t cols = 0;
        uint64_t rows = 0;
        if (x == std::string::npos ||
            !parsePositive(shape.substr(0, x), &cols, kMaxFeatherCols) ||
            !parsePositive(shape.substr(x + 1), &rows, kMaxFeatherRows)) {
            *error = strCat("bad --fleet entry '", entry,
                            "' (expected feather:<COLS>x<ROWS> with COLS "
                            "in 1..",
                            kMaxFeatherCols, " and ROWS in 1..",
                            kMaxFeatherRows, ")");
            return false;
        }
        if ((cols & (cols - 1)) != 0) {
            *error = strCat("bad --fleet entry '", entry,
                            "' (BIRRD needs a power-of-two column count, "
                            "got ",
                            cols, ")");
            return false;
        }
        out->aw = int(cols);
        out->ah = int(rows);
        out->capability = int64_t(cols * rows);
        out->name = entry;
        return true;
    }
    const baselines::ZooEntry *zoo = baselines::archZoo().lookup(entry);
    if (!zoo) {
        *error = strCat("unknown device '", entry, "' in --fleet (known: ",
                        validEntries(), ")");
        return false;
    }
    const ArchSpec arch = zoo->make(WorkloadKind::Conv);
    out->aw = arch.pe_cols;
    out->ah = arch.pe_rows;
    out->capability = arch.numPes();
    out->name = entry;
    return true;
}

} // namespace

int
FleetSpec::deviceIndex(const std::string &name) const
{
    for (size_t d = 0; d < devices.size(); ++d) {
        if (devices[d].name == name) return int(d);
    }
    return -1;
}

bool
parseFleetSpec(const std::string &text, FleetSpec *out, std::string *error)
{
    out->devices.clear();
    out->spec.clear();

    // A readable file of that name wins; anything else is an inline spec.
    std::string body = text;
    {
        std::ifstream in(text, std::ios::binary);
        if (in) {
            std::ostringstream content;
            content << in.rdbuf();
            body = content.str();
        }
    }

    // Entries split on commas and newlines; '#' starts a comment.
    std::vector<std::string> entries;
    std::string cur;
    bool comment = false;
    for (char c : body + "\n") {
        if (c == '\n') {
            comment = false;
            c = ',';
        }
        if (comment) continue;
        if (c == '#') {
            comment = true;
            continue;
        }
        if (c == ',') {
            const std::string e = trim(cur);
            if (!e.empty()) entries.push_back(e);
            cur.clear();
            continue;
        }
        cur += c;
    }

    if (entries.empty()) {
        *error = strCat("--fleet '", text, "' names no devices (expected ",
                        validEntries(), ")");
        return false;
    }
    if (entries.size() > kMaxDevices) {
        *error = strCat("--fleet lists ", entries.size(), " devices (max ",
                        kMaxDevices, ")");
        return false;
    }

    for (const std::string &entry : entries) {
        FleetDevice dev;
        if (!parseEntry(entry, &dev, error)) return false;
        // Report names must be unique: repeats get an occurrence suffix.
        int repeats = 0;
        for (const FleetDevice &d : out->devices) {
            if (d.name == dev.name ||
                d.name.compare(0, dev.name.size() + 1, dev.name + "#") ==
                    0) {
                ++repeats;
            }
        }
        if (repeats > 0) dev.name = strCat(dev.name, "#", repeats + 1);
        if (!out->spec.empty()) out->spec += ",";
        out->spec += entry;
        out->devices.push_back(std::move(dev));
    }
    return true;
}

} // namespace model
} // namespace feather
