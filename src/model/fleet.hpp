#pragma once

/**
 * @file
 * Heterogeneous device fleets for whole-graph scheduling.
 *
 * A fleet is an ordered list of named simulated devices — FEATHER
 * instances of arbitrary PE-array sizes plus any arch-zoo design point —
 * parsed from a `--fleet` value:
 *
 *   --fleet feather:16x16,feather:32x32,tpu-like
 *
 * Spec grammar (comma-separated entries; or a file path, one entry per
 * line with '#' comments and commas allowed):
 *
 *   entry := "feather:<COLS>x<ROWS>"       custom FEATHER instance
 *          | <arch-zoo name>               baselines::archZoo() entry
 *
 * The same FleetSpec drives two consumers: the Scheduler splits a
 * ModelGraph's layers across the devices (pipeline parallelism, DP state
 * (layer, device, candidate), inter-device edges priced by handoffCost),
 * and the serving daemon shards independent requests over the same
 * devices (daemon::FleetConfig extends this with a placement policy).
 * Duplicate entries get a "#2", "#3"... suffix so report names stay
 * unique.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace feather {
namespace model {

/** Chip-to-chip link model for cross-device hand-offs in a simulated
 *  fleet. */
struct InterChipLink
{
    /** Payload bytes the link moves per cycle (per-byte transfer term). */
    int64_t bytes_per_cycle = 16;
};

/** Element width the hand-off transfer term is priced at (int8 path). */
constexpr int64_t kHandoffElemBytes = 1;

/** One named device of a simulated fleet. */
struct FleetDevice
{
    std::string name; ///< unique report name ("feather:32x32")
    /** Array shape requests resolve to when they do not pin aw/ah. */
    int aw = 16;
    int ah = 16;
    /** Placement weight of the daemon's Capability policy (PE count). */
    int64_t capability = 256;
};

/** An ordered device fleet plus its inter-chip link. */
struct FleetSpec
{
    std::vector<FleetDevice> devices;
    /** Prices the transfer term of cross-device hand-offs. */
    InterChipLink link;
    /** The normalized spec text ("a,b,c"), echoed in reports. */
    std::string spec;

    bool enabled() const { return !devices.empty(); }

    /** Index of the device named @p name; -1 when unknown. */
    int deviceIndex(const std::string &name) const;
};

/**
 * Parse a --fleet value: @p text is a file path (when a file of that name
 * is readable) or an inline spec. False with a one-line @p error on an
 * unknown device name (listing the valid ones), malformed feather:<C>x<R>
 * shapes, or an empty/oversized fleet.
 */
bool parseFleetSpec(const std::string &text, FleetSpec *out,
                    std::string *error);

} // namespace model
} // namespace feather
