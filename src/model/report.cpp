#include "model/report.hpp"

#include <cstdio>

#include "common/log.hpp"
#include "common/table.hpp"

namespace feather {
namespace model {

namespace {

/** Fixed-precision double: deterministic and locale-independent. */
std::string
fmtFixed(double v)
{
    return fmtDouble(v, 4);
}

std::string
status(const ScheduleResult &r)
{
    return r.bitExact() ? "ok" : "MISMATCH";
}

/** The device column exists only in fleet mode, so the classic
 *  single-device CSV/JSON schemas stay byte-identical. */
std::vector<std::string>
columns(bool fleet)
{
    std::vector<std::string> cols = {
        "model",      "schedule",   "selected",       "aw",
        "ah",         "seed",       "layer",          "op",
        "dataflow",   "mapping",    "in_layout",      "out_layout",
        "est_cycles", "reorder_cycles", "cycles",     "macs",
        "rd_stalls",  "wr_stalls",  "engine_mode",    "sim_wall_us",
        "arena_peak_bytes", "status"};
    if (fleet) cols.insert(cols.begin() + 8, "device");
    return cols;
}

std::string
layerJson(const LayerChoice &l, bool fleet)
{
    const std::string device =
        fleet ? strCat("\"device\":\"", jsonEscape(l.device_name), "\",")
              : std::string();
    return strCat(
        "{\"layer\":\"", jsonEscape(l.layer), "\",\"op\":\"",
        jsonEscape(l.op), "\",", device, "\"dataflow\":\"",
        sim::toString(l.dataflow),
        "\",\"mapping\":\"", jsonEscape(l.plan.mapping.toString()),
        "\",\"in_layout\":\"", l.plan.in_layout.toString(),
        "\",\"out_layout\":\"", l.plan.out_layout.toString(),
        "\",\"est_cycles\":", l.est_cycles,
        ",\"reorder_cycles\":", l.reorder_cycles, ",\"cycles\":", l.cycles,
        ",\"macs\":", l.macs, ",\"rd_stalls\":", l.read_stalls,
        ",\"wr_stalls\":", l.write_stalls, "}");
}

} // namespace

std::string
ScheduleReport::toCsv() const
{
    const bool fleet = !comparison.primary().fleet.empty();
    Table t(columns(fleet));
    for (size_t s = 0; s < comparison.schedules.size(); ++s) {
        const ScheduleResult &r = comparison.schedules[s];
        for (const LayerChoice &l : r.layers) {
            std::vector<std::string> row = {
                csvSafe(r.model), csvSafe(r.schedule),
                s == 0 ? "1" : "0", std::to_string(r.aw),
                std::to_string(r.ah), std::to_string(r.seed),
                csvSafe(l.layer), l.op, sim::toString(l.dataflow),
                csvSafe(l.plan.mapping.toString()),
                l.plan.in_layout.toString(),
                l.plan.out_layout.toString(),
                std::to_string(l.est_cycles),
                std::to_string(l.reorder_cycles),
                std::to_string(l.cycles), std::to_string(l.macs),
                std::to_string(l.read_stalls),
                std::to_string(l.write_stalls),
                sim::toString(r.engine),
                std::to_string(r.sim_wall_us),
                std::to_string(r.arena_peak_bytes), status(r)};
            if (fleet) {
                row.insert(row.begin() + 8, csvSafe(l.device_name));
            }
            t.addRow(row);
        }
    }
    return t.toCsv();
}

std::string
ScheduleReport::toJson() const
{
    const ScheduleResult &p = comparison.primary();
    const bool fleet = !p.fleet.empty();
    std::string out = strCat(
        "{\"model\":\"", jsonEscape(p.model), "\",\"schedule\":\"",
        jsonEscape(p.schedule), "\",\"aw\":", p.aw, ",\"ah\":", p.ah,
        ",\"seed\":", p.seed,
        fleet ? strCat(",\"fleet\":\"", jsonEscape(p.fleet), "\"")
              : std::string(),
        ",\"layers\":[");
    for (size_t i = 0; i < p.layers.size(); ++i) {
        if (i > 0) out += ",";
        out += layerJson(p.layers[i], fleet);
    }
    out += "],\"alternatives\":[";
    bool first = true;
    for (size_t s = 1; s < comparison.schedules.size(); ++s) {
        const ScheduleResult &r = comparison.schedules[s];
        if (!first) out += ",";
        first = false;
        out += strCat("{\"schedule\":\"", jsonEscape(r.schedule),
                      "\",\"est_cycles\":", r.est_total,
                      ",\"cycles\":", r.cycles, ",\"status\":\"", status(r),
                      "\"}");
    }
    const int best = comparison.bestFixed();
    const std::string best_name =
        best >= 0 ? comparison.schedules[size_t(best)].schedule : "";
    const int64_t best_cycles =
        best >= 0 ? comparison.schedules[size_t(best)].cycles : 0;
    out += strCat(
        "],\"summary\":{\"est_cycles\":", p.est_total,
        ",\"cycles\":", p.cycles, ",\"macs\":", p.macs,
        ",\"utilization\":", fmtFixed(p.utilization()),
        ",\"rd_stalls\":", p.read_stalls, ",\"wr_stalls\":", p.write_stalls,
        ",\"checked\":", p.checked, ",\"mismatches\":", p.mismatches,
        ",\"engine_mode\":\"", sim::toString(p.engine),
        "\",\"sim_wall_us\":", p.sim_wall_us,
        ",\"arena_peak_bytes\":", p.arena_peak_bytes,
        ",\"status\":\"", status(p), "\",\"best_fixed\":\"",
        jsonEscape(best_name), "\",\"best_fixed_cycles\":", best_cycles,
        ",\"speedup_vs_best_fixed\":",
        fmtFixed(comparison.speedupVsBestFixed()),
        fleet ? strCat(",\"search_nodes\":", p.search_nodes,
                       ",\"handoffs\":", p.handoffs,
                       ",\"handoff_cycles\":", p.handoff_cycles)
              : std::string(),
        ",\"plan_cache\":{\"hits\":", comparison.cache.hits,
        ",\"misses\":", comparison.cache.misses,
        ",\"entries\":", comparison.cache.entries, "}}}");
    return out;
}

std::string
ScheduleReport::layerTable() const
{
    const ScheduleResult &p = comparison.primary();
    const bool fleet = !p.fleet.empty();
    std::vector<std::string> headers = {
        "layer", "op", "dataflow", "mapping", "iAct layout",
        "oAct layout", "est cycles", "reorder", "cycles", "util",
        "rd stalls", "wr stalls"};
    if (fleet) headers.insert(headers.begin() + 2, "device");
    Table t(headers);
    const int num_pes = p.aw * p.ah;
    for (const LayerChoice &l : p.layers) {
        const double util =
            l.cycles > 0
                ? double(l.macs) / (double(l.cycles) * num_pes)
                : 0.0;
        std::vector<std::string> row = {
            l.layer, l.op, sim::toString(l.dataflow),
            l.plan.mapping.toString(), l.plan.in_layout.toString(),
            l.plan.out_layout.toString(), std::to_string(l.est_cycles),
            std::to_string(l.reorder_cycles), std::to_string(l.cycles),
            fmtPercent(util), std::to_string(l.read_stalls),
            std::to_string(l.write_stalls)};
        if (fleet) row.insert(row.begin() + 2, l.device_name);
        t.addRow(row);
    }
    return t.toString();
}

std::string
ScheduleReport::comparisonTable() const
{
    Table t({"schedule", "est cycles", "cycles", "util", "vs best fixed",
             "status"});
    const int best = comparison.bestFixed();
    const int64_t best_cycles =
        best >= 0 ? comparison.schedules[size_t(best)].cycles : 0;
    for (size_t s = 0; s < comparison.schedules.size(); ++s) {
        const ScheduleResult &r = comparison.schedules[s];
        const double speedup =
            r.cycles > 0 && best_cycles > 0
                ? double(best_cycles) / double(r.cycles)
                : 0.0;
        t.addRow({(s == 0 ? "* " : "  ") + r.schedule,
                  std::to_string(r.est_total), std::to_string(r.cycles),
                  fmtPercent(r.utilization()), fmtRatio(speedup),
                  status(r)});
    }
    return t.toString();
}

std::string
ScheduleReport::summaryLine() const
{
    const ScheduleResult &p = comparison.primary();
    const int best = comparison.bestFixed();
    std::string out = strCat("total cycles: ", p.cycles, " (estimated ",
                             p.est_total, ")");
    if (best >= 0) {
        const ScheduleResult &b = comparison.schedules[size_t(best)];
        out += strCat("; best fixed dataflow: ", b.schedule, " at ",
                      b.cycles, " cycles; speedup vs best fixed: ",
                      fmtRatio(comparison.speedupVsBestFixed()));
    }
    if (!p.fleet.empty()) {
        out += strCat("; hand-offs: ", p.handoffs, " (",
                      p.handoff_cycles, " est cycles, ", p.search_nodes,
                      " DP nodes)");
    }
    out += strCat("; final activations bit-exact vs reference_ops: ",
                  p.bitExact() ? "yes" : "NO", "\n");
    return out;
}

} // namespace model
} // namespace feather
