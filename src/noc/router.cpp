#include "noc/router.hpp"

#include <algorithm>
#include <numeric>

#include "common/bits.hpp"
#include "common/log.hpp"

namespace feather {

std::string
RouteRequest::key() const
{
    std::string k;
    k.reserve(group_of_input.size() * 3 + dests_of_group.size() * 4);
    for (int g : group_of_input) {
        k += std::to_string(g);
        k += ',';
    }
    k += '|';
    for (const auto &dests : dests_of_group) {
        for (int d : dests) {
            k += std::to_string(d);
            k += ',';
        }
        k += ';';
    }
    k += allow_broadcast ? 'B' : 'b';
    return k;
}

RouteRequest
RouteRequest::reduction(std::vector<int> group_of_input,
                        const std::vector<int> &dest_of_group)
{
    RouteRequest req;
    req.group_of_input = std::move(group_of_input);
    req.dests_of_group.reserve(dest_of_group.size());
    for (int d : dest_of_group) {
        req.dests_of_group.push_back({d});
    }
    return req;
}

RouteRequest
RouteRequest::permutation(const std::vector<int> &dest_of_input)
{
    RouteRequest req;
    req.group_of_input.assign(dest_of_input.size(), -1);
    for (size_t i = 0; i < dest_of_input.size(); ++i) {
        if (dest_of_input[i] < 0) continue;
        req.group_of_input[i] = int(req.dests_of_group.size());
        req.dests_of_group.push_back({dest_of_input[i]});
    }
    return req;
}

BirrdRouter::BirrdRouter(const BirrdTopology &topo, uint64_t seed)
    : topo_(topo), rng_(seed)
{
    // Crossover boundary: from stage X on, the two children of every switch
    // reach disjoint output sets, so paths are destination-forced.
    const int n = topo_.numInputs();
    const int logn = int(log2Exact(uint64_t(n)));
    crossover_stage_ = topo_.numStages() - logn;

    // First-half reachability (to crossover ports).
    reach_fh_.assign(size_t(crossover_stage_ + 1),
                     std::vector<uint64_t>(size_t(n), 0));
    for (int p = 0; p < n; ++p) {
        reach_fh_[size_t(crossover_stage_)][size_t(p)] = uint64_t{1} << p;
    }
    for (int t = crossover_stage_ - 1; t >= 0; --t) {
        for (int p = 0; p < n; ++p) {
            const int sw = p / 2;
            reach_fh_[size_t(t)][size_t(p)] =
                reach_fh_[size_t(t + 1)][size_t(topo_.wire(t, 2 * sw))] |
                reach_fh_[size_t(t + 1)][size_t(topo_.wire(t, 2 * sw + 1))];
        }
    }
}

std::optional<BirrdConfigWord>
BirrdRouter::route(const RouteRequest &req)
{
    ++stats_.requests;
    const int n = topo_.numInputs();
    FEATHER_CHECK(int(req.group_of_input.size()) == n,
                  "request arity ", req.group_of_input.size(),
                  " != BIRRD inputs ", n);

    const std::string key = req.key();
    if (auto it = cache_.find(key); it != cache_.end()) {
        ++stats_.cache_hits;
        return it->second;
    }

    // Validate the request.
    std::vector<int> group_sizes(req.dests_of_group.size(), 0);
    std::vector<uint64_t> dest_masks(req.dests_of_group.size(), 0);
    for (int g : req.group_of_input) {
        if (g < 0) continue;
        FEATHER_CHECK(g < int(req.dests_of_group.size()),
                      "input references unknown group ", g);
        ++group_sizes[size_t(g)];
    }
    uint64_t all_dests = 0;
    for (size_t g = 0; g < req.dests_of_group.size(); ++g) {
        FEATHER_CHECK(!req.dests_of_group[g].empty(),
                      "group ", g, " has no destination");
        FEATHER_CHECK(group_sizes[g] > 0,
                      "group ", g, " has no member inputs");
        FEATHER_CHECK(req.dests_of_group[g].size() == 1 || req.allow_broadcast,
                      "multicast group without broadcast extension");
        for (int d : req.dests_of_group[g]) {
            FEATHER_CHECK(d >= 0 && d < n, "dest ", d, " out of range");
            FEATHER_CHECK((dest_masks[g] & (uint64_t{1} << d)) == 0,
                          "duplicate dest ", d, " in group ", g);
            dest_masks[g] |= uint64_t{1} << d;
        }
        FEATHER_CHECK((all_dests & dest_masks[g]) == 0,
                      "two groups share a dest port");
        all_dests |= dest_masks[g];
    }

    std::optional<BirrdConfigWord> result;
    if (use_path_search_) {
        // Configs are generated offline into the Instruction Buffer and
        // cached, so wide networks may afford many rapid restarts.
        const int scaled_restarts =
            n >= 64 ? 1024 : (n >= 32 ? 256 : max_restarts_);
        const int restarts = std::max(max_restarts_, scaled_restarts);
        result = routeByPaths(req, /*randomized=*/false);
        for (int r = 0; r < restarts && !result; ++r) {
            result = routeByPaths(req, /*randomized=*/true);
        }
        if (result) ++stats_.solved_path_search;
    }
    // Brute-force fallback (the paper's "brute force all possible
    // configurations"): tractable on small networks; on larger ones the
    // path search with restarts is strictly stronger.
    if (!result && (!use_path_search_ || topo_.numInputs() <= 8)) {
        result = routeByDfs(req, /*randomized=*/false);
        for (int r = 0; r < max_restarts_ && !result; ++r) {
            result = routeByDfs(req, /*randomized=*/true);
        }
        if (result) ++stats_.solved_fallback;
    }
    if (!result) {
        ++stats_.failures;
        return std::nullopt;
    }
    FEATHER_CHECK(verify(topo_, *result, req),
                  "router produced a config that fails verification");
    cache_.emplace(key, *result);
    return result;
}

// ---------------------------------------------------------------------------
// Path-based search
// ---------------------------------------------------------------------------

void
BirrdRouter::PathState::set(int t, int port, int group, uint8_t drive_bits)
{
    const bool has_drive = size_t(t) < drive.size();
    log.push_back(Change{int16_t(t), int16_t(port),
                         occ[size_t(t)][size_t(port)],
                         has_drive ? drive[size_t(t)][size_t(port)]
                                   : uint8_t(0)});
    occ[size_t(t)][size_t(port)] = group;
    if (has_drive) drive[size_t(t)][size_t(port)] = drive_bits;
}

void
BirrdRouter::PathState::rollback(size_t mark)
{
    while (log.size() > mark) {
        const Change &c = log.back();
        occ[size_t(c.t)][size_t(c.port)] = c.old_occ;
        if (size_t(c.t) < drive.size()) {
            drive[size_t(c.t)][size_t(c.port)] = c.old_drive;
        }
        log.pop_back();
    }
}

bool
BirrdRouter::placeFirstHalf(PathState &st, int group, int input_port,
                            int crossover) const
{
    // Small networks (AW <= 4) have a truncated first half that cannot
    // deliver every input to every crossover port; reject unreachable
    // candidates up front.
    if (!((reach_fh_[0][size_t(input_port)] >> crossover) & 1)) {
        return false;
    }
    int q = input_port;
    for (int t = 0; t < crossover_stage_; ++t) {
        const int occ = st.occ[size_t(t)][size_t(q)];
        if (occ >= 0 && occ != group) return false;
        const int sw = q / 2;
        const int next0 = topo_.wire(t, 2 * sw);
        const int next1 = topo_.wire(t, 2 * sw + 1);
        const bool via0 = (reach_fh_[size_t(t + 1)][size_t(next0)] >>
                           crossover) & 1;
        // A port carries one value: members that merged here (same group)
        // must continue in the same direction; a divergent continuation
        // would silently split an already-merged partial sum.
        const uint8_t drive = st.drive[size_t(t)][size_t(q)];
        const uint8_t bit = via0 ? 1 : 2;
        if (drive != 0 && drive != bit) return false;
        st.set(t, q, group, bit);
        q = via0 ? next0 : next1;
    }
    FEATHER_CHECK(q == crossover, "first-half path missed its crossover");
    const int occ = st.occ[size_t(crossover_stage_)][size_t(q)];
    if (occ >= 0 && occ != group) return false;
    if (size_t(crossover_stage_) < st.drive.size()) {
        // Preserve any drive bits already present at the crossover
        // boundary (set by a previously placed second half).
        st.set(crossover_stage_, q, group,
               st.drive[size_t(crossover_stage_)][size_t(q)]);
    } else {
        st.set(crossover_stage_, q, group, 0);
    }
    return true;
}

bool
BirrdRouter::placeSecondHalf(PathState &st, int group, int crossover,
                             uint64_t dest_mask) const
{
    // Iterative tree walk from the crossover port: stack of (stage, port,
    // dests-to-cover). Occupancy at the crossover boundary was claimed by
    // placeFirstHalf.
    struct Node { int t, q; uint64_t dests; };
    std::vector<Node> work = {{crossover_stage_, crossover, dest_mask}};
    const int last = topo_.numStages();
    while (!work.empty()) {
        const Node node = work.back();
        work.pop_back();
        const int occ = st.occ[size_t(node.t)][size_t(node.q)];
        if (occ >= 0 && occ != group) return false;
        if (node.t == last) {
            if (node.dests != (uint64_t{1} << node.q)) return false;
            st.set(node.t, node.q, group, 0);
            continue;
        }
        const int sw = node.q / 2;
        const int next0 = topo_.wire(node.t, 2 * sw);
        const int next1 = topo_.wire(node.t, 2 * sw + 1);
        const uint64_t d0 =
            node.dests & topo_.reachable(node.t + 1, next0);
        const uint64_t d1 =
            node.dests & topo_.reachable(node.t + 1, next1);
        if ((d0 | d1) != node.dests) return false;
        // Same one-value-per-port rule as the first half: a converging
        // sibling path must continue exactly the way this port already
        // drives.
        const uint8_t need = uint8_t((d0 ? 1 : 0) | (d1 ? 2 : 0));
        const uint8_t drive = st.drive[size_t(node.t)][size_t(node.q)];
        if (drive != 0 && drive != need) return false;
        st.set(node.t, node.q, group, need);
        if (d0) work.push_back({node.t + 1, next0, d0});
        if (d1) work.push_back({node.t + 1, next1, d1});
    }
    return true;
}

BirrdConfigWord
BirrdRouter::extractConfig(const PathState &st, const RouteRequest &req) const
{
    BirrdConfigWord config(size_t(topo_.numStages()),
                           std::vector<EggConfig>(
                               size_t(topo_.switchesPerStage()),
                               EggConfig::Pass));
    for (int t = 0; t < topo_.numStages(); ++t) {
        for (int sw = 0; sw < topo_.switchesPerStage(); ++sw) {
            const uint8_t da = st.drive[size_t(t)][size_t(2 * sw)];
            const uint8_t db = st.drive[size_t(t)][size_t(2 * sw + 1)];
            EggConfig cfg = EggConfig::Pass;
            if (da == 0 && db == 0) {
                cfg = EggConfig::Pass;
            } else if (db == 0) {
                cfg = da == 1 ? EggConfig::Pass
                              : (da == 2 ? EggConfig::Swap
                                         : EggConfig::DupLeft);
            } else if (da == 0) {
                cfg = db == 2 ? EggConfig::Pass
                              : (db == 1 ? EggConfig::Swap
                                         : EggConfig::DupRight);
            } else if (da == 1 && db == 2) {
                cfg = EggConfig::Pass;
            } else if (da == 2 && db == 1) {
                cfg = EggConfig::Swap;
            } else if (da == 1 && db == 1) {
                cfg = EggConfig::AddLeft;
            } else if (da == 2 && db == 2) {
                cfg = EggConfig::AddRight;
            } else if (da == 3 && db == 3) {
                cfg = EggConfig::AddBoth;
            } else {
                panic(strCat("unexpressible egg drive pattern da=", int(da),
                             " db=", int(db), " at stage ", t, " switch ",
                             sw));
            }
            if ((cfg == EggConfig::DupLeft || cfg == EggConfig::DupRight ||
                 cfg == EggConfig::AddBoth) &&
                !req.allow_broadcast) {
                panic("broadcast egg emitted without the extension enabled");
            }
            config[size_t(t)][size_t(sw)] = cfg;
        }
    }
    return config;
}

std::optional<BirrdConfigWord>
BirrdRouter::routeByPaths(const RouteRequest &req, bool randomized)
{
    const int n = topo_.numInputs();

    // Build tasks: multicast groups route all members through one crossover
    // port (one task per group); single-dest groups route each member
    // independently (its path merges with siblings wherever they meet).
    std::vector<PathTask> tasks;
    std::vector<std::vector<int>> members(req.dests_of_group.size());
    std::vector<uint64_t> dest_masks(req.dests_of_group.size(), 0);
    for (size_t g = 0; g < req.dests_of_group.size(); ++g) {
        for (int d : req.dests_of_group[g]) {
            dest_masks[g] |= uint64_t{1} << d;
        }
    }
    for (int i = 0; i < n; ++i) {
        const int g = req.group_of_input[size_t(i)];
        if (g >= 0) members[size_t(g)].push_back(i);
    }
    for (size_t g = 0; g < req.dests_of_group.size(); ++g) {
        if (req.dests_of_group[g].size() > 1) {
            PathTask task;
            task.group = int(g);
            task.input_port = -1; // all members
            task.dest_mask = dest_masks[g];
            tasks.push_back(task);
        } else {
            for (int m : members[g]) {
                tasks.push_back(PathTask{int(g), m, dest_masks[g]});
            }
        }
    }
    // Multicast tasks first (most constrained).
    std::stable_sort(tasks.begin(), tasks.end(),
                     [](const PathTask &a, const PathTask &b) {
                         return (a.input_port < 0) > (b.input_port < 0);
                     });
    if (randomized) {
        for (size_t i = tasks.size(); i > 1; --i) {
            std::swap(tasks[i - 1], tasks[rng_.below(uint64_t(i))]);
        }
    }

    PathState st;
    st.occ.assign(size_t(topo_.numStages() + 1),
                  std::vector<int>(size_t(n), -1));
    st.drive.assign(size_t(topo_.numStages()),
                    std::vector<uint8_t>(size_t(n), 0));

    // Candidate crossover orders per task.
    std::vector<int> base_order(static_cast<size_t>(n));
    std::iota(base_order.begin(), base_order.end(), 0);

    // Recursive lambda over tasks with undo-log backtracking.
    int64_t nodes = 0;
    const int64_t budget = node_budget_;
    auto solve = [&](auto &&self, size_t idx) -> bool {
        if (idx == tasks.size()) return true;
        const PathTask &task = tasks[idx];

        std::vector<int> order = base_order;
        // Heuristic: try the crossover port above a destination first —
        // for identity-like patterns this yields straight paths.
        const int preferred = int(log2Exact(
            uint64_t(task.dest_mask & ~(task.dest_mask - 1))));
        std::swap(order[0], order[size_t(preferred)]);
        if (randomized) {
            for (size_t i = order.size(); i > 1; --i) {
                std::swap(order[i - 1], order[rng_.below(uint64_t(i))]);
            }
        }

        for (int c : order) {
            // Crossover ports are the scarce resource: skip candidates a
            // different group already owns before walking any path.
            const int cross_occ =
                st.occ[size_t(crossover_stage_)][size_t(c)];
            if (cross_occ >= 0 && cross_occ != task.group) continue;
            if (++nodes > budget) return false;
            const size_t mark = st.mark();
            bool ok = true;
            if (task.input_port >= 0) {
                ok = placeFirstHalf(st, task.group, task.input_port, c);
            } else {
                for (int m : members[size_t(task.group)]) {
                    if (!placeFirstHalf(st, task.group, m, c)) {
                        ok = false;
                        break;
                    }
                }
            }
            if (ok) ok = placeSecondHalf(st, task.group, c, task.dest_mask);
            if (ok && self(self, idx + 1)) return true;
            st.rollback(mark);
            if (nodes > budget) return false;
        }
        return false;
    };

    const bool ok = solve(solve, 0);
    stats_.nodes_explored += nodes;
    if (!ok) return std::nullopt;
    return extractConfig(st, req);
}

// ---------------------------------------------------------------------------
// Brute-force DFS fallback (paper: "we will brute force all possible
// configurations" when the path-selection algorithm fails)
// ---------------------------------------------------------------------------

std::optional<BirrdConfigWord>
BirrdRouter::routeByDfs(const RouteRequest &req, bool randomized)
{
    const int n = topo_.numInputs();
    SearchCtx ctx;
    ctx.req = &req;
    ctx.group_sizes.assign(req.dests_of_group.size(), 0);
    ctx.dest_masks.assign(req.dests_of_group.size(), 0);
    for (int g : req.group_of_input) {
        if (g >= 0) ++ctx.group_sizes[size_t(g)];
    }
    for (size_t g = 0; g < req.dests_of_group.size(); ++g) {
        for (int d : req.dests_of_group[g]) {
            ctx.dest_masks[g] |= uint64_t{1} << d;
        }
    }

    std::vector<Sig> ports(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        if (req.group_of_input[size_t(i)] >= 0) {
            ports[size_t(i)] = Sig{req.group_of_input[size_t(i)], 1};
        }
    }

    ctx.nodes = 0;
    ctx.budget = node_budget_;
    ctx.randomized = randomized;
    ctx.rng = &rng_;
    ctx.config.assign(size_t(topo_.numStages()),
                      std::vector<EggConfig>(
                          size_t(topo_.switchesPerStage()),
                          EggConfig::Pass));
    const bool ok = dfs(ctx, 0, 0, ports);
    stats_.nodes_explored += ctx.nodes;
    if (!ok) return std::nullopt;
    return ctx.config;
}

bool
BirrdRouter::boundaryOk(const SearchCtx &ctx, int next_stage,
                        const std::vector<Sig> &ports) const
{
    const int remaining = topo_.numStages() - next_stage;
    const size_t num_groups = ctx.dest_masks.size();

    std::vector<int> copies(num_groups, 0);
    std::vector<uint64_t> reach_union(num_groups, 0);
    for (int p = 0; p < int(ports.size()); ++p) {
        const Sig &s = ports[size_t(p)];
        if (!s.live()) continue;
        copies[size_t(s.group)]++;
        reach_union[size_t(s.group)] |= topo_.reachable(next_stage, p);
    }

    for (size_t g = 0; g < num_groups; ++g) {
        if (copies[g] == 0) return false;
        if ((reach_union[g] & ctx.dest_masks[g]) != ctx.dest_masks[g]) {
            return false;
        }
        // Single-dest groups must still be able to merge down to one copy.
        if (ctx.dest_masks[g] == (ctx.dest_masks[g] & -ctx.dest_masks[g])) {
            if ((int64_t{1} << remaining) < copies[g]) return false;
        }
    }
    return true;
}

bool
BirrdRouter::finalOk(const SearchCtx &ctx, const std::vector<Sig> &ports) const
{
    uint64_t satisfied = 0;
    for (int p = 0; p < int(ports.size()); ++p) {
        const Sig &s = ports[size_t(p)];
        if (!s.live()) continue;
        const uint64_t bit = uint64_t{1} << p;
        if (!(ctx.dest_masks[size_t(s.group)] & bit)) {
            return false; // stray partial sum at a non-destination port
        }
        if (s.count != ctx.group_sizes[size_t(s.group)]) {
            return false; // incomplete reduction delivered
        }
        satisfied |= bit;
    }
    uint64_t all = 0;
    for (uint64_t m : ctx.dest_masks) all |= m;
    return satisfied == all;
}

bool
BirrdRouter::dfs(SearchCtx &ctx, int stage, int sw, std::vector<Sig> &ports)
{
    if (ctx.nodes++ > ctx.budget) return false;

    if (stage == topo_.numStages()) {
        return finalOk(ctx, ports);
    }
    if (sw == topo_.switchesPerStage()) {
        std::vector<Sig> next(ports.size());
        for (int p = 0; p < int(ports.size()); ++p) {
            next[size_t(topo_.wire(stage, p))] = ports[size_t(p)];
        }
        if (!boundaryOk(ctx, stage + 1, next)) return false;
        return dfs(ctx, stage + 1, 0, next);
    }

    const Sig a = ports[size_t(2 * sw)];
    const Sig b = ports[size_t(2 * sw + 1)];

    struct Option
    {
        EggConfig cfg;
        Sig l, r;
    };
    Option options[5];
    int num_options = 0;
    auto push = [&](EggConfig cfg, Sig l, Sig r) {
        options[num_options++] = Option{cfg, l, r};
    };

    const Sig none{};
    if (!a.live() && !b.live()) {
        push(EggConfig::Pass, none, none);
    } else if (a.live() && !b.live()) {
        push(EggConfig::Pass, a, none);
        push(EggConfig::Swap, none, a);
        if (ctx.req->allow_broadcast &&
            a.count == ctx.group_sizes[size_t(a.group)]) {
            push(EggConfig::DupLeft, a, a);
        }
    } else if (!a.live() && b.live()) {
        push(EggConfig::Swap, b, none);
        push(EggConfig::Pass, none, b);
        if (ctx.req->allow_broadcast &&
            b.count == ctx.group_sizes[size_t(b.group)]) {
            push(EggConfig::DupRight, b, b);
        }
    } else if (a.group == b.group) {
        const Sig merged{a.group, a.count + b.count};
        push(EggConfig::AddLeft, merged, none);
        push(EggConfig::AddRight, none, merged);
        // Delayed merging (or multicast split) can be necessary.
        push(EggConfig::Pass, a, b);
        push(EggConfig::Swap, b, a);
        if (ctx.req->allow_broadcast) {
            push(EggConfig::AddBoth, merged, merged);
        }
    } else {
        push(EggConfig::Pass, a, b);
        push(EggConfig::Swap, b, a);
    }

    auto viable = [&](const Option &o) {
        const int np_l = topo_.wire(stage, 2 * sw);
        const int np_r = topo_.wire(stage, 2 * sw + 1);
        if (o.l.live() &&
            !(topo_.reachable(stage + 1, np_l) &
              ctx.dest_masks[size_t(o.l.group)])) {
            return false;
        }
        if (o.r.live() &&
            !(topo_.reachable(stage + 1, np_r) &
              ctx.dest_masks[size_t(o.r.group)])) {
            return false;
        }
        return true;
    };

    int order[5] = {0, 1, 2, 3, 4};
    if (ctx.randomized && num_options > 1) {
        for (int i = num_options - 1; i > 0; --i) {
            std::swap(order[i], order[int(ctx.rng->below(uint64_t(i + 1)))]);
        }
    }

    for (int oi = 0; oi < num_options; ++oi) {
        const Option &o = options[order[oi]];
        if (!viable(o)) continue;
        ports[size_t(2 * sw)] = o.l;
        ports[size_t(2 * sw + 1)] = o.r;
        ctx.config[size_t(stage)][size_t(sw)] = o.cfg;
        if (dfs(ctx, stage, sw + 1, ports)) return true;
        if (ctx.nodes > ctx.budget) break;
    }
    ports[size_t(2 * sw)] = a;
    ports[size_t(2 * sw + 1)] = b;
    return false;
}

bool
BirrdRouter::verify(const BirrdTopology &topo, const BirrdConfigWord &config,
                    const RouteRequest &req)
{
    BirrdNetwork net(topo.numInputs());
    std::vector<PortValue> inputs(static_cast<size_t>(topo.numInputs()));
    std::vector<int64_t> expected(req.dests_of_group.size(), 0);
    for (int i = 0; i < topo.numInputs(); ++i) {
        const int g = req.group_of_input[size_t(i)];
        if (g < 0) continue;
        const int64_t v = (int64_t{1} << (i % 60)) + i;
        inputs[size_t(i)] = v;
        expected[size_t(g)] += v;
    }
    const auto outputs = net.evaluate(config, inputs);
    for (size_t g = 0; g < req.dests_of_group.size(); ++g) {
        for (int d : req.dests_of_group[g]) {
            if (!outputs[size_t(d)] || *outputs[size_t(d)] != expected[g]) {
                return false;
            }
        }
    }
    return true;
}

} // namespace feather
