#pragma once

/**
 * @file
 * BIRRD topology: two back-to-back butterfly networks with log2(AW)-bit
 * bit-reverse inter-stage connections, per Algorithm 1 of the paper.
 *
 * An AW-input BIRRD has 2*log2(AW) stages of AW/2 two-input switches
 * (AW = 4 is the special case with 2*log2(AW)-1 = 3 stages: the last stages
 * of the two half butterflies merge). Stage i's output port j drives stage
 * (i+1)'s input port reverseBits(j, r_i); the final stage's (identity)
 * mapping lands on the output buffers / StaB banks.
 */

#include <cstdint>
#include <vector>

namespace feather {

/** Static wiring of an AW-input BIRRD. */
class BirrdTopology
{
  public:
    /** @param num_inputs AW; must be a power of two >= 2. */
    explicit BirrdTopology(int num_inputs);

    int numInputs() const { return num_inputs_; }
    int numStages() const { return num_stages_; }
    int switchesPerStage() const { return num_inputs_ / 2; }
    int totalSwitches() const { return numStages() * switchesPerStage(); }

    /**
     * Inter-stage wire: input port of stage (s+1) driven by output port
     * @p port of stage @p s. For s == numStages()-1 this is the output
     * buffer index.
     */
    int wire(int stage, int port) const { return wires_[stage][port]; }

    /**
     * Set of final output-buffer indices reachable from input port @p port
     * of stage @p stage, as a bitmask (AW <= 64). Reachability is
     * config-independent because every switch can steer either input to
     * either output.
     */
    uint64_t reachable(int stage, int port) const
    {
        return reach_[stage][port];
    }

    /** Bit-reversal range of stage @p s (Alg. 1 line 12). */
    int bitRange(int stage) const;

    /**
     * Width of one BIRRD configuration word in bits:
     * 2 bits per switch across all stages (paper: AW*(2*log(AW)-1) for the
     * merged 4-input case generalises to 2 * totalSwitches()).
     */
    int configBits() const { return 2 * totalSwitches(); }

  private:
    int num_inputs_;
    int log2_inputs_;
    int num_stages_;
    /** wires_[s][p]: stage-s output port p -> stage-(s+1) input port. */
    std::vector<std::vector<int>> wires_;
    /** reach_[s][p]: bitmask of reachable outputs from stage-s input p. */
    std::vector<std::vector<uint64_t>> reach_;
};

} // namespace feather
