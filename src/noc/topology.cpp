#include "noc/topology.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/log.hpp"

namespace feather {

BirrdTopology::BirrdTopology(int num_inputs) : num_inputs_(num_inputs)
{
    FEATHER_CHECK(num_inputs >= 2 && isPow2(uint64_t(num_inputs)),
                  "BIRRD input count must be a power of two >= 2, got ",
                  num_inputs);
    FEATHER_CHECK(num_inputs <= 64,
                  "router reachability masks support up to 64 inputs");
    log2_inputs_ = int(log2Exact(uint64_t(num_inputs)));

    if (num_inputs_ == 2) {
        num_stages_ = 1;
    } else if (num_inputs_ == 4) {
        // Special case (paper footnote 1): the two half butterflies share
        // their middle stage, giving 2*log2(4)-1 = 3 stages.
        num_stages_ = 3;
    } else {
        num_stages_ = 2 * log2_inputs_;
    }

    wires_.assign(size_t(num_stages_), std::vector<int>(num_inputs_, 0));
    for (int s = 0; s < num_stages_; ++s) {
        const int range = bitRange(s);
        for (int p = 0; p < num_inputs_; ++p) {
            wires_[s][p] = int(reverseBits(uint32_t(p), uint32_t(range)));
        }
    }

    // Reachability: backward pass from the outputs.
    reach_.assign(size_t(num_stages_ + 1),
                  std::vector<uint64_t>(num_inputs_, 0));
    for (int p = 0; p < num_inputs_; ++p) {
        reach_[size_t(num_stages_)][p] = uint64_t{1} << p;
    }
    for (int s = num_stages_ - 1; s >= 0; --s) {
        for (int p = 0; p < num_inputs_; ++p) {
            const int sw = p / 2;
            const int out_l = 2 * sw;
            const int out_r = 2 * sw + 1;
            reach_[s][p] = reach_[s + 1][wires_[s][out_l]] |
                           reach_[s + 1][wires_[s][out_r]];
        }
    }
    // Sanity: from stage 0 every input must reach every output.
    for (int p = 0; p < num_inputs_; ++p) {
        FEATHER_CHECK(reach_[0][p] ==
                          (num_inputs_ == 64
                               ? ~uint64_t{0}
                               : (uint64_t{1} << num_inputs_) - 1),
                      "BIRRD topology is not fully connected from input ", p);
    }
}

int
BirrdTopology::bitRange(int stage) const
{
    FEATHER_CHECK(stage >= 0 && stage < num_stages_, "stage out of range");
    if (num_inputs_ == 2) {
        return 1;
    }
    if (num_inputs_ == 4) {
        // Merged 3-stage network: [2, 2, 1].
        return stage == 2 ? 1 : 2;
    }
    const int n = log2_inputs_;
    return std::min({n, 2 + stage, 2 * n - stage});
}

} // namespace feather
