#include "noc/birrd.hpp"

#include "common/log.hpp"

namespace feather {

std::string
toString(EggConfig c)
{
    switch (c) {
      case EggConfig::Pass: return "=";
      case EggConfig::Swap: return "x";
      case EggConfig::AddLeft: return "+L";
      case EggConfig::AddRight: return "+R";
      case EggConfig::AddBoth: return "+B";
      case EggConfig::DupLeft: return "dL";
      case EggConfig::DupRight: return "dR";
    }
    panic("unreachable egg config");
}

std::pair<PortValue, PortValue>
evalEgg(EggConfig cfg, PortValue left, PortValue right)
{
    auto sum = [&]() -> PortValue {
        if (!left && !right) return std::nullopt;
        return left.value_or(0) + right.value_or(0);
    };
    switch (cfg) {
      case EggConfig::Pass: return {left, right};
      case EggConfig::Swap: return {right, left};
      case EggConfig::AddLeft: return {sum(), std::nullopt};
      case EggConfig::AddRight: return {std::nullopt, sum()};
      case EggConfig::AddBoth: return {sum(), sum()};
      case EggConfig::DupLeft: return {left, left};
      case EggConfig::DupRight: return {right, right};
    }
    panic("unreachable egg config");
}

BirrdConfigWord
passThroughConfig(const BirrdTopology &topo)
{
    return BirrdConfigWord(
        size_t(topo.numStages()),
        std::vector<EggConfig>(size_t(topo.switchesPerStage()),
                               EggConfig::Pass));
}

void
BirrdNetwork::evaluateInto(const BirrdConfigWord &config,
                           const std::vector<PortValue> &inputs,
                           std::vector<PortValue> &outputs,
                           std::vector<PortValue> &scratch,
                           int64_t *active_switches) const
{
    const int n = topo_.numInputs();
    FEATHER_CHECK(int(inputs.size()) == n, "input arity mismatch");
    FEATHER_CHECK(int(config.size()) == topo_.numStages(),
                  "config stage count mismatch");

    outputs.assign(inputs.begin(), inputs.end());
    scratch.assign(static_cast<size_t>(n), std::nullopt);
    for (int s = 0; s < topo_.numStages(); ++s) {
        FEATHER_CHECK(int(config[s].size()) == topo_.switchesPerStage(),
                      "config switch count mismatch at stage ", s);
        std::fill(scratch.begin(), scratch.end(), std::nullopt);
        for (int sw = 0; sw < topo_.switchesPerStage(); ++sw) {
            const PortValue l = outputs[size_t(2 * sw)];
            const PortValue r = outputs[size_t(2 * sw + 1)];
            if (active_switches && (l || r)) ++*active_switches;
            const auto [lo, ro] = evalEgg(config[s][sw], l, r);
            scratch[size_t(topo_.wire(s, 2 * sw))] = lo;
            scratch[size_t(topo_.wire(s, 2 * sw + 1))] = ro;
        }
        outputs.swap(scratch);
    }
}

std::vector<PortValue>
BirrdNetwork::evaluate(const BirrdConfigWord &config,
                       const std::vector<PortValue> &inputs) const
{
    std::vector<PortValue> outputs, scratch;
    evaluateInto(config, inputs, outputs, scratch, nullptr);
    return outputs;
}

int64_t
BirrdNetwork::activeSwitches(const BirrdConfigWord &config,
                             const std::vector<PortValue> &inputs) const
{
    int64_t active = 0;
    std::vector<PortValue> outputs, scratch;
    evaluateInto(config, inputs, outputs, scratch, &active);
    return active;
}

} // namespace feather
