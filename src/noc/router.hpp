#pragma once

/**
 * @file
 * BIRRD routing: compute Egg configurations that realise a requested
 * reduction + reordering pattern (§III-B3).
 *
 * A request assigns each input port to a *reduction group* and each group to
 * one (or, with the broadcast extension, several) output port(s). Reduction
 * is treated as reverse multicasting: members of a group merge pairwise when
 * their paths coincide (Add-Left / Add-Right Eggs) and the final sum must
 * arrive exactly at the group's destination port(s).
 *
 * Algorithm. BIRRD is two back-to-back butterflies. In a butterfly the path
 * between a port and a final output is *unique* (the reachable sets of a
 * switch's two children are disjoint), so the only routing freedom lives in
 * the first half: each signal chooses a *crossover port* at the boundary
 * stage X = numStages - log2(AW), after which its path is forced. Routing
 * therefore searches over crossover assignments with per-port occupancy
 * pruning (two different groups may never share a port; members of the same
 * group sharing a port merge, which is exactly an Add Egg). This mirrors the
 * path-selection algorithm of Arora/Leighton/Maggs that the paper adopts;
 * a brute-force DFS over raw switch configurations remains as the fallback
 * the paper also describes. Solved patterns are cached — FEATHER generates
 * BIRRD configurations offline into the Instruction Buffer.
 */

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "noc/birrd.hpp"

namespace feather {

/** One routing problem instance. */
struct RouteRequest
{
    /** group_of_input[i] = group id of input port i, or -1 if unused. */
    std::vector<int> group_of_input;
    /** dests_of_group[g] = output ports that must receive group g's sum. */
    std::vector<std::vector<int>> dests_of_group;
    /** Allow the broadcast Egg extension (AddBoth/DupLeft/DupRight). */
    bool allow_broadcast = false;

    /** Canonical cache key. */
    std::string key() const;

    /**
     * Build a single-destination reduction request.
     * @param group_of_input per-input group ids (-1 = unused)
     * @param dest_of_group  one output port per group
     */
    static RouteRequest reduction(std::vector<int> group_of_input,
                                  const std::vector<int> &dest_of_group);

    /**
     * Build a pure permutation request (group size 1 per live input).
     * @param dest_of_input dest_of_input[i] = output port, or -1 if unused
     */
    static RouteRequest permutation(const std::vector<int> &dest_of_input);
};

/** Router statistics (reported by the routing ablation bench). */
struct RouterStats
{
    int64_t requests = 0;
    int64_t cache_hits = 0;
    int64_t solved_path_search = 0; ///< solved by crossover-path search
    int64_t solved_fallback = 0;    ///< needed the brute-force DFS fallback
    int64_t failures = 0;
    int64_t nodes_explored = 0;
};

/** Routing engine with config cache for one BIRRD instance. */
class BirrdRouter
{
  public:
    explicit BirrdRouter(const BirrdTopology &topo, uint64_t seed = 1);

    /**
     * Solve @p req. Returns std::nullopt when no configuration was found
     * within the node budget (callers treat this as "pick another
     * dataflow"; the test suite verifies it never happens for the patterns
     * FEATHER generates).
     */
    std::optional<BirrdConfigWord> route(const RouteRequest &req);

    /** Total nodes explored, cache hits, etc. */
    const RouterStats &stats() const { return stats_; }

    /** Per-attempt search node budget. */
    void setNodeBudget(int64_t budget) { node_budget_ = budget; }
    /** Number of randomized restarts after the deterministic pass. */
    void setMaxRestarts(int restarts) { max_restarts_ = restarts; }
    /** Disable the path search (ablation: fallback DFS only). */
    void setUsePathSearch(bool use) { use_path_search_ = use; }

    /**
     * Check that @p config realises @p req on @p topo: pushes distinct
     * sentinel values through the network and compares each destination
     * against its group's exact sum.
     */
    static bool verify(const BirrdTopology &topo, const BirrdConfigWord &config,
                       const RouteRequest &req);

  private:
    // ---- path-based search over crossover assignments ----

    /** One routable entity: a group member (or a whole multicast group). */
    struct PathTask
    {
        int group = -1;
        int input_port = -1;     ///< -1 for the multicast merged stage
        uint64_t dest_mask = 0;  ///< outputs this task must cover
    };

    struct PathState
    {
        /** occ[t][p] = group occupying port p at stage boundary t, or -1. */
        std::vector<std::vector<int>> occ;
        /** drive[t][p] = bitmask(2) of local switch outputs driven. */
        std::vector<std::vector<uint8_t>> drive;

        /** Undo log for cheap backtracking. */
        struct Change
        {
            int16_t t;
            int16_t port;
            int32_t old_occ;
            uint8_t old_drive;
        };
        std::vector<Change> log;

        size_t mark() const { return log.size(); }
        void set(int t, int port, int group, uint8_t drive_bits);
        void rollback(size_t mark);
    };

    std::optional<BirrdConfigWord> routeByPaths(const RouteRequest &req,
                                                bool randomized);
    bool placeFirstHalf(PathState &st, int group, int input_port,
                        int crossover) const;
    bool placeSecondHalf(PathState &st, int group, int crossover,
                         uint64_t dest_mask) const;
    BirrdConfigWord extractConfig(const PathState &st,
                                  const RouteRequest &req) const;

    // ---- brute-force DFS fallback over switch configurations ----

    struct Sig
    {
        int group = -1;
        int count = 0;
        bool live() const { return group >= 0; }
    };

    struct SearchCtx
    {
        const RouteRequest *req = nullptr;
        std::vector<int> group_sizes;
        std::vector<uint64_t> dest_masks;
        int64_t nodes = 0;
        int64_t budget = 0;
        bool randomized = false;
        Rng *rng = nullptr;
        BirrdConfigWord config;
    };

    std::optional<BirrdConfigWord> routeByDfs(const RouteRequest &req,
                                              bool randomized);
    bool dfs(SearchCtx &ctx, int stage, int sw, std::vector<Sig> &ports);
    bool boundaryOk(const SearchCtx &ctx, int next_stage,
                    const std::vector<Sig> &ports) const;
    bool finalOk(const SearchCtx &ctx, const std::vector<Sig> &ports) const;

    const BirrdTopology &topo_;
    int crossover_stage_;
    /** reach_fh_[t][p]: crossover ports reachable from stage-t port p. */
    std::vector<std::vector<uint64_t>> reach_fh_;
    Rng rng_;
    /** Per-attempt budget; rapid randomized restarts beat one deep dive. */
    int64_t node_budget_ = 50000;
    int max_restarts_ = 64;
    bool use_path_search_ = true;
    RouterStats stats_;
    std::unordered_map<std::string, BirrdConfigWord> cache_;
};

} // namespace feather
