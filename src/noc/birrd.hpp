#pragma once

/**
 * @file
 * BIRRD functional model: Egg switches (Fig. 8) plus whole-network
 * evaluation under a per-cycle configuration.
 *
 * The four base Egg modes are the paper's Pass (=), Swap (x), Add-Left (∓)
 * and Add-Right (±). The broadcast extension the paper mentions ("extra
 * broadcast functions could be added in the Eggs to duplicate accumulated
 * results in multiple banks of StaB") is implemented as AddBoth / DupLeft /
 * DupRight and can be enabled in the router for multicast writes.
 */

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "noc/topology.hpp"

namespace feather {

/** Configuration of one 2x2 Egg switch. */
enum class EggConfig : uint8_t {
    Pass,     ///< left->left, right->right (=)
    Swap,     ///< left->right, right->left (x)
    AddLeft,  ///< sum -> left output (∓)
    AddRight, ///< sum -> right output (±)
    AddBoth,  ///< broadcast extension: sum -> both outputs
    DupLeft,  ///< broadcast extension: left input -> both outputs
    DupRight, ///< broadcast extension: right input -> both outputs
};

std::string toString(EggConfig c);

/** Optional-valued port: absent means no live data on the wire. */
using PortValue = std::optional<int64_t>;

/**
 * Evaluate one Egg: (left_in, right_in) -> (left_out, right_out).
 *
 * Add modes consume both inputs into the accumulated output; the secondary
 * output carries no live data (the output buffer's write-enable ignores it).
 */
std::pair<PortValue, PortValue> evalEgg(EggConfig cfg, PortValue left,
                                        PortValue right);

/** Full per-cycle configuration: configs[stage][switch]. */
using BirrdConfigWord = std::vector<std::vector<EggConfig>>;

/** An all-Pass configuration word for @p topo. */
BirrdConfigWord passThroughConfig(const BirrdTopology &topo);

/**
 * BIRRD network instance: topology + combinational evaluation.
 *
 * Pipeline timing (one stage per cycle, i.e. numStages() cycles of latency,
 * one new input vector accepted per cycle) is accounted by the FEATHER
 * controller; this class computes the per-word dataflow.
 */
class BirrdNetwork
{
  public:
    explicit BirrdNetwork(int num_inputs) : topo_(num_inputs) {}

    const BirrdTopology &topology() const { return topo_; }
    int numInputs() const { return topo_.numInputs(); }

    /** Pipeline latency in cycles (one per stage). */
    int latency() const { return topo_.numStages(); }

    /**
     * Push one vector of values through the network under @p config.
     * @param inputs one PortValue per input port (size numInputs())
     * @return one PortValue per output-buffer port
     */
    std::vector<PortValue> evaluate(const BirrdConfigWord &config,
                                    const std::vector<PortValue> &inputs) const;

    /** Count of switches that actively steered data (for energy). */
    int64_t activeSwitches(const BirrdConfigWord &config,
                           const std::vector<PortValue> &inputs) const;

    /**
     * Fused evaluate + activeSwitches in one propagation pass, writing the
     * output ports into @p outputs (resized to numInputs()) and reusing
     * @p scratch as the inter-stage buffer — the hot-loop variant the
     * FEATHER controller calls once per wave instead of propagating the
     * same vector twice and reallocating port buffers each time.
     *
     * @param active_switches if non-null, incremented by the number of
     *        switches that saw live data (same count as activeSwitches()).
     */
    void evaluateInto(const BirrdConfigWord &config,
                      const std::vector<PortValue> &inputs,
                      std::vector<PortValue> &outputs,
                      std::vector<PortValue> &scratch,
                      int64_t *active_switches) const;

  private:
    BirrdTopology topo_;
};

} // namespace feather
