#include "area/area_model.hpp"

#include <cmath>

#include "common/bits.hpp"
#include "common/log.hpp"

namespace feather {

namespace {

// One BIRRD reorder-reduction switch ("Egg"): 32b adder, two 2:1 muxes,
// pipeline registers, 2b config — TSMC 28nm-class. Calibrated so the
// 16-input BIRRD (64 switches) is ~4% of the 475.9K um^2 16x16 die and
// 3.3% of its 323 mW power (Fig. 14b caption).
constexpr double kBirrdSwitchAreaUm2 = 297.0;
constexpr double kBirrdSwitchPowerMw = 0.167;

// The paper reports BIRRD as ~1.43x FAN area / 1.17x power and ~2.21x ART
// area / 2.07x power across scales (§VI-D1); FAN/ART nodes are fewer but
// individually larger (multi-level forwarding muxes and long wires), which
// nets out to proportional scaling in the 16..256 input range of Fig. 14a.
constexpr double kFanAreaRatio = 1.43;
constexpr double kFanPowerRatio = 1.17;
constexpr double kArtAreaRatio = 2.21;
constexpr double kArtPowerRatio = 2.07;

// Tab. V empirical die model: area = a*Npe + b*Npe*AW (um^2); the AW term
// captures the column buses, BIRRD slice and per-column StaB banks that
// grow with array width. Fitted to the paper's seven published shapes
// (relative-error least squares; max |error| ~10%).
constexpr double kDieAreaPerPe = 1184.93;
constexpr double kDieAreaPerPeAw = 48.94;
constexpr double kDiePowerPerPe = 0.8189;
constexpr double kDiePowerPerPeAw = 0.01932;

} // namespace

AreaPower
birrdAreaPower(int num_inputs)
{
    FEATHER_CHECK(isPow2(uint64_t(num_inputs)) && num_inputs >= 4,
                  "BIRRD size must be a power of two >= 4");
    const double n = double(num_inputs);
    const double logn = std::log2(n);
    const int stages = num_inputs == 4 ? 3 : int(2 * logn);
    const double switches = double(stages) * n / 2.0;
    return {kBirrdSwitchAreaUm2 * switches, kBirrdSwitchPowerMw * switches};
}

AreaPower
fanAreaPower(int num_inputs)
{
    const AreaPower b = birrdAreaPower(num_inputs);
    return {b.area_um2 / kFanAreaRatio, b.power_mw / kFanPowerRatio};
}

AreaPower
artAreaPower(int num_inputs)
{
    const AreaPower b = birrdAreaPower(num_inputs);
    return {b.area_um2 / kArtAreaRatio, b.power_mw / kArtPowerRatio};
}

AreaPower
featherDieModel(int aw, int ah)
{
    const double npe = double(aw) * double(ah);
    return {
        kDieAreaPerPe * npe + kDieAreaPerPeAw * npe * double(aw),
        kDiePowerPerPe * npe + kDiePowerPerPeAw * npe * double(aw),
    };
}

std::vector<TableVRow>
tableVPaperRows()
{
    return {
        {64, 128, 36920519.69, 26400.00, 1.0},
        {64, 64, 18389176.19, 13200.00, 1.0},
        {32, 32, 2727906.70, 961.70, 1.0},
        {16, 32, 965665.10, 655.55, 1.0},
        {16, 16, 475897.19, 323.48, 1.0},
        {8, 8, 97976.46, 65.25, 1.0},
        {4, 4, 24693.98, 16.28, 1.0},
    };
}

double
DieBreakdown::totalMm2() const
{
    double total = 0.0;
    for (const auto &c : components) total += c.area_mm2;
    return total;
}

double
DieBreakdown::share(const std::string &component) const
{
    for (const auto &c : components) {
        if (c.name == component) return c.area_mm2 / totalMm2();
    }
    return 0.0;
}

DieBreakdown
eyerissLike256Breakdown()
{
    // Fixed-dataflow Eyeriss-like 256-PE design: no reconfigurable NoCs,
    // modest controller; FEATHER totals 1.06x of this die.
    return {"Eyeriss-like-256",
            {{"MAC", 0.110},
             {"local mem", 0.120},
             {"Comp. NoC", 0.049},
             {"Dist. NoC", 0.010},
             {"Redn. NoC", 0.010},
             {"Controller", 0.020}}};
}

DieBreakdown
sigma256Breakdown()
{
    // SIGMA-256: Benes distribution + per-row FAN reduction dominate
    // (2.93x the FEATHER die, §VI-D2); BIRRD replaces the FAN instances
    // with a single shared network (94% reduction-NoC saving).
    return {"SIGMA-256",
            {{"MAC", 0.110},
             {"local mem", 0.060},
             {"Comp. NoC", 0.020},
             {"Dist. NoC", 0.535},
             {"Redn. NoC", 0.225},
             {"Controller", 0.040}}};
}

DieBreakdown
feather256Breakdown()
{
    // FEATHER-256: large PE-local memory (rows buffer data while sharing
    // the output buses) but a single small BIRRD (4% of die) and
    // point-to-point distribution.
    return {"FEATHER-256",
            {{"MAC", 0.110},
             {"local mem", 0.150},
             {"Comp. NoC", 0.020},
             {"Dist. NoC", 0.0145},
             {"Redn. NoC", 0.0135},
             {"Controller", 0.030}}};
}

} // namespace feather
