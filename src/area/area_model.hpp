#pragma once

/**
 * @file
 * Analytical area / power models for the resource evaluation (§VI-D/E):
 *
 *  - reduction networks (Fig. 14a): BIRRD vs SIGMA's FAN vs MAERI's ART at
 *    16..256 reduction inputs, TSMC 28nm-class constants calibrated so a
 *    16-input BIRRD is ~4% of the 16x16 FEATHER die and the BIRRD:FAN:ART
 *    area ratios match the paper's 1.43x / 2.21x (power 1.17x / 2.07x);
 *  - die breakdown (Fig. 14b): component areas of Eyeriss-like-256,
 *    SIGMA-256 and FEATHER-256 calibrated to the paper's totals (SIGMA =
 *    2.93x FEATHER, FEATHER = 1.06x Eyeriss-like, BIRRD = 4% of die);
 *  - full-chip scaling (Tab. V): post-PnR area/power at seven shapes,
 *    reproduced by an empirical per-PE model fitted to the paper's own
 *    table (area = a*Npe + b*Npe*AW; within ~10% at every published
 *    shape).
 */

#include <cstdint>
#include <string>
#include <vector>

namespace feather {

/** Area (um^2) and power (mW) of one block. */
struct AreaPower
{
    double area_um2 = 0.0;
    double power_mw = 0.0;
};

/** BIRRD: 2*log2(n) stages of n/2 reorder-reduction switches. */
AreaPower birrdAreaPower(int num_inputs);

/** SIGMA's FAN (forwarding adder network) at @p num_inputs. */
AreaPower fanAreaPower(int num_inputs);

/** MAERI's ART (augmented reduction tree) at @p num_inputs. */
AreaPower artAreaPower(int num_inputs);

/** Tab. V model: whole FEATHER instance at AW x AH. */
AreaPower featherDieModel(int aw, int ah);

/** One row of the paper's post-PnR Tab. V. */
struct TableVRow
{
    int aw;
    int ah;
    double paper_area_um2;
    double paper_power_mw;
    double paper_freq_ghz;
};

/** The paper's published Tab. V rows, for side-by-side comparison. */
std::vector<TableVRow> tableVPaperRows();

/** One component of a Fig. 14b die breakdown. */
struct DieComponent
{
    std::string name;
    double area_mm2;
};

/** Fig. 14b breakdown of one design (components sum to the die total). */
struct DieBreakdown
{
    std::string design;
    std::vector<DieComponent> components;

    double totalMm2() const;
    double share(const std::string &component) const;
};

DieBreakdown eyerissLike256Breakdown();
DieBreakdown sigma256Breakdown();
DieBreakdown feather256Breakdown();

} // namespace feather
