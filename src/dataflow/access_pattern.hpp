#pragma once

/**
 * @file
 * Per-cycle access-set generation: which iAct / oAct elements a mapping
 * touches concurrently, and which buffer lines those land on under a given
 * layout. This is the machinery behind the paper's bank-conflict assessment
 * (§V-B) and the M1–M8 walkthrough tables of Fig. 4.
 */

#include <vector>

#include "buffer/spec.hpp"
#include "dataflow/mapping.hpp"
#include "layout/layout.hpp"
#include "workload/shapes.hpp"

namespace feather {

/** One temporal loop level (for odometer iteration). */
struct LoopLevel
{
    Dim dim;
    int64_t extent;
};

/** Odometer over a list of loop levels, outermost first. */
class LoopNest
{
  public:
    explicit LoopNest(std::vector<LoopLevel> levels);

    int64_t totalIters() const { return total_; }

    /**
     * Advance the coordinate through the nest (innermost fastest).
     * @return false when the iteration space is exhausted.
     */
    bool advance(Coord &c) const;

    const std::vector<LoopLevel> &levels() const { return levels_; }

  private:
    std::vector<LoopLevel> levels_;
    int64_t total_ = 1;
};

/**
 * iAct coordinates read concurrently in one spatial step.
 *
 * @param layer   the layer being executed
 * @param spatial spatially-unrolled dims with degrees
 * @param base    temporal base coordinate (offsets in every dim)
 *
 * Output coordinates are deduplicated; padded (out-of-tensor) positions are
 * dropped. For conv layers the returned coords are in iAct space (C,H,W
 * with H = P*stride + R - pad); for GEMM in (M,K).
 */
std::vector<Coord> concurrentIactCoords(const LayerSpec &layer,
                                        const std::vector<ParallelDim> &spatial,
                                        const Coord &base);

/** oAct coordinates produced concurrently in one spatial step. */
std::vector<Coord> concurrentOactCoords(const LayerSpec &layer,
                                        const std::vector<ParallelDim> &spatial,
                                        const Coord &base);

/** Distinct buffer lines touched by @p coords under layout @p bl. */
std::vector<int64_t> linesTouched(const BoundLayout &bl,
                                  const std::vector<Coord> &coords);

/**
 * Sample temporal base coordinates for slowdown estimation: steps the
 * temporal loops of @p mapping through up to @p max_samples early
 * iterations (the access pattern is periodic, so early cycles are
 * representative — matching Layoutloop's per-cycle analysis).
 */
std::vector<Coord> sampleTemporalBases(const LayerSpec &layer,
                                       const Mapping &mapping,
                                       int max_samples);

/**
 * Average read slowdown of (mapping, layout) on @p layer over sampled
 * cycles: mean over cycles of conflictCycles(...) — 1.0 means concordant
 * (§II-C), larger means bank conflicts (discordant).
 */
double averageReadSlowdown(const LayerSpec &layer, const Mapping &mapping,
                           const BoundLayout &iact_layout,
                           const BufferSpec &buf, int max_samples = 16);

} // namespace feather
