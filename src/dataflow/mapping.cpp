#include "dataflow/mapping.hpp"

#include "common/bits.hpp"
#include "common/log.hpp"

namespace feather {

int64_t
totalDegree(const std::vector<ParallelDim> &dims)
{
    int64_t p = 1;
    for (const auto &d : dims) {
        p *= d.degree;
    }
    return p;
}

double
spatialOccupancy(const std::vector<ParallelDim> &dims, const Extents &extents)
{
    double occ = 1.0;
    for (const auto &d : dims) {
        const int64_t e = std::max<int64_t>(extents[d.dim], 1);
        const int64_t steps = ceilDiv(e, d.degree);
        occ *= double(e) / double(d.degree * steps);
    }
    return occ;
}

std::vector<ParallelDim>
Mapping::spatial() const
{
    std::vector<ParallelDim> all = cols;
    all.insert(all.end(), rows.begin(), rows.end());
    return all;
}

int64_t
Mapping::tileExtent(Dim d, const Extents &ext) const
{
    const int64_t full = std::max<int64_t>(ext[d], 1);
    const int64_t t = tile[d];
    return t > 0 ? std::min(t, full) : full;
}

std::string
Mapping::toString() const
{
    std::string s = "cols[";
    for (const auto &d : cols) {
        s += strCat(dimName(d.dim), d.degree, " ");
    }
    s += "] rows[";
    for (const auto &d : rows) {
        s += strCat(dimName(d.dim), d.degree, " ");
    }
    s += "] order ";
    for (Dim d : temporal_order) {
        s += dimName(d);
    }
    return s;
}

Extents
convExtents(const ConvShape &shape)
{
    Extents e;
    e[Dim::N] = shape.n;
    e[Dim::M] = shape.depthwise ? 1 : shape.m;
    e[Dim::C] = shape.c;
    e[Dim::H] = shape.h;
    e[Dim::W] = shape.w;
    e[Dim::P] = shape.outH();
    e[Dim::Q] = shape.outW();
    e[Dim::R] = shape.r;
    e[Dim::S] = shape.s;
    return e;
}

Extents
gemmExtents(const GemmShape &shape)
{
    Extents e;
    e[Dim::M] = shape.m;
    e[Dim::N] = shape.n;
    e[Dim::K] = shape.k;
    return e;
}

Extents
iactExtents(const LayerSpec &layer)
{
    Extents e;
    if (layer.type == OpType::Gemm) {
        e[Dim::M] = layer.gemm.m;
        e[Dim::K] = layer.gemm.k;
    } else {
        e[Dim::N] = layer.conv.n;
        e[Dim::C] = layer.conv.c;
        e[Dim::H] = layer.conv.h;
        e[Dim::W] = layer.conv.w;
    }
    return e;
}

Extents
oactExtents(const LayerSpec &layer)
{
    Extents e;
    if (layer.type == OpType::Gemm) {
        e[Dim::M] = layer.gemm.m;
        e[Dim::N] = layer.gemm.n;
    } else {
        e[Dim::N] = layer.conv.n;
        e[Dim::M] = layer.conv.depthwise ? layer.conv.c : layer.conv.m;
        e[Dim::P] = layer.conv.outH();
        e[Dim::Q] = layer.conv.outW();
    }
    return e;
}

} // namespace feather
