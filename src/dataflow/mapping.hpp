#pragma once

/**
 * @file
 * Dataflow (mapping) representation with the paper's four degrees of
 * freedom — (T)iling, (O)rdering, (P)arallelism, (S)hape (§II-A).
 *
 * A Mapping describes how one layer runs on a PE array:
 *  - `spatial` lists the parallelized dimensions and their degrees; their
 *    product must not exceed the PE count. The split into `num_cols` /
 *    `num_rows` groups captures the (S)hape: which dims live on the column
 *    axis (and therefore feed the reduction network concurrently) versus
 *    the row axis (time-multiplexed onto the reduction network).
 *  - `temporal_order` is the loop order of the remaining (tiled) iteration,
 *    outermost first ((O)rdering).
 *  - `tile` gives level-1 tile sizes per dim; 0 means "full extent"
 *    ((T)iling).
 */

#include <string>
#include <vector>

#include "layout/coords.hpp"
#include "workload/dims.hpp"
#include "workload/shapes.hpp"

namespace feather {

/** One spatially-unrolled dimension. */
struct ParallelDim
{
    Dim dim;
    int64_t degree;

    bool
    operator==(const ParallelDim &o) const
    {
        return dim == o.dim && degree == o.degree;
    }
};

/** Product of parallel degrees. */
int64_t totalDegree(const std::vector<ParallelDim> &dims);

/**
 * Average spatial occupancy of the parallel dims on a workload: each dim of
 * extent E unrolled by degree p contributes E / (p * ceil(E/p)) — the
 * quantization loss when E does not divide evenly.
 */
double spatialOccupancy(const std::vector<ParallelDim> &dims,
                        const Extents &extents);

/** A full dataflow mapping. */
struct Mapping
{
    std::vector<ParallelDim> cols; ///< dims unrolled across array columns
    std::vector<ParallelDim> rows; ///< dims unrolled across array rows
    std::vector<Dim> temporal_order; ///< outer -> inner
    DimMap tile;                     ///< level-1 tile size; 0 = full extent

    /** All spatial dims (cols then rows). */
    std::vector<ParallelDim> spatial() const;

    /** Effective tile extent of @p d for a workload of extents @p ext. */
    int64_t tileExtent(Dim d, const Extents &ext) const;

    std::string toString() const;
};

/** Extents of a conv layer as a DimMap (P/Q included). */
Extents convExtents(const ConvShape &shape);

/** Extents of a GEMM as a DimMap. */
Extents gemmExtents(const GemmShape &shape);

/** Extents of the layer's iAct tensor dims only (N,C,H,W or M,K). */
Extents iactExtents(const LayerSpec &layer);

/** Extents of the layer's oAct tensor dims only (N,M,P,Q or M,N). */
Extents oactExtents(const LayerSpec &layer);

} // namespace feather
