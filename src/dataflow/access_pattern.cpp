#include "dataflow/access_pattern.hpp"

#include <algorithm>
#include <utility>

#include "common/log.hpp"

namespace feather {

LoopNest::LoopNest(std::vector<LoopLevel> levels) : levels_(std::move(levels))
{
    for (const auto &l : levels_) {
        FEATHER_CHECK(l.extent >= 1, "loop extent must be >= 1");
        total_ *= l.extent;
    }
}

bool
LoopNest::advance(Coord &c) const
{
    for (size_t i = levels_.size(); i-- > 0;) {
        const auto &l = levels_[i];
        if (++c[l.dim] < l.extent) {
            return true;
        }
        c[l.dim] = 0;
    }
    return false;
}

namespace {

/**
 * Expand the spatial dims as an odometer, calling @p fn with the per-dim
 * spatial indices for each of the totalDegree() combinations.
 */
template <typename Fn>
void
forEachSpatialIndex(const std::vector<ParallelDim> &spatial, Fn fn)
{
    DimMap idx;
    while (true) {
        fn(idx);
        // Odometer advance over the spatial dims.
        size_t i = spatial.size();
        while (i-- > 0) {
            if (++idx[spatial[i].dim] < spatial[i].degree) {
                break;
            }
            idx[spatial[i].dim] = 0;
            if (i == 0) return;
        }
        if (spatial.empty()) return;
    }
}

std::vector<Coord>
dedupe(std::vector<Coord> coords, const std::vector<Dim> &key_dims)
{
    // Pack each coordinate into one 64-bit key (16 bits per dim is ample:
    // on-chip tensor extents are far below 65536) and sort/unique — this
    // is the mapper's hottest loop.
    std::vector<std::pair<uint64_t, size_t>> keyed;
    keyed.reserve(coords.size());
    for (size_t i = 0; i < coords.size(); ++i) {
        uint64_t key = 0;
        for (Dim d : key_dims) {
            key = (key << 16) | uint64_t(coords[i][d] & 0xffff);
        }
        keyed.emplace_back(key, i);
    }
    std::sort(keyed.begin(), keyed.end());
    std::vector<Coord> out;
    out.reserve(keyed.size());
    uint64_t prev = 0;
    bool first = true;
    for (const auto &[key, idx] : keyed) {
        if (first || key != prev) {
            out.push_back(coords[idx]);
            prev = key;
            first = false;
        }
    }
    return out;
}

} // namespace

std::vector<Coord>
concurrentIactCoords(const LayerSpec &layer,
                     const std::vector<ParallelDim> &spatial,
                     const Coord &base)
{
    std::vector<Coord> coords;
    if (layer.type == OpType::Gemm) {
        const GemmShape &g = layer.gemm;
        forEachSpatialIndex(spatial, [&](const DimMap &idx) {
            const int64_t m = base[Dim::M] + idx[Dim::M];
            const int64_t k = base[Dim::K] + idx[Dim::K];
            if (m >= g.m || k >= g.k) return;
            Coord c;
            c[Dim::M] = m;
            c[Dim::K] = k;
            coords.push_back(c);
        });
        return dedupe(std::move(coords), {Dim::M, Dim::K});
    }

    const ConvShape &cs = layer.conv;
    forEachSpatialIndex(spatial, [&](const DimMap &idx) {
        const int64_t cc = base[Dim::C] + idx[Dim::C];
        const int64_t p = base[Dim::P] + idx[Dim::P];
        const int64_t q = base[Dim::Q] + idx[Dim::Q];
        const int64_t r = base[Dim::R] + idx[Dim::R];
        const int64_t s = base[Dim::S] + idx[Dim::S];
        const int64_t h = p * cs.stride + r - cs.pad;
        const int64_t w = q * cs.stride + s - cs.pad;
        if (cc >= cs.c || h < 0 || h >= cs.h || w < 0 || w >= cs.w) return;
        if (p >= cs.outH() || q >= cs.outW() || r >= cs.r || s >= cs.s) return;
        Coord c;
        c[Dim::N] = base[Dim::N] + idx[Dim::N];
        c[Dim::C] = cc;
        c[Dim::H] = h;
        c[Dim::W] = w;
        coords.push_back(c);
    });
    return dedupe(std::move(coords), {Dim::N, Dim::C, Dim::H, Dim::W});
}

std::vector<Coord>
concurrentOactCoords(const LayerSpec &layer,
                     const std::vector<ParallelDim> &spatial,
                     const Coord &base)
{
    std::vector<Coord> coords;
    if (layer.type == OpType::Gemm) {
        const GemmShape &g = layer.gemm;
        forEachSpatialIndex(spatial, [&](const DimMap &idx) {
            const int64_t m = base[Dim::M] + idx[Dim::M];
            const int64_t n = base[Dim::N] + idx[Dim::N];
            if (m >= g.m || n >= g.n) return;
            Coord c;
            c[Dim::M] = m;
            c[Dim::N] = n;
            coords.push_back(c);
        });
        return dedupe(std::move(coords), {Dim::M, Dim::N});
    }

    const ConvShape &cs = layer.conv;
    const int64_t m_extent = cs.depthwise ? cs.c : cs.m;
    forEachSpatialIndex(spatial, [&](const DimMap &idx) {
        // For depthwise convs, the C dim doubles as the output channel.
        const int64_t m =
            cs.depthwise ? base[Dim::C] + idx[Dim::C]
                         : base[Dim::M] + idx[Dim::M];
        const int64_t p = base[Dim::P] + idx[Dim::P];
        const int64_t q = base[Dim::Q] + idx[Dim::Q];
        if (m >= m_extent || p >= cs.outH() || q >= cs.outW()) return;
        Coord c;
        c[Dim::N] = base[Dim::N] + idx[Dim::N];
        c[Dim::M] = m;
        c[Dim::P] = p;
        c[Dim::Q] = q;
        coords.push_back(c);
    });
    return dedupe(std::move(coords), {Dim::N, Dim::M, Dim::P, Dim::Q});
}

std::vector<int64_t>
linesTouched(const BoundLayout &bl, const std::vector<Coord> &coords)
{
    std::vector<int64_t> lines;
    lines.reserve(coords.size());
    for (const Coord &c : coords) {
        lines.push_back(bl.addrOf(c).line);
    }
    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
    return lines;
}

std::vector<Coord>
sampleTemporalBases(const LayerSpec &layer, const Mapping &mapping,
                    int max_samples)
{
    const Extents ext = layer.type == OpType::Gemm
                            ? gemmExtents(layer.gemm)
                            : convExtents(layer.conv);

    // Spatial step sizes: temporal loops advance in units of the parallel
    // degree for parallelized dims, 1 otherwise.
    DimMap step;
    for (int i = 0; i < kNumDims; ++i) {
        step[Dim(i)] = 1;
    }
    for (const auto &pd : mapping.spatial()) {
        step[pd.dim] = std::max(step[pd.dim], pd.degree);
    }

    std::vector<Dim> order = mapping.temporal_order;
    if (order.empty()) {
        // Default order: innermost over reduction dims, then spatial walk.
        if (layer.type == OpType::Gemm) {
            order = {Dim::M, Dim::N, Dim::K};
        } else {
            order = {Dim::M, Dim::C, Dim::P, Dim::Q, Dim::R, Dim::S};
        }
    }

    // Walk the temporal loops innermost-first for up to max_samples steps.
    std::vector<Coord> bases;
    Coord base;
    bases.push_back(base);
    while (int(bases.size()) < max_samples) {
        bool advanced = false;
        for (size_t i = order.size(); i-- > 0;) {
            const Dim d = order[i];
            const int64_t extent = std::max<int64_t>(ext[d], 1);
            if (base[d] + step[d] < extent) {
                base[d] += step[d];
                advanced = true;
                break;
            }
            base[d] = 0;
        }
        if (!advanced) break;
        bases.push_back(base);
    }
    return bases;
}

double
averageReadSlowdown(const LayerSpec &layer, const Mapping &mapping,
                    const BoundLayout &iact_layout, const BufferSpec &buf,
                    int max_samples)
{
    const auto bases = sampleTemporalBases(layer, mapping, max_samples);
    if (bases.empty()) return 1.0;

    double total = 0.0;
    int counted = 0;
    for (const Coord &base : bases) {
        const auto coords =
            concurrentIactCoords(layer, mapping.spatial(), base);
        if (coords.empty()) continue;
        const auto lines = linesTouched(iact_layout, coords);
        total += double(conflictCycles(buf, lines, buf.read_ports));
        ++counted;
    }
    return counted ? total / double(counted) : 1.0;
}

} // namespace feather
