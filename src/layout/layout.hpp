#pragma once

/**
 * @file
 * On-chip data layout descriptor, following the paper's terminology
 * (§II-B, Fig. 3):
 *
 *   "(inter-line dimension order)_(intra-line dimension order with sizes)"
 *
 * Example `CHW_W4H2C2`: lines are ordered by C (outermost), then H, then W
 * across the buffer; within a line, (4,2,2) elements of (W,H,C) are
 * flattened in the order W (outermost) -> H -> C (innermost slot).
 *
 * A Layout is an abstract pattern; binding it to a tensor's Extents yields a
 * BoundLayout that maps element coordinates to (line, slot) addresses in a
 * logical 2D buffer.
 */

#include <string>
#include <vector>

#include "layout/coords.hpp"
#include "workload/dims.hpp"

namespace feather {

/** One intra-line factor: @ref size consecutive elements of @ref dim. */
struct IntraFactor
{
    Dim dim;
    int64_t size;

    bool
    operator==(const IntraFactor &o) const
    {
        return dim == o.dim && size == o.size;
    }
};

/** Abstract layout pattern (not yet bound to tensor extents). */
class Layout
{
  public:
    Layout() = default;

    /**
     * @param inter_order inter-line dimension order, outermost first
     * @param intra       intra-line factors, outermost first
     */
    Layout(std::vector<Dim> inter_order, std::vector<IntraFactor> intra);

    /** Parse a layout string like "HWC_C4W8" or "HCW_W8". */
    static Layout parse(const std::string &text);

    const std::vector<Dim> &interOrder() const { return inter_order_; }
    const std::vector<IntraFactor> &intraFactors() const { return intra_; }

    /** Intra-line tile size of @p d (1 if d is not an intra factor). */
    int64_t intraSize(Dim d) const;

    /** Number of data words per line (product of intra factor sizes). */
    int64_t lineSize() const;

    /** Render back to the paper's string form. */
    std::string toString() const;

    bool
    operator==(const Layout &o) const
    {
        return inter_order_ == o.inter_order_ && intra_ == o.intra_;
    }

  private:
    std::vector<Dim> inter_order_; ///< outermost first
    std::vector<IntraFactor> intra_; ///< outermost first
};

/** Physical address of an element inside a logical 2D buffer. */
struct LineAddr
{
    int64_t line = 0; ///< buffer row index
    int64_t slot = 0; ///< word offset within the row

    bool
    operator==(const LineAddr &o) const
    {
        return line == o.line && slot == o.slot;
    }
    bool
    operator<(const LineAddr &o) const
    {
        return line != o.line ? line < o.line : slot < o.slot;
    }
};

/**
 * A Layout bound to concrete tensor extents: provides the coordinate ->
 * (line, slot) address map and its inverse.
 */
class BoundLayout
{
  public:
    BoundLayout() = default;
    BoundLayout(Layout layout, Extents extents);

    const Layout &layout() const { return layout_; }
    const Extents &extents() const { return extents_; }

    int64_t lineSize() const { return layout_.lineSize(); }
    int64_t numLines() const { return num_lines_; }

    /** Address of the element at @p c. */
    LineAddr addrOf(const Coord &c) const;

    /** Inverse map: coordinates stored at (line, slot). */
    Coord coordAt(const LineAddr &addr) const;

    /** Total elements (product of bound extents). */
    int64_t numElems() const;

    std::string toString() const;

  private:
    Layout layout_;
    Extents extents_;
    /** Tile count per inter dim (ceil(extent / intra size)). */
    std::vector<int64_t> tiles_per_dim_; ///< parallel to interOrder()
    int64_t num_lines_ = 0;
};

/**
 * The convolution iAct layout space the paper searches (§VI-A2 footnote 4).
 */
std::vector<Layout> convLayoutSpace();

/** The GEMM input layout space (MK_K32, MK_M32, MK_M4K8). */
std::vector<Layout> gemmLayoutSpace();

} // namespace feather
