#pragma once

/**
 * @file
 * Fixed-size map keyed by Dim, used for coordinates and extents.
 */

#include <array>
#include <cstdint>

#include "workload/dims.hpp"

namespace feather {

/** Dense map Dim -> int64_t with value-semantics; defaults to zero. */
class DimMap
{
  public:
    DimMap() { vals_.fill(0); }

    int64_t &operator[](Dim d) { return vals_[size_t(d)]; }
    int64_t operator[](Dim d) const { return vals_[size_t(d)]; }

    bool
    operator==(const DimMap &o) const
    {
        return vals_ == o.vals_;
    }

  private:
    std::array<int64_t, kNumDims> vals_;
};

/** Coordinates of one tensor element (unused dims stay 0). */
using Coord = DimMap;

/** Extents of a tensor's dimensions (unused dims stay 0). */
using Extents = DimMap;

} // namespace feather
