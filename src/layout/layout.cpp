#include "layout/layout.hpp"

#include <cctype>

#include "common/bits.hpp"
#include "common/log.hpp"

namespace feather {

Layout::Layout(std::vector<Dim> inter_order, std::vector<IntraFactor> intra)
    : inter_order_(std::move(inter_order)), intra_(std::move(intra))
{
    for (const auto &f : intra_) {
        FEATHER_CHECK(f.size >= 1, "intra factor must be >= 1");
    }
}

Layout
Layout::parse(const std::string &text)
{
    const size_t underscore = text.find('_');
    if (underscore == std::string::npos) {
        fatal(strCat("layout '", text, "' missing '_' separator"));
    }
    std::vector<Dim> inter;
    for (size_t i = 0; i < underscore; ++i) {
        inter.push_back(parseDim(text[i]));
    }
    std::vector<IntraFactor> intra;
    size_t i = underscore + 1;
    while (i < text.size()) {
        const Dim d = parseDim(text[i]);
        ++i;
        FEATHER_CHECK(i < text.size() && std::isdigit(text[i]),
                      "layout '", text, "': intra dim needs a size");
        int64_t size = 0;
        while (i < text.size() && std::isdigit(text[i])) {
            size = size * 10 + (text[i] - '0');
            ++i;
        }
        intra.push_back({d, size});
    }
    FEATHER_CHECK(!intra.empty(), "layout '", text, "' has no intra factors");
    return Layout(std::move(inter), std::move(intra));
}

int64_t
Layout::intraSize(Dim d) const
{
    for (const auto &f : intra_) {
        if (f.dim == d) return f.size;
    }
    return 1;
}

int64_t
Layout::lineSize() const
{
    int64_t n = 1;
    for (const auto &f : intra_) {
        n *= f.size;
    }
    return n;
}

std::string
Layout::toString() const
{
    std::string s;
    for (Dim d : inter_order_) {
        s += dimName(d);
    }
    s += '_';
    for (const auto &f : intra_) {
        s += dimName(f.dim);
        s += std::to_string(f.size);
    }
    return s;
}

BoundLayout::BoundLayout(Layout layout, Extents extents)
    : layout_(std::move(layout)), extents_(extents)
{
    num_lines_ = 1;
    tiles_per_dim_.reserve(layout_.interOrder().size());
    for (Dim d : layout_.interOrder()) {
        const int64_t extent = std::max<int64_t>(extents_[d], 1);
        const int64_t tiles = ceilDiv(extent, layout_.intraSize(d));
        tiles_per_dim_.push_back(tiles);
        num_lines_ *= tiles;
    }
}

LineAddr
BoundLayout::addrOf(const Coord &c) const
{
    LineAddr addr;
    // Intra-line slot: mixed-radix flatten, outermost factor first.
    for (const auto &f : layout_.intraFactors()) {
        addr.slot = addr.slot * f.size + (c[f.dim] % f.size);
    }
    // Line index: mixed-radix flatten of tile coordinates.
    const auto &order = layout_.interOrder();
    for (size_t i = 0; i < order.size(); ++i) {
        const Dim d = order[i];
        const int64_t tile = c[d] / layout_.intraSize(d);
        addr.line = addr.line * tiles_per_dim_[i] + tile;
    }
    return addr;
}

Coord
BoundLayout::coordAt(const LineAddr &addr) const
{
    Coord c;
    // Unflatten the line index into per-dim tile coordinates.
    const auto &order = layout_.interOrder();
    int64_t line = addr.line;
    for (size_t i = order.size(); i-- > 0;) {
        const int64_t tiles = tiles_per_dim_[i];
        const int64_t tile = line % tiles;
        line /= tiles;
        c[order[i]] = tile * layout_.intraSize(order[i]);
    }
    // Unflatten the slot into intra offsets and add them on.
    const auto &intra = layout_.intraFactors();
    int64_t slot = addr.slot;
    for (size_t i = intra.size(); i-- > 0;) {
        const int64_t off = slot % intra[i].size;
        slot /= intra[i].size;
        c[intra[i].dim] += off;
    }
    return c;
}

int64_t
BoundLayout::numElems() const
{
    return num_lines_ * lineSize();
}

std::string
BoundLayout::toString() const
{
    return strCat(layout_.toString(), " [", numLines(), " lines x ",
                  lineSize(), " words]");
}

std::vector<Layout>
convLayoutSpace()
{
    static const char *names[] = {
        "HWC_C32", "HWC_W32", "HWC_H32", "HWC_C4W8",
        "HWC_C4H8", "HWC_W4H8", "HWC_C4W4H2",
    };
    std::vector<Layout> out;
    for (const char *n : names) {
        out.push_back(Layout::parse(n));
    }
    return out;
}

std::vector<Layout>
gemmLayoutSpace()
{
    static const char *names[] = {"MK_K32", "MK_M32", "MK_M4K8"};
    std::vector<Layout> out;
    for (const char *n : names) {
        out.push_back(Layout::parse(n));
    }
    return out;
}

} // namespace feather
