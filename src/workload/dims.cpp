#include "workload/dims.hpp"

#include "common/log.hpp"

namespace feather {

char
dimName(Dim d)
{
    switch (d) {
      case Dim::N: return 'N';
      case Dim::M: return 'M';
      case Dim::C: return 'C';
      case Dim::H: return 'H';
      case Dim::W: return 'W';
      case Dim::P: return 'P';
      case Dim::Q: return 'Q';
      case Dim::R: return 'R';
      case Dim::S: return 'S';
      case Dim::K: return 'K';
    }
    panic("unreachable dim");
}

Dim
parseDim(char c)
{
    switch (c) {
      case 'N': return Dim::N;
      case 'M': return Dim::M;
      case 'C': return Dim::C;
      case 'H': return Dim::H;
      case 'W': return Dim::W;
      case 'P': return Dim::P;
      case 'Q': return Dim::Q;
      case 'R': return Dim::R;
      case 'S': return Dim::S;
      case 'K': return Dim::K;
      default: fatal(strCat("unknown dimension letter '", c, "'"));
    }
}

bool
isReductionDim(Dim d)
{
    return d == Dim::C || d == Dim::R || d == Dim::S || d == Dim::K;
}

std::string
toString(Dim d)
{
    return std::string(1, dimName(d));
}

} // namespace feather
