#pragma once

/**
 * @file
 * Layer tables for the paper's three evaluation workloads (§VI-A1):
 * ResNet-50 and MobileNet-V3-Large as edge workloads, BERT-base as the cloud
 * workload. Shapes follow the original model definitions (He et al. 2016,
 * Howard et al. 2019, Devlin et al. 2019) at batch 1 / image 224x224 /
 * sequence length 512.
 */

#include <vector>

#include "workload/shapes.hpp"

namespace feather {

/**
 * ResNet-50 convolution layers in execution order (53 convolutions,
 * including the downsample/projection 1x1s), plus the final FC as a GEMM
 * and the two pooling layers.
 */
std::vector<LayerSpec> resnet50();

/** MobileNet-V3-Large: expand/depthwise/project triplets of each bneck. */
std::vector<LayerSpec> mobilenetV3Large();

/**
 * BERT-base encoder GEMMs for one forward pass at @p seq_len tokens; the
 * 12 identical encoder layers are expressed via LayerSpec::repeat.
 */
std::vector<LayerSpec> bertBase(int64_t seq_len = 512);

/** Only the layers that run as MACs on the accelerator (conv/dw/gemm). */
std::vector<LayerSpec> macLayers(const std::vector<LayerSpec> &model);

/** Total MAC count of a model. */
int64_t totalMacs(const std::vector<LayerSpec> &model);

} // namespace feather
