#include "workload/model_zoo.hpp"

#include "common/log.hpp"

namespace feather {

namespace {

LayerSpec
convLayer(std::string name, int64_t c, int64_t hw, int64_t m, int64_t rs,
          int64_t stride, int64_t pad)
{
    LayerSpec l;
    l.name = std::move(name);
    l.type = OpType::Conv;
    l.conv = ConvShape{1, c, hw, hw, m, rs, rs, stride, pad, false};
    return l;
}

LayerSpec
dwLayer(std::string name, int64_t c, int64_t hw, int64_t rs, int64_t stride)
{
    LayerSpec l;
    l.name = std::move(name);
    l.type = OpType::DepthwiseConv;
    l.conv = ConvShape{1, c, hw, hw, c, rs, rs, stride, (rs - 1) / 2, true};
    return l;
}

LayerSpec
gemmLayer(std::string name, int64_t m, int64_t n, int64_t k, int repeat = 1)
{
    LayerSpec l;
    l.name = std::move(name);
    l.type = OpType::Gemm;
    l.gemm = GemmShape{m, n, k};
    l.repeat = repeat;
    return l;
}

} // namespace

std::vector<LayerSpec>
resnet50()
{
    std::vector<LayerSpec> layers;
    int conv_id = 0;
    auto add = [&](int64_t c, int64_t hw, int64_t m, int64_t rs,
                   int64_t stride) {
        ++conv_id;
        layers.push_back(convLayer(strCat("conv", conv_id), c, hw, m, rs,
                                   stride, (rs - 1) / 2));
    };

    // Stem: 7x7/2, pad 3, 224 -> 112.
    {
        ++conv_id;
        layers.push_back(convLayer("conv1", 3, 224, 64, 7, 2, 3));
    }
    {
        LayerSpec pool;
        pool.name = "maxpool";
        pool.type = OpType::MaxPool;
        pool.conv = ConvShape{1, 64, 112, 112, 64, 3, 3, 2, 1, false};
        layers.push_back(pool);
    }

    // Bottleneck stages: {num_blocks, mid_channels, out_channels, in_hw}.
    struct Stage { int blocks; int64_t mid, out, hw; };
    const Stage stages[] = {
        {3, 64, 256, 56},
        {4, 128, 512, 28},
        {6, 256, 1024, 14},
        {3, 512, 2048, 7},
    };
    int64_t in_c = 64;
    for (int s = 0; s < 4; ++s) {
        const Stage &st = stages[s];
        for (int b = 0; b < st.blocks; ++b) {
            // Stage 0 keeps 56x56; later stages downsample in block 0 at
            // the 3x3 (torchvision ResNet-50 v1.5 convention).
            const bool down = (s > 0 && b == 0);
            const int64_t hw_in = down ? st.hw * 2 : st.hw;
            add(in_c, hw_in, st.mid, 1, 1);                    // 1x1 reduce
            add(st.mid, hw_in, st.mid, 3, down ? 2 : 1);       // 3x3
            add(st.mid, st.hw, st.out, 1, 1);                  // 1x1 expand
            if (b == 0) {
                add(in_c, hw_in, st.out, 1, down ? 2 : 1);     // projection
            }
            in_c = st.out;
        }
    }

    {
        LayerSpec pool;
        pool.name = "avgpool";
        pool.type = OpType::AvgPool;
        pool.conv = ConvShape{1, 2048, 7, 7, 2048, 7, 7, 1, 0, true};
        layers.push_back(pool);
    }
    layers.push_back(gemmLayer("fc", 1, 1000, 2048));
    return layers;
}

std::vector<LayerSpec>
mobilenetV3Large()
{
    std::vector<LayerSpec> layers;
    layers.push_back(convLayer("stem", 3, 224, 16, 3, 2, 1));

    // MobileNet-V3-Large bneck table (Howard et al. 2019, Table 1):
    // {kernel, expanded, out, stride}; input resolution tracked on the side.
    struct Bneck { int64_t k, exp, out, stride; };
    const Bneck bnecks[] = {
        {3, 16, 16, 1},   {3, 64, 24, 2},   {3, 72, 24, 1},
        {5, 72, 40, 2},   {5, 120, 40, 1},  {5, 120, 40, 1},
        {3, 240, 80, 2},  {3, 200, 80, 1},  {3, 184, 80, 1},
        {3, 184, 80, 1},  {3, 480, 112, 1}, {3, 672, 112, 1},
        {5, 672, 160, 2}, {5, 960, 160, 1}, {5, 960, 160, 1},
    };
    int64_t in_c = 16;
    int64_t hw = 112;
    int id = 0;
    for (const Bneck &b : bnecks) {
        ++id;
        if (b.exp != in_c) {
            layers.push_back(convLayer(strCat("bneck", id, "_expand"), in_c,
                                       hw, b.exp, 1, 1, 0));
        }
        layers.push_back(dwLayer(strCat("bneck", id, "_dw"), b.exp, hw, b.k,
                                 b.stride));
        if (b.stride == 2) hw /= 2;
        layers.push_back(convLayer(strCat("bneck", id, "_project"), b.exp, hw,
                                   b.out, 1, 1, 0));
        in_c = b.out;
    }

    layers.push_back(convLayer("head_conv", 160, 7, 960, 1, 1, 0));
    {
        LayerSpec pool;
        pool.name = "avgpool";
        pool.type = OpType::AvgPool;
        pool.conv = ConvShape{1, 960, 7, 7, 960, 7, 7, 1, 0, true};
        layers.push_back(pool);
    }
    layers.push_back(gemmLayer("head_fc1", 1, 1280, 960));
    layers.push_back(gemmLayer("head_fc2", 1, 1000, 1280));
    return layers;
}

std::vector<LayerSpec>
bertBase(int64_t seq_len)
{
    const int64_t d_model = 768;
    const int64_t d_ff = 3072;
    const int64_t heads = 12;
    const int64_t d_head = d_model / heads;

    std::vector<LayerSpec> layers;
    // Per encoder layer (x12): fused QKV projection, attention score and
    // context matmuls (per head), output projection, two FFN GEMMs.
    layers.push_back(
        gemmLayer("qkv_proj", seq_len, 3 * d_model, d_model, 12));
    layers.push_back(gemmLayer("attn_scores", seq_len, seq_len, d_head,
                               int(12 * heads)));
    layers.push_back(gemmLayer("attn_context", seq_len, d_head, seq_len,
                               int(12 * heads)));
    layers.push_back(gemmLayer("attn_out", seq_len, d_model, d_model, 12));
    layers.push_back(gemmLayer("ffn1", seq_len, d_ff, d_model, 12));
    layers.push_back(gemmLayer("ffn2", seq_len, d_model, d_ff, 12));
    return layers;
}

std::vector<LayerSpec>
macLayers(const std::vector<LayerSpec> &model)
{
    std::vector<LayerSpec> out;
    for (const auto &l : model) {
        if (isMacOp(l.type) && l.type != OpType::AvgPool) {
            out.push_back(l);
        }
    }
    return out;
}

int64_t
totalMacs(const std::vector<LayerSpec> &model)
{
    int64_t total = 0;
    for (const auto &l : model) {
        total += l.macs() * l.repeat;
    }
    return total;
}

} // namespace feather
