#pragma once

/**
 * @file
 * Named tensor dimensions for the seven-dimensional convolution loop nest
 * (Fig. 1 of the paper) and GEMM.
 *
 * Convolution:  N batch, M kernels, C input channels, H/W input spatial,
 *               P/Q output spatial, R/S kernel spatial.
 * GEMM (Fig. 10 notation): inputs M x K, weights N x K, outputs M x N;
 *               K is the reduction dimension.
 */

#include <cstdint>
#include <string>

namespace feather {

/** Named dimension of a workload tensor. */
enum class Dim : uint8_t { N, M, C, H, W, P, Q, R, S, K };

/** Number of distinct Dim values. */
constexpr int kNumDims = 10;

/** One-letter name used in layout strings ("HWC_C4W8") and traces. */
char dimName(Dim d);

/** Parse a one-letter dimension name; fatal() on unknown letters. */
Dim parseDim(char c);

/** @return true for the convolution reduction dims (C, R, S) and GEMM K. */
bool isReductionDim(Dim d);

std::string toString(Dim d);

} // namespace feather
