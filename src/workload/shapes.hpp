#pragma once

/**
 * @file
 * Workload shape descriptors: convolution layers (seven-dimensional loop
 * nest of Fig. 1), GEMM operators (Fig. 10 notation), and pooling layers.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "workload/dims.hpp"

namespace feather {

/** Shape of one convolution layer. */
struct ConvShape
{
    int64_t n = 1;       ///< batch
    int64_t c = 1;       ///< input channels
    int64_t h = 1;       ///< input height
    int64_t w = 1;       ///< input width
    int64_t m = 1;       ///< output channels (kernels)
    int64_t r = 1;       ///< kernel height
    int64_t s = 1;       ///< kernel width
    int64_t stride = 1;
    int64_t pad = 0;
    bool depthwise = false; ///< depthwise conv: one filter per channel, m==c

    int64_t outH() const;   ///< P
    int64_t outW() const;   ///< Q

    /** Multiply-accumulate count. */
    int64_t macs() const;

    /** Extent of a named dimension (P/Q derived). */
    int64_t extent(Dim d) const;

    /** iAct / weight / oAct element counts. */
    int64_t iactElems() const { return n * c * h * w; }
    int64_t weightElems() const;
    int64_t oactElems() const { return n * m * outH() * outW(); }

    std::string toString() const;
};

/** Shape of one GEMM: inputs M x K, weights K x N, outputs M x N. */
struct GemmShape
{
    int64_t m = 1;
    int64_t n = 1;
    int64_t k = 1;

    int64_t macs() const { return m * n * k; }
    int64_t extent(Dim d) const;
    std::string toString() const;
};

/** Operator type of a network layer. */
enum class OpType : uint8_t {
    Conv,
    DepthwiseConv,
    Gemm,          ///< fully-connected / attention matmul
    MaxPool,
    AvgPool,
};

std::string toString(OpType t);

/** @return true for operators executed on NEST (MAC work). */
bool isMacOp(OpType t);

/**
 * One layer of a network in the model zoo.
 *
 * Conv-like layers populate @ref conv; GEMM layers populate @ref gemm.
 * @ref repeat counts how many times the identical shape occurs back-to-back
 * (used for BERT's 12 identical encoder blocks).
 */
struct LayerSpec
{
    std::string name;
    OpType type = OpType::Conv;
    ConvShape conv;
    GemmShape gemm;
    int repeat = 1;

    int64_t macs() const;
    std::string toString() const;
};

} // namespace feather
