#include "workload/shapes.hpp"

#include "common/log.hpp"

namespace feather {

int64_t
ConvShape::outH() const
{
    return (h + 2 * pad - r) / stride + 1;
}

int64_t
ConvShape::outW() const
{
    return (w + 2 * pad - s) / stride + 1;
}

int64_t
ConvShape::macs() const
{
    if (depthwise) {
        return n * c * outH() * outW() * r * s;
    }
    return n * m * c * outH() * outW() * r * s;
}

int64_t
ConvShape::extent(Dim d) const
{
    switch (d) {
      case Dim::N: return n;
      case Dim::M: return m;
      case Dim::C: return c;
      case Dim::H: return h;
      case Dim::W: return w;
      case Dim::P: return outH();
      case Dim::Q: return outW();
      case Dim::R: return r;
      case Dim::S: return s;
      case Dim::K: return c * r * s; // im2col reduction extent
    }
    panic("unreachable dim");
}

int64_t
ConvShape::weightElems() const
{
    return depthwise ? c * r * s : m * c * r * s;
}

std::string
ConvShape::toString() const
{
    return strCat(depthwise ? "DWConv" : "Conv", " N", n, " C", c, " H", h,
                  " W", w, " M", m, " R", r, " S", s, " stride", stride,
                  " pad", pad);
}

int64_t
GemmShape::extent(Dim d) const
{
    switch (d) {
      case Dim::M: return m;
      case Dim::N: return n;
      case Dim::K: return k;
      default: return 1;
    }
}

std::string
GemmShape::toString() const
{
    return strCat("Gemm M", m, " N", n, " K", k);
}

std::string
toString(OpType t)
{
    switch (t) {
      case OpType::Conv: return "Conv";
      case OpType::DepthwiseConv: return "DWConv";
      case OpType::Gemm: return "Gemm";
      case OpType::MaxPool: return "MaxPool";
      case OpType::AvgPool: return "AvgPool";
    }
    panic("unreachable op type");
}

bool
isMacOp(OpType t)
{
    return t == OpType::Conv || t == OpType::DepthwiseConv ||
           t == OpType::Gemm || t == OpType::AvgPool;
}

int64_t
LayerSpec::macs() const
{
    switch (type) {
      case OpType::Conv:
      case OpType::DepthwiseConv:
        return conv.macs();
      case OpType::Gemm:
        return gemm.macs();
      case OpType::AvgPool:
        // Executed as a convolution on NEST.
        return conv.macs();
      case OpType::MaxPool:
        return 0;
    }
    panic("unreachable op type");
}

std::string
LayerSpec::toString() const
{
    if (type == OpType::Gemm) {
        return strCat(name, ": ", gemm.toString());
    }
    return strCat(name, ": ", conv.toString());
}

} // namespace feather
