#include "layoutloop/mapper.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/bits.hpp"
#include "common/log.hpp"

namespace feather {

int64_t
ModelEval::totalCycles() const
{
    int64_t total = 0;
    for (const auto &l : layers) total += l.best.total_cycles * l.repeat;
    return total;
}

double
ModelEval::totalEnergyPj() const
{
    double total = 0.0;
    for (const auto &l : layers) total += l.best.energy_pj * l.repeat;
    return total;
}

int64_t
ModelEval::totalMacs() const
{
    int64_t total = 0;
    for (const auto &l : layers) total += l.layer->macs() * l.repeat;
    return total;
}

double
ModelEval::avgPracticalUtilization() const
{
    double weighted = 0.0;
    double weights = 0.0;
    for (const auto &l : layers) {
        const double w = double(l.layer->macs() * l.repeat);
        weighted += l.best.practical_utilization * w;
        weights += w;
    }
    return weights > 0 ? weighted / weights : 0.0;
}

int64_t
ModelEval::totalStallCycles() const
{
    int64_t total = 0;
    for (const auto &l : layers) total += l.best.stall_cycles * l.repeat;
    return total;
}

int64_t
ModelEval::totalReorderCycles() const
{
    int64_t total = 0;
    for (const auto &l : layers) total += l.best.reorder_cycles * l.repeat;
    return total;
}

namespace {

/** Power-of-two degrees 1..cap, plus cap itself when not a power of two. */
std::vector<int64_t>
degreeChoices(int64_t cap)
{
    std::vector<int64_t> out;
    for (int64_t p = 1; p <= cap; p *= 2) out.push_back(p);
    if (!out.empty() && out.back() != cap) out.push_back(cap);
    return out;
}

/** Dims eligible for parallelism on this layer. */
std::vector<Dim>
parallelDims(const LayerSpec &layer)
{
    if (layer.type == OpType::Gemm) return {Dim::M, Dim::N, Dim::K};
    if (layer.conv.depthwise) {
        return {Dim::C, Dim::P, Dim::Q, Dim::R, Dim::S};
    }
    return {Dim::C, Dim::M, Dim::P, Dim::Q, Dim::R, Dim::S};
}

/** Split a flat spatial list onto cols (first entry) and rows (rest). */
Mapping
splitColsRows(const std::vector<ParallelDim> &spatial)
{
    Mapping m;
    for (size_t i = 0; i < spatial.size(); ++i) {
        if (i == 0) {
            m.cols.push_back(spatial[i]);
        } else {
            m.rows.push_back(spatial[i]);
        }
    }
    return m;
}

} // namespace

std::vector<Mapping>
Mapper::candidateMappings(const LayerSpec &layer) const
{
    std::vector<Mapping> out;
    const Extents ext = layer.type == OpType::Gemm
                            ? gemmExtents(layer.gemm)
                            : convExtents(layer.conv);

    // Depthwise layers have no independent M: fixed-dataflow designs run
    // them with their spatial/window parallelism in M's place (the way
    // systolic arrays execute per-channel 2D convolutions).
    auto adapt = [&](std::vector<ParallelDim> spatial) {
        if (layer.type != OpType::DepthwiseConv) return spatial;
        for (auto &pd : spatial) {
            if (pd.dim == Dim::M) pd.dim = Dim::Q;
        }
        return spatial;
    };

    if (!arch_.flex.parallelism && !arch_.flex.shape) {
        // T-only designs: the fixed unrolling, as built.
        out.push_back(splitColsRows(adapt(arch_.flex.fixed_spatial)));
        return out;
    }

    if (!arch_.flex.parallelism && arch_.flex.shape) {
        // TS designs (Eyeriss-like): dims fixed, virtual grouping free.
        const auto fixed = adapt(arch_.flex.fixed_spatial);
        FEATHER_CHECK(fixed.size() >= 1 && fixed.size() <= 2,
                      "shape-flex designs fix one or two dims");
        const Dim d0 = fixed[0].dim;
        const Dim d1 = fixed.size() > 1 ? fixed[1].dim : fixed[0].dim;
        for (int64_t p0 : degreeChoices(arch_.pe_cols)) {
            for (int64_t p1 : degreeChoices(arch_.pe_rows)) {
                if (fixed.size() == 1 && p1 > 1) continue;
                Mapping m;
                m.cols = {{d0, p0}};
                if (fixed.size() > 1) m.rows = {{d1, p1}};
                out.push_back(m);
            }
        }
        return out;
    }

    // TOPS designs: dims and degrees free. Columns may carry one or two
    // dims, rows carry one — a pruned but representative space (the paper
    // similarly prunes with random search).
    const std::vector<Dim> dims = parallelDims(layer);
    for (Dim dc : dims) {
        for (int64_t pc : degreeChoices(arch_.pe_cols)) {
            if (pc > roundUp<int64_t>(std::max<int64_t>(ext[dc], 1), 2)) {
                continue;
            }
            for (Dim dr : dims) {
                if (dr == dc) continue;
                for (int64_t pr : degreeChoices(arch_.pe_rows)) {
                    if (pr > roundUp<int64_t>(std::max<int64_t>(ext[dr], 1),
                                              2)) {
                        continue;
                    }
                    Mapping m;
                    m.cols = {{dc, pc}};
                    m.rows = {{dr, pr}};
                    out.push_back(m);

                    // Two-dim columns: add a second col dim filling the
                    // remaining column capacity.
                    if (pc < arch_.pe_cols) {
                        for (Dim dc2 : dims) {
                            if (dc2 == dc || dc2 == dr) continue;
                            const int64_t pc2 = arch_.pe_cols / pc;
                            if (pc2 <= 1) continue;
                            if (pc2 > roundUp<int64_t>(
                                          std::max<int64_t>(ext[dc2], 1), 2)) {
                                continue;
                            }
                            Mapping m2 = m;
                            m2.cols.push_back({dc2, pc2});
                            out.push_back(m2);
                        }
                    }
                }
            }
        }
    }
    return out;
}

std::vector<Layout>
Mapper::candidateLayouts(const LayerSpec &layer) const
{
    (void)layer;
    FEATHER_CHECK(!arch_.layouts.empty(), "ArchSpec '", arch_.name,
                  "' has no layouts configured");
    if (arch_.reorder == ReorderCapability::Rir ||
        arch_.reorder == ReorderCapability::OffChip) {
        return arch_.layouts; // per-layer choice
    }
    return {arch_.layouts.front()};
}

EvalResult
Mapper::searchLayer(const LayerSpec &layer, const Layout *prev_layout) const
{
    const Extents ext = layer.type == OpType::Gemm
                            ? gemmExtents(layer.gemm)
                            : convExtents(layer.conv);
    std::vector<Dim> dims;
    if (layer.type == OpType::Gemm) {
        dims = {Dim::M, Dim::N, Dim::K};
    } else if (layer.conv.depthwise) {
        dims = {Dim::C, Dim::P, Dim::Q, Dim::R, Dim::S};
    } else {
        dims = {Dim::M, Dim::C, Dim::P, Dim::Q, Dim::R, Dim::S};
    }
    auto ideal_cycles_of = [&](const Mapping &m) {
        DimMap unroll;
        for (int i = 0; i < kNumDims; ++i) unroll[Dim(i)] = 1;
        for (const auto &pd : m.spatial()) unroll[pd.dim] *= pd.degree;
        int64_t cycles = 1;
        for (Dim d : dims) {
            cycles *= ceilDiv(std::max<int64_t>(ext[d], 1), unroll[d]);
        }
        return cycles;
    };

    // Evaluate high-occupancy (low ideal-cycle) candidates first so the
    // EDP lower bound (cycles x pure-MAC energy <= any achievable EDP)
    // prunes the tail cheaply.
    std::vector<Mapping> candidates = candidateMappings(layer);
    std::vector<std::pair<int64_t, size_t>> order;
    order.reserve(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
        order.emplace_back(ideal_cycles_of(candidates[i]), i);
    }
    std::sort(order.begin(), order.end());

    const double mac_pj = EnergyTable{}.mac_int8 * double(layer.macs());
    EvalResult best;
    const auto layouts = candidateLayouts(layer);
    for (const auto &[cycles_lb, idx] : order) {
        if (best.valid && double(cycles_lb) * mac_pj >= best.edp()) {
            break; // all remaining candidates are dominated
        }
        for (const Layout &layout : layouts) {
            const EvalResult r = evaluateMapping(arch_, layer,
                                                 candidates[idx], layout,
                                                 prev_layout);
            if (!r.valid) continue;
            if (!best.valid || r.edp() < best.edp() ||
                (r.edp() == best.edp() &&
                 r.total_cycles < best.total_cycles)) {
                best = r;
            }
        }
    }
    FEATHER_CHECK(best.valid, "no valid mapping found for ",
                  layer.toString(), " on ", arch_.name);
    return best;
}

ModelEval
Mapper::searchModel(const std::vector<LayerSpec> &model) const
{
    ModelEval eval;
    // Memoize by layer shape: repeated shapes (ResNet's identical blocks)
    // share one search.
    std::unordered_map<std::string, EvalResult> memo;
    for (const auto &layer : model) {
        if (!isMacOp(layer.type) || layer.type == OpType::AvgPool) continue;
        LayerDecision dec;
        dec.layer = &layer;
        dec.repeat = layer.repeat;
        const std::string key = layer.type == OpType::Gemm
                                    ? layer.gemm.toString()
                                    : layer.conv.toString();
        auto it = memo.find(key);
        if (it == memo.end()) {
            it = memo.emplace(key, searchLayer(layer, nullptr)).first;
        }
        dec.best = it->second;
        eval.layers.push_back(std::move(dec));
    }
    return eval;
}

} // namespace feather
