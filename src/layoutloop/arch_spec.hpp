#pragma once

/**
 * @file
 * Architecture specification for the Layoutloop analytical model (§V).
 *
 * Layoutloop extends Timeloop-style dataflow evaluation with *physical*
 * storage modeling: the iAct buffer is a (num_lines x line_size) logical 2D
 * array with `lines_per_bank` ("conflict_depth") lines per physical bank
 * and a fixed port count; a (dataflow, layout) pair that concurrently
 * touches more lines per bank than ports incurs a max(NL/NP, 1) slowdown.
 *
 * Each evaluated design point (Tab. IV) is an ArchSpec: PE array shape,
 * dataflow flexibility (which TOPS axes the mapper may exercise), the
 * layout policy (fixed layouts vs searchable), and the on-chip reorder
 * capability (Fig. 5 patterns + implementation, Fig. 6).
 */

#include <string>
#include <vector>

#include "buffer/spec.hpp"
#include "dataflow/mapping.hpp"
#include "layout/layout.hpp"
#include "workload/dims.hpp"

namespace feather {

/** On-chip data reordering capability (Fig. 5 / Tab. III). */
enum class ReorderCapability : uint8_t {
    None,                ///< fixed layout; conflicts stand
    OffChip,             ///< DRAM round trip per layer (SIGMA-style)
    LineRotation,        ///< Medusa: one extra effective port per bank
    Transpose,           ///< MTIA MLU: column accesses become row accesses
    TransposeRowReorder, ///< TPUv4: + intra-line permute (no conflict gain)
    Rir,                 ///< FEATHER: arbitrary reorder during reduction
};

std::string toString(ReorderCapability c);

/** Which mapping axes the design exposes (the T,O,P,S of §II-A). */
struct DataflowFlexibility
{
    bool tiling = true;       ///< T: tile sizes (all designs have this)
    bool ordering = false;    ///< O: loop order
    bool parallelism = false; ///< P: choice of parallel dims/degrees
    bool shape = false;       ///< S: virtual array regrouping

    /** Fixed spatial unrolling used when parallelism == false. */
    std::vector<ParallelDim> fixed_spatial;
};

/** One design point. */
struct ArchSpec
{
    std::string name;
    int pe_rows = 16;
    int pe_cols = 16;
    double freq_ghz = 1.0;

    /** iAct scratchpad organization (the conflict model's subject). */
    BufferSpec iact_buffer;

    DataflowFlexibility flex;
    ReorderCapability reorder = ReorderCapability::None;

    /**
     * Layouts available at runtime. Reorder == Rir / OffChip may pick a
     * different entry per layer; other designs keep entry 0 for all layers
     * (their on-chip mechanism only mitigates conflicts, it cannot convert
     * between these word-granularity layouts — §VI-C3).
     */
    std::vector<Layout> layouts;

    /** Off-chip bandwidth for OffChip reordering (bytes/cycle). */
    double offchip_bytes_per_cycle = 128.0;

    /**
     * Rigid systolic array (Gemmini / DPU / Edge TPU / TPU classes):
     * every stationary weight tile pays an array fill + drain bubble of
     * (pe_rows + pe_cols) cycles, which FEATHER's time-multiplexed rows
     * and ping-pong weight registers hide (Fig. 9).
     */
    bool systolic_fill_drain = false;

    /**
     * Reduction / distribution NoC traversal cost, in switch hops charged
     * per word moved (energy model input). FEATHER: 2*log2(AW) BIRRD hops,
     * point-to-point distribution; SIGMA: Benes distribution + FAN.
     */
    double noc_hops_per_word = 2.0;

    int numPes() const { return pe_rows * pe_cols; }
};

} // namespace feather
