#include "layoutloop/evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/bits.hpp"
#include "common/log.hpp"

namespace feather {

std::string
toString(ReorderCapability c)
{
    switch (c) {
      case ReorderCapability::None: return "none";
      case ReorderCapability::OffChip: return "off-chip";
      case ReorderCapability::LineRotation: return "line-rotation";
      case ReorderCapability::Transpose: return "transpose";
      case ReorderCapability::TransposeRowReorder: return "transpose+row";
      case ReorderCapability::Rir: return "RIR";
    }
    panic("unreachable reorder capability");
}

std::string
EvalResult::toString() const
{
    return strCat("util=", int(practical_utilization * 100), "% slowdown=",
                  slowdown, " cycles=", total_cycles, " (stall=",
                  stall_cycles, " reorder=", reorder_cycles, ") pJ=",
                  energy_pj, " map=", mapping.toString(), " layout=",
                  layout.toString());
}

namespace {

/** Distinct-slot count of an address set (column-access detection). */
bool
isColumnAccess(const std::vector<LineAddr> &addrs)
{
    if (addrs.size() < 2) return false;
    const int64_t slot = addrs.front().slot;
    for (const auto &a : addrs) {
        if (a.slot != slot) return false;
    }
    return true;
}

struct SlowdownStats
{
    double avg_slowdown = 1.0;
    double avg_distinct_words = 0.0;
    double avg_distinct_lines = 0.0;
    bool used_transpose = false;
    double rotation_fraction = 0.0; ///< share of cycles using line rotation
};

/**
 * Bank-conflict assessment (§V-B) with the design's mitigation applied:
 * slowdown of one cycle = max(ceil(NL/NP), 1) over banks, where the
 * mitigation can raise NP (line rotation) or collapse column accesses
 * (transpose).
 */
SlowdownStats
assessSlowdown(const ArchSpec &arch, const LayerSpec &layer,
               const Mapping &mapping, const BoundLayout &bl,
               int max_samples = 16)
{
    SlowdownStats out;
    const auto bases = sampleTemporalBases(layer, mapping, max_samples);
    const auto spatial = mapping.spatial();

    double slow_sum = 0.0;
    double words_sum = 0.0;
    double lines_sum = 0.0;
    int64_t rotated = 0;
    int counted = 0;
    for (const Coord &base : bases) {
        const auto coords = concurrentIactCoords(layer, spatial, base);
        if (coords.empty()) continue;
        std::vector<LineAddr> addrs;
        addrs.reserve(coords.size());
        for (const Coord &c : coords) addrs.push_back(bl.addrOf(c));

        std::vector<int64_t> lines;
        lines.reserve(addrs.size());
        for (const auto &a : addrs) lines.push_back(a.line);
        std::sort(lines.begin(), lines.end());
        lines.erase(std::unique(lines.begin(), lines.end()), lines.end());

        int ports = arch.iact_buffer.read_ports;
        int64_t cycle_cost = 0;
        const bool transposable =
            (arch.reorder == ReorderCapability::Transpose ||
             arch.reorder == ReorderCapability::TransposeRowReorder) &&
            isColumnAccess(addrs);
        if (transposable) {
            // After an MLU transpose the column lives in one line.
            cycle_cost = 1;
            out.used_transpose = true;
        } else {
            if (arch.reorder == ReorderCapability::LineRotation) {
                // Rotating one conflicting line into a sibling bank adds
                // one effective port (Fig. 5b).
                ports += 1;
                if (int64_t(lines.size()) > arch.iact_buffer.read_ports) {
                    ++rotated;
                }
            }
            cycle_cost = conflictCycles(arch.iact_buffer, lines, ports);
        }
        slow_sum += double(cycle_cost);
        words_sum += double(coords.size());
        lines_sum += double(lines.size());
        ++counted;
    }
    if (counted > 0) {
        out.avg_slowdown = slow_sum / counted;
        out.avg_distinct_words = words_sum / counted;
        out.avg_distinct_lines = lines_sum / counted;
        out.rotation_fraction = double(rotated) / counted;
    }
    return out;
}

} // namespace

EvalResult
evaluateMapping(const ArchSpec &arch, const LayerSpec &layer,
                const Mapping &mapping, const Layout &layout,
                const Layout *prev_layout, const EnergyTable &energy)
{
    EvalResult res;
    res.mapping = mapping;
    res.layout = layout;

    const bool is_gemm = layer.type == OpType::Gemm;
    const Extents ext = is_gemm ? gemmExtents(layer.gemm)
                                : convExtents(layer.conv);

    // Spatial fit.
    if (totalDegree(mapping.cols) > arch.pe_cols ||
        totalDegree(mapping.rows) > arch.pe_rows) {
        return res; // invalid
    }

    // Quantized ideal cycles: every dim contributes ceil(extent/unroll).
    DimMap unroll;
    for (int i = 0; i < kNumDims; ++i) unroll[Dim(i)] = 1;
    for (const auto &pd : mapping.spatial()) unroll[pd.dim] *= pd.degree;

    std::vector<Dim> dims;
    if (is_gemm) {
        dims = {Dim::M, Dim::N, Dim::K};
    } else if (layer.conv.depthwise) {
        dims = {Dim::C, Dim::P, Dim::Q, Dim::R, Dim::S};
    } else {
        dims = {Dim::M, Dim::C, Dim::P, Dim::Q, Dim::R, Dim::S};
    }
    int64_t ideal_cycles = 1;
    for (Dim d : dims) {
        ideal_cycles *= ceilDiv(std::max<int64_t>(ext[d], 1), unroll[d]);
    }

    // Rigid systolic arrays pay a fill + drain bubble per stationary
    // weight tile (the streaming dimension must empty the array before the
    // next tile loads), and the accumulator bounds how long one tile can
    // stream before results must drain (Gemmini-style double-buffered
    // accumulators hold ~64 output rows).
    if (arch.systolic_fill_drain) {
        int64_t weight_tiles = 1;
        const std::vector<Dim> wdims =
            is_gemm ? std::vector<Dim>{Dim::K, Dim::N}
                    : std::vector<Dim>{Dim::M, Dim::C, Dim::R, Dim::S};
        for (Dim d : wdims) {
            weight_tiles *=
                ceilDiv(std::max<int64_t>(ext[d], 1), unroll[d]);
        }
        const int64_t stream = std::max<int64_t>(
            ideal_cycles / std::max<int64_t>(weight_tiles, 1), 1);
        const int64_t segments = ceilDiv<int64_t>(stream, 32);
        const int64_t bubble =
            2 * int64_t(std::sqrt(double(arch.numPes())) + 0.5);
        ideal_cycles += weight_tiles * segments * bubble;
    }

    res.theoretical_utilization = spatialOccupancy(mapping.spatial(), ext);

    // Bank-conflict slowdown under this layout.
    const BoundLayout bl(layout, iactExtents(layer));
    const SlowdownStats slow = assessSlowdown(arch, layer, mapping, bl);
    res.slowdown = slow.avg_slowdown;
    res.practical_utilization =
        res.theoretical_utilization / res.slowdown;

    res.compute_cycles = ideal_cycles;
    res.stall_cycles =
        int64_t(double(ideal_cycles) * (res.slowdown - 1.0) + 0.5);

    // ---- reorder overheads (Fig. 6 implementations) ----
    const int64_t iact_words = is_gemm ? layer.gemm.m * layer.gemm.k
                                       : layer.conv.iactElems();
    const int64_t oact_words = is_gemm ? layer.gemm.m * layer.gemm.n
                                       : layer.conv.oactElems();
    const bool layout_differs =
        prev_layout != nullptr && !(*prev_layout == layout);
    AccessCounts counts;
    double reorder_pj = 0.0;

    switch (arch.reorder) {
      case ReorderCapability::None:
      case ReorderCapability::LineRotation:
        // No layer-granularity layout change possible; conflicts (or their
        // rotation mitigation) were already priced into the slowdown.
        if (arch.reorder == ReorderCapability::LineRotation) {
            // Each mitigated cycle copies one line into a sibling bank.
            const int64_t copies = int64_t(
                slow.rotation_fraction * double(ideal_cycles) + 0.5);
            counts.buffer_word_writes += copies * bl.lineSize();
            reorder_pj += energy.sram_word * double(copies * bl.lineSize());
        }
        break;
      case ReorderCapability::OffChip: {
        // oActs stream out to DRAM, the CPU reorders, iActs stream back
        // (Fig. 6a). The reduction writes oActs in dataflow order, which is
        // generally discordant with the next layer's need, so the round
        // trip happens every layer. Latency overlaps with compute; the
        // remainder is exposed.
        (void)layout_differs;
        const int64_t words = 2 * iact_words;
        const int64_t reorder_cycles =
            int64_t(double(words) / arch.offchip_bytes_per_cycle + 0.5);
        const int64_t compute = res.compute_cycles + res.stall_cycles;
        res.reorder_cycles =
            std::max<int64_t>(0, reorder_cycles - compute);
        counts.dram_words += words;
        reorder_pj += energy.dram_word * double(words);
        break;
      }
      case ReorderCapability::Transpose:
      case ReorderCapability::TransposeRowReorder:
        // Reorder-after-reduction through the MLU (Fig. 6b): the oActs are
        // read, permuted, and written back on-chip, on the critical path.
        if (slow.used_transpose) {
            res.reorder_cycles =
                2 * ceilDiv(oact_words, bl.lineSize());
            counts.buffer_word_reads += oact_words;
            counts.buffer_word_writes += oact_words;
            reorder_pj += 2.0 * energy.sram_word * double(oact_words);
        }
        break;
      case ReorderCapability::Rir:
        // Reordering rides the reduction: no latency, and the switch
        // energy is part of the reduction NoC traffic counted below.
        break;
    }

    res.total_cycles =
        res.compute_cycles + res.stall_cycles + res.reorder_cycles;
    // Utilization as delivered work over occupied array-time (captures
    // quantization, conflicts, fill/drain and exposed reorder together).
    res.practical_utilization =
        std::min(1.0, double(layer.macs()) /
                          (double(res.total_cycles) * arch.numPes()));

    // ---- energy ----
    counts.macs = layer.macs();
    counts.buffer_word_reads +=
        int64_t(slow.avg_distinct_words * double(ideal_cycles));
    counts.buffer_line_reads +=
        int64_t(slow.avg_distinct_lines * double(ideal_cycles) *
                res.slowdown);
    counts.buffer_word_writes += oact_words;
    // Weights stream from their scratchpad once per element (offline
    // layout, §II-D1), then live in PE registers.
    counts.buffer_word_reads += is_gemm ? layer.gemm.k * layer.gemm.n
                                        : layer.conv.weightElems();
    counts.reg_accesses = 3 * counts.macs; // two operand reads + acc write
    counts.noc_word_hops = int64_t(
        arch.noc_hops_per_word *
        double(slow.avg_distinct_words * double(ideal_cycles) + oact_words));
    counts.dram_words += is_gemm ? layer.gemm.k * layer.gemm.n
                                 : layer.conv.weightElems();

    res.energy_pj = totalEnergyPj(energy, counts, bl.lineSize());
    res.reorder_energy_pj = reorder_pj;
    res.valid = true;
    return res;
}

} // namespace feather
