#include "layoutloop/energy_model.hpp"

namespace feather {

double
totalEnergyPj(const EnergyTable &table, const AccessCounts &counts,
              int64_t line_size)
{
    double pj = 0.0;
    pj += table.mac_int8 * double(counts.macs);
    pj += table.reg_access * double(counts.reg_accesses);
    pj += table.sram_word * double(counts.buffer_word_reads +
                                   counts.buffer_word_writes);
    pj += table.sram_line_overhead * double(line_size) *
          double(counts.buffer_line_reads);
    pj += table.noc_hop * double(counts.noc_word_hops);
    pj += table.dram_word * double(counts.dram_words);
    return pj;
}

} // namespace feather
