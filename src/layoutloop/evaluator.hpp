#pragma once

/**
 * @file
 * Layoutloop's core evaluation: latency, bank-conflict slowdown, reorder
 * overheads, and energy of one (layer, mapping, layout) triple on one
 * ArchSpec (§V-A/B).
 */

#include <string>

#include "dataflow/access_pattern.hpp"
#include "layoutloop/arch_spec.hpp"
#include "layoutloop/energy_model.hpp"
#include "workload/shapes.hpp"

namespace feather {

/** Outcome of evaluating one (layer, mapping, layout) on one design. */
struct EvalResult
{
    bool valid = false;

    double theoretical_utilization = 0.0; ///< spatial occupancy
    double slowdown = 1.0;                ///< avg bank-conflict factor >= 1
    double practical_utilization = 0.0;   ///< occupancy / slowdown

    int64_t compute_cycles = 0; ///< quantized ideal cycles
    int64_t stall_cycles = 0;   ///< bank-conflict serialization
    int64_t reorder_cycles = 0; ///< exposed reorder latency (off-chip / RAR)
    int64_t total_cycles = 0;

    double energy_pj = 0.0;
    double reorder_energy_pj = 0.0; ///< share of energy_pj due to reordering

    Mapping mapping;
    Layout layout;

    double edp() const { return energy_pj * double(total_cycles); }
    double pjPerMac(int64_t macs) const
    {
        return macs > 0 ? energy_pj / double(macs) : 0.0;
    }

    std::string toString() const;
};

/**
 * Evaluate @p mapping under @p layout on @p arch.
 *
 * @param prev_layout layout the layer's iActs were produced in by the
 *        previous layer (used to decide whether a reorder is needed);
 *        nullptr means "first layer / already concordant".
 */
EvalResult evaluateMapping(const ArchSpec &arch, const LayerSpec &layer,
                           const Mapping &mapping, const Layout &layout,
                           const Layout *prev_layout = nullptr,
                           const EnergyTable &energy = EnergyTable{});

} // namespace feather
