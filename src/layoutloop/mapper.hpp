#pragma once

/**
 * @file
 * Layoutloop's mapper: per-layer (dataflow, layout) co-search (§V / §VI-A2).
 *
 * The candidate space follows the design's TOPS flexibility:
 *  - T only (NVDLA/Gemmini/DPU/Edge-TPU-like): the single fixed spatial
 *    unrolling is evaluated as-is.
 *  - TS (Eyeriss-like): the dims are fixed but their degrees (the virtual
 *    array shape) are searchable.
 *  - TOPS (SIGMA/FEATHER-like): parallel dims and degrees are searchable
 *    (power-of-two degrees over the layer's dims).
 * Layout choice per layer is only available to designs whose reorder
 * mechanism can actually produce a different word-granularity layout
 * (off-chip reordering and RIR); everything else runs its fixed layout.
 *
 * The objective is minimum EDP, the paper's §VI-A2 metric.
 */

#include <vector>

#include "layoutloop/evaluator.hpp"

namespace feather {

/** Per-layer search outcome plus its repeat count. */
struct LayerDecision
{
    EvalResult best;
    const LayerSpec *layer = nullptr;
    int repeat = 1;
};

/** Aggregate over a model run. */
struct ModelEval
{
    std::vector<LayerDecision> layers;

    int64_t totalCycles() const;
    double totalEnergyPj() const;
    int64_t totalMacs() const;
    double avgPracticalUtilization() const; ///< MAC-weighted
    int64_t totalStallCycles() const;
    int64_t totalReorderCycles() const;
};

/** Mapper over one ArchSpec. */
class Mapper
{
  public:
    explicit Mapper(ArchSpec arch) : arch_(std::move(arch)) {}

    const ArchSpec &arch() const { return arch_; }

    /** All candidate mappings of @p layer under the design's flexibility. */
    std::vector<Mapping> candidateMappings(const LayerSpec &layer) const;

    /** Layouts the design may use for @p layer. */
    std::vector<Layout> candidateLayouts(const LayerSpec &layer) const;

    /** Best-EDP (mapping, layout) for one layer. */
    EvalResult searchLayer(const LayerSpec &layer,
                           const Layout *prev_layout = nullptr) const;

    /** Per-layer search across a model (MAC layers only). */
    ModelEval searchModel(const std::vector<LayerSpec> &model) const;

  private:
    ArchSpec arch_;
};

} // namespace feather
