#pragma once

/**
 * @file
 * Energy model for Layoutloop, in picojoules per access.
 *
 * Constants are 28nm-class estimates in the spirit of Timeloop/Accelergy's
 * tables (Horowitz ISSCC'14 scaled): an int8 MAC around 0.2 pJ, SRAM word
 * accesses around 1 pJ growing with line width, register file accesses an
 * order of magnitude below SRAM, DRAM two orders above. The paper's Fig. 13
 * reports *normalized* pJ/MAC, so relative ordering (which these constants
 * set) is what matters for reproduction; absolute values are documented
 * here so a user can recalibrate against their own PDK.
 */

#include <cstdint>

namespace feather {

/** Per-access energies (pJ). */
struct EnergyTable
{
    double mac_int8 = 0.2;        ///< one 8b x 8b MAC incl. 32b accumulate
    double reg_access = 0.03;     ///< PE-local register read/write
    double sram_word = 0.9;       ///< one word in/out of an on-chip buffer
    double sram_line_overhead = 0.08; ///< per-word wordline/precharge share
    double noc_hop = 0.05;        ///< one 32b word through one 2x2 switch
    double dram_word = 45.0;      ///< one byte-word of DRAM traffic
};

/** Aggregated access counts of one layer execution. */
struct AccessCounts
{
    int64_t macs = 0;
    int64_t buffer_word_reads = 0;  ///< iact/weight words from SRAM
    int64_t buffer_line_reads = 0;  ///< line activations (conflicts repeat)
    int64_t buffer_word_writes = 0; ///< oact words into SRAM
    int64_t reg_accesses = 0;       ///< local register file traffic
    int64_t noc_word_hops = 0;      ///< switch traversals
    int64_t dram_words = 0;         ///< off-chip words moved
};

/** Total pJ of @p counts under @p table. */
double totalEnergyPj(const EnergyTable &table, const AccessCounts &counts,
                     int64_t line_size);

} // namespace feather
