#include "feather/analytic.hpp"

#include <algorithm>
#include <vector>

#include "common/bits.hpp"
#include "common/log.hpp"
#include "dataflow/mapping.hpp"
#include "feather/accelerator.hpp"
#include "noc/birrd.hpp"
#include "noc/router.hpp"

namespace feather {

namespace {

/** Mixed-radix decode of a flat index over parallel dims (dims[0] outer). */
Coord
decodeSpatial(const std::vector<ParallelDim> &dims, int64_t flat)
{
    Coord idx;
    for (size_t i = dims.size(); i-- > 0;) {
        idx[dims[i].dim] = flat % dims[i].degree;
        flat /= dims[i].degree;
    }
    return idx;
}

} // namespace

LayerStats
analyticLayerStats(const LayerSpec &layer, const NestMapping &mapping,
                   const Layout &in_layout, const Layout &out_layout,
                   const FeatherConfig &cfg)
{
    const std::string err = mapping.validate(layer, cfg.aw, cfg.ah);
    FEATHER_CHECK(err.empty(), "invalid mapping: ", err);
    FEATHER_CHECK(mapping.t1() <= cfg.max_local,
                  "local tile exceeds PE register file");

    const bool is_gemm = layer.type == OpType::Gemm;
    const Extents ext = is_gemm ? gemmExtents(layer.gemm)
                                : convExtents(layer.conv);
    const ConvShape &cs = layer.conv;

    // Temporal order and weight-affecting dims: identical to the cycle
    // simulator (weight dims are a *prefix* of the temporal order, so the
    // weight tile changes exactly every inner_steps steps).
    std::vector<Dim> dims_order;
    if (is_gemm) {
        dims_order = {Dim::N, Dim::K, Dim::M};
    } else if (cs.depthwise) {
        dims_order = {Dim::C, Dim::R, Dim::S, Dim::P, Dim::Q};
    } else {
        dims_order = {Dim::M, Dim::C, Dim::R, Dim::S, Dim::P, Dim::Q};
    }
    std::vector<Dim> weight_dims;
    if (is_gemm) {
        weight_dims = {Dim::N, Dim::K};
    } else if (cs.depthwise) {
        weight_dims = {Dim::C, Dim::R, Dim::S};
    } else {
        weight_dims = {Dim::M, Dim::C, Dim::R, Dim::S};
    }

    DimMap unroll;
    for (int i = 0; i < kNumDims; ++i) unroll[Dim(i)] = 1;
    for (const auto &pd : mapping.local) unroll[pd.dim] *= pd.degree;
    for (const auto &pd : mapping.cols) unroll[pd.dim] *= pd.degree;
    for (const auto &pd : mapping.rows) unroll[pd.dim] *= pd.degree;

    DimMap steps_of;
    int64_t total_steps = 1;
    int64_t weight_steps = 1;
    int64_t reduction_step_combos = 1;
    for (Dim d : dims_order) {
        steps_of[d] = ceilDiv(std::max<int64_t>(ext[d], 1), unroll[d]);
        total_steps *= steps_of[d];
        if (isReducedDim(layer, d)) reduction_step_combos *= steps_of[d];
    }
    for (Dim d : weight_dims) weight_steps *= steps_of[d];

    int64_t reduced_row_copies = 1;
    for (const auto &pd : mapping.rows) {
        if (isReducedDim(layer, pd.dim)) reduced_row_copies *= pd.degree;
    }
    const int64_t expected_contribs =
        reduction_step_combos * reduced_row_copies;

    DimMap local_deg, col_deg, row_deg;
    for (int i = 0; i < kNumDims; ++i) {
        local_deg[Dim(i)] = 1;
        col_deg[Dim(i)] = 1;
        row_deg[Dim(i)] = 1;
    }
    for (const auto &pd : mapping.local) local_deg[pd.dim] = pd.degree;
    for (const auto &pd : mapping.cols) col_deg[pd.dim] = pd.degree;
    for (const auto &pd : mapping.rows) row_deg[pd.dim] = pd.degree;

    const int64_t t1 = mapping.t1();
    const int64_t cols_used = mapping.colsUsed();
    const int64_t rows_used = mapping.rowsUsed();

    std::vector<ParallelDim> group_dims;
    for (const auto &pd : mapping.cols) {
        if (!isReducedDim(layer, pd.dim)) group_dims.push_back(pd);
    }
    const int64_t num_groups = totalDegree(group_dims);
    struct ColAssign
    {
        Coord idx;
        int group = -1;
    };
    std::vector<ColAssign> col_assign(static_cast<size_t>(cols_used));
    for (int64_t c = 0; c < cols_used; ++c) {
        col_assign[size_t(c)].idx = decodeSpatial(mapping.cols, c);
        int64_t g = 0;
        for (const auto &pd : group_dims) {
            g = g * pd.degree + col_assign[size_t(c)].idx[pd.dim];
        }
        col_assign[size_t(c)].group = int(g);
    }
    std::vector<Coord> row_assign(static_cast<size_t>(rows_used));
    for (int64_t r = 0; r < rows_used; ++r) {
        row_assign[size_t(r)] = decodeSpatial(mapping.rows, r);
    }
    std::vector<Coord> local_assign(static_cast<size_t>(t1));
    for (int64_t l = 0; l < t1; ++l) {
        local_assign[size_t(l)] = decodeSpatial(mapping.local, l);
    }

    bool rows_affect_iacts = false;
    for (const auto &pd : mapping.rows) {
        const bool affects =
            is_gemm ? (pd.dim == Dim::M || pd.dim == Dim::K)
                    : (pd.dim != Dim::M);
        if (affects && pd.degree > 1) rows_affect_iacts = true;
    }
    const int64_t row_variants = rows_affect_iacts ? rows_used : 1;

    // Layout bindings: iActs exactly like loadIacts, oActs in next-layer
    // iAct space exactly like the simulator's RIR write path.
    Extents in_ext;
    if (is_gemm) {
        in_ext[Dim::M] = layer.gemm.m;
        in_ext[Dim::K] = layer.gemm.k;
    } else {
        in_ext[Dim::C] = cs.c;
        in_ext[Dim::H] = cs.h;
        in_ext[Dim::W] = cs.w;
    }
    const BoundLayout in_bound(in_layout, in_ext);
    const int64_t in_wpl = ceilDiv(in_bound.lineSize(), int64_t(cfg.aw));
    const BoundLayout out_bound(out_layout, oactIactExtents(layer));
    const int64_t out_wpl = ceilDiv(out_bound.lineSize(), int64_t(cfg.aw));

    // ---- the probe step: the middle of every temporal loop ----
    // Step 0 is unrepresentative under padding (clipped taps); the middle
    // step sees the steady-state access pattern.
    Coord base;
    for (Dim d : dims_order) base[d] = ((steps_of[d] - 1) / 2) * unroll[d];

    // Weight tile of the probe step: in-bounds elements per reload.
    int64_t strb_per_reload = 0;
    for (int64_t r = 0; r < rows_used; ++r) {
        for (int64_t c = 0; c < cols_used; ++c) {
            for (int64_t l = 0; l < t1; ++l) {
                const auto coord_of = [&](Dim d) {
                    return base[d] + local_assign[size_t(l)][d] +
                           local_deg[d] * (col_assign[size_t(c)].idx[d] +
                                           col_deg[d] *
                                               row_assign[size_t(r)][d]);
                };
                if (is_gemm) {
                    if (coord_of(Dim::K) < ext[Dim::K] &&
                        coord_of(Dim::N) < ext[Dim::N]) {
                        ++strb_per_reload;
                    }
                } else {
                    const int64_t m_ext = cs.depthwise ? 1 : ext[Dim::M];
                    if (coord_of(Dim::M) < m_ext &&
                        coord_of(Dim::C) < ext[Dim::C] &&
                        coord_of(Dim::R) < ext[Dim::R] &&
                        coord_of(Dim::S) < ext[Dim::S]) {
                        ++strb_per_reload;
                    }
                }
            }
        }
    }

    // Per-step feed / bus / access probe: the simulator's dedup, dual-port
    // conflict and greedy wave-split logic over addresses only.
    BirrdNetwork birrd(cfg.aw);
    BirrdRouter router(birrd.topology());

    int64_t feed_cycles = 0;
    int64_t bus_cycles = 0;
    int64_t macs_step = 0;
    int64_t stab_reads_step = 0;
    int64_t ob_acc_step = 0;
    int64_t hops_step = 0;
    std::vector<int64_t> dest_keys; // distinct OB destinations this step

    std::vector<bool> col_active(size_t(cfg.aw), false);
    std::vector<int64_t> group_line(size_t(num_groups), -1);
    std::vector<int64_t> group_bank(size_t(num_groups), -1);
    std::vector<bool> group_live(size_t(num_groups), false);
    std::vector<int64_t> bank_reads(size_t(cfg.aw), 0);
    std::vector<int64_t> seen_key;

    for (int64_t r = 0; r < rows_used; ++r) {
        std::fill(col_active.begin(), col_active.end(), false);
        std::fill(group_live.begin(), group_live.end(), false);
        for (int64_t c = 0; c < cols_used; ++c) {
            const int g = col_assign[size_t(c)].group;
            const auto coord_of = [&](Dim d) {
                return base[d] + local_assign[0][d] +
                       local_deg[d] * (col_assign[size_t(c)].idx[d] +
                                       col_deg[d] * row_assign[size_t(r)][d]);
            };
            Coord oc;
            bool live = true;
            if (is_gemm) {
                oc[Dim::M] = coord_of(Dim::M);
                oc[Dim::N] = coord_of(Dim::N);
                live = oc[Dim::M] < ext[Dim::M] && oc[Dim::N] < ext[Dim::N];
            } else if (cs.depthwise) {
                oc[Dim::C] = coord_of(Dim::C);
                oc[Dim::P] = coord_of(Dim::P);
                oc[Dim::Q] = coord_of(Dim::Q);
                live = oc[Dim::C] < ext[Dim::C] &&
                       oc[Dim::P] < ext[Dim::P] && oc[Dim::Q] < ext[Dim::Q];
            } else {
                oc[Dim::M] = coord_of(Dim::M);
                oc[Dim::P] = coord_of(Dim::P);
                oc[Dim::Q] = coord_of(Dim::Q);
                live = oc[Dim::M] < ext[Dim::M] &&
                       oc[Dim::P] < ext[Dim::P] && oc[Dim::Q] < ext[Dim::Q];
            }
            col_active[size_t(c)] = live;
            if (!live) continue;
            if (!group_live[size_t(g)]) {
                const LineAddr a =
                    out_bound.addrOf(oactToIactSpace(layer, oc));
                group_live[size_t(g)] = true;
                group_bank[size_t(g)] = a.slot % cfg.aw;
                group_line[size_t(g)] = a.line * out_wpl + a.slot / cfg.aw;
            }
        }

        int64_t row_feed = 0;
        for (int64_t l = 0; l < t1; ++l) {
            std::fill(bank_reads.begin(), bank_reads.end(), 0);
            seen_key.clear();
            for (int64_t c = 0; c < cols_used; ++c) {
                if (!col_active[size_t(c)]) continue;
                const auto coord_of = [&](Dim d) {
                    return base[d] + local_assign[size_t(l)][d] +
                           local_deg[d] * (col_assign[size_t(c)].idx[d] +
                                           col_deg[d] *
                                               row_assign[size_t(r)][d]);
                };
                Coord ic;
                bool do_read = false;
                if (is_gemm) {
                    const int64_t m = coord_of(Dim::M);
                    const int64_t k = coord_of(Dim::K);
                    if (m < ext[Dim::M] && k < ext[Dim::K]) {
                        ic[Dim::M] = m;
                        ic[Dim::K] = k;
                        do_read = true;
                    }
                } else {
                    const int64_t cc = coord_of(Dim::C);
                    const int64_t p = coord_of(Dim::P);
                    const int64_t q = coord_of(Dim::Q);
                    const int64_t rr = coord_of(Dim::R);
                    const int64_t ss = coord_of(Dim::S);
                    const int64_t h = p * cs.stride + rr - cs.pad;
                    const int64_t w = q * cs.stride + ss - cs.pad;
                    if (cc < ext[Dim::C] && p < ext[Dim::P] &&
                        q < ext[Dim::Q] && rr < ext[Dim::R] &&
                        ss < ext[Dim::S] && h >= 0 && h < ext[Dim::H] &&
                        w >= 0 && w < ext[Dim::W]) {
                        ic[Dim::C] = cc;
                        ic[Dim::H] = h;
                        ic[Dim::W] = w;
                        do_read = true;
                    }
                }
                if (!do_read) continue;
                const LineAddr a = in_bound.addrOf(ic);
                const int64_t bank = a.slot % cfg.aw;
                const int64_t addr = a.line * in_wpl + a.slot / cfg.aw;
                const int64_t key = bank * cfg.stab_depth + addr;
                if (std::find(seen_key.begin(), seen_key.end(), key) ==
                    seen_key.end()) {
                    seen_key.push_back(key);
                    ++stab_reads_step;
                    ++bank_reads[size_t(bank)];
                }
            }
            int64_t worst = 1;
            for (int64_t b = 0; b < cfg.aw; ++b) {
                worst = std::max(worst,
                                 ceilDiv<int64_t>(bank_reads[size_t(b)], 2));
            }
            row_feed += worst;
        }
        if (r < row_variants) feed_cycles += row_feed;

        macs_step += t1 * int64_t(std::count(col_active.begin(),
                                             col_active.end(), true));

        // Greedy wave split, identical to the simulator's.
        std::vector<int> wave_of_group(size_t(num_groups), -1);
        int num_waves = 0;
        {
            std::vector<std::vector<bool>> bank_used;
            for (int64_t g = 0; g < num_groups; ++g) {
                if (!group_live[size_t(g)]) continue;
                int w = 0;
                while (w < num_waves &&
                       bank_used[size_t(w)][size_t(group_bank[size_t(g)])]) {
                    ++w;
                }
                if (w == num_waves) {
                    bank_used.emplace_back(size_t(cfg.aw), false);
                    ++num_waves;
                }
                bank_used[size_t(w)][size_t(group_bank[size_t(g)])] = true;
                wave_of_group[size_t(g)] = w;
                ++ob_acc_step;
                dest_keys.push_back(group_bank[size_t(g)] * cfg.stab_depth +
                                    group_line[size_t(g)]);
            }
        }
        bus_cycles += std::max(num_waves, 1);

        // Route each wave through the real BIRRD router for the switch-hop
        // estimate (one step only — no data flows).
        for (int w = 0; w < num_waves; ++w) {
            RouteRequest req;
            req.group_of_input.assign(size_t(cfg.aw), -1);
            std::vector<int> dense_id(size_t(num_groups), -1);
            std::vector<int> dense_dest;
            for (int64_t c = 0; c < cols_used; ++c) {
                if (!col_active[size_t(c)]) continue;
                const int g = col_assign[size_t(c)].group;
                if (wave_of_group[size_t(g)] != w) continue;
                if (dense_id[size_t(g)] < 0) {
                    dense_id[size_t(g)] = int(dense_dest.size());
                    dense_dest.push_back(int(group_bank[size_t(g)]));
                }
                req.group_of_input[size_t(c)] = dense_id[size_t(g)];
            }
            for (int d : dense_dest) req.dests_of_group.push_back({d});
            if (dense_dest.empty()) continue;
            const auto cfg_word = router.route(req);
            FEATHER_CHECK(cfg_word.has_value(),
                          "BIRRD routing failed for a FEATHER pattern");
            std::vector<PortValue> inputs(size_t(cfg.aw));
            for (int64_t c = 0; c < cols_used; ++c) {
                if (req.group_of_input[size_t(c)] >= 0) {
                    inputs[size_t(c)] = 1;
                }
            }
            hops_step += birrd.activeSwitches(*cfg_word, inputs);
        }
    }

    // ---- scale the probe to the whole nest ----
    LayerStats stats;
    const int64_t step_cycles = std::max({feed_cycles, bus_cycles, t1});
    stats.compute_cycles = total_steps * step_cycles;
    stats.read_stall_cycles =
        total_steps * std::max<int64_t>(0, feed_cycles - t1);
    stats.write_stall_cycles =
        total_steps * std::max<int64_t>(0, bus_cycles - rows_used);
    stats.macs = total_steps * macs_step;
    stats.stab_reads = total_steps * stab_reads_step;
    stats.ob_accumulates = total_steps * ob_acc_step;
    stats.birrd_switch_hops = total_steps * hops_step;
    stats.strb_reads = weight_steps * strb_per_reload;
    stats.dram_words = stats.strb_reads;
    stats.stab_writes = expected_contribs > 0
                            ? stats.ob_accumulates / expected_contribs
                            : 0;
    std::sort(dest_keys.begin(), dest_keys.end());
    stats.peak_ob_entries = int64_t(
        std::unique(dest_keys.begin(), dest_keys.end()) - dest_keys.begin());
    stats.weight_reload_events = weight_steps;

    // Weight preload exposure: the first AH*t1 load is fully exposed, every
    // later one hides behind the inner_steps of compute since the previous
    // reload (the shadow ping-pong registers).
    const int64_t wl = int64_t(cfg.ah) * t1;
    const int64_t inner_steps =
        weight_steps > 0 ? total_steps / weight_steps : total_steps;
    stats.weight_load_cycles_each = wl;
    stats.weight_load_cycles =
        wl + (weight_steps - 1) *
                 std::max<int64_t>(0, wl - inner_steps * step_cycles);

    stats.fill_cycles = cfg.ah + birrd.latency() + 2;
    stats.cycles = stats.compute_cycles + stats.weight_load_cycles +
                   stats.fill_cycles;
    return stats;
}

} // namespace feather
