#pragma once

/**
 * @file
 * Analytic (closed-form) FEATHER performance model — the fast tier of the
 * two-tier simulation engine (sim/engine.hpp).
 *
 * The cycle simulator walks every temporal step of the mapping's loop nest
 * and replays every partial sum through NEST -> BIRRD -> OB. The analytic
 * model instead derives the same LayerStats fields from the loop structure
 * alone:
 *
 *   - the step count, weight-reload count and reload spacing come straight
 *     from the per-dim temporal trip counts (weight dims are a prefix of
 *     the temporal order, so reloads are evenly spaced);
 *   - feed/bus/macs per step come from ONE probe step of pure address
 *     arithmetic — the middle step of the nest, which is representative of
 *     the steady state (step 0 is not: padded convolutions clip many taps
 *     there). The probe runs the same dedup, dual-port bank-conflict and
 *     greedy wave-split logic as the simulator, and routes its waves
 *     through the real BIRRD router, but touches no data;
 *   - totals are the per-step probe values scaled by the step count, plus
 *     the exact weight-preload exposure and pipeline-fill terms.
 *
 * Accuracy: cycles are exact whenever the probe step is representative
 * (uniform steady state); boundary steps with clipped columns make the
 * model over-estimate feed/macs slightly. Across the registered scenarios
 * the cycle estimate stays within the bound documented in README.md
 * ("Simulation engines"), and candidate rankings match the cycle
 * simulator's. Access counters (stab_reads, ob_accumulates, ...) are
 * scaled estimates under the same caveat; `checked`/verification does not
 * apply — there is no data to verify.
 */

#include "feather/config.hpp"
#include "layout/layout.hpp"
#include "nest/nest_mapping.hpp"
#include "workload/shapes.hpp"

namespace feather {

/**
 * Closed-form LayerStats estimate for running @p layer under @p mapping
 * with iActs stored as @p in_layout and oActs written as @p out_layout
 * (next-layer iAct space, exactly like FeatherAccelerator::run).
 *
 * Preconditions match the cycle simulator's: the mapping must validate
 * against the layer and cfg.aw/cfg.ah, and local dims must be reduction
 * dims.
 */
LayerStats analyticLayerStats(const LayerSpec &layer,
                              const NestMapping &mapping,
                              const Layout &in_layout,
                              const Layout &out_layout,
                              const FeatherConfig &cfg);

} // namespace feather
