#pragma once

/**
 * @file
 * Configuration and statistics types for the FEATHER cycle-level simulator.
 */

#include <cstdint>
#include <string>

#include "tensor/quant.hpp"

namespace feather {

/** Hardware shape of one FEATHER instance (Fig. 7/8). */
struct FeatherConfig
{
    int aw = 16;             ///< PE columns == BIRRD inputs == StaB banks
    int ah = 16;             ///< PE rows
    int64_t stab_depth = 262144; ///< words per StaB bank (per ping/pong half)
    int64_t ob_depth = 65536;    ///< live accumulators per OB bank
    int max_local = 512;     ///< PE local weight register file capacity
};

/** Quantization parameters of one layer execution. */
struct LayerQuant
{
    int8_t iact_zp = 0;
    int8_t weight_zp = 0;
    int8_t oact_zp = 0;
    /** Combined rescale s_x * s_w / s_out applied by the QM. */
    float multiplier = 1.0f;
};

/** Cycle and access statistics for one layer run. */
struct LayerStats
{
    int64_t cycles = 0;              ///< total latency
    int64_t compute_cycles = 0;      ///< steady-state max(feed, bus, t1)
    int64_t weight_load_cycles = 0;  ///< exposed (non-hidden) preload cycles
    int64_t fill_cycles = 0;         ///< pipeline fill/drain
    int64_t read_stall_cycles = 0;   ///< feed cycles beyond the ideal t1
    int64_t write_stall_cycles = 0;  ///< bus cycles beyond one per row
    int64_t macs = 0;

    // Access counts for the energy model.
    int64_t stab_reads = 0;
    int64_t stab_writes = 0;
    int64_t strb_reads = 0;
    int64_t ob_accumulates = 0;
    int64_t birrd_switch_hops = 0;
    int64_t dram_words = 0;
    int64_t peak_ob_entries = 0;
    int64_t weight_reload_events = 0; ///< shadow-bank tile loads
    int64_t weight_load_cycles_each = 0; ///< AH * t1 per reload
    /** High-water mark of the run's arena-allocated scratch (cycle engine;
     *  0 in analytic mode — not part of the deterministic counter set). */
    int64_t arena_peak_bytes = 0;

    /** Average PE utilization = macs / (cycles * num_pes). */
    double utilization(int num_pes) const
    {
        return cycles > 0 ? double(macs) / (double(cycles) * num_pes) : 0.0;
    }

    std::string toString() const;
};

} // namespace feather
